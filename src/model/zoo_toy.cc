#include <stdexcept>

#include "model/zoo.h"

namespace p3::model {

ModelSpec toy_custom(const std::vector<std::int64_t>& params,
                     const std::vector<double>& flops) {
  if (params.empty()) throw std::invalid_argument("toy model with no layers");
  if (!flops.empty() && flops.size() != params.size()) {
    throw std::invalid_argument("flops/params size mismatch");
  }
  ModelSpec m;
  m.name = "toy-custom";
  for (std::size_t i = 0; i < params.size(); ++i) {
    LayerSpec l;
    l.name = "L" + std::to_string(i + 1);
    l.params = params[i];
    l.fwd_flops = flops.empty() ? 1.0 : flops[i];
    m.layers.push_back(l);
  }
  return m;
}

}  // namespace p3::model
