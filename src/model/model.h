// DNN model descriptions.
//
// A model is a forward-ordered sequence of parameterized layers. For the
// communication simulator only three things matter per layer: how many
// parameters it carries (gradient bytes = 4 * params), how much compute it
// costs (FLOPs, to apportion iteration time), and its position in forward
// order (which determines both gradient generation order — reverse — and
// parameter consumption order, the two quantities P3 schedules by).
//
// Layers without parameters (pooling, activations) are folded into their
// neighbours' FLOPs and do not appear: frameworks only synchronize
// parameterized keys.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace p3::model {

struct LayerSpec {
  std::string name;
  std::int64_t params = 0;   ///< learnable parameter count
  double fwd_flops = 0.0;    ///< per-sample forward FLOPs estimate
};

struct ModelSpec {
  std::string name;
  std::string sample_unit = "images";  ///< "images" or "sentences"
  std::vector<LayerSpec> layers;       ///< forward order

  int num_layers() const { return static_cast<int>(layers.size()); }
  std::int64_t total_params() const;
  double total_fwd_flops() const;

  /// Gradient/parameter payload of one layer in bytes (fp32).
  Bytes layer_bytes(int layer) const {
    return 4 * layers.at(static_cast<std::size_t>(layer)).params;
  }
  Bytes total_bytes() const { return 4 * total_params(); }

  /// Index of the layer with the most parameters.
  int heaviest_layer() const;

  /// Fraction of all parameters held by the heaviest layer
  /// (0.715 for VGG-19's fc6 in the paper).
  double heaviest_fraction() const;
};

}  // namespace p3::model
