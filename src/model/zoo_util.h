// Shared builders for the model zoo (internal header).
#pragma once

#include <cstdint>
#include <string>

#include "model/model.h"

namespace p3::model::detail {

/// Convolution weight tensor (no bias, as in BN architectures).
/// FLOPs: 2 * k*k*cin * cout * out_h * out_w (multiply-add counted as 2).
inline LayerSpec conv(const std::string& name, int k, int cin, int cout,
                      int out_hw) {
  LayerSpec l;
  l.name = name;
  l.params = static_cast<std::int64_t>(k) * k * cin * cout;
  l.fwd_flops = 2.0 * k * k * cin * cout * out_hw * out_hw;
  return l;
}

/// Convolution with bias (VGG style).
inline LayerSpec conv_bias(const std::string& name, int k, int cin, int cout,
                           int out_hw) {
  LayerSpec l = conv(name, k, cin, cout, out_hw);
  l.params += cout;
  return l;
}

/// Non-square convolution (Inception uses 1x7 / 7x1 factorizations).
inline LayerSpec conv_rect(const std::string& name, int kh, int kw, int cin,
                           int cout, int out_hw) {
  LayerSpec l;
  l.name = name;
  l.params = static_cast<std::int64_t>(kh) * kw * cin * cout;
  l.fwd_flops = 2.0 * kh * kw * cin * cout * out_hw * out_hw;
  return l;
}

/// Batch norm scale+shift. FLOPs are a few ops per activation; negligible
/// next to the conv but nonzero so the layer occupies a compute slot.
inline LayerSpec bn(const std::string& name, int channels, int out_hw) {
  LayerSpec l;
  l.name = name;
  l.params = 2LL * channels;
  l.fwd_flops = 4.0 * channels * out_hw * out_hw;
  return l;
}

/// Fully connected layer with bias.
inline LayerSpec fc(const std::string& name, int in, int out) {
  LayerSpec l;
  l.name = name;
  l.params = static_cast<std::int64_t>(in) * out + out;
  l.fwd_flops = 2.0 * static_cast<double>(in) * out;
  return l;
}

/// Embedding lookup table: huge parameter count, negligible FLOPs.
inline LayerSpec embedding(const std::string& name, int vocab, int dim,
                           double tokens_per_sample) {
  LayerSpec l;
  l.name = name;
  l.params = static_cast<std::int64_t>(vocab) * dim;
  l.fwd_flops = tokens_per_sample * dim;  // a gather per token
  return l;
}

/// LSTM cell, emitted as MXNet does: four tensors (i2h weight, i2h bias,
/// h2h weight, h2h bias), each stacking the 4 gates.
/// FLOPs: two dense matmuls per gate per token, split across the weights.
inline void lstm(std::vector<LayerSpec>& layers, const std::string& name,
                 int input, int hidden, double tokens_per_sample) {
  LayerSpec i2h;
  i2h.name = name + ".i2h_weight";
  i2h.params = 4LL * input * hidden;
  i2h.fwd_flops = tokens_per_sample * 2.0 * 4.0 * input * hidden;
  layers.push_back(i2h);
  LayerSpec i2h_b;
  i2h_b.name = name + ".i2h_bias";
  i2h_b.params = 4LL * hidden;
  i2h_b.fwd_flops = tokens_per_sample * 4.0 * hidden;
  layers.push_back(i2h_b);
  LayerSpec h2h;
  h2h.name = name + ".h2h_weight";
  h2h.params = 4LL * hidden * hidden;
  h2h.fwd_flops = tokens_per_sample * 2.0 * 4.0 * hidden * hidden;
  layers.push_back(h2h);
  LayerSpec h2h_b;
  h2h_b.name = name + ".h2h_bias";
  h2h_b.params = 4LL * hidden;
  h2h_b.fwd_flops = tokens_per_sample * 4.0 * hidden;
  layers.push_back(h2h_b);
}

/// Dense projection applied per token (attention / output layers).
inline LayerSpec dense_seq(const std::string& name, int in, int out,
                           double tokens_per_sample, bool bias = true) {
  LayerSpec l;
  l.name = name;
  l.params = static_cast<std::int64_t>(in) * out + (bias ? out : 0);
  l.fwd_flops = tokens_per_sample * 2.0 * static_cast<double>(in) * out;
  return l;
}

}  // namespace p3::model::detail
