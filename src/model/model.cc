#include "model/model.h"

#include <stdexcept>

namespace p3::model {

std::int64_t ModelSpec::total_params() const {
  std::int64_t total = 0;
  for (const auto& l : layers) total += l.params;
  return total;
}

double ModelSpec::total_fwd_flops() const {
  double total = 0.0;
  for (const auto& l : layers) total += l.fwd_flops;
  return total;
}

int ModelSpec::heaviest_layer() const {
  if (layers.empty()) throw std::logic_error("model has no layers");
  int best = 0;
  for (int i = 1; i < num_layers(); ++i) {
    if (layers[static_cast<std::size_t>(i)].params >
        layers[static_cast<std::size_t>(best)].params) {
      best = i;
    }
  }
  return best;
}

double ModelSpec::heaviest_fraction() const {
  const auto total = total_params();
  if (total == 0) return 0.0;
  return static_cast<double>(
             layers[static_cast<std::size_t>(heaviest_layer())].params) /
         static_cast<double>(total);
}

}  // namespace p3::model
