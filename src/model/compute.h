// GPU compute-time model.
//
// The simulator needs per-layer forward/backward durations. Absolute GPU
// kernel times are irrelevant to the scheduling question; what matters is
// (a) the total compute per iteration relative to communication and (b) how
// that compute is distributed across layers. We therefore apportion a
// calibrated per-iteration compute budget across layers proportionally to
// their FLOPs, plus a fixed per-layer launch overhead, with the usual 1:2
// forward:backward cost ratio.
//
// The per-model budgets in the workload presets are calibrated so that the
// 4-worker linear-scaling plateaus match Figure 7 of the paper (see
// EXPERIMENTS.md for the calibration table).
#pragma once

#include <vector>

#include "common/units.h"
#include "model/model.h"

namespace p3::model {

/// Per-layer execution times for one iteration (batch folded in).
struct ComputeProfile {
  std::vector<TimeS> fwd;
  std::vector<TimeS> bwd;

  TimeS total_fwd() const;
  TimeS total_bwd() const;
  TimeS total() const { return total_fwd() + total_bwd(); }
  int num_layers() const { return static_cast<int>(fwd.size()); }
};

struct GpuModelConfig {
  /// Backward / forward cost ratio (grad wrt inputs + grad wrt weights).
  double bwd_ratio = 2.0;
  /// Fixed per-layer, per-pass overhead (kernel launch, sync).
  TimeS layer_overhead = us(25);
};

/// Apportion `iter_compute_time` (forward+backward for a full batch) across
/// the model's layers proportionally to FLOPs.
ComputeProfile make_profile(const ModelSpec& model, TimeS iter_compute_time,
                            const GpuModelConfig& config = {});

/// A benchmark workload: model plus the calibrated compute budget.
struct Workload {
  ModelSpec model;
  int batch_per_worker = 8;      ///< samples per worker per iteration
  TimeS iter_compute_time = 0.3; ///< fwd+bwd time per iteration per worker
};

/// Paper workloads with compute budgets calibrated to the Figure 7 plateaus
/// (Quadro P4000-class throughput).
Workload workload_resnet50();
Workload workload_inception_v3();
Workload workload_vgg19();
Workload workload_sockeye();

/// Extension workload: Transformer-base NMT, calibrated to a P4000-class
/// per-GPU rate (~22 sentences/s/worker at batch 16).
Workload workload_transformer();

}  // namespace p3::model
