#include <string>
#include <vector>

#include "model/zoo.h"
#include "model/zoo_util.h"

namespace p3::model {
namespace {

using detail::bn;
using detail::conv;
using detail::conv_rect;
using detail::fc;

/// Inception "BasicConv2d": convolution (no bias) + batch norm.
void cb(std::vector<LayerSpec>& L, const std::string& name, int k, int cin,
        int cout, int hw) {
  L.push_back(conv(name, k, cin, cout, hw));
  L.push_back(bn(name + ".bn", cout, hw));
}

void cb_rect(std::vector<LayerSpec>& L, const std::string& name, int kh,
             int kw, int cin, int cout, int hw) {
  L.push_back(conv_rect(name, kh, kw, cin, cout, hw));
  L.push_back(bn(name + ".bn", cout, hw));
}

void inception_a(std::vector<LayerSpec>& L, const std::string& p, int cin,
                 int pool_features) {
  const int hw = 35;
  cb(L, p + ".b1x1", 1, cin, 64, hw);
  cb(L, p + ".b5x5_1", 1, cin, 48, hw);
  cb(L, p + ".b5x5_2", 5, 48, 64, hw);
  cb(L, p + ".b3x3dbl_1", 1, cin, 64, hw);
  cb(L, p + ".b3x3dbl_2", 3, 64, 96, hw);
  cb(L, p + ".b3x3dbl_3", 3, 96, 96, hw);
  cb(L, p + ".bpool", 1, cin, pool_features, hw);
}

void inception_b(std::vector<LayerSpec>& L, const std::string& p, int cin) {
  cb(L, p + ".b3x3", 3, cin, 384, 17);
  cb(L, p + ".b3x3dbl_1", 1, cin, 64, 35);
  cb(L, p + ".b3x3dbl_2", 3, 64, 96, 35);
  cb(L, p + ".b3x3dbl_3", 3, 96, 96, 17);
}

void inception_c(std::vector<LayerSpec>& L, const std::string& p, int cin,
                 int c7) {
  const int hw = 17;
  cb(L, p + ".b1x1", 1, cin, 192, hw);
  cb(L, p + ".b7x7_1", 1, cin, c7, hw);
  cb_rect(L, p + ".b7x7_2", 1, 7, c7, c7, hw);
  cb_rect(L, p + ".b7x7_3", 7, 1, c7, 192, hw);
  cb(L, p + ".b7x7dbl_1", 1, cin, c7, hw);
  cb_rect(L, p + ".b7x7dbl_2", 7, 1, c7, c7, hw);
  cb_rect(L, p + ".b7x7dbl_3", 1, 7, c7, c7, hw);
  cb_rect(L, p + ".b7x7dbl_4", 7, 1, c7, c7, hw);
  cb_rect(L, p + ".b7x7dbl_5", 1, 7, c7, 192, hw);
  cb(L, p + ".bpool", 1, cin, 192, hw);
}

void inception_d(std::vector<LayerSpec>& L, const std::string& p, int cin) {
  cb(L, p + ".b3x3_1", 1, cin, 192, 17);
  cb(L, p + ".b3x3_2", 3, 192, 320, 8);
  cb(L, p + ".b7x7x3_1", 1, cin, 192, 17);
  cb_rect(L, p + ".b7x7x3_2", 1, 7, 192, 192, 17);
  cb_rect(L, p + ".b7x7x3_3", 7, 1, 192, 192, 17);
  cb(L, p + ".b7x7x3_4", 3, 192, 192, 8);
}

void inception_e(std::vector<LayerSpec>& L, const std::string& p, int cin) {
  const int hw = 8;
  cb(L, p + ".b1x1", 1, cin, 320, hw);
  cb(L, p + ".b3x3_1", 1, cin, 384, hw);
  cb_rect(L, p + ".b3x3_2a", 1, 3, 384, 384, hw);
  cb_rect(L, p + ".b3x3_2b", 3, 1, 384, 384, hw);
  cb(L, p + ".b3x3dbl_1", 1, cin, 448, hw);
  cb(L, p + ".b3x3dbl_2", 3, 448, 384, hw);
  cb_rect(L, p + ".b3x3dbl_3a", 1, 3, 384, 384, hw);
  cb_rect(L, p + ".b3x3dbl_3b", 3, 1, 384, 384, hw);
  cb(L, p + ".bpool", 1, cin, 192, hw);
}

}  // namespace

ModelSpec inception_v3() {
  ModelSpec m;
  m.name = "InceptionV3";
  m.sample_unit = "images";
  auto& L = m.layers;

  // Stem (299x299 input; auxiliary classifier excluded, as in the MXNet
  // training configuration the paper benchmarks).
  cb(L, "Conv2d_1a", 3, 3, 32, 149);
  cb(L, "Conv2d_2a", 3, 32, 32, 147);
  cb(L, "Conv2d_2b", 3, 32, 64, 147);
  cb(L, "Conv2d_3b", 1, 64, 80, 73);
  cb(L, "Conv2d_4a", 3, 80, 192, 71);

  inception_a(L, "Mixed_5b", 192, 32);   // -> 256
  inception_a(L, "Mixed_5c", 256, 64);   // -> 288
  inception_a(L, "Mixed_5d", 288, 64);   // -> 288
  inception_b(L, "Mixed_6a", 288);       // -> 768
  inception_c(L, "Mixed_6b", 768, 128);
  inception_c(L, "Mixed_6c", 768, 160);
  inception_c(L, "Mixed_6d", 768, 160);
  inception_c(L, "Mixed_6e", 768, 192);
  inception_d(L, "Mixed_7a", 768);       // -> 1280
  inception_e(L, "Mixed_7b", 1280);      // -> 2048
  inception_e(L, "Mixed_7c", 2048);

  L.push_back(fc("fc", 2048, 1000));
  return m;
}

}  // namespace p3::model
