#include <string>
#include <vector>

#include "model/zoo.h"
#include "model/zoo_util.h"

namespace p3::model {
namespace {

using detail::bn;
using detail::conv;
using detail::fc;

/// Append one ImageNet bottleneck block (1x1 down, 3x3, 1x1 up) with batch
/// norms; `downsample` adds the 1x1 projection shortcut.
void bottleneck(std::vector<LayerSpec>& layers, const std::string& prefix,
                int cin, int width, int cout, int out_hw, bool downsample) {
  layers.push_back(conv(prefix + ".conv1", 1, cin, width, out_hw));
  layers.push_back(bn(prefix + ".bn1", width, out_hw));
  layers.push_back(conv(prefix + ".conv2", 3, width, width, out_hw));
  layers.push_back(bn(prefix + ".bn2", width, out_hw));
  layers.push_back(conv(prefix + ".conv3", 1, width, cout, out_hw));
  layers.push_back(bn(prefix + ".bn3", cout, out_hw));
  if (downsample) {
    layers.push_back(conv(prefix + ".downsample", 1, cin, cout, out_hw));
    layers.push_back(bn(prefix + ".downsample_bn", cout, out_hw));
  }
}

/// CIFAR basic block (3x3, 3x3) for ResNet-110.
void basic_block(std::vector<LayerSpec>& layers, const std::string& prefix,
                 int cin, int cout, int out_hw, bool downsample) {
  layers.push_back(conv(prefix + ".conv1", 3, cin, cout, out_hw));
  layers.push_back(bn(prefix + ".bn1", cout, out_hw));
  layers.push_back(conv(prefix + ".conv2", 3, cout, cout, out_hw));
  layers.push_back(bn(prefix + ".bn2", cout, out_hw));
  if (downsample) {
    layers.push_back(conv(prefix + ".downsample", 1, cin, cout, out_hw));
    layers.push_back(bn(prefix + ".downsample_bn", cout, out_hw));
  }
}

}  // namespace

ModelSpec resnet50() {
  ModelSpec m;
  m.name = "ResNet-50";
  m.sample_unit = "images";
  auto& L = m.layers;

  L.push_back(conv("conv1", 7, 3, 64, 112));
  L.push_back(bn("bn1", 64, 112));

  struct Stage {
    int blocks, width, cout, hw;
  };
  // Standard [3,4,6,3] bottleneck stages at 56/28/14/7 spatial resolution.
  const Stage stages[] = {
      {3, 64, 256, 56}, {4, 128, 512, 28}, {6, 256, 1024, 14}, {3, 512, 2048, 7}};
  int cin = 64;
  int stage_idx = 1;
  for (const auto& st : stages) {
    for (int b = 0; b < st.blocks; ++b) {
      const std::string prefix =
          "layer" + std::to_string(stage_idx) + "." + std::to_string(b);
      bottleneck(L, prefix, cin, st.width, st.cout, st.hw, b == 0);
      cin = st.cout;
    }
    ++stage_idx;
  }

  L.push_back(fc("fc", 2048, 1000));
  return m;
}

ModelSpec resnet110_cifar() {
  ModelSpec m;
  m.name = "ResNet-110";
  m.sample_unit = "images";
  auto& L = m.layers;

  L.push_back(conv("conv1", 3, 3, 16, 32));
  L.push_back(bn("bn1", 16, 32));

  // Three stages of 18 basic blocks: 16@32x32, 32@16x16, 64@8x8.
  const int channels[] = {16, 32, 64};
  const int hw[] = {32, 16, 8};
  int cin = 16;
  for (int s = 0; s < 3; ++s) {
    for (int b = 0; b < 18; ++b) {
      const std::string prefix =
          "layer" + std::to_string(s + 1) + "." + std::to_string(b);
      basic_block(m.layers, prefix, cin, channels[s], hw[s],
                  b == 0 && s > 0);
      cin = channels[s];
    }
  }
  L.push_back(fc("fc", 64, 10));
  return m;
}

}  // namespace p3::model
