#include <string>

#include "model/zoo.h"
#include "model/zoo_util.h"

namespace p3::model {
namespace {

using detail::dense_seq;
using detail::embedding;

constexpr int kDim = 512;
constexpr int kFfn = 2048;
constexpr double kTokens = 30.0;

void layer_norm(std::vector<LayerSpec>& L, const std::string& name) {
  LayerSpec ln;
  ln.name = name;
  ln.params = 2LL * kDim;  // scale + shift
  ln.fwd_flops = kTokens * 8.0 * kDim;
  L.push_back(ln);
}

void attention(std::vector<LayerSpec>& L, const std::string& prefix) {
  for (const char* proj : {"q", "k", "v", "o"}) {
    L.push_back(dense_seq(prefix + "." + proj + "_proj", kDim, kDim, kTokens));
  }
  layer_norm(L, prefix + ".norm");
}

void ffn(std::vector<LayerSpec>& L, const std::string& prefix) {
  L.push_back(dense_seq(prefix + ".ffn1", kDim, kFfn, kTokens));
  L.push_back(dense_seq(prefix + ".ffn2", kFfn, kDim, kTokens));
  layer_norm(L, prefix + ".norm");
}

}  // namespace

// Transformer-base NMT model (Vaswani et al. 2017) — the architecture that
// displaced Sockeye's RNN stack shortly after the paper. Communication-wise
// it combines both pathological shapes the paper studies: a very heavy
// *initial* layer (the 16.4M-parameter shared embedding, like Sockeye) and
// a long uniform trunk of medium tensors (like ResNet, but denser). Output
// projection weights are tied to the embedding, so only its bias remains at
// the end.
ModelSpec transformer_base() {
  constexpr int kVocab = 32'000;

  ModelSpec m;
  m.name = "Transformer";
  m.sample_unit = "sentences";
  auto& L = m.layers;

  L.push_back(embedding("shared.embed", kVocab, kDim, 2.0 * kTokens));
  for (int i = 1; i <= 6; ++i) {
    const std::string p = "encoder.l" + std::to_string(i);
    attention(L, p + ".self_attn");
    ffn(L, p);
  }
  for (int i = 1; i <= 6; ++i) {
    const std::string p = "decoder.l" + std::to_string(i);
    attention(L, p + ".self_attn");
    attention(L, p + ".cross_attn");
    ffn(L, p);
  }
  // Tied output projection: only the bias is a fresh tensor.
  LayerSpec out_bias;
  out_bias.name = "output.bias";
  out_bias.params = kVocab;
  out_bias.fwd_flops = kTokens * 2.0 * kDim * kVocab;  // the tied matmul
  L.push_back(out_bias);
  return m;
}

}  // namespace p3::model
