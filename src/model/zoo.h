// Model zoo: the four evaluation models from the paper plus ResNet-110
// (used for the accuracy studies) and toy builders for the schedule figures.
//
// Parameter counts are computed from the published architectures (weights,
// biases and batch-norm scale/shift), so the distributions in Figure 5 —
// VGG-19's fc6 holding 71.5 % of all parameters, ResNet-50 peaking at
// ~2.4 M, Sockeye's heavy initial embedding — are reproduced exactly.
// FLOPs are standard dense/conv estimates used only to apportion compute
// time across layers.
#pragma once

#include "model/model.h"

namespace p3::model {

/// ResNet-50 for ImageNet (He et al. 2015): ~25.6 M params, 161 tensors.
ModelSpec resnet50();

/// VGG-19 for ImageNet (Simonyan & Zisserman 2014): ~143.7 M params;
/// fc6 alone holds 102.8 M (71.5 %).
ModelSpec vgg19();

/// InceptionV3 for ImageNet (Szegedy et al. 2015): ~23.8 M params.
ModelSpec inception_v3();

/// Sockeye NMT model on IWSLT15 (Hieber et al. 2017): ~36 M params with a
/// heavy *initial* embedding layer — the case where priority alone cannot
/// help (gradients arrive last) but slicing + bidirectional overlap can.
ModelSpec sockeye();

/// ResNet-110 for CIFAR-10: ~1.7 M params (accuracy experiments).
ModelSpec resnet110_cifar();

/// Transformer-base NMT (Vaswani et al. 2017): ~60 M params with a heavy
/// tied embedding up front — an extension workload postdating the paper.
ModelSpec transformer_base();

/// AlexNet (Krizhevsky et al. 2012): ~61 M params, 94 % of them in the
/// three FC layers — the historical extreme of parameter skew.
ModelSpec alexnet();

/// Uniform toy model: `n_layers` layers of `params_per_layer` parameters,
/// equal FLOPs. Used for Figure 4.
ModelSpec toy_uniform(int n_layers, std::int64_t params_per_layer);

/// Toy model with explicit per-layer parameter counts (equal FLOPs unless
/// `flops` given). Used for Figure 6 (middle layer 3x heavier).
ModelSpec toy_custom(const std::vector<std::int64_t>& params,
                     const std::vector<double>& flops = {});

}  // namespace p3::model
