#include "model/zoo.h"
#include "model/zoo_util.h"

namespace p3::model {

// Sockeye NMT model (Hieber et al. 2017) as configured for IWSLT15-scale
// data: 512-unit embeddings, a bidirectional LSTM encoder layer followed by
// three stacked unidirectional layers, an MLP attention mechanism, and a
// four-layer LSTM decoder. Vocabulary sizes (~16.6k source, ~8.3k target)
// match IWSLT15 vi-en BPE vocabularies, which puts the *first* layer — the
// source embedding, 8.5 M parameters — far above everything else (Fig 5c),
// the configuration where the paper observes that heavy initial layers make
// LSTM models hard to scale.
ModelSpec sockeye() {
  using detail::dense_seq;
  using detail::embedding;
  using detail::lstm;

  constexpr double kTokens = 30.0;  // average IWSLT15 sentence length
  constexpr int kDim = 512;
  constexpr int kSrcVocab = 16600;
  constexpr int kTgtVocab = 8300;

  ModelSpec m;
  m.name = "Sockeye";
  m.sample_unit = "sentences";
  auto& L = m.layers;

  // --- encoder ---
  L.push_back(embedding("encoder.embed", kSrcVocab, kDim, kTokens));
  lstm(L, "encoder.birnn.fwd", kDim, kDim / 2, kTokens);
  lstm(L, "encoder.birnn.rev", kDim, kDim / 2, kTokens);
  for (int i = 1; i <= 3; ++i) {
    lstm(L, "encoder.rnn.l" + std::to_string(i), kDim, kDim, kTokens);
  }

  // --- attention (MLP attention: query/key projections + score vector) ---
  L.push_back(dense_seq("attention.query", kDim, kDim, kTokens, false));
  L.push_back(dense_seq("attention.key", kDim, kDim, kTokens, false));
  L.push_back(dense_seq("attention.score", kDim, 1, kTokens, false));

  // --- decoder ---
  L.push_back(embedding("decoder.embed", kTgtVocab, kDim, kTokens));
  // First decoder layer consumes [embedding ; attention context].
  lstm(L, "decoder.rnn.l1", 2 * kDim, kDim, kTokens);
  for (int i = 2; i <= 4; ++i) {
    lstm(L, "decoder.rnn.l" + std::to_string(i), kDim, kDim, kTokens);
  }
  L.push_back(dense_seq("decoder.hidden", 2 * kDim, kDim, kTokens));
  L.push_back(dense_seq("decoder.logits", kDim, kTgtVocab, kTokens));
  return m;
}

ModelSpec toy_uniform(int n_layers, std::int64_t params_per_layer) {
  ModelSpec m;
  m.name = "toy-uniform";
  for (int i = 0; i < n_layers; ++i) {
    LayerSpec l;
    l.name = "L" + std::to_string(i + 1);
    l.params = params_per_layer;
    l.fwd_flops = 1.0;
    m.layers.push_back(l);
  }
  return m;
}

}  // namespace p3::model
