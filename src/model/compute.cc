#include "model/compute.h"

#include <numeric>
#include <stdexcept>

#include "model/zoo.h"

namespace p3::model {

TimeS ComputeProfile::total_fwd() const {
  return std::accumulate(fwd.begin(), fwd.end(), 0.0);
}

TimeS ComputeProfile::total_bwd() const {
  return std::accumulate(bwd.begin(), bwd.end(), 0.0);
}

ComputeProfile make_profile(const ModelSpec& model, TimeS iter_compute_time,
                            const GpuModelConfig& config) {
  const int n = model.num_layers();
  if (n == 0) throw std::invalid_argument("model has no layers");
  if (iter_compute_time <= 0.0) {
    throw std::invalid_argument("non-positive compute budget");
  }

  const double total_flops = model.total_fwd_flops();
  const TimeS overhead_total = 2.0 * n * config.layer_overhead;
  TimeS flops_budget = iter_compute_time - overhead_total;
  if (flops_budget < 0.0) flops_budget = 0.0;  // overhead-dominated tiny nets

  const double fwd_share = 1.0 / (1.0 + config.bwd_ratio);
  ComputeProfile p;
  p.fwd.resize(static_cast<std::size_t>(n));
  p.bwd.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double frac =
        total_flops > 0.0
            ? model.layers[static_cast<std::size_t>(i)].fwd_flops / total_flops
            : 1.0 / n;
    const TimeS layer_budget = flops_budget * frac;
    p.fwd[static_cast<std::size_t>(i)] =
        config.layer_overhead + layer_budget * fwd_share;
    p.bwd[static_cast<std::size_t>(i)] =
        config.layer_overhead + layer_budget * (1.0 - fwd_share);
  }
  return p;
}

// Calibration: per-worker plateau throughput = batch / iter_compute_time.
// Four-worker plateaus in Figure 7: ResNet-50 ~105 img/s, InceptionV3
// ~70 img/s, VGG-19 (P3, 30 Gbps) ~52 img/s, Sockeye ~160 sentences/s.

Workload workload_resnet50() {
  return Workload{resnet50(), 8, 0.305};  // 26.2 img/s/worker
}

Workload workload_inception_v3() {
  return Workload{inception_v3(), 8, 0.457};  // 17.5 img/s/worker
}

Workload workload_vgg19() {
  return Workload{vgg19(), 8, 0.571};  // 14.0 img/s/worker
}

Workload workload_sockeye() {
  return Workload{sockeye(), 16, 0.40};  // 40 sentences/s/worker
}

Workload workload_transformer() {
  return Workload{transformer_base(), 16, 0.72};  // ~22 sentences/s/worker
}

}  // namespace p3::model
