#include "model/zoo.h"
#include "model/zoo_util.h"

namespace p3::model {

// AlexNet (Krizhevsky et al. 2012): the historical extreme of the skew the
// paper studies — the three fully-connected layers hold ~94% of the 61M
// parameters, with fc6 alone at 37.8M (62%). Included as an additional
// zoo entry for skew-sensitivity experiments.
ModelSpec alexnet() {
  using detail::conv_bias;
  using detail::fc;

  ModelSpec m;
  m.name = "AlexNet";
  m.sample_unit = "images";
  auto& L = m.layers;

  L.push_back(conv_bias("conv1", 11, 3, 96, 55));
  L.push_back(conv_bias("conv2", 5, 96, 256, 27));
  L.push_back(conv_bias("conv3", 3, 256, 384, 13));
  L.push_back(conv_bias("conv4", 3, 384, 384, 13));
  L.push_back(conv_bias("conv5", 3, 384, 256, 13));
  L.push_back(fc("fc6", 256 * 6 * 6, 4096));  // 37.75M
  L.push_back(fc("fc7", 4096, 4096));
  L.push_back(fc("fc8", 4096, 1000));
  return m;
}

}  // namespace p3::model
