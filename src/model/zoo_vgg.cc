#include "model/zoo.h"
#include "model/zoo_util.h"

namespace p3::model {

ModelSpec vgg19() {
  using detail::conv_bias;
  using detail::fc;

  ModelSpec m;
  m.name = "VGG-19";
  m.sample_unit = "images";
  auto& L = m.layers;

  // Configuration E: 16 conv layers (with biases), then three FC layers.
  // Spatial size halves after each pooling stage: 224/112/56/28/14, FCs at 7.
  L.push_back(conv_bias("conv1_1", 3, 3, 64, 224));
  L.push_back(conv_bias("conv1_2", 3, 64, 64, 224));
  L.push_back(conv_bias("conv2_1", 3, 64, 128, 112));
  L.push_back(conv_bias("conv2_2", 3, 128, 128, 112));
  L.push_back(conv_bias("conv3_1", 3, 128, 256, 56));
  L.push_back(conv_bias("conv3_2", 3, 256, 256, 56));
  L.push_back(conv_bias("conv3_3", 3, 256, 256, 56));
  L.push_back(conv_bias("conv3_4", 3, 256, 256, 56));
  L.push_back(conv_bias("conv4_1", 3, 256, 512, 28));
  L.push_back(conv_bias("conv4_2", 3, 512, 512, 28));
  L.push_back(conv_bias("conv4_3", 3, 512, 512, 28));
  L.push_back(conv_bias("conv4_4", 3, 512, 512, 28));
  L.push_back(conv_bias("conv5_1", 3, 512, 512, 14));
  L.push_back(conv_bias("conv5_2", 3, 512, 512, 14));
  L.push_back(conv_bias("conv5_3", 3, 512, 512, 14));
  L.push_back(conv_bias("conv5_4", 3, 512, 512, 14));
  // fc6: 512*7*7 -> 4096 = 102,764,544 params, 71.5% of the model.
  L.push_back(fc("fc6", 512 * 7 * 7, 4096));
  L.push_back(fc("fc7", 4096, 4096));
  L.push_back(fc("fc8", 4096, 1000));
  return m;
}

}  // namespace p3::model
