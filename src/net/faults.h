// Deterministic, seeded fault injection for the network substrate.
//
// A `FaultPlan` declares what goes wrong on the wire — probabilistic message
// drops, timed link blackouts (flaps), `tc netem`-style degradation windows
// (bandwidth dip + latency spike) and node pauses (straggler freezes). A
// `FaultInjector` evaluates the plan per message; all randomness flows
// through the library `Rng`, so a run is bit-reproducible from its seed.
//
// Scope: faults model the *wire*. Loopback traffic between colocated
// processes (src == dst) is process-local memory movement and is never
// faulted. Recovering from injected faults is the job of the reliability
// layer in `ps::Cluster` (ack / timeout / retransmit / dedup; see
// docs/PROTOCOL.md) — the network itself stays fire-and-forget.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "net/message.h"

namespace p3::net {

/// Per-link drop-probability override; -1 endpoints are wildcards.
struct LinkDrop {
  int src = -1;
  int dst = -1;
  double probability = 0.0;
};

/// Link blackout (flap): every message entering the wire on a matching link
/// during [start, end) is lost. -1 endpoints are wildcards, so a flap of one
/// node's NIC is {node, -1} plus {-1, node}.
struct LinkFlap {
  int src = -1;
  int dst = -1;
  TimeS start = 0.0;
  TimeS end = 0.0;
};

/// `tc netem`-style degradation window on a node's egress: messages starting
/// TX during [start, end) serialize at rate * bandwidth_factor and pay
/// extra_latency of added propagation delay. node == -1 degrades every node.
struct Degradation {
  int node = -1;
  TimeS start = 0.0;
  TimeS end = 0.0;
  double bandwidth_factor = 1.0;  ///< (0, 1]; 0.1 = 90% bandwidth dip
  TimeS extra_latency = 0.0;
};

/// Straggler freeze: the node's NIC is frozen during [start, start+duration)
/// — TX reservations and RX serialization wait for the pause to end.
struct NodePause {
  int node = -1;
  TimeS start = 0.0;
  TimeS duration = 0.0;
};

/// Process death: the node crashes at `at`, losing all in-memory state and
/// tearing down in-flight transfers (messages serializing to or from it die
/// in the fabric). `restart_after >= 0` brings a fresh process up at
/// `at + restart_after` (recovery is the protocol layer's job:
/// checkpoint rehydration for servers, rejoin for workers);
/// `restart_after < 0` means the node never returns.
struct NodeCrash {
  int node = -1;
  TimeS at = 0.0;
  TimeS restart_after = -1.0;

  bool restarts() const { return restart_after >= 0.0; }
  TimeS restart_time() const { return at + restart_after; }
  /// True if the node is down at time `t`.
  bool down_at(TimeS t) const {
    return t >= at && (!restarts() || t < restart_time());
  }
};

/// Network partition: the fabric cleaves two node sets apart. Every message
/// crossing the cut while the partition is active is lost (the sender still
/// pays TX serialization — its bits die in the fabric), and an in-flight
/// transfer whose RX window overlaps the cut is torn down. `symmetric` cuts
/// both directions; asymmetric cuts only side_a -> side_b (side_b can still
/// reach side_a, the one-way failure mode that defeats naive lease renewal).
/// `flap_period > 0` makes the cut oscillate: within [start, heal) the
/// partition is active only during the first half of each period.
struct NetPartition {
  std::vector<int> side_a;
  std::vector<int> side_b;
  TimeS start = 0.0;
  TimeS heal = 0.0;  ///< active in [start, heal)
  bool symmetric = true;
  TimeS flap_period = 0.0;

  /// True if the cut severs src -> dst traffic at time `t`.
  bool severs(int src, int dst, TimeS t) const;
  /// True if the cut severs src -> dst at any point of [t0, t1].
  bool severs_during(int src, int dst, TimeS t0, TimeS t1) const;
  bool in_a(int node) const;
  bool in_b(int node) const;
};

/// Elastic scale-out: a brand-new node (one that was never a member) is
/// admitted at `at`. The protocol layer brings its worker and colocated
/// server online, rebalances shard groups onto it, and expands the
/// aggregation contributor set (docs/PROTOCOL.md). Joiner ids must extend
/// the base cluster contiguously (base, base+1, ...).
struct NodeJoin {
  int node = -1;
  TimeS at = 0.0;
};

/// Voluntary drain/leave: at `at` the node enters draining mode — it stops
/// accepting new shard leadership, live-migrates the groups it leads out
/// over the reliable kMigrate streams, then retires permanently (a retired
/// node never returns as a contributor or leaseholder; PROTOCOL.md
/// invariant 12). Not a wire fault; executed by ps::Cluster. A crash that
/// lands mid-drain kills the drain intent with the process and the normal
/// failover path takes over.
struct NodeLeave {
  int node = -1;
  TimeS at = 0.0;
};

struct FaultPlan {
  /// Cluster-wide per-message drop probability (every remote link).
  double drop_prob = 0.0;
  /// Per-link overrides; the first matching entry wins over `drop_prob`.
  std::vector<LinkDrop> link_drops;
  std::vector<LinkFlap> flaps;
  std::vector<Degradation> degradations;
  std::vector<NodePause> pauses;
  std::vector<NodeCrash> crashes;
  /// Fabric-level partitions (node-set x node-set cuts, see NetPartition).
  std::vector<NetPartition> partitions;
  /// Runtime node admissions (not wire faults; executed by ps::Cluster).
  std::vector<NodeJoin> joins;
  /// Voluntary drain/leave schedule (not wire faults; executed by
  /// ps::Cluster — see NodeLeave).
  std::vector<NodeLeave> leaves;
  /// Set: shard leadership is lease-based — a primary's tenure is a
  /// time-bounded lease renewed by received heartbeats, and failover waits
  /// for the lease to expire instead of acting on a per-observer silence
  /// threshold (no dual-primary window). Unset: legacy suspicion-timeout
  /// failover. Must be positive when set, and should comfortably exceed
  /// the suspicion timeout (detection still uses the silence threshold;
  /// the lease only gates when a successor may act on it).
  std::optional<TimeS> lease_duration;
  /// Per-node clock drift model. Each node's local clock runs at rate
  /// (1 + r) with |r| <= clock_drift_rate and starts offset by up to
  /// +-clock_offset_bound, both sampled deterministically from the cluster
  /// seed. Every node-local timestamp the lease logic reads (beacon feed,
  /// suspicion evaluation, lease grants and fences) moves to the drifted
  /// clock; ground-truth accounting stays on simulated time. The lease
  /// subsystem derives its safety margin from `clock_drift_rate` — see
  /// docs/PROTOCOL.md. Both default to 0 (perfectly synchronized clocks,
  /// no behavior change).
  double clock_drift_rate = 0.0;
  TimeS clock_offset_bound = 0.0;
  /// Seed for drop sampling; 0 = derive from the attaching cluster's seed.
  std::uint64_t seed = 0;

  /// True if the plan can affect any message (the reliability layer in
  /// ps::Cluster is armed exactly when this holds).
  bool active() const {
    return drop_prob > 0.0 || !link_drops.empty() || !flaps.empty() ||
           !degradations.empty() || !pauses.empty() || !crashes.empty() ||
           !partitions.empty();
  }
  /// True if the per-node clock drift model is armed.
  bool skewed() const {
    return clock_drift_rate > 0.0 || clock_offset_bound > 0.0;
  }

  /// Reject nonsense plans at attach time with a descriptive
  /// std::invalid_argument instead of silently simulating garbage:
  /// probabilities outside [0, 1], negative or inverted windows,
  /// `bandwidth_factor` outside (0, 1], crashes with negative times or on
  /// anonymous nodes, joins scheduled inside the same node's
  /// crash-with-restart window (the joining process cannot be down), a
  /// non-positive `lease_duration`, malformed partitions (an empty side,
  /// overlapping sides, heal before start, a negative flap period, or —
  /// with `base_nodes >= 0` — partitioning a node id that never exists in
  /// the cluster), and negative clock-drift bounds. Wildcard (-1) endpoints
  /// stay legal
  /// everywhere except `NodeCrash::node` / `NodeJoin::node` (both must name
  /// their node).
  ///
  /// Leaves are checked the same way: a leave needs a node id and a
  /// non-negative time, at most one leave per node, must not be scheduled
  /// while the same node's crash has it down (a dead process cannot drain;
  /// a crash that fires *after* the drain starts stays legal — that is the
  /// drain×crash chaos path), and a leave of a joiner must come after its
  /// join.
  ///
  /// `base_nodes >= 0` additionally enables membership checks against the
  /// attaching cluster: a join for an id that is already a member at join
  /// time (a base node, or a duplicate join) is rejected, joiner ids
  /// must extend the cluster contiguously, a leave must name a node that
  /// exists, and — with `replication` set to the attaching cluster's chain
  /// length — a leave schedule that would drop a shard group's last live
  /// replica (every home-chain member leaving or permanently crashed, with
  /// no joiners to absorb the group) is rejected. `base_nodes < 0` (the
  /// default) skips those checks for callers that do not know the cluster
  /// size.
  void validate(int base_nodes = -1, int replication = 1) const;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan,
                         std::uint64_t fallback_seed = 0x51cede7e11ab1eULL);

  const FaultPlan& plan() const { return plan_; }

  /// Decide the fate of one message entering the wire at `tx_start`.
  /// Deterministic in call order: the RNG is consumed only when the matched
  /// drop probability is in (0, 1). Never drops loopback (src == dst).
  bool should_drop(const Message& m, TimeS tx_start);

  /// Egress bandwidth multiplier for `node` at time `t` (product of all
  /// matching degradation windows; 1.0 when clear).
  double bandwidth_factor(int node, TimeS t) const;

  /// Added propagation delay for `node`'s egress at time `t`.
  TimeS extra_latency(int node, TimeS t) const;

  /// Earliest time >= `t` at which `node` is not paused.
  TimeS pause_release(int node, TimeS t) const;

  /// True if a planned crash has `node` down at time `t`.
  bool crashed(int node, TimeS t) const;

  /// True if `node` is down at any point of [t0, t1] (a transfer whose RX
  /// window overlaps a down window is torn down with the node).
  bool down_during(int node, TimeS t0, TimeS t1) const;

  /// True if any active partition severs src -> dst traffic at time `t`.
  bool partition_severs(int src, int dst, TimeS t) const;

  /// True if src -> dst is severed at any point of [t0, t1] (a transfer
  /// whose RX window overlaps the cut is torn down in the fabric).
  bool severed_during(int src, int dst, TimeS t0, TimeS t1) const;

  /// Messages this injector decided to drop.
  std::int64_t drops() const { return drops_; }
  /// Subset of `drops()` caused by a partition cut at TX time.
  std::int64_t partition_drops() const { return partition_drops_; }

 private:
  double drop_probability(int src, int dst) const;
  bool in_blackout(int src, int dst, TimeS t) const;

  FaultPlan plan_;
  Rng rng_;
  std::int64_t drops_ = 0;
  std::int64_t partition_drops_ = 0;
};

}  // namespace p3::net
