// Wire message descriptor.
//
// The network layer only cares about src/dst/bytes; the remaining fields are
// protocol metadata filled in by the parameter-server layer (`p3::ps`,
// `p3::core`). Keeping one flat POD avoids type-erasure in the hot path and
// keeps the simulator allocation-free per message.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace p3::net {

/// Protocol message kinds (parameter-server protocol, Section 4 of the
/// paper). The network layer treats these opaquely.
enum class MsgKind : std::uint8_t {
  kPushGradient = 0,  ///< worker -> server: gradient slice payload
  kNotify = 1,        ///< server -> worker: "key updated" control message
  kPullRequest = 2,   ///< worker -> server: parameter pull control message
  kParams = 3,        ///< server -> worker: updated parameter payload
  kBackground = 4,    ///< foreign tenant traffic (dropped by the protocol)
  kAck = 5,           ///< reliability layer: per-message acknowledgement
  // --- crash recovery / elastic membership (docs/PROTOCOL.md) ---
  kHeartbeat = 6,     ///< node -> node: liveness beacon (fire-and-forget)
  kReplicate = 7,     ///< primary -> backup: shard update propagation
  kNewPrimary = 8,    ///< new primary -> all: leadership announcement
  kJoinRequest = 9,   ///< restarted worker -> servers: rejoin + param sync
  kSyncRequest = 10,  ///< restarted server -> group peers: state delta ask
  kSyncData = 11,     ///< group leader -> restarted server: state delta
  kRecheck = 12,      ///< internal server wakeup; never crosses the wire
  // --- elastic scale-out (docs/PROTOCOL.md) ---
  kServerJoin = 13,   ///< joining server -> all: admission + rebalance ask
  kMigrate = 14,      ///< donor primary -> joiner: shard-state migration
  // --- rack-scale hierarchy (docs/PROTOCOL.md) ---
  kRackPush = 15,     ///< worker -> rack aggregator: gradient slice payload
  kRackParams = 16,   ///< server -> rack aggregator: params for re-broadcast
};

struct Message {
  int src = -1;
  int dst = -1;
  MsgKind kind = MsgKind::kPushGradient;
  std::int64_t slice = -1;     ///< slice/shard key
  int layer = -1;              ///< owning layer index (forward order)
  int priority = 0;            ///< smaller value = more urgent (layer 0 first)
  std::int64_t iteration = -1; ///< training iteration the payload belongs to
  int worker = -1;             ///< originating worker for pushes/pulls
  Bytes bytes = 0;             ///< total wire size including header
  /// Logical (uncompressed) payload this message carries; the protocol layer
  /// does its accounting on this while the network serializes `bytes`.
  /// 0 = same as the wire payload.
  Bytes logical = 0;
  /// Reliable-delivery sequence number; retransmissions reuse the original
  /// id so receivers can deduplicate. -1 = unreliable (fire-and-forget);
  /// for kAck it names the message being acknowledged.
  std::int64_t msg_id = -1;
  /// Shard-state version this message carries or refers to: the parameter
  /// version of a kParams/kReplicate/kSyncData payload, the requester's
  /// checkpointed version in a kSyncRequest. -1 = versionless message.
  /// Receivers deduplicate parameter payloads on this, which makes crash
  /// recovery (re-pushes, failover re-sends, rejoin syncs) idempotent even
  /// across distinct msg_ids.
  std::int64_t version = -1;
  /// Observability correlation id (obs::make_trace_id) linking this message
  /// to one slice's lifecycle. -1 = untraced; only set while a tracer is
  /// attached and enabled, so it never affects protocol behaviour.
  std::int64_t trace_id = -1;
  /// Aggregated-push cover id. A rack aggregator's combined kPushGradient
  /// carries the id of the contributor set it pre-reduced (resolved by the
  /// protocol layer), standing in for the member list a real wire format
  /// would carry in the payload. -1 = ordinary single-worker message.
  std::int64_t agg_id = -1;
};

/// Fixed per-message header overhead (ps-lite style key+meta).
constexpr Bytes kHeaderBytes = 64;
/// Size of control messages (notify / pull request).
constexpr Bytes kControlBytes = 256;
/// Size of reliability acknowledgements (header only).
constexpr Bytes kAckBytes = 64;
/// Size of a heartbeat beacon (header only).
constexpr Bytes kHeartbeatBytes = 64;

}  // namespace p3::net
