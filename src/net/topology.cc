#include "net/topology.h"

#include <stdexcept>
#include <string>

namespace p3::net {

int Topology::rack_of(int node) const {
  for (int r = 0; r < n_racks(); ++r) {
    for (int member : racks[static_cast<std::size_t>(r)]) {
      if (member == node) return r;
    }
  }
  return -1;
}

int Topology::aggregator_of(int rack) const {
  const auto& members = racks.at(static_cast<std::size_t>(rack));
  if (!aggregators.empty()) {
    return aggregators.at(static_cast<std::size_t>(rack));
  }
  return members.front();
}

void Topology::validate(int n_nodes) const {
  if (!active()) return;
  std::vector<int> seen;  // node -> rack, grown on demand
  for (int r = 0; r < n_racks(); ++r) {
    const auto& members = racks[static_cast<std::size_t>(r)];
    if (members.empty()) {
      throw std::invalid_argument("topology rack " + std::to_string(r) +
                                  " has no nodes");
    }
    for (int node : members) {
      if (node < 0 || (n_nodes >= 0 && node >= n_nodes)) {
        throw std::invalid_argument("topology rack " + std::to_string(r) +
                                    " names node " + std::to_string(node) +
                                    " outside the cluster");
      }
      if (node >= static_cast<int>(seen.size())) {
        seen.resize(static_cast<std::size_t>(node) + 1, -1);
      }
      if (seen[static_cast<std::size_t>(node)] >= 0) {
        throw std::invalid_argument(
            "node " + std::to_string(node) + " appears in racks " +
            std::to_string(seen[static_cast<std::size_t>(node)]) + " and " +
            std::to_string(r));
      }
      seen[static_cast<std::size_t>(node)] = r;
    }
  }
  if (n_nodes >= 0) {
    for (int node = 0; node < n_nodes; ++node) {
      if (node >= static_cast<int>(seen.size()) ||
          seen[static_cast<std::size_t>(node)] < 0) {
        throw std::invalid_argument("node " + std::to_string(node) +
                                    " is not assigned to any rack");
      }
    }
  }
  if (uplink_rate.has_value() && *uplink_rate <= 0) {
    throw std::invalid_argument("non-positive uplink tier bandwidth");
  }
  if (oversubscription < 1.0) {
    throw std::invalid_argument("oversubscription ratio must be >= 1");
  }
  if (tor_latency < 0 || spine_latency < 0) {
    throw std::invalid_argument("negative tier latency");
  }
  if (!aggregators.empty()) {
    if (static_cast<int>(aggregators.size()) != n_racks()) {
      throw std::invalid_argument(
          "aggregator list must name one node per rack");
    }
    for (int r = 0; r < n_racks(); ++r) {
      const int agg = aggregators[static_cast<std::size_t>(r)];
      const auto& members = racks[static_cast<std::size_t>(r)];
      bool in_rack = false;
      for (int member : members) in_rack |= (member == agg);
      if (!in_rack) {
        throw std::invalid_argument("aggregator " + std::to_string(agg) +
                                    " is not a member of rack " +
                                    std::to_string(r));
      }
    }
  }
}

}  // namespace p3::net
