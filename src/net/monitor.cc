#include "net/monitor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace p3::net {

UtilizationMonitor::UtilizationMonitor(int n_nodes, TimeS bin_width)
    : bin_width_(bin_width),
      out_(static_cast<std::size_t>(n_nodes)),
      in_(static_cast<std::size_t>(n_nodes)) {
  if (n_nodes <= 0) throw std::invalid_argument("need at least one node");
  if (bin_width <= 0.0) throw std::invalid_argument("non-positive bin width");
}

std::vector<double>& UtilizationMonitor::series(int node, Direction dir) {
  auto& side = dir == Direction::kOut ? out_ : in_;
  return side.at(static_cast<std::size_t>(node));
}

const std::vector<double>& UtilizationMonitor::series(int node,
                                                      Direction dir) const {
  const auto& side = dir == Direction::kOut ? out_ : in_;
  return side.at(static_cast<std::size_t>(node));
}

void UtilizationMonitor::record(int node, Direction dir, TimeS start,
                                TimeS end, Bytes bytes) {
  if (bytes <= 0) return;
  auto& bins = series(node, dir);
  if (end <= start) {
    // Instantaneous transfer: account wholly to the containing bin.
    const auto idx = static_cast<std::size_t>(start / bin_width_);
    if (bins.size() <= idx) bins.resize(idx + 1, 0.0);
    bins[idx] += static_cast<double>(bytes);
    return;
  }
  const double rate = static_cast<double>(bytes) / (end - start);
  // Grow lazily, only for bins the transfer actually covers: a transfer
  // ending exactly on a bin boundary must not materialize an empty trailing
  // bin (it would pad every derived utilization series with a zero row).
  for (auto b = static_cast<std::size_t>(start / bin_width_);
       static_cast<double>(b) * bin_width_ < end; ++b) {
    const double lo = std::max(start, static_cast<double>(b) * bin_width_);
    const double hi =
        std::min(end, (static_cast<double>(b) + 1.0) * bin_width_);
    if (hi <= lo) continue;
    if (bins.size() <= b) bins.resize(b + 1, 0.0);
    bins[b] += rate * (hi - lo);
  }
}

std::size_t UtilizationMonitor::bins(int node, Direction dir) const {
  return series(node, dir).size();
}

double UtilizationMonitor::bin_bytes(int node, Direction dir,
                                     std::size_t i) const {
  const auto& bins = series(node, dir);
  return i < bins.size() ? bins[i] : 0.0;
}

BitsPerSec UtilizationMonitor::bin_rate(int node, Direction dir,
                                        std::size_t i) const {
  return bin_bytes(node, dir, i) * kBitsPerByte / bin_width_;
}

double UtilizationMonitor::total_bytes(int node, Direction dir) const {
  const auto& bins = series(node, dir);
  double total = 0.0;
  for (double b : bins) total += b;
  return total;
}

double UtilizationMonitor::idle_fraction(int node, Direction dir,
                                         BitsPerSec threshold,
                                         std::size_t first,
                                         std::size_t last) const {
  if (last <= first) return 0.0;
  std::size_t idle = 0;
  for (std::size_t i = first; i < last; ++i) {
    if (bin_rate(node, dir, i) < threshold) ++idle;
  }
  return static_cast<double>(idle) / static_cast<double>(last - first);
}

BitsPerSec UtilizationMonitor::peak_rate(int node, Direction dir) const {
  const auto& bins = series(node, dir);
  double peak = 0.0;
  for (double b : bins) peak = std::max(peak, b);
  return peak * kBitsPerByte / bin_width_;
}

}  // namespace p3::net
