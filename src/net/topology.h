// Rack-scale cluster topology.
//
// The flat fabric in `Network` models a non-blocking switch: every NIC pair
// talks at full line rate. Real training clusters are racks behind a ToR
// switch whose uplink into the spine is *oversubscribed* — k machines share
// an uplink of k*NIC/oversubscription bits/s — so cross-rack traffic
// contends at the ToR port, not just at the sender's NIC. `Topology`
// describes that shape; when a `NetworkConfig` carries an active topology
// the network routes every remote message over the multi-hop path
//
//   src NIC -> ToR(src rack) [-> uplink -> spine -> downlink -> ToR(dst
//   rack)] -> dst NIC
//
// with per-hop serialization and priority-aware queueing at the shared
// uplink/downlink ports (see network.h). An empty `racks` list means flat:
// the network keeps the exact pre-topology behaviour, bit for bit.
//
// The optional per-rack `aggregators` name the node that hosts the
// rack-local pre-reduce stage used by `ps::Cluster` (Parameter Hub's
// rack-scale PS design); the network itself only validates them.
#pragma once

#include <optional>
#include <vector>

#include "common/units.h"

namespace p3::net {

struct Topology {
  /// racks[r] lists the node ids in rack r. Empty = flat topology (the
  /// default); when non-empty, every node must belong to exactly one rack.
  std::vector<std::vector<int>> racks;

  /// Uplink capacity divisor: each rack's ToR uplink serves
  /// sum(member NIC rates) / oversubscription bits/s. 1.0 = non-blocking
  /// (rebuildable line rate), 4.0 = the classic 4:1 oversubscribed spine.
  double oversubscription = 1.0;

  /// Explicit per-rack ToR<->spine rate; overrides the oversubscription
  /// derivation when set. Must be positive.
  std::optional<BitsPerSec> uplink_rate;

  TimeS tor_latency = us(1);    ///< node <-> ToR hop propagation
  TimeS spine_latency = us(5);  ///< ToR -> spine -> ToR crossing

  /// Per-rack aggregator node for the PS pre-reduce stage; empty = default
  /// (the first node listed in each rack). When set, one entry per rack,
  /// each naming a member of its own rack.
  std::vector<int> aggregators;

  /// Serve switch ports FIFO instead of priority order. Ablation knob: the
  /// priority-inversion counter is zero by construction under priority
  /// service and becomes meaningful under FIFO.
  bool fifo_ports = false;

  bool active() const { return !racks.empty(); }
  int n_racks() const { return static_cast<int>(racks.size()); }

  /// Rack holding `node`, or -1 when the node is in no rack.
  int rack_of(int node) const;

  /// Aggregator node for `rack`: the configured entry, or the rack's first
  /// member when `aggregators` is empty.
  int aggregator_of(int rack) const;

  /// Throws std::invalid_argument on a malformed topology: an empty rack, a
  /// node in two racks, an aggregator on a node outside its rack, a
  /// non-positive bandwidth tier, oversubscription < 1, or a negative tier
  /// latency. With `n_nodes >= 0` additionally requires every node id to be
  /// in range and every node to be assigned to a rack. No-op when inactive.
  void validate(int n_nodes = -1) const;
};

}  // namespace p3::net
