#include "net/faults.h"

#include <algorithm>
#include <stdexcept>

namespace p3::net {

namespace {

bool endpoint_matches(int pattern, int node) {
  return pattern < 0 || pattern == node;
}

bool contains(const std::vector<int>& side, int node) {
  return std::find(side.begin(), side.end(), node) != side.end();
}

}  // namespace

bool NetPartition::in_a(int node) const { return contains(side_a, node); }
bool NetPartition::in_b(int node) const { return contains(side_b, node); }

bool NetPartition::severs(int src, int dst, TimeS t) const {
  if (t < start || t >= heal) return false;
  if (flap_period > 0.0) {
    // The cut oscillates: active only in the first half of each period.
    const double phase = (t - start) / flap_period;
    const double frac = phase - static_cast<double>(static_cast<long long>(phase));
    if (frac >= 0.5) return false;
  }
  if (in_a(src) && in_b(dst)) return true;
  if (symmetric && in_b(src) && in_a(dst)) return true;
  return false;
}

bool NetPartition::severs_during(int src, int dst, TimeS t0, TimeS t1) const {
  const bool crosses = (in_a(src) && in_b(dst)) ||
                       (symmetric && in_b(src) && in_a(dst));
  if (!crosses) return false;
  if (flap_period <= 0.0) {
    // Window [start, heal) overlaps [t0, t1]?
    return start <= t1 && t0 < heal;
  }
  // Flapping: check each on-window [start + k*P, start + k*P + P/2) that
  // could overlap [t0, t1], clipped to [start, heal).
  if (t1 < start || t0 >= heal) return false;
  const TimeS lo = std::max(t0, start);
  const TimeS hi = std::min(t1, heal);
  const auto k0 = static_cast<long long>((lo - start) / flap_period);
  for (long long k = k0;; ++k) {
    const TimeS on = start + static_cast<double>(k) * flap_period;
    if (on > hi || on >= heal) break;
    const TimeS off = on + flap_period / 2.0;
    if (on <= hi && lo < off) return true;
  }
  return false;
}

void FaultPlan::validate(int base_nodes, int replication) const {
  if (drop_prob < 0.0 || drop_prob > 1.0) {
    throw std::invalid_argument("drop probability outside [0, 1]");
  }
  for (const auto& d : link_drops) {
    if (d.probability < 0.0 || d.probability > 1.0) {
      throw std::invalid_argument("link drop probability outside [0, 1]");
    }
  }
  for (const auto& f : flaps) {
    if (f.start < 0.0) throw std::invalid_argument("negative flap start");
    if (f.end < f.start) {
      throw std::invalid_argument("inverted flap window (end before start)");
    }
  }
  for (const auto& d : degradations) {
    if (d.bandwidth_factor <= 0.0 || d.bandwidth_factor > 1.0) {
      throw std::invalid_argument("degradation factor outside (0, 1]");
    }
    if (d.extra_latency < 0.0) {
      throw std::invalid_argument("negative degradation latency");
    }
    if (d.start < 0.0) {
      throw std::invalid_argument("negative degradation start");
    }
    if (d.end < d.start) {
      throw std::invalid_argument(
          "inverted degradation window (end before start)");
    }
  }
  for (const auto& p : pauses) {
    if (p.start < 0.0) throw std::invalid_argument("negative pause start");
    if (p.duration < 0.0) throw std::invalid_argument("negative pause");
  }
  for (const auto& c : crashes) {
    if (c.node < 0) throw std::invalid_argument("crash without a victim node");
    if (c.at < 0.0) throw std::invalid_argument("negative crash time");
  }
  for (std::size_t i = 0; i < joins.size(); ++i) {
    const auto& j = joins[i];
    if (j.node < 0) throw std::invalid_argument("join without a node id");
    if (j.at < 0.0) throw std::invalid_argument("negative join time");
    for (std::size_t k = 0; k < i; ++k) {
      if (joins[k].node == j.node) {
        throw std::invalid_argument(
            "join for a node that is already a member at join time "
            "(duplicate join)");
      }
    }
    for (const auto& c : crashes) {
      if (c.node != j.node) continue;
      if (c.down_at(j.at)) {
        throw std::invalid_argument(
            "join scheduled during the node's crash window");
      }
      if (c.at < j.at) {
        throw std::invalid_argument(
            "crash scheduled before the node joins");
      }
    }
    if (base_nodes >= 0 && j.node < base_nodes) {
      throw std::invalid_argument(
          "join for a node that is already a member at join time");
    }
  }
  if (base_nodes >= 0 && !joins.empty()) {
    // Joiner ids must extend the cluster contiguously (base, base+1, ...):
    // node arrays, shard chains and the rebalance planner all index by id.
    std::vector<int> ids;
    for (const auto& j : joins) ids.push_back(j.node);
    std::sort(ids.begin(), ids.end());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] != base_nodes + static_cast<int>(i)) {
        throw std::invalid_argument(
            "join ids must extend the cluster contiguously");
      }
    }
  }
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const auto& l = leaves[i];
    if (l.node < 0) throw std::invalid_argument("leave without a node id");
    if (l.at < 0.0) throw std::invalid_argument("negative leave time");
    for (std::size_t k = 0; k < i; ++k) {
      if (leaves[k].node == l.node) {
        throw std::invalid_argument("duplicate leave for a node");
      }
    }
    for (const auto& c : crashes) {
      if (c.node != l.node) continue;
      // A dead process cannot start draining. A crash strictly after the
      // drain begins is legal: the crash kills the drain intent and the
      // failover path takes over (the drain×crash chaos scenario).
      if (c.down_at(l.at)) {
        throw std::invalid_argument(
            "leave scheduled during the node's crash window");
      }
    }
    for (const auto& j : joins) {
      if (j.node == l.node && l.at < j.at) {
        throw std::invalid_argument(
            "leave scheduled before the node joins");
      }
    }
    if (base_nodes >= 0 &&
        l.node >= base_nodes + static_cast<int>(joins.size())) {
      throw std::invalid_argument(
          "leave names a node that never exists in the cluster");
    }
  }
  if (base_nodes > 0 && !leaves.empty()) {
    // Last-live-replica check: a shard group's home chain is the
    // `replication` consecutive base servers starting at its group id. If
    // every chain member is scheduled to leave or crash without restart,
    // and no joiner exists to absorb the group, the leave schedule strands
    // the group with no legal drain target.
    const int chain = std::max(1, replication);
    for (int g = 0; g < base_nodes; ++g) {
      bool any_survivor = !joins.empty();  // a joiner may adopt any group
      for (int k = 0; k < chain && !any_survivor; ++k) {
        const int member = (g + k) % base_nodes;
        bool leaves_or_dies = false;
        for (const auto& l : leaves) {
          if (l.node == member) leaves_or_dies = true;
        }
        for (const auto& c : crashes) {
          if (c.node == member && !c.restarts()) leaves_or_dies = true;
        }
        if (!leaves_or_dies) any_survivor = true;
      }
      if (!any_survivor) {
        throw std::invalid_argument(
            "leave schedule drops a shard group's last live replica");
      }
    }
  }
  if (lease_duration.has_value() && *lease_duration <= 0.0) {
    throw std::invalid_argument("non-positive lease duration");
  }
  for (const auto& p : partitions) {
    if (p.side_a.empty() || p.side_b.empty()) {
      throw std::invalid_argument("partition with an empty side");
    }
    for (int n : p.side_a) {
      if (n < 0) throw std::invalid_argument("negative partition node id");
      if (contains(p.side_b, n)) {
        throw std::invalid_argument(
            "partition sides overlap (node on both sides of the cut)");
      }
    }
    for (int n : p.side_b) {
      if (n < 0) throw std::invalid_argument("negative partition node id");
    }
    if (p.start < 0.0) {
      throw std::invalid_argument("negative partition start");
    }
    if (p.heal <= p.start) {
      throw std::invalid_argument(
          "inverted partition window (heal before start)");
    }
    if (p.flap_period < 0.0) {
      throw std::invalid_argument("negative partition flap period");
    }
    if (base_nodes >= 0) {
      // The largest id that will ever exist: base nodes plus joiners (the
      // contiguity check above pins joiner ids to base_nodes + i).
      const int max_nodes = base_nodes + static_cast<int>(joins.size());
      for (int n : p.side_a) {
        if (n >= max_nodes) {
          throw std::invalid_argument(
              "partition names a node that never exists in the cluster");
        }
      }
      for (int n : p.side_b) {
        if (n >= max_nodes) {
          throw std::invalid_argument(
              "partition names a node that never exists in the cluster");
        }
      }
    }
  }
  if (clock_drift_rate < 0.0 || clock_drift_rate >= 1.0) {
    throw std::invalid_argument("clock drift rate outside [0, 1)");
  }
  if (clock_offset_bound < 0.0) {
    throw std::invalid_argument("negative clock offset bound");
  }
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t fallback_seed)
    : plan_(std::move(plan)),
      rng_(plan_.seed != 0 ? plan_.seed : fallback_seed) {
  plan_.validate();
}

double FaultInjector::drop_probability(int src, int dst) const {
  for (const auto& d : plan_.link_drops) {
    if (endpoint_matches(d.src, src) && endpoint_matches(d.dst, dst)) {
      return d.probability;
    }
  }
  return plan_.drop_prob;
}

bool FaultInjector::in_blackout(int src, int dst, TimeS t) const {
  for (const auto& f : plan_.flaps) {
    if (endpoint_matches(f.src, src) && endpoint_matches(f.dst, dst) &&
        t >= f.start && t < f.end) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::should_drop(const Message& m, TimeS tx_start) {
  if (m.src == m.dst) return false;  // loopback never touches the wire
  if (partition_severs(m.src, m.dst, tx_start)) {
    ++drops_;
    ++partition_drops_;
    return true;
  }
  if (in_blackout(m.src, m.dst, tx_start)) {
    ++drops_;
    return true;
  }
  const double p = drop_probability(m.src, m.dst);
  if (p <= 0.0) return false;
  if (p >= 1.0 || rng_.uniform() < p) {
    ++drops_;
    return true;
  }
  return false;
}

double FaultInjector::bandwidth_factor(int node, TimeS t) const {
  double factor = 1.0;
  for (const auto& d : plan_.degradations) {
    if (endpoint_matches(d.node, node) && t >= d.start && t < d.end) {
      factor *= d.bandwidth_factor;
    }
  }
  return factor;
}

TimeS FaultInjector::extra_latency(int node, TimeS t) const {
  TimeS extra = 0.0;
  for (const auto& d : plan_.degradations) {
    if (endpoint_matches(d.node, node) && t >= d.start && t < d.end) {
      extra += d.extra_latency;
    }
  }
  return extra;
}

bool FaultInjector::crashed(int node, TimeS t) const {
  for (const auto& c : plan_.crashes) {
    if (c.node == node && c.down_at(t)) return true;
  }
  return false;
}

bool FaultInjector::down_during(int node, TimeS t0, TimeS t1) const {
  for (const auto& c : plan_.crashes) {
    if (c.node != node) continue;
    // Down window [at, restart) overlaps [t0, t1]?
    if (c.at > t1) continue;
    if (!c.restarts() || c.restart_time() > t0) return true;
  }
  return false;
}

bool FaultInjector::partition_severs(int src, int dst, TimeS t) const {
  for (const auto& p : plan_.partitions) {
    if (p.severs(src, dst, t)) return true;
  }
  return false;
}

bool FaultInjector::severed_during(int src, int dst, TimeS t0,
                                   TimeS t1) const {
  for (const auto& p : plan_.partitions) {
    if (p.severs_during(src, dst, t0, t1)) return true;
  }
  return false;
}

TimeS FaultInjector::pause_release(int node, TimeS t) const {
  // A release can land inside another pause window, so iterate to a fixed
  // point (windows are few; overlapping windows converge in <= n passes).
  TimeS release = t;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const auto& p : plan_.pauses) {
      if (endpoint_matches(p.node, node) && release >= p.start &&
          release < p.start + p.duration) {
        release = p.start + p.duration;
        moved = true;
      }
    }
  }
  return release;
}

}  // namespace p3::net
