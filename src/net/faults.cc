#include "net/faults.h"

#include <algorithm>
#include <stdexcept>

namespace p3::net {

namespace {

bool endpoint_matches(int pattern, int node) {
  return pattern < 0 || pattern == node;
}

}  // namespace

void FaultPlan::validate(int base_nodes) const {
  if (drop_prob < 0.0 || drop_prob > 1.0) {
    throw std::invalid_argument("drop probability outside [0, 1]");
  }
  for (const auto& d : link_drops) {
    if (d.probability < 0.0 || d.probability > 1.0) {
      throw std::invalid_argument("link drop probability outside [0, 1]");
    }
  }
  for (const auto& f : flaps) {
    if (f.start < 0.0) throw std::invalid_argument("negative flap start");
    if (f.end < f.start) {
      throw std::invalid_argument("inverted flap window (end before start)");
    }
  }
  for (const auto& d : degradations) {
    if (d.bandwidth_factor <= 0.0 || d.bandwidth_factor > 1.0) {
      throw std::invalid_argument("degradation factor outside (0, 1]");
    }
    if (d.extra_latency < 0.0) {
      throw std::invalid_argument("negative degradation latency");
    }
    if (d.start < 0.0) {
      throw std::invalid_argument("negative degradation start");
    }
    if (d.end < d.start) {
      throw std::invalid_argument(
          "inverted degradation window (end before start)");
    }
  }
  for (const auto& p : pauses) {
    if (p.start < 0.0) throw std::invalid_argument("negative pause start");
    if (p.duration < 0.0) throw std::invalid_argument("negative pause");
  }
  for (const auto& c : crashes) {
    if (c.node < 0) throw std::invalid_argument("crash without a victim node");
    if (c.at < 0.0) throw std::invalid_argument("negative crash time");
  }
  for (std::size_t i = 0; i < joins.size(); ++i) {
    const auto& j = joins[i];
    if (j.node < 0) throw std::invalid_argument("join without a node id");
    if (j.at < 0.0) throw std::invalid_argument("negative join time");
    for (std::size_t k = 0; k < i; ++k) {
      if (joins[k].node == j.node) {
        throw std::invalid_argument(
            "join for a node that is already a member at join time "
            "(duplicate join)");
      }
    }
    for (const auto& c : crashes) {
      if (c.node != j.node) continue;
      if (c.down_at(j.at)) {
        throw std::invalid_argument(
            "join scheduled during the node's crash window");
      }
      if (c.at < j.at) {
        throw std::invalid_argument(
            "crash scheduled before the node joins");
      }
    }
    if (base_nodes >= 0 && j.node < base_nodes) {
      throw std::invalid_argument(
          "join for a node that is already a member at join time");
    }
  }
  if (base_nodes >= 0 && !joins.empty()) {
    // Joiner ids must extend the cluster contiguously (base, base+1, ...):
    // node arrays, shard chains and the rebalance planner all index by id.
    std::vector<int> ids;
    for (const auto& j : joins) ids.push_back(j.node);
    std::sort(ids.begin(), ids.end());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] != base_nodes + static_cast<int>(i)) {
        throw std::invalid_argument(
            "join ids must extend the cluster contiguously");
      }
    }
  }
  if (lease_duration.has_value() && *lease_duration <= 0.0) {
    throw std::invalid_argument("non-positive lease duration");
  }
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t fallback_seed)
    : plan_(std::move(plan)),
      rng_(plan_.seed != 0 ? plan_.seed : fallback_seed) {
  plan_.validate();
}

double FaultInjector::drop_probability(int src, int dst) const {
  for (const auto& d : plan_.link_drops) {
    if (endpoint_matches(d.src, src) && endpoint_matches(d.dst, dst)) {
      return d.probability;
    }
  }
  return plan_.drop_prob;
}

bool FaultInjector::in_blackout(int src, int dst, TimeS t) const {
  for (const auto& f : plan_.flaps) {
    if (endpoint_matches(f.src, src) && endpoint_matches(f.dst, dst) &&
        t >= f.start && t < f.end) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::should_drop(const Message& m, TimeS tx_start) {
  if (m.src == m.dst) return false;  // loopback never touches the wire
  if (in_blackout(m.src, m.dst, tx_start)) {
    ++drops_;
    return true;
  }
  const double p = drop_probability(m.src, m.dst);
  if (p <= 0.0) return false;
  if (p >= 1.0 || rng_.uniform() < p) {
    ++drops_;
    return true;
  }
  return false;
}

double FaultInjector::bandwidth_factor(int node, TimeS t) const {
  double factor = 1.0;
  for (const auto& d : plan_.degradations) {
    if (endpoint_matches(d.node, node) && t >= d.start && t < d.end) {
      factor *= d.bandwidth_factor;
    }
  }
  return factor;
}

TimeS FaultInjector::extra_latency(int node, TimeS t) const {
  TimeS extra = 0.0;
  for (const auto& d : plan_.degradations) {
    if (endpoint_matches(d.node, node) && t >= d.start && t < d.end) {
      extra += d.extra_latency;
    }
  }
  return extra;
}

bool FaultInjector::crashed(int node, TimeS t) const {
  for (const auto& c : plan_.crashes) {
    if (c.node == node && c.down_at(t)) return true;
  }
  return false;
}

bool FaultInjector::down_during(int node, TimeS t0, TimeS t1) const {
  for (const auto& c : plan_.crashes) {
    if (c.node != node) continue;
    // Down window [at, restart) overlaps [t0, t1]?
    if (c.at > t1) continue;
    if (!c.restarts() || c.restart_time() > t0) return true;
  }
  return false;
}

TimeS FaultInjector::pause_release(int node, TimeS t) const {
  // A release can land inside another pause window, so iterate to a fixed
  // point (windows are few; overlapping windows converge in <= n passes).
  TimeS release = t;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const auto& p : plan_.pauses) {
      if (endpoint_matches(p.node, node) && release >= p.start &&
          release < p.start + p.duration) {
        release = p.start + p.duration;
        moved = true;
      }
    }
  }
  return release;
}

}  // namespace p3::net
