// bwm-ng style per-interface utilization monitor.
//
// The paper measures inbound/outbound traffic of one worker machine at
// 10 ms precision (Figs 8, 9, 13, 14). `UtilizationMonitor` accumulates
// transferred bytes into fixed-width time bins per node and direction; a
// transfer spanning several bins is spread proportionally, matching what an
// interface byte-counter sampled at bin boundaries would report.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.h"

namespace p3::net {

enum class Direction { kOut = 0, kIn = 1 };

class UtilizationMonitor {
 public:
  UtilizationMonitor(int n_nodes, TimeS bin_width = 0.010);

  /// Record a transfer interval on a node's TX or RX channel. Zero-byte
  /// transfers leave no footprint; a zero-length interval (end <= start)
  /// accounts wholly to the bin containing `start`, including when `start`
  /// sits exactly on a bin boundary (it lands in the later bin, half-open
  /// convention); a transfer ending exactly on a bin boundary does not
  /// create an empty trailing bin.
  void record(int node, Direction dir, TimeS start, TimeS end, Bytes bytes);

  TimeS bin_width() const { return bin_width_; }
  std::size_t bins(int node, Direction dir) const;

  /// Bytes accounted to bin `i`.
  double bin_bytes(int node, Direction dir, std::size_t i) const;

  /// Average rate over bin `i` in bits/s.
  BitsPerSec bin_rate(int node, Direction dir, std::size_t i) const;

  /// Total bytes recorded for a node/direction.
  double total_bytes(int node, Direction dir) const;

  /// Fraction of bins in [first, last) whose utilization is below
  /// `threshold` (idle-time metric used in Section 5.4). An empty window
  /// (first >= last) is 0.0 by definition — no bins, no idle time.
  double idle_fraction(int node, Direction dir, BitsPerSec threshold,
                       std::size_t first, std::size_t last) const;

  /// Peak bin rate in bits/s over all recorded bins.
  BitsPerSec peak_rate(int node, Direction dir) const;

 private:
  std::vector<double>& series(int node, Direction dir);
  const std::vector<double>& series(int node, Direction dir) const;

  TimeS bin_width_;
  // [node][direction] -> per-bin byte counts.
  std::vector<std::vector<double>> out_;
  std::vector<std::vector<double>> in_;
};

}  // namespace p3::net
