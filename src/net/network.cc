#include "net/network.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace p3::net {

Network::Network(sim::Simulator& sim, int n_nodes, NetworkConfig config)
    : sim_(&sim), config_(config) {
  if (n_nodes <= 0) throw std::invalid_argument("need at least one node");
  if (config.rate <= 0 || config.loopback_rate <= 0) {
    throw std::invalid_argument("non-positive link rate");
  }
  const BitsPerSec rx = config.rx_rate > 0 ? config.rx_rate : config.rate;
  nics_.resize(static_cast<std::size_t>(n_nodes), Nic{config.rate, rx});
  inboxes_.reserve(static_cast<std::size_t>(n_nodes));
  for (int i = 0; i < n_nodes; ++i) {
    inboxes_.push_back(std::make_unique<sim::Queue<Message>>(sim));
  }
}

TimeS Network::post(Message m) {
  if (m.src < 0 || m.src >= nodes() || m.dst < 0 || m.dst >= nodes()) {
    throw std::out_of_range("message endpoint out of range");
  }
  if (m.bytes <= 0) throw std::invalid_argument("message with no bytes");

  ++posted_;
  bytes_posted_ += m.bytes;
  const TimeS now = sim_->now();
  TimeS deliver_at;
  TimeS tx_end;

  if (m.src == m.dst) {
    // Colocated processes: loopback channel, no NIC involvement.
    Nic& nic = nics_[static_cast<std::size_t>(m.src)];
    const TimeS start = std::max(now, nic.loop_free);
    tx_end = start + transfer_time(m.bytes, config_.loopback_rate);
    nic.loop_free = tx_end;
    deliver_at = tx_end + config_.loopback_latency;
  } else {
    bytes_remote_ += m.bytes;
    Nic& src = nics_[static_cast<std::size_t>(m.src)];
    Nic& dst = nics_[static_cast<std::size_t>(m.dst)];
    TimeS earliest_tx = now;
    BitsPerSec tx_rate = src.tx_rate;
    TimeS latency = config_.latency;
    if (faults_ != nullptr) {
      // A paused node's NIC is frozen: nothing starts serializing until the
      // pause releases. Degradation (bandwidth dip + latency spike) is
      // evaluated at the moment this message enters the wire.
      earliest_tx = faults_->pause_release(m.src, now);
    }
    const TimeS tx_start = std::max(earliest_tx, src.tx_free);
    if (faults_ != nullptr) {
      tx_rate *= faults_->bandwidth_factor(m.src, tx_start);
      latency += faults_->extra_latency(m.src, tx_start);
    }
    tx_end = tx_start + transfer_time(m.bytes, tx_rate);
    src.tx_free = tx_end;

    if (monitor_ != nullptr) {
      monitor_->record(m.src, Direction::kOut, tx_start, tx_end, m.bytes);
    }
    const bool traced = tracer_ != nullptr && tracer_->enabled();
    if (traced) {
      tracer_->span("n" + std::to_string(m.src) + ".tx", tx_start, tx_end,
                    message_label(m));
    }

    if (faults_ != nullptr &&
        (faults_->should_drop(m, tx_start) || faults_->crashed(m.src, tx_start))) {
      // Lost in the fabric: the sender paid TX, the receiver never sees it.
      // A crashed sender's NIC emits nothing, but retransmission timers
      // armed before the crash can still try to post on its behalf — those
      // bits die here too.
      ++dropped_;
      bytes_dropped_ += m.bytes;
      if (traced) {
        tracer_->span("n" + std::to_string(m.src) + ".drop", tx_start, tx_end,
                      "x" + message_label(m));
      }
      return tx_end;
    }

    TimeS rx_earliest = tx_end + latency;
    if (faults_ != nullptr) {
      rx_earliest = faults_->pause_release(m.dst, rx_earliest);
    }
    const TimeS rx_start = std::max(rx_earliest, dst.rx_free);
    const TimeS rx_end = rx_start + transfer_time(m.bytes, dst.rx_rate);

    if (faults_ != nullptr && faults_->down_during(m.dst, rx_start, rx_end)) {
      // The receiver is (or goes) down while this transfer would serialize
      // on its NIC: the in-flight transfer is torn down with the process.
      // The RX channel is not reserved — a dead NIC serves nobody.
      ++dropped_;
      bytes_dropped_ += m.bytes;
      if (traced) {
        tracer_->span("n" + std::to_string(m.dst) + ".drop", rx_start, rx_end,
                      "x" + message_label(m));
      }
      return tx_end;
    }

    if (faults_ != nullptr &&
        faults_->severed_during(m.src, m.dst, rx_start, rx_end)) {
      // The fabric cleaves while this transfer is still serializing toward
      // the receiver: the cut tears it down mid-flight. (A cut active at TX
      // time was already caught in should_drop; this handles transfers that
      // left the sender before the partition started.)
      ++dropped_;
      bytes_dropped_ += m.bytes;
      if (traced) {
        tracer_->span("n" + std::to_string(m.dst) + ".drop", rx_start, rx_end,
                      "x" + message_label(m));
      }
      return tx_end;
    }

    dst.rx_free = rx_end;
    deliver_at = rx_end;

    if (monitor_ != nullptr) {
      monitor_->record(m.dst, Direction::kIn, rx_start, rx_end, m.bytes);
    }
    if (traced) {
      tracer_->span("n" + std::to_string(m.dst) + ".rx", rx_start, rx_end,
                    message_label(m));
      if (m.trace_id >= 0) {
        // One arrow per delivered traced message, anchored inside the TX and
        // RX spans recorded above.
        const std::int64_t flow = next_flow_++;
        const std::string label = message_label(m);
        tracer_->flow_start("n" + std::to_string(m.src) + ".tx", tx_start,
                            flow, label);
        tracer_->flow_end("n" + std::to_string(m.dst) + ".rx", rx_start, flow,
                          label);
      }
    }
  }

  sim_->schedule_at(deliver_at, DeliverFn{this, acquire(std::move(m))});
  return tx_end;
}

Message* Network::acquire(Message&& m) {
  if (free_.empty()) {
    pool_.push_back(std::move(m));
    return &pool_.back();
  }
  Message* slot = free_.back();
  free_.pop_back();
  *slot = std::move(m);
  return slot;
}

void Network::deliver(Message* msg) {
  ++delivered_;
  if (faults_ != nullptr && msg->src != msg->dst &&
      faults_->partition_severs(msg->src, msg->dst, sim_->now())) {
    // Ground-truth audit, not enforcement: every cut is applied at TX time
    // or during the RX window above, so a delivery that lands inside an
    // active cut means the partition plane leaked. Counted, never dropped —
    // trace_report --partition gates on this staying zero.
    ++cross_partition_deliveries_;
  }
  inbox(msg->dst).push(*msg);
  free_.push_back(msg);
}

void Network::set_node_rate(int node, BitsPerSec tx_rate,
                            BitsPerSec rx_rate) {
  if (tx_rate <= 0 || rx_rate < 0) {
    throw std::invalid_argument("non-positive link rate");
  }
  auto& nic = nics_.at(static_cast<std::size_t>(node));
  nic.tx_rate = tx_rate;
  if (rx_rate > 0) nic.rx_rate = rx_rate;
}

BitsPerSec Network::node_rate(int node) const {
  return nics_.at(static_cast<std::size_t>(node)).tx_rate;
}

BitsPerSec Network::node_rx_rate(int node) const {
  return nics_.at(static_cast<std::size_t>(node)).rx_rate;
}

TimeS Network::tx_free_at(int node) const {
  const Nic& nic = nics_.at(static_cast<std::size_t>(node));
  return std::max(nic.tx_free, sim_->now());
}

std::string message_label(const Message& m) {
  std::string prefix;
  switch (m.kind) {
    case MsgKind::kPushGradient:
      prefix = "g";  // gradient push
      break;
    case MsgKind::kNotify:
      prefix = "n";
      break;
    case MsgKind::kPullRequest:
      prefix = "q";
      break;
    case MsgKind::kParams:
      prefix = "p";
      break;
    case MsgKind::kBackground:
      return "bg";
    case MsgKind::kAck:
      prefix = "k";  // acknowledgement
      break;
    case MsgKind::kHeartbeat:
      return "hb";
    case MsgKind::kReplicate:
      prefix = "R";  // shard replication
      break;
    case MsgKind::kNewPrimary:
      return "NP";
    case MsgKind::kJoinRequest:
      return "J";
    case MsgKind::kSyncRequest:
      return "sq";
    case MsgKind::kSyncData:
      return "sd";
    case MsgKind::kRecheck:
      return "rc";  // internal; never posted
    case MsgKind::kServerJoin:
      return "SJ";
    case MsgKind::kMigrate:
      prefix = "M";  // shard migration
      break;
  }
  return prefix + "L" + std::to_string(m.layer);
}

}  // namespace p3::net
