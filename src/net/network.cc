#include "net/network.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace p3::net {

Network::Network(sim::Simulator& sim, int n_nodes, NetworkConfig config)
    : sim_(&sim), config_(config) {
  if (n_nodes <= 0) throw std::invalid_argument("need at least one node");
  if (config.rate <= 0 || config.loopback_rate <= 0) {
    throw std::invalid_argument("non-positive link rate");
  }
  const BitsPerSec rx = config.rx_rate > 0 ? config.rx_rate : config.rate;
  nics_.resize(static_cast<std::size_t>(n_nodes), Nic{config.rate, rx});
  inboxes_.reserve(static_cast<std::size_t>(n_nodes));
  for (int i = 0; i < n_nodes; ++i) {
    inboxes_.push_back(std::make_unique<sim::Queue<Message>>(sim));
  }
  if (config.topology.active()) {
    topo_ = config.topology;
    topo_.validate(n_nodes);
    hier_ = true;
    rack_of_.assign(static_cast<std::size_t>(n_nodes), -1);
    up_ports_.resize(static_cast<std::size_t>(topo_.n_racks()));
    down_ports_.resize(static_cast<std::size_t>(topo_.n_racks()));
    for (int r = 0; r < topo_.n_racks(); ++r) {
      const auto& members = topo_.racks[static_cast<std::size_t>(r)];
      for (int node : members) rack_of_[static_cast<std::size_t>(node)] = r;
      // Uplink capacity: the members' aggregate NIC rate divided by the
      // oversubscription ratio (all NICs start at config.rate), unless an
      // explicit tier rate is given. Downlink mirrors the uplink.
      const BitsPerSec cap =
          topo_.uplink_rate.has_value()
              ? *topo_.uplink_rate
              : config.rate * static_cast<double>(members.size()) /
                    topo_.oversubscription;
      up_ports_[static_cast<std::size_t>(r)].rate = cap;
      down_ports_[static_cast<std::size_t>(r)].rate = cap;
    }
  }
}

TimeS Network::post(Message m) {
  if (m.src < 0 || m.src >= nodes() || m.dst < 0 || m.dst >= nodes()) {
    throw std::out_of_range("message endpoint out of range");
  }
  if (m.bytes <= 0) throw std::invalid_argument("message with no bytes");
  if (hier_ && m.src != m.dst) return post_hier(std::move(m));

  ++posted_;
  bytes_posted_ += m.bytes;
  const TimeS now = sim_->now();
  TimeS deliver_at;
  TimeS tx_end;

  if (m.src == m.dst) {
    // Colocated processes: loopback channel, no NIC involvement.
    Nic& nic = nics_[static_cast<std::size_t>(m.src)];
    const TimeS start = std::max(now, nic.loop_free);
    tx_end = start + transfer_time(m.bytes, config_.loopback_rate);
    nic.loop_free = tx_end;
    deliver_at = tx_end + config_.loopback_latency;
  } else {
    bytes_remote_ += m.bytes;
    Nic& src = nics_[static_cast<std::size_t>(m.src)];
    Nic& dst = nics_[static_cast<std::size_t>(m.dst)];
    TimeS earliest_tx = now;
    BitsPerSec tx_rate = src.tx_rate;
    TimeS latency = config_.latency;
    if (faults_ != nullptr) {
      // A paused node's NIC is frozen: nothing starts serializing until the
      // pause releases. Degradation (bandwidth dip + latency spike) is
      // evaluated at the moment this message enters the wire.
      earliest_tx = faults_->pause_release(m.src, now);
    }
    const TimeS tx_start = std::max(earliest_tx, src.tx_free);
    if (faults_ != nullptr) {
      tx_rate *= faults_->bandwidth_factor(m.src, tx_start);
      latency += faults_->extra_latency(m.src, tx_start);
    }
    tx_end = tx_start + transfer_time(m.bytes, tx_rate);
    src.tx_free = tx_end;

    if (monitor_ != nullptr) {
      monitor_->record(m.src, Direction::kOut, tx_start, tx_end, m.bytes);
    }
    const bool traced = tracer_ != nullptr && tracer_->enabled();
    if (traced) {
      tracer_->span("n" + std::to_string(m.src) + ".tx", tx_start, tx_end,
                    message_label(m));
    }

    if (faults_ != nullptr &&
        (faults_->should_drop(m, tx_start) || faults_->crashed(m.src, tx_start))) {
      // Lost in the fabric: the sender paid TX, the receiver never sees it.
      // A crashed sender's NIC emits nothing, but retransmission timers
      // armed before the crash can still try to post on its behalf — those
      // bits die here too.
      ++dropped_;
      bytes_dropped_ += m.bytes;
      if (traced) {
        tracer_->span("n" + std::to_string(m.src) + ".drop", tx_start, tx_end,
                      "x" + message_label(m));
      }
      return tx_end;
    }

    TimeS rx_earliest = tx_end + latency;
    if (faults_ != nullptr) {
      rx_earliest = faults_->pause_release(m.dst, rx_earliest);
    }
    const TimeS rx_start = std::max(rx_earliest, dst.rx_free);
    const TimeS rx_end = rx_start + transfer_time(m.bytes, dst.rx_rate);

    if (faults_ != nullptr && faults_->down_during(m.dst, rx_start, rx_end)) {
      // The receiver is (or goes) down while this transfer would serialize
      // on its NIC: the in-flight transfer is torn down with the process.
      // The RX channel is not reserved — a dead NIC serves nobody.
      ++dropped_;
      bytes_dropped_ += m.bytes;
      if (traced) {
        tracer_->span("n" + std::to_string(m.dst) + ".drop", rx_start, rx_end,
                      "x" + message_label(m));
      }
      return tx_end;
    }

    if (faults_ != nullptr &&
        faults_->severed_during(m.src, m.dst, rx_start, rx_end)) {
      // The fabric cleaves while this transfer is still serializing toward
      // the receiver: the cut tears it down mid-flight. (A cut active at TX
      // time was already caught in should_drop; this handles transfers that
      // left the sender before the partition started.)
      ++dropped_;
      bytes_dropped_ += m.bytes;
      if (traced) {
        tracer_->span("n" + std::to_string(m.dst) + ".drop", rx_start, rx_end,
                      "x" + message_label(m));
      }
      return tx_end;
    }

    dst.rx_free = rx_end;
    deliver_at = rx_end;

    if (monitor_ != nullptr) {
      monitor_->record(m.dst, Direction::kIn, rx_start, rx_end, m.bytes);
    }
    if (traced) {
      tracer_->span("n" + std::to_string(m.dst) + ".rx", rx_start, rx_end,
                    message_label(m));
      if (m.trace_id >= 0) {
        // One arrow per delivered traced message, anchored inside the TX and
        // RX spans recorded above.
        const std::int64_t flow = next_flow_++;
        const std::string label = message_label(m);
        tracer_->flow_start("n" + std::to_string(m.src) + ".tx", tx_start,
                            flow, label);
        tracer_->flow_end("n" + std::to_string(m.dst) + ".rx", rx_start, flow,
                          label);
      }
    }
  }

  sim_->schedule_at(deliver_at, DeliverFn{this, acquire(std::move(m))});
  return tx_end;
}

TimeS Network::post_hier(Message m) {
  ++posted_;
  bytes_posted_ += m.bytes;
  bytes_remote_ += m.bytes;
  const TimeS now = sim_->now();
  Nic& src = nics_[static_cast<std::size_t>(m.src)];

  // Hop 1: serialize on the source NIC toward its ToR. Same fault hooks as
  // the flat path — pauses freeze the NIC, degradations shape this first
  // hop, drops and sender crashes kill the bits before they reach the ToR.
  TimeS earliest_tx = now;
  BitsPerSec tx_rate = src.tx_rate;
  TimeS hop_latency = topo_.tor_latency;
  if (faults_ != nullptr) earliest_tx = faults_->pause_release(m.src, now);
  const TimeS tx_start = std::max(earliest_tx, src.tx_free);
  if (faults_ != nullptr) {
    tx_rate *= faults_->bandwidth_factor(m.src, tx_start);
    hop_latency += faults_->extra_latency(m.src, tx_start);
  }
  const TimeS tx_end = tx_start + transfer_time(m.bytes, tx_rate);
  src.tx_free = tx_end;

  if (monitor_ != nullptr) {
    monitor_->record(m.src, Direction::kOut, tx_start, tx_end, m.bytes);
  }
  const bool traced = tracer_ != nullptr && tracer_->enabled();
  if (traced) {
    tracer_->span("n" + std::to_string(m.src) + ".tx", tx_start, tx_end,
                  message_label(m));
  }

  if (faults_ != nullptr &&
      (faults_->should_drop(m, tx_start) || faults_->crashed(m.src, tx_start))) {
    ++dropped_;
    bytes_dropped_ += m.bytes;
    if (traced) {
      tracer_->span("n" + std::to_string(m.src) + ".drop", tx_start, tx_end,
                    "x" + message_label(m));
    }
    return tx_end;
  }

  Message* slot = acquire(std::move(m));
  if (traced && slot->trace_id >= 0) {
    const std::int64_t flow = next_flow_++;
    tracer_->flow_start("n" + std::to_string(slot->src) + ".tx", tx_start,
                        flow, message_label(*slot));
    hier_flows_.emplace(slot, flow);
  }
  const int src_rack = rack_of_[static_cast<std::size_t>(slot->src)];
  const int dst_rack = rack_of_[static_cast<std::size_t>(slot->dst)];
  if (src_rack == dst_rack) {
    // Intra-rack: the ToR forwards at line rate (non-blocking crossbar for
    // local traffic) — one hop in, one hop out, no shared-port queueing.
    const TimeS at = tx_end + hop_latency + topo_.tor_latency;
    sim_->schedule_at(at, [this, slot] { arrive_rx(slot); });
  } else {
    const TimeS at = tx_end + hop_latency;
    sim_->schedule_at(
        at, [this, slot, src_rack] { port_enqueue(src_rack, true, slot); });
  }
  return tx_end;
}

void Network::port_enqueue(int rack, bool up, Message* msg) {
  SwitchPort& p = port(rack, up);
  if (!p.busy) {
    port_start(rack, up, PortJob{msg, port_seq_++});
    return;
  }
  p.queue.push_back(PortJob{msg, port_seq_++});
  p.peak_queue =
      std::max(p.peak_queue, static_cast<std::int64_t>(p.queue.size()));
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->counter("r" + std::to_string(rack) + (up ? ".up.q" : ".dn.q"),
                     sim_->now(), static_cast<double>(p.queue.size()));
  }
}

void Network::port_start(int rack, bool up, PortJob job) {
  SwitchPort& p = port(rack, up);
  p.busy = true;
  const TimeS start = sim_->now();
  const TimeS end = start + transfer_time(job.msg->bytes, p.rate);
  p.bytes += job.msg->bytes;
  p.busy_time += end - start;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->span("r" + std::to_string(rack) + (up ? ".up" : ".dn"), start,
                  end, message_label(*job.msg));
  }
  Message* msg = job.msg;
  sim_->schedule_at(end, [this, rack, up, msg] { port_done(rack, up, msg); });
}

void Network::port_done(int rack, bool up, Message* msg) {
  SwitchPort& p = port(rack, up);
  p.busy = false;

  // Hand the finished transfer to the next tier.
  if (up) {
    const int dst_rack = rack_of_[static_cast<std::size_t>(msg->dst)];
    const TimeS at = sim_->now() + topo_.spine_latency;
    sim_->schedule_at(
        at, [this, msg, dst_rack] { port_enqueue(dst_rack, false, msg); });
  } else {
    const TimeS at = sim_->now() + topo_.tor_latency;
    sim_->schedule_at(at, [this, msg] { arrive_rx(msg); });
  }

  if (p.queue.empty()) return;
  // Pick the next transfer: strict (priority, arrival) order, or pure
  // arrival order under the FIFO ablation. The pop is also where the two
  // scheduling counters are judged — overtake: the winner arrived after a
  // strictly-lower-priority transfer still waiting; inversion: a strictly-
  // higher-priority transfer keeps waiting behind the winner.
  std::size_t pick = 0;
  for (std::size_t i = 1; i < p.queue.size(); ++i) {
    const PortJob& a = p.queue[i];
    const PortJob& b = p.queue[pick];
    const bool a_wins =
        topo_.fifo_ports
            ? a.seq < b.seq
            : (a.msg->priority < b.msg->priority ||
               (a.msg->priority == b.msg->priority && a.seq < b.seq));
    if (a_wins) pick = i;
  }
  const PortJob next = p.queue[pick];
  bool overtook = false;
  bool inverted = false;
  for (std::size_t i = 0; i < p.queue.size(); ++i) {
    if (i == pick) continue;
    const PortJob& other = p.queue[i];
    overtook |= other.seq < next.seq && other.msg->priority > next.msg->priority;
    inverted |= other.msg->priority < next.msg->priority;
  }
  overtakes_ += overtook ? 1 : 0;
  inversions_ += inverted ? 1 : 0;
  p.queue.erase(p.queue.begin() + static_cast<std::ptrdiff_t>(pick));
  port_start(rack, up, next);
}

void Network::arrive_rx(Message* msg) {
  const TimeS now = sim_->now();
  Nic& dst = nics_[static_cast<std::size_t>(msg->dst)];
  TimeS rx_earliest = now;
  if (faults_ != nullptr) rx_earliest = faults_->pause_release(msg->dst, now);
  const TimeS rx_start = std::max(rx_earliest, dst.rx_free);
  const TimeS rx_end = rx_start + transfer_time(msg->bytes, dst.rx_rate);

  if (faults_ != nullptr &&
      (faults_->down_during(msg->dst, rx_start, rx_end) ||
       faults_->severed_during(msg->src, msg->dst, rx_start, rx_end))) {
    drop_at_rx(msg, rx_start, rx_end);
    return;
  }

  dst.rx_free = rx_end;
  std::int64_t flow = -1;
  if (!hier_flows_.empty()) {
    const auto it = hier_flows_.find(msg);
    if (it != hier_flows_.end()) {
      flow = it->second;
      hier_flows_.erase(it);
    }
  }
  if (monitor_ != nullptr) {
    monitor_->record(msg->dst, Direction::kIn, rx_start, rx_end, msg->bytes);
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->span("n" + std::to_string(msg->dst) + ".rx", rx_start, rx_end,
                  message_label(*msg));
    if (flow >= 0) {
      tracer_->flow_end("n" + std::to_string(msg->dst) + ".rx", rx_start,
                        flow, message_label(*msg));
    }
  }
  sim_->schedule_at(rx_end, DeliverFn{this, msg});
}

void Network::drop_at_rx(Message* msg, TimeS rx_start, TimeS rx_end) {
  ++dropped_;
  bytes_dropped_ += msg->bytes;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->span("n" + std::to_string(msg->dst) + ".drop", rx_start, rx_end,
                  "x" + message_label(*msg));
  }
  release(msg);
}

int Network::rack_of(int node) const {
  if (!hier_) return -1;
  return rack_of_.at(static_cast<std::size_t>(node));
}

Network::RackStats Network::rack_stats(int rack) const {
  const SwitchPort& u = up_ports_.at(static_cast<std::size_t>(rack));
  const SwitchPort& d = down_ports_.at(static_cast<std::size_t>(rack));
  RackStats s;
  s.up_bytes = u.bytes;
  s.down_bytes = d.bytes;
  s.up_peak_queue = u.peak_queue;
  s.down_peak_queue = d.peak_queue;
  s.up_busy = u.busy_time;
  s.down_busy = d.busy_time;
  return s;
}

Bytes Network::tor_uplink_bytes() const {
  Bytes total = 0;
  for (const SwitchPort& p : up_ports_) total += p.bytes;
  return total;
}

Message* Network::acquire(Message&& m) {
  if (free_.empty()) {
    pool_.push_back(std::move(m));
    return &pool_.back();
  }
  Message* slot = free_.back();
  free_.pop_back();
  *slot = std::move(m);
  return slot;
}

void Network::release(Message* msg) {
  hier_flows_.erase(msg);
  free_.push_back(msg);
}

void Network::deliver(Message* msg) {
  ++delivered_;
  if (faults_ != nullptr && msg->src != msg->dst &&
      faults_->partition_severs(msg->src, msg->dst, sim_->now())) {
    // Ground-truth audit, not enforcement: every cut is applied at TX time
    // or during the RX window above, so a delivery that lands inside an
    // active cut means the partition plane leaked. Counted, never dropped —
    // trace_report --partition gates on this staying zero.
    ++cross_partition_deliveries_;
  }
  inbox(msg->dst).push(*msg);
  free_.push_back(msg);
}

void Network::set_node_rate(int node, BitsPerSec tx_rate,
                            BitsPerSec rx_rate) {
  if (tx_rate <= 0 || rx_rate < 0) {
    throw std::invalid_argument("non-positive link rate");
  }
  auto& nic = nics_.at(static_cast<std::size_t>(node));
  nic.tx_rate = tx_rate;
  if (rx_rate > 0) nic.rx_rate = rx_rate;
}

BitsPerSec Network::node_rate(int node) const {
  return nics_.at(static_cast<std::size_t>(node)).tx_rate;
}

BitsPerSec Network::node_rx_rate(int node) const {
  return nics_.at(static_cast<std::size_t>(node)).rx_rate;
}

TimeS Network::tx_free_at(int node) const {
  const Nic& nic = nics_.at(static_cast<std::size_t>(node));
  return std::max(nic.tx_free, sim_->now());
}

std::string message_label(const Message& m) {
  std::string prefix;
  switch (m.kind) {
    case MsgKind::kPushGradient:
      prefix = "g";  // gradient push
      break;
    case MsgKind::kNotify:
      prefix = "n";
      break;
    case MsgKind::kPullRequest:
      prefix = "q";
      break;
    case MsgKind::kParams:
      prefix = "p";
      break;
    case MsgKind::kBackground:
      return "bg";
    case MsgKind::kAck:
      prefix = "k";  // acknowledgement
      break;
    case MsgKind::kHeartbeat:
      return "hb";
    case MsgKind::kReplicate:
      prefix = "R";  // shard replication
      break;
    case MsgKind::kNewPrimary:
      return "NP";
    case MsgKind::kJoinRequest:
      return "J";
    case MsgKind::kSyncRequest:
      return "sq";
    case MsgKind::kSyncData:
      return "sd";
    case MsgKind::kRecheck:
      return "rc";  // internal; never posted
    case MsgKind::kServerJoin:
      return "SJ";
    case MsgKind::kMigrate:
      prefix = "M";  // shard migration
      break;
    case MsgKind::kRackPush:
      prefix = "a";  // rack-aggregated gradient hop
      break;
    case MsgKind::kRackParams:
      prefix = "P";  // rack param broadcast hop
      break;
  }
  return prefix + "L" + std::to_string(m.layer);
}

}  // namespace p3::net
