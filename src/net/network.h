// Cluster network substrate.
//
// Models a full-mesh (switched) cluster of `n` machines, each with a
// full-duplex NIC. A message of S bytes from a to b:
//
//   1. serializes on a's TX channel:  [tx_start, tx_start + S/rate_tx)
//   2. propagates for `latency`
//   3. serializes on b's RX channel:  [rx_start, rx_start + S/rate_rx)
//   4. is delivered into b's inbox at rx_end
//
// Channels serve reservations FIFO (tx_start = max(now, channel free time)),
// which is exactly the behaviour of a kernel socket send queue; priority
// scheduling in P3 happens *above* this layer by deciding what to post next,
// as in the paper's producer/consumer design. Messages between colocated
// processes (src == dst) use a per-node loopback channel and never touch the
// NIC.
//
// Per-node rates support heterogeneous clusters and `tc qdisc`-style
// throttling mid-experiment (Section 5.3 uses this to sweep bandwidth).
//
// With an active `Topology` the flat mesh becomes racks behind ToR switches:
// a remote message serializes on the source NIC, hops to its ToR, and — when
// the destination sits in another rack — queues at the shared ToR uplink,
// crosses the spine, queues again at the destination rack's downlink, then
// serializes on the destination NIC. The uplink/downlink ports are served
// one transfer at a time in *priority* order (smaller `Message::priority`
// first; FIFO tie-break on arrival), so P3's slice priority contends at the
// oversubscribed switch port, not just at the sender's NIC. An inactive
// topology (the default) keeps the flat code path untouched.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "net/faults.h"
#include "net/message.h"
#include "net/monitor.h"
#include "net/topology.h"
#include "obs/tracer.h"
#include "sim/queue.h"
#include "sim/simulator.h"
#include "trace/timeline.h"

namespace p3::net {

struct NetworkConfig {
  BitsPerSec rate = gbps(10);            ///< per-NIC TX (egress) rate
  /// RX (ingress) rate; 0 = same as `rate`. The paper throttles with
  /// `tc qdisc`, which shapes egress only — set this to the physical line
  /// rate (e.g. 100 Gbps InfiniBand) to reproduce that setup.
  BitsPerSec rx_rate = 0;
  TimeS latency = us(25);                ///< one-way propagation delay
  BitsPerSec loopback_rate = gbps(400);  ///< colocated worker<->server path
  TimeS loopback_latency = us(2);
  /// Rack-scale shape; inactive (flat) by default. Uplink capacities are
  /// derived once at construction from `rate` (or `topology.uplink_rate`),
  /// so later `set_node_rate` calls re-shape NICs only.
  Topology topology;
};

class Network {
 public:
  Network(sim::Simulator& sim, int n_nodes, NetworkConfig config);

  int nodes() const { return static_cast<int>(nics_.size()); }
  sim::Simulator& simulator() { return *sim_; }
  const NetworkConfig& config() const { return config_; }

  /// Post a message for transmission. Reserves the channels immediately
  /// (FIFO) and schedules delivery into `inbox(dst)`. Returns the time at
  /// which the sender's TX serialization completes — the moment a blocking
  /// send() call would return.
  TimeS post(Message m);

  /// Awaitable blocking send: posts and suspends until TX completes.
  auto send(Message m) {
    const TimeS done = post(std::move(m));
    return sim_->sleep_until(done);
  }

  /// Destination queues; protocol demux loops pop from these.
  sim::Queue<Message>& inbox(int node) {
    return *inboxes_.at(static_cast<std::size_t>(node));
  }

  /// `tc qdisc`-style rate limiting of one node's egress; rx_rate 0 keeps
  /// the node's current ingress rate.
  void set_node_rate(int node, BitsPerSec tx_rate, BitsPerSec rx_rate = 0);
  BitsPerSec node_rate(int node) const;     ///< TX rate
  BitsPerSec node_rx_rate(int node) const;  ///< RX rate

  /// Earliest time the node's TX channel is free (== now when idle).
  TimeS tx_free_at(int node) const;

  /// Optional observers.
  void attach_monitor(UtilizationMonitor* monitor) { monitor_ = monitor; }
  /// Record TX/RX/drop spans (lanes "n<i>.tx" etc.) and, for messages
  /// carrying a trace_id, flow arrows from sender TX to receiver RX.
  void attach_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  /// Legacy observer spelling: records onto the timeline's backing tracer.
  void attach_timeline(trace::Timeline* timeline) {
    tracer_ = timeline == nullptr ? nullptr : &timeline->tracer();
  }
  /// Attach a fault injector (nullptr = perfectly reliable wire). Faults
  /// apply to remote messages only; the sender still pays TX serialization
  /// for a dropped message (the bits left the NIC and died in the fabric).
  void attach_faults(FaultInjector* faults) { faults_ = faults; }

  /// Counters for conservation checks in tests.
  std::int64_t messages_posted() const { return posted_; }
  std::int64_t messages_delivered() const { return delivered_; }
  /// Messages lost to injected faults (posted == delivered + dropped once
  /// the simulation quiesces).
  std::int64_t messages_dropped() const { return dropped_; }
  Bytes bytes_posted() const { return bytes_posted_; }
  /// Bytes that actually crossed a NIC (excludes loopback).
  Bytes bytes_posted_remote() const { return bytes_remote_; }
  Bytes bytes_dropped() const { return bytes_dropped_; }
  /// Ground-truth safety audit: deliveries that landed while an attached
  /// fault plan's partition severed their link. The partition plane drops
  /// such messages at TX time or during the RX window, so this must stay 0;
  /// `trace_report --partition` exits 2 if it ever is not.
  std::int64_t cross_partition_deliveries() const {
    return cross_partition_deliveries_;
  }

  // --- hierarchical topology (no-ops / zeros when the topology is flat) ---

  bool topology_active() const { return hier_; }
  const Topology& topology() const { return topo_; }
  int n_racks() const { return topo_.n_racks(); }
  /// Rack holding `node`; -1 on a flat network.
  int rack_of(int node) const;

  /// Times a switch port, on becoming free, served a transfer that was
  /// enqueued *after* a strictly-lower-priority transfer still waiting —
  /// the P3 overtake, observed at switch granularity.
  std::int64_t uplink_overtakes() const { return overtakes_; }
  /// Times a port began serving a transfer while a strictly-higher-priority
  /// transfer sat queued behind it. Zero by construction under priority
  /// service; meaningful under `Topology::fifo_ports`.
  std::int64_t uplink_priority_inversions() const { return inversions_; }

  /// Per-rack switch-tier stats for gauges and tests.
  struct RackStats {
    Bytes up_bytes = 0;            ///< bytes served by the ToR uplink
    Bytes down_bytes = 0;          ///< bytes served by the rack downlink
    std::int64_t up_peak_queue = 0;    ///< peak transfers waiting at uplink
    std::int64_t down_peak_queue = 0;  ///< peak transfers waiting at downlink
    TimeS up_busy = 0;             ///< uplink serving time
    TimeS down_busy = 0;           ///< downlink serving time
  };
  RackStats rack_stats(int rack) const;
  /// Total bytes that crossed any ToR uplink into the spine.
  Bytes tor_uplink_bytes() const;

 private:
  struct Nic {
    BitsPerSec tx_rate;
    BitsPerSec rx_rate;
    TimeS tx_free = 0.0;
    TimeS rx_free = 0.0;
    TimeS loop_free = 0.0;
  };

  /// Delivery event on the transfer hot path: 16 bytes, fits EventFn's
  /// inline buffer (capturing the 80-byte Message directly would force a
  /// heap allocation per in-flight message).
  struct DeliverFn {
    Network* net;
    Message* msg;
    void operator()() const { net->deliver(msg); }
  };

  /// Park `m` in the in-flight pool (pointers stable, slots recycled after
  /// delivery — sustained traffic does no per-message allocation).
  Message* acquire(Message&& m);
  void release(Message* msg);
  void deliver(Message* msg);

  /// A transfer waiting for (or holding) a switch port.
  struct PortJob {
    Message* msg;
    std::int64_t seq;  ///< port arrival order; FIFO tie-break
  };
  /// One shared ToR uplink or rack downlink: serves one transfer at a time,
  /// picking the next by (priority, arrival) — or pure arrival order under
  /// `Topology::fifo_ports`.
  struct SwitchPort {
    BitsPerSec rate = 0;
    bool busy = false;
    std::vector<PortJob> queue;
    Bytes bytes = 0;
    std::int64_t peak_queue = 0;
    TimeS busy_time = 0;
  };

  /// Multi-hop path for remote messages on an active topology. Same fault
  /// model as the flat path: drop/crash evaluated at source TX, pause/down/
  /// severed at the destination RX window.
  TimeS post_hier(Message m);
  void port_enqueue(int rack, bool up, Message* msg);
  void port_start(int rack, bool up, PortJob job);
  void port_done(int rack, bool up, Message* msg);
  void arrive_rx(Message* msg);
  SwitchPort& port(int rack, bool up) {
    return (up ? up_ports_ : down_ports_)[static_cast<std::size_t>(rack)];
  }
  void drop_at_rx(Message* msg, TimeS rx_start, TimeS rx_end);

  sim::Simulator* sim_;
  NetworkConfig config_;
  std::vector<Nic> nics_;
  std::vector<std::unique_ptr<sim::Queue<Message>>> inboxes_;
  std::deque<Message> pool_;     ///< in-flight message slots
  std::vector<Message*> free_;   ///< recycled pool slots
  UtilizationMonitor* monitor_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  FaultInjector* faults_ = nullptr;
  std::int64_t next_flow_ = 0;  ///< flow-arrow ids for traced messages
  // Hierarchical-topology state; empty/false on a flat network.
  bool hier_ = false;
  Topology topo_;
  std::vector<int> rack_of_;  ///< node -> rack
  std::vector<SwitchPort> up_ports_;
  std::vector<SwitchPort> down_ports_;
  std::int64_t port_seq_ = 0;
  std::int64_t overtakes_ = 0;
  std::int64_t inversions_ = 0;
  /// Flow-arrow ids for traced in-flight messages on the multi-hop path
  /// (the flat path emits both ends inside post()).
  std::unordered_map<const Message*, std::int64_t> hier_flows_;
  std::int64_t posted_ = 0;
  std::int64_t delivered_ = 0;
  std::int64_t dropped_ = 0;
  std::int64_t cross_partition_deliveries_ = 0;
  Bytes bytes_posted_ = 0;
  Bytes bytes_remote_ = 0;
  Bytes bytes_dropped_ = 0;
};

/// Human-readable label for timeline spans ("push L3", "param L1", ...).
std::string message_label(const Message& m);

}  // namespace p3::net
