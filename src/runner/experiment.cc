#include "runner/experiment.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "runner/parallel.h"

namespace p3::runner {

namespace {

/// Snapshot one finished cluster's registry when the caller asked for it.
void dump_point_metrics(const ps::Cluster& cluster, const MeasureOptions& opts,
                        std::size_t index) {
  if (opts.metrics_prefix.empty()) return;
  const std::string base =
      opts.metrics_prefix + ".pt" + std::to_string(index) + ".metrics";
  cluster.metrics().write_csv(base + ".csv");
  cluster.metrics().write_json(base + ".json");
}

double measure_point(const model::Workload& workload,
                     const ps::ClusterConfig& cluster,
                     const MeasureOptions& opts, std::size_t index) {
  ps::Cluster c(workload, cluster);
  const double y = c.run(opts.warmup, opts.measured).throughput;
  dump_point_metrics(c, opts, index);
  return y;
}

/// Fan the (method x grid-point) job list across the executor. Each job
/// owns a private config copy, so points are independent; submission order
/// makes the flattened result vector deterministic at any thread count.
std::vector<double> measure_grid(
    const model::Workload& workload,
    std::vector<ps::ClusterConfig> configs,
    const MeasureOptions& opts) {
  std::vector<std::function<double()>> jobs;
  jobs.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    jobs.push_back([workload, cfg = std::move(configs[i]), opts, i] {
      return measure_point(workload, cfg, opts, i);
    });
  }
  ParallelExecutor executor(opts.threads);
  return executor.map(std::move(jobs));
}

}  // namespace

double measure_throughput(const model::Workload& workload,
                          const ps::ClusterConfig& cluster,
                          const MeasureOptions& opts) {
  return measure_point(workload, cluster, opts, 0);
}

std::vector<Series> bandwidth_sweep(const model::Workload& workload,
                                    ps::ClusterConfig base,
                                    const std::vector<core::SyncMethod>& methods,
                                    const std::vector<double>& bandwidths_gbps,
                                    const MeasureOptions& opts) {
  std::vector<ps::ClusterConfig> configs;
  for (auto method : methods) {
    for (double bw : bandwidths_gbps) {
      base.method = method;
      base.bandwidth = gbps(bw);
      configs.push_back(base);
    }
  }
  const std::vector<double> ys = measure_grid(workload, std::move(configs), opts);

  std::vector<Series> out;
  const std::size_t nx = bandwidths_gbps.size();
  for (std::size_t m = 0; m < methods.size(); ++m) {
    Series s;
    s.name = core::sync_method_name(methods[m]);
    s.x = bandwidths_gbps;
    s.y.assign(ys.begin() + static_cast<std::ptrdiff_t>(m * nx),
               ys.begin() + static_cast<std::ptrdiff_t>((m + 1) * nx));
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Series> scalability_sweep(const model::Workload& workload,
                                      ps::ClusterConfig base,
                                      const std::vector<core::SyncMethod>& methods,
                                      const std::vector<int>& cluster_sizes,
                                      const MeasureOptions& opts) {
  std::vector<ps::ClusterConfig> configs;
  for (auto method : methods) {
    for (int n : cluster_sizes) {
      base.method = method;
      base.n_workers = n;
      configs.push_back(base);
    }
  }
  const std::vector<double> ys = measure_grid(workload, std::move(configs), opts);

  std::vector<Series> out;
  const std::size_t nx = cluster_sizes.size();
  for (std::size_t m = 0; m < methods.size(); ++m) {
    Series s;
    s.name = core::sync_method_name(methods[m]);
    for (int n : cluster_sizes) s.x.push_back(static_cast<double>(n));
    s.y.assign(ys.begin() + static_cast<std::ptrdiff_t>(m * nx),
               ys.begin() + static_cast<std::ptrdiff_t>((m + 1) * nx));
    out.push_back(std::move(s));
  }
  return out;
}

Series slice_size_sweep(const model::Workload& workload,
                        ps::ClusterConfig base,
                        const std::vector<std::int64_t>& slice_sizes,
                        const MeasureOptions& opts) {
  base.method = core::SyncMethod::kP3;
  std::vector<ps::ClusterConfig> configs;
  for (auto size : slice_sizes) {
    base.slice_params = size;
    configs.push_back(base);
  }
  Series s;
  s.name = "P3";
  for (auto size : slice_sizes) s.x.push_back(static_cast<double>(size));
  s.y = measure_grid(workload, std::move(configs), opts);
  return s;
}

UtilizationTrace utilization_trace(const model::Workload& workload,
                                   const ps::ClusterConfig& cluster, int node,
                                   const MeasureOptions& opts) {
  ps::Cluster c(workload, cluster);
  net::UtilizationMonitor monitor(cluster.n_workers, 0.010);
  c.attach_monitor(&monitor);
  c.run(opts.warmup, opts.measured);
  dump_point_metrics(c, opts, 0);

  UtilizationTrace trace;
  trace.bin_width = monitor.bin_width();
  const auto n_out = monitor.bins(node, net::Direction::kOut);
  const auto n_in = monitor.bins(node, net::Direction::kIn);
  const auto bins = std::max(n_out, n_in);
  for (std::size_t i = 0; i < bins; ++i) {
    trace.outbound_gbps.push_back(
        monitor.bin_rate(node, net::Direction::kOut, i) / 1e9);
    trace.inbound_gbps.push_back(
        monitor.bin_rate(node, net::Direction::kIn, i) / 1e9);
  }
  const BitsPerSec idle_threshold = cluster.bandwidth * 0.01;
  trace.idle_fraction_out = monitor.idle_fraction(
      node, net::Direction::kOut, idle_threshold, 0, bins);
  trace.idle_fraction_in =
      monitor.idle_fraction(node, net::Direction::kIn, idle_threshold, 0, bins);
  trace.peak_out_gbps = monitor.peak_rate(node, net::Direction::kOut) / 1e9;
  trace.peak_in_gbps = monitor.peak_rate(node, net::Direction::kIn) / 1e9;
  return trace;
}

namespace {

sim::Task background_tenant(ps::Cluster& cluster, BitsPerSec offered,
                            Bytes flow_bytes, std::uint64_t seed) {
  Rng rng(seed);
  auto& net = cluster.network();
  auto& sim = cluster.simulator();
  const int nodes = net.nodes();
  const TimeS interval =
      static_cast<double>(flow_bytes) * kBitsPerByte / offered;
  for (;;) {
    const int src = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(nodes)));
    int dst = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(nodes - 1)));
    if (dst >= src) ++dst;
    net::Message m;
    m.src = src;
    m.dst = dst;
    m.kind = net::MsgKind::kBackground;
    m.bytes = flow_bytes;
    net.post(m);
    // Exponential inter-arrivals keep the offered load at `offered` while
    // producing realistic burstiness.
    const double u = std::max(1e-12, 1.0 - rng.uniform());
    co_await sim.sleep(-interval * std::log(u));
  }
}

sim::Task diurnal_tenant(ps::Cluster& cluster, BitsPerSec base,
                         BitsPerSec peak, TimeS period, Bytes flow_bytes,
                         std::uint64_t seed, int n_target_nodes) {
  Rng rng(seed);
  auto& net = cluster.network();
  auto& sim = cluster.simulator();
  const int nodes =
      n_target_nodes > 0 ? std::min(n_target_nodes, net.nodes()) : net.nodes();
  const double two_pi = 2.0 * 3.14159265358979323846;
  for (;;) {
    const int src = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(nodes)));
    int dst = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(nodes - 1)));
    if (dst >= src) ++dst;
    net::Message m;
    m.src = src;
    m.dst = dst;
    m.kind = net::MsgKind::kBackground;
    m.bytes = flow_bytes;
    net.post(m);
    // Instantaneous offered load at this phase of the cycle; exponential
    // inter-arrivals at that rate keep the trace bursty yet smooth in the
    // mean. The rate never reaches zero (base > 0 is enforced).
    const double phase = two_pi * sim.now() / period;
    const double offered =
        static_cast<double>(base) +
        (static_cast<double>(peak) - static_cast<double>(base)) *
            (1.0 - std::cos(phase)) / 2.0;
    const TimeS interval =
        static_cast<double>(flow_bytes) * kBitsPerByte / offered;
    const double u = std::max(1e-12, 1.0 - rng.uniform());
    co_await sim.sleep(-interval * std::log(u));
  }
}

}  // namespace

void inject_background_traffic(ps::Cluster& cluster, BitsPerSec offered,
                               Bytes flow_bytes, std::uint64_t seed) {
  if (offered <= 0 || flow_bytes <= 0) {
    throw std::invalid_argument("non-positive background load");
  }
  cluster.simulator().spawn(
      background_tenant(cluster, offered, flow_bytes, seed));
}

void inject_diurnal_background(ps::Cluster& cluster, BitsPerSec base,
                               BitsPerSec peak, TimeS period,
                               Bytes flow_bytes, std::uint64_t seed,
                               int n_target_nodes) {
  if (base <= 0 || peak < base || flow_bytes <= 0 || period <= 0.0) {
    throw std::invalid_argument("malformed diurnal load trace");
  }
  cluster.simulator().spawn(diurnal_tenant(cluster, base, peak, period,
                                           flow_bytes, seed, n_target_nodes));
}

double max_speedup(const Series& baseline, const Series& improved) {
  if (baseline.x != improved.x) {
    throw std::invalid_argument("series x-axes do not match");
  }
  if (baseline.y.size() != baseline.x.size() ||
      improved.y.size() != improved.x.size()) {
    // A y/x length mismatch would silently misalign points (or read out of
    // bounds) if we only compared the x grids.
    throw std::invalid_argument("series y length does not match its x grid");
  }
  double best = 0.0;
  for (std::size_t i = 0; i < baseline.y.size(); ++i) {
    if (baseline.y[i] <= 0.0) continue;  // no division by zero
    best = std::max(best, improved.y[i] / baseline.y[i] - 1.0);
  }
  return best;  // 0.0 for empty series or an all-zero baseline
}

}  // namespace p3::runner
