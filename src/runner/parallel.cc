#include "runner/parallel.h"

#include <cstdlib>

namespace p3::runner {

int default_threads() {
  if (const char* env = std::getenv("P3_THREADS"); env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ParallelExecutor::ParallelExecutor(int threads)
    : n_threads_(threads <= 0 ? default_threads() : threads) {
  if (n_threads_ <= 1) return;  // inline mode, no pool
  workers_.reserve(static_cast<std::size_t>(n_threads_));
  for (int i = 0; i < n_threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    queue_.clear();  // abandoned jobs (e.g. after a map() exception)
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ParallelExecutor::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ParallelExecutor::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to steal
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // packaged_task: exceptions land in the caller's future
  }
}

}  // namespace p3::runner
