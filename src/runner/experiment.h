// Experiment harness shared by the bench binaries: parameter sweeps over
// bandwidth / cluster size / slice size, and utilization traces — the four
// experiment shapes in the paper's evaluation (Sections 5.3–5.5, 5.7).
#pragma once

#include <string>
#include <vector>

#include "core/sync_method.h"
#include "model/compute.h"
#include "net/monitor.h"
#include "ps/cluster.h"

namespace p3::runner {

/// One plotted series: (x, y) points plus a legend name.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

struct MeasureOptions {
  int warmup = 3;
  int measured = 12;
  /// Sweep-point fan-out: 1 = serial in the calling thread (default),
  /// 0 = one pool thread per hardware core, N = exactly N pool threads.
  /// Every sweep point owns a private Simulator/Cluster and results are
  /// collected in submission order, so output is bit-identical at any
  /// setting (tests/runner_parallel_test.cc enforces this).
  int threads = 1;
  /// Non-empty: after each sweep-point run, snapshot that cluster's metrics
  /// registry to "<prefix>.pt<idx>.metrics.csv" and ".json", where idx is
  /// the point's submission order. Each point writes its own files, so the
  /// dumps are race-free and bit-identical at any thread count.
  std::string metrics_prefix;
};

/// Throughput (samples/s across the cluster) of one configuration.
double measure_throughput(const model::Workload& workload,
                          const ps::ClusterConfig& cluster,
                          const MeasureOptions& opts = {});

/// Figure 7: throughput vs NIC bandwidth, one series per method.
std::vector<Series> bandwidth_sweep(const model::Workload& workload,
                                    ps::ClusterConfig base,
                                    const std::vector<core::SyncMethod>& methods,
                                    const std::vector<double>& bandwidths_gbps,
                                    const MeasureOptions& opts = {});

/// Figure 10: throughput vs cluster size, one series per method.
std::vector<Series> scalability_sweep(const model::Workload& workload,
                                      ps::ClusterConfig base,
                                      const std::vector<core::SyncMethod>& methods,
                                      const std::vector<int>& cluster_sizes,
                                      const MeasureOptions& opts = {});

/// Figure 12: P3 throughput vs parameter slice size.
Series slice_size_sweep(const model::Workload& workload,
                        ps::ClusterConfig base,
                        const std::vector<std::int64_t>& slice_sizes,
                        const MeasureOptions& opts = {});

/// Figures 8/9/13/14: per-10ms inbound/outbound rates of one machine.
struct UtilizationTrace {
  TimeS bin_width = 0.010;
  std::vector<double> outbound_gbps;
  std::vector<double> inbound_gbps;
  double idle_fraction_out = 0.0;  ///< bins below 1% of NIC rate
  double idle_fraction_in = 0.0;
  double peak_out_gbps = 0.0;
  double peak_in_gbps = 0.0;
};

UtilizationTrace utilization_trace(const model::Workload& workload,
                                   const ps::ClusterConfig& cluster, int node,
                                   const MeasureOptions& opts = {});

/// Best-vs-baseline speedup across a series pair at matching x.
double max_speedup(const Series& baseline, const Series& improved);

/// Shared-cluster model: spawn a foreign tenant that keeps posting
/// `flow_bytes`-sized flows between uniformly random distinct nodes so the
/// aggregate offered load is `offered` bits/s. Call before Cluster::run();
/// the traffic contends for the same NICs, the protocol ignores it.
void inject_background_traffic(ps::Cluster& cluster, BitsPerSec offered,
                               Bytes flow_bytes, std::uint64_t seed = 99);

/// Diurnal offered-load trace: like inject_background_traffic, but the
/// offered load follows a smooth day/night cycle,
///   offered(t) = base + (peak - base) * (1 - cos(2*pi*t / period)) / 2,
/// starting at `base` (midnight), cresting at `peak` half a period in, and
/// returning to `base` at `period`. `n_target_nodes` restricts the tenant's
/// flows to nodes [0, n_target_nodes): point it at the base cluster so that
/// admitting standby nodes moves shard serving onto uncontended NICs
/// (0 spreads over every node). Call before Cluster::run().
void inject_diurnal_background(ps::Cluster& cluster, BitsPerSec base,
                               BitsPerSec peak, TimeS period,
                               Bytes flow_bytes, std::uint64_t seed = 99,
                               int n_target_nodes = 0);

}  // namespace p3::runner
