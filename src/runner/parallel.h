// Parallel experiment executor.
//
// The paper's evaluation is an embarrassingly parallel grid of independent
// simulations (bandwidth x cluster size x slice size x method); every sweep
// point owns a private `Simulator`/`Cluster`, so fanning points across
// hardware threads changes wall-clock only, never results.
//
// `ParallelExecutor` is a small thread pool with a shared work queue (idle
// workers steal the next unclaimed job) and *submission-ordered* result
// collection: `map()` returns results indexed exactly like its input, and
// job exceptions are rethrown deterministically in submission order — so a
// parallel sweep is bit-identical to a serial one at any thread count.
//
// Determinism contract: jobs must not share mutable state (the library has
// no mutable globals; each job builds its own simulation world).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace p3::runner {

/// Thread count that `threads <= 0` resolves to: the `P3_THREADS`
/// environment variable if set to a positive integer, else the number of
/// hardware threads (at least 1).
int default_threads();

class ParallelExecutor {
 public:
  /// threads <= 0: default_threads(); 1: run jobs inline in the calling
  /// thread (no pool); >= 2: that many pool threads.
  explicit ParallelExecutor(int threads = 0);
  ~ParallelExecutor();
  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  int threads() const { return n_threads_; }

  /// Run every job and return their results in submission order. The first
  /// (by submission index) job exception is rethrown after all jobs finish
  /// or are abandoned.
  template <typename T>
  std::vector<T> map(std::vector<std::function<T()>> jobs) {
    std::vector<T> out;
    out.reserve(jobs.size());
    if (n_threads_ <= 1 || jobs.size() <= 1) {
      for (auto& job : jobs) out.push_back(job());
      return out;
    }
    std::vector<std::future<T>> futures;
    futures.reserve(jobs.size());
    for (auto& job : jobs) {
      auto task =
          std::make_shared<std::packaged_task<T()>>(std::move(job));
      futures.push_back(task->get_future());
      submit([task] { (*task)(); });
    }
    for (auto& f : futures) out.push_back(f.get());
    return out;
  }

 private:
  void submit(std::function<void()> job);
  void worker_loop();

  int n_threads_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace p3::runner
