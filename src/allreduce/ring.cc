#include "allreduce/ring.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace p3::ar {

std::string ar_schedule_name(ArSchedule schedule) {
  switch (schedule) {
    case ArSchedule::kPerLayer:
      return "AR-per-layer";
    case ArSchedule::kFused:
      return "AR-fused";
    case ArSchedule::kPrioritySliced:
      return "AR-P3";
  }
  throw std::invalid_argument("unknown allreduce schedule");
}

std::vector<Bucket> make_buckets(const model::ModelSpec& model,
                                 ArSchedule schedule, Bytes bucket_bytes,
                                 std::int64_t slice_params) {
  if (model.layers.empty()) throw std::invalid_argument("model has no layers");
  std::vector<Bucket> buckets;
  const int layers = model.num_layers();

  auto add = [&](std::vector<int> covered, Bytes bytes, int priority) {
    Bucket b;
    b.id = static_cast<std::int64_t>(buckets.size());
    b.layers = std::move(covered);
    b.bytes = bytes;
    b.priority = priority;
    buckets.push_back(std::move(b));
  };

  switch (schedule) {
    case ArSchedule::kPerLayer:
      // One collective per layer; executed in gradient generation order
      // (final layer first), so priority = reverse forward index.
      for (int l = layers - 1; l >= 0; --l) {
        add({l}, model.layer_bytes(l), layers - 1 - l);
      }
      break;
    case ArSchedule::kFused: {
      // Fuse consecutive layers (walking in generation order) until the
      // bucket reaches the fusion threshold — DDP/Horovod bucketing.
      if (bucket_bytes <= 0) throw std::invalid_argument("bad bucket size");
      std::vector<int> covered;
      Bytes acc = 0;
      int rank = 0;
      for (int l = layers - 1; l >= 0; --l) {
        covered.push_back(l);
        acc += model.layer_bytes(l);
        if (acc >= bucket_bytes || l == 0) {
          std::reverse(covered.begin(), covered.end());
          add(std::move(covered), acc, rank++);
          covered = {};
          acc = 0;
        }
      }
      break;
    }
    case ArSchedule::kPrioritySliced: {
      // P3 applied to collectives: slices of <= slice_params parameters,
      // priority inherited from the owning layer's forward position.
      if (slice_params <= 0) throw std::invalid_argument("bad slice size");
      for (int l = 0; l < layers; ++l) {
        std::int64_t remaining =
            model.layers[static_cast<std::size_t>(l)].params;
        while (remaining > 0) {
          const std::int64_t take = std::min(remaining, slice_params);
          add({l}, 4 * take, l);
          remaining -= take;
        }
      }
      break;
    }
  }
  return buckets;
}

ArCluster::ArCluster(model::Workload workload, ArConfig config)
    : workload_(std::move(workload)), cfg_(std::move(config)) {
  if (cfg_.n_workers <= 0) throw std::invalid_argument("need workers");
  if (cfg_.reduce_bytes_per_sec <= 0 || cfg_.update_bytes_per_sec <= 0) {
    throw std::invalid_argument("non-positive processing rate");
  }
  buckets_ = make_buckets(workload_.model, cfg_.schedule, cfg_.bucket_bytes,
                          cfg_.slice_params);
  layer_buckets_.resize(static_cast<std::size_t>(workload_.model.num_layers()));
  for (const auto& b : buckets_) {
    for (int l : b.layers) {
      layer_buckets_[static_cast<std::size_t>(l)].push_back(b.id);
    }
  }

  if (!cfg_.fwd_times.empty()) {
    const auto n = static_cast<std::size_t>(workload_.model.num_layers());
    if (cfg_.fwd_times.size() != n || cfg_.bwd_times.size() != n) {
      throw std::invalid_argument("compute override size mismatch");
    }
    profile_.fwd = cfg_.fwd_times;
    profile_.bwd = cfg_.bwd_times;
  } else {
    profile_ =
        model::make_profile(workload_.model, workload_.iter_compute_time);
  }

  if (cfg_.three_level && !cfg_.topology.active()) {
    throw std::invalid_argument(
        "three-level allreduce requires a rack topology");
  }
  if (cfg_.topology.active()) {
    cfg_.topology.validate(cfg_.n_workers);
    const int racks = cfg_.topology.n_racks();
    rack_leader_.resize(static_cast<std::size_t>(racks));
    rack_members_.resize(static_cast<std::size_t>(racks));
    for (int r = 0; r < racks; ++r) {
      rack_leader_[static_cast<std::size_t>(r)] = cfg_.topology.aggregator_of(r);
      rack_members_[static_cast<std::size_t>(r)] =
          cfg_.topology.racks[static_cast<std::size_t>(r)];
    }
  }

  net::NetworkConfig net_cfg;
  net_cfg.rate = cfg_.bandwidth;
  net_cfg.rx_rate = cfg_.rx_bandwidth;
  net_cfg.latency = cfg_.latency;
  net_cfg.topology = cfg_.topology;
  net_ = std::make_unique<net::Network>(sim_, cfg_.n_workers, net_cfg);

  const int layers = workload_.model.num_layers();
  for (int w = 0; w < cfg_.n_workers; ++w) {
    auto ws = std::make_unique<WorkerState>();
    for (int l = 0; l < layers; ++l) {
      (void)l;
      ws->gates.push_back(std::make_unique<sim::VersionGate>(sim_));
    }
    ws->rng = Rng(cfg_.seed + 7919ULL * static_cast<std::uint64_t>(w + 1));
    workers_.push_back(std::move(ws));
  }

  layer_ready_count_.assign(static_cast<std::size_t>(layers), 0);
  bucket_done_.assign(buckets_.size(), false);
  layer_buckets_done_.assign(static_cast<std::size_t>(layers), 0);
  ready_signal_ = std::make_unique<sim::Semaphore>(sim_, 0);
  if (cfg_.max_inflight <= 0) {
    throw std::invalid_argument("need at least one in-flight collective");
  }
}

ArCluster::~ArCluster() = default;

void ArCluster::mark_layer_ready(int layer) {
  auto& count = layer_ready_count_[static_cast<std::size_t>(layer)];
  if (++count == cfg_.n_workers) {
    ready_signal_->release();
  }
}

std::int64_t ArCluster::pick_ready_bucket() const {
  // Highest priority (smallest key) among buckets whose every layer has
  // gradients from all workers and which have not run this round.
  std::int64_t best = -1;
  for (const auto& b : buckets_) {
    if (bucket_done_[static_cast<std::size_t>(b.id)]) continue;
    bool ready = true;
    for (int l : b.layers) {
      if (layer_ready_count_[static_cast<std::size_t>(l)] < cfg_.n_workers) {
        ready = false;
        break;
      }
    }
    if (!ready) continue;
    if (best < 0 ||
        b.priority < buckets_[static_cast<std::size_t>(best)].priority) {
      best = b.id;
    }
  }
  return best;
}

sim::Task ArCluster::worker_loop(int w) {
  auto& ws = *workers_[static_cast<std::size_t>(w)];
  const int layers = workload_.model.num_layers();
  for (std::int64_t iter = 0; iter < target_iterations_; ++iter) {
    double jitter = 1.0;
    if (cfg_.compute_jitter > 0.0) {
      jitter = std::max(0.2, ws.rng.normal(1.0, cfg_.compute_jitter));
    }
    for (int l = 0; l < layers; ++l) {
      co_await ws.gates[static_cast<std::size_t>(l)]->wait_for(iter);
      co_await sim_.sleep(profile_.fwd[static_cast<std::size_t>(l)] * jitter);
    }
    for (int l = layers - 1; l >= 0; --l) {
      co_await sim_.sleep(profile_.bwd[static_cast<std::size_t>(l)] * jitter);
      mark_layer_ready(l);
    }
    ws.iter_done.push_back(sim_.now());
  }
  ++workers_finished_;
}

sim::Task ArCluster::rx_pump(int node) {
  for (;;) {
    const net::Message m = co_await net_->inbox(node).pop();
    // Route the arrival to the owning in-flight collective.
    arrivals_.at(m.slice)->release();
  }
}

sim::Task ArCluster::run_bucket(std::int64_t id, std::int64_t round) {
  const Bucket& bucket = buckets_[static_cast<std::size_t>(id)];
  // Ring allreduce: 2(n-1) steps of bytes/n each.
  const int n = cfg_.n_workers;
  if (n > 1 && cfg_.three_level) {
    // Hierarchical allreduce: only phase 2 crosses the ToR uplinks, so the
    // spine carries ~bytes per rack instead of the flat ring's repeated
    // wrap-around chunks.
    auto [it, inserted] =
        arrivals_.emplace(id, std::make_unique<sim::Semaphore>(sim_, 0));
    sim::Semaphore& my_arrivals = *it->second;
    (void)inserted;
    auto send = [&](int src, int dst, Bytes bytes) {
      net::Message m;
      m.src = src;
      m.dst = dst;
      m.kind = net::MsgKind::kPushGradient;
      m.slice = bucket.id;
      m.layer = bucket.layers.front();
      m.priority = bucket.priority;
      m.bytes = bytes + net::kHeaderBytes;
      net_->post(m);
    };
    const int racks = static_cast<int>(rack_leader_.size());
    // Phase 1: intra-rack reduce — every member ships its full bucket to
    // the rack leader, which folds the contributions (racks in parallel,
    // so the fold cost is the worst rack's).
    co_await sim_.sleep(cfg_.step_overhead);
    int phase1 = 0;
    std::size_t widest_rack = 1;
    for (int r = 0; r < racks; ++r) {
      const int leader = rack_leader_[static_cast<std::size_t>(r)];
      const auto& members = rack_members_[static_cast<std::size_t>(r)];
      widest_rack = std::max(widest_rack, members.size());
      for (int v : members) {
        if (v == leader) continue;
        send(v, leader, bucket.bytes);
        ++phase1;
      }
    }
    for (int i = 0; i < phase1; ++i) co_await my_arrivals.acquire();
    co_await sim_.sleep(static_cast<double>(widest_rack - 1) *
                        static_cast<double>(bucket.bytes) /
                        cfg_.reduce_bytes_per_sec);
    // Phase 2: ring allreduce across the rack leaders — the only traffic
    // that crosses the spine.
    if (racks > 1) {
      const Bytes chunk = (bucket.bytes + racks - 1) / racks;
      for (int step = 0; step < 2 * (racks - 1); ++step) {
        co_await sim_.sleep(cfg_.step_overhead);
        for (int r = 0; r < racks; ++r) {
          send(rack_leader_[static_cast<std::size_t>(r)],
               rack_leader_[static_cast<std::size_t>((r + 1) % racks)], chunk);
        }
        for (int r = 0; r < racks; ++r) co_await my_arrivals.acquire();
        if (step < racks - 1) {
          co_await sim_.sleep(static_cast<double>(chunk) /
                              cfg_.reduce_bytes_per_sec);
        }
      }
    }
    // Phase 3: intra-rack broadcast of the reduced bucket.
    co_await sim_.sleep(cfg_.step_overhead);
    int phase3 = 0;
    for (int r = 0; r < racks; ++r) {
      const int leader = rack_leader_[static_cast<std::size_t>(r)];
      for (int v : rack_members_[static_cast<std::size_t>(r)]) {
        if (v == leader) continue;
        send(leader, v, bucket.bytes);
        ++phase3;
      }
    }
    for (int i = 0; i < phase3; ++i) co_await my_arrivals.acquire();
    arrivals_.erase(id);
  } else if (n > 1) {
    auto [it, inserted] =
        arrivals_.emplace(id, std::make_unique<sim::Semaphore>(sim_, 0));
    sim::Semaphore& my_arrivals = *it->second;
    (void)inserted;
    const Bytes chunk = (bucket.bytes + n - 1) / n;
    const int steps = 2 * (n - 1);
    for (int step = 0; step < steps; ++step) {
      // Collective launch cost (kernel + NCCL/MPI bookkeeping).
      co_await sim_.sleep(cfg_.step_overhead);
      for (int i = 0; i < n; ++i) {
        net::Message m;
        m.src = i;
        m.dst = (i + 1) % n;
        m.kind = net::MsgKind::kPushGradient;
        m.slice = bucket.id;
        m.layer = bucket.layers.front();
        m.priority = bucket.priority;
        m.bytes = chunk + net::kHeaderBytes;
        net_->post(m);
      }
      for (int i = 0; i < n; ++i) co_await my_arrivals.acquire();
      if (step < n - 1) {
        // Reduce-scatter phase: fold the received chunk in.
        co_await sim_.sleep(static_cast<double>(chunk) /
                            cfg_.reduce_bytes_per_sec);
      }
    }
    arrivals_.erase(id);
  }
  ++collectives_run_;
  exec_log_.push_back(id);
  // Every node applies the optimizer step locally (in parallel).
  co_await sim_.sleep(static_cast<double>(bucket.bytes) /
                      cfg_.update_bytes_per_sec);
  for (int l : bucket.layers) {
    auto& done = layer_buckets_done_[static_cast<std::size_t>(l)];
    if (static_cast<std::size_t>(++done) ==
        layer_buckets_[static_cast<std::size_t>(l)].size()) {
      // Layer fully aggregated: consume its readiness and unblock the next
      // forward pass on every worker.
      layer_ready_count_[static_cast<std::size_t>(l)] = 0;
      for (auto& ws : workers_) {
        ws->gates[static_cast<std::size_t>(l)]->advance_to(round + 1);
      }
    }
  }
  --inflight_;
  ready_signal_->release();  // a window slot freed; engine may launch more
}

sim::Task ArCluster::collective_engine() {
  for (std::int64_t r = 0; r < target_iterations_; ++r) {
    std::fill(bucket_done_.begin(), bucket_done_.end(), false);
    std::fill(layer_buckets_done_.begin(), layer_buckets_done_.end(), 0);
    std::size_t remaining = buckets_.size();
    // Launch ready collectives, highest priority first, keeping up to
    // max_inflight in the air (ByteScheduler-style credit).
    while (remaining > 0 || inflight_ > 0) {
      if (remaining > 0 && inflight_ < cfg_.max_inflight) {
        const std::int64_t id = pick_ready_bucket();
        if (id >= 0) {
          bucket_done_[static_cast<std::size_t>(id)] = true;
          --remaining;
          ++inflight_;
          sim_.spawn(run_bucket(id, r));
          continue;
        }
      }
      co_await ready_signal_->acquire();
    }
  }
}

ArRunResult ArCluster::run(int warmup_iterations, int measured_iterations) {
  if (started_) throw std::logic_error("ArCluster::run is single-use");
  if (measured_iterations <= 0) {
    throw std::invalid_argument("need at least one measured iteration");
  }
  started_ = true;
  target_iterations_ = warmup_iterations + measured_iterations;

  for (int n = 0; n < cfg_.n_workers; ++n) sim_.spawn(rx_pump(n));
  sim_.spawn(collective_engine());
  for (int w = 0; w < cfg_.n_workers; ++w) sim_.spawn(worker_loop(w));

  const bool finished = sim_.run_while(
      [this] { return workers_finished_ == cfg_.n_workers; });
  if (!finished) {
    throw std::logic_error("allreduce simulation deadlocked");
  }

  ArRunResult result;
  result.collectives_run = collectives_run_;
  TimeS start = 0.0;
  TimeS end = 0.0;
  for (const auto& ws : workers_) {
    if (warmup_iterations > 0) {
      start = std::max(start, ws->iter_done[static_cast<std::size_t>(
                                  warmup_iterations - 1)]);
    }
    end = std::max(end, ws->iter_done.back());
  }
  const double samples = static_cast<double>(cfg_.n_workers) *
                         workload_.batch_per_worker * measured_iterations;
  result.throughput = samples / (end - start);
  result.mean_iteration_time =
      (end - start) / static_cast<double>(measured_iterations);
  return result;
}

std::int64_t ArCluster::worker_layer_version(int worker, int layer) const {
  return workers_[static_cast<std::size_t>(worker)]
      ->gates[static_cast<std::size_t>(layer)]
      ->version();
}

}  // namespace p3::ar
