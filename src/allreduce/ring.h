// Ring-allreduce gradient aggregation with P3-style scheduling.
//
// Section 2 of the paper notes that besides parameter servers, "there are
// many variations of MPI all reduce operation specifically designed for ML
// workloads", and Section 6 argues P3's design principles — parameter
// slicing and priority-based propagation — "are general enough to be
// applied to any gradient aggregation method". This module tests that claim
// on the aggregation architecture that has since become dominant: ring
// allreduce with gradient bucketing (Horovod / PyTorch DDP style).
//
// One collective executes at a time (the usual framework behaviour: fused
// collectives are serialized by a coordinator). A bucket of B bytes on an
// n-node ring costs 2(n-1) steps of B/n bytes plus per-step launch
// overhead, so small buckets pay latency and large buckets delay urgent
// layers — exactly the granularity trade-off of Section 5.7, now in
// collective form. Three schedules:
//
//  * kPerLayer    — one collective per layer, executed in gradient
//                   generation order (no fusion, wait-free backprop);
//  * kFused       — consecutive layers fused into >= bucket_bytes
//                   collectives in generation order (DDP's 25 MB buckets);
//  * kPrioritySliced — P3 applied to collectives: layers sliced to
//                   <= slice_params, the *highest-priority ready* slice is
//                   reduced next, so first-layer slices preempt queued
//                   later-layer traffic at slice granularity.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "model/compute.h"
#include "net/network.h"
#include "sim/queue.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace p3::ar {

enum class ArSchedule { kPerLayer = 0, kFused, kPrioritySliced };

std::string ar_schedule_name(ArSchedule schedule);

struct ArConfig {
  int n_workers = 4;
  BitsPerSec bandwidth = gbps(10);
  BitsPerSec rx_bandwidth = 0;  ///< 0 = symmetric
  TimeS latency = us(25);
  /// Rack-scale shape handed to the network; inactive = flat mesh. With an
  /// active topology the ring's wrap-around hops queue at the ToR uplinks,
  /// so collective priority contends exactly where PS traffic does.
  net::Topology topology;
  /// Hierarchical (3-level) collective: intra-rack reduce into each rack
  /// leader, ring allreduce across the leaders (the only phase that crosses
  /// the spine), then intra-rack broadcast — NCCL-tree / hierarchical-
  /// allreduce style. Cuts uplink bytes from ~2B per rack pair to ~B per
  /// rack at the cost of two extra intra-rack phases. Requires an active
  /// topology; composes with any schedule.
  bool three_level = false;

  ArSchedule schedule = ArSchedule::kFused;
  Bytes bucket_bytes = mib(25);        ///< kFused fusion threshold
  std::int64_t slice_params = 50'000;  ///< kPrioritySliced granularity

  double reduce_bytes_per_sec = 6e9;  ///< local elementwise sum
  double update_bytes_per_sec = 6e9;  ///< local SGD apply
  TimeS step_overhead = us(20);       ///< per ring step launch cost
  /// Concurrent collectives in flight (ByteScheduler-style credit). Small
  /// collectives are latency-bound; pipelining hides the per-step latency
  /// and launch overhead. 1 = strictly serialized (Horovod-style).
  int max_inflight = 4;

  double compute_jitter = 0.0;
  std::uint64_t seed = 42;

  /// Optional per-layer compute override (as in ps::ClusterConfig).
  std::vector<TimeS> fwd_times;
  std::vector<TimeS> bwd_times;
};

/// A unit of collective communication.
struct Bucket {
  std::int64_t id = -1;
  std::vector<int> layers;  ///< layer indices covered (forward order)
  Bytes bytes = 0;          ///< gradient payload
  /// Execution rank key: smaller runs first among ready buckets.
  int priority = 0;
};

/// Build the bucket list for a model under a schedule (exposed for tests).
std::vector<Bucket> make_buckets(const model::ModelSpec& model,
                                 ArSchedule schedule, Bytes bucket_bytes,
                                 std::int64_t slice_params);

struct ArRunResult {
  double throughput = 0.0;
  TimeS mean_iteration_time = 0.0;
  std::int64_t collectives_run = 0;
};

/// Data-parallel cluster that aggregates gradients with ring allreduce.
/// Mirrors ps::Cluster's interface: construct, run once, read the result.
class ArCluster {
 public:
  ArCluster(model::Workload workload, ArConfig config);
  ~ArCluster();
  ArCluster(const ArCluster&) = delete;
  ArCluster& operator=(const ArCluster&) = delete;

  ArRunResult run(int warmup_iterations, int measured_iterations);

  const std::vector<Bucket>& buckets() const { return buckets_; }
  net::Network& network() { return *net_; }
  sim::Simulator& simulator() { return sim_; }

  /// Completed-iteration version of a worker/layer gate (for tests).
  std::int64_t worker_layer_version(int worker, int layer) const;
  /// Order in which collectives were executed (bucket ids, all iterations).
  const std::vector<std::int64_t>& execution_log() const { return exec_log_; }

 private:
  struct WorkerState {
    std::vector<std::unique_ptr<sim::VersionGate>> gates;  // per layer
    std::vector<TimeS> iter_done;
    Rng rng{0};
  };

  sim::Task worker_loop(int w);
  sim::Task collective_engine();
  sim::Task run_bucket(std::int64_t id, std::int64_t round);
  sim::Task rx_pump(int node);

  void mark_layer_ready(int layer);
  std::int64_t pick_ready_bucket() const;

  model::Workload workload_;
  ArConfig cfg_;
  // Rack shape for the three-level schedule (empty when flat). The rack
  // aggregator doubles as the collective's rack leader.
  std::vector<int> rack_leader_;                // rack -> leader node
  std::vector<std::vector<int>> rack_members_;  // rack -> member nodes
  std::vector<Bucket> buckets_;
  std::vector<std::vector<std::int64_t>> layer_buckets_;  // layer -> ids
  model::ComputeProfile profile_;

  sim::Simulator sim_;
  std::unique_ptr<net::Network> net_;
  std::vector<std::unique_ptr<WorkerState>> workers_;

  // Per-iteration scheduling state (reset each round by the engine).
  std::vector<int> layer_ready_count_;    // workers done with bwd of layer
  std::vector<bool> bucket_done_;         // executed this iteration
  std::vector<int> layer_buckets_done_;   // per layer, buckets completed
  std::unique_ptr<sim::Semaphore> ready_signal_;
  /// Per in-flight collective: arrival counting semaphore keyed by bucket.
  std::map<std::int64_t, std::unique_ptr<sim::Semaphore>> arrivals_;
  int inflight_ = 0;

  std::vector<std::int64_t> exec_log_;
  std::int64_t target_iterations_ = 0;
  int workers_finished_ = 0;
  std::int64_t collectives_run_ = 0;
  bool started_ = false;
};

}  // namespace p3::ar
