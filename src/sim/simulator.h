// Deterministic discrete-event simulator.
//
// Events are (time, sequence) ordered: ties in time run in scheduling order,
// which makes every experiment bit-reproducible. Coroutine processes
// (`sim::Task`) are spawned onto the simulator and suspend via awaitables
// (`sleep`, and the synchronization primitives in sync.h / queue.h).
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"
#include "sim/task.h"

namespace p3::sim {

class Simulator {
 public:
  Simulator() = default;
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time in seconds.
  TimeS now() const { return now_; }

  /// Schedule `fn` to run `dt` seconds from now (dt >= 0).
  void schedule(TimeS dt, std::function<void()> fn);

  /// Schedule `fn` at absolute time `t` (>= now()).
  void schedule_at(TimeS t, std::function<void()> fn);

  /// Adopt and start a coroutine process.
  void spawn(Task task);

  /// Run a single event. Returns false if the queue is empty.
  bool step();

  /// Run until the event queue drains.
  void run();

  /// Run until the queue drains or simulated time reaches `t`.
  /// Returns the final simulated time.
  TimeS run_until(TimeS t);

  /// Run until `done` returns true (checked after every event) or the queue
  /// drains. Returns true if the predicate fired.
  bool run_while(const std::function<bool()>& done);

  /// Number of events executed so far.
  std::uint64_t events_executed() const { return executed_; }

  /// True if no events are pending.
  bool idle() const { return events_.empty(); }

  /// Awaitable: suspend the current task for `dt` simulated seconds.
  /// A zero delay still yields to other events scheduled at the same time.
  auto sleep(TimeS dt) {
    struct Awaiter {
      Simulator* sim;
      TimeS dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim->schedule(dt, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, dt};
  }

  /// Awaitable: suspend until absolute time `t` (immediately reschedules if
  /// `t` is in the past).
  auto sleep_until(TimeS t) { return sleep(t > now_ ? t - now_ : 0.0); }

  /// Resume `h` at current time, after already-queued same-time events.
  void resume_soon(std::coroutine_handle<> h) {
    schedule(0.0, [h] { h.resume(); });
  }

 private:
  struct Event {
    TimeS time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void reap_tasks();

  TimeS now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> events_;
  std::vector<Task::Handle> tasks_;
};

}  // namespace p3::sim
