// Deterministic discrete-event simulator.
//
// Events are (time, sequence) ordered: ties in time run in scheduling order,
// which makes every experiment bit-reproducible. Coroutine processes
// (`sim::Task`) are spawned onto the simulator and suspend via awaitables
// (`sleep`, and the synchronization primitives in sync.h / queue.h).
//
// Hot-path design (the simulator is itself a measured artifact, see
// bench/perf_smoke and BENCH_perf.json):
//   * callbacks are `EventFn` — small-buffer-optimized with a dedicated
//     coroutine-handle representation, so steady-state scheduling does no
//     heap allocation (see event.h);
//   * the priority queue holds 24-byte POD entries (time, seq, slot); the
//     callback itself sits in a recycled slab and never moves during heap
//     sifts, so each event costs exactly two EventFn moves (in and out)
//     however deep the queue gets;
//   * `run()` dispatches same-time events as one batch: zero-delay events
//     scheduled *during* the batch (queue wakeups, resume_soon — the
//     dominant pattern) append straight to the batch and never touch the
//     heap. FIFO tie order is preserved because an appended event's
//     sequence number exceeds every event already in the batch, and the
//     heap holds no events at the batch time while one is open.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/units.h"
#include "sim/event.h"
#include "sim/task.h"

namespace p3::sim {

class Simulator {
 public:
  Simulator() = default;
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time in seconds.
  TimeS now() const { return now_; }

  /// Schedule `fn` to run `dt` seconds from now (dt >= 0). The callable is
  /// constructed directly into its slab slot — no temporary EventFn.
  template <typename F>
  void schedule(TimeS dt, F&& fn) {
    if (dt < 0.0) throw std::invalid_argument("negative event delay");
    const std::uint32_t slot = acquire_slot();
    slots_[slot] = std::forward<F>(fn);
    enqueue(now_ + dt, slot);
  }

  /// Schedule `fn` at absolute time `t`; a past `t` clamps to now() (the
  /// event runs after already-queued same-time events, in FIFO tie order).
  template <typename F>
  void schedule_at(TimeS t, F&& fn) {
    schedule(t > now_ ? t - now_ : 0.0, std::forward<F>(fn));
  }

  /// Fast path: resume coroutine `h` after `dt` seconds.
  void schedule_resume(TimeS dt, std::coroutine_handle<> h) {
    schedule(dt, h);
  }

  /// Adopt and start a coroutine process.
  void spawn(Task task);

  /// Run a single event. Returns false if the queue is empty.
  bool step();

  /// Run until the event queue drains.
  void run();

  /// Run until the queue drains or simulated time reaches `t`.
  /// Events at exactly `t` run (the whole tie-time batch); events after `t`
  /// stay queued. Returns the final simulated time.
  TimeS run_until(TimeS t);

  /// Run until `done` returns true (checked after every event) or the queue
  /// drains. Returns true if the predicate fired.
  bool run_while(const std::function<bool()>& done);

  /// Number of events executed so far (each batched event counts once).
  std::uint64_t events_executed() const { return executed_; }

  /// True if no events are pending.
  bool idle() const { return heap_.empty() && !dispatching_; }

  /// Awaitable: suspend the current task for `dt` simulated seconds.
  /// A zero delay still yields to other events scheduled at the same time.
  auto sleep(TimeS dt) {
    struct Awaiter {
      Simulator* sim;
      TimeS dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim->schedule_resume(dt, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, dt};
  }

  /// Awaitable: suspend until absolute time `t` (immediately reschedules if
  /// `t` is in the past).
  auto sleep_until(TimeS t) { return sleep(t > now_ ? t - now_ : 0.0); }

  /// Resume `h` at current time, after already-queued same-time events.
  void resume_soon(std::coroutine_handle<> h) { schedule_resume(0.0, h); }

 private:
  /// Heap entry: trivially copyable so sift moves compile to plain stores.
  /// `slot` indexes the callback slab.
  struct Entry {
    TimeS time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  /// Strict total order on events: (time, seq) — seq values are unique.
  static bool before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  std::uint32_t acquire_slot();
  /// Heap-or-batch insert of a parked callback (non-template backend of
  /// schedule()).
  void enqueue(TimeS t, std::uint32_t slot);
  void heap_push(const Entry& e);
  Entry heap_pop();
  void run_entry(const Entry& e);
  /// Pop the earliest batch of tie-time events and run it (FIFO by seq).
  /// Returns false if the queue was empty.
  bool dispatch_batch();
  void reap_tasks();

  TimeS now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<Entry> heap_;
  std::vector<EventFn> slots_;            ///< parked callbacks
  std::vector<std::uint32_t> free_slots_; ///< recycled slab indices
  std::vector<Entry> batch_;  ///< reused dispatch buffer
  bool dispatching_ = false;  ///< a batch at time now_ is being run
  std::vector<Task::Handle> tasks_;
};

}  // namespace p3::sim
