// Small-buffer-optimized event callback for the simulator hot path.
//
// `EventFn` replaces `std::function<void()>` in the event queue. Two things
// make it faster on the loop's dominant patterns:
//
//   * a coroutine-handle constructor — most events are "resume this
//     suspended process" (sleep expiry, queue wakeups), which stores just
//     the 8-byte handle with no functor frame and no allocation;
//   * 48 bytes of inline storage — every callback the protocol layers
//     schedule (retransmit timers, delivery events) fits inline, so
//     sustained simulation does zero per-event heap allocation. Larger
//     captures transparently fall back to the heap.
//
// Move-only, like the events it carries.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace p3::sim {

class EventFn {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() noexcept = default;

  /// Coroutine-resume fast path (no functor frame, never allocates).
  EventFn(std::coroutine_handle<> h) noexcept : ops_(&kResumeOps) {
    ::new (static_cast<void*>(buf_)) std::coroutine_handle<>(h);
  }

  /// Any other callable; inline when it fits, heap-boxed otherwise.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             !std::is_convertible_v<F &&, std::coroutine_handle<>> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) relocate_from(other);
    other.ops_ = nullptr;
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) relocate_from(other);
      other.ops_ = nullptr;
    }
    return *this;
  }

  /// Re-target at a new callable in place (the slab hot path: no temporary
  /// EventFn, no extra buffer copy).
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             !std::is_convertible_v<F &&, std::coroutine_handle<>> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventFn& operator=(F&& f) {
    reset();
    emplace(std::forward<F>(f));
    return *this;
  }

  EventFn& operator=(std::coroutine_handle<> h) noexcept {
    reset();
    ops_ = &kResumeOps;
    ::new (static_cast<void*>(buf_)) std::coroutine_handle<>(h);
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  /// Manual vtable; `relocate` move-constructs into `to` and destroys the
  /// source in one call, which is all a queue ever needs. When `trivial` is
  /// set the payload is trivially relocatable and movers memcpy the buffer
  /// inline instead of paying an indirect call — true for almost every
  /// callback on the hot path (coroutine handles, pointer-capturing
  /// lambdas, and every heap-boxed functor, whose payload is one pointer).
  struct Ops {
    void (*invoke)(void* buf);
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* buf) noexcept;
    bool trivial;          ///< relocatable by memcpy
    bool trivial_destroy;  ///< destructor is a no-op
  };

  void relocate_from(EventFn& other) noexcept {
    if (ops_->trivial) {
      std::memcpy(buf_, other.buf_, kInlineBytes);
    } else {
      ops_->relocate(other.buf_, buf_);
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr && !ops_->trivial_destroy) ops_->destroy(buf_);
    ops_ = nullptr;
  }

  template <typename F>
  void emplace(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::kOps;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &BoxedOps<Fn>::kOps;
    }
  }

  template <typename Fn>
  struct InlineOps {
    static void invoke(void* buf) { (*std::launder(static_cast<Fn*>(buf)))(); }
    static void relocate(void* from, void* to) noexcept {
      Fn* src = std::launder(static_cast<Fn*>(from));
      ::new (to) Fn(std::move(*src));
      src->~Fn();
    }
    static void destroy(void* buf) noexcept {
      std::launder(static_cast<Fn*>(buf))->~Fn();
    }
    static constexpr Ops kOps{invoke, relocate, destroy,
                              std::is_trivially_copyable_v<Fn>,
                              std::is_trivially_destructible_v<Fn>};
  };

  template <typename Fn>
  struct BoxedOps {
    static Fn* get(void* buf) {
      return *std::launder(static_cast<Fn**>(buf));
    }
    static void invoke(void* buf) { (*get(buf))(); }
    static void relocate(void* from, void* to) noexcept {
      ::new (to) Fn*(get(from));
    }
    static void destroy(void* buf) noexcept { delete get(buf); }
    // The inline payload is just the owning pointer — trivially movable,
    // but destruction must free the box.
    static constexpr Ops kOps{invoke, relocate, destroy, true, false};
  };

  static void resume_invoke(void* buf) {
    std::launder(static_cast<std::coroutine_handle<>*>(buf))->resume();
  }
  static void resume_relocate(void* from, void* to) noexcept {
    ::new (to) std::coroutine_handle<>(
        *std::launder(static_cast<std::coroutine_handle<>*>(from)));
  }
  static void resume_destroy(void*) noexcept {}
  static constexpr Ops kResumeOps{resume_invoke, resume_relocate,
                                  resume_destroy, true, true};

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

}  // namespace p3::sim
