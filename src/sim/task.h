// Coroutine task type for simulator processes.
//
// A `Task` is a detached, eagerly-started-on-spawn coroutine. Ownership of
// the frame is transferred to the `Simulator` via `Simulator::spawn`, which
// destroys completed frames during the run and any still-suspended frames at
// simulator teardown, so processes blocked forever do not leak.
//
// Unhandled exceptions inside a task propagate out of the event loop
// (`Simulator::run` and friends), which makes test failures loud instead of
// silently swallowing protocol bugs.
#pragma once

#include <coroutine>
#include <utility>

namespace p3::sim {

class Task {
 public:
  struct promise_type {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    // Lazy start: the task body runs only once the simulator adopts it.
    std::suspend_always initial_suspend() noexcept { return {}; }
    // Suspend at the end so the simulator can observe `done()` and reclaim.
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    // Let the exception escape through resume() into the event loop.
    void unhandled_exception() { throw; }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;

  ~Task() {
    if (handle_) handle_.destroy();
  }

  /// Transfers frame ownership (used by Simulator::spawn).
  Handle release() { return std::exchange(handle_, {}); }

 private:
  explicit Task(Handle h) : handle_(h) {}
  Handle handle_;
};

}  // namespace p3::sim
