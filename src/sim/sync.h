// Coroutine synchronization primitives: Event, Semaphore, Barrier,
// VersionGate. All wakeups go through Simulator::resume_soon for
// deterministic, non-reentrant scheduling.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <stdexcept>

#include "sim/simulator.h"

namespace p3::sim {

/// One-shot broadcast event. Waiting after set() completes immediately.
/// reset() re-arms the event for reuse (any current waiters keep waiting
/// for the next set()).
class Event {
 public:
  explicit Event(Simulator& sim) : sim_(&sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) sim_->resume_soon(h);
    waiters_.clear();
  }

  void reset() { set_ = false; }
  bool is_set() const { return set_; }
  std::size_t waiters() const { return waiters_.size(); }

  auto wait() {
    struct Awaiter {
      Event* ev;
      bool await_ready() const { return ev->set_; }
      void await_suspend(std::coroutine_handle<> h) {
        ev->waiters_.push_back(h);
      }
      void await_resume() const {}
    };
    return Awaiter{this};
  }

 private:
  Simulator* sim_;
  bool set_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore.
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::int64_t initial)
      : sim_(&sim), count_(initial) {
    if (initial < 0) throw std::invalid_argument("negative semaphore count");
  }
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  void release(std::int64_t n = 1) {
    count_ += n;
    while (count_ > 0 && !waiters_.empty()) {
      --count_;
      sim_->resume_soon(waiters_.front());
      waiters_.pop_front();
    }
  }

  auto acquire() {
    struct Awaiter {
      Semaphore* s;
      bool await_ready() const {
        if (s->count_ > 0 && s->waiters_.empty()) {
          --s->count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        s->waiters_.push_back(h);
      }
      void await_resume() const {}
    };
    return Awaiter{this};
  }

  std::int64_t available() const { return count_; }

 private:
  Simulator* sim_;
  std::int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Reusable barrier for `parties` participants; generation-counted so it can
/// be reused across iterations (classic phaser).
class Barrier {
 public:
  Barrier(Simulator& sim, std::size_t parties)
      : sim_(&sim), parties_(parties) {
    if (parties == 0) throw std::invalid_argument("barrier of zero parties");
  }
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  auto arrive_and_wait() {
    struct Awaiter {
      Barrier* b;
      bool await_ready() const { return false; }
      bool await_suspend(std::coroutine_handle<> h) {
        if (++b->arrived_ == b->parties_) {
          b->arrived_ = 0;
          ++b->generation_;
          for (auto w : b->waiters_) b->sim_->resume_soon(w);
          b->waiters_.clear();
          return false;  // last arriver proceeds immediately
        }
        b->waiters_.push_back(h);
        return true;
      }
      void await_resume() const {}
    };
    return Awaiter{this};
  }

  std::uint64_t generation() const { return generation_; }

 private:
  Simulator* sim_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Monotonic version counter with awaitable thresholds. Used for "forward of
/// layer L in iteration i waits until parameter version >= i" gating.
class VersionGate {
 public:
  explicit VersionGate(Simulator& sim) : sim_(&sim) {}
  VersionGate(const VersionGate&) = delete;
  VersionGate& operator=(const VersionGate&) = delete;

  std::int64_t version() const { return version_; }

  void advance_to(std::int64_t v) {
    if (v <= version_) return;
    version_ = v;
    std::erase_if(waiters_, [&](Waiter& w) {
      if (w.needed <= version_) {
        sim_->resume_soon(w.handle);
        return true;
      }
      return false;
    });
  }

  void increment() { advance_to(version_ + 1); }

  /// Awaitable: resume once version() >= needed.
  auto wait_for(std::int64_t needed) {
    struct Awaiter {
      VersionGate* g;
      std::int64_t needed;
      bool await_ready() const { return g->version_ >= needed; }
      void await_suspend(std::coroutine_handle<> h) {
        g->waiters_.push_back(Waiter{needed, h});
      }
      void await_resume() const {}
    };
    return Awaiter{this, needed};
  }

 private:
  struct Waiter {
    std::int64_t needed;
    std::coroutine_handle<> handle;
  };

  Simulator* sim_;
  std::int64_t version_ = 0;
  std::deque<Waiter> waiters_;
};

}  // namespace p3::sim
