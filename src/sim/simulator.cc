#include "sim/simulator.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace p3::sim {

// The event queue is a 4-ary min-heap over trivially copyable entries:
// half the depth of a binary heap, sift moves that compile to plain
// stores, and the four children of a node share a cache line.

Simulator::~Simulator() {
  // Destroy any processes still suspended (e.g. servers blocked on their
  // inbox when the experiment ended). Frames of finished tasks included.
  for (auto h : tasks_) {
    if (h) h.destroy();
  }
}

std::uint32_t Simulator::acquire_slot() {
  if (free_slots_.empty()) {
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  return slot;
}

void Simulator::enqueue(TimeS t, std::uint32_t slot) {
  const Entry e{t, next_seq_++, slot};
  if (dispatching_ && t == now_) {
    // Same-time event scheduled from inside the open batch: its seq exceeds
    // every event already in the batch and the heap holds nothing at this
    // time, so appending preserves FIFO tie order and skips the heap.
    batch_.push_back(e);
    return;
  }
  heap_push(e);
}

void Simulator::heap_push(const Entry& e) {
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

Simulator::Entry Simulator::heap_pop() {
  const Entry top = heap_.front();
  const Entry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < end; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

void Simulator::spawn(Task task) {
  auto h = task.release();
  tasks_.push_back(h);
  h.resume();  // run until the first suspension point
  if (tasks_.size() % 64 == 0) reap_tasks();
}

void Simulator::run_entry(const Entry& e) {
  ++executed_;
  // Move the callback out before invoking: the callback may schedule new
  // events and reallocate the slab.
  EventFn fn = std::move(slots_[e.slot]);
  free_slots_.push_back(e.slot);
  fn();
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  const Entry e = heap_pop();
  now_ = e.time;
  run_entry(e);
  return true;
}

bool Simulator::dispatch_batch() {
  if (heap_.empty()) return false;
  const TimeS t = heap_.front().time;
  batch_.clear();
  while (!heap_.empty() && heap_.front().time == t) {
    batch_.push_back(heap_pop());
  }
  now_ = t;
  dispatching_ = true;
  // batch_ may grow while we iterate: same-time events scheduled by a batch
  // member append behind it (see enqueue()). Index, don't iterate.
  for (std::size_t i = 0; i < batch_.size(); ++i) {
    try {
      run_entry(batch_[i]);
    } catch (...) {
      // Keep the queue consistent: the unexecuted remainder of the batch
      // goes back on the heap so a caller that catches can keep running.
      for (std::size_t j = i + 1; j < batch_.size(); ++j) {
        heap_push(batch_[j]);
      }
      batch_.clear();
      dispatching_ = false;
      throw;
    }
  }
  batch_.clear();
  dispatching_ = false;
  return true;
}

void Simulator::run() {
  while (dispatch_batch()) {
  }
  reap_tasks();
}

TimeS Simulator::run_until(TimeS t) {
  while (!heap_.empty() && heap_.front().time <= t) dispatch_batch();
  if (now_ < t) now_ = t;
  reap_tasks();
  return now_;
}

bool Simulator::run_while(const std::function<bool()>& done) {
  while (!done()) {
    if (!step()) return false;
  }
  reap_tasks();
  return true;
}

void Simulator::reap_tasks() {
  std::erase_if(tasks_, [](Task::Handle h) {
    if (h.done()) {
      h.destroy();
      return true;
    }
    return false;
  });
}

}  // namespace p3::sim
