#include "sim/simulator.h"

#include <stdexcept>

namespace p3::sim {

Simulator::~Simulator() {
  // Destroy any processes still suspended (e.g. servers blocked on their
  // inbox when the experiment ended). Frames of finished tasks included.
  for (auto h : tasks_) {
    if (h) h.destroy();
  }
}

void Simulator::schedule(TimeS dt, std::function<void()> fn) {
  if (dt < 0.0) throw std::invalid_argument("negative event delay");
  events_.push(Event{now_ + dt, next_seq_++, std::move(fn)});
}

void Simulator::schedule_at(TimeS t, std::function<void()> fn) {
  schedule(t > now_ ? t - now_ : 0.0, std::move(fn));
}

void Simulator::spawn(Task task) {
  auto h = task.release();
  tasks_.push_back(h);
  h.resume();  // run until the first suspension point
  if (tasks_.size() % 64 == 0) reap_tasks();
}

bool Simulator::step() {
  if (events_.empty()) return false;
  // priority_queue::top is const; move out via const_cast is UB-adjacent, so
  // copy the small struct instead (std::function copy).
  Event ev = events_.top();
  events_.pop();
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
  reap_tasks();
}

TimeS Simulator::run_until(TimeS t) {
  while (!events_.empty() && events_.top().time <= t) step();
  if (now_ < t) now_ = t;
  reap_tasks();
  return now_;
}

bool Simulator::run_while(const std::function<bool()>& done) {
  while (!done()) {
    if (!step()) return false;
  }
  reap_tasks();
  return true;
}

void Simulator::reap_tasks() {
  std::erase_if(tasks_, [](Task::Handle h) {
    if (h.done()) {
      h.destroy();
      return true;
    }
    return false;
  });
}

}  // namespace p3::sim
