// Awaitable queues for coroutine processes.
//
// `Queue<T>` is an unbounded FIFO channel; `PriorityQueue<T, Compare>` pops
// the highest-priority element instead. Both support multiple concurrent
// consumers (woken FIFO) and synchronous producers. Wakeups are scheduled
// through the simulator rather than resumed inline, so a push never runs
// consumer code reentrantly.
//
// Semantics: a woken consumer pops at *resume* time (like a thread waking
// from a condition variable), so several same-instant pushes are all visible
// and a priority-queue consumer takes the most urgent of them. Items are
// reserved for woken-but-not-yet-resumed consumers: a late consumer (or
// try_pop) cannot overtake one that suspended earlier.
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/simulator.h"

namespace p3::sim {

namespace detail {

/// Waiter bookkeeping shared by both queue flavors.
template <typename Container>
class QueueBase {
 public:
  explicit QueueBase(Simulator& sim) : sim_(&sim) {}
  QueueBase(const QueueBase&) = delete;
  QueueBase& operator=(const QueueBase&) = delete;
  ~QueueBase() {
    // Suspended consumers may outlive the queue (their frames are reclaimed
    // by the Simulator at teardown); mark them so their awaiter destructors
    // do not touch freed queue state. Woken-but-not-yet-resumed consumers
    // left waiters_ in wake_one() and need the same treatment.
    for (auto* w : waiters_) w->orphaned = true;
    for (auto* w : woken_) w->orphaned = true;
  }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  std::size_t waiters() const { return waiters_.size(); }

  /// Items not reserved for an already-woken consumer.
  std::size_t available() const {
    return items_.size() > reserved_ ? items_.size() - reserved_ : 0;
  }

 protected:
  struct Waiter {
    std::coroutine_handle<> handle;
    bool woken = false;
    bool resumed = false;
    bool orphaned = false;  ///< the queue died while this waiter slept
  };

  /// Wake one suspended consumer (if any) and reserve an item for it.
  void wake_one() {
    if (waiters_.empty()) return;
    Waiter* w = waiters_.front();
    waiters_.pop_front();
    w->woken = true;
    woken_.push_back(w);
    ++reserved_;
    sim_->resume_soon(w->handle);
  }

  static void unlink(std::deque<Waiter*>& list, Waiter* w) {
    for (auto it = list.begin(); it != list.end(); ++it) {
      if (*it == w) {
        list.erase(it);
        return;
      }
    }
  }

  /// Called at a woken consumer's resume to release its reservation.
  void on_waiter_resumed(Waiter* w) {
    w->resumed = true;
    --reserved_;
    unlink(woken_, w);
  }

  /// Called from ~PopAwaiter to release bookkeeping on cancellation.
  void on_waiter_destroyed(Waiter* w) {
    if (!w->handle) return;
    if (w->woken && !w->resumed) {
      --reserved_;  // reservation abandoned
      unlink(woken_, w);
    } else if (!w->woken) {
      unlink(waiters_, w);
    }
  }

  Simulator* sim_;
  Container items_;
  std::deque<Waiter*> waiters_;
  std::deque<Waiter*> woken_;  ///< woken but not yet resumed/destroyed
  std::size_t reserved_ = 0;
};

}  // namespace detail

/// Unbounded FIFO channel.
template <typename T>
class Queue : public detail::QueueBase<std::deque<T>> {
  using Base = detail::QueueBase<std::deque<T>>;

 public:
  using Base::Base;

  void push(T value) {
    this->items_.push_back(std::move(value));
    this->wake_one();
  }

  /// Awaitable pop; resumes with the front element once available.
  auto pop() { return PopAwaiter{this}; }

  /// Non-blocking pop of an unreserved item.
  std::optional<T> try_pop() {
    if (this->available() == 0) return std::nullopt;
    T v = std::move(this->items_.front());
    this->items_.pop_front();
    return v;
  }

 private:
  struct PopAwaiter : Base::Waiter {
    Queue* q;
    explicit PopAwaiter(Queue* queue) : q(queue) {}
    ~PopAwaiter() {
      if (!this->orphaned) q->on_waiter_destroyed(this);
    }
    bool await_ready() {
      // Fast path only if no consumer is queued or pending wakeup.
      return q->waiters_.empty() && q->available() > 0;
    }
    void await_suspend(std::coroutine_handle<> h) {
      this->handle = h;
      q->waiters_.push_back(this);
    }
    T await_resume() {
      if (this->woken) q->on_waiter_resumed(this);
      if (q->items_.empty()) {
        throw std::logic_error("Queue::pop resumed with no item");
      }
      T v = std::move(q->items_.front());
      q->items_.pop_front();
      return v;
    }
  };
};

/// Unbounded priority channel. `Compare` follows std::priority_queue
/// convention: comp(a, b) == true means a ranks below b.
template <typename T, typename Compare>
class PriorityQueue
    : public detail::QueueBase<
          std::priority_queue<T, std::vector<T>, Compare>> {
  using Base =
      detail::QueueBase<std::priority_queue<T, std::vector<T>, Compare>>;

 public:
  using Base::Base;

  void push(T value) {
    this->items_.push(std::move(value));
    this->wake_one();
  }

  auto pop() { return PopAwaiter{this}; }

  std::optional<T> try_pop() {
    if (this->available() == 0) return std::nullopt;
    T v = this->items_.top();
    this->items_.pop();
    return v;
  }

 private:
  struct PopAwaiter : Base::Waiter {
    PriorityQueue* q;
    explicit PopAwaiter(PriorityQueue* queue) : q(queue) {}
    ~PopAwaiter() {
      if (!this->orphaned) q->on_waiter_destroyed(this);
    }
    bool await_ready() { return q->waiters_.empty() && q->available() > 0; }
    void await_suspend(std::coroutine_handle<> h) {
      this->handle = h;
      q->waiters_.push_back(this);
    }
    T await_resume() {
      if (this->woken) q->on_waiter_resumed(this);
      if (q->items_.empty()) {
        throw std::logic_error("PriorityQueue::pop resumed with no item");
      }
      T v = q->items_.top();
      q->items_.pop();
      return v;
    }
  };
};

}  // namespace p3::sim
