// Online staleness-bound controller for the DSSP sync method.
//
// DSSP (Zhao et al., arXiv:1908.11848) generalizes SSP: instead of a fixed
// staleness bound s, the bound is adapted online within [s_min, s_max] from
// the observed synchronization-wait distribution. The controller here is the
// deterministic core of that loop: the cluster engine reports every gate
// passage (how long the worker sat blocked on the min-clock gate), and the
// controller widens the bound when a window shows workers mostly blocking
// (dispersion the bound is too tight for) and decays it back toward s_min
// when waits vanish (so the fleet does not pay unbounded-staleness noise for
// slack it no longer needs).
//
// The controller is a pure function of its observation sequence — no clocks,
// no randomness — so cluster runs stay bit-identical across thread counts.
#pragma once

#include <cstdint>

namespace p3::ps {

struct StalenessConfig {
  int s_min = 0;   ///< tightest bound the controller may select
  int s_max = 4;   ///< loosest bound the controller may select
  /// Pin the bound to a fixed value and disable adaptation (static-s
  /// ablation cells in bench/ext_dssp). Negative = adaptive.
  int fixed_s = -1;
  /// Gate passages per adaptation decision.
  int window = 8;
  /// Raise s when at least this fraction of a window's passages blocked.
  double raise_fraction = 0.5;
  /// Decay s when at most this fraction of a window's passages blocked.
  double decay_fraction = 0.125;
  /// Consecutive calm windows (blocked fraction <= decay_fraction) required
  /// before the bound decays one step. 1 = decay immediately; larger values
  /// add hysteresis so a bursty straggler does not thrash the bound
  /// raise/decay every window (each decay re-tightens the gate and stalls
  /// the workers that already ran ahead).
  int decay_patience = 1;

  /// Throws std::invalid_argument on out-of-range values.
  void validate() const;
};

class StalenessController {
 public:
  explicit StalenessController(const StalenessConfig& cfg);

  /// The bound workers must capture when they block (s in `min_live_clock
  /// >= c - s`).
  int bound() const { return bound_; }

  /// Record one gate passage at simulated time `now_s` that waited
  /// `wait_s` seconds (0 when the gate was already open).
  void observe(double now_s, double wait_s);

  /// Time-weighted mean of the active bound over [0, now_s] — the
  /// staleness "cost" a run actually incurred, used by ext_dssp to score
  /// adaptive against static ablations.
  double mean_bound(double now_s) const;

  std::int64_t raises() const { return raises_; }
  std::int64_t decays() const { return decays_; }

 private:
  void set_bound(double now_s, int next);

  StalenessConfig cfg_;
  int bound_ = 0;
  int window_seen_ = 0;
  int window_blocked_ = 0;
  int calm_windows_ = 0;
  std::int64_t raises_ = 0;
  std::int64_t decays_ = 0;
  // Time-weighted bound integral: sum of bound * dwell time over every
  // bound value held so far.
  double bound_integral_ = 0.0;
  double bound_since_ = 0.0;
};

}  // namespace p3::ps
