// Heartbeat-driven failure detection and shard leadership.
//
// Every node in the cluster gossips fixed-size heartbeat beacons on the
// ordinary message plane (no side channel: beacons compete for NIC time
// like any other traffic). Each node feeds the beacons it receives into its
// own `Membership` view — a simplified phi-accrual detector collapsed to a
// single deterministic threshold over the simulated clock: a peer whose
// silence exceeds `suspicion_timeout` transitions to *dead*; a later beacon
// (the peer was merely slow, or it restarted with a higher incarnation)
// transitions it back to *alive*. Views are per-node and independent: two
// observers may disagree transiently, exactly like production detectors,
// and the protocol layers above are built to converge despite that.
//
// `ShardLeadership` is the failover half: each shard group (a server shard
// and its R-1 chain replicas) has a monotonically increasing leadership
// epoch. Leadership changes only by announcement (`kNewPrimary` messages in
// ps::Cluster); `adopt` enforces monotonicity so stale announcements and
// out-of-order deliveries cannot move a view backwards, and equal-epoch
// conflicts (two backups claiming succession after a cascade of failures)
// deterministically resolve toward the later chain offset.
//
// Everything here is plain state driven by the simulator clock — no events
// are scheduled and no randomness is consumed, so membership adds zero
// perturbation to runs that never enable it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace p3::ps {

struct MembershipConfig {
  int n_nodes = 0;
  /// Beacon interval; every node broadcasts one heartbeat per period.
  TimeS heartbeat_period = ms(5);
  /// Silence threshold: a peer unheard for longer than this is suspected
  /// dead. Must comfortably exceed `heartbeat_period` (several consecutive
  /// beacons must be lost before suspicion) or wire loss alone produces
  /// false failovers.
  TimeS suspicion_timeout = ms(50);
};

/// One node's local liveness view of every peer.
class Membership {
 public:
  /// What one received beacon did to the view (record_heartbeat result).
  struct BeaconEffect {
    /// The peer was suspected dead and this beacon revived it.
    bool revived = false;
    /// The beacon carries a *higher* incarnation than a peer still believed
    /// alive: the old process died and its successor is up before the
    /// silence detector ever noticed. Supersession must be treated as an
    /// immediate death+revival by the layers above (leases held by the old
    /// incarnation are void now, not after a silence threshold).
    bool superseded = false;
  };

  Membership(const MembershipConfig& config, int self);

  int self() const { return self_; }
  int n_nodes() const { return static_cast<int>(peers_.size()); }

  /// Feed one received beacon. A beacon from a suspected-dead peer revives
  /// it; a higher incarnation records that the peer restarted (its previous
  /// process, and all state it held, is gone). A beacon from a not-yet-
  /// joined peer marks it joined.
  BeaconEffect record_heartbeat(int node, std::int64_t incarnation, TimeS now);

  /// Evaluate suspicion at `now`; returns peers that transitioned
  /// alive -> dead during this evaluation (each transition reported once).
  std::vector<int> check(TimeS now);

  /// Fresh-process reset (node restart): the new process starts optimistic,
  /// treating every *member* peer as alive and freshly heard so stale
  /// pre-crash timers cannot fire instant false suspicions. Learned
  /// incarnations are kept — they are monotonic and only make the
  /// ghost-beacon guard safer. Peers that never joined stay unjoined.
  void reset(TimeS now) {
    for (Peer& p : peers_) {
      if (!p.joined) continue;
      p.last_heard = now;
      p.alive = true;
    }
  }

  /// Elastic scale-out: mark a node that is not (yet) a cluster member —
  /// dead and unjoined until its first beacon (or mark_joined) arrives.
  void mark_unjoined(int node) {
    Peer& p = peers_[static_cast<std::size_t>(node)];
    p.joined = false;
    p.alive = false;
  }
  /// Admit a member directly (ground-truth bootstrap of a joiner's own
  /// fresh view; everyone else learns from beacons).
  void mark_joined(int node, TimeS now) {
    Peer& p = peers_[static_cast<std::size_t>(node)];
    p.joined = true;
    p.alive = true;
    if (now > p.last_heard) p.last_heard = now;
  }
  bool joined(int node) const {
    return peers_[static_cast<std::size_t>(node)].joined;
  }

  bool alive(int node) const {
    return peers_[static_cast<std::size_t>(node)].alive;
  }
  std::int64_t incarnation(int node) const {
    return peers_[static_cast<std::size_t>(node)].incarnation;
  }
  TimeS last_heard(int node) const {
    return peers_[static_cast<std::size_t>(node)].last_heard;
  }
  const MembershipConfig& config() const { return cfg_; }

 private:
  struct Peer {
    TimeS last_heard = 0.0;
    std::int64_t incarnation = 0;
    bool alive = true;
    bool joined = true;  ///< false until an elastic joiner's first beacon
  };

  MembershipConfig cfg_;
  int self_ = -1;
  std::vector<Peer> peers_;
};

/// One node's view of who currently leads each shard group.
///
/// There is one group per *base* server: group `g` holds the slices owned
/// by server g at partition time. While a base server leads, the chain is
/// the fixed home ring {g, g+1, ..., g+R-1} (mod n_base). Elastic scale-out
/// adds servers beyond the base ring; when shard rebalancing hands group
/// `g` to a joiner j, the chain derives from the current primary instead:
/// {j, g, g+1, ..., g+R-2} — the joiner leads and the head of the home ring
/// (the donor) stays as the first backup.
///
/// Under lease-based leadership each view additionally tracks a per-group
/// lease deadline (renewed by received beacons in ps::Cluster); a failover
/// may act on a suspected-dead primary only once its lease expired, which
/// removes the dual-primary window a per-observer silence threshold allows.
class ShardLeadership {
 public:
  struct Lease {
    std::int64_t epoch = 0;  ///< bumps on every leadership change
    int primary = -1;        ///< server index currently leading the group
  };

  /// `n_servers_total` counts base + joiner servers; < 0 = no joiners.
  ShardLeadership(int n_groups, int replication, int n_servers_total = -1);

  int n_servers() const { return n_groups_; }
  int n_groups() const { return n_groups_; }
  int n_servers_total() const { return n_total_; }
  int replication() const { return replication_; }

  const Lease& lease(int group) const {
    return leases_[static_cast<std::size_t>(group)];
  }
  int primary(int group) const { return lease(group).primary; }
  std::int64_t epoch(int group) const { return lease(group).epoch; }

  /// Position of `server` in group `g`'s *current* chain (0 = primary-side
  /// head), or -1 if the server does not replicate the group right now.
  int chain_offset(int group, int server) const;

  /// Replica at chain offset `k` of group `g`'s current chain (derived from
  /// the believed primary, see the class comment).
  int member(int group, int k) const;

  /// Deterministic succession rank used for equal-epoch conflicts: base
  /// servers rank by home-ring offset, joiners rank after every base server
  /// (in id order), so cascaded same-epoch claims converge identically at
  /// every observer toward the later rank.
  int succession_rank(int group, int server) const;

  /// Monotonic adoption of an announced lease. Returns true if the view
  /// moved. Equal epochs resolve toward the later succession rank.
  bool adopt(int group, std::int64_t epoch, int primary);

  // --- lease timing (meaningful only when ps::Cluster arms leases) ---
  /// Simulated time until which this view considers the group's leadership
  /// lease valid; 0 = never granted (immediately expired).
  TimeS lease_deadline(int group) const {
    return lease_until_[static_cast<std::size_t>(group)];
  }
  /// Extend the lease (monotonic; a stale renewal never shortens it).
  void renew_lease(int group, TimeS until) {
    auto& u = lease_until_[static_cast<std::size_t>(group)];
    if (until > u) u = until;
  }
  /// Void the lease now (incarnation supersession: the holder is gone).
  void expire_lease(int group, TimeS now) {
    auto& u = lease_until_[static_cast<std::size_t>(group)];
    if (now < u) u = now;
  }

 private:
  int n_groups_ = 0;
  int n_total_ = 0;
  int replication_ = 1;
  std::vector<Lease> leases_;
  std::vector<TimeS> lease_until_;
};

}  // namespace p3::ps
