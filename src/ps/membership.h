// Heartbeat-driven failure detection and shard leadership.
//
// Every node in the cluster gossips fixed-size heartbeat beacons on the
// ordinary message plane (no side channel: beacons compete for NIC time
// like any other traffic). Each node feeds the beacons it receives into its
// own `Membership` view — a simplified phi-accrual detector collapsed to a
// single deterministic threshold over the simulated clock: a peer whose
// silence exceeds `suspicion_timeout` transitions to *dead*; a later beacon
// (the peer was merely slow, or it restarted with a higher incarnation)
// transitions it back to *alive*. Views are per-node and independent: two
// observers may disagree transiently, exactly like production detectors,
// and the protocol layers above are built to converge despite that.
//
// `ShardLeadership` is the failover half: each shard group (a server shard
// and its R-1 chain replicas) has a monotonically increasing leadership
// epoch. Leadership changes only by announcement (`kNewPrimary` messages in
// ps::Cluster); `adopt` enforces monotonicity so stale announcements and
// out-of-order deliveries cannot move a view backwards, and equal-epoch
// conflicts (two backups claiming succession after a cascade of failures)
// deterministically resolve toward the later chain offset.
//
// Everything here is plain state driven by the simulator clock — no events
// are scheduled and no randomness is consumed, so membership adds zero
// perturbation to runs that never enable it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace p3::ps {

struct MembershipConfig {
  int n_nodes = 0;
  /// Beacon interval; every node broadcasts one heartbeat per period.
  TimeS heartbeat_period = ms(5);
  /// Silence threshold: a peer unheard for longer than this is suspected
  /// dead. Must comfortably exceed `heartbeat_period` (several consecutive
  /// beacons must be lost before suspicion) or wire loss alone produces
  /// false failovers.
  TimeS suspicion_timeout = ms(50);
};

/// One node's local liveness view of every peer.
class Membership {
 public:
  Membership(const MembershipConfig& config, int self);

  int self() const { return self_; }
  int n_nodes() const { return static_cast<int>(peers_.size()); }

  /// Feed one received beacon. A beacon from a suspected-dead peer revives
  /// it; a higher incarnation records that the peer restarted (its previous
  /// process, and all state it held, is gone).
  void record_heartbeat(int node, std::int64_t incarnation, TimeS now);

  /// Evaluate suspicion at `now`; returns peers that transitioned
  /// alive -> dead during this evaluation (each transition reported once).
  std::vector<int> check(TimeS now);

  /// Fresh-process reset (node restart): the new process starts optimistic,
  /// treating every peer as alive and freshly heard so stale pre-crash
  /// timers cannot fire instant false suspicions. Learned incarnations are
  /// kept — they are monotonic and only make the ghost-beacon guard safer.
  void reset(TimeS now) {
    for (Peer& p : peers_) {
      p.last_heard = now;
      p.alive = true;
    }
  }

  bool alive(int node) const {
    return peers_[static_cast<std::size_t>(node)].alive;
  }
  std::int64_t incarnation(int node) const {
    return peers_[static_cast<std::size_t>(node)].incarnation;
  }
  TimeS last_heard(int node) const {
    return peers_[static_cast<std::size_t>(node)].last_heard;
  }
  const MembershipConfig& config() const { return cfg_; }

 private:
  struct Peer {
    TimeS last_heard = 0.0;
    std::int64_t incarnation = 0;
    bool alive = true;
  };

  MembershipConfig cfg_;
  int self_ = -1;
  std::vector<Peer> peers_;
};

/// One node's view of who currently leads each shard group. Group `g` is
/// the set of servers {g, g+1, ..., g+R-1} (mod n_servers) hosting replicas
/// of the slices owned by server g; the chain order is that fixed ring.
class ShardLeadership {
 public:
  struct Lease {
    std::int64_t epoch = 0;  ///< bumps on every leadership change
    int primary = -1;        ///< server index currently leading the group
  };

  ShardLeadership(int n_servers, int replication);

  int n_servers() const { return n_servers_; }
  int replication() const { return replication_; }

  const Lease& lease(int group) const {
    return leases_[static_cast<std::size_t>(group)];
  }
  int primary(int group) const { return lease(group).primary; }
  std::int64_t epoch(int group) const { return lease(group).epoch; }

  /// Position of `server` in group `g`'s chain (0 = original owner), or -1
  /// if the server does not replicate the group.
  int chain_offset(int group, int server) const;

  /// Replica at chain offset `k` of group `g`.
  int member(int group, int k) const {
    return (group + k) % n_servers_;
  }

  /// Monotonic adoption of an announced lease. Returns true if the view
  /// moved. Equal epochs resolve toward the later chain offset, so cascaded
  /// same-epoch claims converge identically at every observer.
  bool adopt(int group, std::int64_t epoch, int primary);

 private:
  int n_servers_ = 0;
  int replication_ = 1;
  std::vector<Lease> leases_;
};

}  // namespace p3::ps
