#include "ps/membership.h"

#include <stdexcept>

namespace p3::ps {

Membership::Membership(const MembershipConfig& config, int self)
    : cfg_(config), self_(self) {
  if (config.n_nodes <= 0) {
    throw std::invalid_argument("membership needs at least one node");
  }
  if (self < 0 || self >= config.n_nodes) {
    throw std::invalid_argument("membership self index out of range");
  }
  if (config.heartbeat_period <= 0.0) {
    throw std::invalid_argument("non-positive heartbeat period");
  }
  if (config.suspicion_timeout <= config.heartbeat_period) {
    throw std::invalid_argument(
        "suspicion timeout must exceed the heartbeat period");
  }
  peers_.resize(static_cast<std::size_t>(config.n_nodes));
}

Membership::BeaconEffect Membership::record_heartbeat(int node,
                                                      std::int64_t incarnation,
                                                      TimeS now) {
  if (node < 0 || node >= n_nodes()) {
    throw std::out_of_range("heartbeat from unknown node");
  }
  BeaconEffect effect;
  Peer& p = peers_[static_cast<std::size_t>(node)];
  // Beacons from an older incarnation are ghosts of a process already known
  // to have died; they must not revive the peer or refresh its timer.
  if (incarnation < p.incarnation) return effect;
  // A higher incarnation while the peer is still believed alive means the
  // old process crashed and restarted inside the silence threshold: the
  // supersession is immediate — there is no old process left to suspect.
  effect.superseded =
      p.joined && p.alive && incarnation > p.incarnation;
  effect.revived = p.joined && !p.alive;
  p.incarnation = incarnation;
  if (now > p.last_heard) p.last_heard = now;
  p.alive = true;
  p.joined = true;
  return effect;
}

std::vector<int> Membership::check(TimeS now) {
  std::vector<int> newly_dead;
  for (int node = 0; node < n_nodes(); ++node) {
    if (node == self_) continue;  // a node never suspects itself
    Peer& p = peers_[static_cast<std::size_t>(node)];
    if (!p.alive) continue;
    if (now - p.last_heard > cfg_.suspicion_timeout) {
      p.alive = false;
      newly_dead.push_back(node);
    }
  }
  return newly_dead;
}

ShardLeadership::ShardLeadership(int n_groups, int replication,
                                 int n_servers_total)
    : n_groups_(n_groups),
      n_total_(n_servers_total < 0 ? n_groups : n_servers_total),
      replication_(replication) {
  if (n_groups <= 0) {
    throw std::invalid_argument("leadership needs at least one server");
  }
  if (replication < 1 || replication > n_groups) {
    throw std::invalid_argument(
        "replication factor outside [1, n_servers]");
  }
  if (n_total_ < n_groups) {
    throw std::invalid_argument("total server count below the base ring");
  }
  leases_.resize(static_cast<std::size_t>(n_groups));
  lease_until_.assign(static_cast<std::size_t>(n_groups), 0.0);
  for (int g = 0; g < n_groups; ++g) {
    leases_[static_cast<std::size_t>(g)].primary = g;  // chain head leads
  }
}

int ShardLeadership::member(int group, int k) const {
  const int p = primary(group);
  if (p < n_groups_) {
    // Base-ring primary: the original fixed home ring.
    return (group + k) % n_groups_;
  }
  // Joiner-led group: the joiner heads the chain and the first R-1 home
  // ring members (donor first) stay as backups.
  if (k == 0) return p;
  return (group + k - 1) % n_groups_;
}

int ShardLeadership::chain_offset(int group, int server) const {
  for (int k = 0; k < replication_; ++k) {
    if (member(group, k) == server) return k;
  }
  return -1;
}

int ShardLeadership::succession_rank(int group, int server) const {
  if (server < n_groups_) return (server - group + n_groups_) % n_groups_;
  return n_groups_ + (server - n_groups_);  // joiners rank after the ring
}

bool ShardLeadership::adopt(int group, std::int64_t epoch, int primary) {
  if (group < 0 || group >= n_groups_) {
    throw std::out_of_range("leadership group out of range");
  }
  if (primary < 0 || primary >= n_total_) {
    throw std::invalid_argument("adopted primary outside the cluster");
  }
  // Base servers may lead only groups whose home ring they replicate;
  // joiners may be handed any group by the rebalance planner.
  if (primary < n_groups_ &&
      (primary - group + n_groups_) % n_groups_ >= replication_) {
    throw std::invalid_argument("adopted primary is not a group replica");
  }
  Lease& cur = leases_[static_cast<std::size_t>(group)];
  const bool newer =
      epoch > cur.epoch ||
      (epoch == cur.epoch &&
       succession_rank(group, primary) > succession_rank(group, cur.primary));
  if (!newer) return false;
  cur.epoch = epoch;
  cur.primary = primary;
  return true;
}

}  // namespace p3::ps
