#include "ps/membership.h"

#include <stdexcept>

namespace p3::ps {

Membership::Membership(const MembershipConfig& config, int self)
    : cfg_(config), self_(self) {
  if (config.n_nodes <= 0) {
    throw std::invalid_argument("membership needs at least one node");
  }
  if (self < 0 || self >= config.n_nodes) {
    throw std::invalid_argument("membership self index out of range");
  }
  if (config.heartbeat_period <= 0.0) {
    throw std::invalid_argument("non-positive heartbeat period");
  }
  if (config.suspicion_timeout <= config.heartbeat_period) {
    throw std::invalid_argument(
        "suspicion timeout must exceed the heartbeat period");
  }
  peers_.resize(static_cast<std::size_t>(config.n_nodes));
}

void Membership::record_heartbeat(int node, std::int64_t incarnation,
                                  TimeS now) {
  if (node < 0 || node >= n_nodes()) {
    throw std::out_of_range("heartbeat from unknown node");
  }
  Peer& p = peers_[static_cast<std::size_t>(node)];
  // Beacons from an older incarnation are ghosts of a process already known
  // to have died; they must not revive the peer or refresh its timer.
  if (incarnation < p.incarnation) return;
  p.incarnation = incarnation;
  if (now > p.last_heard) p.last_heard = now;
  p.alive = true;
}

std::vector<int> Membership::check(TimeS now) {
  std::vector<int> newly_dead;
  for (int node = 0; node < n_nodes(); ++node) {
    if (node == self_) continue;  // a node never suspects itself
    Peer& p = peers_[static_cast<std::size_t>(node)];
    if (!p.alive) continue;
    if (now - p.last_heard > cfg_.suspicion_timeout) {
      p.alive = false;
      newly_dead.push_back(node);
    }
  }
  return newly_dead;
}

ShardLeadership::ShardLeadership(int n_servers, int replication)
    : n_servers_(n_servers), replication_(replication) {
  if (n_servers <= 0) {
    throw std::invalid_argument("leadership needs at least one server");
  }
  if (replication < 1 || replication > n_servers) {
    throw std::invalid_argument(
        "replication factor outside [1, n_servers]");
  }
  leases_.resize(static_cast<std::size_t>(n_servers));
  for (int g = 0; g < n_servers; ++g) {
    leases_[static_cast<std::size_t>(g)].primary = g;  // chain head leads
  }
}

int ShardLeadership::chain_offset(int group, int server) const {
  const int offset = (server - group + n_servers_) % n_servers_;
  return offset < replication_ ? offset : -1;
}

bool ShardLeadership::adopt(int group, std::int64_t epoch, int primary) {
  if (group < 0 || group >= n_servers_) {
    throw std::out_of_range("leadership group out of range");
  }
  if (chain_offset(group, primary) < 0) {
    throw std::invalid_argument("adopted primary is not a group replica");
  }
  Lease& cur = leases_[static_cast<std::size_t>(group)];
  const bool newer =
      epoch > cur.epoch ||
      (epoch == cur.epoch &&
       chain_offset(group, primary) > chain_offset(group, cur.primary));
  if (!newer) return false;
  cur.epoch = epoch;
  cur.primary = primary;
  return true;
}

}  // namespace p3::ps
