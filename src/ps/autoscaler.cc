#include "ps/autoscaler.h"

#include <algorithm>
#include <stdexcept>

namespace p3::ps {

std::vector<int> weighted_share(const std::vector<double>& weights,
                                const std::vector<int>& candidates,
                                int shares) {
  if (candidates.empty() || shares <= 0) return {};
  std::vector<int> order = candidates;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double wa = a < static_cast<int>(weights.size()) ? weights[a] : 0.0;
    const double wb = b < static_cast<int>(weights.size()) ? weights[b] : 0.0;
    if (wa != wb) return wa > wb;
    return a < b;
  });
  double total = 0.0;
  for (int c : order) {
    total += c < static_cast<int>(weights.size()) ? weights[c] : 0.0;
  }
  const double target = total / static_cast<double>(shares);
  // Take at least one group, never the donors' last one.
  const std::size_t max_take = std::max<std::size_t>(1, order.size() - 1);
  std::vector<int> chosen;
  double cum = 0.0;
  for (int c : order) {
    if (chosen.size() >= max_take) break;
    if (!chosen.empty() && cum >= target) break;
    chosen.push_back(c);
    cum += c < static_cast<int>(weights.size()) ? weights[c] : 0.0;
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

Autoscaler::Autoscaler(AutoscalerConfig cfg, const obs::Registry* registry)
    : cfg_(std::move(cfg)), registry_(registry) {
  if (cfg_.slo_p99_iteration <= 0.0) {
    throw std::invalid_argument("autoscaler needs a positive latency SLO");
  }
  if (cfg_.cooldown <= 0.0) {
    throw std::invalid_argument("autoscaler needs a positive cooldown");
  }
  if (cfg_.hysteresis_ticks < 1) {
    throw std::invalid_argument("autoscaler hysteresis must be >= 1 tick");
  }
  if (cfg_.window_ticks < 1) {
    throw std::invalid_argument("autoscaler window must be >= 1 tick");
  }
  if (cfg_.upscale_fraction <= 0.0 || cfg_.upscale_fraction > 1.0 ||
      cfg_.downscale_fraction < 0.0 ||
      cfg_.downscale_fraction >= cfg_.upscale_fraction) {
    throw std::invalid_argument(
        "autoscaler thresholds need 0 <= down < up <= 1");
  }
  if (cfg_.standby_nodes < 0) {
    throw std::invalid_argument("negative standby pool");
  }
}

double Autoscaler::windowed_p99() {
  const obs::Histogram* h =
      registry_->find_histogram(cfg_.iteration_histogram);
  if (h == nullptr) return 0.0;
  const std::size_t n = h->bounds().size() + 1;  // + overflow bucket
  std::vector<std::int64_t> counts(n);
  for (std::size_t i = 0; i < n; ++i) counts[i] = h->bucket_count(i);
  if (prev_counts_.size() != n) prev_counts_.assign(n, 0);
  std::vector<std::int64_t> delta(n);
  for (std::size_t i = 0; i < n; ++i) delta[i] = counts[i] - prev_counts_[i];
  prev_counts_ = counts;
  window_.push_back(std::move(delta));
  while (window_.size() > static_cast<std::size_t>(cfg_.window_ticks)) {
    window_.pop_front();
  }
  std::vector<std::int64_t> acc(n, 0);
  std::int64_t total = 0;
  for (const auto& d : window_) {
    for (std::size_t i = 0; i < n; ++i) {
      acc[i] += d[i];
      total += d[i];
    }
  }
  if (total == 0) return last_p99_;  // no fresh signal: carry the estimate
  // Overflow-bucket windows report 2x the last bound: decisively above
  // every bound, so any sane SLO reads as violated.
  return obs::Histogram::quantile_from_counts(h->bounds(), acc, 0.99);
}

double Autoscaler::max_queue_depth() const {
  double depth = 0.0;
  for (const auto& name : cfg_.queue_gauges) {
    if (const obs::Gauge* g = registry_->find_gauge(name)) {
      depth = std::max(depth, g->value());
    }
  }
  return depth;
}

ScaleAction Autoscaler::tick(TimeS now, bool can_scale_up,
                             bool can_scale_down) {
  const std::int64_t before = prev_total_;
  const obs::Histogram* h =
      registry_->find_histogram(cfg_.iteration_histogram);
  const std::int64_t observed = h == nullptr ? 0 : h->count();
  if (!seen_tick_ || observed > before) last_progress_ = now;
  prev_total_ = observed;
  seen_tick_ = true;

  const double p99 = windowed_p99();
  last_p99_ = p99;
  const double slo = cfg_.slo_p99_iteration;
  const TimeS stall_after =
      cfg_.stall_after > 0.0 ? cfg_.stall_after : 4.0 * slo;
  stalled_ = (now - last_progress_) > stall_after;
  const bool have_signal = p99 > 0.0;
  const bool queue_hot =
      cfg_.queue_depth_high > 0.0 && max_queue_depth() > cfg_.queue_depth_high;

  if ((have_signal && p99 > slo) || stalled_) ++slo_violation_ticks_;

  const bool overloaded =
      (have_signal && p99 > cfg_.upscale_fraction * slo) || stalled_ ||
      queue_hot;
  const bool underloaded = !overloaded && have_signal &&
                           p99 < cfg_.downscale_fraction * slo && !queue_hot;
  over_streak_ = overloaded ? over_streak_ + 1 : 0;
  under_streak_ = underloaded ? under_streak_ + 1 : 0;

  ScaleAction act = ScaleAction::kHold;
  if (now - last_decision_ >= cfg_.cooldown) {
    if (over_streak_ >= cfg_.hysteresis_ticks) {
      if (can_scale_up) {
        act = ScaleAction::kUp;
      } else if (cfg_.shed_on_exhausted) {
        act = ScaleAction::kShed;
      }
    } else if (under_streak_ >= cfg_.hysteresis_ticks && can_scale_down) {
      act = ScaleAction::kDown;
    }
  }
  if (act != ScaleAction::kHold) {
    last_decision_ = now;
    over_streak_ = 0;
    under_streak_ = 0;
  }
  return act;
}

}  // namespace p3::ps
