#include "ps/staleness.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace p3::ps {

void StalenessConfig::validate() const {
  if (s_min < 0) {
    throw std::invalid_argument("staleness.s_min must be >= 0");
  }
  if (s_max < s_min) {
    throw std::invalid_argument("staleness.s_max must be >= s_min");
  }
  if (window <= 0) {
    throw std::invalid_argument("staleness.window must be positive");
  }
  if (raise_fraction < 0.0 || raise_fraction > 1.0 || decay_fraction < 0.0 ||
      decay_fraction > 1.0) {
    throw std::invalid_argument(
        "staleness raise/decay fractions must lie in [0, 1]");
  }
  if (decay_fraction > raise_fraction) {
    throw std::invalid_argument(
        "staleness.decay_fraction must not exceed raise_fraction");
  }
  if (decay_patience < 1) {
    throw std::invalid_argument("staleness.decay_patience must be >= 1");
  }
}

StalenessController::StalenessController(const StalenessConfig& cfg)
    : cfg_(cfg) {
  cfg_.validate();
  bound_ = cfg_.fixed_s >= 0 ? cfg_.fixed_s : cfg_.s_min;
}

void StalenessController::observe(double now_s, double wait_s) {
  if (cfg_.fixed_s >= 0) return;  // static ablation: bound pinned
  ++window_seen_;
  if (wait_s > 0.0) ++window_blocked_;
  if (window_seen_ < cfg_.window) return;
  const double blocked_frac =
      static_cast<double>(window_blocked_) / static_cast<double>(window_seen_);
  window_seen_ = 0;
  window_blocked_ = 0;
  if (blocked_frac >= cfg_.raise_fraction && bound_ < cfg_.s_max) {
    calm_windows_ = 0;
    ++raises_;
    set_bound(now_s, bound_ + 1);
  } else if (blocked_frac <= cfg_.decay_fraction) {
    // Calm window: only decay once `decay_patience` of them arrive
    // back-to-back, so one quiet window inside a bursty straggle phase
    // does not re-tighten the gate the fleet just paid to open.
    ++calm_windows_;
    if (calm_windows_ >= cfg_.decay_patience && bound_ > cfg_.s_min) {
      calm_windows_ = 0;
      ++decays_;
      set_bound(now_s, bound_ - 1);
    }
  } else {
    calm_windows_ = 0;
  }
}

double StalenessController::mean_bound(double now_s) const {
  if (now_s <= 0.0) return static_cast<double>(bound_);
  const double integral =
      bound_integral_ + static_cast<double>(bound_) * (now_s - bound_since_);
  return integral / now_s;
}

void StalenessController::set_bound(double now_s, int next) {
  bound_integral_ += static_cast<double>(bound_) * (now_s - bound_since_);
  bound_since_ = now_s;
  bound_ = std::clamp(next, cfg_.s_min, cfg_.s_max);
}

}  // namespace p3::ps
