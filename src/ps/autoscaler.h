// SLO-driven autoscaler policy.
//
// The Autoscaler closes the loop from observability back into membership:
// evaluated on the cluster's suspicion cadence, it reads the
// `obs::Registry` iteration-time histogram and send/receive queue-depth
// gauges, compares the windowed p99 iteration time against a configurable
// latency SLO, and answers with one of four actions — hold, admit a standby
// node, drain a surplus node, or (over capacity with nothing left to admit)
// shed low-priority pushes. Hysteresis and a cooldown make flapping
// impossible by construction: a non-hold action requires `hysteresis_ticks`
// consecutive ticks of the same pressure signal, and two actions are always
// separated by at least `cooldown` seconds.
//
// The policy is pure with respect to the simulation: it reads metrics and
// sim time, keeps only its own windows and streaks, and never touches
// cluster state — ps::Cluster executes whatever action it returns. That
// keeps it unit-testable against a synthetic registry and keeps autoscaled
// runs bit-identical across runner thread counts.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/registry.h"

namespace p3::ps {

struct AutoscalerConfig {
  bool enabled = false;
  /// Dark standby pool beyond base nodes + planned joins; scale-up admits
  /// them in id order.
  int standby_nodes = 0;
  /// The latency SLO: windowed p99 worker iteration time must stay within
  /// this bound. Must be positive when `enabled`.
  TimeS slo_p99_iteration = 0.0;
  /// Scale up when p99 exceeds this fraction of the SLO — the reaction
  /// lands before the SLO actually breaks under a gradual ramp.
  double upscale_fraction = 0.8;
  /// Scale down when p99 falls below this fraction of the SLO.
  double downscale_fraction = 0.45;
  /// Consecutive pressure ticks required before acting.
  int hysteresis_ticks = 3;
  /// Minimum spacing between two scale decisions (also bounds one shed
  /// window's duration).
  TimeS cooldown = 0.5;
  /// p99 window: bucket-count deltas over the last this-many ticks.
  int window_ticks = 8;
  /// Queue-depth overload threshold; 0 disables the queue signal.
  double queue_depth_high = 0.0;
  /// Over capacity with no standby left: degrade gracefully by shedding
  /// lowest-priority pushes instead of collapsing.
  bool shed_on_exhausted = true;
  /// No iteration completes for this long => stalled (an overload signal
  /// and an SLO violation). 0 derives 4x the SLO.
  TimeS stall_after = 0.0;
  /// Registry instrument names the policy reads.
  std::string iteration_histogram = "worker.iteration_time_s";
  std::vector<std::string> queue_gauges;
};

enum class ScaleAction { kHold, kUp, kDown, kShed };

/// Deterministic weighted share: choose which of `candidates` (group ids,
/// weighted by `weights[candidate]`) a new server should take, aiming for a
/// 1/`shares` fraction of the total candidate weight. Greedy by descending
/// weight (ties: ascending id), takes at least one group and never strips
/// the donor set bare (at most candidates.size() - 1). Shared by the
/// cluster's weight-aware rebalance planner and its unit tests.
std::vector<int> weighted_share(const std::vector<double>& weights,
                                const std::vector<int>& candidates,
                                int shares);

class Autoscaler {
 public:
  Autoscaler(AutoscalerConfig cfg, const obs::Registry* registry);

  /// Evaluate one control tick at sim time `now`. `can_scale_up` /
  /// `can_scale_down` tell the policy whether a standby is available to
  /// admit / a surplus node is available to drain.
  ScaleAction tick(TimeS now, bool can_scale_up, bool can_scale_down);

  /// Windowed p99 iteration time as of the last tick (0 before any
  /// observation; 2x the top histogram bound when the window's p99 lands
  /// in the overflow bucket).
  double last_p99() const { return last_p99_; }
  /// Ticks on which the SLO was violated (p99 above bound, or stalled).
  std::int64_t slo_violation_ticks() const { return slo_violation_ticks_; }
  /// Time of the last non-hold action (< 0 before the first).
  TimeS last_decision() const { return last_decision_; }
  bool stalled() const { return stalled_; }

  const AutoscalerConfig& config() const { return cfg_; }

 private:
  double windowed_p99();
  double max_queue_depth() const;

  AutoscalerConfig cfg_;
  const obs::Registry* registry_;
  std::vector<std::int64_t> prev_counts_;
  std::deque<std::vector<std::int64_t>> window_;
  std::int64_t prev_total_ = 0;
  TimeS last_progress_ = 0.0;
  bool seen_tick_ = false;
  bool stalled_ = false;
  int over_streak_ = 0;
  int under_streak_ = 0;
  TimeS last_decision_ = -1.0e18;
  double last_p99_ = 0.0;
  std::int64_t slo_violation_ticks_ = 0;
};

}  // namespace p3::ps
