// Data-parallel training cluster with a parameter-server synchronization
// protocol — the substrate the paper modifies (MXNet KVStore / ps-lite) and
// the P3 mechanism built on it.
//
// Each of the `n` machines runs a worker process and a colocated server
// process (the common practice the paper describes). Per iteration a worker:
//
//   forward:  for each layer L in order: wait until L's parameters from the
//             previous round have arrived, then compute fwd(L);
//   backward: for each layer L in reverse: compute bwd(L), then enqueue L's
//             gradient slices into the worker's send queue.
//
// A consumer process drains the send queue one message at a time with
// blocking sends (the paper's producer/consumer design): with priority
// enabled the most urgent slice is always sent next, preempting queued
// lower-priority traffic at slice/fragment granularity.
//
// Servers aggregate pushes per slice; when gradients from all workers have
// arrived they apply the update and either broadcast the new parameters
// immediately (P3) or notify workers, which then issue pull requests
// (baseline KVStore). TensorFlow-style deferred pulls issue all pull
// requests at the start of the next iteration instead.
//
// Crash recovery (docs/PROTOCOL.md): when a fault plan schedules node
// crashes — or `replication > 1` / `force_membership` is set — the cluster
// additionally runs a membership plane: every node gossips heartbeat beacons
// and keeps an independent liveness view (`ps::Membership`); each server
// shard is replicated on `replication` consecutive servers with
// primary-backup propagation and a commit barrier (parameters are released
// to workers only after every live backup acknowledged the replicated
// state); on primary death the first live replica in chain order takes over
// with a bumped epoch and workers deterministically re-push un-acknowledged
// rounds; servers periodically checkpoint shard+optimizer state and restart
// by rehydrating checkpoint + delta-sync from the current leader; crashed
// workers rejoin under a bounded-staleness window. All of it is driven by
// the simulated clock and the seeded RNGs, so crash runs are bit-identical
// across runner thread counts, and a run without crashes posts the exact
// pre-membership event sequence.
//
// Elastic scale-out (docs/PROTOCOL.md): `net::NodeJoin` events admit brand
// new colocated worker+server nodes mid-run; a deterministic rebalance
// planner hands shard groups to the joiner, the donor migrates shard state
// behind a commit barrier (no round releases against a half-migrated
// shard), the replication chain re-forms around the joiner, and the
// joiner's worker enters aggregation under the `rejoin_slack` rule. Setting
// `FaultPlan::lease_duration` switches failover from the per-observer
// silence threshold to time-bounded leases: a successor may act on a
// suspected-dead primary only after its lease expired, a primary fences
// itself (stops releasing rounds) when it cannot renew, and a minority-
// partitioned observer can never elect itself — eliminating the transient
// dual-primary window (tracked by `membership.dual_primary_windows`).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/slicing.h"
#include "core/sync_method.h"
#include "model/compute.h"
#include "net/faults.h"
#include "net/network.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "ps/autoscaler.h"
#include "ps/membership.h"
#include "ps/staleness.h"
#include "sim/queue.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "trace/timeline.h"

namespace p3::ps {

struct ClusterConfig {
  int n_workers = 4;  ///< one server per worker
  /// false: servers colocated with workers (the paper's common practice);
  /// true: servers run on dedicated machines (nodes n..2n-1), so all PS
  /// traffic crosses the network. Used by the schedule figures and as a
  /// deployment ablation.
  bool dedicated_servers = false;
  core::SyncMethod method = core::SyncMethod::kBaseline;

  // Network (Section 5.3 sweeps `bandwidth` like `tc qdisc`).
  BitsPerSec bandwidth = gbps(10);
  /// Ingress rate; 0 = symmetric (AWS-style NIC limit). The paper's
  /// bandwidth sweep shapes egress only with `tc tbf`, leaving ingress at
  /// the 100 Gbps InfiniBand line rate — set this to that line rate for
  /// Figure 7-style experiments.
  BitsPerSec rx_bandwidth = 0;
  TimeS latency = us(25);
  /// Rack-scale shape handed to the network (docs/PROTOCOL.md). Inactive
  /// (flat) by default; activating it routes every remote message through
  /// the ToR/spine tiers, where P3's slice priority contends at the shared
  /// uplink ports. Must cover every node when active. Elastic joins are
  /// rejected under an active topology (racks are fixed at construction).
  net::Topology topology;
  /// Rack-local pre-reduction: workers push gradient slices to their rack's
  /// aggregator node, which folds them (free, SHArP-style in-network
  /// reduction at the ToR tier) and forwards one combined push per rack to
  /// the shard leader; updated parameters come back as one copy per rack,
  /// re-broadcast by the aggregator. Requires an active topology and
  /// colocated servers. Recovery traffic (re-pushes after failover or an
  /// aggregator death) always takes the direct worker->server path.
  bool rack_aggregation = false;

  // Partitioning.
  std::int64_t slice_params = 50'000;        ///< P3 slice size (Section 5.7)
  std::int64_t kvstore_threshold = 1'000'000; ///< KVStore sharding heuristic
  /// Maximum wire message size. ps-lite ships each shard as one monolithic
  /// message, so the default is effectively "no fragmentation"; lower it to
  /// study transport-level chunking as an ablation.
  Bytes fragment_bytes = gib(1);

  // Server-side aggregation + SGD cost model (effective single-thread
  // ps-lite throughput including (de)serialization; see EXPERIMENTS.md).
  double update_bytes_per_sec = 1.5e9;
  TimeS update_overhead = us(30);
  /// Worker-side per-message CPU cost (serialization + engine dispatch +
  /// syscall). This is what makes very small slices expensive (Section
  /// 5.7's left-hand falloff).
  TimeS send_overhead = us(10);

  /// Wire compression factor for gradient/parameter payloads (DGC-style
  /// sparsification: e.g. 50 = payloads shrink 50x on the wire while the
  /// server still touches the full arrays). 1 = no compression. The paper
  /// argues P3 composes with compression (Section 6); see ext_compression.
  double wire_compression = 1.0;

  // Per-iteration compute time multiplier stddev (variable sequence length
  // in NMT workloads; 0 = deterministic compute).
  double compute_jitter = 0.0;

  // --- fault injection + reliable delivery (docs/PROTOCOL.md) ---
  /// Wire faults to inject; an empty (inactive) plan keeps the network
  /// perfectly reliable and the reliability layer disarmed, so fault-free
  /// runs are byte-identical to a build without this subsystem.
  net::FaultPlan faults;
  /// Arm the ack/timeout/retransmit layer even without faults (used by
  /// tests to exercise dedup under spurious retransmissions).
  bool reliable_transport = false;
  /// Floor of the per-message retransmission timeout. The initial RTO also
  /// scales with the message's serialization time and the cluster's incast
  /// depth, and backs off by `rto_backoff` on every expiry.
  TimeS min_rto = ms(50);
  double rto_backoff = 2.0;
  /// Ceiling of the backed-off RTO: a long outage (node down for seconds
  /// awaiting restart) keeps probing at this bounded rate instead of
  /// doubling into minutes. Defaults high enough that loss-only fault runs
  /// never touch it.
  TimeS max_rto = 10.0;
  /// > 0: add `uniform(0, rto_jitter * rto)` of seeded jitter to every
  /// armed retransmission timer — decorrelates synchronized retry storms
  /// after a blackout. The jitter RNG is consumed only when enabled.
  double rto_jitter = 0.0;
  /// > 0: use exactly this initial RTO for every message instead of the
  /// adaptive formula. Deliberately tiny values force spurious
  /// retransmissions, which tests use to prove dedup idempotency.
  TimeS fixed_rto = 0.0;

  // --- crash recovery / elastic membership (docs/PROTOCOL.md) ---
  /// Replicate each server shard on this many consecutive servers (chain
  /// order on the server ring). 1 = no replication; a crash of the shard's
  /// only server is then unrecoverable unless it restarts.
  int replication = 1;
  /// Liveness beacon interval per node (membership plane only).
  TimeS heartbeat_period = ms(10);
  /// Silence threshold before a peer is suspected dead. Must exceed several
  /// heartbeat periods or wire loss alone triggers false failovers.
  TimeS suspicion_timeout = ms(60);
  /// > 0: every server snapshots the shard+optimizer state it replicates to
  /// simulated stable storage at this interval; a restarted server
  /// rehydrates from its last completed checkpoint plus a delta from the
  /// current group leader.
  TimeS checkpoint_period = 0.0;
  /// Simulated stable-storage write/read rate for checkpoints.
  double checkpoint_bytes_per_sec = 4e9;
  /// Bounded-staleness window for rejoining workers: a rejoined worker is
  /// not *expected* (waited for) by the aggregation rounds until
  /// `current version + rejoin_slack`, though earlier contributions still
  /// merge when they arrive.
  std::int64_t rejoin_slack = 1;
  /// Arm the membership plane even without crashes or replication (tests).
  bool force_membership = false;
  /// Watchdog: abort a membership run that exceeds this much simulated time
  /// (stuck recovery would otherwise heartbeat forever). 0 = 3600 s when
  /// the membership plane is armed; ignored otherwise.
  TimeS max_sim_time = 0.0;

  // --- SLO-driven autoscaling + voluntary drain (docs/PROTOCOL.md) ---
  /// Enabling it arms the membership plane, a dark standby pool, and the
  /// control loop in src/ps/autoscaler.{h,cc}: evaluated on the suspicion
  /// cadence, it admits standbys / drains surplus nodes to hold
  /// `slo_p99_iteration`, shedding low-priority pushes when over capacity
  /// with nothing left to admit. Scheduled `FaultPlan::leaves` run the same
  /// drain path without the policy.
  AutoscalerConfig autoscaler;

  // --- DSSP dynamic bounded staleness (docs/PROTOCOL.md) ---
  /// Gate parameters for `method == kDSSP`: a worker entering iteration `c`
  /// blocks until `min_live_clock >= c - s`, with `s` adapted online within
  /// `[s_min, s_max]` by ps::StalenessController (or pinned via `fixed_s`
  /// for static-s ablations). Ignored by every other sync method. DSSP arms
  /// the membership plane: the gate's liveness contract excludes dead /
  /// retired / minority-fenced workers from the min-clock through the
  /// membership, lease and quorum machinery.
  StalenessConfig staleness;

  std::uint64_t seed = 42;

  /// Override for the compute profile (used by the schedule figures to pin
  /// exact per-layer times); empty = derive from the workload.
  std::vector<TimeS> fwd_times;
  std::vector<TimeS> bwd_times;
};

struct RunResult {
  double throughput = 0.0;        ///< samples/s across the whole cluster
  TimeS mean_iteration_time = 0;  ///< steady-state per-iteration latency
  /// Mean time per iteration a worker's forward pass spent blocked waiting
  /// for parameters — the communication delay P3 attacks (averaged over
  /// workers and measured iterations).
  TimeS mean_stall_time = 0;
  TimeS total_time = 0;           ///< simulated time at measurement end
  int iterations_measured = 0;
  std::vector<TimeS> iteration_times;  ///< worker 0, measured window

  // Degradation observability (all zero on a fault-free run).
  std::int64_t messages_dropped = 0;      ///< lost to injected faults
  std::int64_t retransmits = 0;           ///< copies re-posted after timeout
  std::int64_t timeouts_fired = 0;        ///< retransmission timer expiries
  std::int64_t duplicates_suppressed = 0; ///< deliveries deduped by msg id
  /// Unique protocol bytes accepted by receivers (dedup survivors).
  Bytes goodput_bytes = 0;
  /// Everything posted on the wire: originals + retransmits + acks.
  Bytes wire_bytes = 0;

  // Recovery observability (all zero without a membership plane).
  std::int64_t crashes = 0;            ///< node crash events executed
  std::int64_t restarts = 0;           ///< node restart events executed
  std::int64_t failovers = 0;          ///< shard leadership takeovers
  std::int64_t worker_rejoins = 0;     ///< completed worker rejoin handshakes
  std::int64_t checkpoints_written = 0;
  Bytes checkpoint_bytes = 0;          ///< total bytes written to "disk"
  std::int64_t rehydrations = 0;       ///< completed server rehydrations
  Bytes rehydration_bytes = 0;         ///< delta-sync payload bytes pulled
  TimeS mean_rehydration_time = 0;     ///< restart -> serving again
  TimeS max_rejoin_lag = 0;            ///< worst restart -> rejoined delay
  std::int64_t heartbeats_sent = 0;
  std::int64_t stale_pushes = 0;       ///< re-pushes answered with params

  // Elastic scale-out + lease observability (all zero without joins/leases).
  std::int64_t joins = 0;              ///< node admissions executed
  std::int64_t migrations = 0;         ///< shard groups handed to joiners
  Bytes migrated_bytes = 0;            ///< shard-state payload migrated
  std::int64_t lease_renewals = 0;     ///< beacon-driven lease extensions
  std::int64_t lease_expiries = 0;     ///< primary self-fences (lease lost)
  /// Times a server started acting as primary of a group while another
  /// server was still acting on the same group. > 0 is the split-view
  /// window suspicion-timeout failover allows; must be 0 under leases.
  std::int64_t dual_primary_windows = 0;
  std::int64_t supersessions = 0;      ///< immediate incarnation handovers

  // Partition tolerance observability (all zero without partitions).
  std::int64_t partition_drops = 0;    ///< messages severed by an active cut
  /// Ground-truth audit: deliveries that landed while a cut severed their
  /// link. The fabric drops severed traffic, so this must stay 0.
  std::int64_t cross_partition_deliveries = 0;
  /// Pushes a worker parked instead of sending because its view holds the
  /// destination dead (drained back into the send queue on revival).
  std::int64_t parked_pushes = 0;
  /// Expired-lease failovers an observer wanted to fire but could not: its
  /// view lacked a quorum of joined members (minority-side denial).
  std::int64_t quorum_denied_failovers = 0;

  // Rack-scale hierarchy observability (all zero on a flat topology).
  /// Switch-port services that let a later high-priority transfer pass a
  /// queued lower-priority one (the P3 overtake at the ToR uplink).
  std::int64_t uplink_overtakes = 0;
  /// Services started while a strictly-higher-priority transfer waited —
  /// zero under priority ports, meaningful under the FIFO-port ablation.
  std::int64_t uplink_priority_inversions = 0;
  Bytes tor_uplink_bytes = 0;          ///< bytes that crossed any ToR uplink
  std::int64_t agg_combined_pushes = 0;   ///< rack pre-reductions forwarded
  std::int64_t agg_param_broadcasts = 0;  ///< params re-broadcast by aggs
  /// Pushes that bypassed the aggregator (recovery re-pushes, or the
  /// aggregator was dead/unreachable in the sender's view).
  std::int64_t agg_fallback_pushes = 0;

  // Autoscaler / voluntary-drain observability (all zero without the scale
  // plane).
  std::int64_t drains_started = 0;     ///< nodes that entered draining mode
  std::int64_t drains_completed = 0;   ///< nodes that retired cleanly
  std::int64_t scale_decisions = 0;    ///< autoscaler admissions + drains
  std::int64_t sheds = 0;              ///< pushes parked by overload shedding
  std::int64_t slo_violation_ticks = 0; ///< control ticks with p99 > SLO
  /// Sim times of the autoscaler's scale decisions, for flap auditing
  /// (consecutive entries must be >= cooldown apart).
  std::vector<TimeS> scale_decision_times;

  // DSSP staleness-gate observability (all zero unless method == kDSSP).
  std::int64_t dssp_gate_blocks = 0;   ///< gate passages that actually waited
  /// Ground-truth audits (PROTOCOL.md inv. 13); both must stay 0.
  std::int64_t staleness_violations = 0; ///< releases past the true min-clock
  std::int64_t gate_wedge_ticks = 0;     ///< audit ticks with no eligible
                                         ///< worker able to proceed
  std::int64_t staleness_raises = 0;   ///< controller bound increments
  std::int64_t staleness_decays = 0;   ///< controller bound decrements
  int final_staleness_bound = 0;       ///< bound when the run ended
  /// Time-weighted mean of the active bound — the staleness cost actually
  /// incurred (ext_dssp's scoring denominator).
  double mean_staleness_bound = 0.0;
  TimeS mean_gate_wait = 0;            ///< mean wait per gate passage

  // Critical-path blame attribution (zero unless a tracer was attached; see
  // obs::analyze_critical_path). Shares are fractions of the summed measured
  // iteration windows.
  std::int64_t blame_iterations = 0;   ///< iterations the walk attributed
  std::int64_t blame_chain_stalls = 0; ///< unresolved causal links
  double blame_total_s = 0.0;          ///< summed iteration windows
  double blame_forward_share = 0.0;
  double blame_backward_share = 0.0;
  double blame_sendq_share = 0.0;
  double blame_inversion_share = 0.0;
  double blame_wire_share = 0.0;
  double blame_uplink_share = 0.0;
  double blame_downlink_share = 0.0;
  double blame_server_share = 0.0;
  double blame_agghold_share = 0.0;
  double blame_recovery_share = 0.0;
  double blame_sspwait_share = 0.0;
  double blame_other_share = 0.0;
  /// sendq + inversion + wire + uplink + downlink: the share P3 collapses.
  double blame_network_share = 0.0;
};

class Cluster {
 public:
  Cluster(model::Workload workload, ClusterConfig config);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Run `warmup + measured` iterations on every worker and report
  /// throughput over the measured window. Single use.
  RunResult run(int warmup_iterations, int measured_iterations);

  /// After run(): process all in-flight traffic until the simulation is
  /// fully quiescent (used by conservation tests).
  void drain();

  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return *net_; }
  const core::Partition& partition() const { return partition_; }
  const model::ComputeProfile& profile() const { return profile_; }
  const core::SyncConfig& sync_config() const { return sync_; }

  void attach_monitor(net::UtilizationMonitor* monitor) {
    net_->attach_monitor(monitor);
  }
  /// Record onto `tracer`: NIC spans and flow arrows (via the network),
  /// worker compute and server update lanes, queue-depth counter tracks,
  /// slice-lifecycle records, and P3_LOG lines as instant events while
  /// run() executes. Pass nullptr to detach.
  void attach_tracer(obs::Tracer* tracer);
  /// Legacy observer spelling: records onto the timeline's backing tracer.
  void attach_timeline(trace::Timeline* timeline);

  /// Metrics registry backing every counter below, plus queue-depth gauges
  /// ("w<i>.sendq_depth", "n<i>.rxq_depth") and per-iteration time/stall
  /// histograms. Snapshot with metrics().write_csv()/write_json().
  const obs::Registry& metrics() const { return registry_; }

  // --- introspection for tests and invariant checks ---
  std::int64_t slice_version(std::int64_t slice) const;
  std::int64_t worker_layer_version(int worker, int layer) const;
  std::int64_t pushes_sent() const { return pushes_sent_.value(); }
  std::int64_t params_sent() const { return params_sent_.value(); }
  std::int64_t notifies_sent() const { return notifies_sent_.value(); }
  std::int64_t pulls_sent() const { return pulls_sent_.value(); }
  std::int64_t rounds_completed() const { return rounds_completed_.value(); }
  // Reliability-layer counters (all zero while the layer is disarmed).
  bool reliable_transport_armed() const { return reliable_; }
  std::int64_t acks_sent() const { return acks_sent_.value(); }
  std::int64_t retransmits() const { return retransmits_.value(); }
  std::int64_t timeouts_fired() const { return timeouts_fired_.value(); }
  std::int64_t duplicates_suppressed() const {
    return duplicates_suppressed_.value();
  }
  std::int64_t reliable_in_flight() const {
    return static_cast<std::int64_t>(pending_tx_.size());
  }
  /// Dedup entries currently held for `node` (bounded by watermark GC).
  std::int64_t dedup_entries(int node) const {
    return static_cast<std::int64_t>(
        seen_[static_cast<std::size_t>(node)].size());
  }
  /// Msg-id watermark below which `node` suppresses without a table lookup.
  std::int64_t dedup_floor(int node) const {
    return dedup_floor_[static_cast<std::size_t>(node)];
  }
  Bytes goodput_bytes() const { return goodput_bytes_.value(); }
  // Membership-plane introspection (null/zero while disarmed).
  bool membership_armed() const { return membership_on_; }
  bool node_up(int node) const {
    return node_state_[static_cast<std::size_t>(node)].up;
  }
  std::int64_t crashes_executed() const { return crashes_.value(); }
  std::int64_t restarts_executed() const { return restarts_.value(); }
  std::int64_t failovers() const { return failovers_.value(); }
  std::int64_t worker_rejoins() const { return worker_rejoins_.value(); }
  std::int64_t rehydrations() const { return rehydrations_.value(); }
  std::int64_t checkpoints_written() const {
    return checkpoints_written_.value();
  }
  std::int64_t heartbeats_sent() const { return heartbeats_sent_.value(); }
  // Elastic scale-out + lease introspection (zero while disarmed).
  bool leases_armed() const { return leases_on_; }
  std::int64_t joins_executed() const { return joins_.value(); }
  std::int64_t migrations() const { return migrations_.value(); }
  std::int64_t lease_renewals() const { return lease_renewals_.value(); }
  std::int64_t lease_expiries() const { return lease_expiries_.value(); }
  std::int64_t dual_primary_windows() const {
    return dual_primary_windows_.value();
  }
  std::int64_t supersessions() const { return supersessions_.value(); }
  // Partition-plane introspection (zero/false while disarmed).
  bool partition_plane_armed() const { return partition_plane_; }
  bool clock_drift_armed() const { return drift_on_; }
  std::int64_t parked_pushes() const { return parked_pushes_.value(); }
  std::int64_t quorum_denied_failovers() const {
    return quorum_denied_failovers_.value();
  }
  // Rack-hierarchy introspection (zero/false on a flat topology).
  bool hierarchy_armed() const { return hierarchy_on_; }
  bool rack_aggregation_armed() const { return agg_on_; }
  std::int64_t agg_combined_pushes() const {
    return agg_combined_pushes_ != nullptr ? agg_combined_pushes_->value() : 0;
  }
  std::int64_t agg_param_broadcasts() const {
    return agg_param_broadcasts_ != nullptr ? agg_param_broadcasts_->value()
                                            : 0;
  }
  std::int64_t agg_fallback_pushes() const {
    return agg_fallback_pushes_ != nullptr ? agg_fallback_pushes_->value() : 0;
  }
  // Autoscaler / drain introspection (zero/false while disarmed).
  bool scale_plane_armed() const { return scale_plane_; }
  bool node_draining(int node) const {
    return node_state_[static_cast<std::size_t>(node)].draining;
  }
  bool node_retired(int node) const {
    return node_state_[static_cast<std::size_t>(node)].retired;
  }
  std::int64_t drains_started() const {
    return drains_started_ != nullptr ? drains_started_->value() : 0;
  }
  std::int64_t drains_completed() const {
    return drains_completed_ != nullptr ? drains_completed_->value() : 0;
  }
  std::int64_t scale_decisions() const {
    return scale_decisions_ != nullptr ? scale_decisions_->value() : 0;
  }
  std::int64_t sheds() const {
    return sheds_ != nullptr ? sheds_->value() : 0;
  }
  std::int64_t slo_violation_ticks() const {
    return slo_violation_ticks_ != nullptr ? slo_violation_ticks_->value()
                                           : 0;
  }
  const std::vector<TimeS>& scale_decision_times() const {
    return scale_decision_times_;
  }
  // DSSP staleness-gate introspection (zero/false unless method == kDSSP).
  bool dssp_armed() const { return dssp_on_; }
  std::int64_t staleness_violations() const {
    return staleness_violations_ != nullptr ? staleness_violations_->value()
                                            : 0;
  }
  std::int64_t gate_wedge_ticks() const {
    return gate_wedge_ticks_ != nullptr ? gate_wedge_ticks_->value() : 0;
  }
  std::int64_t dssp_gate_blocks() const {
    return dssp_gate_blocks_ != nullptr ? dssp_gate_blocks_->value() : 0;
  }
  /// Current adaptive bound (s_min when DSSP is disarmed).
  int staleness_bound() const {
    return staleness_ != nullptr ? staleness_->bound() : 0;
  }
  /// Worker `w`'s DSSP iteration clock (-1 = not running).
  std::int64_t dssp_clock(int w) const {
    return dssp_clock_[static_cast<std::size_t>(w)];
  }
  /// True while `server` has stepped down from `group` because it could not
  /// renew its own lease (leases must be armed).
  bool lease_fenced(int server, int group) const {
    return fenced_[static_cast<std::size_t>(server_node(server))].count(
               group) > 0;
  }
  /// Local liveness view of `node` (membership plane must be armed).
  const Membership& membership_view(int node) const {
    return *membership_[static_cast<std::size_t>(node)];
  }
  const ShardLeadership& leadership_view(int node) const {
    return *leadership_[static_cast<std::size_t>(node)];
  }

 private:
  struct SendItem {
    std::int64_t slice = -1;
    net::MsgKind kind = net::MsgKind::kPushGradient;
    std::int64_t iteration = -1;
    Bytes payload = 0;  ///< fragment payload bytes (0 for control messages)
    int priority = 0;
    std::int64_t seq = 0;
    /// >= 0: retransmission of this pending msg id (competes in the priority
    /// queue at the original slice priority, so preemption holds under loss).
    std::int64_t retx_id = -1;
    /// >= 0: this is an aggregator's combined push carrying that cover id;
    /// it is sent straight to the shard leader, never re-aggregated.
    std::int64_t agg_id = -1;
    /// Recovery re-pushes bypass the rack aggregator: the re-push exists
    /// because state died somewhere, and waiting for rack peers that will
    /// never re-push the same round would wedge the fold.
    bool direct = false;
    /// Sim time this item entered a parking lot (partition park or shed);
    /// 0 = never parked. Feeds the traced "w{w}.hold" recovery spans.
    TimeS parked_at = 0.0;
  };
  struct SendOrder {
    bool operator()(const SendItem& a, const SendItem& b) const {
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };
  struct RxItem {
    net::Message msg;
    int priority = 0;
    std::int64_t seq = 0;
  };
  struct RxOrder {
    bool operator()(const RxItem& a, const RxItem& b) const {
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  struct WorkerState {
    explicit WorkerState(sim::Simulator& sim) : sendq(sim) {}
    std::vector<std::unique_ptr<sim::VersionGate>> gates;  // per layer
    std::vector<Bytes> param_bytes;  // received payload this round, per layer
    std::vector<int> notify_count;   // notifications this round, per layer
    sim::PriorityQueue<SendItem, SendOrder> sendq;
    std::int64_t send_seq = 0;
    std::int64_t sendq_depth = 0;        ///< fragments queued right now
    obs::Gauge* sendq_gauge = nullptr;   ///< registry view of sendq_depth
    std::vector<TimeS> iter_done;
    std::vector<TimeS> iter_stall;  ///< forward blocking time per iteration
    Rng rng{0};
    // Versioned parameter receipt, per slice. `recv_version[s]` is the
    // newest complete parameter version held for slice s (0 = initial
    // weights, -1 = crashed process holding nothing); `recv_bytes` /
    // `recv_inflight` accumulate the fragments of one in-flight version.
    std::vector<std::int64_t> recv_version;
    std::vector<Bytes> recv_bytes;
    std::vector<std::int64_t> recv_inflight;
    /// Last iteration pushed per slice (-1 = none). Drives deterministic
    /// re-push after a leadership change: any slice whose resulting params
    /// were not yet received is re-sent to the new primary.
    std::vector<std::int64_t> last_push_iter;
    /// Membership-mode notify bookkeeping (sized only when the plane is
    /// armed). `notify_version[s]` is the newest round slice s was notified
    /// complete for; `pulled_round[l]` is the last round layer l's pulls
    /// were issued for. Versioned evidence replaces the raw notify counter
    /// so a notify that died with a crashed server cannot wedge the layer:
    /// parameters received through a recovery path count as evidence too.
    std::vector<std::int64_t> notify_version;
    std::vector<std::int64_t> pulled_round;
    bool finished = false;  ///< reached the iteration target (counted once)
  };

  struct PendingPull {
    int worker = -1;
    std::int64_t iteration = -1;
  };

  /// Sender-side state of one unacknowledged reliable message.
  struct PendingTx {
    net::Message msg;     ///< full copy, re-posted verbatim on timeout
    TimeS rto = 0.0;      ///< delay of the *next* timer to be armed
    int via_worker = -1;  ///< >= 0: retransmit through this worker's sendq
    bool queued = false;  ///< a retransmit item is sitting in the sendq
  };

  struct ServerState {
    explicit ServerState(sim::Simulator& sim) : rxq(sim) {}
    sim::PriorityQueue<RxItem, RxOrder> rxq;
    std::int64_t rx_seq = 0;
    std::int64_t rxq_depth = 0;          ///< items queued right now
    obs::Gauge* rxq_gauge = nullptr;     ///< registry view of rxq_depth
    std::vector<Bytes> round_bytes;            // per slice
    std::vector<std::int64_t> version;         // per slice
    std::vector<std::vector<PendingPull>> pending;  // per slice
    // Membership plane only:
    /// Per-slice per-worker bytes contributed to the current round —
    /// replaces the single `round_bytes` counter so completion can be
    /// re-evaluated against the live expected set and re-pushes merge
    /// exactly once (capped at the slice payload per worker per round).
    std::vector<std::vector<Bytes>> contrib;
    /// Per-slice per-worker round index from which the worker is *expected*
    /// (waited for); earlier rounds complete without it.
    std::vector<std::vector<std::int64_t>> active_from;
    /// Node epoch at the last kSyncData receipt per slice (rehydration
    /// completion tracking; -1 = never).
    std::vector<std::int64_t> sync_epoch;
  };

  /// Truth-side (simulator) node lifecycle; views may lag this.
  struct NodeState {
    bool up = true;
    /// Bumps on every crash *and* restart; loops capture it at spawn and
    /// abandon work when it moves. Doubles as the beacon incarnation.
    std::int64_t epoch = 0;
    TimeS down_since = -1.0;
    /// false until this elastic joiner's NodeJoin event executes; base
    /// members are joined from the start.
    bool joined = true;
    /// Voluntary drain in progress: the hosted server refuses new
    /// leadership and is migrating its groups out. A crash clears it (the
    /// drain intent dies with the process).
    bool draining = false;
    /// Drained to completion and permanently gone. A retired node never
    /// reappears as a contributor or leaseholder (PROTOCOL.md inv. 12).
    bool retired = false;
    TimeS drain_since = -1.0;  ///< drain start (tracer span)
  };

  /// One in-flight shard-group migration (donor side).
  struct MigrationState {
    int donor = -1;   ///< server currently leading the group
    int group = -1;
    int target = -1;  ///< joiner server receiving the group
    int outstanding = 0;  ///< unacked kMigrate slice transfers
    TimeS t0 = 0.0;       ///< migration start (tracer span)
  };

  /// Ground-truth acting-as-primary interval of one server for one group;
  /// overlapping open intervals across servers are dual-primary windows.
  struct Acting {
    bool open = false;
    TimeS since = 0.0;
  };

  /// Commit barrier for one replicated round: the parameter release to
  /// workers is withheld until every live backup acked its kReplicate.
  struct CommitState {
    int server = -1;
    std::int64_t slice = -1;
    std::int64_t round = -1;  ///< iteration index the round aggregated
    int outstanding = 0;      ///< unacked kReplicate copies
  };

  sim::Task worker_loop(int w, std::int64_t start_iter);
  sim::Task worker_sender(int w);
  sim::Task node_demux(int n);
  sim::Task server_loop(int n);
  sim::Task heartbeat_loop(int n);
  sim::Task checkpoint_loop(int s);
  sim::Task worker_rejoin(int w, std::int64_t epoch);
  sim::Task server_rehydrate(int s, std::int64_t epoch);
  /// Joining server's admission loop: broadcast kServerJoin (rebalance ask)
  /// every suspicion_timeout until its planned groups are owned.
  sim::Task server_admit(int node, std::int64_t epoch);
  /// DSSP ground-truth wedge audit on the suspicion cadence: re-derive the
  /// gate floor from scratch and count a tick whenever gate-blocked workers
  /// exist but no eligible worker can proceed (PROTOCOL.md inv. 13).
  sim::Task dssp_audit_loop();

  /// Node hosting server `s` (== s when colocated, n_workers + s otherwise).
  int server_node(int server) const {
    return cfg_.dedicated_servers ? cfg_.n_workers + server : server;
  }
  int total_nodes() const {
    return cfg_.dedicated_servers ? 2 * cfg_.n_workers : n_total_workers();
  }
  /// Server hosted on node `n`, or -1 if `n` is worker-only.
  int server_of_node(int n) const {
    if (!cfg_.dedicated_servers) return n;
    return n >= cfg_.n_workers ? n - cfg_.n_workers : -1;
  }
  int n_servers() const { return cfg_.n_workers; }
  /// Worker/server counts including elastic joiners (colocated only; joins
  /// are rejected for dedicated-server deployments). n_servers() keeps
  /// meaning the number of shard *groups* (the base ring).
  int n_total_workers() const {
    return cfg_.n_workers + static_cast<int>(cfg_.faults.joins.size()) +
           (cfg_.autoscaler.enabled ? cfg_.autoscaler.standby_nodes : 0);
  }
  int n_total_servers() const {
    return cfg_.dedicated_servers ? cfg_.n_workers : n_total_workers();
  }

  void enqueue_push(int w, std::int64_t slice, std::int64_t iteration,
                    bool direct = false);
  void enqueue_pull(int w, std::int64_t slice, std::int64_t iteration);
  void worker_on_notify(int w, const net::Message& m);
  void worker_on_param(int w, const net::Message& m);
  void send_params(int server, std::int64_t slice, int worker);
  Bytes wire_payload(Bytes logical) const;
  int item_priority(std::int64_t slice) const;
  double jitter_factor(WorkerState& ws);

  // --- reliable delivery (ack / timeout / retransmit / dedup) ---
  /// Register `m` for acknowledged delivery: assigns its msg id and records
  /// the sender-side retransmission state. `via_worker` >= 0 routes
  /// retransmissions through that worker's priority send queue.
  void arm_reliable(net::Message& m, int via_worker);
  /// Post `m` directly, arming the reliability layer when it applies
  /// (server->worker params/notify and worker pull requests).
  void post_tracked(net::Message m);
  TimeS initial_rto(const net::Message& m) const;
  void schedule_retx_timer(std::int64_t msg_id, TimeS delay);
  void on_retx_timeout(std::int64_t msg_id);
  /// Demux-side reliability front-end: acks `m` and deduplicates. Returns
  /// false when `m` is a duplicate that must not reach the protocol.
  bool accept_reliable(int node, const net::Message& m);
  /// Watermark GC of `node`'s dedup table: once it exceeds a size threshold,
  /// advance the floor to the smallest msg id any sender can still
  /// retransmit and drop every entry below it (below-floor arrivals are
  /// suppressed by the floor alone), so long chaos runs hold bounded state.
  void maybe_gc_dedup(int node);

  // --- membership plane ---
  /// True while a message can still usefully be addressed to `node`: it is
  /// up, or down but scheduled to restart (retransmission bridges the gap).
  bool reachable(int node) const;
  bool permanently_down(int node) const;
  void execute_crash(const net::NodeCrash& c);
  void execute_restart(const net::NodeCrash& c);
  /// Shared teardown of a process's in-memory state (queues, dedup memory,
  /// ledgers, barriers, migrations, retransmission timers). Used by crashes
  /// and by drain retirement — a retired node sheds state exactly like a
  /// crashed one, it just never comes back.
  void teardown_process_state(int node);
  void on_peer_dead(int observer_node, int dead_node);
  void takeover_group(int server, int group);
  /// Broadcast a kNewPrimary for `group` naming `primary`, sent from
  /// `from_server`'s NIC. Failover announcers name themselves; a migration
  /// donor names the handover target.
  void announce_primary(int from_server, int group, std::int64_t epoch,
                        int primary);
  /// Re-push every slice of `group` whose parameters have not returned to
  /// worker `w` yet; called after the node's leadership view moves.
  void worker_repush_group(int w, int group);
  /// Membership-mode pull trigger: issue the layer's pulls once every slice
  /// has evidence its round completed (a notify, or parameters that arrived
  /// through a recovery path). Fires at the same event as the legacy notify
  /// counter in fault-free runs.
  void maybe_pull_layer(int w, int layer);
  /// The node a worker should address for `slice` (its view's leader).
  int slice_dst_node(int worker, std::int64_t slice) const;
  bool round_complete(int server, std::int64_t slice) const;
  void commit_round(int server, std::int64_t slice, std::int64_t round);
  void release_round(int server, std::int64_t slice, std::int64_t round);
  void on_replicate_ack(std::int64_t msg_id);
  void inject_recheck(int server);
  void redirect_to_leader(int server, const net::Message& m);
  Bytes replicated_state_bytes(int server) const;
  void mem_mark(int node, const char* label);

  // --- elastic scale-out + lease-based leadership ---
  void execute_join(const net::NodeJoin& j);
  /// Lease/supersession/partition reaction to one received beacon at node
  /// `n` from `src` (called after the view recorded it). `echo_alive` is the
  /// sender's liveness belief about *this* node, carried on the beacon: with
  /// the partition plane armed, a primary's self-lease renews only on
  /// positive echoes, so one-way (asymmetric) cuts still fence it.
  void on_beacon(int n, int src, const Membership::BeaconEffect& effect,
                 bool echo_alive);
  /// Node-local clock of `n`: simulated time warped by the node's seeded
  /// drift rate and offset (identity while the drift model is disarmed).
  /// Everything the lease logic reads runs on this clock; ground truth
  /// (acting intervals, tracer, result accounting) stays on simulated time.
  TimeS local_now(int n) const;
  /// Extra wait a successor adds past an expired lease deadline before
  /// acting, derived from the configured drift bound: two clocks measuring
  /// one lease length can disagree by 2 * rate_bound * lease_len.
  TimeS lease_wait_margin() const {
    return 2.0 * cfg_.faults.clock_drift_rate * lease_len_;
  }
  /// Drain worker `w`'s parked pushes back into its send queue (a peer its
  /// view held dead revived; destinations re-resolve at send time).
  void unpark_worker(int w);
  /// Per-heartbeat lease work at node `n`: self-fence / reopen own groups,
  /// and fire pending failovers whose lease expired (quorum permitting).
  void lease_tick(int n);
  /// Grant a freshly adopted primary a half-lease of self-lease runway so
  /// the first lease_tick after a takeover does not fence on a stale stamp.
  void seed_self_lease(int server, int group);
  /// Successor scan for `group` after its primary died in `observer_node`'s
  /// view (factored out of on_peer_dead so leases can defer it).
  void failover_scan(int observer_node, int group);
  /// Observer `n` sees a majority of view-joined members alive (self
  /// included). Lease-mode failover requires it so a minority-partitioned
  /// node can never elect itself.
  bool view_has_quorum(int n) const;
  /// Deterministic rebalance: groups joiner server `j` should take over.
  std::vector<int> rebalance_plan(int joiner_server) const;
  void start_migration(int donor, int group, int target);
  void finish_migration(const MigrationState& ms);
  void on_migrate_ack(std::int64_t msg_id);
  /// True while `server` must withhold round releases for `group` (it is
  /// donating the group, or lease-fenced on it).
  bool group_frozen(int server, int group) const;
  /// Re-derive `server`'s ground-truth acting interval for `group`; counts
  /// a dual-primary window when an interval opens while another server's
  /// interval for the same group is still open.
  void update_acting(int server, int group);

  // --- voluntary drain + SLO-driven autoscaling (docs/PROTOCOL.md) ---
  void execute_leave(const net::NodeLeave& l);
  /// Put `node` into draining mode: refuse new leadership, start migrating
  /// its own-led groups out, spawn the drain supervisor. Shared by planned
  /// leaves and autoscaler scale-down decisions.
  void begin_drain(int node);
  /// Best legal receiver for `group` leaving `donor` (home-chain member or
  /// an admitted joiner; rack-weight preference under a topology), or -1
  /// while none exists.
  int drain_target(int donor, int group) const;
  /// Drain supervisor: on the suspicion cadence, (re)issue migrations for
  /// any group the draining server still leads; once nothing is led and no
  /// donor-side migration is in flight, retire the node. Dies with the
  /// node's epoch (a crash mid-drain hands recovery to the failover path).
  sim::Task drain_loop(int node, std::int64_t epoch);
  /// Terminal drain step: the node leaves every membership view, sheds all
  /// process state exactly like a crash, and is marked permanently gone.
  void retire_node(int node);
  /// Per-group observed push weight (credited ledger bytes plus a payload
  /// prior so cold groups still weigh in); drives the weighted planner and
  /// drain-target ranking.
  double group_weight(int group) const;
  /// Weight-aware replacement for the contiguous planner: the share of
  /// groups the joiner takes is proportional to observed per-group push
  /// bytes. Frozen into `join_plan_` at admission so every node resolves
  /// the identical plan.
  std::vector<int> weighted_rebalance_plan(int joiner_server) const;
  /// Control loop evaluating the Autoscaler policy on the suspicion
  /// cadence and executing its decisions (admit / drain / shed).
  sim::Task autoscaler_loop();
  /// Overload shedding: while `shed_active_`, worker senders park
  /// lowest-priority fresh pushes; expiry re-queues them (exactly-once —
  /// they are delayed contributions, never dropped).
  bool should_shed(const SendItem& item) const;
  void unshed_all();

  // --- DSSP dynamic bounded-staleness gate (docs/PROTOCOL.md) ---
  /// Worker `w` counts toward the min-clock: it has a running iteration
  /// loop, its node is ground-truth present (up, joined, not retired), and
  /// no quorum-side membership view holds it dead (dead stragglers and
  /// minority-fenced workers are excluded so they can never wedge the
  /// fleet; detection latency is the membership plane's, not instant).
  bool dssp_eligible(int w) const;
  /// Recompute the min clock over eligible workers and advance the gate to
  /// the monotone floor `max(previous floor, that min)`. The floor is
  /// monotone so a rejoiner re-entering below the released floor (the
  /// rejoin_slack rule) narrows future advances instead of retracting
  /// releases. Returns the floor.
  std::int64_t dssp_advance_gate();
  /// Clock bookkeeping for one worker (entering an iteration, finishing,
  /// or leaving with its process); advances the gate and refreshes the
  /// clock-gap gauges.
  void dssp_set_clock(int w, std::int64_t clock);
  /// Merge a push for a round the shard has not opened yet into the
  /// future-round buffer (run-ahead under the staleness bound; promoted
  /// into the live ledger as versions advance — park-never-drop).
  void dssp_buffer_future(int server, const net::Message& m);
  /// Promote buffered contributions for `slice`'s newly opened round.
  void dssp_promote(int server, std::int64_t slice);

  // --- rack-local aggregation (docs/PROTOCOL.md) ---
  /// Node hosting the rack aggregator for `rack` (topology must be active).
  int rack_agg_node(int rack) const {
    return rack_agg_[static_cast<std::size_t>(rack)];
  }
  /// True while worker `w`'s view allows routing pushes through `agg`.
  bool agg_usable(int w, int agg) const;
  /// Fold one worker's kRackPush fragment at aggregator node `agg`.
  void on_rack_push(int agg, const net::Message& m);
  /// Forward the (slice, iteration) fold upstream once every member the
  /// aggregator's view still expects has contributed its full payload.
  /// Late contributions after a partial flush forward as singleton covers.
  void agg_flush(int agg, std::int64_t slice, std::int64_t iteration);
  /// Re-evaluate every pending fold at `agg` (its view of a rack member
  /// changed: partial rounds may now be flushable without the dead member).
  void agg_flush_all(int agg);
  /// Enqueue the combined push into the aggregator's own send queue, so it
  /// competes at slice priority and inherits parking/retransmit semantics.
  void enqueue_agg_push(int agg, std::int64_t slice, std::int64_t iteration,
                        std::vector<int> cover);
  /// Server -> rack aggregators: one kRackParams per rack (direct
  /// per-worker fallback for racks whose aggregator is unusable).
  void send_rack_params(int server, std::int64_t slice);
  /// Aggregator re-broadcast of a kRackParams fragment to its rack members.
  void on_rack_params(int agg, const net::Message& m);
  /// Workers an incoming push credits: the cover of an aggregated push, or
  /// the single originating worker.
  std::vector<int> push_cover(const net::Message& m) const;
  /// Retire `m.logical` bytes of the cover; erased once fully consumed.
  void consume_cover(const net::Message& m);
  /// Observer worker `w` saw its rack aggregator die: folds held there died
  /// with it, so re-push everything unreturned directly to the leaders.
  void worker_on_agg_dead(int w);

  // --- observability ---
  bool tracing() const { return tracer_ != nullptr && tracer_->enabled(); }
  /// Record one slice-lifecycle stage; layer and priority derive from the
  /// partition. Callers guard with tracing().
  void lc(obs::Stage stage, int worker, std::int64_t slice,
          std::int64_t iteration, Bytes bytes);
  /// Apply a send-queue / server-rx-queue depth delta: updates the always-on
  /// registry gauge and, when tracing, emits a counter-track sample.
  void sendq_depth_changed(int w, std::int64_t delta);
  void rxq_depth_changed(int server, std::int64_t delta);

  model::Workload workload_;
  ClusterConfig cfg_;
  core::SyncConfig sync_;
  core::Partition partition_;
  model::ComputeProfile profile_;

  sim::Simulator sim_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<net::FaultInjector> faults_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<std::unique_ptr<ServerState>> servers_;
  obs::Tracer* tracer_ = nullptr;

  std::int64_t target_iterations_ = 0;
  int workers_finished_ = 0;
  int finish_target_ = 0;
  bool started_ = false;
  bool stopping_ = false;

  // Every counter below lives in the registry; the references are bound in
  // the constructor initializer list (registry_ must be declared first).
  obs::Registry registry_;
  obs::Counter& pushes_sent_;
  obs::Counter& params_sent_;
  obs::Counter& notifies_sent_;
  obs::Counter& pulls_sent_;
  obs::Counter& rounds_completed_;
  obs::Counter& acks_sent_;
  obs::Counter& retransmits_;
  obs::Counter& timeouts_fired_;
  obs::Counter& duplicates_suppressed_;
  obs::Counter& goodput_bytes_;
  obs::Counter& crashes_;
  obs::Counter& restarts_;
  obs::Counter& failovers_;
  obs::Counter& worker_rejoins_;
  obs::Counter& checkpoints_written_;
  obs::Counter& checkpoint_bytes_;
  obs::Counter& rehydrations_;
  obs::Counter& rehydration_bytes_;
  obs::Counter& heartbeats_sent_;
  obs::Counter& stale_pushes_;
  obs::Counter& joins_;
  obs::Counter& migrations_;
  obs::Counter& migrated_bytes_;
  obs::Counter& lease_renewals_;
  obs::Counter& lease_expiries_;
  obs::Counter& dual_primary_windows_;
  obs::Counter& supersessions_;
  obs::Counter& parked_pushes_;
  obs::Counter& quorum_denied_failovers_;
  obs::Histogram& iter_time_hist_;
  obs::Histogram& stall_time_hist_;

  bool reliable_ = false;
  std::int64_t next_msg_id_ = 0;
  std::unordered_map<std::int64_t, PendingTx> pending_tx_;
  std::vector<std::unordered_set<std::int64_t>> seen_;  ///< per-node dedup
  /// Per-node dedup watermark: msg ids below it are suppressed without a
  /// table entry (see maybe_gc_dedup). Survives crashes — suppression of a
  /// retired id is always safe, and live retransmissions pin the floor.
  std::vector<std::int64_t> dedup_floor_;
  /// Dedup-table size that triggers a GC attempt.
  static constexpr std::size_t kDedupGcThreshold = 4096;
  Rng rto_rng_{0};  ///< consumed only when rto_jitter > 0

  // Membership plane (sized only when armed).
  bool membership_on_ = false;
  std::vector<NodeState> node_state_;
  std::vector<std::unique_ptr<Membership>> membership_;    // per node
  std::vector<std::unique_ptr<ShardLeadership>> leadership_;  // per node
  std::unordered_map<std::int64_t, std::int64_t> replicate_wait_;  // msg->key
  std::unordered_map<std::int64_t, CommitState> commits_;  // key -> barrier
  std::vector<std::vector<std::int64_t>> ckpt_versions_;   // per server "disk"
  double rehydration_time_sum_ = 0.0;
  TimeS max_rejoin_lag_ = 0.0;

  // Elastic scale-out + lease-based leadership (inert unless armed).
  bool leases_on_ = false;
  TimeS lease_len_ = 0.0;
  /// Per node: groups whose primary the node suspects dead but whose lease
  /// has not expired yet (lease-mode failover queue).
  std::vector<std::set<int>> pending_failover_;
  /// Per node: groups the hosted server has self-fenced, keyed to the fence
  /// time (reopen requires a renewed self-lease plus a settle delay).
  std::vector<std::map<int, TimeS>> fenced_;
  /// Per node, per own-led group: deadline of the primary's *self* lease
  /// (last chain-peer beacon + lease/2; only meaningful with replication>1).
  std::vector<std::vector<TimeS>> self_lease_;
  /// Ground truth: acting_[server][group] — drives dual_primary_windows_.
  std::vector<std::vector<Acting>> acting_;
  std::unordered_map<std::int64_t, int> migration_wait_;  // msg id -> group
  std::map<int, MigrationState> migrations_in_progress_;  // group -> state

  // Partition fault plane + per-node clock drift (inert unless armed).
  /// Set when the fault plan schedules partitions and the membership plane
  /// is on: arms push parking, echo-gated self-leases, quorum-gated
  /// self-fencing, and heal-time bounded-staleness re-admission.
  bool partition_plane_ = false;
  bool drift_on_ = false;
  std::vector<double> clock_rate_;   ///< per node: relative rate error
  std::vector<TimeS> clock_offset_;  ///< per node: constant offset (inert)
  /// Per worker: pushes parked while the destination is dead in its view.
  std::vector<std::vector<SendItem>> parked_;
  /// Per node: groups whose expired-lease failover quorum currently denies
  /// (counted once per denial episode).
  std::vector<std::set<int>> quorum_denied_;

  // Rack-scale hierarchy + rack-local aggregation (inert unless armed).
  /// One rack-local pre-reduction in progress at an aggregator, keyed by
  /// (slice, iteration). Folded bytes per worker, plus the members already
  /// covered by a forwarded combined push. Dies with the aggregator process.
  struct AggRound {
    std::map<int, Bytes> contrib;
    std::set<int> forwarded;
  };
  /// Contributor set of one forwarded combined push. Stands in for the
  /// member list a real wire format would carry in the payload, so it is
  /// never cleared when the *sender* crashes — only consumed (fragment by
  /// fragment) by the server that applies the push.
  struct AggCover {
    std::vector<int> workers;
    Bytes remaining = 0;
  };
  bool hierarchy_on_ = false;  ///< cfg_.topology is active
  bool agg_on_ = false;        ///< rack aggregation armed
  std::vector<int> node_rack_;             ///< node -> rack
  std::vector<int> rack_agg_;              ///< rack -> aggregator node
  std::vector<std::vector<int>> rack_workers_;  ///< rack -> worker nodes
  /// Per node (aggregators only): pending folds, deterministic iteration.
  std::vector<std::map<std::pair<std::int64_t, std::int64_t>, AggRound>>
      agg_rounds_;
  std::unordered_map<std::int64_t, AggCover> agg_cover_;
  std::int64_t next_agg_id_ = 0;
  // Registered only while aggregation is armed, so flat runs keep the exact
  // pre-hierarchy registry contents.
  obs::Counter* agg_combined_pushes_ = nullptr;
  obs::Counter* agg_param_broadcasts_ = nullptr;
  obs::Counter* agg_fallback_pushes_ = nullptr;

  // Voluntary drain + autoscaling (inert unless armed: planned leaves or an
  // enabled autoscaler).
  bool scale_plane_ = false;
  /// Per-group credited push bytes (ground truth, fed from the contribution
  /// ledger); the weighted planner's signal.
  std::vector<double> group_push_bytes_;
  /// Per rack, per group: credited push bytes by origin rack (topology
  /// runs only; the drain-target rack preference).
  std::vector<std::vector<double>> rack_group_push_bytes_;
  /// Admission-time frozen rebalance plans (joiner server -> groups), so
  /// the joiner's ask and every donor's answer agree even as weights move.
  std::map<int, std::vector<int>> join_plan_;
  /// Groups already promised to an earlier (still admitted) joiner;
  /// excluded from later weighted plans.
  std::set<int> granted_groups_;
  /// Next dark standby node id the autoscaler may admit.
  int standby_next_ = 0;
  std::unique_ptr<Autoscaler> autoscaler_;
  /// Overload shedding window: active until `shed_until_`; fresh pushes
  /// with priority >= `shed_cutoff_` park in `shed_parked_` until expiry.
  bool shed_active_ = false;
  TimeS shed_until_ = 0.0;
  int shed_cutoff_ = 0;
  std::vector<std::vector<SendItem>> shed_parked_;  // per worker
  /// Iterations completed when the last shed window expired. A new shed
  /// window may open only after at least one further iteration completes:
  /// in synchronous training every parked push delays the round it belongs
  /// to, so back-to-back sheds with no progress in between would spiral
  /// (slower rounds -> higher p99 -> more shedding). -1 = never shed.
  std::int64_t unshed_iter_count_ = -1;
  std::vector<TimeS> scale_decision_times_;
  // Registered only while the scale plane is armed, so fixed-membership
  // runs keep the exact pre-autoscaler registry contents.
  obs::Counter* drains_started_ = nullptr;
  obs::Counter* drains_completed_ = nullptr;
  obs::Counter* scale_decisions_ = nullptr;
  obs::Counter* sheds_ = nullptr;
  obs::Counter* slo_violation_ticks_ = nullptr;

  // DSSP dynamic bounded-staleness gate (inert unless method == kDSSP).
  bool dssp_on_ = false;
  std::unique_ptr<StalenessController> staleness_;
  /// The gate: its version is the monotone floor of the min eligible clock;
  /// a worker entering iteration c waits for version >= c - s.
  std::unique_ptr<sim::VersionGate> dssp_gate_;
  /// Per worker: iteration clock (-1 = no running loop). Re-seeded at
  /// rejoin/join to the loop's start iteration.
  std::vector<std::int64_t> dssp_clock_;
  /// Per worker: currently suspended on the staleness gate (wedge audit).
  std::vector<bool> dssp_blocked_;
  /// Per worker: the floor a blocked worker is waiting for. A worker whose
  /// need the floor already covers is merely awaiting its scheduled resume,
  /// not stuck.
  std::vector<std::int64_t> dssp_need_;
  /// Per server: future-round contributions keyed (slice, round) -> bytes
  /// per worker, merged with the same per-round payload cap as the live
  /// ledger. Dies with the server process; workers re-push outstanding
  /// rounds on leadership changes.
  std::vector<std::map<std::pair<std::int64_t, std::int64_t>,
                       std::map<int, Bytes>>>
      dssp_future_;
  double dssp_wait_sum_ = 0.0;
  std::int64_t dssp_passages_ = 0;
  // Registered only while DSSP is armed, so every other method keeps the
  // exact pre-DSSP registry contents.
  obs::Counter* dssp_gate_blocks_ = nullptr;
  obs::Counter* staleness_violations_ = nullptr;
  obs::Counter* gate_wedge_ticks_ = nullptr;
  obs::Histogram* dssp_wait_hist_ = nullptr;
  std::vector<obs::Gauge*> dssp_gap_gauge_;  ///< per worker: clock - floor
};

}  // namespace p3::ps
