// Data-parallel training cluster with a parameter-server synchronization
// protocol — the substrate the paper modifies (MXNet KVStore / ps-lite) and
// the P3 mechanism built on it.
//
// Each of the `n` machines runs a worker process and a colocated server
// process (the common practice the paper describes). Per iteration a worker:
//
//   forward:  for each layer L in order: wait until L's parameters from the
//             previous round have arrived, then compute fwd(L);
//   backward: for each layer L in reverse: compute bwd(L), then enqueue L's
//             gradient slices into the worker's send queue.
//
// A consumer process drains the send queue one message at a time with
// blocking sends (the paper's producer/consumer design): with priority
// enabled the most urgent slice is always sent next, preempting queued
// lower-priority traffic at slice/fragment granularity.
//
// Servers aggregate pushes per slice; when gradients from all workers have
// arrived they apply the update and either broadcast the new parameters
// immediately (P3) or notify workers, which then issue pull requests
// (baseline KVStore). TensorFlow-style deferred pulls issue all pull
// requests at the start of the next iteration instead.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/slicing.h"
#include "core/sync_method.h"
#include "model/compute.h"
#include "net/faults.h"
#include "net/network.h"
#include "sim/queue.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "trace/timeline.h"

namespace p3::ps {

struct ClusterConfig {
  int n_workers = 4;  ///< one server per worker
  /// false: servers colocated with workers (the paper's common practice);
  /// true: servers run on dedicated machines (nodes n..2n-1), so all PS
  /// traffic crosses the network. Used by the schedule figures and as a
  /// deployment ablation.
  bool dedicated_servers = false;
  core::SyncMethod method = core::SyncMethod::kBaseline;

  // Network (Section 5.3 sweeps `bandwidth` like `tc qdisc`).
  BitsPerSec bandwidth = gbps(10);
  /// Ingress rate; 0 = symmetric (AWS-style NIC limit). The paper's
  /// bandwidth sweep shapes egress only with `tc tbf`, leaving ingress at
  /// the 100 Gbps InfiniBand line rate — set this to that line rate for
  /// Figure 7-style experiments.
  BitsPerSec rx_bandwidth = 0;
  TimeS latency = us(25);

  // Partitioning.
  std::int64_t slice_params = 50'000;        ///< P3 slice size (Section 5.7)
  std::int64_t kvstore_threshold = 1'000'000; ///< KVStore sharding heuristic
  /// Maximum wire message size. ps-lite ships each shard as one monolithic
  /// message, so the default is effectively "no fragmentation"; lower it to
  /// study transport-level chunking as an ablation.
  Bytes fragment_bytes = gib(1);

  // Server-side aggregation + SGD cost model (effective single-thread
  // ps-lite throughput including (de)serialization; see EXPERIMENTS.md).
  double update_bytes_per_sec = 1.5e9;
  TimeS update_overhead = us(30);
  /// Worker-side per-message CPU cost (serialization + engine dispatch +
  /// syscall). This is what makes very small slices expensive (Section
  /// 5.7's left-hand falloff).
  TimeS send_overhead = us(10);

  /// Wire compression factor for gradient/parameter payloads (DGC-style
  /// sparsification: e.g. 50 = payloads shrink 50x on the wire while the
  /// server still touches the full arrays). 1 = no compression. The paper
  /// argues P3 composes with compression (Section 6); see ext_compression.
  double wire_compression = 1.0;

  // Per-iteration compute time multiplier stddev (variable sequence length
  // in NMT workloads; 0 = deterministic compute).
  double compute_jitter = 0.0;

  // --- fault injection + reliable delivery (docs/PROTOCOL.md) ---
  /// Wire faults to inject; an empty (inactive) plan keeps the network
  /// perfectly reliable and the reliability layer disarmed, so fault-free
  /// runs are byte-identical to a build without this subsystem.
  net::FaultPlan faults;
  /// Arm the ack/timeout/retransmit layer even without faults (used by
  /// tests to exercise dedup under spurious retransmissions).
  bool reliable_transport = false;
  /// Floor of the per-message retransmission timeout. The initial RTO also
  /// scales with the message's serialization time and the cluster's incast
  /// depth, and backs off by `rto_backoff` on every expiry.
  TimeS min_rto = ms(50);
  double rto_backoff = 2.0;
  /// > 0: use exactly this initial RTO for every message instead of the
  /// adaptive formula. Deliberately tiny values force spurious
  /// retransmissions, which tests use to prove dedup idempotency.
  TimeS fixed_rto = 0.0;

  std::uint64_t seed = 42;

  /// Override for the compute profile (used by the schedule figures to pin
  /// exact per-layer times); empty = derive from the workload.
  std::vector<TimeS> fwd_times;
  std::vector<TimeS> bwd_times;
};

struct RunResult {
  double throughput = 0.0;        ///< samples/s across the whole cluster
  TimeS mean_iteration_time = 0;  ///< steady-state per-iteration latency
  /// Mean time per iteration a worker's forward pass spent blocked waiting
  /// for parameters — the communication delay P3 attacks (averaged over
  /// workers and measured iterations).
  TimeS mean_stall_time = 0;
  TimeS total_time = 0;           ///< simulated time at measurement end
  int iterations_measured = 0;
  std::vector<TimeS> iteration_times;  ///< worker 0, measured window

  // Degradation observability (all zero on a fault-free run).
  std::int64_t messages_dropped = 0;      ///< lost to injected faults
  std::int64_t retransmits = 0;           ///< copies re-posted after timeout
  std::int64_t timeouts_fired = 0;        ///< retransmission timer expiries
  std::int64_t duplicates_suppressed = 0; ///< deliveries deduped by msg id
  /// Unique protocol bytes accepted by receivers (dedup survivors).
  Bytes goodput_bytes = 0;
  /// Everything posted on the wire: originals + retransmits + acks.
  Bytes wire_bytes = 0;
};

class Cluster {
 public:
  Cluster(model::Workload workload, ClusterConfig config);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Run `warmup + measured` iterations on every worker and report
  /// throughput over the measured window. Single use.
  RunResult run(int warmup_iterations, int measured_iterations);

  /// After run(): process all in-flight traffic until the simulation is
  /// fully quiescent (used by conservation tests).
  void drain();

  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return *net_; }
  const core::Partition& partition() const { return partition_; }
  const model::ComputeProfile& profile() const { return profile_; }
  const core::SyncConfig& sync_config() const { return sync_; }

  void attach_monitor(net::UtilizationMonitor* monitor) {
    net_->attach_monitor(monitor);
  }
  /// Records NIC spans plus worker compute and server update lanes.
  void attach_timeline(trace::Timeline* timeline);

  // --- introspection for tests and invariant checks ---
  std::int64_t slice_version(std::int64_t slice) const;
  std::int64_t worker_layer_version(int worker, int layer) const;
  std::int64_t pushes_sent() const { return pushes_sent_; }
  std::int64_t params_sent() const { return params_sent_; }
  std::int64_t notifies_sent() const { return notifies_sent_; }
  std::int64_t pulls_sent() const { return pulls_sent_; }
  std::int64_t rounds_completed() const { return rounds_completed_; }
  // Reliability-layer counters (all zero while the layer is disarmed).
  bool reliable_transport_armed() const { return reliable_; }
  std::int64_t acks_sent() const { return acks_sent_; }
  std::int64_t retransmits() const { return retransmits_; }
  std::int64_t timeouts_fired() const { return timeouts_fired_; }
  std::int64_t duplicates_suppressed() const { return duplicates_suppressed_; }
  std::int64_t reliable_in_flight() const {
    return static_cast<std::int64_t>(pending_tx_.size());
  }
  Bytes goodput_bytes() const { return goodput_bytes_; }

 private:
  struct SendItem {
    std::int64_t slice = -1;
    net::MsgKind kind = net::MsgKind::kPushGradient;
    std::int64_t iteration = -1;
    Bytes payload = 0;  ///< fragment payload bytes (0 for control messages)
    int priority = 0;
    std::int64_t seq = 0;
    /// >= 0: retransmission of this pending msg id (competes in the priority
    /// queue at the original slice priority, so preemption holds under loss).
    std::int64_t retx_id = -1;
  };
  struct SendOrder {
    bool operator()(const SendItem& a, const SendItem& b) const {
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };
  struct RxItem {
    net::Message msg;
    int priority = 0;
    std::int64_t seq = 0;
  };
  struct RxOrder {
    bool operator()(const RxItem& a, const RxItem& b) const {
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  struct WorkerState {
    explicit WorkerState(sim::Simulator& sim) : sendq(sim) {}
    std::vector<std::unique_ptr<sim::VersionGate>> gates;  // per layer
    std::vector<Bytes> param_bytes;  // received payload this round, per layer
    std::vector<int> notify_count;   // notifications this round, per layer
    sim::PriorityQueue<SendItem, SendOrder> sendq;
    std::int64_t send_seq = 0;
    std::vector<TimeS> iter_done;
    std::vector<TimeS> iter_stall;  ///< forward blocking time per iteration
    Rng rng{0};
  };

  struct PendingPull {
    int worker = -1;
    std::int64_t iteration = -1;
  };

  /// Sender-side state of one unacknowledged reliable message.
  struct PendingTx {
    net::Message msg;     ///< full copy, re-posted verbatim on timeout
    TimeS rto = 0.0;      ///< delay of the *next* timer to be armed
    int via_worker = -1;  ///< >= 0: retransmit through this worker's sendq
    bool queued = false;  ///< a retransmit item is sitting in the sendq
  };

  struct ServerState {
    explicit ServerState(sim::Simulator& sim) : rxq(sim) {}
    sim::PriorityQueue<RxItem, RxOrder> rxq;
    std::int64_t rx_seq = 0;
    std::vector<Bytes> round_bytes;            // per slice
    std::vector<std::int64_t> version;         // per slice
    std::vector<std::vector<PendingPull>> pending;  // per slice
  };

  sim::Task worker_loop(int w);
  sim::Task worker_sender(int w);
  sim::Task node_demux(int n);
  sim::Task server_loop(int n);

  /// Node hosting server `s` (== s when colocated, n_workers + s otherwise).
  int server_node(int server) const {
    return cfg_.dedicated_servers ? cfg_.n_workers + server : server;
  }
  int total_nodes() const {
    return cfg_.dedicated_servers ? 2 * cfg_.n_workers : cfg_.n_workers;
  }

  void enqueue_push(int w, std::int64_t slice, std::int64_t iteration);
  void enqueue_pull(int w, std::int64_t slice, std::int64_t iteration);
  void worker_on_notify(int w, const net::Message& m);
  void worker_on_param(int w, const net::Message& m);
  void send_params(int server, std::int64_t slice, int worker);
  Bytes wire_payload(Bytes logical) const;
  int item_priority(std::int64_t slice) const;
  double jitter_factor(WorkerState& ws);

  // --- reliable delivery (ack / timeout / retransmit / dedup) ---
  /// Register `m` for acknowledged delivery: assigns its msg id and records
  /// the sender-side retransmission state. `via_worker` >= 0 routes
  /// retransmissions through that worker's priority send queue.
  void arm_reliable(net::Message& m, int via_worker);
  /// Post `m` directly, arming the reliability layer when it applies
  /// (server->worker params/notify and worker pull requests).
  void post_tracked(net::Message m);
  TimeS initial_rto(const net::Message& m) const;
  void schedule_retx_timer(std::int64_t msg_id, TimeS delay);
  void on_retx_timeout(std::int64_t msg_id);
  /// Demux-side reliability front-end: acks `m` and deduplicates. Returns
  /// false when `m` is a duplicate that must not reach the protocol.
  bool accept_reliable(int node, const net::Message& m);

  model::Workload workload_;
  ClusterConfig cfg_;
  core::SyncConfig sync_;
  core::Partition partition_;
  model::ComputeProfile profile_;

  sim::Simulator sim_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<net::FaultInjector> faults_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<std::unique_ptr<ServerState>> servers_;
  trace::Timeline* timeline_ = nullptr;

  std::int64_t target_iterations_ = 0;
  int workers_finished_ = 0;
  bool started_ = false;

  std::int64_t pushes_sent_ = 0;
  std::int64_t params_sent_ = 0;
  std::int64_t notifies_sent_ = 0;
  std::int64_t pulls_sent_ = 0;
  std::int64_t rounds_completed_ = 0;

  bool reliable_ = false;
  std::int64_t next_msg_id_ = 0;
  std::unordered_map<std::int64_t, PendingTx> pending_tx_;
  std::vector<std::unordered_set<std::int64_t>> seen_;  ///< per-node dedup
  std::int64_t acks_sent_ = 0;
  std::int64_t retransmits_ = 0;
  std::int64_t timeouts_fired_ = 0;
  std::int64_t duplicates_suppressed_ = 0;
  Bytes goodput_bytes_ = 0;
};

}  // namespace p3::ps
