#include "ps/cluster.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace p3::ps {
namespace {

std::string lane(const char* prefix, int node, const char* suffix) {
  return std::string(prefix) + std::to_string(node) + suffix;
}

}  // namespace

Cluster::Cluster(model::Workload workload, ClusterConfig config)
    : workload_(std::move(workload)),
      cfg_(std::move(config)),
      sync_(core::sync_config(cfg_.method)) {
  if (cfg_.n_workers <= 0) {
    throw std::invalid_argument("need at least one worker");
  }
  if (cfg_.fragment_bytes <= 0) {
    throw std::invalid_argument("non-positive fragment size");
  }
  if (cfg_.update_bytes_per_sec <= 0) {
    throw std::invalid_argument("non-positive update rate");
  }
  if (cfg_.wire_compression < 1.0) {
    throw std::invalid_argument("compression factor below 1");
  }
  if (cfg_.min_rto <= 0.0) {
    throw std::invalid_argument("non-positive retransmission timeout");
  }
  if (cfg_.rto_backoff < 1.0) {
    throw std::invalid_argument("retransmission backoff below 1");
  }
  if (cfg_.fixed_rto < 0.0) {
    throw std::invalid_argument("negative retransmission timeout");
  }

  Rng placement_rng(cfg_.seed);
  partition_ =
      sync_.slicing
          ? core::partition_p3(workload_.model, cfg_.n_workers,
                               cfg_.slice_params)
          : core::partition_kvstore(workload_.model, cfg_.n_workers,
                                    cfg_.kvstore_threshold, placement_rng);

  if (!cfg_.fwd_times.empty()) {
    const auto n = static_cast<std::size_t>(workload_.model.num_layers());
    if (cfg_.fwd_times.size() != n || cfg_.bwd_times.size() != n) {
      throw std::invalid_argument("compute override size mismatch");
    }
    profile_.fwd = cfg_.fwd_times;
    profile_.bwd = cfg_.bwd_times;
  } else {
    profile_ = model::make_profile(workload_.model, workload_.iter_compute_time);
  }

  net::NetworkConfig net_cfg;
  net_cfg.rate = cfg_.bandwidth;
  net_cfg.rx_rate = cfg_.rx_bandwidth;
  net_cfg.latency = cfg_.latency;
  net_ = std::make_unique<net::Network>(sim_, total_nodes(), net_cfg);

  if (cfg_.faults.active()) {
    faults_ = std::make_unique<net::FaultInjector>(
        cfg_.faults, cfg_.seed ^ 0xfa0175eedULL);
    net_->attach_faults(faults_.get());
  }
  // The ack/retransmit/dedup layer arms itself exactly when something can
  // go wrong (or when forced); a fault-free run posts the pre-reliability
  // event sequence bit for bit.
  reliable_ = cfg_.faults.active() || cfg_.reliable_transport;
  seen_.resize(static_cast<std::size_t>(total_nodes()));

  const int layers = workload_.model.num_layers();
  for (int w = 0; w < cfg_.n_workers; ++w) {
    auto ws = std::make_unique<WorkerState>(sim_);
    ws->gates.reserve(static_cast<std::size_t>(layers));
    for (int l = 0; l < layers; ++l) {
      ws->gates.push_back(std::make_unique<sim::VersionGate>(sim_));
    }
    ws->param_bytes.assign(static_cast<std::size_t>(layers), 0);
    ws->notify_count.assign(static_cast<std::size_t>(layers), 0);
    ws->rng = Rng(cfg_.seed + 1000003ULL * static_cast<std::uint64_t>(w + 1));
    workers_.push_back(std::move(ws));

    auto ss = std::make_unique<ServerState>(sim_);
    const auto n_slices = static_cast<std::size_t>(partition_.num_slices());
    ss->round_bytes.assign(n_slices, 0);
    ss->version.assign(n_slices, 0);
    ss->pending.resize(n_slices);
    servers_.push_back(std::move(ss));
  }
}

Cluster::~Cluster() = default;

void Cluster::attach_timeline(trace::Timeline* timeline) {
  timeline_ = timeline;
  net_->attach_timeline(timeline);
}

Bytes Cluster::wire_payload(Bytes logical) const {
  if (cfg_.wire_compression <= 1.0) return logical;
  const auto compressed = static_cast<Bytes>(
      static_cast<double>(logical) / cfg_.wire_compression);
  return std::max<Bytes>(compressed, 1);
}

int Cluster::item_priority(std::int64_t slice) const {
  if (!sync_.priority) return 0;  // FIFO: ties broken by sequence number
  return partition_.slices[static_cast<std::size_t>(slice)].priority;
}

double Cluster::jitter_factor(WorkerState& ws) {
  if (cfg_.compute_jitter <= 0.0) return 1.0;
  return std::max(0.2, ws.rng.normal(1.0, cfg_.compute_jitter));
}

TimeS Cluster::initial_rto(const net::Message& m) const {
  if (cfg_.fixed_rto > 0.0) return cfg_.fixed_rto;
  // Generous floor: a round trip plus one full serialization of this
  // message per incast participant (n pushes can queue ahead of it at the
  // server's RX channel). A spurious timeout is safe — dedup makes
  // retransmission idempotent — but wastes wire bytes, so err high and let
  // exponential backoff absorb real congestion.
  return cfg_.min_rto + 2.0 * cfg_.latency +
         static_cast<double>(cfg_.n_workers + 2) *
             transfer_time(m.bytes, cfg_.bandwidth);
}

void Cluster::arm_reliable(net::Message& m, int via_worker) {
  m.msg_id = next_msg_id_++;
  PendingTx pending;
  pending.msg = m;
  pending.rto = initial_rto(m);
  pending.via_worker = via_worker;
  pending_tx_.emplace(m.msg_id, std::move(pending));
}

void Cluster::schedule_retx_timer(std::int64_t msg_id, TimeS delay) {
  sim_.schedule(delay, [this, msg_id] { on_retx_timeout(msg_id); });
}

void Cluster::on_retx_timeout(std::int64_t msg_id) {
  const auto it = pending_tx_.find(msg_id);
  if (it == pending_tx_.end()) return;  // acked; the timer is a no-op
  ++timeouts_fired_;
  PendingTx& pending = it->second;
  pending.rto *= cfg_.rto_backoff;
  if (pending.via_worker >= 0) {
    if (pending.queued) return;  // defensive: already awaiting the sender
    pending.queued = true;
    auto& ws = *workers_[static_cast<std::size_t>(pending.via_worker)];
    SendItem item;
    item.slice = pending.msg.slice;
    item.kind = pending.msg.kind;
    item.iteration = pending.msg.iteration;
    item.priority = pending.msg.priority;
    item.seq = ws.send_seq++;
    item.retx_id = msg_id;
    ws.sendq.push(item);
    // No timer while queued; the sender arms one when the copy hits the
    // wire, so send-queue backlog never counts against the RTO.
  } else {
    ++retransmits_;
    if (timeline_ != nullptr) {
      timeline_->add(lane("n", pending.msg.src, ".rtx"), sim_.now(),
                     sim_.now(), "r" + net::message_label(pending.msg));
    }
    net_->post(pending.msg);
    schedule_retx_timer(msg_id, pending.rto);
  }
}

bool Cluster::accept_reliable(int node, const net::Message& m) {
  if (!reliable_ || m.msg_id < 0) return true;
  // Always ack, even duplicates: the previous ack may itself have been
  // dropped, and the sender keeps retransmitting until one gets through.
  net::Message ack;
  ack.src = node;
  ack.dst = m.src;
  ack.kind = net::MsgKind::kAck;
  ack.slice = m.slice;
  ack.layer = m.layer;
  ack.worker = m.worker;
  ack.msg_id = m.msg_id;
  ack.bytes = net::kAckBytes;
  net_->post(ack);
  ++acks_sent_;
  if (!seen_[static_cast<std::size_t>(node)].insert(m.msg_id).second) {
    ++duplicates_suppressed_;
    return false;
  }
  return true;
}

void Cluster::post_tracked(net::Message m) {
  if (reliable_ && m.src != m.dst) {
    arm_reliable(m, -1);
    const TimeS rto = pending_tx_.at(m.msg_id).rto;
    net_->post(m);
    schedule_retx_timer(m.msg_id, rto);
  } else {
    net_->post(m);
  }
}

void Cluster::enqueue_push(int w, std::int64_t slice, std::int64_t iteration) {
  auto& ws = *workers_[static_cast<std::size_t>(w)];
  const auto& sl = partition_.slices[static_cast<std::size_t>(slice)];
  Bytes remaining = sl.payload_bytes();
  // Fragment large shards (ps-lite serialization); each fragment is a
  // separate message, so priority preemption also works mid-layer.
  while (remaining > 0) {
    SendItem item;
    item.slice = slice;
    item.kind = net::MsgKind::kPushGradient;
    item.iteration = iteration;
    item.payload = std::min(remaining, cfg_.fragment_bytes);
    item.priority = item_priority(slice);
    item.seq = ws.send_seq++;
    ws.sendq.push(item);
    remaining -= item.payload;
  }
}

void Cluster::enqueue_pull(int w, std::int64_t slice, std::int64_t iteration) {
  // Pull requests are tiny control messages; like TCP small packets they
  // interleave with bulk data rather than queueing behind it, so they are
  // posted directly instead of going through the bulk send queue.
  const auto& sl = partition_.slices[static_cast<std::size_t>(slice)];
  net::Message m;
  m.src = w;
  m.dst = server_node(sl.server);
  m.kind = net::MsgKind::kPullRequest;
  m.slice = slice;
  m.layer = sl.layer;
  m.priority = item_priority(slice);
  m.iteration = iteration;
  m.worker = w;
  m.bytes = net::kControlBytes;
  post_tracked(m);
  ++pulls_sent_;
}

sim::Task Cluster::worker_loop(int w) {
  auto& ws = *workers_[static_cast<std::size_t>(w)];
  const int layers = workload_.model.num_layers();
  for (std::int64_t iter = 0; iter < target_iterations_; ++iter) {
    const double jitter = jitter_factor(ws);
    TimeS stall = 0.0;
    // --- forward propagation ---
    for (int l = 0; l < layers; ++l) {
      if (!partition_.layer_slices[static_cast<std::size_t>(l)].empty()) {
        const TimeS wait_from = sim_.now();
        co_await ws.gates[static_cast<std::size_t>(l)]->wait_for(iter);
        stall += sim_.now() - wait_from;
      }
      const TimeS t0 = sim_.now();
      co_await sim_.sleep(profile_.fwd[static_cast<std::size_t>(l)] * jitter);
      if (timeline_ != nullptr) {
        timeline_->add(lane("w", w, ".cmp"), t0, sim_.now(),
                       "F" + std::to_string(l + 1));
      }
    }
    // --- backward propagation (reverse order) ---
    for (int l = layers - 1; l >= 0; --l) {
      const TimeS t0 = sim_.now();
      co_await sim_.sleep(profile_.bwd[static_cast<std::size_t>(l)] * jitter);
      if (timeline_ != nullptr) {
        timeline_->add(lane("w", w, ".cmp"), t0, sim_.now(),
                       "B" + std::to_string(l + 1));
      }
      // Wait-free backpropagation: the layer's slices enter the send queue
      // the moment its gradients exist.
      for (auto slice : partition_.layer_slices[static_cast<std::size_t>(l)]) {
        enqueue_push(w, slice, iter);
      }
    }
    if (sync_.deferred_pull) {
      // TensorFlow-style: pulls for every key are issued together at the
      // start of the next graph execution, in forward order.
      for (int l = 0; l < layers; ++l) {
        for (auto slice :
             partition_.layer_slices[static_cast<std::size_t>(l)]) {
          enqueue_pull(w, slice, iter);
        }
      }
    }
    ws.iter_done.push_back(sim_.now());
    ws.iter_stall.push_back(stall);
  }
  ++workers_finished_;
}

sim::Task Cluster::worker_sender(int w) {
  auto& ws = *workers_[static_cast<std::size_t>(w)];
  for (;;) {
    SendItem item = co_await ws.sendq.pop();
    if (item.retx_id >= 0) {
      // Retransmission: it competed in the priority queue at the original
      // slice priority, so urgent traffic still preempts it under loss.
      auto it = pending_tx_.find(item.retx_id);
      if (it == pending_tx_.end()) continue;  // acked while queued
      it->second.queued = false;
      const net::Message m = it->second.msg;
      ++retransmits_;
      if (timeline_ != nullptr) {
        timeline_->add(lane("n", m.src, ".rtx"), sim_.now(), sim_.now(),
                       "r" + net::message_label(m));
      }
      if (cfg_.send_overhead > 0.0) co_await sim_.sleep(cfg_.send_overhead);
      co_await net_->send(m);
      // Only re-arm the timer if the ack didn't land mid-send.
      const auto it2 = pending_tx_.find(item.retx_id);
      if (it2 != pending_tx_.end()) {
        schedule_retx_timer(item.retx_id, it2->second.rto);
      }
      continue;
    }
    const auto& sl = partition_.slices[static_cast<std::size_t>(item.slice)];
    net::Message m;
    m.src = w;
    m.dst = server_node(sl.server);
    m.kind = item.kind;
    m.slice = item.slice;
    m.layer = sl.layer;
    m.priority = item.priority;
    m.iteration = item.iteration;
    m.worker = w;
    m.logical = item.payload;
    m.bytes = wire_payload(item.payload) + net::kHeaderBytes;
    if (reliable_ && m.src != m.dst) arm_reliable(m, w);
    ++pushes_sent_;
    // Per-message CPU cost on the sender thread, then a blocking send: the
    // consumer only dequeues the next (highest priority) item once this
    // message has fully serialized onto the NIC.
    if (cfg_.send_overhead > 0.0) co_await sim_.sleep(cfg_.send_overhead);
    co_await net_->send(m);
    if (m.msg_id >= 0) {
      const auto it = pending_tx_.find(m.msg_id);
      if (it != pending_tx_.end()) {
        schedule_retx_timer(m.msg_id, it->second.rto);
      }
    }
  }
}

sim::Task Cluster::node_demux(int n) {
  // Colocated mode: node n hosts worker n and server n. Dedicated mode:
  // nodes [0, n_workers) host workers, [n_workers, 2*n_workers) servers.
  const int server_idx = cfg_.dedicated_servers ? n - cfg_.n_workers : n;
  for (;;) {
    net::Message m = co_await net_->inbox(n).pop();
    if (m.kind == net::MsgKind::kAck) {
      // Delivery confirmed: retire the sender-side retransmission state
      // (any outstanding timer becomes a no-op).
      pending_tx_.erase(m.msg_id);
      continue;
    }
    if (m.kind != net::MsgKind::kBackground) {
      if (!accept_reliable(n, m)) continue;  // duplicate suppressed
      goodput_bytes_ += m.bytes;
    }
    switch (m.kind) {
      case net::MsgKind::kPushGradient:
      case net::MsgKind::kPullRequest: {
        if (server_idx < 0) throw std::logic_error("PS traffic at worker node");
        auto& ss = *servers_[static_cast<std::size_t>(server_idx)];
        RxItem item;
        item.msg = m;
        item.priority = m.priority;
        item.seq = ss.rx_seq++;
        ss.rxq.push(item);
        break;
      }
      case net::MsgKind::kNotify:
        worker_on_notify(n, m);
        break;
      case net::MsgKind::kParams:
        worker_on_param(n, m);
        break;
      case net::MsgKind::kBackground:
        break;  // foreign tenant traffic: consumed bandwidth, nothing else
      case net::MsgKind::kAck:
        break;  // handled above
    }
  }
}

void Cluster::worker_on_notify(int w, const net::Message& m) {
  auto& ws = *workers_[static_cast<std::size_t>(w)];
  const auto layer = static_cast<std::size_t>(m.layer);
  const auto& slices = partition_.layer_slices[layer];
  if (++ws.notify_count[layer] ==
      static_cast<int>(slices.size())) {
    // MXNet issues the pull only once every slice of the layer has been
    // notified (the behaviour P3 removes, Section 4.2).
    ws.notify_count[layer] = 0;
    for (auto slice : slices) enqueue_pull(w, slice, m.iteration);
  }
}

void Cluster::worker_on_param(int w, const net::Message& m) {
  auto& ws = *workers_[static_cast<std::size_t>(w)];
  const auto layer = static_cast<std::size_t>(m.layer);
  ws.param_bytes[layer] += m.logical;
  if (ws.param_bytes[layer] >= partition_.layer_bytes(m.layer)) {
    ws.param_bytes[layer] = 0;
    // All parameters of the layer are fresh: unblock the next forward pass.
    ws.gates[layer]->increment();
  }
}

void Cluster::send_params(int server, std::int64_t slice, int worker) {
  const auto& sl = partition_.slices[static_cast<std::size_t>(slice)];
  Bytes remaining = sl.payload_bytes();
  while (remaining > 0) {
    const Bytes payload = std::min(remaining, cfg_.fragment_bytes);
    net::Message m;
    m.src = server_node(server);
    m.dst = worker;
    m.kind = net::MsgKind::kParams;
    m.slice = slice;
    m.layer = sl.layer;
    m.priority = item_priority(slice);
    m.worker = worker;
    m.logical = payload;
    m.bytes = wire_payload(payload) + net::kHeaderBytes;
    post_tracked(m);
    ++params_sent_;
    remaining -= payload;
  }
}

sim::Task Cluster::server_loop(int n) {
  // `n` is the *server index*; its NIC is node server_node(n).
  auto& ss = *servers_[static_cast<std::size_t>(n)];
  for (;;) {
    RxItem item = co_await ss.rxq.pop();
    const net::Message& m = item.msg;
    const auto slice_idx = static_cast<std::size_t>(m.slice);
    const auto& sl = partition_.slices[slice_idx];
    if (sl.server != n) {
      throw std::logic_error("slice routed to wrong server");
    }

    if (m.kind == net::MsgKind::kPullRequest) {
      if (ss.version[slice_idx] >= m.iteration + 1) {
        send_params(n, m.slice, m.worker);
      } else {
        ss.pending[slice_idx].push_back(PendingPull{m.worker, m.iteration});
      }
      continue;
    }

    // Gradient push: aggregate (memory-bound add over the full-precision
    // array; compression saves wire bytes, not server arithmetic).
    const Bytes payload = m.logical;
    const TimeS t0 = sim_.now();
    co_await sim_.sleep(static_cast<double>(payload) /
                        cfg_.update_bytes_per_sec);
    ss.round_bytes[slice_idx] += payload;

    const Bytes round_target = sl.payload_bytes() * cfg_.n_workers;
    if (ss.round_bytes[slice_idx] >= round_target) {
      // All workers contributed: run the optimizer step on the shard.
      ss.round_bytes[slice_idx] = 0;
      co_await sim_.sleep(
          static_cast<double>(sl.payload_bytes()) / cfg_.update_bytes_per_sec +
          cfg_.update_overhead);
      ++ss.version[slice_idx];
      ++rounds_completed_;
      if (timeline_ != nullptr) {
        timeline_->add(lane("n", server_node(n), ".srv"), t0, sim_.now(),
                       "U" + std::to_string(sl.layer + 1));
      }

      if (sync_.immediate_broadcast) {
        // P3Server: broadcast updated parameters without notify+pull.
        for (int w = 0; w < cfg_.n_workers; ++w) send_params(n, m.slice, w);
      } else if (!sync_.deferred_pull) {
        for (int w = 0; w < cfg_.n_workers; ++w) {
          net::Message notify;
          notify.src = server_node(n);
          notify.dst = w;
          notify.kind = net::MsgKind::kNotify;
          notify.slice = m.slice;
          notify.layer = sl.layer;
          notify.priority = item_priority(m.slice);
          notify.iteration = m.iteration;
          notify.bytes = net::kControlBytes;
          post_tracked(notify);
          ++notifies_sent_;
        }
      }
      // Serve pulls that arrived before the round completed.
      auto pending = std::move(ss.pending[slice_idx]);
      ss.pending[slice_idx].clear();
      for (const auto& p : pending) {
        if (ss.version[slice_idx] >= p.iteration + 1) {
          send_params(n, m.slice, p.worker);
        } else {
          ss.pending[slice_idx].push_back(p);
        }
      }
    } else if (timeline_ != nullptr) {
      timeline_->add(lane("n", server_node(n), ".srv"), t0, sim_.now(),
                     "a" + std::to_string(sl.layer + 1));
    }
  }
}

RunResult Cluster::run(int warmup_iterations, int measured_iterations) {
  if (started_) throw std::logic_error("Cluster::run is single-use");
  if (measured_iterations <= 0) {
    throw std::invalid_argument("need at least one measured iteration");
  }
  started_ = true;
  target_iterations_ = warmup_iterations + measured_iterations;

  for (int n = 0; n < total_nodes(); ++n) sim_.spawn(node_demux(n));
  for (int n = 0; n < cfg_.n_workers; ++n) {
    sim_.spawn(server_loop(n));
    sim_.spawn(worker_sender(n));
    sim_.spawn(worker_loop(n));
  }
  const bool finished = sim_.run_while(
      [this] { return workers_finished_ == cfg_.n_workers; });
  if (!finished) {
    throw std::logic_error("simulation deadlocked before workers finished");
  }

  RunResult result;
  result.iterations_measured = measured_iterations;
  TimeS start = 0.0;
  TimeS end = 0.0;
  for (const auto& ws : workers_) {
    const auto& done = ws->iter_done;
    if (warmup_iterations > 0) {
      start = std::max(
          start, done[static_cast<std::size_t>(warmup_iterations - 1)]);
    }
    end = std::max(end, done.back());
  }
  const double samples = static_cast<double>(cfg_.n_workers) *
                         workload_.batch_per_worker * measured_iterations;
  result.total_time = end;
  result.throughput = samples / (end - start);
  const auto& w0 = workers_.front()->iter_done;
  for (int i = warmup_iterations; i < target_iterations_; ++i) {
    const TimeS prev =
        i == 0 ? 0.0 : w0[static_cast<std::size_t>(i - 1)];
    result.iteration_times.push_back(w0[static_cast<std::size_t>(i)] - prev);
  }
  double sum = 0.0;
  for (TimeS t : result.iteration_times) sum += t;
  result.mean_iteration_time =
      sum / static_cast<double>(result.iteration_times.size());
  double stall_sum = 0.0;
  for (const auto& ws : workers_) {
    for (int i = warmup_iterations; i < target_iterations_; ++i) {
      stall_sum += ws->iter_stall[static_cast<std::size_t>(i)];
    }
  }
  result.mean_stall_time = stall_sum / (static_cast<double>(cfg_.n_workers) *
                                        measured_iterations);
  result.messages_dropped = net_->messages_dropped();
  result.retransmits = retransmits_;
  result.timeouts_fired = timeouts_fired_;
  result.duplicates_suppressed = duplicates_suppressed_;
  result.goodput_bytes = goodput_bytes_;
  result.wire_bytes = net_->bytes_posted();
  return result;
}

void Cluster::drain() { sim_.run(); }

std::int64_t Cluster::slice_version(std::int64_t slice) const {
  const auto& sl = partition_.slices[static_cast<std::size_t>(slice)];
  return servers_[static_cast<std::size_t>(sl.server)]
      ->version[static_cast<std::size_t>(slice)];
}

std::int64_t Cluster::worker_layer_version(int worker, int layer) const {
  return workers_[static_cast<std::size_t>(worker)]
      ->gates[static_cast<std::size_t>(layer)]
      ->version();
}

}  // namespace p3::ps
