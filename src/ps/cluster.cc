#include "ps/cluster.h"

#include "obs/critpath.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>

namespace p3::ps {
namespace {

std::string lane(const char* prefix, int node, const char* suffix) {
  return std::string(prefix) + std::to_string(node) + suffix;
}

}  // namespace

Cluster::Cluster(model::Workload workload, ClusterConfig config)
    : workload_(std::move(workload)),
      cfg_(std::move(config)),
      sync_(core::sync_config(cfg_.method)),
      pushes_sent_(registry_.counter("protocol.pushes_sent")),
      params_sent_(registry_.counter("protocol.params_sent")),
      notifies_sent_(registry_.counter("protocol.notifies_sent")),
      pulls_sent_(registry_.counter("protocol.pulls_sent")),
      rounds_completed_(registry_.counter("protocol.rounds_completed")),
      acks_sent_(registry_.counter("transport.acks_sent")),
      retransmits_(registry_.counter("transport.retransmits")),
      timeouts_fired_(registry_.counter("transport.timeouts_fired")),
      duplicates_suppressed_(
          registry_.counter("transport.duplicates_suppressed")),
      goodput_bytes_(registry_.counter("transport.goodput_bytes")),
      crashes_(registry_.counter("recovery.crashes")),
      restarts_(registry_.counter("recovery.restarts")),
      failovers_(registry_.counter("recovery.failovers")),
      worker_rejoins_(registry_.counter("recovery.worker_rejoins")),
      checkpoints_written_(registry_.counter("recovery.checkpoints_written")),
      checkpoint_bytes_(registry_.counter("recovery.checkpoint_bytes")),
      rehydrations_(registry_.counter("recovery.rehydrations")),
      rehydration_bytes_(registry_.counter("recovery.rehydration_bytes")),
      heartbeats_sent_(registry_.counter("recovery.heartbeats_sent")),
      stale_pushes_(registry_.counter("recovery.stale_pushes")),
      joins_(registry_.counter("membership.joins")),
      migrations_(registry_.counter("membership.migrations")),
      migrated_bytes_(registry_.counter("membership.migrated_bytes")),
      lease_renewals_(registry_.counter("membership.lease_renewals")),
      lease_expiries_(registry_.counter("membership.lease_expiries")),
      dual_primary_windows_(
          registry_.counter("membership.dual_primary_windows")),
      supersessions_(registry_.counter("membership.supersessions")),
      parked_pushes_(registry_.counter("partition.parked_pushes")),
      quorum_denied_failovers_(
          registry_.counter("partition.quorum_denied_failovers")),
      iter_time_hist_(registry_.histogram(
          "worker.iteration_time_s",
          {0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0})),
      stall_time_hist_(registry_.histogram(
          "worker.stall_time_s",
          {0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.5, 1.0})) {
  if (cfg_.n_workers <= 0) {
    throw std::invalid_argument("need at least one worker");
  }
  if (cfg_.fragment_bytes <= 0) {
    throw std::invalid_argument("non-positive fragment size");
  }
  if (cfg_.update_bytes_per_sec <= 0) {
    throw std::invalid_argument("non-positive update rate");
  }
  if (cfg_.wire_compression < 1.0) {
    throw std::invalid_argument("compression factor below 1");
  }
  if (cfg_.min_rto <= 0.0) {
    throw std::invalid_argument("non-positive retransmission timeout");
  }
  if (cfg_.rto_backoff < 1.0) {
    throw std::invalid_argument("retransmission backoff below 1");
  }
  if (cfg_.fixed_rto < 0.0) {
    throw std::invalid_argument("negative retransmission timeout");
  }
  if (cfg_.max_rto < cfg_.min_rto) {
    throw std::invalid_argument("retransmission ceiling below the floor");
  }
  if (cfg_.rto_jitter < 0.0 || cfg_.rto_jitter > 1.0) {
    throw std::invalid_argument("retransmission jitter outside [0, 1]");
  }
  if (cfg_.replication < 1 || cfg_.replication > cfg_.n_workers) {
    throw std::invalid_argument("replication factor outside [1, n_servers]");
  }
  if (cfg_.checkpoint_period < 0.0) {
    throw std::invalid_argument("negative checkpoint period");
  }
  if (cfg_.checkpoint_bytes_per_sec <= 0.0) {
    throw std::invalid_argument("non-positive checkpoint rate");
  }
  if (cfg_.rejoin_slack < 0) {
    throw std::invalid_argument("negative rejoin slack");
  }
  if (cfg_.method == core::SyncMethod::kDSSP) {
    cfg_.staleness.validate();
  }
  if (cfg_.max_sim_time < 0.0) {
    throw std::invalid_argument("negative simulation time limit");
  }
  if (!cfg_.faults.joins.empty() && cfg_.dedicated_servers) {
    throw std::invalid_argument(
        "elastic joins require colocated servers (a joiner hosts both roles)");
  }
  if (!cfg_.faults.leaves.empty() && cfg_.dedicated_servers) {
    throw std::invalid_argument(
        "voluntary leaves require colocated servers (the drain migrates a "
        "colocated worker+server node)");
  }
  if (cfg_.autoscaler.enabled && cfg_.dedicated_servers) {
    throw std::invalid_argument(
        "the autoscaler requires colocated servers (standbys host both "
        "roles)");
  }
  if (cfg_.autoscaler.enabled && cfg_.topology.active() &&
      cfg_.autoscaler.standby_nodes > 0) {
    throw std::invalid_argument(
        "standby admission is not supported under a rack topology (rack "
        "membership is fixed at construction)");
  }
  if (cfg_.rack_aggregation &&
      (!cfg_.faults.leaves.empty() || cfg_.autoscaler.enabled)) {
    throw std::invalid_argument(
        "voluntary leaves / autoscaling are not supported with rack "
        "aggregation (an aggregator role cannot retire)");
  }
  if (cfg_.faults.lease_duration.has_value() &&
      *cfg_.faults.lease_duration <= cfg_.heartbeat_period) {
    throw std::invalid_argument(
        "lease duration must exceed the heartbeat period (a lease that "
        "cannot be renewed by beacons expires every interval)");
  }
  if (cfg_.faults.lease_duration.has_value() &&
      !cfg_.faults.partitions.empty() && cfg_.replication > 1) {
    // Partition safety depends on a minority primary self-fencing *before*
    // any majority observer's lease on it can lapse. The fence needs the
    // chain peers to suspect the primary first (echo turns negative at
    // suspicion + one beacon), then the half-length self-lease to run out —
    // all of which must fit inside half the lease, drift margin included.
    const TimeS lease = *cfg_.faults.lease_duration;
    const TimeS margin = 2.0 * cfg_.faults.clock_drift_rate * lease;
    if (lease / 2.0 <=
        cfg_.suspicion_timeout + 2.0 * cfg_.heartbeat_period + margin) {
      throw std::invalid_argument(
          "lease duration too short for partition-safe self-fencing: half "
          "the lease must exceed suspicion_timeout + 2 heartbeat periods "
          "plus the drift margin");
    }
  }
  if (cfg_.topology.active() && !cfg_.faults.joins.empty()) {
    throw std::invalid_argument(
        "elastic joins are not supported under a rack topology (rack "
        "membership is fixed at construction)");
  }
  if (cfg_.rack_aggregation) {
    if (!cfg_.topology.active()) {
      throw std::invalid_argument(
          "rack aggregation requires an active topology");
    }
    if (cfg_.dedicated_servers) {
      throw std::invalid_argument(
          "rack aggregation requires colocated servers (the aggregator node "
          "hosts a worker process)");
    }
  }
  if (cfg_.faults.lease_duration.has_value() && cfg_.faults.skewed()) {
    const TimeS lease = *cfg_.faults.lease_duration;
    const TimeS margin = 2.0 * cfg_.faults.clock_drift_rate * lease;
    if (margin + cfg_.heartbeat_period >= lease / 2.0) {
      throw std::invalid_argument(
          "clock drift bound too large for the lease: the drift margin plus "
          "one heartbeat period must stay below half the lease duration");
    }
  }

  Rng placement_rng(cfg_.seed);
  partition_ =
      sync_.slicing
          ? core::partition_p3(workload_.model, cfg_.n_workers,
                               cfg_.slice_params)
          : core::partition_kvstore(workload_.model, cfg_.n_workers,
                                    cfg_.kvstore_threshold, placement_rng);

  if (!cfg_.fwd_times.empty()) {
    const auto n = static_cast<std::size_t>(workload_.model.num_layers());
    if (cfg_.fwd_times.size() != n || cfg_.bwd_times.size() != n) {
      throw std::invalid_argument("compute override size mismatch");
    }
    profile_.fwd = cfg_.fwd_times;
    profile_.bwd = cfg_.bwd_times;
  } else {
    profile_ = model::make_profile(workload_.model, workload_.iter_compute_time);
  }

  net::NetworkConfig net_cfg;
  net_cfg.rate = cfg_.bandwidth;
  net_cfg.rx_rate = cfg_.rx_bandwidth;
  net_cfg.latency = cfg_.latency;
  net_cfg.topology = cfg_.topology;  // validated by the network constructor
  net_ = std::make_unique<net::Network>(sim_, total_nodes(), net_cfg);

  // Rack-scale hierarchy: both planes arm only when configured, so flat
  // runs post the exact pre-hierarchy event sequence.
  hierarchy_on_ = cfg_.topology.active();
  agg_on_ = cfg_.rack_aggregation;
  if (hierarchy_on_) {
    node_rack_.assign(static_cast<std::size_t>(total_nodes()), -1);
    const int n_racks = cfg_.topology.n_racks();
    rack_agg_.resize(static_cast<std::size_t>(n_racks));
    rack_workers_.resize(static_cast<std::size_t>(n_racks));
    for (int r = 0; r < n_racks; ++r) {
      const auto rr = static_cast<std::size_t>(r);
      rack_agg_[rr] = cfg_.topology.aggregator_of(r);
      for (const int node : cfg_.topology.racks[rr]) {
        node_rack_[static_cast<std::size_t>(node)] = r;
        if (node < n_total_workers()) rack_workers_[rr].push_back(node);
      }
    }
  }
  if (agg_on_) {
    agg_rounds_.resize(static_cast<std::size_t>(total_nodes()));
    agg_combined_pushes_ =
        &registry_.counter("hierarchy.agg_combined_pushes");
    agg_param_broadcasts_ =
        &registry_.counter("hierarchy.agg_param_broadcasts");
    agg_fallback_pushes_ =
        &registry_.counter("hierarchy.agg_fallback_pushes");
  }

  cfg_.faults.validate(cfg_.dedicated_servers ? 2 * cfg_.n_workers
                                              : cfg_.n_workers,
                       cfg_.replication);
  if (cfg_.faults.active()) {
    faults_ = std::make_unique<net::FaultInjector>(
        cfg_.faults, cfg_.seed ^ 0xfa0175eedULL);
    net_->attach_faults(faults_.get());
  }
  // The ack/retransmit/dedup layer arms itself exactly when something can
  // go wrong (or when forced); a fault-free run posts the pre-reliability
  // event sequence bit for bit.
  reliable_ = cfg_.faults.active() || cfg_.reliable_transport;
  seen_.resize(static_cast<std::size_t>(total_nodes()));
  dedup_floor_.assign(static_cast<std::size_t>(total_nodes()), 0);
  rto_rng_ = Rng(cfg_.seed ^ 0x9e3779b97f4a7c15ULL);

  // The membership plane (heartbeats, replication, failover, rejoin) arms
  // exactly when a crash is planned, shards are replicated, or a test
  // forces it — otherwise nothing new is spawned and runs stay
  // bit-identical to the pre-membership engine.
  // DSSP always arms it: the staleness gate's liveness contract leans on
  // membership views (dead stragglers and minority-fenced workers leave the
  // min-clock through suspicion / quorum, never by fiat).
  dssp_on_ = cfg_.method == core::SyncMethod::kDSSP;
  membership_on_ = cfg_.force_membership || cfg_.replication > 1 ||
                   !cfg_.faults.crashes.empty() ||
                   !cfg_.faults.joins.empty() ||
                   !cfg_.faults.leaves.empty() || cfg_.autoscaler.enabled ||
                   cfg_.faults.lease_duration.has_value() || dssp_on_;
  leases_on_ = membership_on_ && cfg_.faults.lease_duration.has_value();
  lease_len_ = leases_on_ ? *cfg_.faults.lease_duration : 0.0;
  // Partition degraded mode (parking, echo-gated self-leases, quorum-gated
  // fencing, heal re-admission) arms only when partitions are planned, so
  // every partition-free run keeps the exact pre-partition event sequence.
  partition_plane_ = membership_on_ && !cfg_.faults.partitions.empty();
  // Per-node clock drift: rates and offsets are sampled from a dedicated
  // seeded stream only when armed — skew-free runs consume no randomness.
  drift_on_ = membership_on_ && cfg_.faults.skewed();
  if (drift_on_) {
    Rng drift_rng(cfg_.seed ^ 0xc10cd1f7ab5eedULL);
    clock_rate_.resize(static_cast<std::size_t>(total_nodes()));
    clock_offset_.resize(static_cast<std::size_t>(total_nodes()));
    for (int n = 0; n < total_nodes(); ++n) {
      clock_rate_[static_cast<std::size_t>(n)] =
          cfg_.faults.clock_drift_rate * (2.0 * drift_rng.uniform() - 1.0);
      clock_offset_[static_cast<std::size_t>(n)] =
          cfg_.faults.clock_offset_bound * (2.0 * drift_rng.uniform() - 1.0);
    }
  }
  node_state_.resize(static_cast<std::size_t>(total_nodes()));
  // Elastic joiners exist as dark nodes until their NodeJoin executes.
  for (int j = cfg_.n_workers; j < n_total_workers(); ++j) {
    auto& ns = node_state_[static_cast<std::size_t>(j)];
    ns.up = false;
    ns.joined = false;
  }

  const int layers = workload_.model.num_layers();
  const auto n_slices = static_cast<std::size_t>(partition_.num_slices());
  for (int w = 0; w < n_total_workers(); ++w) {
    const bool joiner = w >= cfg_.n_workers;
    auto ws = std::make_unique<WorkerState>(sim_);
    ws->gates.reserve(static_cast<std::size_t>(layers));
    for (int l = 0; l < layers; ++l) {
      ws->gates.push_back(std::make_unique<sim::VersionGate>(sim_));
    }
    ws->param_bytes.assign(static_cast<std::size_t>(layers), 0);
    ws->notify_count.assign(static_cast<std::size_t>(layers), 0);
    ws->rng = Rng(cfg_.seed + 1000003ULL * static_cast<std::uint64_t>(w + 1));
    // Base workers hold the initial weights; a joiner's process does not
    // exist yet and will sync parameters through the join handshake.
    ws->recv_version.assign(n_slices, joiner ? -1 : 0);
    ws->recv_bytes.assign(n_slices, 0);
    ws->recv_inflight.assign(n_slices, -1);
    ws->last_push_iter.assign(n_slices, -1);
    if (membership_on_) {
      ws->notify_version.assign(n_slices, -1);
      ws->pulled_round.assign(static_cast<std::size_t>(layers), -1);
    }
    ws->sendq_gauge = &registry_.gauge(lane("w", w, ".sendq_depth"));
    workers_.push_back(std::move(ws));

    auto ss = std::make_unique<ServerState>(sim_);
    ss->round_bytes.assign(n_slices, 0);
    ss->version.assign(n_slices, 0);
    ss->pending.resize(n_slices);
    if (membership_on_) {
      ss->contrib.assign(n_slices,
                         std::vector<Bytes>(
                             static_cast<std::size_t>(n_total_workers()), 0));
      // A joiner is never waited for until its join handshake opens a
      // bounded-staleness window (beacons alone must not add it to the
      // expected set).
      ss->active_from.assign(
          n_slices, std::vector<std::int64_t>(
                        static_cast<std::size_t>(n_total_workers()), 0));
      for (auto& row : ss->active_from) {
        for (int j = cfg_.n_workers; j < n_total_workers(); ++j) {
          row[static_cast<std::size_t>(j)] =
              std::numeric_limits<std::int64_t>::max();
        }
      }
      ss->sync_epoch.assign(n_slices, -1);
    }
    ss->rxq_gauge = &registry_.gauge(lane("n", server_node(w), ".rxq_depth"));
    servers_.push_back(std::move(ss));
  }

  if (membership_on_) {
    MembershipConfig mcfg;
    mcfg.n_nodes = total_nodes();
    mcfg.heartbeat_period = cfg_.heartbeat_period;
    mcfg.suspicion_timeout = cfg_.suspicion_timeout;
    for (int n = 0; n < total_nodes(); ++n) {
      membership_.push_back(std::make_unique<Membership>(mcfg, n));
      for (int j = cfg_.n_workers; j < n_total_workers(); ++j) {
        membership_.back()->mark_unjoined(j);
      }
      if (drift_on_) {
        // The detector compares node-local clocks against node-local
        // last-heard stamps; seed the stamps with this node's clock at
        // sim-time zero so a pure offset never manufactures suspicion.
        membership_.back()->reset(local_now(n));
      }
      leadership_.push_back(std::make_unique<ShardLeadership>(
          n_servers(), cfg_.replication, n_total_servers()));
      if (leases_on_) {
        // Grant the initial leases: every home primary starts with one full
        // lease of grace before any observer may act on its silence. Lease
        // deadlines live on the observing node's clock.
        for (int g = 0; g < n_servers(); ++g) {
          leadership_.back()->renew_lease(g, local_now(n) + lease_len_);
        }
      }
    }
    ckpt_versions_.assign(static_cast<std::size_t>(n_total_servers()),
                          std::vector<std::int64_t>(n_slices, 0));
    pending_failover_.resize(static_cast<std::size_t>(total_nodes()));
    fenced_.resize(static_cast<std::size_t>(total_nodes()));
    // Optimistic self-leases (as if a chain-peer beacon arrived at t = 0),
    // mirroring the detector's optimistic start.
    self_lease_.resize(static_cast<std::size_t>(total_nodes()));
    for (int n = 0; n < total_nodes(); ++n) {
      self_lease_[static_cast<std::size_t>(n)].assign(
          static_cast<std::size_t>(n_servers()),
          local_now(n) + lease_len_ / 2.0);
    }
    if (partition_plane_) {
      parked_.resize(static_cast<std::size_t>(n_total_workers()));
      quorum_denied_.resize(static_cast<std::size_t>(total_nodes()));
    }
    acting_.assign(
        static_cast<std::size_t>(n_total_servers()),
        std::vector<Acting>(static_cast<std::size_t>(n_servers())));
    for (int g = 0; g < n_servers(); ++g) {
      // Home primaries act from the start (not counted as dual windows).
      auto& a = acting_[static_cast<std::size_t>(g)][static_cast<std::size_t>(g)];
      a.open = true;
      a.since = 0.0;
    }
  }

  // Voluntary drain + SLO-driven autoscaling: the scale plane arms only
  // when leaves are planned or the policy is enabled, so every
  // fixed-membership run keeps the exact pre-autoscaler event sequence and
  // registry contents.
  scale_plane_ = membership_on_ && (!cfg_.faults.leaves.empty() ||
                                    cfg_.autoscaler.enabled);
  if (scale_plane_) {
    group_push_bytes_.assign(static_cast<std::size_t>(n_servers()), 0.0);
    if (hierarchy_on_) {
      rack_group_push_bytes_.assign(
          static_cast<std::size_t>(cfg_.topology.n_racks()),
          std::vector<double>(static_cast<std::size_t>(n_servers()), 0.0));
    }
    shed_parked_.resize(static_cast<std::size_t>(n_total_workers()));
    standby_next_ = cfg_.n_workers + static_cast<int>(cfg_.faults.joins.size());
    // Shedding targets the bottom half of the priority range (higher value
    // = less urgent). With a flat priority space there is nothing "lowest"
    // to shed and the cutoff disables shedding.
    int max_prio = 0;
    for (std::int64_t s = 0; s < partition_.num_slices(); ++s) {
      max_prio = std::max(max_prio, item_priority(s));
    }
    shed_cutoff_ = max_prio / 2 + 1;
    drains_started_ = &registry_.counter("scale.drains_started");
    drains_completed_ = &registry_.counter("scale.drains_completed");
    scale_decisions_ = &registry_.counter("scale.decisions");
    sheds_ = &registry_.counter("scale.sheds");
    slo_violation_ticks_ = &registry_.counter("scale.slo_violation_ticks");
    if (cfg_.autoscaler.enabled) {
      AutoscalerConfig acfg = cfg_.autoscaler;
      if (acfg.queue_gauges.empty()) {
        for (int w = 0; w < n_total_workers(); ++w) {
          acfg.queue_gauges.push_back(lane("w", w, ".sendq_depth"));
        }
        for (int n = 0; n < total_nodes(); ++n) {
          acfg.queue_gauges.push_back(lane("n", n, ".rxq_depth"));
        }
      }
      autoscaler_ = std::make_unique<Autoscaler>(acfg, &registry_);
    }
  }

  // DSSP bounded-staleness gate: state, controller and metrics exist only
  // for the DSSP method, so every other method keeps the exact pre-DSSP
  // event sequence and registry contents.
  if (dssp_on_) {
    staleness_ = std::make_unique<StalenessController>(cfg_.staleness);
    dssp_gate_ = std::make_unique<sim::VersionGate>(sim_);
    dssp_clock_.assign(static_cast<std::size_t>(n_total_workers()), -1);
    dssp_blocked_.assign(static_cast<std::size_t>(n_total_workers()), false);
    dssp_need_.assign(static_cast<std::size_t>(n_total_workers()), 0);
    dssp_future_.resize(static_cast<std::size_t>(n_total_servers()));
    dssp_gate_blocks_ = &registry_.counter("dssp.gate_blocks");
    staleness_violations_ = &registry_.counter("dssp.staleness_violations");
    gate_wedge_ticks_ = &registry_.counter("dssp.gate_wedge_ticks");
    dssp_wait_hist_ = &registry_.histogram(
        "dssp.gate_wait_s",
        {0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.5, 1.0});
    for (int w = 0; w < n_total_workers(); ++w) {
      dssp_gap_gauge_.push_back(
          &registry_.gauge(lane("w", w, ".dssp_clock_gap")));
    }
  } else {
    dssp_clock_.assign(static_cast<std::size_t>(n_total_workers()), -1);
  }
}

Cluster::~Cluster() = default;

void Cluster::attach_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  net_->attach_tracer(tracer);
}

void Cluster::attach_timeline(trace::Timeline* timeline) {
  attach_tracer(timeline == nullptr ? nullptr : &timeline->tracer());
}

void Cluster::mem_mark(int node, const char* label) {
  if (tracing()) {
    tracer_->span(lane("n", node, ".mem"), sim_.now(), sim_.now(), label);
  }
}

void Cluster::lc(obs::Stage stage, int worker, std::int64_t slice,
                 std::int64_t iteration, Bytes bytes) {
  const auto& sl = partition_.slices[static_cast<std::size_t>(slice)];
  tracer_->lifecycle(stage, worker, slice, sl.layer, iteration,
                     item_priority(slice), bytes, sim_.now());
}

void Cluster::sendq_depth_changed(int w, std::int64_t delta) {
  auto& ws = *workers_[static_cast<std::size_t>(w)];
  ws.sendq_depth += delta;
  ws.sendq_gauge->set(static_cast<double>(ws.sendq_depth));
  if (tracing()) {
    tracer_->counter(lane("w", w, ".sendq"), sim_.now(),
                     static_cast<double>(ws.sendq_depth));
  }
}

void Cluster::rxq_depth_changed(int server, std::int64_t delta) {
  auto& ss = *servers_[static_cast<std::size_t>(server)];
  ss.rxq_depth += delta;
  ss.rxq_gauge->set(static_cast<double>(ss.rxq_depth));
  if (tracing()) {
    tracer_->counter(lane("n", server_node(server), ".rxq"), sim_.now(),
                     static_cast<double>(ss.rxq_depth));
  }
}

Bytes Cluster::wire_payload(Bytes logical) const {
  if (cfg_.wire_compression <= 1.0) return logical;
  const auto compressed = static_cast<Bytes>(
      static_cast<double>(logical) / cfg_.wire_compression);
  return std::max<Bytes>(compressed, 1);
}

int Cluster::item_priority(std::int64_t slice) const {
  if (!sync_.priority) return 0;  // FIFO: ties broken by sequence number
  return partition_.slices[static_cast<std::size_t>(slice)].priority;
}

double Cluster::jitter_factor(WorkerState& ws) {
  if (cfg_.compute_jitter <= 0.0) return 1.0;
  return std::max(0.2, ws.rng.normal(1.0, cfg_.compute_jitter));
}

TimeS Cluster::initial_rto(const net::Message& m) const {
  if (cfg_.fixed_rto > 0.0) return cfg_.fixed_rto;
  // Generous floor: a round trip plus one full serialization of this
  // message per incast participant (n pushes can queue ahead of it at the
  // server's RX channel). A spurious timeout is safe — dedup makes
  // retransmission idempotent — but wastes wire bytes, so err high and let
  // exponential backoff absorb real congestion.
  return cfg_.min_rto + 2.0 * cfg_.latency +
         static_cast<double>(cfg_.n_workers + 2) *
             transfer_time(m.bytes, cfg_.bandwidth);
}

bool Cluster::reachable(int node) const {
  if (!membership_on_) return true;
  const auto& ns = node_state_[static_cast<std::size_t>(node)];
  if (ns.up) return true;
  // Down but restarting: the retransmission layer bridges the outage.
  return !permanently_down(node);
}

bool Cluster::permanently_down(int node) const {
  const auto& ns = node_state_[static_cast<std::size_t>(node)];
  if (ns.retired) return true;  // invariant 12: retirement is forever
  if (ns.up) return false;
  for (const auto& c : cfg_.faults.crashes) {
    if (c.node == node && c.restarts() &&
        c.restart_time() > ns.down_since) {
      return false;  // a restart is still scheduled
    }
  }
  return true;
}

void Cluster::arm_reliable(net::Message& m, int via_worker) {
  m.msg_id = next_msg_id_++;
  PendingTx pending;
  pending.msg = m;
  pending.rto = initial_rto(m);
  pending.via_worker = via_worker;
  pending_tx_.emplace(m.msg_id, std::move(pending));
}

void Cluster::schedule_retx_timer(std::int64_t msg_id, TimeS delay) {
  if (cfg_.rto_jitter > 0.0) {
    delay += delay * cfg_.rto_jitter * rto_rng_.uniform();
  }
  sim_.schedule(delay, [this, msg_id] { on_retx_timeout(msg_id); });
}

void Cluster::on_retx_timeout(std::int64_t msg_id) {
  const auto it = pending_tx_.find(msg_id);
  if (it == pending_tx_.end()) return;  // acked; the timer is a no-op
  ++timeouts_fired_;
  PendingTx& pending = it->second;
  // Exponential backoff to a bounded ceiling: a node down for seconds keeps
  // being probed at max_rto rate instead of the timer doubling away.
  pending.rto = std::min(pending.rto * cfg_.rto_backoff, cfg_.max_rto);
  if (pending.via_worker >= 0) {
    if (pending.queued) return;  // defensive: already awaiting the sender
    pending.queued = true;
    auto& ws = *workers_[static_cast<std::size_t>(pending.via_worker)];
    SendItem item;
    item.slice = pending.msg.slice;
    item.kind = pending.msg.kind;
    item.iteration = pending.msg.iteration;
    item.priority = pending.msg.priority;
    item.seq = ws.send_seq++;
    item.retx_id = msg_id;
    ws.sendq.push(item);
    sendq_depth_changed(pending.via_worker, +1);
    if (tracing()) {
      lc(obs::Stage::kEnqueue, pending.via_worker, pending.msg.slice,
         pending.msg.iteration, pending.msg.logical);
    }
    // No timer while queued; the sender arms one when the copy hits the
    // wire, so send-queue backlog never counts against the RTO.
  } else {
    ++retransmits_;
    if (tracing()) {
      tracer_->span(lane("n", pending.msg.src, ".rtx"), sim_.now(), sim_.now(),
                    "r" + net::message_label(pending.msg));
    }
    net_->post(pending.msg);
    schedule_retx_timer(msg_id, pending.rto);
  }
}

bool Cluster::accept_reliable(int node, const net::Message& m) {
  // The sender decides: only tracked messages carry a msg_id, and every
  // tracked message must be acked — commit_round arms kReplicate copies
  // even when the loss-recovery layer itself is disarmed (fault-free runs
  // with replication > 1 still need the commit barrier to come down).
  if (m.msg_id < 0) return true;
  // Always ack, even duplicates: the previous ack may itself have been
  // dropped, and the sender keeps retransmitting until one gets through.
  net::Message ack;
  ack.src = node;
  ack.dst = m.src;
  ack.kind = net::MsgKind::kAck;
  ack.slice = m.slice;
  ack.layer = m.layer;
  ack.worker = m.worker;
  ack.msg_id = m.msg_id;
  ack.bytes = net::kAckBytes;
  net_->post(ack);
  ++acks_sent_;
  if (m.msg_id < dedup_floor_[static_cast<std::size_t>(node)]) {
    // Below the watermark: the id was GC'd from the table, which is only
    // possible once no sender can retransmit it — any copy is a duplicate.
    ++duplicates_suppressed_;
    return false;
  }
  if (!seen_[static_cast<std::size_t>(node)].insert(m.msg_id).second) {
    ++duplicates_suppressed_;
    return false;
  }
  maybe_gc_dedup(node);
  return true;
}

void Cluster::maybe_gc_dedup(int node) {
  auto& seen = seen_[static_cast<std::size_t>(node)];
  if (seen.size() < kDedupGcThreshold) return;
  // Every id below the oldest still-pending send is final: its sender either
  // got the ack or gave up for good, so no copy of it can ever be posted
  // again. Anything still retransmitting pins the floor.
  std::int64_t floor = next_msg_id_;
  for (const auto& [id, tx] : pending_tx_) floor = std::min(floor, id);
  auto& mark = dedup_floor_[static_cast<std::size_t>(node)];
  if (floor <= mark) return;
  mark = floor;
  for (auto it = seen.begin(); it != seen.end();) {
    it = *it < floor ? seen.erase(it) : std::next(it);
  }
}

void Cluster::post_tracked(net::Message m) {
  if (membership_on_ && !reachable(m.dst)) return;  // nobody to deliver to
  if (reliable_ && m.src != m.dst) {
    arm_reliable(m, -1);
    const TimeS rto = pending_tx_.at(m.msg_id).rto;
    net_->post(m);
    schedule_retx_timer(m.msg_id, rto);
  } else {
    net_->post(m);
  }
}

void Cluster::enqueue_push(int w, std::int64_t slice, std::int64_t iteration,
                           bool direct) {
  auto& ws = *workers_[static_cast<std::size_t>(w)];
  const auto& sl = partition_.slices[static_cast<std::size_t>(slice)];
  ws.last_push_iter[static_cast<std::size_t>(slice)] = iteration;
  Bytes remaining = sl.payload_bytes();
  // Fragment large shards (ps-lite serialization); each fragment is a
  // separate message, so priority preemption also works mid-layer.
  while (remaining > 0) {
    SendItem item;
    item.slice = slice;
    item.kind = net::MsgKind::kPushGradient;
    item.iteration = iteration;
    item.payload = std::min(remaining, cfg_.fragment_bytes);
    item.priority = item_priority(slice);
    item.seq = ws.send_seq++;
    item.direct = direct;
    ws.sendq.push(item);
    sendq_depth_changed(w, +1);
    if (tracing()) lc(obs::Stage::kEnqueue, w, slice, iteration, item.payload);
    remaining -= item.payload;
  }
}

int Cluster::slice_dst_node(int worker, std::int64_t slice) const {
  const auto& sl = partition_.slices[static_cast<std::size_t>(slice)];
  if (!membership_on_) return server_node(sl.server);
  return server_node(
      leadership_[static_cast<std::size_t>(worker)]->primary(sl.server));
}

void Cluster::enqueue_pull(int w, std::int64_t slice, std::int64_t iteration) {
  // Pull requests are tiny control messages; like TCP small packets they
  // interleave with bulk data rather than queueing behind it, so they are
  // posted directly instead of going through the bulk send queue.
  const auto& sl = partition_.slices[static_cast<std::size_t>(slice)];
  net::Message m;
  m.src = w;
  m.dst = slice_dst_node(w, slice);
  m.kind = net::MsgKind::kPullRequest;
  m.slice = slice;
  m.layer = sl.layer;
  m.priority = item_priority(slice);
  m.iteration = iteration;
  m.worker = w;
  m.bytes = net::kControlBytes;
  if (tracing()) {
    m.trace_id = obs::make_trace_id(slice, iteration, w);
    lc(obs::Stage::kPull, w, slice, iteration, 0);
  }
  post_tracked(m);
  ++pulls_sent_;
}

sim::Task Cluster::worker_loop(int w, std::int64_t start_iter) {
  auto& ws = *workers_[static_cast<std::size_t>(w)];
  const auto wn = static_cast<std::size_t>(w);
  const std::int64_t my_epoch = node_state_[wn].epoch;
  const int layers = workload_.model.num_layers();
  if (dssp_on_) dssp_set_clock(w, start_iter);  // (re)enter the min-clock
  for (std::int64_t iter = start_iter; iter < target_iterations_; ++iter) {
    const double jitter = jitter_factor(ws);
    const TimeS iter_t0 = sim_.now();
    TimeS stall = 0.0;
    std::int64_t fwd_floor = iter;
    if (dssp_on_) {
      // --- DSSP staleness gate ---
      // Entering iteration `iter` at clock `iter`: block until the monotone
      // floor of the min eligible clock reaches `iter - s`, with s captured
      // from the controller at block time.
      dssp_set_clock(w, iter);
      const std::int64_t s = staleness_->bound();
      const std::int64_t need = iter - s;
      const TimeS gate_t0 = sim_.now();
      if (need > dssp_gate_->version()) {
        ++(*dssp_gate_blocks_);
        dssp_blocked_[wn] = true;
        dssp_need_[wn] = need;
        co_await dssp_gate_->wait_for(need);
        if (node_state_[wn].epoch != my_epoch) co_return;  // crashed gated
        dssp_blocked_[wn] = false;
        if (tracing()) {
          tracer_->span(lane("w", w, ".ssp"), gate_t0, sim_.now(), "ssp");
        }
      }
      const TimeS waited = sim_.now() - gate_t0;
      // Ground-truth bound audit: a fresh re-derivation of the floor must
      // cover what the gate just released (PROTOCOL.md inv. 13).
      if (need > dssp_advance_gate()) ++(*staleness_violations_);
      dssp_wait_hist_->observe(waited);
      dssp_wait_sum_ += waited;
      ++dssp_passages_;
      staleness_->observe(sim_.now(), waited);
      // The forward pass runs on parameters up to s rounds stale (the SSP
      // relaxation); capture the bound once so every layer of this
      // iteration waits on the same target.
      fwd_floor = std::max<std::int64_t>(0, iter - staleness_->bound());
    }
    // --- forward propagation ---
    for (int l = 0; l < layers; ++l) {
      if (!partition_.layer_slices[static_cast<std::size_t>(l)].empty()) {
        const TimeS wait_from = sim_.now();
        co_await ws.gates[static_cast<std::size_t>(l)]->wait_for(fwd_floor);
        if (node_state_[wn].epoch != my_epoch) co_return;  // crashed
        stall += sim_.now() - wait_from;
      }
      const TimeS t0 = sim_.now();
      co_await sim_.sleep(profile_.fwd[static_cast<std::size_t>(l)] * jitter);
      if (node_state_[wn].epoch != my_epoch) co_return;
      if (tracing()) {
        tracer_->span(lane("w", w, ".cmp"), t0, sim_.now(),
                      "F" + std::to_string(l + 1));
      }
    }
    // --- backward propagation (reverse order) ---
    for (int l = layers - 1; l >= 0; --l) {
      const TimeS t0 = sim_.now();
      co_await sim_.sleep(profile_.bwd[static_cast<std::size_t>(l)] * jitter);
      if (node_state_[wn].epoch != my_epoch) co_return;
      if (tracing()) {
        tracer_->span(lane("w", w, ".cmp"), t0, sim_.now(),
                      "B" + std::to_string(l + 1));
      }
      // Wait-free backpropagation: the layer's slices enter the send queue
      // the moment its gradients exist.
      for (auto slice : partition_.layer_slices[static_cast<std::size_t>(l)]) {
        if (tracing()) lc(obs::Stage::kGradReady, w, slice, iter, 0);
        enqueue_push(w, slice, iter);
      }
    }
    if (sync_.deferred_pull) {
      // TensorFlow-style: pulls for every key are issued together at the
      // start of the next graph execution, in forward order.
      for (int l = 0; l < layers; ++l) {
        for (auto slice :
             partition_.layer_slices[static_cast<std::size_t>(l)]) {
          enqueue_pull(w, slice, iter);
        }
      }
    }
    ws.iter_done.push_back(sim_.now());
    ws.iter_stall.push_back(stall);
    iter_time_hist_.observe(sim_.now() - iter_t0);
    stall_time_hist_.observe(stall);
  }
  // A finished worker leaves the min-clock (its clock would otherwise
  // freeze and wedge the still-running stragglers).
  if (dssp_on_) dssp_set_clock(w, -1);
  if (!ws.finished) {
    ws.finished = true;
    ++workers_finished_;
  }
}

sim::Task Cluster::worker_sender(int w) {
  auto& ws = *workers_[static_cast<std::size_t>(w)];
  const auto wn = static_cast<std::size_t>(w);
  for (;;) {
    SendItem item = co_await ws.sendq.pop();
    sendq_depth_changed(w, -1);
    if (membership_on_ && !node_state_[wn].up) continue;  // dead process
    if (item.retx_id >= 0) {
      // Retransmission: it competed in the priority queue at the original
      // slice priority, so urgent traffic still preempts it under loss.
      auto it = pending_tx_.find(item.retx_id);
      if (it == pending_tx_.end()) continue;  // acked while queued
      if (partition_plane_ && it->second.msg.dst != w &&
          membership_[wn]->joined(it->second.msg.dst) &&
          !membership_[wn]->alive(it->second.msg.dst) &&
          reachable(it->second.msg.dst)) {
        // Degraded mode: the destination is dead in this worker's view but
        // will be back (partition heal / restart) — park the copy instead
        // of burning wire on a severed link. `queued` stays set, so the
        // retransmission timer stays quiet until a revival beacon drains
        // the parking lot. Permanently-down destinations are not parked:
        // the legacy drop path applies.
        item.parked_at = sim_.now();
        parked_[wn].push_back(item);
        ++parked_pushes_;
        continue;
      }
      it->second.queued = false;
      const net::Message m = it->second.msg;
      ++retransmits_;
      if (tracing()) {
        tracer_->span(lane("n", m.src, ".rtx"), sim_.now(), sim_.now(),
                      "r" + net::message_label(m));
      }
      if (cfg_.send_overhead > 0.0) co_await sim_.sleep(cfg_.send_overhead);
      if (tracing()) lc(obs::Stage::kSend, w, m.slice, m.iteration, m.bytes);
      co_await net_->send(m);
      // Only re-arm the timer if the ack didn't land mid-send.
      const auto it2 = pending_tx_.find(item.retx_id);
      if (it2 != pending_tx_.end()) {
        schedule_retx_timer(item.retx_id, it2->second.rto);
      }
      continue;
    }
    if (shed_active_ && should_shed(item)) {
      // Graceful overload degradation: over capacity with nothing left to
      // admit, low-priority pushes wait out the shed window instead of
      // competing for the saturated link. They re-enter the send queue at
      // expiry — delayed contributions, never dropped (the ledger's
      // per-worker cap keeps the merge exactly-once regardless).
      item.parked_at = sim_.now();
      shed_parked_[wn].push_back(item);
      ++*sheds_;
      continue;
    }
    const auto& sl = partition_.slices[static_cast<std::size_t>(item.slice)];
    net::Message m;
    m.src = w;
    m.dst = slice_dst_node(w, item.slice);  // current leader in w's view
    m.kind = item.kind;
    m.slice = item.slice;
    m.layer = sl.layer;
    m.priority = item.priority;
    m.iteration = item.iteration;
    m.worker = w;
    m.logical = item.payload;
    m.bytes = wire_payload(item.payload) + net::kHeaderBytes;
    if (dssp_on_ && item.kind == net::MsgKind::kPushGradient) {
      // The held-params floor rides along with every push: rounds below it
      // were released to this worker, hence committed cluster-wide. An
      // adopted shard that is behind this floor fast-forwards to it
      // instead of holding a round open that no re-push will ever fund
      // (adoption re-pushes start at the worker's recv floor).
      m.version = std::max<std::int64_t>(
          0, ws.recv_version[static_cast<std::size_t>(item.slice)]);
    }
    if (tracing()) {
      m.trace_id = obs::make_trace_id(item.slice, item.iteration, w);
    }
    if (agg_on_ && item.kind == net::MsgKind::kPushGradient) {
      if (item.agg_id >= 0) {
        // Forwarding leg of a rack pre-reduction: straight to the shard
        // leader, carrying the contributor cover.
        m.agg_id = item.agg_id;
      } else if (!item.direct) {
        const int agg = rack_agg_node(node_rack_[wn]);
        if (agg_usable(w, agg)) {
          // Fast path: fold at the rack aggregator first (a self-addressed
          // copy when this worker *is* the aggregator — pure loopback).
          m.kind = net::MsgKind::kRackPush;
          m.dst = agg;
        } else {
          ++*agg_fallback_pushes_;
        }
      } else {
        ++*agg_fallback_pushes_;
      }
    }
    if (partition_plane_ && m.dst != w && membership_[wn]->joined(m.dst) &&
        !membership_[wn]->alive(m.dst) && reachable(m.dst)) {
      // Fresh push toward a view-dead (but returning) destination: park the
      // queue item itself; on revival it re-enters the send queue and the
      // destination re-resolves against the then-current leadership view.
      item.parked_at = sim_.now();
      parked_[wn].push_back(item);
      ++parked_pushes_;
      continue;
    }
    if (membership_on_ && !reachable(m.dst)) continue;
    if (reliable_ && m.src != m.dst) arm_reliable(m, w);
    ++pushes_sent_;
    // Per-message CPU cost on the sender thread, then a blocking send: the
    // consumer only dequeues the next (highest priority) item once this
    // message has fully serialized onto the NIC.
    if (cfg_.send_overhead > 0.0) co_await sim_.sleep(cfg_.send_overhead);
    if (tracing()) {
      lc(obs::Stage::kSend, w, item.slice, item.iteration, m.bytes);
    }
    co_await net_->send(m);
    if (m.msg_id >= 0) {
      const auto it = pending_tx_.find(m.msg_id);
      if (it != pending_tx_.end()) {
        schedule_retx_timer(m.msg_id, it->second.rto);
      }
    }
  }
}

void Cluster::on_replicate_ack(std::int64_t msg_id) {
  const auto it = replicate_wait_.find(msg_id);
  if (it == replicate_wait_.end()) return;
  const std::int64_t key = it->second;
  replicate_wait_.erase(it);
  const auto cit = commits_.find(key);
  if (cit == commits_.end()) return;
  CommitState& cs = cit->second;
  if (--cs.outstanding > 0) return;
  // Commit barrier down: every live backup holds the new state, so losing
  // the primary can no longer roll the round back. Release to workers.
  const CommitState done = cs;
  commits_.erase(cit);
  release_round(done.server, done.slice, done.round);
}

sim::Task Cluster::node_demux(int n) {
  // Colocated mode: node n hosts worker n and server n. Dedicated mode:
  // nodes [0, n_workers) host workers, [n_workers, 2*n_workers) servers.
  const int server_idx = server_of_node(n);
  const auto nn = static_cast<std::size_t>(n);
  for (;;) {
    net::Message m = co_await net_->inbox(n).pop();
    if (membership_on_ && !node_state_[nn].up) continue;  // dead process
    if (m.kind == net::MsgKind::kAck) {
      // Delivery confirmed: retire the sender-side retransmission state
      // (any outstanding timer becomes a no-op).
      pending_tx_.erase(m.msg_id);
      if (membership_on_) {
        on_replicate_ack(m.msg_id);
        on_migrate_ack(m.msg_id);
      }
      continue;
    }
    if (m.kind == net::MsgKind::kHeartbeat) {
      if (scale_plane_ &&
          node_state_[static_cast<std::size_t>(m.src)].retired) {
        // Invariant 12: retirement is forever. The goodbye at retirement
        // supersedes every beacon the node posted before leaving; a stale
        // one still in the fabric must not resurrect the node in this
        // receiver's view.
        continue;
      }
      // Beacons are fire-and-forget and not protocol goodput. The receipt
      // stamp is this node's local clock — the detector only ever compares
      // it against the same clock. m.version carries the sender's liveness
      // belief about *this* node (the echo the partition plane gates
      // self-lease renewal on).
      const auto effect =
          membership_[nn]->record_heartbeat(m.src, m.iteration, local_now(n));
      if (leases_on_ || effect.superseded ||
          (partition_plane_ && effect.revived)) {
        on_beacon(n, m.src, effect, m.version != 0);
      }
      continue;
    }
    if (m.kind != net::MsgKind::kBackground) {
      if (!accept_reliable(n, m)) continue;  // duplicate suppressed
      goodput_bytes_ += m.bytes;
    }
    switch (m.kind) {
      case net::MsgKind::kPushGradient:
      case net::MsgKind::kPullRequest: {
        if (server_idx < 0) throw std::logic_error("PS traffic at worker node");
        auto& ss = *servers_[static_cast<std::size_t>(server_idx)];
        RxItem item;
        item.msg = m;
        item.priority = m.priority;
        item.seq = ss.rx_seq++;
        ss.rxq.push(item);
        rxq_depth_changed(server_idx, +1);
        break;
      }
      case net::MsgKind::kNotify:
        worker_on_notify(n, m);
        break;
      case net::MsgKind::kParams:
        worker_on_param(n, m);
        break;
      case net::MsgKind::kReplicate: {
        // Backup copy of a completed round: versioned state replacement,
        // idempotent under retransmission (stale versions are no-ops).
        if (server_idx < 0) throw std::logic_error("replica at worker node");
        auto& ss = *servers_[static_cast<std::size_t>(server_idx)];
        const auto si = static_cast<std::size_t>(m.slice);
        if (m.version > ss.version[si]) ss.version[si] = m.version;
        break;
      }
      case net::MsgKind::kNewPrimary: {
        // m.slice = group, m.iteration = epoch, m.worker = primary server.
        // One adoption per node: the leadership view is shared by every
        // role the node hosts, so adopt once and, if the transition moved
        // the view and the node hosts a worker, trigger its re-push.
        const int group = static_cast<int>(m.slice);
        const bool moved =
            leadership_[nn]->adopt(group, m.iteration, m.worker);
        if (moved) {
          if (n < n_total_workers()) {
            worker_repush_group(n, group);
          }
          // A displaced local primary stops acting the moment it learns;
          // an installed one starts its self-lease clock fresh.
          if (server_idx >= 0) {
            if (leadership_[nn]->primary(group) == server_idx) {
              seed_self_lease(server_idx, group);
            }
            update_acting(server_idx, group);
          }
        } else if (n < n_total_workers() &&
                   (m.iteration < leadership_[nn]->epoch(group) ||
                    m.worker != leadership_[nn]->primary(group))) {
          // A redirect our view outranks (older epoch, or a lower-rank
          // primary at the same epoch): the sender is behind a handover we
          // already adopted and dropped the payload it bounced. Re-push the
          // group — the loop ends once the true leader's adoption lands.
          worker_repush_group(n, group);
        }
        break;
      }
      case net::MsgKind::kJoinRequest: {
        // A restarted worker asks to re-enter sync; every group this server
        // currently leads replies with fresh params and a bounded-staleness
        // expectation window.
        if (server_idx < 0) break;  // worker nodes ignore join broadcasts
        auto& ss = *servers_[static_cast<std::size_t>(server_idx)];
        const auto& lead = *leadership_[nn];
        for (std::int64_t s = 0; s < partition_.num_slices(); ++s) {
          const auto& sl = partition_.slices[static_cast<std::size_t>(s)];
          if (lead.primary(sl.server) != server_idx) continue;
          const auto si = static_cast<std::size_t>(s);
          ss.active_from[si][static_cast<std::size_t>(m.worker)] =
              ss.version[si] + cfg_.rejoin_slack;
          send_params(server_idx, s, m.worker);
        }
        break;
      }
      case net::MsgKind::kSyncRequest: {
        // A restarted server asks its group for the post-checkpoint delta.
        // Only the node that currently believes it leads the group answers,
        // so a rehydrating server can never adopt state from a stale
        // backup.
        if (server_idx < 0) break;
        const int group =
            partition_.slices[static_cast<std::size_t>(m.slice)].server;
        const auto& lease = leadership_[nn]->lease(group);
        if (lease.primary != server_idx) break;
        auto& ss = *servers_[static_cast<std::size_t>(server_idx)];
        const auto si = static_cast<std::size_t>(m.slice);
        net::Message reply;
        reply.src = n;
        reply.dst = m.src;
        reply.kind = net::MsgKind::kSyncData;
        reply.slice = m.slice;
        reply.layer = m.layer;
        reply.worker = server_idx;        // current leader
        reply.iteration = lease.epoch;    // leadership epoch
        reply.version = ss.version[si];
        const Bytes payload =
            m.version < ss.version[si]
                ? partition_.slices[si].payload_bytes()
                : 0;  // requester already current: header-only reply
        reply.logical = payload;
        reply.bytes = (payload > 0 ? wire_payload(payload) : 0) +
                      net::kControlBytes;
        post_tracked(reply);
        break;
      }
      case net::MsgKind::kSyncData: {
        if (server_idx < 0) break;
        auto& ss = *servers_[static_cast<std::size_t>(server_idx)];
        const auto si = static_cast<std::size_t>(m.slice);
        if (m.version > ss.version[si]) ss.version[si] = m.version;
        const int group = partition_.slices[si].server;
        leadership_[nn]->adopt(group, m.iteration, m.worker);
        update_acting(server_idx, group);
        ss.sync_epoch[si] = node_state_[nn].epoch;
        rehydration_bytes_ += m.logical;
        break;
      }
      case net::MsgKind::kServerJoin: {
        // A joining server asks for its deterministic share of the shard
        // groups; whichever node currently believes it leads a planned
        // group starts migrating it. Repeats are idempotent: a group
        // already migrating (or already handed over) is skipped.
        if (server_idx < 0) break;
        if (scale_plane_) {
          const auto& rs = node_state_[static_cast<std::size_t>(
              server_node(m.worker))];
          // A draining node stops accepting new shard leadership: a stale
          // admission ask racing the drain must not hand groups back to
          // the very node busy migrating them out.
          if (rs.draining || rs.retired) break;
        }
        for (const int g : rebalance_plan(m.worker)) {
          if (leadership_[nn]->primary(g) != server_idx) continue;
          start_migration(server_idx, g, m.worker);
        }
        break;
      }
      case net::MsgKind::kMigrate: {
        // Shard state (parameters + optimizer) landing at the joiner;
        // versioned and idempotent like kReplicate/kSyncData, so a target
        // restart mid-migration just re-applies the retransmitted copies.
        if (server_idx < 0) break;
        auto& ss = *servers_[static_cast<std::size_t>(server_idx)];
        const auto si = static_cast<std::size_t>(m.slice);
        if (m.version > ss.version[si]) ss.version[si] = m.version;
        migrated_bytes_ += m.logical;
        break;
      }
      case net::MsgKind::kRackPush:
        on_rack_push(n, m);
        break;
      case net::MsgKind::kRackParams:
        on_rack_params(n, m);
        break;
      case net::MsgKind::kBackground:
        break;  // foreign tenant traffic: consumed bandwidth, nothing else
      case net::MsgKind::kAck:
      case net::MsgKind::kHeartbeat:
      case net::MsgKind::kRecheck:
        break;  // handled above / never on the wire
    }
  }
}

void Cluster::worker_repush_group(int w, int group) {
  // Leadership moved: deterministically re-push every slice of the group
  // whose resulting parameters have not come back yet — the new primary
  // restarted those rounds from empty accumulators (or, if the round did
  // commit before the failover, answers the stale re-push with current
  // parameters). PR 1 dedup plus the per-round contribution cap make this
  // idempotent.
  auto& ws = *workers_[static_cast<std::size_t>(w)];
  if (!node_state_[static_cast<std::size_t>(w)].up) return;
  if (partition_plane_) {
    // Parked fresh pushes for this group are superseded by the re-push
    // below (parked retransmissions keep their pending_tx state and drain
    // through the ordinary unpark path, where the old primary redirects or
    // stale-push-replies them).
    auto& lot = parked_[static_cast<std::size_t>(w)];
    for (auto it = lot.begin(); it != lot.end();) {
      const bool fresh = it->retx_id < 0;
      const int lot_group =
          it->slice >= 0
              ? partition_.slices[static_cast<std::size_t>(it->slice)].server
              : -1;
      it = (fresh && lot_group == group) ? lot.erase(it) : std::next(it);
    }
  }
  for (std::int64_t s = 0; s < partition_.num_slices(); ++s) {
    const auto si = static_cast<std::size_t>(s);
    if (partition_.slices[si].server != group) continue;
    const std::int64_t pushed = ws.last_push_iter[si];
    if (pushed >= 0 && ws.recv_version[si] <= pushed) {
      // Recovery re-pushes bypass the rack aggregator: rack peers holding
      // the round's parameters will never re-push it, so a fold waiting for
      // them would wedge. The server ledger keeps direct re-pushes
      // exactly-once against any cover the aggregator did forward.
      if (dssp_on_) {
        // Run-ahead leaves up to s+1 rounds outstanding per slice, and a
        // restarted primary needs every one of them (its future-round
        // buffer died with the old process): re-push the whole unreturned
        // window, oldest first.
        for (std::int64_t r = std::max<std::int64_t>(0, ws.recv_version[si]);
             r <= pushed; ++r) {
          enqueue_push(w, s, r, /*direct=*/true);
        }
      } else {
        enqueue_push(w, s, pushed, /*direct=*/true);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rack-local aggregation: fold at the ToR tier, one combined push per rack.
// ---------------------------------------------------------------------------

bool Cluster::agg_usable(int w, int agg) const {
  if (w == agg) return true;  // the loopback fold is always available
  if (!membership_on_) return true;
  return node_state_[static_cast<std::size_t>(agg)].joined &&
         reachable(agg) &&
         membership_[static_cast<std::size_t>(w)]->alive(agg);
}

void Cluster::on_rack_push(int agg, const net::Message& m) {
  // Fold one worker's fragment into the rack-local pre-reduction. The fold
  // itself is free (SHArP-style in-network reduction at the ToR tier); the
  // combined push pays the ordinary server-side aggregation cost once.
  AggRound& round =
      agg_rounds_[static_cast<std::size_t>(agg)][{m.slice, m.iteration}];
  round.contrib[m.worker] += m.logical;
  if (tracing()) {
    tracer_->span(lane("n", agg, ".agg"), sim_.now(), sim_.now(),
                  "f" + std::to_string(m.layer + 1));
  }
  agg_flush(agg, m.slice, m.iteration);
}

void Cluster::agg_flush(int agg, std::int64_t slice, std::int64_t iteration) {
  auto& rounds = agg_rounds_[static_cast<std::size_t>(agg)];
  const auto it = rounds.find({slice, iteration});
  if (it == rounds.end()) return;
  AggRound& round = it->second;
  const Bytes payload =
      partition_.slices[static_cast<std::size_t>(slice)].payload_bytes();
  const auto rack = static_cast<std::size_t>(node_rack_[agg]);
  // A member is expected while the aggregator's view holds it joined and
  // alive; complete contributions count regardless of liveness. A late
  // contribution after a partial flush (the sender was view-dead at flush
  // time but its fragments still landed) forwards as a singleton cover.
  for (const int w : rack_workers_[rack]) {
    const auto cit = round.contrib.find(w);
    if (cit != round.contrib.end() && cit->second >= payload) continue;
    bool expected = true;
    if (membership_on_) {
      expected = node_state_[static_cast<std::size_t>(w)].joined &&
                 (w == agg ||
                  membership_[static_cast<std::size_t>(agg)]->alive(w));
    }
    if (expected) return;  // still waiting on a live member
  }
  std::vector<int> cover;
  for (const auto& [w, bytes] : round.contrib) {
    if (bytes >= payload && round.forwarded.insert(w).second) {
      cover.push_back(w);
    }
  }
  if (cover.empty()) return;
  // The fold is only retired once every rack member was covered; a partial
  // flush keeps it so stragglers' fragments can still complete and forward.
  const bool done = round.forwarded.size() >= rack_workers_[rack].size();
  enqueue_agg_push(agg, slice, iteration, std::move(cover));
  if (done) rounds.erase(it);
}

void Cluster::agg_flush_all(int agg) {
  auto& rounds = agg_rounds_[static_cast<std::size_t>(agg)];
  std::vector<std::pair<std::int64_t, std::int64_t>> keys;
  keys.reserve(rounds.size());
  for (const auto& [key, round] : rounds) keys.push_back(key);
  for (const auto& [slice, iteration] : keys) {
    agg_flush(agg, slice, iteration);
  }
}

void Cluster::enqueue_agg_push(int agg, std::int64_t slice,
                               std::int64_t iteration,
                               std::vector<int> cover) {
  // The combined push rides the aggregator's own priority send queue, so it
  // competes at slice priority and inherits the parking and
  // retransmit-through-the-sendq semantics every worker push has.
  const std::int64_t id = next_agg_id_++;
  const auto& sl = partition_.slices[static_cast<std::size_t>(slice)];
  AggCover cv;
  cv.workers = std::move(cover);
  cv.remaining = sl.payload_bytes();
  agg_cover_.emplace(id, std::move(cv));
  auto& ws = *workers_[static_cast<std::size_t>(agg)];
  Bytes remaining = sl.payload_bytes();
  while (remaining > 0) {
    SendItem item;
    item.slice = slice;
    item.kind = net::MsgKind::kPushGradient;
    item.iteration = iteration;
    item.payload = std::min(remaining, cfg_.fragment_bytes);
    item.priority = item_priority(slice);
    item.seq = ws.send_seq++;
    item.agg_id = id;
    if (tracing()) {
      lc(obs::Stage::kEnqueue, agg, slice, iteration, item.payload);
    }
    ws.sendq.push(item);
    sendq_depth_changed(agg, +1);
    remaining -= item.payload;
  }
  ++*agg_combined_pushes_;
}

void Cluster::send_rack_params(int server, std::int64_t slice) {
  // Downward mirror of the pre-reduction: the parameter payload crosses the
  // fabric once per rack (to the aggregator, which re-broadcasts) instead
  // of once per worker. Racks whose aggregator is unusable in the server's
  // view fall back to direct per-worker sends.
  const auto si = static_cast<std::size_t>(slice);
  const auto& sl = partition_.slices[si];
  const auto& ss = *servers_[static_cast<std::size_t>(server)];
  const int snode = server_node(server);
  for (std::size_t r = 0; r < rack_agg_.size(); ++r) {
    const int agg = rack_agg_[r];
    bool usable = true;
    if (membership_on_) {
      usable = node_state_[static_cast<std::size_t>(agg)].joined &&
               reachable(agg) &&
               (agg == snode ||
                membership_[static_cast<std::size_t>(snode)]->alive(agg));
    }
    if (!usable) {
      for (const int w : rack_workers_[r]) {
        if (membership_on_ &&
            !node_state_[static_cast<std::size_t>(w)].joined) {
          continue;
        }
        send_params(server, slice, w);
      }
      continue;
    }
    Bytes remaining = sl.payload_bytes();
    while (remaining > 0) {
      const Bytes payload = std::min(remaining, cfg_.fragment_bytes);
      net::Message m;
      m.src = snode;
      m.dst = agg;
      m.kind = net::MsgKind::kRackParams;
      m.slice = slice;
      m.layer = sl.layer;
      m.priority = item_priority(slice);
      m.worker = agg;
      m.logical = payload;
      m.bytes = wire_payload(payload) + net::kHeaderBytes;
      m.version = ss.version[si];
      if (tracing()) {
        m.trace_id = obs::make_trace_id(slice, m.version - 1, agg);
      }
      post_tracked(m);
      ++params_sent_;
      remaining -= payload;
    }
  }
}

void Cluster::on_rack_params(int agg, const net::Message& m) {
  // One parameter fragment for the whole rack: apply it locally, then
  // re-broadcast from this NIC to the other members as fresh kParams (the
  // upstream copy was already acked; each re-broadcast is tracked anew).
  const auto rack = static_cast<std::size_t>(node_rack_[agg]);
  for (const int w : rack_workers_[rack]) {
    if (w == agg) continue;
    if (membership_on_ &&
        (!node_state_[static_cast<std::size_t>(w)].joined || !reachable(w))) {
      continue;
    }
    net::Message fwd = m;
    fwd.src = agg;
    fwd.dst = w;
    fwd.kind = net::MsgKind::kParams;
    fwd.worker = w;
    fwd.msg_id = -1;
    fwd.trace_id =
        tracing() ? obs::make_trace_id(m.slice, m.version - 1, w) : -1;
    post_tracked(fwd);
    ++params_sent_;
    ++*agg_param_broadcasts_;
  }
  net::Message self = m;
  self.kind = net::MsgKind::kParams;
  self.worker = agg;
  worker_on_param(agg, self);
}

std::vector<int> Cluster::push_cover(const net::Message& m) const {
  if (m.agg_id < 0) return {m.worker};
  const auto it = agg_cover_.find(m.agg_id);
  // A consumed cover can only recur through a delivery the dedup layer
  // somehow missed; crediting the forwarding worker alone is safe (the
  // ledger caps it).
  if (it == agg_cover_.end()) return {m.worker};
  return it->second.workers;
}

void Cluster::consume_cover(const net::Message& m) {
  if (m.agg_id < 0) return;
  const auto it = agg_cover_.find(m.agg_id);
  if (it == agg_cover_.end()) return;
  it->second.remaining -= m.logical;
  if (it->second.remaining <= 0) agg_cover_.erase(it);
}

void Cluster::worker_on_agg_dead(int w) {
  // The rack aggregator died and every fold it held died with it:
  // contributions it had not forwarded yet are gone, so re-push everything
  // unreturned straight to the shard leaders. Rounds the aggregator *did*
  // forward come back as ledger-capped merges or stale-push replies —
  // exactly-once either way.
  if (!node_state_[static_cast<std::size_t>(w)].up) return;
  for (int g = 0; g < n_servers(); ++g) worker_repush_group(w, g);
}

void Cluster::worker_on_notify(int w, const net::Message& m) {
  auto& ws = *workers_[static_cast<std::size_t>(w)];
  if (tracing()) lc(obs::Stage::kNotify, w, m.slice, m.iteration, 0);
  const auto layer = static_cast<std::size_t>(m.layer);
  const auto& slices = partition_.layer_slices[layer];
  if (!membership_on_) {
    if (++ws.notify_count[layer] ==
        static_cast<int>(slices.size())) {
      // MXNet issues the pull only once every slice of the layer has been
      // notified (the behaviour P3 removes, Section 4.2).
      ws.notify_count[layer] = 0;
      for (auto slice : slices) enqueue_pull(w, slice, m.iteration);
    }
    return;
  }
  auto& nv = ws.notify_version[static_cast<std::size_t>(m.slice)];
  nv = std::max(nv, m.iteration);
  maybe_pull_layer(w, static_cast<int>(layer));
}

void Cluster::maybe_pull_layer(int w, int layer) {
  if (sync_.immediate_broadcast || sync_.deferred_pull) return;
  auto& ws = *workers_[static_cast<std::size_t>(w)];
  const auto& slices = partition_.layer_slices[static_cast<std::size_t>(layer)];
  // The round the worker is waiting on is the one it pushed; every slice of
  // a layer is pushed in the same iteration.
  std::int64_t round = -1;
  for (auto s : slices) {
    const std::int64_t pushed = ws.last_push_iter[static_cast<std::size_t>(s)];
    if (pushed < 0) return;  // layer not pushed since (re)start
    round = std::max(round, pushed);
  }
  for (auto s : slices) {
    const auto si = static_cast<std::size_t>(s);
    if (ws.notify_version[si] >= round) continue;  // notified complete
    if (ws.recv_version[si] > round) continue;     // params already in hand
    return;  // no evidence yet that slice s's round finished
  }
  auto& pulled = ws.pulled_round[static_cast<std::size_t>(layer)];
  if (pulled >= round) return;  // this round's pulls already went out
  pulled = round;
  for (auto s : slices) {
    if (ws.recv_version[static_cast<std::size_t>(s)] <= round) {
      enqueue_pull(w, s, round);
    }
  }
}

void Cluster::worker_on_param(int w, const net::Message& m) {
  auto& ws = *workers_[static_cast<std::size_t>(w)];
  const auto si = static_cast<std::size_t>(m.slice);
  // Versioned receipt: fragments of one parameter version accumulate until
  // the slice payload is complete; anything at or below the version already
  // held is a duplicate delivery (failover re-send, stale-push reply) and
  // is dropped here, which keeps recovery paths idempotent.
  if (m.version <= ws.recv_version[si]) return;
  if (ws.recv_inflight[si] != m.version) {
    ws.recv_inflight[si] = m.version;
    ws.recv_bytes[si] = 0;
  }
  ws.recv_bytes[si] += m.logical;
  if (ws.recv_bytes[si] <
      partition_.slices[si].payload_bytes()) {
    return;
  }
  ws.recv_version[si] = m.version;
  ws.recv_inflight[si] = -1;
  ws.recv_bytes[si] = 0;
  if (tracing() && ws.last_push_iter[si] >= 0) {
    // Version v means "parameters after iteration v-1's update". Deliveries
    // to a worker that never pushed this slice (the admission / rejoin
    // state transfer) are not an echo of its own round trip and would
    // invert the lifecycle stage order, so they are not round events.
    lc(obs::Stage::kParamReady, w, m.slice, m.version - 1,
       partition_.slices[si].payload_bytes());
  }
  // The layer's forward gate opens at the oldest complete slice version
  // (identical to the byte-count trigger when deliveries are exactly-once).
  const auto layer = static_cast<std::size_t>(m.layer);
  std::int64_t layer_min = m.version;
  for (auto s : partition_.layer_slices[layer]) {
    layer_min = std::min(layer_min,
                         ws.recv_version[static_cast<std::size_t>(s)]);
  }
  ws.gates[layer]->advance_to(layer_min);
  // Recovery-path params (stale-push replies, failover re-sends) count as
  // round-completion evidence: a layer whose notify died with a crashed
  // server can still pull its remaining slices.
  if (membership_on_) maybe_pull_layer(w, static_cast<int>(layer));
}

void Cluster::send_params(int server, std::int64_t slice, int worker) {
  const auto& sl = partition_.slices[static_cast<std::size_t>(slice)];
  const auto& ss = *servers_[static_cast<std::size_t>(server)];
  Bytes remaining = sl.payload_bytes();
  while (remaining > 0) {
    const Bytes payload = std::min(remaining, cfg_.fragment_bytes);
    net::Message m;
    m.src = server_node(server);
    m.dst = worker;
    m.kind = net::MsgKind::kParams;
    m.slice = slice;
    m.layer = sl.layer;
    m.priority = item_priority(slice);
    m.worker = worker;
    m.logical = payload;
    m.bytes = wire_payload(payload) + net::kHeaderBytes;
    m.version = ss.version[static_cast<std::size_t>(slice)];
    if (tracing()) {
      m.trace_id = obs::make_trace_id(slice, m.version - 1, worker);
    }
    post_tracked(m);
    ++params_sent_;
    remaining -= payload;
  }
}

bool Cluster::round_complete(int server, std::int64_t slice) const {
  const auto& ss = *servers_[static_cast<std::size_t>(server)];
  const auto si = static_cast<std::size_t>(slice);
  const Bytes payload = partition_.slices[si].payload_bytes();
  const auto& view = *membership_[static_cast<std::size_t>(server_node(server))];
  bool any = false;
  for (int w = 0; w < n_total_workers(); ++w) {
    const auto wi = static_cast<std::size_t>(w);
    const bool done = ss.contrib[si][wi] >= payload;
    any = any || done;
    const bool expected =
        view.alive(w) && ss.active_from[si][wi] <= ss.version[si];
    if (expected && !done) return false;
  }
  return any;  // never complete an empty round
}

void Cluster::release_round(int server, std::int64_t slice,
                            std::int64_t round) {
  // The round is durable (replicated to every live backup, or R == 1):
  // release parameters to the workers.
  auto& ss = *servers_[static_cast<std::size_t>(server)];
  const auto si = static_cast<std::size_t>(slice);
  const auto& sl = partition_.slices[si];
  if (sync_.immediate_broadcast) {
    if (agg_on_) {
      // One copy per rack, re-broadcast by the aggregators.
      send_rack_params(server, slice);
    } else {
      // P3Server: broadcast updated parameters without notify+pull.
      for (int w = 0; w < n_total_workers(); ++w) {
        if (membership_on_ &&
            !node_state_[static_cast<std::size_t>(w)].joined) {
          continue;  // elastic joiner not admitted yet
        }
        send_params(server, slice, w);
      }
    }
  } else if (!sync_.deferred_pull) {
    for (int w = 0; w < n_total_workers(); ++w) {
      if (membership_on_ &&
          !node_state_[static_cast<std::size_t>(w)].joined) {
        continue;
      }
      net::Message notify;
      notify.src = server_node(server);
      notify.dst = w;
      notify.kind = net::MsgKind::kNotify;
      notify.slice = slice;
      notify.layer = sl.layer;
      notify.priority = item_priority(slice);
      notify.iteration = round;
      notify.bytes = net::kControlBytes;
      if (tracing()) {
        notify.trace_id = obs::make_trace_id(slice, round, w);
      }
      post_tracked(notify);
      ++notifies_sent_;
    }
  }
  // Serve pulls that arrived before the round completed.
  auto pending = std::move(ss.pending[si]);
  ss.pending[si].clear();
  for (const auto& p : pending) {
    if (ss.version[si] >= p.iteration + 1) {
      send_params(server, slice, p.worker);
    } else {
      ss.pending[si].push_back(p);
    }
  }
}

void Cluster::commit_round(int server, std::int64_t slice,
                           std::int64_t round) {
  // Chain replication with a commit barrier: copy the new state to every
  // live backup and withhold the worker release until each copy is acked —
  // once a worker can observe version v, every surviving replica holds v,
  // so a primary death never rolls an observed round back.
  auto& ss = *servers_[static_cast<std::size_t>(server)];
  const auto si = static_cast<std::size_t>(slice);
  const auto& sl = partition_.slices[si];
  const int group = sl.server;
  const auto& lead = *leadership_[static_cast<std::size_t>(server_node(server))];
  const auto& view = *membership_[static_cast<std::size_t>(server_node(server))];
  int sent = 0;
  const std::int64_t key =
      static_cast<std::int64_t>(server) * partition_.num_slices() + slice;
  for (int k = 0; k < cfg_.replication; ++k) {
    const int replica = lead.member(group, k);
    if (replica == server) continue;
    const int rnode = server_node(replica);
    if (!view.alive(rnode) || !reachable(rnode)) continue;
    net::Message m;
    m.src = server_node(server);
    m.dst = rnode;
    m.kind = net::MsgKind::kReplicate;
    m.slice = slice;
    m.layer = sl.layer;
    m.priority = item_priority(slice);
    m.iteration = round;
    m.version = ss.version[si];
    m.logical = sl.payload_bytes();
    m.bytes = wire_payload(sl.payload_bytes()) + net::kHeaderBytes;
    arm_reliable(m, -1);
    replicate_wait_.emplace(m.msg_id, key);
    const TimeS rto = pending_tx_.at(m.msg_id).rto;
    net_->post(m);
    schedule_retx_timer(m.msg_id, rto);
    ++sent;
  }
  if (sent == 0) {
    release_round(server, slice, round);
    return;
  }
  CommitState cs;
  cs.server = server;
  cs.slice = slice;
  cs.round = round;
  cs.outstanding = sent;
  commits_[key] = cs;
}

void Cluster::redirect_to_leader(int server, const net::Message& m) {
  // Worker addressed a replica that no longer (or does not yet) believe it
  // leads: tell it who does; adoption at the worker re-pushes anything in
  // flight. The payload itself is intentionally dropped — the true leader
  // got (or will get) its own copy via the adoption re-push.
  const int n = server_node(server);
  const int group = partition_.slices[static_cast<std::size_t>(m.slice)].server;
  const auto& lease = leadership_[static_cast<std::size_t>(n)]->lease(group);
  if (m.kind == net::MsgKind::kPullRequest && lease.primary >= 0 &&
      lease.primary != server) {
    // A push can be dropped here — adoption re-pushes it — but a pull
    // cannot: deferred-pull methods have no notify or broadcast to
    // re-announce the round, so a swallowed pull leaves its worker gated
    // forever. Forward it to the believed leader instead (idempotent — at
    // worst the worker receives the same parameters twice).
    net::Message fwd = m;
    fwd.src = n;
    fwd.dst = server_node(lease.primary);
    post_tracked(fwd);
  }
  net::Message redirect;
  redirect.src = n;
  redirect.dst = m.src;
  redirect.kind = net::MsgKind::kNewPrimary;
  redirect.slice = group;
  redirect.iteration = lease.epoch;
  redirect.worker = lease.primary;
  redirect.bytes = net::kControlBytes;
  post_tracked(redirect);
}

sim::Task Cluster::server_loop(int n) {
  // `n` is the *server index*; its NIC is node server_node(n).
  auto& ss = *servers_[static_cast<std::size_t>(n)];
  const auto node = static_cast<std::size_t>(server_node(n));
  for (;;) {
    RxItem item = co_await ss.rxq.pop();
    rxq_depth_changed(n, -1);
    if (membership_on_ && !node_state_[node].up) continue;  // dead process
    const net::Message& m = item.msg;

    // Membership plane: a death notice shrank the expected set (or a
    // takeover re-seeded it); sweep every slice this server leads for
    // rounds that are now completable without the dead workers.
    std::vector<std::int64_t> recheck;
    if (m.kind == net::MsgKind::kRecheck) {
      const auto& lead = *leadership_[node];
      for (std::int64_t s = 0; s < partition_.num_slices(); ++s) {
        const int group = partition_.slices[static_cast<std::size_t>(s)].server;
        if (lead.primary(group) == n) recheck.push_back(s);
      }
    }

    if (m.kind == net::MsgKind::kPullRequest ||
        m.kind == net::MsgKind::kPushGradient) {
      const auto slice_idx = static_cast<std::size_t>(m.slice);
      const auto& sl = partition_.slices[slice_idx];
      if (!membership_on_) {
        if (sl.server != n) {
          throw std::logic_error("slice routed to wrong server");
        }
      } else {
        if (leadership_[node]->chain_offset(sl.server, n) < 0) {
          if (!cfg_.faults.joins.empty() || scale_plane_) {
            // Elastic rebalancing and drain migrations re-derive chains
            // around the new owner, so a donor dropped from a handed-over
            // group can still see stragglers addressed under the old
            // chain: redirect them.
            redirect_to_leader(n, m);
            continue;
          }
          throw std::logic_error("slice routed outside its replica group");
        }
        if (leadership_[node]->primary(sl.server) != n) {
          redirect_to_leader(n, m);
          continue;
        }
      }
      if (m.kind == net::MsgKind::kPushGradient && tracing()) {
        lc(obs::Stage::kServerRecv, m.worker, m.slice, m.iteration, m.logical);
      }

      if (m.kind == net::MsgKind::kPullRequest) {
        if (ss.version[slice_idx] >= m.iteration + 1) {
          send_params(n, m.slice, m.worker);
        } else {
          ss.pending[slice_idx].push_back(PendingPull{m.worker, m.iteration});
        }
        continue;
      }

      if (membership_on_) {
        // Stale push: the round already committed cluster-wide (this is a
        // post-failover or post-rejoin re-push). Answer with the current
        // parameters so the sender unblocks — this reply IS the recovery
        // path for rounds that committed just before a primary died.
        if (m.iteration + 1 <= ss.version[slice_idx]) {
          // An aggregated stale push answers every covered worker: each of
          // them is waiting on parameters this reply is the recovery path
          // for.
          for (const int cw : push_cover(m)) {
            ++stale_pushes_;
            send_params(n, m.slice, cw);
          }
          consume_cover(m);
          continue;
        }
        // Future push: the sender's params are newer than this replica's
        // state (possible only when every fresher replica was lost and this
        // one rehydrated from an old checkpoint). The workers' copies are
        // the surviving truth: fast-forward to their round.
        if (m.iteration > ss.version[slice_idx]) {
          if (dssp_on_) {
            // Under DSSP a future push is *normal* run-ahead, so it only
            // proves commitment up to the sender's carried held-params
            // floor (rounds below `m.version` were released to it) or, as
            // a fallback, `iteration - s_max` from the forward gate.
            // Fast-forward to exactly that proven floor (a no-op in
            // healthy operation); anything still ahead of the shard's round
            // parks in the future-round buffer after aggregation below.
            const int s_max = cfg_.staleness.fixed_s >= 0
                                  ? cfg_.staleness.fixed_s
                                  : cfg_.staleness.s_max;
            const std::int64_t proven =
                std::max(m.version, m.iteration - s_max);
            if (proven > ss.version[slice_idx]) {
              ss.version[slice_idx] = proven;
              ss.round_bytes[slice_idx] = 0;
              for (auto& c : ss.contrib[slice_idx]) c = 0;
              // Run-ahead pushes for the newly opened round may already be
              // parked in the future buffer (they arrived while the shard
              // lagged behind the proven floor); fold them in now or the
              // round waits forever for contributions it already holds.
              dssp_promote(n, m.slice);
            }
          } else {
            ss.version[slice_idx] = m.iteration;
            ss.round_bytes[slice_idx] = 0;
            for (auto& c : ss.contrib[slice_idx]) c = 0;
          }
        }
      }

      // Gradient push: aggregate (memory-bound add over the full-precision
      // array; compression saves wire bytes, not server arithmetic).
      const Bytes payload = m.logical;
      const TimeS t0 = sim_.now();
      co_await sim_.sleep(static_cast<double>(payload) /
                          cfg_.update_bytes_per_sec);
      if (membership_on_ && !node_state_[node].up) continue;  // died mid-add
      if (!membership_on_) {
        if (tracing()) {
          lc(obs::Stage::kAggregate, m.worker, m.slice, m.iteration, 0);
        }
        if (agg_on_ && m.agg_id >= 0) {
          // A combined push carries one pre-reduced payload standing in for
          // every covered worker's contribution.
          ss.round_bytes[slice_idx] +=
              payload * static_cast<Bytes>(push_cover(m).size());
          consume_cover(m);
        } else {
          ss.round_bytes[slice_idx] += payload;
        }
        const Bytes round_target = sl.payload_bytes() * cfg_.n_workers;
        if (ss.round_bytes[slice_idx] >= round_target) {
          // All workers contributed: run the optimizer step on the shard.
          ss.round_bytes[slice_idx] = 0;
          co_await sim_.sleep(
              static_cast<double>(sl.payload_bytes()) /
                  cfg_.update_bytes_per_sec +
              cfg_.update_overhead);
          ++ss.version[slice_idx];
          ++rounds_completed_;
          if (tracing()) {
            tracer_->span(lane("n", server_node(n), ".srv"), t0, sim_.now(),
                          "U" + std::to_string(sl.layer + 1));
          }
          release_round(n, m.slice, m.iteration);
        } else if (tracing()) {
          tracer_->span(lane("n", server_node(n), ".srv"), t0, sim_.now(),
                        "a" + std::to_string(sl.layer + 1));
        }
        continue;
      }

      // DSSP: the version can move during the aggregation sleep (another
      // push's completion loop, or this push's own pre-sleep fast-forward
      // past its round) — re-classify before touching the ledger so a
      // newly-stale push answers with parameters instead of polluting the
      // open round.
      if (dssp_on_ && m.iteration + 1 <= ss.version[slice_idx]) {
        for (const int cw : push_cover(m)) {
          ++stale_pushes_;
          send_params(n, m.slice, cw);
        }
        consume_cover(m);
        // A pre-sleep fast-forward may have left the open round fully
        // funded from promoted buffers; sweep it below.
        recheck.push_back(m.slice);
        continue;
      }

      // DSSP run-ahead: a push for a round this shard has not opened yet is
      // a legitimate contribution from a worker running within the
      // staleness bound. Park it in the future-round buffer (aggregation
      // cost already paid above); it promotes into the live ledger the
      // moment its round opens — park-never-drop.
      if (dssp_on_ && m.iteration > ss.version[slice_idx]) {
        dssp_buffer_future(n, m);
        if (tracing()) {
          tracer_->span(lane("n", server_node(n), ".srv"), t0, sim_.now(),
                        "f" + std::to_string(sl.layer + 1));
        }
        // The pre-sleep bounded fast-forward (or a round that closed during
        // this push's aggregation sleep) may have promoted buffered
        // contributions that fully fund the open round — and every later
        // push for this slice may divert here too. Fall through to the
        // completion sweep below or a fully-funded round wedges waiting
        // for a merge that never comes.
        recheck.push_back(m.slice);
      } else {
        // Membership path: per-worker contribution ledger, capped at one
        // payload per worker per round so re-pushed fragments merge exactly
        // once. An aggregated push credits every covered worker with the
        // (pre-reduced) payload under the same cap, so a direct re-push that
        // races a forwarded cover can never double-count.
        Bytes credited = 0;
        for (const int cw : push_cover(m)) {
          auto& contrib = ss.contrib[slice_idx][static_cast<std::size_t>(cw)];
          const Bytes room = sl.payload_bytes() - contrib;
          if (room <= 0) continue;
          const Bytes add = std::min(payload, room);
          contrib += add;
          credited += add;
          if (scale_plane_ && hierarchy_on_) {
            // Per-rack push weight by origin rack: the drain-target rack
            // preference reads this.
            rack_group_push_bytes_[static_cast<std::size_t>(
                node_rack_[static_cast<std::size_t>(cw)])]
                                  [static_cast<std::size_t>(sl.server)] +=
                static_cast<double>(add);
          }
        }
        if (scale_plane_ && credited > 0) {
          // Credited (exactly-once) ledger bytes are the weighted planner's
          // observed per-group push signal.
          group_push_bytes_[static_cast<std::size_t>(sl.server)] +=
              static_cast<double>(credited);
        }
        consume_cover(m);
        if (credited == 0) {
          ++duplicates_suppressed_;
          if (tracing()) {
            tracer_->span(lane("n", server_node(n), ".srv"), t0, sim_.now(),
                          "d" + std::to_string(sl.layer + 1));
          }
          continue;
        }
        if (tracing()) {
          lc(obs::Stage::kAggregate, m.worker, m.slice, m.iteration, 0);
          if (!round_complete(n, m.slice)) {
            tracer_->span(lane("n", server_node(n), ".srv"), t0, sim_.now(),
                          "a" + std::to_string(sl.layer + 1));
          }
        }
        recheck.push_back(m.slice);
      }
    }

    // Complete every round the triggering event made ready.
    for (const std::int64_t s : recheck) {
      const auto si = static_cast<std::size_t>(s);
      const auto& sl = partition_.slices[si];
      while (leadership_[node]->primary(sl.server) == n &&
             !group_frozen(n, sl.server) && round_complete(n, s)) {
        const std::int64_t round = ss.version[si];
        const TimeS t0 = sim_.now();
        co_await sim_.sleep(
            static_cast<double>(sl.payload_bytes()) /
                cfg_.update_bytes_per_sec +
            cfg_.update_overhead);
        if (!node_state_[node].up) break;  // died mid-optimizer-step
        for (auto& c : ss.contrib[si]) c = 0;
        ++ss.version[si];
        ++rounds_completed_;
        // The new round may already be fully funded by buffered run-ahead
        // pushes; promote them before the loop re-checks completion.
        if (dssp_on_) dssp_promote(n, s);
        if (tracing()) {
          tracer_->span(lane("n", server_node(n), ".srv"), t0, sim_.now(),
                        "U" + std::to_string(sl.layer + 1));
        }
        if (cfg_.replication > 1) {
          commit_round(n, s, round);
        } else {
          release_round(n, s, round);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Membership plane: beacons, failure detection, failover, crash execution.
// ---------------------------------------------------------------------------

sim::Task Cluster::heartbeat_loop(int n) {
  const auto nn = static_cast<std::size_t>(n);
  for (;;) {
    co_await sim_.sleep(cfg_.heartbeat_period);
    if (stopping_) co_return;
    if (!node_state_[nn].up) continue;  // a dead process neither sends nor
                                        // suspects; the loop outlives it
    for (int peer = 0; peer < total_nodes(); ++peer) {
      if (peer == n) continue;
      if (!node_state_[static_cast<std::size_t>(peer)].joined) continue;
      net::Message hb;
      hb.src = n;
      hb.dst = peer;
      hb.kind = net::MsgKind::kHeartbeat;
      hb.iteration = node_state_[nn].epoch;  // incarnation
      // Echo: does this sender currently believe the receiver is alive? A
      // primary whose chain peers answer "no" (asymmetric cut: their beacons
      // arrive, ours do not) must stop trusting its self-lease.
      hb.version = membership_[nn]->alive(peer) ? 1 : 0;
      hb.bytes = net::kHeartbeatBytes;
      net_->post(hb);
      ++heartbeats_sent_;
    }
    for (const int dead : membership_[nn]->check(local_now(n))) {
      on_peer_dead(n, dead);
    }
    if (leases_on_) lease_tick(n);
    // View-driven eligibility changes (suspicions, revivals, quorum moves)
    // re-derive the staleness-gate floor on the same cadence.
    if (dssp_on_) dssp_advance_gate();
  }
}

// ---------------------------------------------------------------------------
// DSSP dynamic bounded-staleness gate.
// ---------------------------------------------------------------------------

bool Cluster::dssp_eligible(int w) const {
  const auto wn = static_cast<std::size_t>(w);
  if (dssp_clock_[wn] < 0) return false;  // no running iteration loop
  const auto& ns = node_state_[wn];
  if (!ns.joined || ns.retired) return false;
  // Membership exclusion: the min-clock drops a worker exactly when the
  // fleet's failure detection would act on it — a live observer (one
  // holding a view quorum when the partition plane is armed) suspects it
  // dead. Ground-truth `up` is deliberately not consulted: a dead
  // straggler keeps gating the fleet until suspicion fires or it restarts,
  // and a minority-side observer can never fence a majority worker.
  for (int n = 0; n < total_nodes(); ++n) {
    if (n == w) continue;
    const auto nn = static_cast<std::size_t>(n);
    const auto& on = node_state_[nn];
    if (!on.up || !on.joined || on.retired) continue;
    if (partition_plane_ && !view_has_quorum(n)) continue;
    if (!membership_[nn]->alive(w)) return false;
  }
  return true;
}

std::int64_t Cluster::dssp_advance_gate() {
  std::int64_t min_clock = std::numeric_limits<std::int64_t>::max();
  for (int w = 0; w < n_total_workers(); ++w) {
    if (!dssp_eligible(w)) continue;
    min_clock = std::min(min_clock, dssp_clock_[static_cast<std::size_t>(w)]);
  }
  if (min_clock != std::numeric_limits<std::int64_t>::max()) {
    // Monotone floor: a rejoiner re-entering below the released floor (the
    // rejoin_slack rule) makes this a no-op instead of retracting releases.
    dssp_gate_->advance_to(min_clock);
  }
  const std::int64_t floor = dssp_gate_->version();
  for (int w = 0; w < n_total_workers(); ++w) {
    const auto wn = static_cast<std::size_t>(w);
    dssp_gap_gauge_[wn]->set(dssp_clock_[wn] >= 0 ? static_cast<double>(
                                                        dssp_clock_[wn] - floor)
                                                  : 0.0);
  }
  return floor;
}

void Cluster::dssp_set_clock(int w, std::int64_t clock) {
  const auto wn = static_cast<std::size_t>(w);
  dssp_clock_[wn] = clock;
  // Any clock event means the loop is executing, not suspended on the gate
  // (and clears a stale flag left by an abandoned pre-crash incarnation).
  dssp_blocked_[wn] = false;
  dssp_advance_gate();
}

void Cluster::dssp_buffer_future(int server, const net::Message& m) {
  const auto& sl = partition_.slices[static_cast<std::size_t>(m.slice)];
  auto& round =
      dssp_future_[static_cast<std::size_t>(server)][{m.slice, m.iteration}];
  Bytes credited = 0;
  for (const int cw : push_cover(m)) {
    Bytes& have = round[cw];
    const Bytes room = sl.payload_bytes() - have;
    if (room <= 0) continue;
    const Bytes add = std::min(m.logical, room);
    have += add;
    credited += add;
    if (scale_plane_ && hierarchy_on_) {
      rack_group_push_bytes_[static_cast<std::size_t>(
          node_rack_[static_cast<std::size_t>(cw)])]
                            [static_cast<std::size_t>(sl.server)] +=
          static_cast<double>(add);
    }
  }
  if (scale_plane_ && credited > 0) {
    group_push_bytes_[static_cast<std::size_t>(sl.server)] +=
        static_cast<double>(credited);
  }
  consume_cover(m);
  if (credited == 0) ++duplicates_suppressed_;
}

void Cluster::dssp_promote(int server, std::int64_t slice) {
  auto& fut = dssp_future_[static_cast<std::size_t>(server)];
  auto& ss = *servers_[static_cast<std::size_t>(server)];
  const auto si = static_cast<std::size_t>(slice);
  const auto& sl = partition_.slices[si];
  const std::int64_t round = ss.version[si];
  // Rounds that closed while buffered (possible only after a bounded
  // fast-forward recovered past them) were committed cluster-wide; drop
  // their stale buffers.
  auto it = fut.lower_bound({slice, std::numeric_limits<std::int64_t>::min()});
  while (it != fut.end() && it->first.first == slice &&
         it->first.second < round) {
    it = fut.erase(it);
  }
  if (it == fut.end() || it->first.first != slice ||
      it->first.second != round) {
    return;
  }
  for (const auto& [cw, bytes] : it->second) {
    auto& contrib = ss.contrib[si][static_cast<std::size_t>(cw)];
    const Bytes room = sl.payload_bytes() - contrib;
    if (room <= 0) continue;
    contrib += std::min(bytes, room);
  }
  fut.erase(it);
}

sim::Task Cluster::dssp_audit_loop() {
  // A wedge is by definition permanent, so the watchdog demands the stuck
  // condition hold across consecutive audit periods before counting it:
  // suspicion/re-admission churn (a congested straggler's heartbeats
  // queueing past the timeout) can make every eligible worker look stuck
  // for one sample and then resolve — that is degraded progress, not a
  // lost worker.
  constexpr int kWedgeConfirmTicks = 3;
  int consecutive_stuck = 0;
  for (;;) {
    co_await sim_.sleep(cfg_.suspicion_timeout);
    if (stopping_) co_return;
    const std::int64_t floor = dssp_advance_gate();
    // Inv. 13 ground truth: after a from-scratch re-derivation of the
    // floor, a gate-blocked worker whose need the floor still does not
    // cover is stuck; the invariant demands some eligible worker that is
    // NOT stuck (the slowest eligible worker trivially satisfies its own
    // gate, so an all-stuck eligible set means the gate lost someone).
    bool stuck_exists = false;
    bool eligible_can_proceed = false;
    for (int w = 0; w < n_total_workers(); ++w) {
      const auto wn = static_cast<std::size_t>(w);
      const bool stuck = dssp_blocked_[wn] && dssp_need_[wn] > floor;
      stuck_exists |= stuck;
      if (dssp_eligible(w) && !stuck) eligible_can_proceed = true;
    }
    if (stuck_exists && !eligible_can_proceed) {
      ++consecutive_stuck;
      if (consecutive_stuck >= kWedgeConfirmTicks) ++(*gate_wedge_ticks_);
    } else {
      consecutive_stuck = 0;
    }
  }
}

void Cluster::on_peer_dead(int observer_node, int dead_node) {
  mem_mark(observer_node, "X");
  const auto on = static_cast<std::size_t>(observer_node);
  const int dead_server = server_of_node(dead_node);
  const int my_server = server_of_node(observer_node);
  auto& lead = *leadership_[on];
  if (dead_server >= 0) {
    for (int g = 0; g < n_servers(); ++g) {
      if (lead.primary(g) != dead_server) continue;
      if (leases_on_) {
        // Lease-based failover: suspicion alone is not enough — queue the
        // group and act only once the dead primary's lease has expired
        // (lease_tick), so a slow-but-alive primary and its successor can
        // never release rounds concurrently.
        pending_failover_[on].insert(g);
        mem_mark(observer_node, "PF");
      } else {
        failover_scan(observer_node, g);
      }
    }
  }
  if (agg_on_ && node_state_[on].up) {
    const int rack = node_rack_[on];
    if (observer_node < n_total_workers() && observer_node != dead_node &&
        dead_node == rack_agg_node(rack)) {
      // This worker's rack aggregator died: folds held there are gone.
      worker_on_agg_dead(observer_node);
    }
    if (observer_node == rack_agg_node(rack) &&
        node_rack_[static_cast<std::size_t>(dead_node)] == rack) {
      // A rack member died in the aggregator's view: partial folds may now
      // be forwardable without it.
      agg_flush_all(observer_node);
    }
  }
  // A server's expected worker set shrank: re-evaluate open rounds.
  if (my_server >= 0 && node_state_[on].up) inject_recheck(my_server);
}

void Cluster::failover_scan(int observer_node, int group) {
  const auto on = static_cast<std::size_t>(observer_node);
  const int my_server = server_of_node(observer_node);
  auto& lead = *leadership_[on];
  const auto& view = *membership_[on];
  // The believed leader of the group died: find the first live replica in
  // chain order. Every observer runs the same scan over its own view, so
  // converged views elect the same successor.
  int successor = -1;
  for (int k = 0; k < cfg_.replication; ++k) {
    const int candidate = lead.member(group, k);
    // A draining node refuses new leadership and a retired node is gone for
    // good — skip both. Ground truth stands in for the drain advertisement
    // the node's final beacons carry; every observer skips the same nodes,
    // so converged views still elect the same successor.
    const auto& cs = node_state_[static_cast<std::size_t>(
        server_node(candidate))];
    if (cs.draining || cs.retired) continue;
    if (view.alive(server_node(candidate))) {
      successor = candidate;
      break;
    }
  }
  if (successor < 0) {
    // Nobody visible. If ground truth agrees the whole group is gone for
    // good, the shard is unrecoverable — fail loudly rather than heartbeat
    // forever.
    bool truly_lost = true;
    for (int k = 0; k < cfg_.replication; ++k) {
      if (!permanently_down(server_node(lead.member(group, k)))) {
        truly_lost = false;
        break;
      }
    }
    if (truly_lost) {
      throw std::runtime_error(
          "shard group " + std::to_string(group) +
          " lost every replica (replication " +
          std::to_string(cfg_.replication) +
          "); raise the replication factor or restart a server");
    }
    return;  // views disagree with truth; wait for beacons
  }
  if (successor == my_server) takeover_group(my_server, group);
}

void Cluster::takeover_group(int server, int group) {
  const auto node = static_cast<std::size_t>(server_node(server));
  // A draining or retired server never takes leadership (invariant 12):
  // the drain exists to shed groups, not collect them.
  if (node_state_[node].draining || node_state_[node].retired) return;
  auto& lead = *leadership_[node];
  const std::int64_t epoch = lead.epoch(group) + 1;
  if (!lead.adopt(group, epoch, server)) return;
  ++failovers_;
  mem_mark(server_node(server), "F");
  seed_self_lease(server, group);
  update_acting(server, group);
  // Open rounds restart from empty accumulators under the new epoch;
  // workers re-push on adoption, and rounds that committed before the old
  // primary died are answered from the replicated state (stale-push reply).
  auto& ss = *servers_[static_cast<std::size_t>(server)];
  for (std::int64_t s = 0; s < partition_.num_slices(); ++s) {
    const auto si = static_cast<std::size_t>(s);
    if (partition_.slices[si].server != group) continue;
    for (auto& c : ss.contrib[si]) c = 0;
  }
  announce_primary(server, group, epoch, server);
  // The announcement skips this node, but a colocated worker shares the
  // adopted view and must re-push like every other worker.
  if (static_cast<int>(node) < n_total_workers()) {
    worker_repush_group(static_cast<int>(node), group);
  }
}

void Cluster::announce_primary(int from_server, int group,
                               std::int64_t epoch, int primary) {
  const int src = server_node(from_server);
  for (int peer = 0; peer < total_nodes(); ++peer) {
    if (peer == src) continue;
    if (!reachable(peer)) continue;
    net::Message m;
    m.src = src;
    m.dst = peer;
    m.kind = net::MsgKind::kNewPrimary;
    m.slice = group;
    m.iteration = epoch;
    m.worker = primary;
    m.bytes = net::kControlBytes;
    post_tracked(m);
  }
}

// ---------------------------------------------------------------------------
// Elastic scale-out: node admission, shard rebalancing, lease-based
// leadership (docs/PROTOCOL.md).
// ---------------------------------------------------------------------------

void Cluster::execute_join(const net::NodeJoin& j) {
  const auto nn = static_cast<std::size_t>(j.node);
  auto& ns = node_state_[nn];
  if (ns.joined) return;  // defensive; validate() rejects duplicate joins
  ns.joined = true;
  ns.up = true;
  ns.epoch += 1;  // incarnation 1: distinct from the never-alive process 0
  ++joins_;
  mem_mark(j.node, "J+");
  // Bootstrap the joiner's own view from ground truth (it was handed the
  // member list on admission); everyone else learns of the joiner from its
  // first beacons.
  for (int p = 0; p < total_nodes(); ++p) {
    if (!node_state_[static_cast<std::size_t>(p)].joined) continue;
    membership_[nn]->mark_joined(p, local_now(j.node));
  }
  if (scale_plane_) {
    // Freeze the weight-aware plan at admission time: the joiner carries it
    // in its join request, so every node resolves the same plan no matter
    // when the request arrives or how the push-byte gauges move afterwards.
    const int joiner = server_of_node(j.node);
    auto plan = weighted_rebalance_plan(joiner);
    for (const int g : plan) granted_groups_.insert(g);
    join_plan_.emplace(joiner, std::move(plan));
  }
  sim_.spawn(worker_rejoin(j.node, ns.epoch));
  sim_.spawn(server_admit(j.node, ns.epoch));
}

sim::Task Cluster::server_admit(int node, std::int64_t epoch) {
  const int joiner = server_of_node(node);
  const auto nn = static_cast<std::size_t>(node);
  const std::vector<int> plan = rebalance_plan(joiner);
  for (;;) {
    // Broadcast the rebalance ask, then retry on a suspicion-timeout
    // cadence until every planned group is ours in our own view. The ask is
    // idempotent at the donors (an in-flight or completed handover skips
    // the group), so lost broadcasts cost latency, never correctness.
    // A drain supersedes the admission: the node no longer wants shard
    // leadership, so stop asking for it (otherwise this loop and the drain
    // migrations ping-pong the groups forever).
    if (node_state_[nn].draining || node_state_[nn].retired) co_return;
    bool owned = true;
    for (const int g : plan) {
      if (leadership_[nn]->primary(g) != joiner) {
        owned = false;
        break;
      }
    }
    if (owned) co_return;
    for (int peer = 0; peer < total_nodes(); ++peer) {
      if (peer == node) continue;
      if (!node_state_[static_cast<std::size_t>(peer)].joined) continue;
      if (!reachable(peer)) continue;
      net::Message m;
      m.src = node;
      m.dst = peer;
      m.kind = net::MsgKind::kServerJoin;
      m.worker = joiner;
      m.iteration = node_state_[nn].epoch;  // incarnation
      m.bytes = net::kControlBytes;
      post_tracked(m);
    }
    co_await sim_.sleep(cfg_.suspicion_timeout);
    if (node_state_[nn].epoch != epoch || stopping_) co_return;
  }
}

std::vector<int> Cluster::rebalance_plan(int joiner_server) const {
  // Scale plane: the weighted plan was frozen cluster-globally when the
  // join executed (carried in the join request, in the narrative), so the
  // joiner's admission loop and the donors' kServerJoin handlers agree on
  // it even as push-byte observations keep moving.
  if (scale_plane_) {
    const auto it = join_plan_.find(joiner_server);
    if (it != join_plan_.end()) return it->second;
  }
  // Deterministic planner: joiner k (0-based in id order) takes its fair
  // share of contiguous groups, max(1, n_groups / (n_base + k + 1)),
  // starting at (k * take) % n_groups. A pure function of the config, so
  // every node computes the same plan without coordination.
  const int n_base = n_servers();
  const int k = joiner_server - n_base;
  const int take = std::max(1, n_base / (n_base + k + 1));
  std::vector<int> plan;
  plan.reserve(static_cast<std::size_t>(take));
  const int start = (k * take) % n_base;
  for (int i = 0; i < take; ++i) plan.push_back((start + i) % n_base);
  return plan;
}

void Cluster::start_migration(int donor, int group, int target) {
  if (migrations_in_progress_.count(group) > 0) return;  // already moving
  auto& ss = *servers_[static_cast<std::size_t>(donor)];
  MigrationState ms;
  ms.donor = donor;
  ms.group = group;
  ms.target = target;
  ms.t0 = sim_.now();
  // Per-slice reliable transfer of parameters plus same-sized optimizer
  // state. Round releases for the group freeze (group_frozen) until the
  // last slice is acked, so no worker can observe a version the target
  // does not hold — the same barrier rule replication uses.
  const int tnode = server_node(target);
  for (std::int64_t s = 0; s < partition_.num_slices(); ++s) {
    const auto si = static_cast<std::size_t>(s);
    const auto& sl = partition_.slices[si];
    if (sl.server != group) continue;
    net::Message m;
    m.src = server_node(donor);
    m.dst = tnode;
    m.kind = net::MsgKind::kMigrate;
    m.slice = s;
    m.layer = sl.layer;
    m.priority = item_priority(s);
    m.worker = donor;
    m.version = ss.version[si];
    m.logical = 2 * sl.payload_bytes();  // params + optimizer state
    m.bytes = wire_payload(2 * sl.payload_bytes()) + net::kHeaderBytes;
    arm_reliable(m, -1);
    migration_wait_.emplace(m.msg_id, group);
    const TimeS rto = pending_tx_.at(m.msg_id).rto;
    net_->post(m);
    schedule_retx_timer(m.msg_id, rto);
    ++ms.outstanding;
  }
  if (ms.outstanding == 0) {
    // The group owns no slices (possible under kvstore placement, where
    // whole small layers land on random servers). There is no state to
    // copy, but the handover must still happen or the admission loop asks
    // forever: transfer leadership directly.
    finish_migration(ms);
    return;
  }
  mem_mark(server_node(donor), "M>");
  migrations_in_progress_.emplace(group, ms);
}

void Cluster::on_migrate_ack(std::int64_t msg_id) {
  const auto it = migration_wait_.find(msg_id);
  if (it == migration_wait_.end()) return;
  const int group = it->second;
  migration_wait_.erase(it);
  const auto mit = migrations_in_progress_.find(group);
  if (mit == migrations_in_progress_.end()) return;
  MigrationState& ms = mit->second;
  if (--ms.outstanding > 0) return;
  const MigrationState done = ms;
  migrations_in_progress_.erase(mit);
  finish_migration(done);
}

void Cluster::finish_migration(const MigrationState& ms) {
  // The target acked every slice: hand leadership over. The donor adopts
  // first (it stops serving the group at this instant), then announces; the
  // parked pulls are forwarded *after* the announcement on the same
  // donor->target NIC pair, so FIFO delivery makes the target adopt the new
  // epoch before any forwarded pull reaches it.
  const auto dn = static_cast<std::size_t>(server_node(ms.donor));
  auto& lead = *leadership_[dn];
  if (lead.primary(ms.group) != ms.donor) return;  // superseded meanwhile
  const std::int64_t epoch = lead.epoch(ms.group) + 1;
  lead.adopt(ms.group, epoch, ms.target);
  ++migrations_;
  update_acting(ms.donor, ms.group);
  mem_mark(server_node(ms.donor), "M+");
  if (tracing()) {
    tracer_->span(lane("n", server_node(ms.donor), ".mig"), ms.t0, sim_.now(),
                  "mig" + std::to_string(ms.group));
  }
  announce_primary(ms.donor, ms.group, epoch, ms.target);
  auto& ss = *servers_[static_cast<std::size_t>(ms.donor)];
  for (std::int64_t s = 0; s < partition_.num_slices(); ++s) {
    const auto si = static_cast<std::size_t>(s);
    if (partition_.slices[si].server != ms.group) continue;
    // Contributions to rounds the donor will never finish die here; the
    // workers re-push them to the target on adoption (the ledger's per-
    // round cap keeps the merge exactly-once).
    for (auto& c : ss.contrib[si]) c = 0;
    auto parked = std::move(ss.pending[si]);
    ss.pending[si].clear();
    for (const auto& p : parked) {
      net::Message fwd;
      fwd.src = server_node(ms.donor);
      fwd.dst = server_node(ms.target);
      fwd.kind = net::MsgKind::kPullRequest;
      fwd.slice = s;
      fwd.layer = partition_.slices[si].layer;
      fwd.priority = item_priority(s);
      fwd.iteration = p.iteration;
      fwd.worker = p.worker;
      fwd.bytes = net::kControlBytes;
      post_tracked(fwd);
    }
  }
  // The colocated worker shares the donor's adopted view: re-push like
  // every other worker will on adoption.
  if (static_cast<int>(dn) < n_total_workers()) {
    worker_repush_group(static_cast<int>(dn), ms.group);
  }
}

void Cluster::on_beacon(int n, int src, const Membership::BeaconEffect& effect,
                        bool echo_alive) {
  const auto nn = static_cast<std::size_t>(n);
  const int src_server = server_of_node(src);
  const int my_server = server_of_node(n);
  auto& lead = *leadership_[nn];
  if (effect.superseded) {
    // A higher incarnation while the old one was still believed alive: the
    // old process is gone *now*. Leases it held are void immediately — not
    // after a silence threshold — and open rounds re-evaluate.
    ++supersessions_;
    mem_mark(n, "S");
    if (src_server >= 0) {
      for (int g = 0; g < n_servers(); ++g) {
        if (lead.primary(g) == src_server) lead.expire_lease(g, local_now(n));
      }
    }
    if (my_server >= 0 && node_state_[nn].up) inject_recheck(my_server);
  }
  if (partition_plane_ && effect.revived && node_state_[nn].up) {
    // A peer this view held dead is back (partition healed, or a one-way cut
    // opened): drain pushes parked against it, and — when the revived peer
    // hosts a worker — re-admit that worker under the bounded-staleness
    // rejoin rule so open rounds stop waiting for contributions it parked
    // on the far side. Its catch-up drains through stale-push replies.
    if (n < n_total_workers()) unpark_worker(n);
    if (my_server >= 0 && src < n_total_workers()) {
      auto& ss = *servers_[static_cast<std::size_t>(my_server)];
      const auto sw = static_cast<std::size_t>(src);
      bool leads_any = false;
      for (std::int64_t s = 0; s < partition_.num_slices(); ++s) {
        const auto si = static_cast<std::size_t>(s);
        if (lead.primary(partition_.slices[si].server) != my_server) continue;
        ss.active_from[si][sw] =
            std::max(ss.active_from[si][sw],
                     ss.version[si] + cfg_.rejoin_slack);
        leads_any = true;
      }
      if (leads_any) inject_recheck(my_server);
    }
  }
  if (!leases_on_ || src_server < 0) return;
  // Lease renewal: a beacon from the believed leader of a group extends
  // that group's lease in this view; a beacon from a chain peer of an
  // own-led group extends the self-lease the primary must hold to keep
  // releasing rounds. With the partition plane armed the self-lease renews
  // only on positive echoes — a chain peer that no longer hears us is
  // already counting down our lease, however loudly it beacons.
  for (int g = 0; g < n_servers(); ++g) {
    if (lead.primary(g) == src_server) {
      lead.renew_lease(g, local_now(n) + lease_len_);
      ++lease_renewals_;
    }
    if (my_server >= 0 && lead.primary(g) == my_server &&
        lead.chain_offset(g, src_server) > 0 &&
        (!partition_plane_ || echo_alive)) {
      self_lease_[nn][static_cast<std::size_t>(g)] =
          local_now(n) + lease_len_ / 2.0;
    }
  }
}

bool Cluster::view_has_quorum(int n) const {
  const auto& view = *membership_[static_cast<std::size_t>(n)];
  int members = 0;
  int live = 0;
  for (int p = 0; p < total_nodes(); ++p) {
    if (!view.joined(p)) continue;
    ++members;
    if (p == n || view.alive(p)) ++live;
  }
  return 2 * live > members;
}

void Cluster::lease_tick(int n) {
  const auto nn = static_cast<std::size_t>(n);
  if (!node_state_[nn].up) return;
  auto& lead = *leadership_[nn];
  const int my_server = server_of_node(n);
  // Every deadline compared below was stamped with this node's clock, so
  // the whole tick runs on it; drift cancels within a node and the
  // cross-node disagreement is absorbed by lease_wait_margin().
  const TimeS now = local_now(n);
  // (a) Self-fencing: an own-led group whose self-lease (fed by chain-peer
  // beacons) lapsed may already be considered expired by the peers — stop
  // releasing rounds *before* any successor's lease on us can run out (the
  // self-lease is half the lease, renewed by the same beacons that renew
  // the peers' full lease). Reopen only after renewed contact plus a full
  // lease of settle time: a successor that acted on the expiry has
  // announced by then, which turns the reopen into an adoption instead.
  if (my_server >= 0 && cfg_.replication > 1) {
    auto& fences = fenced_[nn];
    for (int g = 0; g < n_servers(); ++g) {
      const bool mine = lead.primary(g) == my_server;
      const auto fit = fences.find(g);
      if (!mine) {
        if (fit != fences.end()) fences.erase(g);
        continue;
      }
      const TimeS sl = self_lease_[nn][static_cast<std::size_t>(g)];
      // A dead chain peer cannot renew the self-lease, but it cannot elect
      // itself either: while every strict chain peer of the group is dead
      // in this view AND the view still holds a quorum, the primary keeps
      // its lease on quorum evidence — its own beacons reach a majority,
      // so no observer's lease on it can lapse and no successor may act.
      bool peers_dead = true;
      for (int off = 1; off < cfg_.replication; ++off) {
        const int peer = lead.member(g, off);
        if (peer == my_server) continue;
        if (membership_[nn]->alive(server_node(peer))) {
          peers_dead = false;
          break;
        }
      }
      // Partition plane: quorum is a *precondition* for holding the lease at
      // all. A minority-side primary still hearing its co-minority chain
      // peers (symmetric cut through the chain) would otherwise keep
      // releasing rounds while the majority elects a successor.
      const bool quorum_ok = !partition_plane_ || view_has_quorum(n);
      const bool held =
          quorum_ok && (now <= sl || (peers_dead && view_has_quorum(n)));
      if (fit == fences.end()) {
        if (!held) {
          fences.emplace(g, now);
          ++lease_expiries_;
          mem_mark(n, "L-");
          update_acting(my_server, g);
        }
      } else if (held && now - fit->second >= lease_len_) {
        fences.erase(g);
        mem_mark(n, "L+");
        update_acting(my_server, g);
        inject_recheck(my_server);
      } else if (partition_plane_ && !held) {
        // Keep the fence stamp at the last not-held tick, so the reopen age
        // measures *continuously held* time. A cut longer than the lease
        // would otherwise age the fence past lease_len_ while severed and
        // reopen at the instant of heal — before the majority successor's
        // retransmitted announcement can cross the healed (and possibly
        // congested) fabric and turn the reopen into an adoption.
        fit->second = now;
      }
    }
  }
  // (b) Deferred failovers: act only once the old primary's lease expired
  // in this view AND the view holds a quorum of the joined members — a
  // minority-partitioned observer (which sees everyone else dead and every
  // lease expired) must never elect itself.
  auto& pend = pending_failover_[nn];
  if (pend.empty()) return;
  const auto& view = *membership_[nn];
  for (auto it = pend.begin(); it != pend.end();) {
    const int g = *it;
    if (view.alive(server_node(lead.primary(g)))) {
      it = pend.erase(it);  // the primary came back before the lease ran out
      if (partition_plane_) quorum_denied_[nn].erase(g);
      continue;
    }
    // Drift margin: this observer's clock may run fast relative to the
    // primary's self-lease clock, so wait out the worst-case disagreement
    // past the deadline before treating the lease as lapsed everywhere.
    if (now <= lead.lease_deadline(g) + lease_wait_margin()) {
      ++it;
      continue;
    }
    if (!view_has_quorum(n)) {
      // Minority side: the lease is gone but this observer must not elect
      // anyone. Count each denial episode once; heal clears it.
      if (partition_plane_ && quorum_denied_[nn].insert(g).second) {
        ++quorum_denied_failovers_;
        mem_mark(n, "QD");
      }
      if (partition_plane_) {
        // Without a quorum this observer cannot distinguish a dead primary
        // from a severed one, so its lease clock must not run: re-arm the
        // recorded grant each denied tick. Once quorum returns (heal), a
        // failover needs a *fresh* full lease to lapse from that moment —
        // ample time for the surviving primary's resumed beacons to revive
        // it in this view and cancel the pending failover. (Heal revives
        // peers one beacon at a time; quorum can return before the specific
        // primary does, and acting on the severed-era deadline then would
        // elect a second head for a group that never lost its first.)
        lead.renew_lease(g, now + lease_len_);
      }
      ++it;
      continue;
    }
    if (partition_plane_) quorum_denied_[nn].erase(g);
    it = pend.erase(it);
    failover_scan(n, g);
  }
}

bool Cluster::group_frozen(int server, int group) const {
  const auto mit = migrations_in_progress_.find(group);
  if (mit != migrations_in_progress_.end() && mit->second.donor == server) {
    return true;
  }
  return leases_on_ &&
         fenced_[static_cast<std::size_t>(server_node(server))].count(group) >
             0;
}

void Cluster::seed_self_lease(int server, int group) {
  if (!leases_on_ || cfg_.replication <= 1) return;
  const int node = server_node(server);
  const auto nn = static_cast<std::size_t>(node);
  auto& sl = self_lease_[nn][static_cast<std::size_t>(group)];
  sl = std::max(sl, local_now(node) + lease_len_ / 2.0);
}

TimeS Cluster::local_now(int n) const {
  if (!drift_on_) return sim_.now();
  const auto nn = static_cast<std::size_t>(n);
  return sim_.now() * (1.0 + clock_rate_[nn]) + clock_offset_[nn];
}

void Cluster::unpark_worker(int w) {
  const auto wn = static_cast<std::size_t>(w);
  if (!node_state_[wn].up || parked_[wn].empty()) return;
  auto items = std::move(parked_[wn]);
  parked_[wn].clear();
  auto& ws = *workers_[wn];
  for (auto& item : items) {
    // Original sequence numbers are kept, so a parked push re-enters the
    // priority queue exactly where it would have competed; the sender
    // re-evaluates the (possibly still-dead, possibly re-led) destination.
    if (tracing() && item.parked_at > 0.0) {
      tracer_->span(lane("w", w, ".hold"), item.parked_at, sim_.now(), "park");
    }
    ws.sendq.push(item);
    sendq_depth_changed(w, +1);
  }
}

void Cluster::update_acting(int server, int group) {
  // Ground truth maintained outside any view: is this server *acting* as
  // the group's primary right now (up, believes it leads, not fenced)?
  // Overlapping intervals across servers are precisely the split-view
  // window lease-based failover exists to close.
  const auto sn = static_cast<std::size_t>(server);
  const auto nn = static_cast<std::size_t>(server_node(server));
  Acting& a = acting_[sn][static_cast<std::size_t>(group)];
  const bool should = node_state_[nn].up &&
                      leadership_[nn]->primary(group) == server &&
                      !(leases_on_ && fenced_[nn].count(group) > 0);
  if (should == a.open) return;
  if (should) {
    for (int o = 0; o < n_total_servers(); ++o) {
      if (o == server) continue;
      if (acting_[static_cast<std::size_t>(o)][static_cast<std::size_t>(group)]
              .open) {
        ++dual_primary_windows_;
        mem_mark(server_node(server), "DP");
        break;
      }
    }
    a.open = true;
    a.since = sim_.now();
  } else {
    a.open = false;
    if (tracing()) {
      tracer_->span(lane("n", static_cast<int>(nn), ".lease"), a.since,
                    sim_.now(), "p" + std::to_string(group));
    }
  }
}

void Cluster::inject_recheck(int server) {
  auto& ss = *servers_[static_cast<std::size_t>(server)];
  RxItem item;
  item.msg.kind = net::MsgKind::kRecheck;
  item.priority = -1;  // ahead of all wire traffic
  item.seq = ss.rx_seq++;
  ss.rxq.push(item);
  rxq_depth_changed(server, +1);
}

Bytes Cluster::replicated_state_bytes(int server) const {
  // Parameters plus same-sized optimizer state (momentum) for every slice
  // whose group this server replicates.
  const auto& lead = *leadership_[static_cast<std::size_t>(server_node(server))];
  Bytes total = 0;
  for (std::int64_t s = 0; s < partition_.num_slices(); ++s) {
    const auto& sl = partition_.slices[static_cast<std::size_t>(s)];
    if (lead.chain_offset(sl.server, server) < 0) continue;
    total += 2 * sl.payload_bytes();
  }
  return total;
}

sim::Task Cluster::checkpoint_loop(int s) {
  auto& ss = *servers_[static_cast<std::size_t>(s)];
  const auto node = static_cast<std::size_t>(server_node(s));
  for (;;) {
    co_await sim_.sleep(cfg_.checkpoint_period);
    if (stopping_) co_return;
    if (!node_state_[node].up) continue;
    const std::int64_t epoch = node_state_[node].epoch;
    // Snapshot versions now; the write commits only if the process survives
    // the full (simulated) storage write — a crash mid-write keeps the
    // previous checkpoint (atomic rename semantics).
    std::vector<std::int64_t> snapshot = ss.version;
    const Bytes bytes = replicated_state_bytes(s);
    const TimeS t0 = sim_.now();
    co_await sim_.sleep(static_cast<double>(bytes) /
                        cfg_.checkpoint_bytes_per_sec);
    if (node_state_[node].epoch != epoch) continue;  // torn write discarded
    ckpt_versions_[static_cast<std::size_t>(s)] = std::move(snapshot);
    ++checkpoints_written_;
    checkpoint_bytes_ += bytes;
    if (tracing()) {
      tracer_->span(lane("n", server_node(s), ".ckpt"), t0, sim_.now(), "ck");
    }
  }
}

sim::Task Cluster::server_rehydrate(int s, std::int64_t epoch) {
  auto& ss = *servers_[static_cast<std::size_t>(s)];
  const auto node = static_cast<std::size_t>(server_node(s));
  const TimeS t0 = sim_.now();
  // Load the last completed checkpoint from stable storage.
  const Bytes ckpt_bytes = replicated_state_bytes(s);
  co_await sim_.sleep(static_cast<double>(ckpt_bytes) /
                      cfg_.checkpoint_bytes_per_sec);
  if (node_state_[node].epoch != epoch) co_return;  // crashed again
  const auto& lead = *leadership_[node];
  std::vector<std::int64_t> mine;
  for (std::int64_t sl = 0; sl < partition_.num_slices(); ++sl) {
    const auto si = static_cast<std::size_t>(sl);
    const int group = partition_.slices[si].server;
    if (lead.chain_offset(group, s) < 0) continue;
    ss.version[si] = ckpt_versions_[static_cast<std::size_t>(s)][si];
    mine.push_back(sl);
  }
  // Delta-sync: ask the group peers for everything newer than the
  // checkpoint; only the current leader answers, so stale backups cannot
  // poison the rehydrated state. Retry on a suspicion-timeout cadence until
  // every slice answered or no live peer remains to ask.
  for (int attempt = 0; attempt < 8; ++attempt) {
    bool asked = false;
    for (const std::int64_t sl : mine) {
      const auto si = static_cast<std::size_t>(sl);
      if (ss.sync_epoch[si] == node_state_[node].epoch) continue;
      const int group = partition_.slices[si].server;
      for (int k = 0; k < cfg_.replication; ++k) {
        const int peer = lead.member(group, k);
        if (peer == s) continue;
        const int pnode = server_node(peer);
        if (!membership_[node]->alive(pnode) || !reachable(pnode)) continue;
        net::Message m;
        m.src = server_node(s);
        m.dst = pnode;
        m.kind = net::MsgKind::kSyncRequest;
        m.slice = sl;
        m.layer = partition_.slices[si].layer;
        m.version = ss.version[si];
        m.bytes = net::kControlBytes;
        post_tracked(m);
        asked = true;
      }
    }
    if (!asked) break;  // nothing left to ask (all synced or all peers gone)
    co_await sim_.sleep(cfg_.suspicion_timeout);
    if (node_state_[node].epoch != epoch || stopping_) co_return;
    bool all = true;
    for (const std::int64_t sl : mine) {
      if (ss.sync_epoch[static_cast<std::size_t>(sl)] !=
          node_state_[node].epoch) {
        all = false;
        break;
      }
    }
    if (all) break;
  }
  ++rehydrations_;
  rehydration_time_sum_ += sim_.now() - t0;
  if (tracing()) {
    tracer_->span(lane("n", server_node(s), ".ckpt"), t0, sim_.now(), "rehy");
  }
  // Re-assert leadership of every group this server still believes it
  // leads (nobody announced a newer epoch during the sync): a bumped epoch
  // makes the workers re-push the rounds whose pushes died with the old
  // process.
  for (int g = 0; g < n_servers(); ++g) {
    auto& l = *leadership_[node];
    if (l.primary(g) != s) continue;
    const std::int64_t e = l.epoch(g) + 1;
    l.adopt(g, e, s);
    seed_self_lease(s, g);
    update_acting(s, g);
    announce_primary(s, g, e, s);
  }
  inject_recheck(s);
}

sim::Task Cluster::worker_rejoin(int w, std::int64_t epoch) {
  auto& ws = *workers_[static_cast<std::size_t>(w)];
  const auto wn = static_cast<std::size_t>(w);
  const TimeS t0 = sim_.now();
  for (;;) {
    // Broadcast the join to every reachable server node; current group
    // leaders answer with fresh parameters and open a bounded-staleness
    // window before the aggregation rounds wait on this worker again.
    for (int s = 0; s < n_total_servers(); ++s) {
      const int snode = server_node(s);
      if (snode == w) continue;  // own (restarted) colocated server
      if (!node_state_[static_cast<std::size_t>(snode)].joined) continue;
      if (!reachable(snode)) continue;
      net::Message m;
      m.src = w;
      m.dst = snode;
      m.kind = net::MsgKind::kJoinRequest;
      m.worker = w;
      m.iteration = node_state_[wn].epoch;  // incarnation
      m.bytes = net::kControlBytes;
      post_tracked(m);
    }
    // Colocated self-serve: the local server (once rehydrated) answers the
    // join inline — no wire hop for the local shard.
    if (!cfg_.dedicated_servers) {
      const int s = w;
      auto& ss = *servers_[static_cast<std::size_t>(s)];
      const auto& lead = *leadership_[wn];
      for (std::int64_t sl = 0; sl < partition_.num_slices(); ++sl) {
        const auto si = static_cast<std::size_t>(sl);
        if (lead.primary(partition_.slices[si].server) != s) continue;
        ss.active_from[si][wn] = ss.version[si] + cfg_.rejoin_slack;
        send_params(s, sl, w);
      }
    }
    co_await sim_.sleep(cfg_.suspicion_timeout);
    if (node_state_[wn].epoch != epoch || stopping_) co_return;
    bool complete = true;
    std::int64_t start_iter = target_iterations_;
    for (std::int64_t sl = 0; sl < partition_.num_slices(); ++sl) {
      const std::int64_t v = ws.recv_version[static_cast<std::size_t>(sl)];
      if (v < 0) {
        complete = false;
        break;
      }
      start_iter = std::min(start_iter, v);
    }
    if (!complete) continue;
    ++worker_rejoins_;
    max_rejoin_lag_ = std::max(max_rejoin_lag_, sim_.now() - t0);
    mem_mark(w, "J");
    sim_.spawn(worker_loop(w, start_iter));
    co_return;
  }
}

void Cluster::execute_crash(const net::NodeCrash& c) {
  const auto nn = static_cast<std::size_t>(c.node);
  if (c.node >= total_nodes()) return;  // plan names a node we don't have
  auto& ns = node_state_[nn];
  if (!ns.up) return;  // already down (overlapping plans)
  ns.up = false;
  ns.draining = false;  // the drain intent dies with the process
  ns.epoch += 1;
  ns.down_since = sim_.now();
  ++crashes_;
  mem_mark(c.node, "X");
  teardown_process_state(c.node);
}

void Cluster::teardown_process_state(int node) {
  const auto nn = static_cast<std::size_t>(node);
  // All in-memory state dies with the process.
  seen_[nn].clear();
  while (net_->inbox(node).try_pop()) {
  }
  if (!cfg_.dedicated_servers || node < cfg_.n_workers) {
    auto& ws = *workers_[nn];
    while (ws.sendq.try_pop()) {
    }
    // Reserved-but-unpopped items survive the drain; resync the depth view.
    sendq_depth_changed(node,
                        static_cast<std::int64_t>(ws.sendq.size()) -
                            ws.sendq_depth);
    ws.param_bytes.assign(ws.param_bytes.size(), 0);
    ws.notify_count.assign(ws.notify_count.size(), 0);
    ws.notify_version.assign(ws.notify_version.size(), -1);
    ws.pulled_round.assign(ws.pulled_round.size(), -1);
    ws.recv_version.assign(ws.recv_version.size(), -1);  // holds nothing
    ws.recv_bytes.assign(ws.recv_bytes.size(), 0);
    ws.recv_inflight.assign(ws.recv_inflight.size(), -1);
    if (partition_plane_) parked_[nn].clear();  // parked copies die with it
    if (scale_plane_) shed_parked_[nn].clear();  // shed copies die with it
  }
  // Rack folds are in-memory aggregator state; covers already forwarded are
  // payload-carried data and survive (the server consumes them).
  if (agg_on_) agg_rounds_[nn].clear();
  const int s = server_of_node(node);
  if (s >= 0) {
    auto& ss = *servers_[static_cast<std::size_t>(s)];
    while (ss.rxq.try_pop()) {
    }
    rxq_depth_changed(s, static_cast<std::int64_t>(ss.rxq.size()) -
                             ss.rxq_depth);
    ss.round_bytes.assign(ss.round_bytes.size(), 0);
    for (auto& row : ss.contrib) std::fill(row.begin(), row.end(), 0);
    for (auto& p : ss.pending) p.clear();
    // Buffered run-ahead contributions are server memory; workers re-push
    // their whole outstanding window when leadership moves.
    if (dssp_on_) dssp_future_[static_cast<std::size_t>(s)].clear();
    // Commit barriers owned by the dead primary die with it; the replicated
    // copies (if any landed) survive at the backups.
    for (auto it = commits_.begin(); it != commits_.end();) {
      it = it->second.server == s ? commits_.erase(it) : std::next(it);
    }
    // Acting intervals close with the process (ground truth).
    for (int g = 0; g < n_servers(); ++g) update_acting(s, g);
  }
  if (leases_on_) {
    // Fences and deferred failovers are process state.
    fenced_[nn].clear();
    pending_failover_[nn].clear();
    if (partition_plane_) quorum_denied_[nn].clear();
  }
  // In-flight migrations die with the donor's process, and with a target
  // that will never return (a restarting target is bridged by
  // retransmission: its dedup memory clears with the crash, so re-applied
  // copies ack and the handover completes). This must run before the
  // generic pending_tx_ sweep below so a dead donor's timers cannot
  // complete a handover the donor no longer remembers.
  for (auto it = migrations_in_progress_.begin();
       it != migrations_in_progress_.end();) {
    const MigrationState& ms = it->second;
    const bool donor_died = server_node(ms.donor) == node;
    const bool target_gone =
        server_node(ms.target) == node && permanently_down(node);
    if (donor_died || target_gone) {
      for (auto w = migration_wait_.begin(); w != migration_wait_.end();) {
        if (w->second == it->first) {
          pending_tx_.erase(w->first);
          w = migration_wait_.erase(w);
        } else {
          ++w;
        }
      }
      it = migrations_in_progress_.erase(it);
    } else {
      ++it;
    }
  }
  // The dead process no longer retransmits anything it sent, and — when it
  // will never return — nothing addressed to it can ever be delivered, so
  // those timers must not probe forever.
  const bool forever = permanently_down(node);
  for (auto it = pending_tx_.begin(); it != pending_tx_.end();) {
    const net::Message& m = it->second.msg;
    if (m.src == node || (forever && m.dst == node)) {
      const std::int64_t id = it->first;
      it = pending_tx_.erase(it);
      on_replicate_ack(id);  // a dead backup cannot hold a barrier hostage
    } else {
      ++it;
    }
  }
}

void Cluster::execute_restart(const net::NodeCrash& c) {
  const auto nn = static_cast<std::size_t>(c.node);
  if (c.node >= total_nodes()) return;
  auto& ns = node_state_[nn];
  if (ns.up) return;
  if (ns.retired) return;  // invariant 12: a retired node never returns
  ns.up = true;
  ns.epoch += 1;
  ns.down_since = -1.0;
  ++restarts_;
  mem_mark(c.node, "R");
  // Fresh process: optimistic liveness view, empty dedup memory (msg ids
  // are globally unique, so re-learning them is safe). View stamps live on
  // the node's local clock.
  const TimeS lnow = local_now(c.node);
  membership_[nn]->reset(lnow);
  const int s = server_of_node(c.node);
  if (leases_on_ && cfg_.replication > 1 && s >= 0) {
    // The restarted process may still believe it leads groups a successor
    // took over during the outage: fence them (self-lease lapsed while
    // down) so the stale belief can never release a round concurrently
    // with the real leader. The fences lift through the ordinary settle
    // path once renewed chain contact proves the belief right — or the
    // successor's (retransmitted) announcement corrects it first.
    auto& lead = *leadership_[nn];
    for (int g = 0; g < n_servers(); ++g) {
      if (lead.primary(g) != s) continue;
      fenced_[nn][g] = lnow;
      ++lease_expiries_;
      mem_mark(c.node, "L-");
      self_lease_[nn][static_cast<std::size_t>(g)] =
          lnow + lease_len_ / 2.0;
    }
  }
  if (s >= 0) sim_.spawn(server_rehydrate(s, ns.epoch));
  if (!cfg_.dedicated_servers || c.node < cfg_.n_workers) {
    sim_.spawn(worker_rejoin(c.node, ns.epoch));
  }
}

// ---------------------------------------------------------------------------
// Voluntary drain/leave, weight-aware rebalancing and the SLO-driven
// autoscaler (docs/PROTOCOL.md, invariant 12).
// ---------------------------------------------------------------------------

void Cluster::execute_leave(const net::NodeLeave& l) {
  if (l.node < 0 || l.node >= total_nodes()) return;
  begin_drain(l.node);
}

void Cluster::begin_drain(int node) {
  const auto nn = static_cast<std::size_t>(node);
  auto& ns = node_state_[nn];
  if (!ns.up || !ns.joined || ns.draining || ns.retired) return;
  ns.draining = true;
  ns.drain_since = sim_.now();
  ++*drains_started_;
  mem_mark(node, "D-");
  sim_.spawn(drain_loop(node, ns.epoch));
}

double Cluster::group_weight(int group) const {
  // Observed push bytes credited to the group's ledgers, over a static
  // payload prior: the planner stays deterministic and sensible before any
  // observation lands, and a group's weight tracks what workers actually
  // push at it afterwards.
  double prior = 0.0;
  for (const auto& sl : partition_.slices) {
    if (sl.server == group) prior += static_cast<double>(sl.payload_bytes());
  }
  return prior + group_push_bytes_[static_cast<std::size_t>(group)];
}

std::vector<int> Cluster::weighted_rebalance_plan(int joiner_server) const {
  // Weight-aware planner: the joiner takes the hottest groups first until
  // it holds about a 1/shares slice of the observed push weight, where
  // shares counts the servers that will be serving after admission. Groups
  // already promised to an earlier (possibly still-migrating) joiner are
  // off the table.
  std::vector<int> candidates;
  candidates.reserve(static_cast<std::size_t>(n_servers()));
  std::vector<double> weights(static_cast<std::size_t>(n_servers()), 0.0);
  for (int g = 0; g < n_servers(); ++g) {
    weights[static_cast<std::size_t>(g)] = group_weight(g);
    if (granted_groups_.count(g) > 0) continue;
    candidates.push_back(g);
  }
  int shares = 1;  // the joiner itself
  for (int s = 0; s < n_total_servers(); ++s) {
    if (s == joiner_server) continue;
    const auto& ns = node_state_[static_cast<std::size_t>(server_node(s))];
    if (ns.joined && !ns.draining && !ns.retired) ++shares;
  }
  return weighted_share(weights, candidates, shares);
}

int Cluster::drain_target(int donor, int group) const {
  // Legal adopters only — home-chain members of the group or admitted
  // joiners, the two classes ShardLeadership::adopt accepts — that are
  // joined, up, and neither draining nor retired.
  std::vector<int> candidates;
  const int n_base = n_servers();
  for (int k = 0; k < cfg_.replication; ++k) {
    const int s = (group + k) % n_base;
    if (s != donor) candidates.push_back(s);
  }
  for (int s = n_base; s < n_total_servers(); ++s) {
    if (s != donor) candidates.push_back(s);
  }
  // With a topology attached, prefer landing the group's next primary in
  // the rack that pushes it hardest (the per-rack push-byte gauges).
  int hot_rack = -1;
  if (hierarchy_on_) {
    double hot = -1.0;
    for (std::size_t r = 0; r < rack_group_push_bytes_.size(); ++r) {
      const double v =
          rack_group_push_bytes_[r][static_cast<std::size_t>(group)];
      if (v > hot) {
        hot = v;
        hot_rack = static_cast<int>(r);
      }
    }
  }
  const auto& lead =
      *leadership_[static_cast<std::size_t>(server_node(donor))];
  int best = -1;
  int best_rank = 2;
  double best_load = 0.0;
  for (const int s : candidates) {
    const int sn = server_node(s);
    const auto& ns = node_state_[static_cast<std::size_t>(sn)];
    if (!ns.joined || !ns.up || ns.draining || ns.retired) continue;
    const int rank =
        hot_rack >= 0 && node_rack_[static_cast<std::size_t>(sn)] == hot_rack
            ? 0
            : 1;
    // Least-loaded-first keeps the remaining servers balanced as the
    // drainer's groups spread out; ties go to the smaller id.
    double load = 0.0;
    for (int g = 0; g < n_base; ++g) {
      if (lead.primary(g) == s) load += group_weight(g);
    }
    if (best < 0 || rank < best_rank ||
        (rank == best_rank &&
         (load < best_load || (load == best_load && s < best)))) {
      best = s;
      best_rank = rank;
      best_load = load;
    }
  }
  return best;
}

sim::Task Cluster::drain_loop(int node, std::int64_t epoch) {
  const int s = server_of_node(node);
  const auto nn = static_cast<std::size_t>(node);
  for (;;) {
    if (node_state_[nn].epoch != epoch || !node_state_[nn].up) {
      // A crash landed mid-drain: the drain intent died with the process
      // and the ordinary failover path owns recovery from here.
      co_return;
    }
    bool busy = false;
    const auto& lead = *leadership_[nn];
    for (int g = 0; g < n_servers(); ++g) {
      if (lead.primary(g) != s) continue;
      busy = true;
      if (migrations_in_progress_.count(g) > 0) continue;  // already moving
      const int target = drain_target(s, g);
      // No legal receiver right now (every candidate down or draining):
      // retry next tick — validate() guarantees a planned-leave schedule
      // always leaves a survivor, and the autoscaler only drains joiners,
      // whose groups can always fall back to their home chains.
      if (target >= 0) start_migration(s, g, target);
    }
    if (!busy) {
      // Still busy while we are the donor of an in-flight handover, and
      // while one is still landing *on* us (an admission transfer racing
      // the drain): retiring mid-flight would strand the group's state at
      // a node everyone is about to forget.
      for (const auto& [g, ms] : migrations_in_progress_) {
        if (ms.donor == s || ms.target == s) {
          busy = true;
          break;
        }
      }
    }
    if (!busy) {
      // Goodbye handshake: retire only once every live member's view has
      // adopted the handovers. While we wait, the reliable kNewPrimary
      // announcements keep retransmitting (across a partition if need be);
      // retiring earlier would tear those timers down with the process and
      // strand a severed observer on a leadership view naming a node that
      // no longer exists — exactly what invariant 12 audits.
      for (int p = 0; p < total_nodes() && !busy; ++p) {
        if (p == node) continue;
        const auto& ps = node_state_[static_cast<std::size_t>(p)];
        if (!ps.joined || !ps.up) continue;
        const auto& plead = *leadership_[static_cast<std::size_t>(p)];
        for (int g = 0; g < n_servers(); ++g) {
          if (plead.primary(g) == s) {
            busy = true;
            break;
          }
        }
      }
    }
    if (!busy) {
      retire_node(node);
      co_return;
    }
    co_await sim_.sleep(cfg_.suspicion_timeout);
    if (stopping_) co_return;
  }
}

void Cluster::retire_node(int node) {
  const auto nn = static_cast<std::size_t>(node);
  auto& ns = node_state_[nn];
  if (!ns.draining || ns.retired) return;
  ns.draining = false;
  ns.retired = true;
  ns.joined = false;
  ns.up = false;
  ns.epoch += 1;
  ns.down_since = sim_.now();
  ++*drains_completed_;
  mem_mark(node, "D+");
  if (tracing()) {
    tracer_->span(lane("n", node, ".mem"), ns.drain_since, sim_.now(),
                  "drain");
  }
  // The member leaves every view at once (its goodbye broadcast, in the
  // narrative): the quorum denominator shrinks with the cluster, so later
  // partitions are judged against the members that actually remain — and a
  // retired node never votes, contributes, or leads again (invariant 12;
  // permanently_down() and execute_restart() enforce the "never returns"
  // half).
  for (int p = 0; p < total_nodes(); ++p) {
    membership_[static_cast<std::size_t>(p)]->mark_unjoined(node);
  }
  teardown_process_state(node);
  // Open rounds waiting on the retired worker's contribution re-evaluate
  // against the shrunken contributor set.
  for (int sv = 0; sv < n_total_servers(); ++sv) {
    if (node_state_[static_cast<std::size_t>(server_node(sv))].up) {
      inject_recheck(sv);
    }
  }
  // Its worker can no longer reach the iteration target.
  if ((!cfg_.dedicated_servers || node < cfg_.n_workers) &&
      !workers_[nn]->finished) {
    finish_target_ -= 1;
  }
  // Goodbye handshake hands the clock off: the retiree leaves the
  // min-clock in the same event it leaves the views, so a slow drain can
  // never gate the remaining fleet.
  if (dssp_on_ && node < n_total_workers()) dssp_set_clock(node, -1);
}

bool Cluster::should_shed(const SendItem& item) const {
  // Fresh, lowest-priority gradient pushes only: retransmissions already
  // ride their own timers, combined rack pushes carry other workers' data,
  // and control traffic is never shed. Priorities grow toward the back of
  // the model (layer index), so `>= shed_cutoff_` parks the least urgent
  // half; under flat priorities (every item 0, cutoff 1) shedding is a
  // structural no-op.
  return item.retx_id < 0 && item.agg_id < 0 &&
         item.kind == net::MsgKind::kPushGradient &&
         item.priority >= shed_cutoff_;
}

void Cluster::unshed_all() {
  unshed_iter_count_ = iter_time_hist_.count();
  for (int w = 0; w < n_total_workers(); ++w) {
    auto& parked = shed_parked_[static_cast<std::size_t>(w)];
    if (parked.empty()) continue;
    if (!node_state_[static_cast<std::size_t>(w)].up) {
      parked.clear();  // died while shed; re-push is the rejoin path's job
      continue;
    }
    auto& ws = *workers_[static_cast<std::size_t>(w)];
    for (auto& item : parked) {
      if (tracing() && item.parked_at > 0.0) {
        tracer_->span(lane("w", w, ".hold"), item.parked_at, sim_.now(),
                      "shed");
      }
      ws.sendq.push(std::move(item));
      sendq_depth_changed(w, 1);
    }
    parked.clear();
  }
}

sim::Task Cluster::autoscaler_loop() {
  std::int64_t reported_violations = 0;
  for (;;) {
    co_await sim_.sleep(cfg_.suspicion_timeout);
    if (stopping_) co_return;
    const TimeS now = sim_.now();
    if (shed_active_ && now >= shed_until_) {
      shed_active_ = false;
      unshed_all();
    }
    const bool can_up = standby_next_ < n_total_workers();
    // Scale-down candidates: admitted nodes beyond the base ring (their
    // groups can always fall back to home chains). Pick the least-loaded
    // one; ties go to the highest id (last in, first out).
    bool can_down = false;
    int surplus = -1;
    double surplus_load = 0.0;
    for (int n = cfg_.n_workers; n < total_nodes(); ++n) {
      const auto& ns = node_state_[static_cast<std::size_t>(n)];
      if (!ns.joined || !ns.up || ns.draining || ns.retired) continue;
      const int s = server_of_node(n);
      const auto& lead = *leadership_[static_cast<std::size_t>(n)];
      double load = 0.0;
      for (int g = 0; g < n_servers(); ++g) {
        if (lead.primary(g) == s) load += group_weight(g);
      }
      if (surplus < 0 || load < surplus_load ||
          (load == surplus_load && n > surplus)) {
        surplus = n;
        surplus_load = load;
      }
      can_down = true;
    }
    const ScaleAction act = autoscaler_->tick(now, can_up, can_down);
    const std::int64_t v = autoscaler_->slo_violation_ticks();
    if (v > reported_violations) {
      slo_violation_ticks_->inc(v - reported_violations);
      reported_violations = v;
    }
    if (act == ScaleAction::kHold) continue;
    if (act == ScaleAction::kShed && unshed_iter_count_ >= 0 &&
        iter_time_hist_.count() <= unshed_iter_count_) {
      // Progress gate: the previous shed window ended and no iteration has
      // completed since. Every parked push delays the synchronous round it
      // belongs to, so shedding again before the cluster finishes even one
      // round spirals — higher p99 reads as more overload, which sheds
      // more. Hold until the flow window produces a completed iteration.
      continue;
    }
    ++*scale_decisions_;
    scale_decision_times_.push_back(now);
    switch (act) {
      case ScaleAction::kUp: {
        net::NodeJoin j;
        j.node = standby_next_++;
        j.at = now;
        finish_target_ += 1;  // the admitted worker must reach the target
        execute_join(j);
        break;
      }
      case ScaleAction::kDown:
        begin_drain(surplus);
        break;
      case ScaleAction::kShed:
        // Degrade gracefully: park the lowest-priority pushes instead of
        // collapsing under load we cannot absorb. The window spans half
        // the cooldown, never all of it — the other half is a guaranteed
        // flow window, so even a permanently unreachable SLO degrades to
        // slower progress, not starvation (shedding delays contributions,
        // it never drops them).
        shed_active_ = true;
        shed_until_ = now + 0.5 * autoscaler_->config().cooldown;
        break;
      case ScaleAction::kHold:
        break;
    }
  }
}

RunResult Cluster::run(int warmup_iterations, int measured_iterations) {
  if (started_) throw std::logic_error("Cluster::run is single-use");
  if (measured_iterations <= 0) {
    throw std::invalid_argument("need at least one measured iteration");
  }
  started_ = true;
  target_iterations_ = warmup_iterations + measured_iterations;

  // While tracing, mirror P3_LOG lines into the trace as instant events
  // stamped with simulated time (the hook is thread-local, so parallel
  // sweeps tracing one cluster never cross streams).
  std::optional<obs::LogCapture> log_capture;
  if (tracing()) {
    log_capture.emplace(*tracer_, [this] { return sim_.now(); });
    // Planned partition windows as ground-truth spans, so the audit can
    // check deliveries and leadership events against the cut intervals.
    for (const auto& p : cfg_.faults.partitions) {
      std::string label = p.symmetric ? "cut" : "asym";
      if (p.flap_period > 0.0) label += "~";
      tracer_->span("net.partition", p.start, p.heal, label);
    }
  }

  for (int n = 0; n < total_nodes(); ++n) sim_.spawn(node_demux(n));
  for (int n = 0; n < cfg_.n_workers; ++n) {
    sim_.spawn(server_loop(n));
    sim_.spawn(worker_sender(n));
    sim_.spawn(worker_loop(n, 0));
  }
  // Elastic joiners: their server/sender loops idle on empty queues until
  // the NodeJoin executes; their worker_loop is spawned by the join
  // handshake (worker_rejoin) once the parameter sync completes.
  for (int n = cfg_.n_workers; n < n_total_workers(); ++n) {
    sim_.spawn(server_loop(n));
    sim_.spawn(worker_sender(n));
  }
  finish_target_ = cfg_.n_workers;
  if (membership_on_) {
    for (int n = 0; n < total_nodes(); ++n) sim_.spawn(heartbeat_loop(n));
    // Invariant-13 auditor: on the suspicion cadence, re-derive the gate
    // floor from ground truth and count ticks where blocked workers exist
    // but no eligible worker can proceed.
    if (dssp_on_) sim_.spawn(dssp_audit_loop());
    if (cfg_.checkpoint_period > 0.0) {
      for (int s = 0; s < n_total_servers(); ++s) {
        sim_.spawn(checkpoint_loop(s));
      }
    }
    for (const auto& j : cfg_.faults.joins) {
      sim_.schedule_at(j.at, [this, j] { execute_join(j); });
      finish_target_ += 1;  // an admitted worker must also reach the target
    }
    for (const auto& l : cfg_.faults.leaves) {
      sim_.schedule_at(l.at, [this, l] { execute_leave(l); });
    }
    if (cfg_.autoscaler.enabled) sim_.spawn(autoscaler_loop());
    for (const auto& c : cfg_.faults.crashes) {
      if (c.node < 0 || c.node >= total_nodes()) {
        throw std::invalid_argument("crash plan names a node outside cluster");
      }
      sim_.schedule_at(c.at, [this, c] { execute_crash(c); });
      if (c.restarts()) {
        sim_.schedule_at(c.restart_time(), [this, c] { execute_restart(c); });
      }
      // A worker that never comes back can never reach the iteration
      // target; the run ends when every survivor does.
      if (!c.restarts() &&
          (!cfg_.dedicated_servers || c.node < cfg_.n_workers)) {
        finish_target_ -= 1;
      }
    }
    const TimeS deadline =
        cfg_.max_sim_time > 0.0 ? cfg_.max_sim_time : 3600.0;
    sim_.schedule_at(deadline, [this] {
      if (!stopping_) {
        throw std::runtime_error(
            "simulation exceeded max_sim_time; recovery is likely stuck");
      }
    });
  }
  const bool finished = sim_.run_while(
      [this] { return workers_finished_ >= finish_target_; });
  stopping_ = true;  // lets heartbeat/checkpoint loops retire during drain()
  if (!finished) {
    throw std::logic_error("simulation deadlocked before workers finished");
  }
  if (shed_active_) {
    // The run finished mid-shed-window: release the parked pushes now so
    // the settle phase (drain()) delivers every contribution — shedding
    // delays, it never drops.
    shed_active_ = false;
    unshed_all();
  }

  RunResult result;
  result.iterations_measured = measured_iterations;
  result.crashes = crashes_.value();
  result.restarts = restarts_.value();
  result.failovers = failovers_.value();
  result.worker_rejoins = worker_rejoins_.value();
  result.checkpoints_written = checkpoints_written_.value();
  result.checkpoint_bytes = checkpoint_bytes_.value();
  result.rehydrations = rehydrations_.value();
  result.rehydration_bytes = rehydration_bytes_.value();
  result.mean_rehydration_time =
      rehydrations_.value() > 0
          ? rehydration_time_sum_ / static_cast<double>(rehydrations_.value())
          : 0.0;
  result.max_rejoin_lag = max_rejoin_lag_;
  result.heartbeats_sent = heartbeats_sent_.value();
  result.stale_pushes = stale_pushes_.value();
  result.joins = joins_.value();
  result.migrations = migrations_.value();
  result.migrated_bytes = migrated_bytes_.value();
  result.lease_renewals = lease_renewals_.value();
  result.lease_expiries = lease_expiries_.value();
  result.dual_primary_windows = dual_primary_windows_.value();
  result.supersessions = supersessions_.value();
  result.partition_drops = faults_ ? faults_->partition_drops() : 0;
  result.cross_partition_deliveries = net_->cross_partition_deliveries();
  result.parked_pushes = parked_pushes_.value();
  result.quorum_denied_failovers = quorum_denied_failovers_.value();
  result.drains_started = drains_started();
  result.drains_completed = drains_completed();
  result.scale_decisions = scale_decisions();
  result.sheds = sheds();
  result.slo_violation_ticks = slo_violation_ticks();
  result.scale_decision_times = scale_decision_times_;
  result.uplink_overtakes = net_->uplink_overtakes();
  result.uplink_priority_inversions = net_->uplink_priority_inversions();
  result.tor_uplink_bytes = net_->tor_uplink_bytes();
  result.agg_combined_pushes = agg_combined_pushes();
  result.agg_param_broadcasts = agg_param_broadcasts();
  result.agg_fallback_pushes = agg_fallback_pushes();
  if (dssp_on_) {
    result.dssp_gate_blocks = dssp_gate_blocks();
    result.staleness_violations = staleness_violations();
    result.gate_wedge_ticks = gate_wedge_ticks();
    result.staleness_raises = staleness_->raises();
    result.staleness_decays = staleness_->decays();
    result.final_staleness_bound = staleness_->bound();
    result.mean_gate_wait =
        dssp_passages_ > 0
            ? dssp_wait_sum_ / static_cast<double>(dssp_passages_)
            : 0.0;
  }
  if (hierarchy_on_) {
    // Per-tier link gauges: snapshot the switch-port stats into the registry
    // so metrics dumps carry them next to the protocol counters.
    for (int r = 0; r < net_->n_racks(); ++r) {
      const auto rs = net_->rack_stats(r);
      const std::string p = "topo.rack" + std::to_string(r);
      registry_.gauge(p + ".uplink_bytes")
          .set(static_cast<double>(rs.up_bytes));
      registry_.gauge(p + ".downlink_bytes")
          .set(static_cast<double>(rs.down_bytes));
      registry_.gauge(p + ".uplink_peak_queue")
          .set(static_cast<double>(rs.up_peak_queue));
      registry_.gauge(p + ".downlink_peak_queue")
          .set(static_cast<double>(rs.down_peak_queue));
      registry_.gauge(p + ".uplink_busy_s").set(rs.up_busy);
      registry_.gauge(p + ".downlink_busy_s").set(rs.down_busy);
    }
  }

  if (crashes_.value() == 0 && joins_.value() == 0 && !scale_plane_) {
    // Crash-free path: the exact pre-membership arithmetic, so results stay
    // bit-identical to the seed engine. A scale-plane run always takes the
    // windowed path below — a drained worker's history ends mid-run, which
    // breaks the full-history indexing this branch assumes.
    TimeS start = 0.0;
    TimeS end = 0.0;
    for (const auto& ws : workers_) {
      const auto& done = ws->iter_done;
      if (warmup_iterations > 0) {
        start = std::max(
            start, done[static_cast<std::size_t>(warmup_iterations - 1)]);
      }
      end = std::max(end, done.back());
    }
    const double samples = static_cast<double>(cfg_.n_workers) *
                           workload_.batch_per_worker * measured_iterations;
    result.total_time = end;
    result.throughput = samples / (end - start);
    const auto& w0 = workers_.front()->iter_done;
    for (int i = warmup_iterations; i < target_iterations_; ++i) {
      const TimeS prev =
          i == 0 ? 0.0 : w0[static_cast<std::size_t>(i - 1)];
      result.iteration_times.push_back(w0[static_cast<std::size_t>(i)] - prev);
    }
    double sum = 0.0;
    for (TimeS t : result.iteration_times) sum += t;
    result.mean_iteration_time =
        sum / static_cast<double>(result.iteration_times.size());
    double stall_sum = 0.0;
    for (const auto& ws : workers_) {
      for (int i = warmup_iterations; i < target_iterations_; ++i) {
        stall_sum += ws->iter_stall[static_cast<std::size_t>(i)];
      }
    }
    result.mean_stall_time = stall_sum /
                             (static_cast<double>(cfg_.n_workers) *
                              measured_iterations);
  } else {
    // Crash/join runs: workers may have shorter (crashed early, or joined
    // late) or longer (restarted mid-run) histories. The measurement window
    // is anchored on workers that never crashed or joined — a rejoined or
    // admitted worker's history starts mid-run, and anchoring on it would
    // shrink the window and inflate throughput — then every completion
    // inside the window counts, whichever worker produced it.
    TimeS start = 0.0;
    TimeS end = 0.0;
    for (int w = 0; w < n_total_workers(); ++w) {
      const auto& done = workers_[static_cast<std::size_t>(w)]->iter_done;
      if (done.empty()) continue;
      end = std::max(end, done.back());
      const bool ever_crashed = node_state_[static_cast<std::size_t>(w)].epoch > 0;
      if (!ever_crashed && warmup_iterations > 0 &&
          done.size() >= static_cast<std::size_t>(warmup_iterations)) {
        start = std::max(
            start, done[static_cast<std::size_t>(warmup_iterations - 1)]);
      }
    }
    std::int64_t measured_iters = 0;
    double stall_sum = 0.0;
    for (const auto& ws : workers_) {
      for (std::size_t i = 0; i < ws->iter_done.size(); ++i) {
        if (ws->iter_done[i] <= start) continue;
        ++measured_iters;
        if (i < ws->iter_stall.size()) stall_sum += ws->iter_stall[i];
      }
    }
    result.total_time = end;
    const double samples = static_cast<double>(measured_iters) *
                           workload_.batch_per_worker;
    result.throughput = end > start ? samples / (end - start) : 0.0;
    const auto& w0 = workers_.front()->iter_done;
    for (std::size_t i = static_cast<std::size_t>(warmup_iterations);
         i < w0.size(); ++i) {
      const TimeS prev = i == 0 ? 0.0 : w0[i - 1];
      result.iteration_times.push_back(w0[i] - prev);
    }
    if (!result.iteration_times.empty()) {
      double sum = 0.0;
      for (TimeS t : result.iteration_times) sum += t;
      result.mean_iteration_time =
          sum / static_cast<double>(result.iteration_times.size());
    }
    if (measured_iters > 0) {
      result.mean_stall_time =
          stall_sum / static_cast<double>(measured_iters);
    }
  }
  if (dssp_on_) {
    // Time-weighted mean of the adapted bound — denominator of the
    // ext_dssp score, so adaptive runs pay for the slack they held.
    result.mean_staleness_bound = staleness_->mean_bound(result.total_time);
  }
  result.messages_dropped = net_->messages_dropped();
  result.retransmits = retransmits_.value();
  result.timeouts_fired = timeouts_fired_.value();
  result.duplicates_suppressed = duplicates_suppressed_.value();
  result.goodput_bytes = goodput_bytes_.value();
  result.wire_bytes = net_->bytes_posted();
  if (tracing()) {
    // Blame attribution over the measured iterations. Gauges are get-or-
    // created here, so untraced runs keep byte-identical registry snapshots.
    const obs::BlameReport blame =
        obs::analyze_critical_path(*tracer_, warmup_iterations);
    if (blame.problems.empty() && !blame.iterations.empty()) {
      result.blame_iterations =
          static_cast<std::int64_t>(blame.iterations.size());
      result.blame_chain_stalls = blame.chain_stalls;
      result.blame_total_s = blame.total_s;
      result.blame_forward_share = blame.share(obs::Blame::kForward);
      result.blame_backward_share = blame.share(obs::Blame::kBackward);
      result.blame_sendq_share = blame.share(obs::Blame::kSendQueue);
      result.blame_inversion_share = blame.share(obs::Blame::kInversion);
      result.blame_wire_share = blame.share(obs::Blame::kWire);
      result.blame_uplink_share = blame.share(obs::Blame::kUplink);
      result.blame_downlink_share = blame.share(obs::Blame::kDownlink);
      result.blame_server_share = blame.share(obs::Blame::kServer);
      result.blame_agghold_share = blame.share(obs::Blame::kAggHold);
      result.blame_recovery_share = blame.share(obs::Blame::kRecovery);
      result.blame_sspwait_share = blame.share(obs::Blame::kSspWait);
      result.blame_other_share = blame.share(obs::Blame::kOther);
      result.blame_network_share = blame.network_share();
      for (int c = 0; c < obs::kBlameCount; ++c) {
        registry_.gauge(std::string("blame.") +
                        obs::blame_name(static_cast<obs::Blame>(c)) +
                        "_share")
            .set(blame.share(static_cast<obs::Blame>(c)));
      }
      registry_.gauge("blame.network_share").set(result.blame_network_share);
    }
  }
  return result;
}

void Cluster::drain() {
  stopping_ = true;
  sim_.run();
}

std::int64_t Cluster::slice_version(std::int64_t slice) const {
  const auto& sl = partition_.slices[static_cast<std::size_t>(slice)];
  if (!membership_on_) {
    return servers_[static_cast<std::size_t>(sl.server)]
        ->version[static_cast<std::size_t>(slice)];
  }
  // Replicated shard: the authoritative version lives at whichever replica
  // is furthest ahead (the current leader; backups trail by in-flight
  // replication only).
  std::int64_t best = 0;
  // Read leadership through the first non-retired node: a retired node's
  // view froze at retirement and may predate later handovers.
  std::size_t viewer = 0;
  while (viewer + 1 < leadership_.size() &&
         node_state_[viewer].retired) {
    ++viewer;
  }
  const auto& lead = *leadership_[viewer];
  for (int k = 0; k < cfg_.replication; ++k) {
    const int replica = lead.member(sl.server, k);
    best = std::max(best, servers_[static_cast<std::size_t>(replica)]
                              ->version[static_cast<std::size_t>(slice)]);
  }
  return best;
}

std::int64_t Cluster::worker_layer_version(int worker, int layer) const {
  return workers_[static_cast<std::size_t>(worker)]
      ->gates[static_cast<std::size_t>(layer)]
      ->version();
}

}  // namespace p3::ps
