// Timeline recorder: collects labeled spans on named lanes and renders an
// ASCII Gantt chart. Used to regenerate the schedule figures (Figs 4 and 6)
// and available on any experiment for debugging protocol behaviour.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace p3::trace {

struct Span {
  std::string lane;
  TimeS start = 0.0;
  TimeS end = 0.0;
  std::string label;  ///< first character is used as the Gantt fill glyph
};

class Timeline {
 public:
  void add(std::string lane, TimeS start, TimeS end, std::string label);

  const std::vector<Span>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }
  void clear() { spans_.clear(); }

  /// Spans on one lane, sorted by start time.
  std::vector<Span> lane_spans(const std::string& lane) const;

  /// Lanes in first-seen order.
  std::vector<std::string> lanes() const;

  /// Latest span end (0 if empty).
  TimeS end_time() const;

  /// Render [t0, t1) with one character per `unit` seconds. Each lane is a
  /// row; overlapping spans on one lane overwrite left-to-right by start
  /// time. Empty cells render '.', span cells render the first label char.
  std::string to_ascii(TimeS unit, TimeS t0, TimeS t1) const;

  /// Render the whole recorded range.
  std::string to_ascii(TimeS unit) const { return to_ascii(unit, 0.0, end_time()); }

  /// Dump spans as CSV (lane,start,end,label).
  void write_csv(const std::string& path) const;

 private:
  std::vector<Span> spans_;
};

}  // namespace p3::trace
