// Timeline: ASCII Gantt / CSV renderer over an obs::Tracer span stream.
//
// Historically the Timeline stored spans itself; it is now a *view* plus
// renderer: `add()` records into an owned tracer, and every accessor derives
// from the tracer's event buffer. Attaching a Timeline to a Network or
// Cluster therefore also captures flow arrows, counters, and lifecycle
// records on the same tracer — export them with `tracer().write_chrome_json`
// — while the ASCII rendering used to regenerate Figs 4 and 6 stays
// byte-identical to the original implementation.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "obs/tracer.h"

namespace p3::trace {

struct Span {
  std::string lane;
  TimeS start = 0.0;
  TimeS end = 0.0;
  std::string label;  ///< first character is used as the Gantt fill glyph
};

class Timeline {
 public:
  void add(std::string lane, TimeS start, TimeS end, std::string label);

  /// All spans in insertion order (materialized from the tracer buffer).
  std::vector<Span> spans() const;
  bool empty() const;
  void clear() { tracer_.clear(); }

  /// Spans on one lane, sorted by start time.
  std::vector<Span> lane_spans(const std::string& lane) const;

  /// Lanes in first-seen order.
  std::vector<std::string> lanes() const;

  /// Latest span end (0 if empty).
  TimeS end_time() const;

  /// Render [t0, t1) with one character per `unit` seconds. Each lane is a
  /// row; overlapping spans on one lane overwrite left-to-right by start
  /// time. Empty cells render '.', span cells render the first label char.
  std::string to_ascii(TimeS unit, TimeS t0, TimeS t1) const;

  /// Render the whole recorded range.
  std::string to_ascii(TimeS unit) const { return to_ascii(unit, 0.0, end_time()); }

  /// Dump spans as CSV (lane,start,end,label).
  void write_csv(const std::string& path) const;

  /// The backing tracer; use it to export Chrome/Perfetto JSON or to feed
  /// lifecycle records into obs::analysis.
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }

 private:
  obs::Tracer tracer_;
};

}  // namespace p3::trace
