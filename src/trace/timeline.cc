#include "trace/timeline.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/csv.h"

namespace p3::trace {

void Timeline::add(std::string lane, TimeS start, TimeS end,
                   std::string label) {
  if (end < start) throw std::invalid_argument("span ends before it starts");
  tracer_.span(lane, start, end, label);
}

std::vector<Span> Timeline::spans() const {
  std::vector<Span> out;
  for (const auto& e : tracer_.events()) {
    if (e.kind != obs::EventKind::kSpan) continue;
    out.push_back(Span{tracer_.track_name(e.track), e.t0, e.t1,
                       tracer_.label_text(e.label)});
  }
  return out;
}

bool Timeline::empty() const {
  for (const auto& e : tracer_.events()) {
    if (e.kind == obs::EventKind::kSpan) return false;
  }
  return true;
}

std::vector<Span> Timeline::lane_spans(const std::string& lane) const {
  std::vector<Span> out;
  for (const auto& e : tracer_.events()) {
    if (e.kind != obs::EventKind::kSpan) continue;
    if (tracer_.track_name(e.track) != lane) continue;
    out.push_back(Span{lane, e.t0, e.t1, tracer_.label_text(e.label)});
  }
  std::sort(out.begin(), out.end(),
            [](const Span& a, const Span& b) { return a.start < b.start; });
  return out;
}

std::vector<std::string> Timeline::lanes() const {
  std::vector<std::string> out;
  for (const auto& e : tracer_.events()) {
    if (e.kind != obs::EventKind::kSpan) continue;
    const std::string& lane = tracer_.track_name(e.track);
    if (std::find(out.begin(), out.end(), lane) == out.end()) {
      out.push_back(lane);
    }
  }
  return out;
}

TimeS Timeline::end_time() const {
  TimeS t = 0.0;
  for (const auto& e : tracer_.events()) {
    if (e.kind == obs::EventKind::kSpan) t = std::max(t, e.t1);
  }
  return t;
}

std::string Timeline::to_ascii(TimeS unit, TimeS t0, TimeS t1) const {
  if (unit <= 0.0) throw std::invalid_argument("non-positive time unit");
  const auto cols = static_cast<std::size_t>(std::ceil((t1 - t0) / unit));
  const auto all_lanes = lanes();

  std::size_t name_width = 0;
  for (const auto& l : all_lanes) name_width = std::max(name_width, l.size());

  std::ostringstream out;
  for (const auto& lane : all_lanes) {
    std::string row(cols, '.');
    for (const auto& s : lane_spans(lane)) {
      if (s.end <= t0 || s.start >= t1) continue;
      const char glyph = s.label.empty() ? '#' : s.label[0];
      // Half-open cell coverage; a zero-length span still marks one cell.
      auto c0 = static_cast<std::size_t>(std::floor((std::max(s.start, t0) - t0) / unit + 1e-9));
      auto c1 = static_cast<std::size_t>(std::ceil((std::min(s.end, t1) - t0) / unit - 1e-9));
      c1 = std::max(c1, c0 + 1);
      for (std::size_t c = c0; c < std::min(c1, cols); ++c) row[c] = glyph;
    }
    out << lane << std::string(name_width - lane.size(), ' ') << " |" << row
        << "|\n";
  }
  return out.str();
}

void Timeline::write_csv(const std::string& path) const {
  CsvWriter csv(path, {"lane", "start", "end", "label"});
  for (const auto& s : spans()) {
    char start[40], end[40];
    std::snprintf(start, sizeof(start), "%.9f", s.start);
    std::snprintf(end, sizeof(end), "%.9f", s.end);
    csv.row({s.lane, start, end, s.label});
  }
}

}  // namespace p3::trace
