#include "obs/analysis.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/table.h"

namespace p3::obs {

namespace {

struct GroupKey {
  int worker;
  std::int32_t slice;
  std::int64_t iteration;
  bool operator<(const GroupKey& o) const {
    if (worker != o.worker) return worker < o.worker;
    if (slice != o.slice) return slice < o.slice;
    return iteration < o.iteration;
  }
};

struct Group {
  int priority = 0;
  bool seen[kNumStages] = {};
  TimeS min_t[kNumStages] = {};
  TimeS max_t[kNumStages] = {};

  void record(const LifecycleRecord& r) {
    const auto s = static_cast<std::size_t>(r.stage);
    if (!seen[s]) {
      seen[s] = true;
      min_t[s] = max_t[s] = r.t;
    } else {
      min_t[s] = std::min(min_t[s], r.t);
      max_t[s] = std::max(max_t[s], r.t);
    }
    priority = r.priority;
  }
};

constexpr auto S = [](Stage s) { return static_cast<std::size_t>(s); };

/// Deterministic group index over the record stream.
std::map<GroupKey, Group> group_records(
    const std::vector<LifecycleRecord>& records) {
  std::map<GroupKey, Group> groups;
  for (const auto& r : records) {
    groups[GroupKey{r.worker, r.slice, r.iteration}].record(r);
  }
  return groups;
}

}  // namespace

Report analyze(const std::vector<LifecycleRecord>& records) {
  Report report;
  report.records = static_cast<std::int64_t>(records.size());

  // Per-priority latency legs over completed round trips.
  struct Acc {
    std::int64_t n = 0;
    double queue = 0, wire = 0, server = 0, ret = 0, total = 0;
  };
  std::map<int, Acc> by_priority;
  for (const auto& [key, g] : group_records(records)) {
    if (!g.seen[S(Stage::kParamReady)]) continue;
    ++report.round_trips;
    Acc& a = by_priority[g.priority];
    ++a.n;
    const TimeS ready = g.min_t[S(Stage::kParamReady)];
    if (g.seen[S(Stage::kGradReady)]) {
      a.total += ready - g.min_t[S(Stage::kGradReady)];
    }
    if (g.seen[S(Stage::kEnqueue)] && g.seen[S(Stage::kSend)]) {
      a.queue += g.min_t[S(Stage::kSend)] - g.min_t[S(Stage::kEnqueue)];
    }
    if (g.seen[S(Stage::kSend)] && g.seen[S(Stage::kServerRecv)]) {
      a.wire += g.min_t[S(Stage::kServerRecv)] - g.min_t[S(Stage::kSend)];
    }
    if (g.seen[S(Stage::kServerRecv)] && g.seen[S(Stage::kAggregate)]) {
      a.server +=
          g.max_t[S(Stage::kAggregate)] - g.min_t[S(Stage::kServerRecv)];
    }
    if (g.seen[S(Stage::kAggregate)]) {
      a.ret += ready - g.max_t[S(Stage::kAggregate)];
    }
  }
  for (const auto& [priority, a] : by_priority) {
    StageBreakdown b;
    b.priority = priority;
    b.round_trips = a.n;
    const double n = static_cast<double>(a.n);
    b.mean_queue_s = a.queue / n;
    b.mean_wire_s = a.wire / n;
    b.mean_server_s = a.server / n;
    b.mean_return_s = a.ret / n;
    b.mean_total_s = a.total / n;
    report.per_priority.push_back(b);
  }

  // Priority inversions + queue depth: replay enqueue/send per worker in
  // stream (simulation) order.
  struct Pending {
    std::int64_t fragments = 0;
    int priority = 0;
  };
  struct WorkerState {
    std::map<std::pair<std::int32_t, std::int64_t>, Pending> pending;
    std::int64_t depth = 0;
    std::int64_t peak = 0;
    double area = 0.0;  ///< integral of depth over time
    TimeS last_t = 0.0;
    TimeS first_t = 0.0;
    bool started = false;
    std::vector<std::pair<TimeS, std::int64_t>> series;
  };
  std::map<int, WorkerState> workers;
  for (const auto& r : records) {
    if (r.stage != Stage::kEnqueue && r.stage != Stage::kSend) continue;
    WorkerState& w = workers[r.worker];
    if (!w.started) {
      w.started = true;
      w.first_t = w.last_t = r.t;
    }
    w.area += static_cast<double>(w.depth) * (r.t - w.last_t);
    w.last_t = r.t;
    const auto key = std::make_pair(r.slice, r.iteration);
    if (r.stage == Stage::kEnqueue) {
      Pending& p = w.pending[key];
      ++p.fragments;
      p.priority = r.priority;
      ++w.depth;
      w.peak = std::max(w.peak, w.depth);
    } else {
      for (const auto& [other, p] : w.pending) {
        if (other != key && p.fragments > 0 && p.priority < r.priority) {
          report.inversion.bytes += r.bytes;
          ++report.inversion.events;
          break;
        }
      }
      auto it = w.pending.find(key);
      if (it != w.pending.end() && it->second.fragments > 0) {
        --it->second.fragments;
        --w.depth;
        if (it->second.fragments == 0) w.pending.erase(it);
      }
    }
    if (w.series.empty() || w.series.back().first != r.t) {
      w.series.emplace_back(r.t, w.depth);
    } else {
      w.series.back().second = w.depth;
    }
  }
  for (auto& [id, w] : workers) {
    QueueDepthStats q;
    q.worker = id;
    q.peak_depth = w.peak;
    const TimeS window = w.last_t - w.first_t;
    q.mean_depth = window > 0.0 ? w.area / window : 0.0;
    q.series = std::move(w.series);
    report.queues.push_back(std::move(q));
  }
  return report;
}

std::vector<std::string> lifecycle_violations(
    const std::vector<LifecycleRecord>& records, bool strict) {
  std::vector<std::string> violations;
  for (const auto& [key, g] : group_records(records)) {
    // Core chain: stages whose earliest occurrence is causally ordered under
    // every sync method, including recovery re-sends.
    static constexpr Stage kChain[] = {Stage::kGradReady, Stage::kEnqueue,
                                       Stage::kSend, Stage::kServerRecv,
                                       Stage::kAggregate, Stage::kParamReady};
    const Stage* prev = nullptr;
    for (const Stage& s : kChain) {
      if (!g.seen[S(s)]) continue;
      if (prev != nullptr && g.min_t[S(s)] < g.min_t[S(*prev)]) {
        std::ostringstream msg;
        msg << "worker " << key.worker << " slice " << key.slice << " iter "
            << key.iteration << ": " << stage_name(s) << " at "
            << g.min_t[S(s)] << "s precedes " << stage_name(*prev) << " at "
            << g.min_t[S(*prev)] << "s";
        violations.push_back(msg.str());
      }
      prev = &s;
    }
    if (strict && g.seen[S(Stage::kNotify)] && g.seen[S(Stage::kPull)] &&
        g.min_t[S(Stage::kPull)] < g.min_t[S(Stage::kNotify)]) {
      std::ostringstream msg;
      msg << "worker " << key.worker << " slice " << key.slice << " iter "
          << key.iteration << ": pull at " << g.min_t[S(Stage::kPull)]
          << "s precedes notify at " << g.min_t[S(Stage::kNotify)] << "s";
      violations.push_back(msg.str());
    }
  }
  return violations;
}

std::vector<LifecycleRecord> load_lifecycle_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open lifecycle CSV: " + path);
  std::vector<LifecycleRecord> records;
  std::string line;
  bool header = true;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (header) {
      header = false;
      continue;
    }
    if (line.empty()) continue;
    std::vector<std::string> fields;
    std::string field;
    std::istringstream row(line);
    while (std::getline(row, field, ',')) fields.push_back(field);
    if (fields.size() != 8) {
      throw std::runtime_error(path + ":" + std::to_string(line_no) +
                               ": expected 8 fields, got " +
                               std::to_string(fields.size()));
    }
    try {
      LifecycleRecord r;
      r.stage = parse_stage(fields[0]);
      r.worker = std::stoi(fields[1]);
      r.slice = static_cast<std::int32_t>(std::stol(fields[2]));
      r.layer = static_cast<std::int32_t>(std::stol(fields[3]));
      r.iteration = std::stoll(fields[4]);
      r.priority = std::stoi(fields[5]);
      r.bytes = std::stoll(fields[6]);
      r.t = std::stod(fields[7]);
      records.push_back(r);
    } catch (const std::exception& e) {
      throw std::runtime_error(path + ":" + std::to_string(line_no) + ": " +
                               e.what());
    }
  }
  return records;
}

std::string format_report(const Report& report) {
  std::ostringstream out;
  out << "lifecycle records: " << report.records
      << "   completed round trips: " << report.round_trips << "\n\n";

  out << "Per-priority latency breakdown (ms, mean over round trips;"
         " priority 0 = most urgent)\n";
  Table latency({"priority", "round_trips", "queue", "wire", "server",
                 "return", "total"});
  for (const auto& b : report.per_priority) {
    latency.add_row({std::to_string(b.priority),
                     std::to_string(b.round_trips),
                     Table::num(b.mean_queue_s * 1e3, 3),
                     Table::num(b.mean_wire_s * 1e3, 3),
                     Table::num(b.mean_server_s * 1e3, 3),
                     Table::num(b.mean_return_s * 1e3, 3),
                     Table::num(b.mean_total_s * 1e3, 3)});
  }
  out << latency.to_string() << "\n";

  out << "Priority inversions: " << report.inversion.events << " sends, "
      << report.inversion.bytes
      << " bytes of lower-priority traffic sent while a more urgent fragment"
         " was queued\n\n";

  out << "Send-queue depth (fragments)\n";
  Table queues({"worker", "peak", "mean"});
  for (const auto& q : report.queues) {
    queues.add_row({std::to_string(q.worker), std::to_string(q.peak_depth),
                    Table::num(q.mean_depth, 2)});
  }
  out << queues.to_string();
  return out.str();
}

}  // namespace p3::obs
