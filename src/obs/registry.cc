#include "obs/registry.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "common/csv.h"

namespace p3::obs {

namespace {

std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

const char* type_name(int t) {
  switch (t) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    case 2:
      return "histogram";
  }
  return "?";
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("histogram bounds must be increasing");
    }
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++counts_[i];
  ++count_;
  sum_ += v;
}

double Histogram::quantile_from_counts(const std::vector<double>& bounds,
                                       const std::vector<std::int64_t>& counts,
                                       double q) {
  std::int64_t total = 0;
  for (std::int64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double need = q * static_cast<double>(total);
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < bounds.size() && i < counts.size(); ++i) {
    cum += counts[i];
    if (static_cast<double>(cum) >= need) return bounds[i];
  }
  return bounds.empty() ? 0.0 : 2.0 * bounds.back();
}

Registry::Entry& Registry::entry(const std::string& name, Type type) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    Entry& e = entries_[it->second];
    if (e.type != type) {
      throw std::invalid_argument("metric '" + name +
                                  "' already registered with another type");
    }
    return e;
  }
  std::size_t index = 0;
  switch (type) {
    case Type::kCounter:
      index = counters_.size();
      counters_.emplace_back();
      break;
    case Type::kGauge:
      index = gauges_.size();
      gauges_.emplace_back();
      break;
    case Type::kHistogram:
      // Created by histogram() below, which emplaces with bounds first.
      index = histograms_.size() - 1;
      break;
  }
  by_name_.emplace(name, entries_.size());
  entries_.push_back(Entry{name, type, index});
  return entries_.back();
}

Counter& Registry::counter(const std::string& name) {
  return counters_[entry(name, Type::kCounter).index];
}

Gauge& Registry::gauge(const std::string& name) {
  return gauges_[entry(name, Type::kGauge).index];
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    histograms_.emplace_back(std::move(bounds));
  }
  return histograms_[entry(name, Type::kHistogram).index];
}

const Registry::Entry* Registry::find(const std::string& name,
                                      Type type) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  const Entry& e = entries_[it->second];
  return e.type == type ? &e : nullptr;
}

const Counter* Registry::find_counter(const std::string& name) const {
  const Entry* e = find(name, Type::kCounter);
  return e == nullptr ? nullptr : &counters_[e->index];
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  const Entry* e = find(name, Type::kGauge);
  return e == nullptr ? nullptr : &gauges_[e->index];
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  const Entry* e = find(name, Type::kHistogram);
  return e == nullptr ? nullptr : &histograms_[e->index];
}

std::vector<Registry::Row> Registry::snapshot() const {
  std::vector<Row> rows;
  for (const auto& e : entries_) {
    const std::string type = type_name(static_cast<int>(e.type));
    switch (e.type) {
      case Type::kCounter:
        rows.push_back(
            Row{e.name, type, "value",
                std::to_string(counters_[e.index].value())});
        break;
      case Type::kGauge: {
        const Gauge& g = gauges_[e.index];
        rows.push_back(Row{e.name, type, "value", num(g.value())});
        rows.push_back(Row{e.name, type, "max", num(g.max())});
        break;
      }
      case Type::kHistogram: {
        const Histogram& h = histograms_[e.index];
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          rows.push_back(Row{e.name, type, "le_" + num(h.bounds()[i]),
                             std::to_string(h.bucket_count(i))});
        }
        rows.push_back(Row{e.name, type, "le_inf",
                           std::to_string(h.bucket_count(h.bounds().size()))});
        rows.push_back(Row{e.name, type, "sum", num(h.sum())});
        rows.push_back(Row{e.name, type, "count", std::to_string(h.count())});
        rows.push_back(Row{e.name, type, "p50", num(h.p50())});
        rows.push_back(Row{e.name, type, "p90", num(h.p90())});
        rows.push_back(Row{e.name, type, "p99", num(h.p99())});
        break;
      }
    }
  }
  return rows;
}

void Registry::write_csv(const std::string& path) const {
  CsvWriter csv(path, {"metric", "type", "field", "value"});
  for (const auto& r : snapshot()) {
    csv.row({r.metric, r.type, r.field, r.value});
  }
}

void Registry::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open metrics file: " + path);
  out << "{";
  std::string current;
  bool first_metric = true;
  bool first_field = true;
  for (const auto& r : snapshot()) {
    if (r.metric != current) {
      if (!current.empty()) out << "},";
      out << "\n  \"" << r.metric << "\": {\"type\": \"" << r.type << "\"";
      current = r.metric;
      first_metric = false;
      first_field = false;
    }
    out << ", \"" << r.field << "\": " << r.value;
  }
  if (!first_metric || !first_field) out << "}";
  out << "\n}\n";
}

}  // namespace p3::obs
