// Causal critical-path engine over a recorded trace.
//
// Reconstructs the causal event graph of one run from a Tracer buffer —
// compute spans per worker lane, NIC/switch-port spans, flow arrows
// stitching sender to receiver, and slice-lifecycle records labeling every
// link with (worker, slice, iteration, priority) — then walks the chain of
// binding constraints backward from each iteration's finish line and
// attributes every second of the iteration window to a blame category.
//
// The walk is a single backward chain: starting at the global iteration-end
// event (the last worker to finish its backward pass), each step identifies
// the activity whose completion released the current one — a compute span, a
// parameter delivery, a switch-port service, a server round release, a
// rack-aggregation hold, a send-queue pop — and attributes the interval
// between them. Segments telescope, so per-iteration blame sums to the
// iteration window *by construction*; `trace_report --critpath` still
// re-checks the sum and exits 2 if the invariant ever breaks.
//
// On top of the attribution the module offers deterministic what-if
// estimation (re-time the path under virtual interventions; first-order
// lower bounds, see docs/OBSERVABILITY.md) and trace differencing (align two
// runs by iteration, report which categories grew).
//
// Scope: the engine assumes a fixed worker roster (every worker runs the
// same iterations). Traces from elastic/crash runs are analyzed best-effort;
// unresolvable links fall back to the `other` category rather than failing.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/tracer.h"

namespace p3::obs {

/// Blame categories a critical-path segment can land in. Order is the
/// rendering/CSV column order and is part of the stable output format.
enum class Blame : int {
  kForward = 0,   ///< forward-pass compute on the binding chain
  kBackward,      ///< backward-pass compute on the binding chain
  kSendQueue,     ///< fragment queued in a worker/aggregator send queue
  kInversion,     ///< portion of a queue wait spent behind strictly
                  ///< lower-priority traffic on the same NIC
  kWire,          ///< NIC serialization, propagation, egress backlog,
                  ///< notify/pull round trips
  kUplink,        ///< ToR uplink switch-port service + queueing
  kDownlink,      ///< downlink (spine -> ToR -> node) port service + queueing
  kServer,        ///< server receive-queue wait, aggregation, optimizer
  kAggHold,       ///< rack pre-reduction waiting for member contributions
  kRecovery,      ///< retransmit waits, partition parking, shed parking
  kSspWait,       ///< DSSP staleness gate: blocked on the min-clock floor
  kOther,         ///< slack the walk could not attribute (unresolved links)
};
inline constexpr int kBlameCount = 12;

/// Stable short name ("forward", "sendq", ...) used in tables and CSVs.
const char* blame_name(Blame b);

/// Blame attribution of one iteration's critical-path window.
struct IterationBlame {
  std::int64_t iteration = 0;
  TimeS window_start = 0.0;  ///< previous iteration's global finish
  TimeS window_end = 0.0;    ///< this iteration's global finish
  int binding_worker = 0;    ///< last worker to finish the backward pass
  std::array<double, kBlameCount> seconds{};

  double window() const { return window_end - window_start; }
  double attributed() const;  ///< sum over categories (== window())
};

/// Whole-run blame report: per-iteration rows plus totals.
struct BlameReport {
  std::vector<IterationBlame> iterations;
  std::array<double, kBlameCount> totals{};
  double total_s = 0.0;  ///< summed iteration windows

  /// Structural findings (no compute spans, irregular lanes, ...). Non-empty
  /// means the graph was malformed; trace_report exits 2 on these.
  std::vector<std::string> problems;
  /// Chain links the walk could not resolve (fell back to `other`). Not an
  /// error — elastic/crash traces legitimately stall — but a quality signal.
  std::int64_t chain_stalls = 0;
  std::int64_t events_processed = 0;  ///< trace events the graph indexed

  double share(Blame b) const;
  /// sendq + inversion + wire + uplink + downlink: the share P3 collapses.
  double network_share() const;
};

/// Build the blame report. `skip_iterations` drops the warmup prefix (the
/// first window starts at the skipped prefix's global finish).
BlameReport analyze_critical_path(const Tracer& tracer,
                                  int skip_iterations = 0);

/// One what-if intervention: mean per-iteration time if `removed` categories
/// cost zero and `scaled` categories ran `speedup`x faster. First-order: the
/// estimate removes the categories' critical-path time without re-running
/// the schedule, so it is a lower bound on the achievable time.
struct WhatIf {
  std::string name;
  double estimated_mean_iteration_s = 0.0;
  double speedup_vs_measured = 0.0;
};

/// Mean per-iteration estimate with each category's path time scaled by
/// `keep[category]` (1.0 = untouched, 0.0 = removed, 0.5 = twice as fast).
double estimate_mean_iteration(const BlameReport& report,
                               const std::array<double, kBlameCount>& keep);

/// The standard panel: infinite bandwidth, zero server time, 2x network.
std::vector<WhatIf> standard_what_ifs(const BlameReport& report);

/// Iteration-aligned difference of two runs of the same config.
struct BlameDiff {
  std::int64_t iterations_compared = 0;
  std::array<double, kBlameCount> delta_seconds{};  ///< b - a, summed
  double delta_total_s = 0.0;
};
BlameDiff diff_blame(const BlameReport& a, const BlameReport& b);

/// Fixed-format renderers (byte-stable across thread counts and reruns).
std::string format_blame(const BlameReport& report);
std::string format_what_ifs(const std::vector<WhatIf>& panel);
std::string format_blame_diff(const BlameDiff& diff);

/// Blame table as CSV (iteration,window_s,<category>_s...); `load` parses it
/// back for offline differencing. Throws std::runtime_error on bad files.
void write_blame_csv(const BlameReport& report, const std::string& path);
BlameReport load_blame_csv(const std::string& path);

}  // namespace p3::obs
