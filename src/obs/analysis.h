// Post-run analysis over slice-lifecycle records.
//
// The tracer's lifecycle stream is a flat log of stage transitions keyed by
// (worker, slice, iteration). This module groups it back into per-slice
// round trips and derives the schedule diagnostics the paper's figures argue
// from: where time goes per priority class, how often the wire carried
// low-priority bytes while something more urgent was queued, and how deep
// the per-worker send queues ran.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/tracer.h"

namespace p3::obs {

/// Mean seconds spent in each lifecycle leg, aggregated over all slice
/// round trips of one priority class (smaller priority = more urgent).
struct StageBreakdown {
  int priority = 0;
  std::int64_t round_trips = 0;  ///< groups that reached param-ready
  double mean_queue_s = 0.0;     ///< enqueue -> first send
  double mean_wire_s = 0.0;      ///< first send -> first server recv
  double mean_server_s = 0.0;    ///< first server recv -> last aggregate
  double mean_return_s = 0.0;    ///< last aggregate -> param-ready
  double mean_total_s = 0.0;     ///< grad-ready -> param-ready
};

/// Bytes of lower-priority traffic that entered the wire while a strictly
/// more urgent fragment sat queued on the same worker — the inefficiency P3
/// exists to remove (zero under perfect priority scheduling).
struct InversionStats {
  Bytes bytes = 0;
  std::int64_t events = 0;  ///< sends that were inversions
};

/// Send-queue depth statistics for one worker, in fragments.
struct QueueDepthStats {
  int worker = 0;
  std::int64_t peak_depth = 0;
  double mean_depth = 0.0;  ///< time-weighted over the observed window
  /// (t, depth) step series, one point per change; for CSV dumps and plots.
  std::vector<std::pair<TimeS, std::int64_t>> series;
};

struct Report {
  std::int64_t records = 0;
  std::int64_t round_trips = 0;  ///< groups that reached param-ready
  std::vector<StageBreakdown> per_priority;  ///< sorted by priority
  InversionStats inversion;
  std::vector<QueueDepthStats> queues;  ///< sorted by worker
};

/// Build the full report from a lifecycle stream (tracer order).
Report analyze(const std::vector<LifecycleRecord>& records);

/// Invariant check: within every (worker, slice, iteration) group, the
/// earliest timestamp of each lifecycle stage must be non-decreasing in
/// stage order. `strict` additionally requires notify <= pull when both are
/// present — true for fault-free runs; recovery re-notifications can
/// legitimately attribute a notify to a later round, so crash tests pass
/// strict=false. Returns human-readable violations (empty == invariant
/// holds).
std::vector<std::string> lifecycle_violations(
    const std::vector<LifecycleRecord>& records, bool strict = false);

/// Parse a CSV written by Tracer::write_lifecycle_csv.
/// Throws std::runtime_error on unreadable files or malformed rows.
std::vector<LifecycleRecord> load_lifecycle_csv(const std::string& path);

/// Render the report as the human-readable tables `bench/trace_report`
/// prints.
std::string format_report(const Report& report);

}  // namespace p3::obs
