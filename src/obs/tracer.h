// Unified observability: deterministic, sim-time-stamped event tracer.
//
// One Tracer records every observable artifact of a run into an in-memory
// pooled buffer: complete spans on named tracks, instant events, counter
// samples, flow arrows (sender -> receiver), and structured slice-lifecycle
// records. Renderers then consume the same buffer: `trace::Timeline` renders
// spans as an ASCII Gantt or CSV, `write_chrome_json()` exports Chrome
// trace-event / Perfetto JSON, and `obs::analysis` derives per-priority
// latency breakdowns from lifecycle records.
//
// Track naming follows the repo-wide lane convention "<process>.<channel>"
// ("w0.cmp", "n3.tx", ...): the prefix before the first '.' becomes the
// Perfetto process, the full name becomes the thread, so every node's
// channels group together in the UI.
//
// Cost model: record calls intern track/label strings once and then append
// a POD event (no per-event allocation at steady state). A disabled tracer
// drops events after a single branch; instrumentation sites additionally
// guard with `enabled()` so no label strings are built either.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/log.h"
#include "common/units.h"

namespace p3::obs {

/// Stage order of one slice's per-iteration life. The numeric order is the
/// protocol order; `analysis::lifecycle_violations` checks that observed
/// minimum timestamps never regress along it.
enum class Stage : std::uint8_t {
  kGradReady = 0,  ///< backward pass produced the slice's gradient
  kEnqueue,        ///< fragment entered the worker's priority send queue
  kSend,           ///< fragment handed to the NIC (starts serializing)
  kServerRecv,     ///< server popped the fragment from its receive queue
  kAggregate,      ///< server finished folding the contribution in
  kNotify,         ///< worker received the round-complete notification
  kPull,           ///< worker issued the parameter pull request
  kParamReady,     ///< worker holds the full updated slice
};

inline constexpr int kNumStages = 8;

/// Stable short name ("grad_ready", "enqueue", ...) used in CSV headers.
const char* stage_name(Stage stage);

/// Inverse of `stage_name`; throws std::invalid_argument on unknown names.
Stage parse_stage(const std::string& name);

/// One lifecycle stage transition of (worker, slice, iteration).
struct LifecycleRecord {
  Stage stage = Stage::kGradReady;
  int worker = 0;
  std::int32_t slice = 0;
  std::int32_t layer = 0;
  std::int64_t iteration = 0;
  std::int32_t priority = 0;
  Bytes bytes = 0;  ///< payload bytes for kEnqueue/kSend fragments, else 0
  TimeS t = 0.0;
};

/// Deterministic correlation id for one slice's round trip. Threaded through
/// net::Message so the network layer can attribute wire activity without
/// knowing protocol state.
std::int64_t make_trace_id(std::int64_t slice, std::int64_t iteration,
                           int worker);

enum class EventKind : std::uint8_t {
  kSpan,       ///< [t0, t1) interval on a track
  kInstant,    ///< point event
  kCounter,    ///< sampled value (queue depth etc.)
  kFlowStart,  ///< tail of a flow arrow (binds to the enclosing span)
  kFlowEnd,    ///< head of a flow arrow
};

/// POD event record; strings live in the intern tables.
struct Event {
  EventKind kind = EventKind::kSpan;
  std::uint32_t track = 0;  ///< index into tracks()
  std::uint32_t label = 0;  ///< index into labels()
  TimeS t0 = 0.0;
  TimeS t1 = 0.0;           ///< spans: end time; other kinds: == t0
  double value = 0.0;       ///< counters only
  std::int64_t flow = -1;   ///< flow arrows only
};

struct Track {
  std::string name;     ///< full lane name, e.g. "n3.tx"
  std::string process;  ///< prefix before the first '.', e.g. "n3"
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Intern a track; repeated calls with the same name return the same id.
  std::uint32_t track(const std::string& lane);
  /// Intern a label string.
  std::uint32_t label(const std::string& text);

  // -- Recording (no-ops while disabled) ------------------------------------
  void span(const std::string& lane, TimeS t0, TimeS t1,
            const std::string& label_text);
  void span(std::uint32_t track_id, TimeS t0, TimeS t1, std::uint32_t label_id);
  void instant(const std::string& lane, TimeS t, const std::string& label_text);
  void counter(const std::string& lane, TimeS t, double value);
  void counter(std::uint32_t track_id, TimeS t, double value);
  void flow_start(const std::string& lane, TimeS t, std::int64_t flow_id,
                  const std::string& label_text);
  void flow_end(const std::string& lane, TimeS t, std::int64_t flow_id,
                const std::string& label_text);
  void lifecycle(Stage stage, int worker, std::int64_t slice, int layer,
                 std::int64_t iteration, int priority, Bytes bytes, TimeS t);

  // -- Introspection --------------------------------------------------------
  const std::vector<Event>& events() const { return events_; }
  const std::vector<Track>& tracks() const { return tracks_; }
  const std::string& label_text(std::uint32_t id) const {
    return labels_.at(id);
  }
  const std::string& track_name(std::uint32_t id) const {
    return tracks_.at(id).name;
  }
  const std::vector<LifecycleRecord>& lifecycle_records() const {
    return lifecycle_;
  }
  bool empty() const { return events_.empty() && lifecycle_.empty(); }
  void clear();

  /// Well-formedness check: spans and flows must have non-negative duration
  /// and every flow end must reference an earlier flow start with the same
  /// id. Unmatched flow *starts* are allowed (messages still in flight when
  /// the run stopped). Returns human-readable violations (empty == valid).
  std::vector<std::string> validate() const;

  /// validate() plus flow accounting. `flows_in_flight` counts flow starts
  /// that never saw a matching end — not a violation (the run may simply
  /// have stopped with messages on the wire), but a truncated trace drops
  /// exactly these edges from any causal-graph reconstruction, so consumers
  /// (trace_report, critpath) surface the number instead of hiding it.
  struct ValidationStats {
    std::vector<std::string> violations;
    std::int64_t flows_started = 0;
    std::int64_t flows_ended = 0;
    std::int64_t flows_in_flight = 0;  ///< started, never ended
  };
  ValidationStats validate_accounting() const;

  // -- Export ---------------------------------------------------------------
  /// Chrome trace-event JSON (the format Perfetto and chrome://tracing
  /// load). Timestamps are microseconds; tracks map to pid/tid pairs with
  /// process_name/thread_name metadata.
  void write_chrome_json(std::ostream& out) const;
  /// Convenience overload; throws std::runtime_error if the file can't open.
  void write_chrome_json(const std::string& path) const;

  /// Lifecycle records as CSV:
  /// stage,worker,slice,layer,iteration,priority,bytes,t
  void write_lifecycle_csv(const std::string& path) const;

 private:
  bool enabled_ = true;
  std::vector<Event> events_;
  std::vector<Track> tracks_;
  std::unordered_map<std::string, std::uint32_t> track_ids_;
  std::vector<std::string> labels_;
  std::unordered_map<std::string, std::uint32_t> label_ids_;
  std::vector<LifecycleRecord> lifecycle_;
};

/// RAII hook that mirrors this thread's P3_LOG lines into a tracer as
/// instant events on the "log" track, stamped with simulation time. The
/// previous hook (if any) is restored on destruction.
class LogCapture {
 public:
  LogCapture(Tracer& tracer, std::function<TimeS()> clock);
  ~LogCapture();
  LogCapture(const LogCapture&) = delete;
  LogCapture& operator=(const LogCapture&) = delete;

 private:
  LogHook previous_;
};

}  // namespace p3::obs
