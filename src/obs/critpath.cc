#include "obs/critpath.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace p3::obs {

namespace {

// Tolerance for matching a lifecycle timestamp against a span edge recorded
// at the same simulated instant. Both sides carry the identical double in
// the common case; the epsilon only absorbs the few sites where one side is
// re-derived arithmetically.
constexpr double kEps = 1e-9;
// Hard step cap per iteration walk: a malformed trace that defeats the
// monotone-cursor invariant terminates instead of spinning.
constexpr int kMaxSteps = 1'000'000;

const char* kBlameNames[kBlameCount] = {
    "forward",  "backward", "sendq",   "inversion", "wire",    "uplink",
    "downlink", "server",   "agghold", "recovery",  "sspwait", "other",
};

struct SpanRef {
  double t0 = 0.0;
  double t1 = 0.0;
  std::uint32_t label = 0;
  std::uint32_t track = 0;
};

struct CmpSpan {
  double t0 = 0.0;
  double t1 = 0.0;
  std::int64_t iter = -1;
  int layer = 0;
  bool forward = false;
};

struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};

struct TxBusy {
  double lo = 0.0;
  double hi = 0.0;
  int priority = -1;      ///< slice priority of the label's layer, -1 unknown
  bool gradient = false;  ///< label carried gradient payload ('g'/'a')
};

struct FlowRec {
  std::uint32_t start_track = 0;
  double start_t = 0.0;
  std::uint32_t label = 0;
  bool has_start = false;
};

struct FlowEndRef {
  double t = 0.0;
  std::uint32_t label = 0;
  std::int64_t flow = -1;
};

/// Pre-parsed label: leading kind char plus the trailing integer (and
/// whether an 'L' immediately precedes it — the message_label layer suffix).
struct LabelInfo {
  char kind = 0;
  int num = -1;
  bool l_suffix = false;
};

LabelInfo parse_label(const std::string& s) {
  LabelInfo info;
  if (s.empty()) return info;
  info.kind = s.front();
  std::size_t end = s.size();
  std::size_t begin = end;
  while (begin > 0 && std::isdigit(static_cast<unsigned char>(s[begin - 1]))) {
    --begin;
  }
  if (begin < end) {
    info.num = std::atoi(s.c_str() + begin);
    info.l_suffix = begin > 0 && s[begin - 1] == 'L';
  }
  return info;
}

/// Parse "<prefix><digits>.<suffix>" lane names; returns false on others.
bool parse_lane(const std::string& name, char& prefix, int& id,
                std::string& suffix) {
  if (name.size() < 3) return false;
  prefix = name[0];
  std::size_t i = 1;
  while (i < name.size() && std::isdigit(static_cast<unsigned char>(name[i]))) {
    ++i;
  }
  if (i == 1 || i >= name.size() || name[i] != '.') return false;
  id = std::atoi(name.c_str() + 1);
  suffix = name.substr(i);
  return true;
}

std::vector<Interval> merge_intervals(std::vector<Interval> v) {
  std::sort(v.begin(), v.end(), [](const Interval& a, const Interval& b) {
    return a.lo < b.lo || (a.lo == b.lo && a.hi < b.hi);
  });
  std::vector<Interval> out;
  for (const Interval& iv : v) {
    if (iv.hi <= iv.lo) continue;
    if (!out.empty() && iv.lo <= out.back().hi) {
      out.back().hi = std::max(out.back().hi, iv.hi);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

/// Does some interval cover the instant just below `t`, and where is the
/// nearest boundary at or below `t` otherwise?
struct Cover {
  bool covered = false;
  double boundary = -1e300;  ///< covered: interval lo; else: previous hi
};

Cover cover_at(const std::vector<Interval>& ivs, double t) {
  Cover c;
  auto it = std::lower_bound(
      ivs.begin(), ivs.end(), t,
      [](const Interval& iv, double x) { return iv.lo < x; });
  if (it != ivs.begin()) {
    const Interval& prev = *(it - 1);
    if (prev.hi >= t - kEps && prev.lo < t - kEps) {
      c.covered = true;
      c.boundary = prev.lo;
      return c;
    }
    c.boundary = std::min(prev.hi, t);
  }
  return c;
}

struct Lifecycle {
  std::array<double, kNumStages> first{};
  std::array<double, kNumStages> last{};
  std::array<int, kNumStages> n{};
  std::vector<double> sends;     ///< every kSend time, ascending
  std::vector<double> enqueues;  ///< every kEnqueue time, ascending
};

std::int64_t group_key(int worker, std::int64_t slice, std::int64_t iter) {
  return make_trace_id(slice, iter, worker);
}

std::int64_t slice_iter_key(std::int64_t slice, std::int64_t iter) {
  return ((slice & 0x3FFFFFF) << 30) | (iter & 0x3FFFFFFF);
}

std::int64_t gate_key(int worker, int layer, std::int64_t iter) {
  return ((static_cast<std::int64_t>(layer) & 0xFFFF) << 40) |
         ((iter & 0xFFFFFFFF) << 8) | (worker & 0xFF);
}

struct Graph {
  std::vector<LabelInfo> labels;

  std::unordered_map<int, std::vector<CmpSpan>> cmp;      // worker -> spans
  std::unordered_map<int, std::vector<double>> iter_end;  // worker -> B1 t1s
  std::unordered_map<int, double> iter0_start;            // worker -> F1.t0
  std::unordered_map<int, std::vector<SpanRef>> rx, tx, srv;
  std::unordered_map<int, std::vector<SpanRef>> folds;  // agg fold marks
  std::unordered_map<int, std::vector<Interval>> hold;  // park/shed windows
  std::unordered_map<int, std::vector<Interval>> ssp;   // DSSP gate blocks
  std::unordered_map<int, std::vector<TxBusy>> tx_busy;
  std::vector<Interval> up_busy, dn_busy;

  std::unordered_map<std::int64_t, FlowRec> flows;
  std::unordered_map<std::uint32_t, std::vector<FlowEndRef>> flow_ends;
  std::unordered_map<std::uint32_t, std::vector<SpanRef>> spans_by_track;

  std::unordered_map<std::int64_t, Lifecycle> groups;
  // (slice, iter) -> (t, worker) of every kServerRecv, ascending by t
  std::unordered_map<std::int64_t, std::vector<std::pair<double, int>>>
      server_recv;
  // (worker, layer, iter) -> (t, slice) of every kParamReady, ascending
  std::unordered_map<std::int64_t, std::vector<std::pair<double, std::int64_t>>>
      param_ready;
  std::unordered_map<std::int64_t, int> slice_priority;
  std::unordered_map<int, int> layer_priority;

  const LabelInfo& info(std::uint32_t id) const { return labels[id]; }
};

void sort_spans(std::vector<SpanRef>& v) {
  std::stable_sort(v.begin(), v.end(), [](const SpanRef& a, const SpanRef& b) {
    return a.t0 < b.t0;
  });
}

Graph build_graph(const Tracer& tracer, std::vector<std::string>& problems) {
  Graph g;
  if (!tracer.events().empty()) {
    std::uint32_t max_label = 0;
    for (const Event& e : tracer.events()) {
      max_label = std::max(max_label, e.label);
    }
    g.labels.resize(static_cast<std::size_t>(max_label) + 1);
    for (std::uint32_t i = 0; i <= max_label; ++i) {
      g.labels[i] = parse_label(tracer.label_text(i));
    }
  }

  struct LaneKind {
    char cls = 0;  ///< 'c' cmp, 'r' rx, 't' tx, 's' srv, 'a' agg, 'h' hold,
                   ///< 'S' ssp gate, 'u' up-port, 'd' dn-port, 0 ignored
    int id = 0;
  };
  std::vector<LaneKind> lanes(tracer.tracks().size());
  for (std::size_t t = 0; t < tracer.tracks().size(); ++t) {
    char prefix = 0;
    int id = 0;
    std::string suffix;
    if (!parse_lane(tracer.tracks()[t].name, prefix, id, suffix)) continue;
    LaneKind lk;
    lk.id = id;
    if (prefix == 'w' && suffix == ".cmp") lk.cls = 'c';
    if (prefix == 'w' && suffix == ".hold") lk.cls = 'h';
    if (prefix == 'w' && suffix == ".ssp") lk.cls = 'S';
    if (prefix == 'n' && suffix == ".rx") lk.cls = 'r';
    if (prefix == 'n' && suffix == ".tx") lk.cls = 't';
    if (prefix == 'n' && suffix == ".srv") lk.cls = 's';
    if (prefix == 'n' && suffix == ".agg") lk.cls = 'a';
    if (prefix == 'r' && suffix == ".up") lk.cls = 'u';
    if (prefix == 'r' && suffix == ".dn") lk.cls = 'd';
    lanes[t] = lk;
  }

  std::vector<Interval> up_raw, dn_raw;
  std::unordered_map<int, std::vector<Interval>> hold_raw, ssp_raw;
  std::unordered_map<int, std::vector<SpanRef>> cmp_raw;
  for (const Event& e : tracer.events()) {
    const LaneKind lk = lanes[e.track];
    switch (e.kind) {
      case EventKind::kSpan: {
        const SpanRef s{e.t0, e.t1, e.label, e.track};
        g.spans_by_track[e.track].push_back(s);
        switch (lk.cls) {
          case 'c':
            cmp_raw[lk.id].push_back(s);
            break;
          case 'r':
            g.rx[lk.id].push_back(s);
            break;
          case 't': {
            g.tx[lk.id].push_back(s);
            const LabelInfo& li = g.info(e.label);
            TxBusy tb;
            tb.lo = e.t0;
            tb.hi = e.t1;
            tb.gradient = li.kind == 'g' || li.kind == 'a';
            if (li.l_suffix) tb.priority = li.num;  // layer; mapped below
            g.tx_busy[lk.id].push_back(tb);
            break;
          }
          case 's':
            g.srv[lk.id].push_back(s);
            break;
          case 'a':
            g.folds[lk.id].push_back(s);
            break;
          case 'h':
            hold_raw[lk.id].push_back({e.t0, e.t1});
            break;
          case 'S':
            ssp_raw[lk.id].push_back({e.t0, e.t1});
            break;
          case 'u':
            up_raw.push_back({e.t0, e.t1});
            break;
          case 'd':
            dn_raw.push_back({e.t0, e.t1});
            break;
          default:
            break;
        }
        break;
      }
      case EventKind::kFlowStart: {
        FlowRec& f = g.flows[e.flow];
        f.start_track = e.track;
        f.start_t = e.t0;
        f.label = e.label;
        f.has_start = true;
        break;
      }
      case EventKind::kFlowEnd:
        g.flow_ends[e.track].push_back({e.t0, e.label, e.flow});
        break;
      default:
        break;
    }
  }
  for (auto& [node, v] : g.rx) sort_spans(v);
  for (auto& [node, v] : g.tx) sort_spans(v);
  for (auto& [node, v] : g.srv) sort_spans(v);
  for (auto& [node, v] : g.folds) sort_spans(v);
  for (auto& [track, v] : g.spans_by_track) sort_spans(v);
  for (auto& [track, v] : g.flow_ends) {
    std::stable_sort(v.begin(), v.end(),
                     [](const FlowEndRef& a, const FlowEndRef& b) {
                       return a.t < b.t;
                     });
  }
  for (auto& [node, v] : g.tx_busy) {
    std::stable_sort(v.begin(), v.end(), [](const TxBusy& a, const TxBusy& b) {
      return a.lo < b.lo;
    });
  }
  for (auto& [w, v] : hold_raw) g.hold[w] = merge_intervals(std::move(v));
  for (auto& [w, v] : ssp_raw) g.ssp[w] = merge_intervals(std::move(v));
  g.up_busy = merge_intervals(std::move(up_raw));
  g.dn_busy = merge_intervals(std::move(dn_raw));

  // Annotate compute spans with iteration indices: a lane is F1..FL BL..B1
  // repeated; the iteration index increments on each F1 and the iteration
  // completes at its B1.
  for (auto& [w, raw] : cmp_raw) {
    sort_spans(raw);
    std::vector<CmpSpan>& spans = g.cmp[w];
    std::vector<double>& ends = g.iter_end[w];
    spans.reserve(raw.size());
    std::int64_t iter = -1;
    for (const SpanRef& s : raw) {
      const LabelInfo& li = g.info(s.label);
      if (li.kind != 'F' && li.kind != 'B') {
        problems.push_back("critpath: unexpected label '" +
                           tracer.label_text(s.label) + "' on compute lane w" +
                           std::to_string(w) + ".cmp");
        continue;
      }
      if (li.kind == 'F' && li.num == 1) {
        ++iter;
        if (g.iter0_start.find(w) == g.iter0_start.end()) {
          g.iter0_start[w] = s.t0;
        }
      }
      CmpSpan cs;
      cs.t0 = s.t0;
      cs.t1 = s.t1;
      cs.forward = li.kind == 'F';
      cs.layer = li.num - 1;
      cs.iter = iter;
      spans.push_back(cs);
      if (li.kind == 'B' && li.num == 1 && iter >= 0 &&
          static_cast<std::int64_t>(ends.size()) == iter) {
        ends.push_back(s.t1);
      }
    }
  }

  for (const LifecycleRecord& r : tracer.lifecycle_records()) {
    Lifecycle& lc = g.groups[group_key(r.worker, r.slice, r.iteration)];
    const auto st = static_cast<std::size_t>(r.stage);
    if (lc.n[st] == 0 || r.t < lc.first[st]) lc.first[st] = r.t;
    if (lc.n[st] == 0 || r.t > lc.last[st]) lc.last[st] = r.t;
    ++lc.n[st];
    if (r.stage == Stage::kSend) lc.sends.push_back(r.t);
    if (r.stage == Stage::kEnqueue) lc.enqueues.push_back(r.t);
    if (r.stage == Stage::kServerRecv) {
      g.server_recv[slice_iter_key(r.slice, r.iteration)].emplace_back(
          r.t, r.worker);
    }
    if (r.stage == Stage::kParamReady) {
      g.param_ready[gate_key(r.worker, r.layer, r.iteration)].emplace_back(
          r.t, r.slice);
    }
    g.slice_priority.emplace(r.slice, r.priority);
    g.layer_priority.emplace(r.layer, r.priority);
  }
  // Lifecycle records arrive in time order so the per-key vectors are
  // already ascending; keep a defensive sort for merged/loaded traces.
  for (auto& [k, v] : g.server_recv) std::stable_sort(v.begin(), v.end());
  for (auto& [k, v] : g.param_ready) std::stable_sort(v.begin(), v.end());

  // Rewrite tx-busy layer numbers into slice priorities now that the
  // lifecycle stream supplied the layer -> priority map.
  for (auto& [node, v] : g.tx_busy) {
    for (TxBusy& tb : v) {
      if (tb.priority >= 0) {
        const auto it = g.layer_priority.find(tb.priority);
        tb.priority = it == g.layer_priority.end() ? -1 : it->second;
      }
    }
  }

  if (g.cmp.empty()) {
    problems.push_back("critpath: trace has no worker compute spans");
  }
  return g;
}

// -- Graph queries ----------------------------------------------------------

/// Latest span on the lane with a matching label whose end is <= t (+eps).
/// Lane spans are sequential, so t1 order follows t0 order: binary-search
/// the start times, then scan backward for the label.
const SpanRef* find_span_ending_at(const std::vector<SpanRef>* spans,
                                   double t, const Graph& g, char kind,
                                   int num, bool l_suffix) {
  if (spans == nullptr) return nullptr;
  auto it = std::upper_bound(spans->begin(), spans->end(), t + kEps,
                             [](double x, const SpanRef& s) {
                               return x < s.t0;
                             });
  while (it != spans->begin()) {
    --it;
    if (it->t1 > t + kEps) continue;
    const LabelInfo& li = g.info(it->label);
    if (li.kind == kind && li.num == num && li.l_suffix == l_suffix) {
      return &*it;
    }
  }
  return nullptr;
}

const std::vector<SpanRef>* lookup(
    const std::unordered_map<int, std::vector<SpanRef>>& m, int id) {
  const auto it = m.find(id);
  return it == m.end() ? nullptr : &it->second;
}

struct LinkSource {
  int node = -1;
  const SpanRef* tx = nullptr;
};

// -- The backward walk ------------------------------------------------------

class Walker {
 public:
  Walker(const Graph& g, const Tracer& tracer, IterationBlame& out,
         double window_start, std::int64_t& stalls)
      : g_(g),
        tracer_(tracer),
        out_(out),
        ws_(window_start),
        cursor_(out.window_end),
        stalls_(stalls) {}

  void run() {
    int worker = out_.binding_worker;
    while (!done()) {
      worker = step_compute(worker);
      if (worker < 0) break;
    }
    if (cursor_ > ws_ + kEps) take(ws_, Blame::kOther);
  }

 private:
  bool done() const { return cursor_ <= ws_ + kEps || steps_ > kMaxSteps; }

  /// Attribute [max(from, window_start), cursor] to `cat`, move the cursor.
  /// A milestone later than the cursor (matching slop) attributes nothing.
  void take(double from, Blame cat) {
    if (from > cursor_) from = cursor_;
    const double lo = std::max(from, ws_);
    if (cursor_ > lo) {
      out_.seconds[static_cast<std::size_t>(cat)] += cursor_ - lo;
      cursor_ = lo;
    }
    ++steps_;
  }

  /// Mid-chain dead end: attribute the rest of the window to `other`.
  bool stall_chain() {
    ++stalls_;
    take(ws_, Blame::kOther);
    return false;
  }

  /// Walk one compute step at `worker`; returns the worker whose timeline
  /// the walk continues on (a gate chain hands off to a contributor), or
  /// -1 when the window is fully attributed or the walk stalled.
  int step_compute(int worker) {
    const auto it = g_.cmp.find(worker);
    if (it == g_.cmp.end() || it->second.empty()) {
      stall_chain();
      return -1;
    }
    const std::vector<CmpSpan>& spans = it->second;
    // Last span starting strictly before the cursor.
    auto sit = std::upper_bound(
        spans.begin(), spans.end(), cursor_ - kEps,
        [](double t, const CmpSpan& s) { return t < s.t0; });
    if (sit == spans.begin()) {
      take(ws_, Blame::kOther);  // window predates this worker's first span
      return -1;
    }
    const CmpSpan& s = *(sit - 1);
    if (s.t1 < cursor_ - kEps) take(s.t1, Blame::kOther);  // idle sliver
    if (done()) return -1;
    take(s.t0, s.forward ? Blame::kForward : Blame::kBackward);
    if (done()) return -1;
    const bool has_prev = sit - 1 != spans.begin();
    const double prev_end = has_prev ? (sit - 2)->t1 : -1e300;
    if (cursor_ <= prev_end + kEps) return worker;  // back-to-back spans
    if (s.forward) {
      // DSSP staleness gate: when the gap below a forward span lands inside
      // a blocked window on the worker's ssp lane, the min-clock floor — not
      // a parameter delivery — was the binding constraint.
      const auto sspit = g_.ssp.find(worker);
      if (sspit != g_.ssp.end()) {
        const Cover sc = cover_at(sspit->second, cursor_);
        if (sc.covered) {
          take(sc.boundary, Blame::kSspWait);
          return done() ? -1 : worker;
        }
      }
      const int next = resolve_gate(worker, s.layer, s.iter);
      if (next != kGateUnresolved) return next;
    }
    if (!has_prev) {
      take(ws_, Blame::kOther);
      return -1;
    }
    take(prev_end, Blame::kOther);  // non-gate gap (scheduling slop)
    return worker;
  }

  static constexpr int kGateUnresolved = -2;

  /// Resolve the gate wait before F_{layer+1} of `iter` at `worker`.
  /// Returns the worker to continue on, -1 if the walk finished or stalled,
  /// or kGateUnresolved if the chain could not even start (the caller falls
  /// back to a plain-gap attribution).
  int resolve_gate(int worker, int layer, std::int64_t iter) {
    if (iter <= 0) return kGateUnresolved;
    const auto it = g_.param_ready.find(gate_key(worker, layer, iter - 1));
    if (it == g_.param_ready.end()) return kGateUnresolved;
    // Binding slice: latest param-ready at or before the gate release.
    const auto& prs = it->second;
    auto pit = std::upper_bound(
        prs.begin(), prs.end(),
        std::make_pair(cursor_ + kEps,
                       std::numeric_limits<std::int64_t>::max()));
    if (pit == prs.begin()) return kGateUnresolved;
    const double pr = (pit - 1)->first;
    const std::int64_t slice = (pit - 1)->second;
    take(pr, Blame::kOther);  // gate release -> span start sliver
    current_worker_ = -1;
    if (!resolve_param_arrival(worker, slice, layer, iter - 1)) return -1;
    if (done()) return -1;
    return current_worker_;
  }

  /// Chain: parameter delivery of (slice, round) completing at the cursor on
  /// `worker`'s node. On success the cursor sits at a kGradReady boundary
  /// and current_worker_ names the contributor.
  bool resolve_param_arrival(int worker, std::int64_t slice, int layer,
                             std::int64_t round) {
    const SpanRef* rx_span = find_span_ending_at(lookup(g_.rx, worker),
                                                 cursor_, g_, 'p', layer,
                                                 true);
    // Only accept a params rx that ends *at* the cursor: an earlier one
    // belongs to a sibling slice and would skip real wait time.
    if (rx_span != nullptr && rx_span->t1 < cursor_ - kEps) rx_span = nullptr;
    int src = worker;  // loopback default: the server shares the node
    if (rx_span != nullptr) {
      const LinkSource link = follow_link(*rx_span);
      if (link.node < 0) return stall_chain();
      src = link.node;
    }
    return resolve_param_source(src, worker, slice, layer, round);
  }

  /// The cursor sits where node `src` posted (or relayed) the params for
  /// (slice, round) toward `worker`. Identify the tightest predecessor:
  /// the server's round release (U span), a rack relay hop, or a pull serve.
  bool resolve_param_source(int src, int worker, std::int64_t slice, int layer,
                            std::int64_t round) {
    for (int hop = 0; hop < 8; ++hop) {
      if (done()) return true;
      const SpanRef* u = find_span_ending_at(lookup(g_.srv, src), cursor_, g_,
                                             'U', layer + 1, false);
      const SpanRef* relay = find_span_ending_at(lookup(g_.rx, src), cursor_,
                                                 g_, 'P', layer, true);
      const SpanRef* pull = find_span_ending_at(lookup(g_.rx, src), cursor_,
                                                g_, 'q', layer, true);
      // The binding predecessor is the latest-finishing candidate.
      const SpanRef* best = u;
      char kind = 'U';
      if (relay != nullptr && (best == nullptr || relay->t1 > best->t1)) {
        best = relay;
        kind = 'P';
      }
      if (pull != nullptr && (best == nullptr || pull->t1 > best->t1)) {
        best = pull;
        kind = 'q';
      }
      if (best == nullptr) return stall_chain();
      if (kind == 'U') {
        take(best->t1, Blame::kWire);    // egress backlog after release
        take(best->t0, Blame::kServer);  // aggregation + optimizer
        return resolve_contribution(src, slice, layer, round);
      }
      if (kind == 'P') {
        take(best->t1, Blame::kWire);
        const LinkSource link = follow_link(*best);
        if (link.node < 0) return stall_chain();
        src = link.node;
        continue;  // one relay hop closer to the server
      }
      // Pull serve: rxq wait + handling at the server, then the request's
      // journey back to the worker, then notify delivery before that.
      take(best->t1, Blame::kServer);
      const LinkSource plink = follow_link(*best);
      if (plink.node < 0) return stall_chain();
      const Lifecycle* lc = group(worker, slice, round);
      if (lc != nullptr && lc->n[static_cast<std::size_t>(Stage::kPull)] > 0) {
        take(lc->first[static_cast<std::size_t>(Stage::kPull)], Blame::kWire);
      }
      const SpanRef* notify = find_span_ending_at(lookup(g_.rx, worker),
                                                  cursor_, g_, 'n', layer,
                                                  true);
      if (notify != nullptr) {
        take(notify->t1, Blame::kWire);  // waiting on sibling notifies
        const LinkSource nlink = follow_link(*notify);
        if (nlink.node < 0) return stall_chain();
        src = nlink.node;
      }
      // Either way the cursor now precedes the round's pull and notify, so
      // the next hop resolves to the server's U release.
    }
    return stall_chain();
  }

  /// Below the U span: the last-arriving contribution for (slice, round).
  bool resolve_contribution(int server, std::int64_t slice, int layer,
                            std::int64_t round) {
    if (done()) return true;
    const auto it = g_.server_recv.find(slice_iter_key(slice, round));
    if (it == g_.server_recv.end()) return stall_chain();
    const auto& recs = it->second;
    auto rit = std::upper_bound(
        recs.begin(), recs.end(),
        std::make_pair(cursor_ + kEps, std::numeric_limits<int>::max()));
    if (rit == recs.begin()) return stall_chain();
    const double sr = (rit - 1)->first;
    const int contributor = (rit - 1)->second;
    take(sr, Blame::kServer);
    // The push's rx completion precedes the rxq pop: direct ("gL") or
    // rack-combined ("aL").
    const SpanRef* direct = find_span_ending_at(lookup(g_.rx, server),
                                                cursor_, g_, 'g', layer, true);
    const SpanRef* combined = find_span_ending_at(lookup(g_.rx, server),
                                                  cursor_, g_, 'a', layer,
                                                  true);
    const SpanRef* rx_span = direct;
    bool is_combined = false;
    if (combined != nullptr &&
        (rx_span == nullptr || combined->t1 > rx_span->t1)) {
      rx_span = combined;
      is_combined = true;
    }
    if (rx_span != nullptr) {
      take(rx_span->t1, Blame::kServer);  // receive-queue wait
      const LinkSource link = follow_link(*rx_span);
      if (link.node < 0) return stall_chain();
      return resolve_sender(link.node, slice, layer, round, is_combined);
    }
    // Loopback push: the contributor shares the server's node.
    return resolve_sender(contributor, slice, layer, round, false);
  }

  /// The cursor sits at (or above) the sender's NIC hand-off for the push of
  /// (slice, round) from `sender`. Unwind send queue, parking, retransmit
  /// waits, and — for rack-combined pushes — the aggregation hold.
  bool resolve_sender(int sender, std::int64_t slice, int layer,
                      std::int64_t round, bool combined) {
    if (done()) return true;
    const Lifecycle* lc = group(sender, slice, round);
    if (lc == nullptr || lc->sends.empty()) return stall_chain();
    // Latest kSend at or before the cursor: the delivered copy.
    auto sit = std::upper_bound(lc->sends.begin(), lc->sends.end(),
                                cursor_ + kEps);
    if (sit == lc->sends.begin()) return stall_chain();
    const double tsend = *(sit - 1);
    take(tsend, Blame::kWire);  // loopback serialization / send-overhead slop
    // Matching enqueue: latest at or before the send.
    auto eit = std::upper_bound(lc->enqueues.begin(), lc->enqueues.end(),
                                tsend + kEps);
    if (eit == lc->enqueues.begin()) return stall_chain();
    const double tenq = *(eit - 1);
    // Earlier kSend attempts after this enqueue are retransmissions of the
    // same copy: the span back to the first attempt is recovery wait.
    auto first_try = std::lower_bound(lc->sends.begin(), lc->sends.end(),
                                      tenq - kEps);
    if (first_try != lc->sends.end() && *first_try < tsend - kEps) {
      take(*first_try, Blame::kRecovery);
    }
    attribute_queue_wait(sender, tenq, priority_of(slice));
    if (done()) return true;
    if (combined) {
      // Rack pre-reduction: before the combined push entered the
      // aggregator's queue it waited for the closing member contribution.
      const SpanRef* fold = find_span_ending_at(lookup(g_.folds, sender),
                                                cursor_, g_, 'f', layer + 1,
                                                false);
      if (fold == nullptr) return stall_chain();
      take(fold->t1, Blame::kAggHold);
      const SpanRef* mrx = find_span_ending_at(lookup(g_.rx, sender), cursor_,
                                               g_, 'g', layer, true);
      if (mrx != nullptr && mrx->t1 >= fold->t1 - kEps) {
        take(mrx->t1, Blame::kAggHold);
        const LinkSource link = follow_link(*mrx);
        if (link.node < 0) return stall_chain();
        return resolve_sender(link.node, slice, layer, round, false);
      }
      // The closing member was the aggregator itself (loopback fold).
      return resolve_sender(sender, slice, layer, round, false);
    }
    const auto gr = static_cast<std::size_t>(Stage::kGradReady);
    if (lc->n[gr] == 0) return stall_chain();
    take(lc->first[gr], Blame::kSendQueue);
    current_worker_ = sender;
    return true;
  }

  /// rx span -> flow arrow -> tx span, attributing receiver serialization,
  /// in-flight time (split against switch-port busy intervals) and sender
  /// serialization. Returns node == -1 on a broken link.
  LinkSource follow_link(const SpanRef& rx_span) {
    take(rx_span.t0, Blame::kWire);
    const FlowEndRef* fe = find_flow_end(rx_span);
    if (fe == nullptr) return {};
    const auto fit = g_.flows.find(fe->flow);
    if (fit == g_.flows.end() || !fit->second.has_start) return {};
    const FlowRec& f = fit->second;
    const SpanRef* tx_span = find_span_starting_at(f.start_track, f.start_t,
                                                   f.label);
    if (tx_span == nullptr) return {};
    attribute_inflight(tx_span->t1);
    take(tx_span->t0, Blame::kWire);
    char prefix = 0;
    int node = -1;
    std::string suffix;
    if (!parse_lane(tracer_.track_name(f.start_track), prefix, node, suffix)) {
      return {};
    }
    LinkSource out;
    out.node = node;
    out.tx = tx_span;
    return out;
  }

  const FlowEndRef* find_flow_end(const SpanRef& rx_span) {
    const auto eit = g_.flow_ends.find(rx_span.track);
    if (eit == g_.flow_ends.end()) return nullptr;
    const auto& ends = eit->second;
    auto it = std::lower_bound(
        ends.begin(), ends.end(), rx_span.t0 - kEps,
        [](const FlowEndRef& a, double t) { return a.t < t; });
    for (; it != ends.end() && it->t <= rx_span.t0 + kEps; ++it) {
      if (it->label == rx_span.label) return &*it;
    }
    return nullptr;
  }

  const SpanRef* find_span_starting_at(std::uint32_t track, double t,
                                       std::uint32_t label) {
    const auto it = g_.spans_by_track.find(track);
    if (it == g_.spans_by_track.end()) return nullptr;
    const auto& spans = it->second;
    auto sit = std::lower_bound(
        spans.begin(), spans.end(), t - kEps,
        [](const SpanRef& s, double x) { return s.t0 < x; });
    for (; sit != spans.end() && sit->t0 <= t + kEps; ++sit) {
      if (sit->label == label) return &*sit;
    }
    return nullptr;
  }

  /// Split [from, cursor] between uplink-port, downlink-port and plain wire
  /// time by overlap with the switch ports' busy intervals.
  void attribute_inflight(double from) {
    while (cursor_ > std::max(from, ws_) + kEps && steps_ <= kMaxSteps) {
      const Cover up = cover_at(g_.up_busy, cursor_);
      if (up.covered) {
        take(std::max(from, up.boundary), Blame::kUplink);
        continue;
      }
      const Cover dn = cover_at(g_.dn_busy, cursor_);
      if (dn.covered) {
        take(std::max(from, dn.boundary), Blame::kDownlink);
        continue;
      }
      double boundary = std::max(up.boundary, dn.boundary);
      if (boundary >= cursor_ - kEps) boundary = from;  // no progress: close
      take(std::max(from, boundary), Blame::kWire);
    }
    take(from, Blame::kWire);
  }

  /// Split the send-queue wait [from, cursor] at `node` between recovery
  /// parking (hold-lane overlap), priority inversion (NIC busy with strictly
  /// lower-priority gradients) and plain queue wait.
  void attribute_queue_wait(int node, double from, int priority) {
    const auto hit = g_.hold.find(node);
    const std::vector<Interval>* holds =
        hit == g_.hold.end() ? nullptr : &hit->second;
    const auto bit = g_.tx_busy.find(node);
    const std::vector<TxBusy>* busy =
        bit == g_.tx_busy.end() ? nullptr : &bit->second;
    while (cursor_ > std::max(from, ws_) + kEps && steps_ <= kMaxSteps) {
      if (holds != nullptr) {
        const Cover h = cover_at(*holds, cursor_);
        if (h.covered) {
          take(std::max(from, h.boundary), Blame::kRecovery);
          continue;
        }
      }
      // Spans on one NIC lane are sequential, so only the last span starting
      // below the cursor can cover it.
      const TxBusy* cover = nullptr;
      double boundary = -1e300;
      if (busy != nullptr) {
        auto it = std::lower_bound(busy->begin(), busy->end(), cursor_,
                                   [](const TxBusy& b, double t) {
                                     return b.lo < t;
                                   });
        if (it != busy->begin()) {
          --it;
          if (it->hi >= cursor_ - kEps && it->lo < cursor_ - kEps) {
            cover = &*it;
          } else {
            boundary = std::min(it->hi, cursor_);
          }
        }
      }
      if (cover != nullptr) {
        const bool inverted = cover->gradient && priority >= 0 &&
                              cover->priority > priority;
        take(std::max(from, cover->lo),
             inverted ? Blame::kInversion : Blame::kSendQueue);
        continue;
      }
      if (boundary >= cursor_ - kEps || boundary <= -1e299) boundary = from;
      take(std::max(from, boundary), Blame::kSendQueue);
    }
    take(from, Blame::kSendQueue);
  }

  const Lifecycle* group(int worker, std::int64_t slice, std::int64_t iter) {
    const auto it = g_.groups.find(group_key(worker, slice, iter));
    return it == g_.groups.end() ? nullptr : &it->second;
  }

  int priority_of(std::int64_t slice) const {
    const auto it = g_.slice_priority.find(slice);
    return it == g_.slice_priority.end() ? -1 : it->second;
  }

  const Graph& g_;
  const Tracer& tracer_;
  IterationBlame& out_;
  double ws_;
  double cursor_;
  int steps_ = 0;
  std::int64_t& stalls_;
  int current_worker_ = -1;
};

}  // namespace

const char* blame_name(Blame b) { return kBlameNames[static_cast<int>(b)]; }

double IterationBlame::attributed() const {
  double sum = 0.0;
  for (double s : seconds) sum += s;
  return sum;
}

double BlameReport::share(Blame b) const {
  return total_s > 0.0 ? totals[static_cast<std::size_t>(b)] / total_s : 0.0;
}

double BlameReport::network_share() const {
  return share(Blame::kSendQueue) + share(Blame::kInversion) +
         share(Blame::kWire) + share(Blame::kUplink) + share(Blame::kDownlink);
}

BlameReport analyze_critical_path(const Tracer& tracer, int skip_iterations) {
  BlameReport report;
  report.events_processed = static_cast<std::int64_t>(tracer.events().size());
  const Graph g = build_graph(tracer, report.problems);
  if (!report.problems.empty()) return report;

  // Iterations every worker completed.
  std::size_t n_iters = 0;
  bool first = true;
  for (const auto& [w, ends] : g.iter_end) {
    n_iters = first ? ends.size() : std::min(n_iters, ends.size());
    first = false;
  }
  if (n_iters == 0) {
    report.problems.push_back("critpath: no complete iterations in trace");
    return report;
  }
  const auto skip = static_cast<std::size_t>(std::max(0, skip_iterations));
  if (skip >= n_iters) {
    report.problems.push_back(
        "critpath: skip_iterations covers every complete iteration");
    return report;
  }

  std::vector<int> workers;
  workers.reserve(g.iter_end.size());
  for (const auto& [w, ends] : g.iter_end) workers.push_back(w);
  std::sort(workers.begin(), workers.end());

  const auto global_end = [&](std::size_t i) {
    double e = -1e300;
    int binding = 0;
    for (int w : workers) {
      const auto& ends = g.iter_end.at(w);
      if (i < ends.size() && ends[i] > e) {
        e = ends[i];
        binding = w;
      }
    }
    return std::make_pair(e, binding);
  };

  double window_start;
  if (skip == 0) {
    window_start = 1e300;
    for (const auto& [w, t] : g.iter0_start) {
      window_start = std::min(window_start, t);
    }
    if (window_start >= 1e299) window_start = 0.0;
  } else {
    window_start = global_end(skip - 1).first;
  }

  for (std::size_t i = skip; i < n_iters; ++i) {
    const auto [end, binding] = global_end(i);
    IterationBlame ib;
    ib.iteration = static_cast<std::int64_t>(i);
    ib.window_start = window_start;
    ib.window_end = end;
    ib.binding_worker = binding;
    if (end < window_start - kEps) {
      report.problems.push_back(
          "critpath: iteration " + std::to_string(i) +
          " ends before the previous one (non-monotone finish line)");
      return report;
    }
    Walker walker(g, tracer, ib, window_start, report.chain_stalls);
    walker.run();
    report.iterations.push_back(ib);
    window_start = end;
  }

  for (const IterationBlame& ib : report.iterations) {
    for (int c = 0; c < kBlameCount; ++c) {
      report.totals[static_cast<std::size_t>(c)] +=
          ib.seconds[static_cast<std::size_t>(c)];
    }
    report.total_s += ib.window();
  }
  return report;
}

// -- What-if estimation -----------------------------------------------------

double estimate_mean_iteration(const BlameReport& report,
                               const std::array<double, kBlameCount>& keep) {
  if (report.iterations.empty()) return 0.0;
  double sum = 0.0;
  for (const IterationBlame& ib : report.iterations) {
    double t = 0.0;
    for (int c = 0; c < kBlameCount; ++c) {
      t += ib.seconds[static_cast<std::size_t>(c)] *
           keep[static_cast<std::size_t>(c)];
    }
    sum += t;
  }
  return sum / static_cast<double>(report.iterations.size());
}

std::vector<WhatIf> standard_what_ifs(const BlameReport& report) {
  std::vector<WhatIf> panel;
  if (report.iterations.empty()) return panel;
  const double measured =
      report.total_s / static_cast<double>(report.iterations.size());
  const auto add = [&](const std::string& name,
                       const std::array<double, kBlameCount>& keep) {
    WhatIf w;
    w.name = name;
    w.estimated_mean_iteration_s = estimate_mean_iteration(report, keep);
    w.speedup_vs_measured = w.estimated_mean_iteration_s > 0.0
                                ? measured / w.estimated_mean_iteration_s
                                : 0.0;
    panel.push_back(std::move(w));
  };
  std::array<double, kBlameCount> keep;
  keep.fill(1.0);
  for (Blame b : {Blame::kSendQueue, Blame::kInversion, Blame::kWire,
                  Blame::kUplink, Blame::kDownlink}) {
    keep[static_cast<std::size_t>(b)] = 0.0;
  }
  add("infinite_bandwidth", keep);
  keep.fill(1.0);
  keep[static_cast<std::size_t>(Blame::kServer)] = 0.0;
  keep[static_cast<std::size_t>(Blame::kAggHold)] = 0.0;
  add("zero_server", keep);
  keep.fill(1.0);
  for (Blame b : {Blame::kSendQueue, Blame::kInversion, Blame::kWire,
                  Blame::kUplink, Blame::kDownlink}) {
    keep[static_cast<std::size_t>(b)] = 0.5;
  }
  add("network_2x", keep);
  return panel;
}

BlameDiff diff_blame(const BlameReport& a, const BlameReport& b) {
  BlameDiff d;
  const std::size_t n = std::min(a.iterations.size(), b.iterations.size());
  d.iterations_compared = static_cast<std::int64_t>(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (int c = 0; c < kBlameCount; ++c) {
      d.delta_seconds[static_cast<std::size_t>(c)] +=
          b.iterations[i].seconds[static_cast<std::size_t>(c)] -
          a.iterations[i].seconds[static_cast<std::size_t>(c)];
    }
    d.delta_total_s += b.iterations[i].window() - a.iterations[i].window();
  }
  return d;
}

// -- Rendering --------------------------------------------------------------

std::string format_blame(const BlameReport& report) {
  std::ostringstream out;
  char buf[256];
  out << "critical-path blame (seconds per iteration window)\n";
  std::snprintf(buf, sizeof buf, "%5s %5s %10s", "iter", "bind", "window");
  out << buf;
  for (int c = 0; c < kBlameCount; ++c) {
    std::snprintf(buf, sizeof buf, " %9s", kBlameNames[c]);
    out << buf;
  }
  out << '\n';
  for (const IterationBlame& ib : report.iterations) {
    std::snprintf(buf, sizeof buf, "%5lld %5d %10.6f",
                  static_cast<long long>(ib.iteration), ib.binding_worker,
                  ib.window());
    out << buf;
    for (int c = 0; c < kBlameCount; ++c) {
      std::snprintf(buf, sizeof buf, " %9.6f",
                    ib.seconds[static_cast<std::size_t>(c)]);
      out << buf;
    }
    out << '\n';
  }
  std::snprintf(buf, sizeof buf, "%5s %5s %10.6f", "total", "", report.total_s);
  out << buf;
  for (int c = 0; c < kBlameCount; ++c) {
    std::snprintf(buf, sizeof buf, " %9.6f",
                  report.totals[static_cast<std::size_t>(c)]);
    out << buf;
  }
  out << '\n';
  std::snprintf(buf, sizeof buf, "%5s %5s %10s", "share", "", "100.00%");
  out << buf;
  for (int c = 0; c < kBlameCount; ++c) {
    std::snprintf(buf, sizeof buf, " %8.2f%%",
                  100.0 * report.share(static_cast<Blame>(c)));
    out << buf;
  }
  out << '\n';
  std::snprintf(buf, sizeof buf,
                "network-wait share %.2f%%  chain stalls %lld  events %lld\n",
                100.0 * report.network_share(),
                static_cast<long long>(report.chain_stalls),
                static_cast<long long>(report.events_processed));
  out << buf;
  return out.str();
}

std::string format_what_ifs(const std::vector<WhatIf>& panel) {
  std::ostringstream out;
  char buf[160];
  out << "what-if re-timing (first-order lower bounds)\n";
  for (const WhatIf& w : panel) {
    std::snprintf(buf, sizeof buf,
                  "  %-20s mean iter %9.6f s  speedup %5.2fx\n",
                  w.name.c_str(), w.estimated_mean_iteration_s,
                  w.speedup_vs_measured);
    out << buf;
  }
  return out.str();
}

std::string format_blame_diff(const BlameDiff& diff) {
  std::ostringstream out;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "blame diff over %lld aligned iterations (b - a)\n",
                static_cast<long long>(diff.iterations_compared));
  out << buf;
  for (int c = 0; c < kBlameCount; ++c) {
    std::snprintf(buf, sizeof buf, "  %-10s %+10.6f s\n", kBlameNames[c],
                  diff.delta_seconds[static_cast<std::size_t>(c)]);
    out << buf;
  }
  std::snprintf(buf, sizeof buf, "  %-10s %+10.6f s\n", "total",
                diff.delta_total_s);
  out << buf;
  return out.str();
}

// -- CSV --------------------------------------------------------------------

void write_blame_csv(const BlameReport& report, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << "iteration,binding_worker,window_s";
  for (int c = 0; c < kBlameCount; ++c) out << ',' << kBlameNames[c] << "_s";
  out << '\n';
  char buf[64];
  for (const IterationBlame& ib : report.iterations) {
    out << ib.iteration << ',' << ib.binding_worker;
    std::snprintf(buf, sizeof buf, ",%.9f", ib.window());
    out << buf;
    for (int c = 0; c < kBlameCount; ++c) {
      std::snprintf(buf, sizeof buf, ",%.9f",
                    ib.seconds[static_cast<std::size_t>(c)]);
      out << buf;
    }
    out << '\n';
  }
}

BlameReport load_blame_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error(path + ": empty blame CSV");
  }
  std::string expect = "iteration,binding_worker,window_s";
  for (int c = 0; c < kBlameCount; ++c) {
    expect += ',';
    expect += kBlameNames[c];
    expect += "_s";
  }
  if (line != expect) {
    throw std::runtime_error(path + ": unexpected blame CSV header");
  }
  BlameReport report;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cell;
    IterationBlame ib;
    const auto next = [&]() -> const std::string& {
      if (!std::getline(row, cell, ',')) {
        throw std::runtime_error(path + ": short blame CSV row");
      }
      return cell;
    };
    ib.iteration = std::atoll(next().c_str());
    ib.binding_worker = std::atoi(next().c_str());
    ib.window_start = 0.0;
    ib.window_end = std::atof(next().c_str());
    for (int c = 0; c < kBlameCount; ++c) {
      ib.seconds[static_cast<std::size_t>(c)] = std::atof(next().c_str());
    }
    report.iterations.push_back(ib);
  }
  for (const IterationBlame& ib : report.iterations) {
    for (int c = 0; c < kBlameCount; ++c) {
      report.totals[static_cast<std::size_t>(c)] +=
          ib.seconds[static_cast<std::size_t>(c)];
    }
    report.total_s += ib.window();
  }
  return report;
}

}  // namespace p3::obs
