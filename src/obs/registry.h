// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Instruments are created once (ctor-time) and held by reference; updates on
// hot paths are plain integer/double stores, exactly as cheap as the ad-hoc
// member counters they replaced. The registry snapshots every instrument to
// CSV or JSON in registration order, so sweep-point dumps diff cleanly.
//
// Deliberately not thread-safe: each Cluster owns its own Registry and runs
// on one thread; `runner::ParallelExecutor` parallelism is across clusters.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace p3::obs {

class Counter {
 public:
  void inc(std::int64_t delta = 1) { value_ += delta; }
  Counter& operator++() {
    ++value_;
    return *this;
  }
  Counter& operator+=(std::int64_t delta) {
    value_ += delta;
    return *this;
  }
  std::int64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::int64_t value_ = 0;
};

/// Last-value gauge that also remembers its high-water mark.
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  void add(double delta) { set(value_ + delta); }
  double value() const { return value_; }
  double max() const { return max_; }
  void reset() {
    value_ = 0.0;
    max_ = 0.0;
  }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
};

/// Histogram over fixed upper bounds; observations above the last bound land
/// in an implicit overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / double(count_); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bucket_count(i) counts observations <= bounds()[i]; the final entry
  /// (index bounds().size()) is the overflow bucket.
  std::int64_t bucket_count(std::size_t i) const { return counts_.at(i); }

  /// Bucket-resolution quantile: the smallest bound whose cumulative count
  /// reaches q * count(). Overflow-bucket quantiles report 2x the last bound
  /// ("decisively above every bound", and finite so JSON stays parseable);
  /// an empty histogram reports 0.
  double quantile(double q) const {
    return quantile_from_counts(bounds_, counts_, q);
  }
  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }

  /// Same estimator over an externally accumulated bucket-count vector
  /// (bounds.size() + 1 entries, the last being overflow) — for windowed
  /// deltas like the autoscaler's sliding p99.
  static double quantile_from_counts(const std::vector<double>& bounds,
                                     const std::vector<std::int64_t>& counts,
                                     double q);

 private:
  std::vector<double> bounds_;
  std::vector<std::int64_t> counts_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create by name. References stay valid for the registry's
  /// lifetime. Re-requesting a name with a different instrument type throws.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Lookup without creation; nullptr when absent (or wrong type).
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  std::size_t size() const { return entries_.size(); }

  /// Flat snapshot rows (metric, type, field, value-as-string) in
  /// registration order; the unit of CSV/JSON export and of tests.
  struct Row {
    std::string metric;
    std::string type;   ///< "counter" | "gauge" | "histogram"
    std::string field;  ///< "value", "max", "le_<bound>", "sum", "count", ...
    std::string value;
  };
  std::vector<Row> snapshot() const;

  /// metric,type,field,value CSV of `snapshot()`.
  void write_csv(const std::string& path) const;
  /// Nested JSON: {"metric": {"type": ..., fields...}, ...}.
  void write_json(const std::string& path) const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Type type;
    std::size_t index;  ///< into the per-type deque
  };

  Entry& entry(const std::string& name, Type type);
  const Entry* find(const std::string& name, Type type) const;

  std::vector<Entry> entries_;
  std::unordered_map<std::string, std::size_t> by_name_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace p3::obs
