#include "obs/tracer.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/csv.h"

namespace p3::obs {

namespace {

constexpr const char* kStageNames[kNumStages] = {
    "grad_ready", "enqueue",    "send", "server_recv",
    "aggregate",  "notify",     "pull", "param_ready",
};

/// Append `text` JSON-escaped (quotes not included).
void escape_json(const std::string& text, std::string& out) {
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string quoted(const std::string& text) {
  std::string out = "\"";
  escape_json(text, out);
  out += '"';
  return out;
}

/// Microsecond timestamp with fixed sub-microsecond precision; fixed format
/// keeps exports byte-stable across platforms.
std::string ts_us(TimeS t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", t * 1e6);
  return buf;
}

std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

const char* stage_name(Stage stage) {
  const auto i = static_cast<std::size_t>(stage);
  if (i >= kNumStages) return "?";
  return kStageNames[i];
}

Stage parse_stage(const std::string& name) {
  for (int i = 0; i < kNumStages; ++i) {
    if (name == kStageNames[i]) return static_cast<Stage>(i);
  }
  throw std::invalid_argument("unknown lifecycle stage: " + name);
}

std::int64_t make_trace_id(std::int64_t slice, std::int64_t iteration,
                           int worker) {
  // 26 bits of slice, 28 of iteration, 8 of worker: collision-free for any
  // workload this simulator can hold in memory.
  return ((slice & 0x3FFFFFF) << 36) | ((iteration & 0xFFFFFFF) << 8) |
         (static_cast<std::int64_t>(worker) & 0xFF);
}

std::uint32_t Tracer::track(const std::string& lane) {
  auto it = track_ids_.find(lane);
  if (it != track_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(tracks_.size());
  const auto dot = lane.find('.');
  tracks_.push_back(
      Track{lane, dot == std::string::npos ? lane : lane.substr(0, dot)});
  track_ids_.emplace(lane, id);
  return id;
}

std::uint32_t Tracer::label(const std::string& text) {
  auto it = label_ids_.find(text);
  if (it != label_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(labels_.size());
  labels_.push_back(text);
  label_ids_.emplace(text, id);
  return id;
}

void Tracer::span(const std::string& lane, TimeS t0, TimeS t1,
                  const std::string& label_text) {
  if (!enabled_) return;
  span(track(lane), t0, t1, label(label_text));
}

void Tracer::span(std::uint32_t track_id, TimeS t0, TimeS t1,
                  std::uint32_t label_id) {
  if (!enabled_) return;
  events_.push_back(Event{EventKind::kSpan, track_id, label_id, t0, t1, 0.0, -1});
}

void Tracer::instant(const std::string& lane, TimeS t,
                     const std::string& label_text) {
  if (!enabled_) return;
  events_.push_back(
      Event{EventKind::kInstant, track(lane), label(label_text), t, t, 0.0, -1});
}

void Tracer::counter(const std::string& lane, TimeS t, double value) {
  if (!enabled_) return;
  counter(track(lane), t, value);
}

void Tracer::counter(std::uint32_t track_id, TimeS t, double value) {
  if (!enabled_) return;
  events_.push_back(
      Event{EventKind::kCounter, track_id, 0, t, t, value, -1});
}

void Tracer::flow_start(const std::string& lane, TimeS t, std::int64_t flow_id,
                        const std::string& label_text) {
  if (!enabled_) return;
  events_.push_back(Event{EventKind::kFlowStart, track(lane), label(label_text),
                          t, t, 0.0, flow_id});
}

void Tracer::flow_end(const std::string& lane, TimeS t, std::int64_t flow_id,
                      const std::string& label_text) {
  if (!enabled_) return;
  events_.push_back(Event{EventKind::kFlowEnd, track(lane), label(label_text),
                          t, t, 0.0, flow_id});
}

void Tracer::lifecycle(Stage stage, int worker, std::int64_t slice, int layer,
                       std::int64_t iteration, int priority, Bytes bytes,
                       TimeS t) {
  if (!enabled_) return;
  lifecycle_.push_back(LifecycleRecord{stage, worker,
                                       static_cast<std::int32_t>(slice),
                                       static_cast<std::int32_t>(layer),
                                       iteration,
                                       static_cast<std::int32_t>(priority),
                                       bytes, t});
}

void Tracer::clear() {
  events_.clear();
  tracks_.clear();
  track_ids_.clear();
  labels_.clear();
  label_ids_.clear();
  lifecycle_.clear();
}

std::vector<std::string> Tracer::validate() const {
  return validate_accounting().violations;
}

Tracer::ValidationStats Tracer::validate_accounting() const {
  ValidationStats stats;
  std::unordered_map<std::int64_t, TimeS> flow_starts;
  std::unordered_set<std::int64_t> flows_ended;
  for (const auto& e : events_) {
    switch (e.kind) {
      case EventKind::kSpan:
        if (e.t1 < e.t0) {
          stats.violations.push_back("negative-duration span '" +
                                     labels_.at(e.label) + "' on track '" +
                                     tracks_.at(e.track).name + "'");
        }
        break;
      case EventKind::kFlowStart: {
        auto [it, inserted] = flow_starts.emplace(e.flow, e.t0);
        if (!inserted) it->second = std::min(it->second, e.t0);
        break;
      }
      case EventKind::kFlowEnd: {
        auto it = flow_starts.find(e.flow);
        if (it == flow_starts.end()) {
          stats.violations.push_back("flow end without a start (id " +
                                     std::to_string(e.flow) + ")");
        } else if (e.t0 < it->second) {
          stats.violations.push_back("flow " + std::to_string(e.flow) +
                                     " ends before it starts");
        }
        flows_ended.insert(e.flow);
        break;
      }
      case EventKind::kInstant:
      case EventKind::kCounter:
        break;
    }
  }
  stats.flows_started = static_cast<std::int64_t>(flow_starts.size());
  stats.flows_ended = static_cast<std::int64_t>(flows_ended.size());
  for (const auto& [id, t] : flow_starts) {
    if (flows_ended.find(id) == flows_ended.end()) ++stats.flows_in_flight;
  }
  return stats;
}

void Tracer::write_chrome_json(std::ostream& out) const {
  // pid per distinct process (first-appearance order), tid per track.
  std::unordered_map<std::string, int> pids;
  std::vector<std::string> processes;
  for (const auto& t : tracks_) {
    if (pids.emplace(t.process, static_cast<int>(processes.size()) + 1)
            .second) {
      processes.push_back(t.process);
    }
  }

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& obj) {
    if (!first) out << ",";
    out << "\n" << obj;
    first = false;
  };

  for (std::size_t i = 0; i < processes.size(); ++i) {
    const int pid = static_cast<int>(i) + 1;
    emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
         std::to_string(pid) + ",\"args\":{\"name\":" + quoted(processes[i]) +
         "}}");
    emit("{\"ph\":\"M\",\"name\":\"process_sort_index\",\"pid\":" +
         std::to_string(pid) + ",\"args\":{\"sort_index\":" +
         std::to_string(pid) + "}}");
  }
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    const int pid = pids.at(tracks_[i].process);
    const int tid = static_cast<int>(i) + 1;
    emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
         std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
         ",\"args\":{\"name\":" + quoted(tracks_[i].name) + "}}");
    emit("{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":" +
         std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
         ",\"args\":{\"sort_index\":" + std::to_string(tid) + "}}");
  }

  for (const auto& e : events_) {
    const Track& track = tracks_.at(e.track);
    const std::string pid = std::to_string(pids.at(track.process));
    const std::string tid = std::to_string(static_cast<int>(e.track) + 1);
    const std::string loc =
        "\"pid\":" + pid + ",\"tid\":" + tid + ",\"ts\":" + ts_us(e.t0);
    switch (e.kind) {
      case EventKind::kSpan:
        emit("{\"ph\":\"X\",\"name\":" + quoted(labels_.at(e.label)) +
             ",\"cat\":\"span\"," + loc + ",\"dur\":" + ts_us(e.t1 - e.t0) +
             "}");
        break;
      case EventKind::kInstant:
        emit("{\"ph\":\"i\",\"s\":\"t\",\"name\":" + quoted(labels_.at(e.label)) +
             ",\"cat\":\"instant\"," + loc + "}");
        break;
      case EventKind::kCounter:
        emit("{\"ph\":\"C\",\"name\":" + quoted(track.name) +
             ",\"cat\":\"counter\",\"pid\":" + pid + ",\"ts\":" + ts_us(e.t0) +
             ",\"args\":{\"value\":" + num(e.value) + "}}");
        break;
      case EventKind::kFlowStart:
        emit("{\"ph\":\"s\",\"id\":" + std::to_string(e.flow) +
             ",\"name\":" + quoted(labels_.at(e.label)) + ",\"cat\":\"flow\"," +
             loc + "}");
        break;
      case EventKind::kFlowEnd:
        emit("{\"ph\":\"f\",\"bp\":\"e\",\"id\":" + std::to_string(e.flow) +
             ",\"name\":" + quoted(labels_.at(e.label)) + ",\"cat\":\"flow\"," +
             loc + "}");
        break;
    }
  }
  out << "\n]}\n";
}

void Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace file: " + path);
  write_chrome_json(out);
}

void Tracer::write_lifecycle_csv(const std::string& path) const {
  CsvWriter csv(path, {"stage", "worker", "slice", "layer", "iteration",
                       "priority", "bytes", "t"});
  for (const auto& r : lifecycle_) {
    char t[40];
    std::snprintf(t, sizeof(t), "%.9f", r.t);
    csv.row({stage_name(r.stage), std::to_string(r.worker),
             std::to_string(r.slice), std::to_string(r.layer),
             std::to_string(r.iteration), std::to_string(r.priority),
             std::to_string(r.bytes), t});
  }
}

LogCapture::LogCapture(Tracer& tracer, std::function<TimeS()> clock) {
  previous_ = set_thread_log_hook(
      [&tracer, clock = std::move(clock)](LogLevel level,
                                          const std::string& msg) {
        tracer.instant("log", clock(),
                       std::string("[") + log_level_name(level) + "] " + msg);
      });
}

LogCapture::~LogCapture() { set_thread_log_hook(std::move(previous_)); }

}  // namespace p3::obs
