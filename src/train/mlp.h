// Multi-layer perceptron with ReLU activations and a softmax cross-entropy
// head, with hand-derived backpropagation. Stands in for ResNet-110 in the
// accuracy experiments: what matters there is that gradients are *real*, so
// compression (DGC) and staleness (ASGD) have their true algorithmic effect.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "train/tensor.h"

namespace p3::train {

/// One parameter tensor and its gradient (a "layer key" in PS terms).
struct Param {
  Tensor value;
  Tensor grad;
};

class Mlp {
 public:
  /// `dims` = {input, hidden..., classes}. Weights He-initialized.
  Mlp(const std::vector<std::size_t>& dims, Rng& rng);

  /// Forward pass: returns softmax probabilities (batch x classes).
  const Tensor& forward(const Tensor& batch);

  /// Backward pass for cross-entropy loss against integer labels; fills
  /// every Param::grad (averaged over the batch) and returns the mean loss.
  double backward(const Tensor& batch, const std::vector<int>& labels);

  /// Predicted class per row of the last forward output.
  std::vector<int> predict(const Tensor& batch);

  /// Mean accuracy on a labeled set.
  double accuracy(const Tensor& inputs, const std::vector<int>& labels);

  /// Parameter tensors in forward order: [W0, b0, W1, b1, ...].
  std::vector<Param>& params() { return params_; }
  const std::vector<Param>& params() const { return params_; }

  std::size_t num_layers() const { return dims_.size() - 1; }
  std::size_t total_params() const;

 private:
  std::vector<std::size_t> dims_;
  std::vector<Param> params_;
  // Forward-pass caches (per dense layer): pre-activations and activations.
  std::vector<Tensor> activations_;  // activations_[0] = input copy
  Tensor probs_;
};

}  // namespace p3::train
