// Data-parallel trainer over the numeric substrate.
//
// Three aggregation modes, matching the algorithms compared in the paper's
// accuracy experiments:
//
//  * kFullSync — synchronous SGD with full gradient exchange. This is what
//    both the MXNet baseline and P3 compute (P3 changes *when bytes move*,
//    never *what is aggregated*, which is why the paper states P3 follows
//    the exact same training curve as the baseline).
//  * kDgc — synchronous SGD where each worker transmits only the top-k of
//    its locally accumulated gradient residual (Deep Gradient Compression);
//    momentum lives in the compressor, the server applies plain SGD.
//  * kAsync — asynchronous SGD: workers update central parameters round-
//    robin using gradients computed from parameters `staleness` updates old
//    (Appendix B.2).
//  * kQsgd / kOneBit — the quantization baselines of the related work:
//    unbiased stochastic quantization and sign quantization with error
//    feedback respectively (momentum stays at the server, unlike DGC).
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <vector>

#include "train/data.h"
#include "train/dgc.h"
#include "train/mlp.h"
#include "train/quantize.h"
#include "train/sgd.h"

namespace p3::train {

enum class AggregationMode { kFullSync = 0, kDgc, kAsync, kQsgd, kOneBit };

struct TrainerConfig {
  int n_workers = 4;
  std::size_t batch_per_worker = 32;
  int epochs = 160;
  std::vector<std::size_t> hidden = {64, 64};
  SgdConfig sgd;
  DgcConfig dgc;
  AggregationMode mode = AggregationMode::kFullSync;
  /// kQsgd: quantization levels (wire cost ~ 1 + log2(levels+1) bits/elem).
  int qsgd_levels = 4;
  /// kAsync: gradients are computed on parameters this many updates old.
  int staleness = 3;
  std::uint64_t seed = 7;
};

struct EpochStat {
  int epoch = 0;
  double train_loss = 0.0;
  double val_accuracy = 0.0;
};

class ParallelTrainer {
 public:
  ParallelTrainer(const Dataset& data, TrainerConfig config);

  /// Train all epochs; returns per-epoch loss/accuracy.
  std::vector<EpochStat> train();

  /// Run a single epoch (exposed for incremental tests); returns its stat.
  EpochStat train_epoch(int epoch);

  Mlp& model() { return *model_; }
  double validation_accuracy();

 private:
  void sync_iteration(std::size_t begin, std::size_t end, int epoch,
                      double& loss_acc, std::size_t& loss_count);
  void dgc_iteration(std::size_t begin, std::size_t end, int epoch,
                     double& loss_acc, std::size_t& loss_count);
  void quantized_iteration(std::size_t begin, std::size_t end, int epoch,
                           double& loss_acc, std::size_t& loss_count);
  void async_iteration(std::size_t begin, std::size_t end, int epoch, int tick,
                       double& loss_acc, std::size_t& loss_count);

  const Dataset& data_;
  TrainerConfig cfg_;
  Rng rng_;
  std::unique_ptr<Mlp> model_;
  Sgd optimizer_;
  std::vector<std::size_t> order_;
  std::vector<std::unique_ptr<DgcCompressor>> compressors_;  // per worker
  std::vector<std::unique_ptr<QsgdQuantizer>> qsgd_;          // per worker
  std::vector<std::unique_ptr<OneBitQuantizer>> onebit_;      // per worker
  Rng quant_rng_{12345};
  // kAsync: history of parameter values for stale gradient computation.
  std::deque<std::vector<Tensor>> param_history_;
  int async_tick_ = 0;
};

}  // namespace p3::train
