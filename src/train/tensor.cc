#include "train/tensor.h"

#include <cmath>
#include <stdexcept>

namespace p3::train {

Tensor::Tensor(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Tensor Tensor::zeros_like(const Tensor& other) {
  return Tensor(other.rows_, other.cols_);
}

Tensor Tensor::he_normal(std::size_t rows, std::size_t cols, Rng& rng) {
  Tensor t(rows, cols);
  const double stddev = std::sqrt(2.0 / static_cast<double>(rows));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

void Tensor::add_scaled(const Tensor& other, float scale) {
  if (other.size() != size()) throw std::invalid_argument("shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

void Tensor::scale(float s) {
  for (auto& x : data_) x *= s;
}

double Tensor::norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

double Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return acc;
}

void matmul(const Tensor& a, const Tensor& b, Tensor& out) {
  if (a.cols() != b.rows() || out.rows() != a.rows() ||
      out.cols() != b.cols()) {
    throw std::invalid_argument("matmul shape mismatch");
  }
  out.fill(0.0f);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = a.at(i, k);
      if (aik == 0.0f) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out.at(i, j) += aik * b.at(k, j);
      }
    }
  }
}

void matmul_at_b(const Tensor& a, const Tensor& b, Tensor& out) {
  if (a.rows() != b.rows() || out.rows() != a.cols() ||
      out.cols() != b.cols()) {
    throw std::invalid_argument("matmul_at_b shape mismatch");
  }
  out.fill(0.0f);
  for (std::size_t k = 0; k < a.rows(); ++k) {
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const float aki = a.at(k, i);
      if (aki == 0.0f) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out.at(i, j) += aki * b.at(k, j);
      }
    }
  }
}

void matmul_a_bt(const Tensor& a, const Tensor& b, Tensor& out) {
  if (a.cols() != b.cols() || out.rows() != a.rows() ||
      out.cols() != b.rows()) {
    throw std::invalid_argument("matmul_a_bt shape mismatch");
  }
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += a.at(i, k) * b.at(j, k);
      }
      out.at(i, j) = acc;
    }
  }
}

}  // namespace p3::train
