// Deep Gradient Compression (Lin et al., ICLR 2018) — the comparison point
// in Section 5.6. Implements the full recipe:
//
//   * local gradient accumulation: unsent gradient mass is kept in a
//     per-worker residual and accumulated across iterations;
//   * momentum correction: momentum is applied *before* accumulation so the
//     residual carries velocity, not raw gradients;
//   * momentum factor masking: velocity is cleared where the residual is
//     sent, preventing stale momentum from being applied twice;
//   * top-k sparsification: only the `1 - sparsity` largest-magnitude
//     entries of the residual are transmitted each iteration;
//   * warmup: sparsity ramps up over the first epochs (774 -> 93.75% ->
//     ... -> terminal sparsity in the original; here an exponential ramp).
#pragma once

#include <cstddef>
#include <vector>

#include "train/mlp.h"

namespace p3::train {

struct DgcConfig {
  double sparsity = 0.999;   ///< fraction of entries dropped per layer
  double momentum = 0.9;
  int warmup_epochs = 4;     ///< sparsity ramps 75% -> terminal over these
};

/// Sparse slice of one layer's gradient.
struct SparseGrad {
  std::vector<std::size_t> indices;
  std::vector<float> values;
};

class DgcCompressor {
 public:
  /// `shapes` are the parameter tensors this worker will compress.
  DgcCompressor(const std::vector<Param>& params, DgcConfig config);

  /// Effective sparsity at `epoch` (warmup ramp).
  double sparsity_at_epoch(int epoch) const;

  /// Feed this iteration's local gradients; returns the sparse update to
  /// transmit (per layer) and updates residual/velocity state.
  std::vector<SparseGrad> compress(const std::vector<Param>& params,
                                   int epoch);

  /// Dense residual mass currently held locally (diagnostics/tests).
  double residual_norm() const;

  /// Accumulate a worker's sparse update into dense `out` (layer-indexed).
  static void accumulate(const std::vector<SparseGrad>& sparse,
                         std::vector<Tensor>& out);

 private:
  DgcConfig cfg_;
  std::vector<Tensor> velocity_;
  std::vector<Tensor> residual_;
};

}  // namespace p3::train
