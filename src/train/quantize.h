// Gradient quantization baselines from the paper's related work
// (Section 6): QSGD (Alistarh et al. 2017) and 1-bit SGD (Seide et al.
// 2014). Together with DGC these cover the "send fewer bits" family P3 is
// compared against: QSGD is unbiased (convergence guarantees, bounded
// variance increase), 1-bit SGD is biased but corrects with error
// feedback.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "train/mlp.h"

namespace p3::train {

/// QSGD: stochastic uniform quantization onto `levels` buckets of the
/// per-layer l2 ball. Q(v)_i = ||v|| * sgn(v_i) * xi_i where
/// xi_i in {0, 1/s, ..., 1} is chosen stochastically so E[Q(v)] = v.
class QsgdQuantizer {
 public:
  /// `bucket_size`: elements per normalization bucket (the original paper
  /// quantizes per bucket, not per tensor, to bound the variance blow-up).
  explicit QsgdQuantizer(int levels, std::size_t bucket_size = 512);

  /// Quantize-dequantize this iteration's gradients (what the receiver
  /// reconstructs). Unbiased: no state, no residual.
  std::vector<Tensor> transform(const std::vector<Param>& params, Rng& rng);

  /// Wire cost per element in bits (log2(levels) + sign, plus the shared
  /// norm amortized away) — used by examples to report traffic.
  double bits_per_element() const;

  int levels() const { return levels_; }
  std::size_t bucket_size() const { return bucket_size_; }

 private:
  int levels_;
  std::size_t bucket_size_;
};

/// 1-bit SGD: transmit sign(residual + gradient), scale by the mean
/// magnitude of the positive/negative groups, and keep the quantization
/// error as a residual for the next iteration (error feedback).
class OneBitQuantizer {
 public:
  explicit OneBitQuantizer(const std::vector<Param>& params);

  std::vector<Tensor> transform(const std::vector<Param>& params);

  /// l2 norm of the carried error residual (diagnostics/tests).
  double residual_norm() const;

 private:
  std::vector<Tensor> residual_;
};

}  // namespace p3::train
