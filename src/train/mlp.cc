#include "train/mlp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace p3::train {

Mlp::Mlp(const std::vector<std::size_t>& dims, Rng& rng) : dims_(dims) {
  if (dims.size() < 2) throw std::invalid_argument("need input and output dims");
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    Param w;
    w.value = Tensor::he_normal(dims[l], dims[l + 1], rng);
    w.grad = Tensor(dims[l], dims[l + 1]);
    params_.push_back(std::move(w));
    Param b;
    b.value = Tensor(1, dims[l + 1]);
    b.grad = Tensor(1, dims[l + 1]);
    params_.push_back(std::move(b));
  }
}

std::size_t Mlp::total_params() const {
  std::size_t total = 0;
  for (const auto& p : params_) total += p.value.size();
  return total;
}

const Tensor& Mlp::forward(const Tensor& batch) {
  const std::size_t layers = num_layers();
  activations_.assign(layers + 1, Tensor());
  activations_[0] = batch;
  for (std::size_t l = 0; l < layers; ++l) {
    const Tensor& w = params_[2 * l].value;
    const Tensor& b = params_[2 * l + 1].value;
    Tensor z(batch.rows(), w.cols());
    matmul(activations_[l], w, z);
    for (std::size_t r = 0; r < z.rows(); ++r) {
      for (std::size_t c = 0; c < z.cols(); ++c) {
        z.at(r, c) += b.at(0, c);
        // ReLU on all but the final (logit) layer.
        if (l + 1 < layers && z.at(r, c) < 0.0f) z.at(r, c) = 0.0f;
      }
    }
    activations_[l + 1] = std::move(z);
  }
  // Row-wise softmax with max subtraction for stability.
  const Tensor& logits = activations_[layers];
  probs_ = Tensor(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    float mx = logits.at(r, 0);
    for (std::size_t c = 1; c < logits.cols(); ++c) {
      mx = std::max(mx, logits.at(r, c));
    }
    float denom = 0.0f;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      const float e = std::exp(logits.at(r, c) - mx);
      probs_.at(r, c) = e;
      denom += e;
    }
    for (std::size_t c = 0; c < logits.cols(); ++c) probs_.at(r, c) /= denom;
  }
  return probs_;
}

double Mlp::backward(const Tensor& batch, const std::vector<int>& labels) {
  if (labels.size() != batch.rows()) {
    throw std::invalid_argument("label count mismatch");
  }
  forward(batch);
  const std::size_t layers = num_layers();
  const auto n = static_cast<float>(batch.rows());

  double loss = 0.0;
  // dL/dlogits = (probs - onehot) / batch.
  Tensor delta = probs_;
  for (std::size_t r = 0; r < delta.rows(); ++r) {
    const auto y = static_cast<std::size_t>(labels[r]);
    if (y >= delta.cols()) throw std::out_of_range("label out of range");
    loss -= std::log(std::max(probs_.at(r, y), 1e-12f));
    delta.at(r, y) -= 1.0f;
  }
  delta.scale(1.0f / n);

  for (std::size_t l = layers; l-- > 0;) {
    Param& w = params_[2 * l];
    Param& b = params_[2 * l + 1];
    // Weight and bias gradients.
    matmul_at_b(activations_[l], delta, w.grad);
    for (std::size_t c = 0; c < delta.cols(); ++c) {
      float acc = 0.0f;
      for (std::size_t r = 0; r < delta.rows(); ++r) acc += delta.at(r, c);
      b.grad.at(0, c) = acc;
    }
    if (l == 0) break;
    // Propagate through the weight, then the ReLU of the previous layer.
    Tensor prev_delta(delta.rows(), w.value.rows());
    matmul_a_bt(delta, w.value, prev_delta);
    const Tensor& act = activations_[l];
    for (std::size_t r = 0; r < prev_delta.rows(); ++r) {
      for (std::size_t c = 0; c < prev_delta.cols(); ++c) {
        if (act.at(r, c) <= 0.0f) prev_delta.at(r, c) = 0.0f;
      }
    }
    delta = std::move(prev_delta);
  }
  return loss / n;
}

std::vector<int> Mlp::predict(const Tensor& batch) {
  const Tensor& p = forward(batch);
  std::vector<int> out(batch.rows());
  for (std::size_t r = 0; r < p.rows(); ++r) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < p.cols(); ++c) {
      if (p.at(r, c) > p.at(r, best)) best = c;
    }
    out[r] = static_cast<int>(best);
  }
  return out;
}

double Mlp::accuracy(const Tensor& inputs, const std::vector<int>& labels) {
  const auto preds = predict(inputs);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(preds.size());
}

}  // namespace p3::train
