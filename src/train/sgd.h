// SGD with (Nesterov) momentum, weight decay and step decay — the optimizer
// configuration the paper's CIFAR experiments use.
#pragma once

#include <cstddef>
#include <vector>

#include "train/mlp.h"

namespace p3::train {

struct SgdConfig {
  double lr = 0.1;
  double momentum = 0.9;
  bool nesterov = false;
  double weight_decay = 0.0;
  /// Learning rate is multiplied by `decay_factor` at each epoch listed.
  std::vector<int> decay_epochs;
  double decay_factor = 0.1;
};

class Sgd {
 public:
  explicit Sgd(SgdConfig config) : cfg_(config) {}

  /// Effective learning rate for `epoch` after step decays.
  double lr_at_epoch(int epoch) const;

  /// Apply one update to `params` using the gradients stored in them.
  /// Momentum buffers are lazily sized to match.
  void step(std::vector<Param>& params, int epoch);

  /// Apply an update from externally supplied gradients (e.g. aggregated or
  /// decompressed gradients in the data-parallel trainer). `grads[i]` must
  /// match `params[i]` in shape.
  void step_with(std::vector<Param>& params, const std::vector<Tensor>& grads,
                 int epoch);

  const SgdConfig& config() const { return cfg_; }

 private:
  SgdConfig cfg_;
  std::vector<Tensor> velocity_;
};

}  // namespace p3::train
