#include "train/quantize.h"

#include <cmath>
#include <stdexcept>

namespace p3::train {

QsgdQuantizer::QsgdQuantizer(int levels, std::size_t bucket_size)
    : levels_(levels), bucket_size_(bucket_size) {
  if (levels < 1) throw std::invalid_argument("need at least one level");
  if (bucket_size < 1) throw std::invalid_argument("need a positive bucket");
}

std::vector<Tensor> QsgdQuantizer::transform(const std::vector<Param>& params,
                                             Rng& rng) {
  std::vector<Tensor> out;
  out.reserve(params.size());
  const auto s = static_cast<double>(levels_);
  for (const auto& p : params) {
    Tensor q = Tensor::zeros_like(p.value);
    const auto& g = p.grad.raw();
    auto& dst = q.raw();
    for (std::size_t start = 0; start < g.size(); start += bucket_size_) {
      const std::size_t end = std::min(g.size(), start + bucket_size_);
      double norm_sq = 0.0;
      for (std::size_t i = start; i < end; ++i) {
        norm_sq += static_cast<double>(g[i]) * g[i];
      }
      const double norm = std::sqrt(norm_sq);
      if (norm <= 0.0) continue;
      for (std::size_t i = start; i < end; ++i) {
        const double r = std::abs(static_cast<double>(g[i])) / norm * s;
        const double lo = std::floor(r);
        // P(round up) = fractional part: makes the estimate unbiased.
        const double level = (rng.uniform() < r - lo ? lo + 1.0 : lo) / s;
        dst[i] = static_cast<float>(norm * level *
                                    (g[i] < 0.0f ? -1.0 : 1.0));
      }
    }
    out.push_back(std::move(q));
  }
  return out;
}

double QsgdQuantizer::bits_per_element() const {
  return 1.0 + std::log2(static_cast<double>(levels_) + 1.0);
}

OneBitQuantizer::OneBitQuantizer(const std::vector<Param>& params) {
  for (const auto& p : params) {
    residual_.push_back(Tensor::zeros_like(p.value));
  }
}

std::vector<Tensor> OneBitQuantizer::transform(
    const std::vector<Param>& params) {
  if (params.size() != residual_.size()) {
    throw std::invalid_argument("parameter count changed");
  }
  std::vector<Tensor> out;
  out.reserve(params.size());
  for (std::size_t l = 0; l < params.size(); ++l) {
    const auto& g = params[l].grad.raw();
    auto& err = residual_[l].raw();
    Tensor q = Tensor::zeros_like(params[l].value);
    auto& dst = q.raw();

    // Corrected gradient = gradient + carried quantization error.
    // Reconstruction levels: mean magnitude of each sign group (the
    // column-wise scalers of the original paper, flattened per tensor).
    double pos_sum = 0.0;
    double neg_sum = 0.0;
    std::size_t pos_n = 0;
    std::size_t neg_n = 0;
    for (std::size_t i = 0; i < g.size(); ++i) {
      const double v = static_cast<double>(g[i]) + err[i];
      if (v >= 0.0) {
        pos_sum += v;
        ++pos_n;
      } else {
        neg_sum += v;
        ++neg_n;
      }
    }
    const double pos_level = pos_n ? pos_sum / static_cast<double>(pos_n) : 0;
    const double neg_level = neg_n ? neg_sum / static_cast<double>(neg_n) : 0;
    for (std::size_t i = 0; i < g.size(); ++i) {
      const double v = static_cast<double>(g[i]) + err[i];
      const double recon = v >= 0.0 ? pos_level : neg_level;
      dst[i] = static_cast<float>(recon);
      err[i] = static_cast<float>(v - recon);  // error feedback
    }
    out.push_back(std::move(q));
  }
  return out;
}

double OneBitQuantizer::residual_norm() const {
  double acc = 0.0;
  for (const auto& t : residual_) {
    const double n = t.norm();
    acc += n * n;
  }
  return std::sqrt(acc);
}

}  // namespace p3::train
