#include "train/trainer.h"

#include <stdexcept>

namespace p3::train {
namespace {

std::vector<std::size_t> model_dims(const Dataset& data,
                                    const TrainerConfig& cfg) {
  std::vector<std::size_t> dims;
  dims.push_back(data.dim);
  for (auto h : cfg.hidden) dims.push_back(h);
  dims.push_back(data.classes);
  return dims;
}

}  // namespace

ParallelTrainer::ParallelTrainer(const Dataset& data, TrainerConfig config)
    : data_(data),
      cfg_(std::move(config)),
      rng_(cfg_.seed),
      optimizer_([&] {
        // DGC moves momentum into the compressor; the server applies plain
        // SGD on the aggregated sparse gradients.
        SgdConfig sgd = cfg_.sgd;
        if (cfg_.mode == AggregationMode::kDgc) sgd.momentum = 0.0;
        return sgd;
      }()) {
  if (cfg_.n_workers <= 0) throw std::invalid_argument("need workers");
  model_ = std::make_unique<Mlp>(model_dims(data_, cfg_), rng_);
  order_.resize(data_.train_y.size());
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  if (cfg_.mode == AggregationMode::kDgc) {
    for (int w = 0; w < cfg_.n_workers; ++w) {
      compressors_.push_back(
          std::make_unique<DgcCompressor>(model_->params(), cfg_.dgc));
    }
  } else if (cfg_.mode == AggregationMode::kQsgd) {
    for (int w = 0; w < cfg_.n_workers; ++w) {
      qsgd_.push_back(std::make_unique<QsgdQuantizer>(cfg_.qsgd_levels));
    }
  } else if (cfg_.mode == AggregationMode::kOneBit) {
    for (int w = 0; w < cfg_.n_workers; ++w) {
      onebit_.push_back(std::make_unique<OneBitQuantizer>(model_->params()));
    }
  }
}

double ParallelTrainer::validation_accuracy() {
  return model_->accuracy(data_.test_x, data_.test_y);
}

void ParallelTrainer::sync_iteration(std::size_t begin, std::size_t end,
                                     int epoch, double& loss_acc,
                                     std::size_t& loss_count) {
  const std::size_t per_worker =
      (end - begin + static_cast<std::size_t>(cfg_.n_workers) - 1) /
      static_cast<std::size_t>(cfg_.n_workers);
  std::vector<Tensor> agg;
  for (const auto& p : model_->params()) agg.push_back(Tensor::zeros_like(p.value));

  int contributing = 0;
  for (int w = 0; w < cfg_.n_workers; ++w) {
    const std::size_t lo = begin + static_cast<std::size_t>(w) * per_worker;
    const std::size_t hi = std::min(end, lo + per_worker);
    if (lo >= hi) break;
    const Tensor batch = data_.train_batch(lo, hi, order_);
    const auto labels = data_.train_batch_labels(lo, hi, order_);
    loss_acc += model_->backward(batch, labels);
    ++loss_count;
    ++contributing;
    for (std::size_t l = 0; l < agg.size(); ++l) {
      agg[l].add_scaled(model_->params()[l].grad, 1.0f);
    }
  }
  for (auto& g : agg) g.scale(1.0f / static_cast<float>(contributing));
  optimizer_.step_with(model_->params(), agg, epoch);
}

void ParallelTrainer::dgc_iteration(std::size_t begin, std::size_t end,
                                    int epoch, double& loss_acc,
                                    std::size_t& loss_count) {
  const std::size_t per_worker =
      (end - begin + static_cast<std::size_t>(cfg_.n_workers) - 1) /
      static_cast<std::size_t>(cfg_.n_workers);
  std::vector<Tensor> agg;
  for (const auto& p : model_->params()) agg.push_back(Tensor::zeros_like(p.value));

  int contributing = 0;
  for (int w = 0; w < cfg_.n_workers; ++w) {
    const std::size_t lo = begin + static_cast<std::size_t>(w) * per_worker;
    const std::size_t hi = std::min(end, lo + per_worker);
    if (lo >= hi) break;
    const Tensor batch = data_.train_batch(lo, hi, order_);
    const auto labels = data_.train_batch_labels(lo, hi, order_);
    loss_acc += model_->backward(batch, labels);
    ++loss_count;
    ++contributing;
    const auto sparse =
        compressors_[static_cast<std::size_t>(w)]->compress(model_->params(),
                                                            epoch);
    DgcCompressor::accumulate(sparse, agg);
  }
  for (auto& g : agg) g.scale(1.0f / static_cast<float>(contributing));
  optimizer_.step_with(model_->params(), agg, epoch);
}

void ParallelTrainer::async_iteration(std::size_t begin, std::size_t end,
                                      int epoch, int /*tick*/,
                                      double& loss_acc,
                                      std::size_t& loss_count) {
  // One worker applies an update per call, using parameters `staleness`
  // updates old (clamped to the oldest snapshot available).
  std::vector<Tensor> current;
  for (const auto& p : model_->params()) current.push_back(p.value);
  param_history_.push_back(current);
  const auto max_hist = static_cast<std::size_t>(cfg_.staleness) + 1;
  while (param_history_.size() > max_hist) param_history_.pop_front();

  // Compute gradients with stale parameters...
  const auto& stale = param_history_.front();
  for (std::size_t l = 0; l < stale.size(); ++l) {
    model_->params()[l].value = stale[l];
  }
  const Tensor batch = data_.train_batch(begin, end, order_);
  const auto labels = data_.train_batch_labels(begin, end, order_);
  loss_acc += model_->backward(batch, labels);
  ++loss_count;
  std::vector<Tensor> grads;
  for (const auto& p : model_->params()) grads.push_back(p.grad);

  // ...but apply them to the *current* central parameters.
  for (std::size_t l = 0; l < current.size(); ++l) {
    model_->params()[l].value = current[l];
  }
  optimizer_.step_with(model_->params(), grads, epoch);
  ++async_tick_;
}

void ParallelTrainer::quantized_iteration(std::size_t begin, std::size_t end,
                                          int epoch, double& loss_acc,
                                          std::size_t& loss_count) {
  const std::size_t per_worker =
      (end - begin + static_cast<std::size_t>(cfg_.n_workers) - 1) /
      static_cast<std::size_t>(cfg_.n_workers);
  std::vector<Tensor> agg;
  for (const auto& p : model_->params()) agg.push_back(Tensor::zeros_like(p.value));

  int contributing = 0;
  for (int w = 0; w < cfg_.n_workers; ++w) {
    const std::size_t lo = begin + static_cast<std::size_t>(w) * per_worker;
    const std::size_t hi = std::min(end, lo + per_worker);
    if (lo >= hi) break;
    const Tensor batch = data_.train_batch(lo, hi, order_);
    const auto labels = data_.train_batch_labels(lo, hi, order_);
    loss_acc += model_->backward(batch, labels);
    ++loss_count;
    ++contributing;
    const auto approx =
        cfg_.mode == AggregationMode::kQsgd
            ? qsgd_[static_cast<std::size_t>(w)]->transform(model_->params(),
                                                            quant_rng_)
            : onebit_[static_cast<std::size_t>(w)]->transform(
                  model_->params());
    for (std::size_t l = 0; l < agg.size(); ++l) {
      agg[l].add_scaled(approx[l], 1.0f);
    }
  }
  for (auto& g : agg) g.scale(1.0f / static_cast<float>(contributing));
  optimizer_.step_with(model_->params(), agg, epoch);
}

EpochStat ParallelTrainer::train_epoch(int epoch) {
  rng_.shuffle(order_);
  double loss_acc = 0.0;
  std::size_t loss_count = 0;
  const std::size_t n = order_.size();

  if (cfg_.mode == AggregationMode::kAsync) {
    // Each tick consumes one worker-batch.
    const std::size_t step = cfg_.batch_per_worker;
    for (std::size_t i = 0; i + 1 <= n; i += step) {
      const std::size_t end = std::min(n, i + step);
      async_iteration(i, end, epoch, async_tick_, loss_acc, loss_count);
      if (end == n) break;
    }
  } else {
    const std::size_t step =
        cfg_.batch_per_worker * static_cast<std::size_t>(cfg_.n_workers);
    for (std::size_t i = 0; i + 1 <= n; i += step) {
      const std::size_t end = std::min(n, i + step);
      switch (cfg_.mode) {
        case AggregationMode::kFullSync:
          sync_iteration(i, end, epoch, loss_acc, loss_count);
          break;
        case AggregationMode::kDgc:
          dgc_iteration(i, end, epoch, loss_acc, loss_count);
          break;
        case AggregationMode::kQsgd:
        case AggregationMode::kOneBit:
          quantized_iteration(i, end, epoch, loss_acc, loss_count);
          break;
        case AggregationMode::kAsync:
          break;  // handled above
      }
      if (end == n) break;
    }
  }

  EpochStat stat;
  stat.epoch = epoch;
  stat.train_loss = loss_count ? loss_acc / static_cast<double>(loss_count) : 0;
  stat.val_accuracy = validation_accuracy();
  return stat;
}

std::vector<EpochStat> ParallelTrainer::train() {
  std::vector<EpochStat> stats;
  stats.reserve(static_cast<std::size_t>(cfg_.epochs));
  for (int e = 0; e < cfg_.epochs; ++e) stats.push_back(train_epoch(e));
  return stats;
}

}  // namespace p3::train
