#include "train/dgc.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace p3::train {

DgcCompressor::DgcCompressor(const std::vector<Param>& params,
                             DgcConfig config)
    : cfg_(config) {
  if (cfg_.sparsity < 0.0 || cfg_.sparsity >= 1.0) {
    throw std::invalid_argument("sparsity must be in [0, 1)");
  }
  for (const auto& p : params) {
    velocity_.push_back(Tensor::zeros_like(p.value));
    residual_.push_back(Tensor::zeros_like(p.value));
  }
}

double DgcCompressor::sparsity_at_epoch(int epoch) const {
  if (epoch >= cfg_.warmup_epochs) return cfg_.sparsity;
  // Exponential ramp from 75% toward the terminal sparsity (the original
  // paper ramps 75% / 93.75% / 98.4% / 99.6% / 99.9% over 4 epochs).
  const double start = 0.75;
  if (cfg_.sparsity <= start) return cfg_.sparsity;
  const double frac =
      static_cast<double>(epoch + 1) / static_cast<double>(cfg_.warmup_epochs);
  const double keep_start = 1.0 - start;
  const double keep_end = 1.0 - cfg_.sparsity;
  return 1.0 - keep_start * std::pow(keep_end / keep_start, frac);
}

std::vector<SparseGrad> DgcCompressor::compress(
    const std::vector<Param>& params, int epoch) {
  if (params.size() != residual_.size()) {
    throw std::invalid_argument("parameter count changed");
  }
  const double sparsity = sparsity_at_epoch(epoch);
  std::vector<SparseGrad> out(params.size());

  for (std::size_t l = 0; l < params.size(); ++l) {
    auto& v = velocity_[l].raw();
    auto& u = residual_[l].raw();
    const auto& g = params[l].grad.raw();
    // Momentum correction: v = m*v + g; u += v.
    for (std::size_t i = 0; i < g.size(); ++i) {
      v[i] = static_cast<float>(cfg_.momentum) * v[i] + g[i];
      u[i] += v[i];
    }
    // Top-k selection on |u|; always send at least one entry per layer.
    const auto n = u.size();
    auto k = static_cast<std::size_t>(
        std::ceil(static_cast<double>(n) * (1.0 - sparsity)));
    k = std::clamp<std::size_t>(k, 1, n);

    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    std::nth_element(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     idx.end(), [&](std::size_t a, std::size_t b) {
                       return std::fabs(u[a]) > std::fabs(u[b]);
                     });
    idx.resize(k);
    std::sort(idx.begin(), idx.end());

    auto& sg = out[l];
    sg.indices = idx;
    sg.values.reserve(k);
    for (auto i : idx) {
      sg.values.push_back(u[i]);
      // Local accumulation: clear transmitted entries; momentum factor
      // masking: clear their velocity too.
      u[i] = 0.0f;
      v[i] = 0.0f;
    }
  }
  return out;
}

double DgcCompressor::residual_norm() const {
  double acc = 0.0;
  for (const auto& t : residual_) {
    const double n = t.norm();
    acc += n * n;
  }
  return std::sqrt(acc);
}

void DgcCompressor::accumulate(const std::vector<SparseGrad>& sparse,
                               std::vector<Tensor>& out) {
  if (sparse.size() != out.size()) {
    throw std::invalid_argument("layer count mismatch");
  }
  for (std::size_t l = 0; l < sparse.size(); ++l) {
    auto& dense = out[l].raw();
    const auto& sg = sparse[l];
    if (sg.indices.size() != sg.values.size()) {
      throw std::invalid_argument("malformed sparse gradient");
    }
    for (std::size_t i = 0; i < sg.indices.size(); ++i) {
      if (sg.indices[i] >= dense.size()) {
        throw std::out_of_range("sparse index out of range");
      }
      dense[sg.indices[i]] += sg.values[i];
    }
  }
}

}  // namespace p3::train
