#include "train/sgd.h"

#include <stdexcept>

namespace p3::train {

double Sgd::lr_at_epoch(int epoch) const {
  double lr = cfg_.lr;
  for (int decay_epoch : cfg_.decay_epochs) {
    if (epoch >= decay_epoch) lr *= cfg_.decay_factor;
  }
  return lr;
}

void Sgd::step(std::vector<Param>& params, int epoch) {
  std::vector<Tensor> grads;
  grads.reserve(params.size());
  for (const auto& p : params) grads.push_back(p.grad);
  step_with(params, grads, epoch);
}

void Sgd::step_with(std::vector<Param>& params,
                    const std::vector<Tensor>& grads, int epoch) {
  if (grads.size() != params.size()) {
    throw std::invalid_argument("gradient/parameter count mismatch");
  }
  if (velocity_.size() != params.size()) {
    velocity_.clear();
    for (const auto& p : params) velocity_.push_back(Tensor::zeros_like(p.value));
  }
  const auto lr = static_cast<float>(lr_at_epoch(epoch));
  const auto mu = static_cast<float>(cfg_.momentum);
  const auto wd = static_cast<float>(cfg_.weight_decay);

  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& value = params[i].value.raw();
    auto& v = velocity_[i].raw();
    const auto& g = grads[i].raw();
    if (g.size() != value.size()) {
      throw std::invalid_argument("gradient shape mismatch");
    }
    for (std::size_t j = 0; j < value.size(); ++j) {
      const float grad = g[j] + wd * value[j];
      v[j] = mu * v[j] + grad;
      if (cfg_.nesterov) {
        value[j] -= lr * (grad + mu * v[j]);
      } else {
        value[j] -= lr * v[j];
      }
    }
  }
}

}  // namespace p3::train
