// Minimal dense float matrix for the numeric training substrate.
//
// The accuracy experiments (Figures 11 and 15) need *real* gradient descent
// — DGC's sparsification error and ASGD's staleness are algorithmic effects
// that no performance simulator can fake — so this module implements actual
// linear algebra. Row-major, float32 (as DNN frameworks use), sized for
// MLP-scale models; clarity over BLAS-level throughput.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace p3::train {

class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t rows, std::size_t cols, float fill = 0.0f);

  static Tensor zeros_like(const Tensor& other);
  /// He/Kaiming-normal initialization (stddev sqrt(2/fan_in)).
  static Tensor he_normal(std::size_t rows, std::size_t cols, Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& raw() { return data_; }
  const std::vector<float>& raw() const { return data_; }

  void fill(float v);
  void add_scaled(const Tensor& other, float scale);  ///< this += scale*other
  void scale(float s);

  /// Frobenius norm and sum (test helpers / convergence diagnostics).
  double norm() const;
  double sum() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = a(b_rows x k) * b(k x cols): plain triple loop, cache-friendly ikj.
void matmul(const Tensor& a, const Tensor& b, Tensor& out);
/// out = a^T * b.
void matmul_at_b(const Tensor& a, const Tensor& b, Tensor& out);
/// out = a * b^T.
void matmul_a_bt(const Tensor& a, const Tensor& b, Tensor& out);

}  // namespace p3::train
