#include "train/data.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace p3::train {

Tensor Dataset::train_batch(std::size_t begin, std::size_t end,
                            const std::vector<std::size_t>& order) const {
  if (end > order.size() || begin > end) {
    throw std::out_of_range("batch range out of bounds");
  }
  Tensor batch(end - begin, dim);
  for (std::size_t i = begin; i < end; ++i) {
    const std::size_t src = order[i];
    for (std::size_t c = 0; c < dim; ++c) {
      batch.at(i - begin, c) = train_x.at(src, c);
    }
  }
  return batch;
}

std::vector<int> Dataset::train_batch_labels(
    std::size_t begin, std::size_t end,
    const std::vector<std::size_t>& order) const {
  std::vector<int> labels(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    labels[i - begin] = train_y[order[i]];
  }
  return labels;
}

Dataset make_gaussian_mixture(const MixtureConfig& config) {
  Rng rng(config.seed);
  Dataset ds;
  ds.classes = config.classes;
  ds.dim = config.dim;

  // Random unit-ish class centers; per-class random anisotropic scales so
  // classes overlap unevenly (some easy, some hard).
  std::vector<Tensor> centers;
  std::vector<std::vector<double>> scales;
  for (std::size_t k = 0; k < config.classes; ++k) {
    Tensor c(1, config.dim);
    for (std::size_t d = 0; d < config.dim; ++d) {
      c.at(0, d) = static_cast<float>(rng.normal());
    }
    centers.push_back(std::move(c));
    std::vector<double> s(config.dim);
    for (auto& v : s) v = config.noise * rng.uniform(0.6, 1.4);
    scales.push_back(std::move(s));
  }

  auto fill = [&](Tensor& x, std::vector<int>& y, std::size_t per_class) {
    x = Tensor(per_class * config.classes, config.dim);
    y.resize(per_class * config.classes);
    std::size_t row = 0;
    for (std::size_t k = 0; k < config.classes; ++k) {
      for (std::size_t i = 0; i < per_class; ++i, ++row) {
        for (std::size_t d = 0; d < config.dim; ++d) {
          x.at(row, d) = centers[k].at(0, d) +
                         static_cast<float>(rng.normal(0.0, scales[k][d]));
        }
        y[row] = static_cast<int>(k);
      }
    }
  };
  fill(ds.train_x, ds.train_y, config.train_per_class);
  fill(ds.test_x, ds.test_y, config.test_per_class);
  return ds;
}

Dataset make_two_spirals(std::size_t train_per_class,
                         std::size_t test_per_class, double noise,
                         std::uint64_t seed) {
  Rng rng(seed);
  Dataset ds;
  ds.classes = 2;
  ds.dim = 2;

  auto fill = [&](Tensor& x, std::vector<int>& y, std::size_t per_class) {
    x = Tensor(2 * per_class, 2);
    y.resize(2 * per_class);
    std::size_t row = 0;
    for (int k = 0; k < 2; ++k) {
      for (std::size_t i = 0; i < per_class; ++i, ++row) {
        const double t =
            rng.uniform(0.15, 1.0) * 3.0 * std::numbers::pi;
        const double sign = k == 0 ? 1.0 : -1.0;
        x.at(row, 0) = static_cast<float>(
            sign * t * std::cos(t) / 10.0 + rng.normal(0.0, noise));
        x.at(row, 1) = static_cast<float>(
            sign * t * std::sin(t) / 10.0 + rng.normal(0.0, noise));
        y[row] = k;
      }
    }
  };
  fill(ds.train_x, ds.train_y, train_per_class);
  fill(ds.test_x, ds.test_y, test_per_class);
  return ds;
}

}  // namespace p3::train
