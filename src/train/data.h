// Synthetic classification datasets.
//
// The paper's accuracy studies train ResNet-110 on CIFAR-10. We do not have
// CIFAR-10 here, so the experiments use a controlled substitute: a 10-class
// Gaussian-mixture task whose class overlap puts the achievable accuracy in
// the same low-90s band. What the comparison measures — full-gradient sync
// vs top-k sparsified gradients vs stale asynchronous updates — is a
// property of the optimization algorithm, not of the image content.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "train/tensor.h"

namespace p3::train {

struct Dataset {
  Tensor train_x;
  std::vector<int> train_y;
  Tensor test_x;
  std::vector<int> test_y;

  std::size_t classes = 0;
  std::size_t dim = 0;

  /// Copy rows [begin, end) of the training set into a batch.
  Tensor train_batch(std::size_t begin, std::size_t end,
                     const std::vector<std::size_t>& order) const;
  std::vector<int> train_batch_labels(std::size_t begin, std::size_t end,
                                      const std::vector<std::size_t>& order) const;
};

struct MixtureConfig {
  std::size_t classes = 10;
  std::size_t dim = 32;
  std::size_t train_per_class = 400;
  std::size_t test_per_class = 100;
  /// Within-class noise relative to between-class separation; larger means
  /// more class overlap and lower achievable accuracy.
  double noise = 0.9;
  std::uint64_t seed = 1;
};

/// Gaussian mixture with one anisotropic cluster per class.
Dataset make_gaussian_mixture(const MixtureConfig& config);

/// Two-spirals binary task (hard nonlinear benchmark for extra tests).
Dataset make_two_spirals(std::size_t train_per_class, std::size_t test_per_class,
                         double noise, std::uint64_t seed);

}  // namespace p3::train
