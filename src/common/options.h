// Tiny command line option parser for the bench/example binaries.
//
// Supports `--key=value`, `--key value`, and boolean `--flag`. Unknown
// options raise; positional arguments are collected.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace p3 {

class Options {
 public:
  /// `spec` maps option name -> default value (empty string for flags).
  Options(int argc, const char* const* argv,
          std::map<std::string, std::string> spec);

  bool has(const std::string& key) const;
  std::string str(const std::string& key) const;
  double num(const std::string& key) const;
  long integer(const std::string& key) const;
  bool flag(const std::string& key) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> present_;
  std::vector<std::string> positional_;
};

}  // namespace p3
