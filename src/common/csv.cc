#include "common/csv.h"

#include <cstdio>
#include <stdexcept>

namespace p3 {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("cannot open CSV file: " + path);
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (fields.size() != columns_) {
    throw std::invalid_argument("CSV row width mismatch for " + path_);
  }
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<double> fields) {
  std::vector<std::string> strs;
  strs.reserve(fields.size());
  for (double v : fields) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    strs.emplace_back(buf);
  }
  row(strs);
}

std::string CsvWriter::escape(const std::string& field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace p3
