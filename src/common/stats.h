// Small statistics helpers for throughput/latency reporting.
#pragma once

#include <cstddef>
#include <vector>

namespace p3 {

/// Streaming mean/variance/min/max (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample set (linear interpolation). p in [0, 100].
double percentile(std::vector<double> values, double p);

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
/// first/last bucket. Used by the utilization monitors.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);
  void add(double x, double weight = 1.0);
  const std::vector<double>& buckets() const { return counts_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  double total() const { return total_; }

 private:
  double lo_, hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace p3
