#include "common/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace p3 {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != 'e' && c != 'E' && c != '%') {
      return false;
    }
  }
  return true;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("table row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) out << "  ";
      const auto pad = width[c] - r[c].size();
      if (looks_numeric(r[c])) {
        out << std::string(pad, ' ') << r[c];
      } else {
        out << r[c] << std::string(pad, ' ');
      }
    }
    out << '\n';
  };

  emit_row(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  out << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string Table::num(double v, int precision) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace p3
