#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace p3 {
namespace {

std::string format_scaled(double value, const char* const* suffixes, int count,
                          double step) {
  int idx = 0;
  double v = value;
  while (std::fabs(v) >= step && idx + 1 < count) {
    v /= step;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, suffixes[idx]);
  return buf;
}

}  // namespace

std::string format_bytes(Bytes b) {
  static const char* kSuffixes[] = {"B", "KB", "MB", "GB", "TB"};
  return format_scaled(static_cast<double>(b), kSuffixes, 5, 1000.0);
}

std::string format_rate(BitsPerSec r) {
  static const char* kSuffixes[] = {"bps", "Kbps", "Mbps", "Gbps", "Tbps"};
  return format_scaled(r, kSuffixes, 5, 1000.0);
}

std::string format_time(TimeS t) {
  char buf[64];
  if (t < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.1f ns", t * 1e9);
  } else if (t < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", t * 1e6);
  } else if (t < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", t * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", t);
  }
  return buf;
}

}  // namespace p3
