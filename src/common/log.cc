#include "common/log.h"

#include <cstdio>
#include <mutex>
#include <utility>

namespace p3 {
namespace {
LogLevel g_level = LogLevel::kInfo;

/// Serializes the final write so concurrent threads (parallel sweep jobs)
/// never interleave characters within one line.
std::mutex& io_mutex() {
  static std::mutex mu;
  return mu;
}

thread_local LogHook t_hook;
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

LogHook set_thread_log_hook(LogHook hook) {
  LogHook previous = std::move(t_hook);
  t_hook = std::move(hook);
  return previous;
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  if (t_hook) t_hook(level, msg);
  const std::lock_guard<std::mutex> lock(io_mutex());
  std::fprintf(stderr, "[%s] %s\n", log_level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace p3
