#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace p3 {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = x;
    min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile of empty set");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0.0) {
  if (buckets == 0 || !(hi > lo)) {
    throw std::invalid_argument("bad histogram range");
  }
}

void Histogram::add(double x, double weight) {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / span *
                                         static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

}  // namespace p3
