// CSV writer used by the bench harnesses to dump figure data series.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace p3 {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// Appends one row; the number of fields must match the header.
  void row(const std::vector<std::string>& fields);

  /// Convenience: converts numeric fields with full precision.
  void row(std::initializer_list<double> fields);

  const std::string& path() const { return path_; }

  /// Escape a field per RFC 4180 (quotes fields containing , " or newline).
  static std::string escape(const std::string& field);

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace p3
