// Console table printer: the bench harnesses report paper-figure series as
// aligned text tables on stdout.
#pragma once

#include <string>
#include <vector>

namespace p3 {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render with column alignment. Numeric-looking cells right-align.
  std::string to_string() const;

  /// Render to stdout.
  void print() const;

  std::size_t rows() const { return rows_.size(); }

  /// Format helper: fixed precision double.
  static std::string num(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace p3
