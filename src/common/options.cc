#include "common/options.h"

#include <cstdlib>
#include <stdexcept>

namespace p3 {

Options::Options(int argc, const char* const* argv,
                 std::map<std::string, std::string> spec)
    : values_(std::move(spec)) {
  for (const auto& [k, v] : values_) {
    (void)v;
    present_[k] = false;
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string key = arg;
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    auto it = values_.find(key);
    if (it == values_.end()) {
      throw std::invalid_argument("unknown option: --" + key);
    }
    if (!has_value) {
      // `--key value` unless the next token is another option or missing;
      // then treat as a boolean flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "1";
      }
    }
    it->second = value;
    present_[key] = true;
  }
}

bool Options::has(const std::string& key) const {
  auto it = present_.find(key);
  return it != present_.end() && it->second;
}

std::string Options::str(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    throw std::invalid_argument("option not in spec: --" + key);
  }
  return it->second;
}

double Options::num(const std::string& key) const {
  const std::string v = str(key);
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    throw std::invalid_argument("option --" + key + " is not numeric: " + v);
  }
  return d;
}

long Options::integer(const std::string& key) const {
  return static_cast<long>(num(key));
}

bool Options::flag(const std::string& key) const {
  const std::string v = str(key);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace p3
