// Minimal leveled logger. Deliberately not thread-safe beyond line
// atomicity: the simulator is single-threaded and benches are sequential.
#pragma once

#include <sstream>
#include <string>

namespace p3 {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace p3

#define P3_LOG(level)                                     \
  if (static_cast<int>(level) < static_cast<int>(::p3::log_level())) { \
  } else                                                  \
    ::p3::detail::LogMessage(level)

#define P3_DEBUG P3_LOG(::p3::LogLevel::kDebug)
#define P3_INFO P3_LOG(::p3::LogLevel::kInfo)
#define P3_WARN P3_LOG(::p3::LogLevel::kWarn)
#define P3_ERROR P3_LOG(::p3::LogLevel::kError)
