// Minimal leveled logger.
//
// Emission is line-atomic and safe under runner::ParallelExecutor: a single
// process-wide mutex serializes the final fprintf, so concurrent sweep jobs
// never interleave characters within a line. Level get/set stays unsynchronized
// (it is configured once at startup).
//
// A per-thread hook lets an active trace capture every line this thread
// emits (see obs::LogCapture); hooks on one thread never observe another
// thread's lines, so parallel sweep jobs each trace their own logs.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace p3 {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Upper-case level name ("DEBUG", "INFO", ...).
const char* log_level_name(LogLevel level);

/// Observer for lines emitted by the *calling thread*; runs before the line
/// is printed to stderr.
using LogHook = std::function<void(LogLevel, const std::string&)>;

/// Install `hook` for the calling thread (empty = remove); returns the
/// previously installed hook so scopes can nest and restore.
LogHook set_thread_log_hook(LogHook hook);

namespace detail {
void log_line(LogLevel level, const std::string& msg);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace p3

#define P3_LOG(level)                                     \
  if (static_cast<int>(level) < static_cast<int>(::p3::log_level())) { \
  } else                                                  \
    ::p3::detail::LogMessage(level)

#define P3_DEBUG P3_LOG(::p3::LogLevel::kDebug)
#define P3_INFO P3_LOG(::p3::LogLevel::kInfo)
#define P3_WARN P3_LOG(::p3::LogLevel::kWarn)
#define P3_ERROR P3_LOG(::p3::LogLevel::kError)
