// Deterministic random number generation.
//
// All randomness in the library flows through `Rng` so experiments are
// reproducible from a single seed. Internally this is xoshiro256**, which is
// fast, tiny, and has no global state.
#pragma once

#include <cstdint>
#include <vector>

namespace p3 {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (cached pair).
  double normal();

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<std::size_t>& v);

  /// Split off an independent stream (useful for per-worker RNGs).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace p3
