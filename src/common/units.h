// Strong-ish unit helpers used throughout the simulator.
//
// Time is carried as double seconds (`TimeS`), data sizes as 64-bit byte
// counts, and rates as bits per second. The helpers below keep unit
// conversions explicit at call sites (`gbps(10)`, `mib(4)`), which is the
// main defence against the classic bits-vs-bytes slip in network code.
#pragma once

#include <cstdint>
#include <string>

namespace p3 {

/// Simulated time in seconds.
using TimeS = double;

/// Data size in bytes.
using Bytes = std::int64_t;

/// Data rate in bits per second.
using BitsPerSec = double;

constexpr double kBitsPerByte = 8.0;

/// 1 Gbps expressed in bits per second (decimal, as network gear uses).
constexpr BitsPerSec gbps(double g) { return g * 1e9; }
/// 1 Mbps in bits per second.
constexpr BitsPerSec mbps(double m) { return m * 1e6; }

/// Binary mebibytes/kibibytes, as buffer sizes are usually specified.
constexpr Bytes kib(double k) { return static_cast<Bytes>(k * 1024.0); }
constexpr Bytes mib(double m) { return static_cast<Bytes>(m * 1024.0 * 1024.0); }
constexpr Bytes gib(double g) {
  return static_cast<Bytes>(g * 1024.0 * 1024.0 * 1024.0);
}

/// Time taken to serialize `size` bytes at `rate` bits per second.
constexpr TimeS transfer_time(Bytes size, BitsPerSec rate) {
  return static_cast<double>(size) * kBitsPerByte / rate;
}

/// Bytes transferable in `t` seconds at `rate` bits per second.
constexpr Bytes bytes_in(TimeS t, BitsPerSec rate) {
  return static_cast<Bytes>(t * rate / kBitsPerByte);
}

/// Milliseconds/microseconds to seconds.
constexpr TimeS ms(double v) { return v * 1e-3; }
constexpr TimeS us(double v) { return v * 1e-6; }

/// Human-readable formatting, e.g. "102.8 MB", "10.0 Gbps", "12.3 ms".
std::string format_bytes(Bytes b);
std::string format_rate(BitsPerSec r);
std::string format_time(TimeS t);

}  // namespace p3
