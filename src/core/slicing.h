// Parameter slicing and priority assignment — the first half of P3's
// contribution (Section 4.2 of the paper).
//
// Two partitioning schemes are implemented:
//
//  * `partition_kvstore` — the baseline MXNet KVStore heuristic: layers
//    below a threshold (default 10^6 parameters) are assigned whole to a
//    randomly chosen server; larger layers are split equally among all
//    servers. Granularity therefore stays coarse (shard size grows with the
//    layer, e.g. a 25.7 M-parameter shard of VGG-19's fc6 on a 4-server
//    cluster).
//
//  * `partition_p3` — P3's parameter slicing: every layer is cut into
//    slices of at most `slice_params` parameters (default 50,000, the
//    empirical optimum from Section 5.7) and slices are assigned to servers
//    round-robin, so a heavy layer's synchronization pipelines across
//    servers and across time.
//
// Priorities follow forward order: the first layer gets the highest
// priority (smallest value) because its parameters are consumed first in
// the next iteration; slices inherit the priority of their parent layer.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "model/model.h"

namespace p3::core {

struct Slice {
  std::int64_t id = -1;     ///< global slice key
  int layer = -1;           ///< owning layer (forward index)
  int server = -1;          ///< owning server
  std::int64_t params = 0;  ///< parameters in this slice
  int priority = 0;         ///< layer forward index; smaller = more urgent

  Bytes payload_bytes() const { return 4 * params; }
};

struct Partition {
  std::vector<Slice> slices;                 ///< indexed by slice id
  std::vector<std::vector<std::int64_t>> layer_slices;  ///< layer -> ids

  int num_layers() const { return static_cast<int>(layer_slices.size()); }
  std::int64_t num_slices() const {
    return static_cast<std::int64_t>(slices.size());
  }
  /// Total parameters across all slices (must equal the model's).
  std::int64_t total_params() const;
  /// Total payload bytes a layer synchronizes.
  Bytes layer_bytes(int layer) const;
};

/// Baseline MXNet KVStore sharding. `rng` drives the random placement of
/// small layers (deterministic for a fixed seed).
Partition partition_kvstore(const model::ModelSpec& model, int n_servers,
                            std::int64_t threshold, Rng& rng);

/// P3 parameter slicing with round-robin server assignment.
Partition partition_p3(const model::ModelSpec& model, int n_servers,
                       std::int64_t slice_params);

}  // namespace p3::core
