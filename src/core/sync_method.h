// Synchronization-method catalogue.
//
// A `SyncConfig` describes how the cluster engine behaves along the four
// axes the paper varies; `sync_config` maps each named mechanism to its
// flag combination:
//
//   method           slicing  priority  immediate  deferred-pull
//   Baseline (MXNet)    -        -         -            -
//   SlicingOnly         x        -         x            -
//   P3                  x        x         x            -
//   TensorFlowStyle     -        -         -            x
//   PoseidonWFBP        -        -         -            -
//
// Baseline/Poseidon both implement wait-free backpropagation (gradients of a
// layer are pushed as soon as its backward completes); TensorFlowStyle
// additionally defers all parameter pulls to the start of the next graph
// execution, the bidirectional-underuse behaviour described in Section 2.
#pragma once

#include <string>

namespace p3::core {

enum class SyncMethod {
  kBaseline = 0,
  kSlicingOnly,
  kP3,
  kTensorFlowStyle,
  kPoseidonWFBP,
};

struct SyncConfig {
  bool slicing = false;             ///< P3 parameter slicing
  bool priority = false;            ///< priority queues (worker TX, server RX)
  bool immediate_broadcast = false; ///< server pushes params, no notify+pull
  bool deferred_pull = false;       ///< pulls issued only at iteration start
};

/// Flag combination for a named method (table above).
SyncConfig sync_config(SyncMethod method);

/// Display name ("Baseline", "Slicing", "P3", ...), matching the series
/// labels used in the paper's figures.
std::string sync_method_name(SyncMethod method);

/// Parse a name (case-sensitive, as printed by sync_method_name) back to a
/// method; throws std::invalid_argument on unknown names.
SyncMethod parse_sync_method(const std::string& name);

}  // namespace p3::core
