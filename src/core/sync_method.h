// Synchronization-method catalogue.
//
// A `SyncConfig` describes how the cluster engine behaves along the four
// axes the paper varies; `sync_config` maps each named mechanism to its
// flag combination:
//
//   method           slicing  priority  immediate  deferred-pull
//   Baseline (MXNet)    -        -         -            -
//   SlicingOnly         x        -         x            -
//   P3                  x        x         x            -
//   TensorFlowStyle     -        -         -            x
//   PoseidonWFBP        -        -         -            -
//   DSSP                x        x         x            -
//
// Baseline/Poseidon both implement wait-free backpropagation (gradients of a
// layer are pushed as soon as its backward completes); TensorFlowStyle
// additionally defers all parameter pulls to the start of the next graph
// execution, the bidirectional-underuse behaviour described in Section 2.
// DSSP keeps the P3 transport but replaces the BSP barrier with a dynamic
// bounded-staleness gate (Zhao et al., arXiv:1908.11848); the gate itself
// lives in ps::Cluster and is configured through ps::StalenessConfig.
#pragma once

#include <string>

namespace p3::core {

enum class SyncMethod {
  kBaseline = 0,
  kSlicingOnly,
  kP3,
  kTensorFlowStyle,
  kPoseidonWFBP,
  kDSSP,
};

struct SyncConfig {
  bool slicing = false;             ///< P3 parameter slicing
  bool priority = false;            ///< priority queues (worker TX, server RX)
  bool immediate_broadcast = false; ///< server pushes params, no notify+pull
  bool deferred_pull = false;       ///< pulls issued only at iteration start
};

/// Flag combination for a named method (table above).
SyncConfig sync_config(SyncMethod method);

/// Display name ("Baseline", "Slicing", "P3", ...), matching the series
/// labels used in the paper's figures.
std::string sync_method_name(SyncMethod method);

/// Parse a name back to a method. Matching is case-insensitive ("p3",
/// "dssp" and "P3", "DSSP" are all accepted); unknown names throw
/// std::invalid_argument with a message listing every valid method.
SyncMethod parse_sync_method(const std::string& name);

}  // namespace p3::core
