#include "core/sync_method.h"

#include <stdexcept>

namespace p3::core {

SyncConfig sync_config(SyncMethod method) {
  SyncConfig cfg;
  switch (method) {
    case SyncMethod::kBaseline:
    case SyncMethod::kPoseidonWFBP:
      break;
    case SyncMethod::kSlicingOnly:
      // The paper's "Slicing" series is the P3 implementation with priority
      // scheduling disabled: slicing and the immediate parameter broadcast
      // (Section 4.2 removes notify+pull as part of the implementation),
      // but FIFO ordering.
      cfg.slicing = true;
      cfg.immediate_broadcast = true;
      break;
    case SyncMethod::kP3:
      cfg.slicing = true;
      cfg.priority = true;
      cfg.immediate_broadcast = true;
      break;
    case SyncMethod::kTensorFlowStyle:
      cfg.deferred_pull = true;
      break;
  }
  return cfg;
}

std::string sync_method_name(SyncMethod method) {
  switch (method) {
    case SyncMethod::kBaseline:
      return "Baseline";
    case SyncMethod::kSlicingOnly:
      return "Slicing";
    case SyncMethod::kP3:
      return "P3";
    case SyncMethod::kTensorFlowStyle:
      return "TensorFlow";
    case SyncMethod::kPoseidonWFBP:
      return "Poseidon";
  }
  throw std::invalid_argument("unknown sync method");
}

SyncMethod parse_sync_method(const std::string& name) {
  for (SyncMethod m :
       {SyncMethod::kBaseline, SyncMethod::kSlicingOnly, SyncMethod::kP3,
        SyncMethod::kTensorFlowStyle, SyncMethod::kPoseidonWFBP}) {
    if (sync_method_name(m) == name) return m;
  }
  throw std::invalid_argument("unknown sync method: " + name);
}

}  // namespace p3::core
