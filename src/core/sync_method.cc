#include "core/sync_method.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <stdexcept>

namespace p3::core {

namespace {

constexpr std::array<SyncMethod, 6> kAllMethods = {
    SyncMethod::kBaseline,     SyncMethod::kSlicingOnly,
    SyncMethod::kP3,           SyncMethod::kTensorFlowStyle,
    SyncMethod::kPoseidonWFBP, SyncMethod::kDSSP,
};

std::string lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

SyncConfig sync_config(SyncMethod method) {
  SyncConfig cfg;
  switch (method) {
    case SyncMethod::kBaseline:
    case SyncMethod::kPoseidonWFBP:
      break;
    case SyncMethod::kSlicingOnly:
      // The paper's "Slicing" series is the P3 implementation with priority
      // scheduling disabled: slicing and the immediate parameter broadcast
      // (Section 4.2 removes notify+pull as part of the implementation),
      // but FIFO ordering.
      cfg.slicing = true;
      cfg.immediate_broadcast = true;
      break;
    case SyncMethod::kP3:
    case SyncMethod::kDSSP:
      // DSSP rides the full P3 transport (sliced, priority-scheduled,
      // immediate broadcast); what changes is the synchronization barrier,
      // which the cluster engine relaxes to a bounded-staleness gate.
      cfg.slicing = true;
      cfg.priority = true;
      cfg.immediate_broadcast = true;
      break;
    case SyncMethod::kTensorFlowStyle:
      cfg.deferred_pull = true;
      break;
  }
  return cfg;
}

std::string sync_method_name(SyncMethod method) {
  switch (method) {
    case SyncMethod::kBaseline:
      return "Baseline";
    case SyncMethod::kSlicingOnly:
      return "Slicing";
    case SyncMethod::kP3:
      return "P3";
    case SyncMethod::kTensorFlowStyle:
      return "TensorFlow";
    case SyncMethod::kPoseidonWFBP:
      return "Poseidon";
    case SyncMethod::kDSSP:
      return "DSSP";
  }
  throw std::invalid_argument("unknown sync method");
}

SyncMethod parse_sync_method(const std::string& name) {
  const std::string needle = lower(name);
  for (SyncMethod m : kAllMethods) {
    if (lower(sync_method_name(m)) == needle) return m;
  }
  std::string valid;
  for (SyncMethod m : kAllMethods) {
    if (!valid.empty()) valid += ", ";
    valid += sync_method_name(m);
  }
  throw std::invalid_argument("unknown sync method: " + name +
                              " (valid: " + valid + ")");
}

}  // namespace p3::core
