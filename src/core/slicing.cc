#include "core/slicing.h"

#include <stdexcept>

namespace p3::core {
namespace {

void validate(const model::ModelSpec& model, int n_servers) {
  if (model.layers.empty()) throw std::invalid_argument("model has no layers");
  if (n_servers <= 0) throw std::invalid_argument("need at least one server");
}

}  // namespace

std::int64_t Partition::total_params() const {
  std::int64_t total = 0;
  for (const auto& s : slices) total += s.params;
  return total;
}

Bytes Partition::layer_bytes(int layer) const {
  Bytes total = 0;
  for (auto id : layer_slices.at(static_cast<std::size_t>(layer))) {
    total += slices[static_cast<std::size_t>(id)].payload_bytes();
  }
  return total;
}

Partition partition_kvstore(const model::ModelSpec& model, int n_servers,
                            std::int64_t threshold, Rng& rng) {
  validate(model, n_servers);
  if (threshold <= 0) throw std::invalid_argument("non-positive threshold");

  Partition part;
  part.layer_slices.resize(model.layers.size());
  for (int layer = 0; layer < model.num_layers(); ++layer) {
    const auto params = model.layers[static_cast<std::size_t>(layer)].params;
    auto add = [&](std::int64_t p, int server) {
      Slice s;
      s.id = part.num_slices();
      s.layer = layer;
      s.server = server;
      s.params = p;
      s.priority = layer;
      part.slices.push_back(s);
      part.layer_slices[static_cast<std::size_t>(layer)].push_back(s.id);
    };
    if (params < threshold) {
      // Small layer: whole key on a random server.
      add(params, static_cast<int>(
                      rng.uniform_index(static_cast<std::uint64_t>(n_servers))));
    } else {
      // Large layer: split equally among all servers (remainder spread over
      // the first shards).
      const std::int64_t base = params / n_servers;
      const std::int64_t rem = params % n_servers;
      for (int srv = 0; srv < n_servers; ++srv) {
        add(base + (srv < rem ? 1 : 0), srv);
      }
    }
  }
  return part;
}

Partition partition_p3(const model::ModelSpec& model, int n_servers,
                       std::int64_t slice_params) {
  validate(model, n_servers);
  if (slice_params <= 0) throw std::invalid_argument("non-positive slice size");

  Partition part;
  part.layer_slices.resize(model.layers.size());
  int next_server = 0;  // global round-robin cursor
  for (int layer = 0; layer < model.num_layers(); ++layer) {
    std::int64_t remaining =
        model.layers[static_cast<std::size_t>(layer)].params;
    // Zero-parameter layers still get no slice (nothing to synchronize).
    while (remaining > 0) {
      Slice s;
      s.id = part.num_slices();
      s.layer = layer;
      s.server = next_server;
      s.params = std::min(remaining, slice_params);
      s.priority = layer;
      part.slices.push_back(s);
      part.layer_slices[static_cast<std::size_t>(layer)].push_back(s.id);
      remaining -= s.params;
      next_server = (next_server + 1) % n_servers;
    }
  }
  return part;
}

}  // namespace p3::core
