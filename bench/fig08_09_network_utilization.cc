// Figures 8 and 9: inbound/outbound network utilization of one worker
// machine at 10 ms precision (bwm-ng style), baseline vs P3, for
// ResNet-50 @ 4 Gbps, VGG-19 @ 15 Gbps and Sockeye @ 4 Gbps.
//
// Paper observations: the baseline's traffic is bursty with long idle
// periods (especially for VGG-19 and Sockeye) and inbound/outbound are not
// overlapped; P3 keeps the NIC busy and uses both directions concurrently.
#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "bench_util.h"
#include "common/csv.h"
#include "model/zoo.h"
#include "obs/analysis.h"
#include "obs/tracer.h"
#include "runner/experiment.h"

namespace {

using namespace p3;

void sparkline(const char* label, const std::vector<double>& series,
               double peak, std::size_t from, std::size_t count) {
  std::printf("  %-9s|", label);
  for (std::size_t i = from; i < std::min(series.size(), from + count); ++i) {
    const int level =
        static_cast<int>(9.0 * series[i] / std::max(peak, 1e-9));
    std::printf("%c", level <= 0 ? '.' : static_cast<char>(
                                             '0' + std::min(level, 9)));
  }
  std::printf("|\n");
}

void run_case(const char* title, const model::Workload& workload,
              double bandwidth_gbps, core::SyncMethod method,
              const char* csv_path, const runner::MeasureOptions& opts) {
  ps::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.method = method;
  cfg.bandwidth = gbps(bandwidth_gbps);
  cfg.rx_bandwidth = gbps(100);

  const auto trace = runner::utilization_trace(workload, cfg, 0, opts);

  CsvWriter csv(bench::out(csv_path), {"time_10ms", "outbound_gbps", "inbound_gbps"});
  for (std::size_t i = 0; i < trace.outbound_gbps.size(); ++i) {
    csv.row({static_cast<double>(i), trace.outbound_gbps[i],
             i < trace.inbound_gbps.size() ? trace.inbound_gbps[i] : 0.0});
  }

  std::printf("--- %s (%s, %.0f Gbps) ---\n", title,
              core::sync_method_name(method).c_str(), bandwidth_gbps);
  // Show the steady-state middle of the run.
  const std::size_t window = 120;
  const std::size_t from =
      trace.outbound_gbps.size() > 2 * window ? trace.outbound_gbps.size() / 2
                                              : 0;
  sparkline("outbound", trace.outbound_gbps, bandwidth_gbps, from, window);
  sparkline("inbound", trace.inbound_gbps, bandwidth_gbps, from, window);
  std::printf("  idle bins: out %.0f%%, in %.0f%%   peak: out %.1f Gbps, in "
              "%.1f Gbps   (csv: %s)\n\n",
              100.0 * trace.idle_fraction_out, 100.0 * trace.idle_fraction_in,
              trace.peak_out_gbps, trace.peak_in_gbps, bench::out(csv_path).c_str());
}

/// --trace PREFIX: one fully observed ResNet-50 P3 point on top of the
/// figure sweep. Exports "<PREFIX>.trace.json" (Chrome trace-event /
/// Perfetto), "<PREFIX>.lifecycle.csv", "<PREFIX>.metrics.{csv,json}", and
/// prints the slice-lifecycle breakdown. The traced run is separate from
/// the CSV-producing runs above, so figure output stays bit-identical.
void run_traced_point(const model::Workload& workload,
                      const std::string& prefix,
                      const runner::MeasureOptions& opts) {
  ps::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.method = core::SyncMethod::kP3;
  cfg.bandwidth = gbps(4);
  cfg.rx_bandwidth = gbps(100);

  ps::Cluster cluster(workload, cfg);
  obs::Tracer tracer;
  cluster.attach_tracer(&tracer);
  cluster.run(opts.warmup, opts.measured);

  const auto violations = tracer.validate();
  for (const auto& v : violations) {
    std::fprintf(stderr, "trace violation: %s\n", v.c_str());
  }

  tracer.write_chrome_json(prefix + ".trace.json");
  tracer.write_lifecycle_csv(prefix + ".lifecycle.csv");
  cluster.metrics().write_csv(prefix + ".metrics.csv");
  cluster.metrics().write_json(prefix + ".metrics.json");

  const auto report = obs::analyze(tracer.lifecycle_records());
  std::printf("--- traced point: ResNet-50, P3, 4 Gbps ---\n");
  std::printf("%s", obs::format_report(report).c_str());
  std::printf("  trace: %s.trace.json  lifecycle: %s.lifecycle.csv\n\n",
              prefix.c_str(), prefix.c_str());
  if (!violations.empty()) {
    throw std::runtime_error("trace failed validation");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/3,
                           /*default_measured=*/6,
                           {{"trace", ""}});
  const runner::MeasureOptions& m = opts.measure();

  std::printf("== Figures 8/9: network utilization, baseline vs P3 ==\n\n");
  const auto resnet = model::workload_resnet50();
  const auto vgg = model::workload_vgg19();
  const auto sockeye = model::workload_sockeye();

  run_case("Fig 8(a) ResNet-50", resnet, 4, core::SyncMethod::kBaseline,
           "fig08_resnet50_baseline.csv", m);
  run_case("Fig 9(a) ResNet-50", resnet, 4, core::SyncMethod::kP3,
           "fig09_resnet50_p3.csv", m);
  run_case("Fig 8(b) VGG-19", vgg, 15, core::SyncMethod::kBaseline,
           "fig08_vgg19_baseline.csv", m);
  run_case("Fig 9(b) VGG-19", vgg, 15, core::SyncMethod::kP3,
           "fig09_vgg19_p3.csv", m);
  run_case("Fig 8(c) Sockeye", sockeye, 4, core::SyncMethod::kBaseline,
           "fig08_sockeye_baseline.csv", m);
  run_case("Fig 9(c) Sockeye", sockeye, 4, core::SyncMethod::kP3,
           "fig09_sockeye_p3.csv", m);

  const std::string trace_prefix = opts.raw().str("trace");
  if (!trace_prefix.empty()) run_traced_point(resnet, trace_prefix, m);

  std::printf("paper: baseline shows bursty peaks and dominant idle time "
              "(esp. VGG/Sockeye);\n       P3 reduces idle time and "
              "overlaps inbound with outbound\n");
  return 0;
}
