// Figures 8 and 9: inbound/outbound network utilization of one worker
// machine at 10 ms precision (bwm-ng style), baseline vs P3, for
// ResNet-50 @ 4 Gbps, VGG-19 @ 15 Gbps and Sockeye @ 4 Gbps.
//
// Paper observations: the baseline's traffic is bursty with long idle
// periods (especially for VGG-19 and Sockeye) and inbound/outbound are not
// overlapped; P3 keeps the NIC busy and uses both directions concurrently.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/csv.h"
#include "model/zoo.h"
#include "runner/experiment.h"

namespace {

using namespace p3;

void sparkline(const char* label, const std::vector<double>& series,
               double peak, std::size_t from, std::size_t count) {
  std::printf("  %-9s|", label);
  for (std::size_t i = from; i < std::min(series.size(), from + count); ++i) {
    const int level =
        static_cast<int>(9.0 * series[i] / std::max(peak, 1e-9));
    std::printf("%c", level <= 0 ? '.' : static_cast<char>(
                                             '0' + std::min(level, 9)));
  }
  std::printf("|\n");
}

void run_case(const char* title, const model::Workload& workload,
              double bandwidth_gbps, core::SyncMethod method,
              const char* csv_path, const runner::MeasureOptions& opts) {
  ps::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.method = method;
  cfg.bandwidth = gbps(bandwidth_gbps);
  cfg.rx_bandwidth = gbps(100);

  const auto trace = runner::utilization_trace(workload, cfg, 0, opts);

  CsvWriter csv(bench::out(csv_path), {"time_10ms", "outbound_gbps", "inbound_gbps"});
  for (std::size_t i = 0; i < trace.outbound_gbps.size(); ++i) {
    csv.row({static_cast<double>(i), trace.outbound_gbps[i],
             i < trace.inbound_gbps.size() ? trace.inbound_gbps[i] : 0.0});
  }

  std::printf("--- %s (%s, %.0f Gbps) ---\n", title,
              core::sync_method_name(method).c_str(), bandwidth_gbps);
  // Show the steady-state middle of the run.
  const std::size_t window = 120;
  const std::size_t from =
      trace.outbound_gbps.size() > 2 * window ? trace.outbound_gbps.size() / 2
                                              : 0;
  sparkline("outbound", trace.outbound_gbps, bandwidth_gbps, from, window);
  sparkline("inbound", trace.inbound_gbps, bandwidth_gbps, from, window);
  std::printf("  idle bins: out %.0f%%, in %.0f%%   peak: out %.1f Gbps, in "
              "%.1f Gbps   (csv: %s)\n\n",
              100.0 * trace.idle_fraction_out, 100.0 * trace.idle_fraction_in,
              trace.peak_out_gbps, trace.peak_in_gbps, bench::out(csv_path).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/3,
                           /*default_measured=*/6);
  const runner::MeasureOptions& m = opts.measure();

  std::printf("== Figures 8/9: network utilization, baseline vs P3 ==\n\n");
  const auto resnet = model::workload_resnet50();
  const auto vgg = model::workload_vgg19();
  const auto sockeye = model::workload_sockeye();

  run_case("Fig 8(a) ResNet-50", resnet, 4, core::SyncMethod::kBaseline,
           "fig08_resnet50_baseline.csv", m);
  run_case("Fig 9(a) ResNet-50", resnet, 4, core::SyncMethod::kP3,
           "fig09_resnet50_p3.csv", m);
  run_case("Fig 8(b) VGG-19", vgg, 15, core::SyncMethod::kBaseline,
           "fig08_vgg19_baseline.csv", m);
  run_case("Fig 9(b) VGG-19", vgg, 15, core::SyncMethod::kP3,
           "fig09_vgg19_p3.csv", m);
  run_case("Fig 8(c) Sockeye", sockeye, 4, core::SyncMethod::kBaseline,
           "fig08_sockeye_baseline.csv", m);
  run_case("Fig 9(c) Sockeye", sockeye, 4, core::SyncMethod::kP3,
           "fig09_sockeye_p3.csv", m);

  std::printf("paper: baseline shows bursty peaks and dominant idle time "
              "(esp. VGG/Sockeye);\n       P3 reduces idle time and "
              "overlaps inbound with outbound\n");
  return 0;
}
