// Extension: sensitivity to compute-time variance (stragglers).
//
// Section 5.5 attributes part of Sockeye's poor scaling to "difference in
// iteration time in worker machines due to the variable sequence length of
// input data". This bench isolates that factor: per-iteration compute time
// is scaled by N(1, jitter) per worker, and synchronous SGD pays the max
// over workers. Swept across every sync method (including the DSSP
// staleness gate, which trades bounded staleness for straggler tolerance)
// at a constrained and an ample bandwidth.
//
// Expected shape: jitter costs every synchronous method roughly the
// max-of-n penalty; P3's advantage persists under jitter (the scheduling
// win and the straggler penalty compose additively) but neither method
// can hide stragglers — that is ASGD's trade (Fig 15).
#include <cstdio>

#include "bench_util.h"
#include "common/options.h"
#include "model/zoo.h"

namespace {

using namespace p3;

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/3,
                           /*default_measured=*/10);
  const runner::MeasureOptions& m = opts.measure();

  std::printf("== Extension: straggler sensitivity (Sockeye, 4 workers) ==\n\n");
  const auto workload = model::workload_sockeye();
  const std::vector<double> jitters = {0.0, 0.05, 0.10, 0.20, 0.30};

  const std::vector<core::SyncMethod> methods = {
      core::SyncMethod::kBaseline,        core::SyncMethod::kSlicingOnly,
      core::SyncMethod::kP3,              core::SyncMethod::kTensorFlowStyle,
      core::SyncMethod::kPoseidonWFBP,    core::SyncMethod::kDSSP,
  };
  for (double bandwidth : {4.0, 30.0}) {
    std::vector<runner::Series> series;
    for (auto method : methods) {
      runner::Series s;
      s.name = core::sync_method_name(method);
      for (double jitter : jitters) {
        ps::ClusterConfig cfg;
        cfg.n_workers = 4;
        cfg.method = method;
        cfg.bandwidth = gbps(bandwidth);
        cfg.rx_bandwidth = gbps(100);
        cfg.compute_jitter = jitter;
        s.x.push_back(jitter);
        s.y.push_back(runner::measure_throughput(workload, cfg, m));
      }
      series.push_back(std::move(s));
    }
    char title[64];
    std::snprintf(title, sizeof(title), "compute jitter sweep @ %.0f Gbps",
                  bandwidth);
    char csv[64];
    std::snprintf(csv, sizeof(csv), "ext_stragglers_%.0fgbps.csv", bandwidth);
    bench::report_series(title, "jitter (stddev)", "sentences/s", series, csv);
  }

  std::printf("synchronous SGD pays the max over workers, so jitter costs "
              "every BSP method alike (communication overlap absorbs part of "
              "it); P3's scheduling advantage persists at every jitter "
              "level, and DSSP's staleness gate additionally absorbs jitter "
              "up to its bound instead of paying the max.\n");
  return 0;
}
