// Extension (Section 6): composing P3 with gradient compression.
//
// The paper positions P3 as "an orthogonal approach to the compression
// techniques [that] can be used on top of compression mechanisms to further
// improve performance". This bench applies a DGC-like 50x wire-compression
// factor (sparse values + indices; the server still touches full arrays) to
// both the baseline and P3 and sweeps bandwidth on VGG-19 and ResNet-50.
//
// Expected shape: compression rescues the baseline at low bandwidth, but at
// every bandwidth "compressed + P3" >= "compressed alone" — the scheduling
// win survives because compressed traffic still queues behind low-priority
// layers and still arrives unoverlapped without P3.
#include <cstdio>

#include "bench_util.h"
#include "common/options.h"
#include "model/zoo.h"

namespace {

using namespace p3;

runner::Series sweep(const model::Workload& workload, core::SyncMethod method,
                     double compression, const std::string& name,
                     const std::vector<double>& bandwidths,
                     const runner::MeasureOptions& opts) {
  runner::Series out;
  out.name = name;
  for (double bw : bandwidths) {
    ps::ClusterConfig cfg;
    cfg.n_workers = 4;
    cfg.method = method;
    cfg.bandwidth = gbps(bw);
    cfg.rx_bandwidth = gbps(100);
    cfg.wire_compression = compression;
    out.x.push_back(bw);
    out.y.push_back(runner::measure_throughput(workload, cfg, opts));
  }
  return out;
}

void run_model(const char* title, const model::Workload& workload,
               const std::vector<double>& bandwidths, const char* csv,
               const runner::MeasureOptions& opts) {
  const double kDgcWire = 50.0;  // effective DGC ratio incl. index overhead
  std::vector<runner::Series> all;
  all.push_back(sweep(workload, core::SyncMethod::kBaseline, 1.0, "Baseline",
                      bandwidths, opts));
  all.push_back(
      sweep(workload, core::SyncMethod::kP3, 1.0, "P3", bandwidths, opts));
  all.push_back(sweep(workload, core::SyncMethod::kBaseline, kDgcWire,
                      "Baseline+DGC", bandwidths, opts));
  all.push_back(sweep(workload, core::SyncMethod::kP3, kDgcWire, "P3+DGC",
                      bandwidths, opts));
  bench::report_series(title, "bandwidth (Gbps)",
                       workload.model.sample_unit + "/s", all, csv);
  bench::report_speedup(workload.model.name + " (compressed)", all[2],
                        all[3]);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/3,
                           /*default_measured=*/8);
  const runner::MeasureOptions& m = opts.measure();

  std::printf("== Extension: P3 composed with gradient compression ==\n\n");
  run_model("VGG-19", model::workload_vgg19(), {0.5, 1, 2.5, 5, 10, 15},
            "ext_compression_vgg19.csv", m);
  run_model("ResNet-50", model::workload_resnet50(), {0.25, 0.5, 1, 2, 4},
            "ext_compression_resnet50.csv", m);

  std::printf("paper (Section 6): P3 \"can be used on top of compression "
              "mechanisms to further improve performance\"\n");
  return 0;
}
