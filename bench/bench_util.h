// Shared helpers for the figure-reproduction binaries.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/options.h"
#include "common/table.h"
#include "runner/experiment.h"
#include "runner/parallel.h"

namespace p3::bench {

/// Shared argv handling for every bench binary (instead of each one
/// hand-rolling its spec): all binaries accept
///   --warmup N / --measured N   iteration counts (per-binary defaults)
///   --threads N                 sweep fan-out; 0 (default) = one pool
///                               thread per hardware core. Results are
///                               bit-identical at any thread count.
///   --smoke                     quick sanity pass: warmup 1, measured
///                               capped at 3 (CSV values change; shapes
///                               survive)
/// plus any binary-specific options passed via `extra`, reachable through
/// raw().
class BenchOptions {
 public:
  BenchOptions(int argc, const char* const* argv, int default_warmup,
               int default_measured,
               std::map<std::string, std::string> extra = {})
      : raw_(argc, argv, merged_spec(default_warmup, default_measured,
                                     std::move(extra))),
        smoke_(raw_.flag("smoke")) {
    measure_.warmup = static_cast<int>(raw_.integer("warmup"));
    measure_.measured = static_cast<int>(raw_.integer("measured"));
    measure_.threads = static_cast<int>(raw_.integer("threads"));
    if (smoke_) {
      measure_.warmup = std::min(measure_.warmup, 1);
      measure_.measured = std::min(measure_.measured, 3);
    }
  }

  const runner::MeasureOptions& measure() const { return measure_; }
  bool smoke() const { return smoke_; }
  const Options& raw() const { return raw_; }

 private:
  static std::map<std::string, std::string> merged_spec(
      int warmup, int measured, std::map<std::string, std::string> extra) {
    extra.emplace("warmup", std::to_string(warmup));
    extra.emplace("measured", std::to_string(measured));
    extra.emplace("threads", "0");
    extra.emplace("smoke", "");
    return extra;
  }

  Options raw_;
  bool smoke_;
  runner::MeasureOptions measure_;
};

/// CSV output path under ./results (created on first use), keeping data
/// files out of the binary directory.
inline std::string out(const std::string& name) {
  std::filesystem::create_directories("results");
  return "results/" + name;
}

/// Print a set of series as one aligned table (x column + one column per
/// series) and mirror it to a CSV file next to the binary.
inline void report_series(const std::string& title, const std::string& x_label,
                          const std::string& y_label,
                          const std::vector<runner::Series>& series,
                          const std::string& csv_path) {
  std::printf("== %s ==\n", title.c_str());
  std::vector<std::string> header{x_label};
  for (const auto& s : series) header.push_back(s.name + " (" + y_label + ")");
  Table table(header);
  CsvWriter csv(out(csv_path), header);
  if (!series.empty()) {
    for (std::size_t i = 0; i < series.front().x.size(); ++i) {
      const double x = series.front().x[i];
      const bool integral = std::abs(x - std::round(x)) < 1e-9;
      std::vector<std::string> row{Table::num(x, integral ? 0 : 2)};
      for (const auto& s : series) row.push_back(Table::num(s.y[i], 2));
      table.add_row(row);
      csv.row(row);
    }
  }
  table.print();
  std::printf("(csv: %s)\n\n", out(csv_path).c_str());
}

/// Paper-style summary line: "P3 improves X by as much as N% over Baseline".
inline void report_speedup(const std::string& model,
                           const runner::Series& baseline,
                           const runner::Series& improved) {
  const double speedup = runner::max_speedup(baseline, improved);
  std::printf("%s: %s improves throughput by up to %.0f%% over %s\n",
              model.c_str(), improved.name.c_str(), speedup * 100.0,
              baseline.name.c_str());
}

}  // namespace p3::bench
