// Shared helpers for the figure-reproduction binaries.
#pragma once

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/table.h"
#include "runner/experiment.h"

namespace p3::bench {

/// CSV output path under ./results (created on first use), keeping data
/// files out of the binary directory.
inline std::string out(const std::string& name) {
  std::filesystem::create_directories("results");
  return "results/" + name;
}

/// Print a set of series as one aligned table (x column + one column per
/// series) and mirror it to a CSV file next to the binary.
inline void report_series(const std::string& title, const std::string& x_label,
                          const std::string& y_label,
                          const std::vector<runner::Series>& series,
                          const std::string& csv_path) {
  std::printf("== %s ==\n", title.c_str());
  std::vector<std::string> header{x_label};
  for (const auto& s : series) header.push_back(s.name + " (" + y_label + ")");
  Table table(header);
  CsvWriter csv(out(csv_path), header);
  if (!series.empty()) {
    for (std::size_t i = 0; i < series.front().x.size(); ++i) {
      const double x = series.front().x[i];
      const bool integral = std::abs(x - std::round(x)) < 1e-9;
      std::vector<std::string> row{Table::num(x, integral ? 0 : 2)};
      for (const auto& s : series) row.push_back(Table::num(s.y[i], 2));
      table.add_row(row);
      csv.row(row);
    }
  }
  table.print();
  std::printf("(csv: %s)\n\n", out(csv_path).c_str());
}

/// Paper-style summary line: "P3 improves X by as much as N% over Baseline".
inline void report_speedup(const std::string& model,
                           const runner::Series& baseline,
                           const runner::Series& improved) {
  const double speedup = runner::max_speedup(baseline, improved);
  std::printf("%s: %s improves throughput by up to %.0f%% over %s\n",
              model.c_str(), improved.name.c_str(), speedup * 100.0,
              baseline.name.c_str());
}

}  // namespace p3::bench
