// Ablation: which of P3's ingredients buys what?
//
// DESIGN.md calls out three mechanisms layered on the baseline protocol:
// parameter slicing, the immediate parameter broadcast (removing
// notify+pull and MXNet's per-layer pull gating), and priority scheduling.
// This bench measures every intermediate combination on the two extreme
// workloads (ResNet-50: many small layers; VGG-19: one dominant layer) at
// their constrained-bandwidth operating points, plus the effect of
// transport-level fragmentation alone and of dedicated (non-colocated)
// parameter servers. The per-model configurations are independent clusters,
// so they fan across the ParallelExecutor (--threads).
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "model/zoo.h"

namespace {

using namespace p3;

ps::ClusterConfig base_config(double bandwidth_gbps) {
  ps::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.bandwidth = gbps(bandwidth_gbps);
  cfg.rx_bandwidth = gbps(100);
  return cfg;
}

void ablate(const char* title, const model::Workload& w, double bandwidth_gbps,
            const runner::MeasureOptions& opts) {
  std::printf("--- %s @ %.0f Gbps ---\n", title, bandwidth_gbps);

  std::vector<std::pair<std::string, ps::ClusterConfig>> cases;
  cases.emplace_back("baseline (MXNet KVStore)",
                     base_config(bandwidth_gbps));  // kBaseline default
  {
    // Fragmentation only: baseline protocol, 4MB wire chunks.
    auto cfg = base_config(bandwidth_gbps);
    cfg.fragment_bytes = mib(4);
    cases.emplace_back("+ 4MB transport fragmentation", cfg);
  }
  {
    // Slicing + immediate broadcast, FIFO (the paper's "Slicing").
    auto cfg = base_config(bandwidth_gbps);
    cfg.method = core::SyncMethod::kSlicingOnly;
    cases.emplace_back("+ slicing + broadcast (FIFO)", cfg);
  }
  {
    auto cfg = base_config(bandwidth_gbps);
    cfg.method = core::SyncMethod::kP3;
    cases.emplace_back("+ priority (= P3)", cfg);
  }
  {
    // P3 with coarse slices: isolates how much the 50k granularity matters.
    auto cfg = base_config(bandwidth_gbps);
    cfg.method = core::SyncMethod::kP3;
    cfg.slice_params = 1'000'000;
    cases.emplace_back("P3 with 1M-param slices", cfg);
  }
  {
    // Deployment ablation: dedicated server machines double the cluster's
    // NICs but force every byte across the network.
    auto cfg = base_config(bandwidth_gbps);
    cfg.method = core::SyncMethod::kP3;
    cfg.dedicated_servers = true;
    cases.emplace_back("P3, dedicated PS machines", cfg);
  }

  std::vector<std::function<double()>> jobs;
  for (const auto& [name, cfg] : cases) {
    jobs.push_back(
        [&w, cfg, &opts] { return runner::measure_throughput(w, cfg, opts); });
  }
  runner::ParallelExecutor executor(opts.threads);
  const auto values = executor.map(std::move(jobs));

  Table table({"configuration", "throughput", "vs baseline"});
  const double baseline = values.front();
  for (std::size_t i = 0; i < cases.size(); ++i) {
    table.add_row({cases[i].first, Table::num(values[i], 1),
                   Table::num(100.0 * (values[i] / baseline - 1.0), 1) + "%"});
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/3,
                           /*default_measured=*/8);
  std::printf("== Ablation: P3 component contributions ==\n\n");
  ablate("ResNet-50", model::workload_resnet50(), 4, opts.measure());
  ablate("VGG-19", model::workload_vgg19(), 15, opts.measure());
  ablate("Sockeye", model::workload_sockeye(), 4, opts.measure());
  return 0;
}
