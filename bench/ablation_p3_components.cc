// Ablation: which of P3's ingredients buys what?
//
// DESIGN.md calls out three mechanisms layered on the baseline protocol:
// parameter slicing, the immediate parameter broadcast (removing
// notify+pull and MXNet's per-layer pull gating), and priority scheduling.
// This bench measures every intermediate combination on the two extreme
// workloads (ResNet-50: many small layers; VGG-19: one dominant layer) at
// their constrained-bandwidth operating points, plus the effect of
// transport-level fragmentation alone and of dedicated (non-colocated)
// parameter servers.
#include <cstdio>

#include "common/table.h"
#include "model/zoo.h"
#include "runner/experiment.h"

namespace {

using namespace p3;

double run(const model::Workload& w, ps::ClusterConfig cfg) {
  runner::MeasureOptions opts;
  opts.warmup = 3;
  opts.measured = 8;
  return runner::measure_throughput(w, cfg, opts);
}

ps::ClusterConfig base_config(double bandwidth_gbps) {
  ps::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.bandwidth = gbps(bandwidth_gbps);
  cfg.rx_bandwidth = gbps(100);
  return cfg;
}

void ablate(const char* title, const model::Workload& w,
            double bandwidth_gbps) {
  std::printf("--- %s @ %.0f Gbps ---\n", title, bandwidth_gbps);
  Table table({"configuration", "throughput", "vs baseline"});

  const double baseline =
      run(w, base_config(bandwidth_gbps));  // kBaseline default
  auto add = [&](const char* name, double value) {
    table.add_row({name, Table::num(value, 1),
                   Table::num(100.0 * (value / baseline - 1.0), 1) + "%"});
  };
  add("baseline (MXNet KVStore)", baseline);

  {
    // Fragmentation only: baseline protocol, 4MB wire chunks.
    auto cfg = base_config(bandwidth_gbps);
    cfg.fragment_bytes = mib(4);
    add("+ 4MB transport fragmentation", run(w, cfg));
  }
  {
    // Slicing + immediate broadcast, FIFO (the paper's "Slicing").
    auto cfg = base_config(bandwidth_gbps);
    cfg.method = core::SyncMethod::kSlicingOnly;
    add("+ slicing + broadcast (FIFO)", run(w, cfg));
  }
  {
    auto cfg = base_config(bandwidth_gbps);
    cfg.method = core::SyncMethod::kP3;
    add("+ priority (= P3)", run(w, cfg));
  }
  {
    // P3 with coarse slices: isolates how much the 50k granularity matters.
    auto cfg = base_config(bandwidth_gbps);
    cfg.method = core::SyncMethod::kP3;
    cfg.slice_params = 1'000'000;
    add("P3 with 1M-param slices", run(w, cfg));
  }
  {
    // Deployment ablation: dedicated server machines double the cluster's
    // NICs but force every byte across the network.
    auto cfg = base_config(bandwidth_gbps);
    cfg.method = core::SyncMethod::kP3;
    cfg.dedicated_servers = true;
    add("P3, dedicated PS machines", run(w, cfg));
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== Ablation: P3 component contributions ==\n\n");
  ablate("ResNet-50", model::workload_resnet50(), 4);
  ablate("VGG-19", model::workload_vgg19(), 15);
  ablate("Sockeye", model::workload_sockeye(), 4);
  return 0;
}
