// Extension: how much P3 helps as a function of parameter skew.
//
// Section 3 argues the baseline's pathology scales with how disproportionate
// the heaviest layer is. This bench quantifies that across six architectures
// spanning three eras (AlexNet -> VGG/ResNet/Inception/Sockeye ->
// Transformer). For comparability each model is measured at the bandwidth
// where its communication/computation ratio is ~1 (the knee where
// scheduling matters most): bw = wire_bytes_per_iter * 8 / compute_time.
#include <cstdio>

#include "common/table.h"
#include "model/zoo.h"
#include "runner/experiment.h"

namespace {

using namespace p3;

double knee_bandwidth_gbps(const model::Workload& w, int workers) {
  // Per-NIC wire bytes per iteration with colocated servers:
  // push (n-1)/n of the model + broadcast (n-1)/n of the local shard * n.
  const double remote_fraction =
      static_cast<double>(workers - 1) / static_cast<double>(workers);
  const double tx_bytes =
      2.0 * remote_fraction * static_cast<double>(w.model.total_bytes());
  return tx_bytes * 8.0 / w.iter_compute_time / 1e9;
}

}  // namespace

int main() {
  std::printf("== Extension: P3 gain vs parameter skew (4 workers, "
              "comm/compute ~ 1) ==\n\n");

  struct Entry {
    model::Workload workload;
  };
  std::vector<model::Workload> workloads = {
      model::workload_resnet50(),
      model::workload_inception_v3(),
      model::workload_sockeye(),
      model::workload_transformer(),
      model::workload_vgg19(),
      model::Workload{model::alexnet(), 8, 0.180},  // fast conv trunk
  };

  runner::MeasureOptions opts;
  opts.warmup = 3;
  opts.measured = 8;

  Table table({"model", "heaviest layer", "knee bw", "Baseline", "P3",
               "P3 gain"});
  for (const auto& w : workloads) {
    const double bw = knee_bandwidth_gbps(w, 4);
    ps::ClusterConfig cfg;
    cfg.n_workers = 4;
    cfg.bandwidth = gbps(bw);
    cfg.rx_bandwidth = gbps(100);
    cfg.method = core::SyncMethod::kBaseline;
    const double base = runner::measure_throughput(w, cfg, opts);
    cfg.method = core::SyncMethod::kP3;
    const double p3 = runner::measure_throughput(w, cfg, opts);
    table.add_row({w.model.name,
                   Table::num(100.0 * w.model.heaviest_fraction(), 1) + "%",
                   Table::num(bw, 1) + " Gbps", Table::num(base, 1),
                   Table::num(p3, 1),
                   Table::num(100.0 * (p3 / base - 1.0), 1) + "%"});
  }
  table.print();
  std::printf(
      "\nwhere the skew sits matters as much as its size: heavy *final* "
      "layers\n(AlexNet/VGG FCs) benefit most — their gradients are "
      "generated first and can\nbe fully deprioritized — while heavy "
      "*initial* embeddings (Sockeye,\nTransformer) are generated last, "
      "so only slicing/pipelining helps them.\n");
  return 0;
}
