// Extension: how much P3 helps as a function of parameter skew.
//
// Section 3 argues the baseline's pathology scales with how disproportionate
// the heaviest layer is. This bench quantifies that across six architectures
// spanning three eras (AlexNet -> VGG/ResNet/Inception/Sockeye ->
// Transformer). For comparability each model is measured at the bandwidth
// where its communication/computation ratio is ~1 (the knee where
// scheduling matters most): bw = wire_bytes_per_iter * 8 / compute_time.
// Every (model, method) cell is an independent cluster and fans across the
// ParallelExecutor (--threads).
#include <cstdio>
#include <functional>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "model/zoo.h"

namespace {

using namespace p3;

double knee_bandwidth_gbps(const model::Workload& w, int workers) {
  // Per-NIC wire bytes per iteration with colocated servers:
  // push (n-1)/n of the model + broadcast (n-1)/n of the local shard * n.
  const double remote_fraction =
      static_cast<double>(workers - 1) / static_cast<double>(workers);
  const double tx_bytes =
      2.0 * remote_fraction * static_cast<double>(w.model.total_bytes());
  return tx_bytes * 8.0 / w.iter_compute_time / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions bopts(argc, argv, /*default_warmup=*/3,
                            /*default_measured=*/8);
  const runner::MeasureOptions& opts = bopts.measure();

  std::printf("== Extension: P3 gain vs parameter skew (4 workers, "
              "comm/compute ~ 1) ==\n\n");

  std::vector<model::Workload> workloads = {
      model::workload_resnet50(),
      model::workload_inception_v3(),
      model::workload_sockeye(),
      model::workload_transformer(),
      model::workload_vgg19(),
      model::Workload{model::alexnet(), 8, 0.180},  // fast conv trunk
  };

  // Flatten to a (model x method) job grid: baseline at 2i, P3 at 2i+1.
  std::vector<double> knees;
  std::vector<std::function<double()>> jobs;
  for (const auto& w : workloads) {
    const double bw = knee_bandwidth_gbps(w, 4);
    knees.push_back(bw);
    for (auto method : {core::SyncMethod::kBaseline, core::SyncMethod::kP3}) {
      ps::ClusterConfig cfg;
      cfg.n_workers = 4;
      cfg.bandwidth = gbps(bw);
      cfg.rx_bandwidth = gbps(100);
      cfg.method = method;
      jobs.push_back(
          [&w, cfg, &opts] { return runner::measure_throughput(w, cfg, opts); });
    }
  }
  runner::ParallelExecutor executor(opts.threads);
  const auto values = executor.map(std::move(jobs));

  Table table({"model", "heaviest layer", "knee bw", "Baseline", "P3",
               "P3 gain"});
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const auto& w = workloads[i];
    const double base = values[2 * i];
    const double p3 = values[2 * i + 1];
    table.add_row({w.model.name,
                   Table::num(100.0 * w.model.heaviest_fraction(), 1) + "%",
                   Table::num(knees[i], 1) + " Gbps", Table::num(base, 1),
                   Table::num(p3, 1),
                   Table::num(100.0 * (p3 / base - 1.0), 1) + "%"});
  }
  table.print();
  std::printf(
      "\nwhere the skew sits matters as much as its size: heavy *final* "
      "layers\n(AlexNet/VGG FCs) benefit most — their gradients are "
      "generated first and can\nbe fully deprioritized — while heavy "
      "*initial* embeddings (Sockeye,\nTransformer) are generated last, "
      "so only slicing/pipelining helps them.\n");
  return 0;
}
