// Figure 10: throughput scaling over cluster sizes 2/4/8/16 on an AWS-style
// 10 Gbps network (symmetric NIC limit, no egress-only shaping), baseline
// vs P3, for ResNet-50, VGG-19 and Sockeye.
//
// Paper observations: ResNet-50 scales the same under both (10 Gbps is
// ample); VGG-19 improves by as much as 61% on 8 machines; Sockeye is hard
// to scale (heavy initial layer + variable sequence length) but P3 still
// gains up to 18%.
#include <cstdio>

#include "bench_util.h"
#include "common/options.h"
#include "model/zoo.h"

namespace {

using namespace p3;

void run_model(const char* title, model::Workload workload,
               double compute_jitter, const char* csv,
               const runner::MeasureOptions& opts) {
  ps::ClusterConfig cfg;
  cfg.bandwidth = gbps(10);
  cfg.rx_bandwidth = 0;  // AWS NIC: both directions limited
  cfg.compute_jitter = compute_jitter;
  const std::vector<core::SyncMethod> methods = {core::SyncMethod::kBaseline,
                                                 core::SyncMethod::kP3};
  const auto series = runner::scalability_sweep(workload, cfg, methods,
                                                {2, 4, 8, 16}, opts);
  bench::report_series(title, "cluster size", workload.model.sample_unit + "/s",
                series, csv);
  bench::report_speedup(workload.model.name, series[0], series[1]);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/3,
                           /*default_measured=*/10);
  const runner::MeasureOptions& m = opts.measure();

  std::printf("== Figure 10: scalability at 10 Gbps (AWS-style) ==\n\n");
  run_model("Fig 10(a) ResNet-50", model::workload_resnet50(), 0.0,
            "fig10_resnet50.csv", m);
  run_model("Fig 10(b) VGG-19", model::workload_vgg19(), 0.0,
            "fig10_vgg19.csv", m);
  // Sockeye: variable sentence length -> per-iteration compute jitter;
  // synchronous SGD pays the max over workers.
  run_model("Fig 10(c) Sockeye", model::workload_sockeye(), 0.12,
            "fig10_sockeye.csv", m);

  std::printf("paper: ResNet-50 parity; VGG-19 up to 61%% (8 machines); "
              "Sockeye up to 18%%\n");
  return 0;
}
