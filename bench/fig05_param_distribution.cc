// Figure 5: per-layer parameter distribution of ResNet-50, VGG-19 and
// Sockeye (plus InceptionV3 and ResNet-110 for completeness). Prints the
// series the paper plots and the headline skew statistics.
#include <cstdio>

#include "bench_util.h"
#include "common/csv.h"
#include "common/table.h"
#include "model/zoo.h"

namespace {

using namespace p3;

void report(const model::ModelSpec& m, const char* csv_path) {
  CsvWriter csv(bench::out(csv_path), {"layer_index", "name", "params"});
  std::int64_t peak = 0;
  for (int i = 0; i < m.num_layers(); ++i) {
    const auto& l = m.layers[static_cast<std::size_t>(i)];
    csv.row({std::to_string(i + 1), l.name, std::to_string(l.params)});
    peak = std::max(peak, l.params);
  }
  std::printf(
      "%-12s layers=%3d  total=%7.2fM params (%7.1f MB gradients)  "
      "heaviest=%6.2fM (%4.1f%% of model, layer %d: %s)\n",
      m.name.c_str(), m.num_layers(),
      static_cast<double>(m.total_params()) / 1e6,
      static_cast<double>(m.total_bytes()) / 1e6,
      static_cast<double>(peak) / 1e6, 100.0 * m.heaviest_fraction(),
      m.heaviest_layer() + 1,
      m.layers[static_cast<std::size_t>(m.heaviest_layer())].name.c_str());
  std::printf("             (per-layer series: %s)\n", csv_path);
}

/// Coarse ASCII histogram of the distribution (mirrors the figure's shape).
void sketch(const model::ModelSpec& m, int buckets) {
  const int n = m.num_layers();
  std::printf("  layer-position profile (each char = max params in an "
              "index bucket, scaled):\n  |");
  std::int64_t peak = 1;
  for (const auto& l : m.layers) peak = std::max(peak, l.params);
  for (int b = 0; b < buckets; ++b) {
    const int lo = b * n / buckets;
    const int hi = std::max(lo + 1, (b + 1) * n / buckets);
    std::int64_t mx = 0;
    for (int i = lo; i < hi; ++i) {
      mx = std::max(mx, m.layers[static_cast<std::size_t>(i)].params);
    }
    const int level = static_cast<int>(
        9.0 * static_cast<double>(mx) / static_cast<double>(peak));
    std::printf("%c", level == 0 ? '.' : static_cast<char>('0' + level));
  }
  std::printf("|\n");
}

}  // namespace

int main() {
  std::printf("== Figure 5: parameter distribution ==\n\n");
  const auto resnet = model::resnet50();
  const auto vgg = model::vgg19();
  const auto sockeye = model::sockeye();
  const auto inception = model::inception_v3();
  const auto resnet110 = model::resnet110_cifar();

  report(resnet, "fig05_resnet50.csv");
  sketch(resnet, 60);
  report(vgg, "fig05_vgg19.csv");
  sketch(vgg, 60);
  report(sockeye, "fig05_sockeye.csv");
  sketch(sockeye, 60);
  report(inception, "fig05_inception_v3.csv");
  sketch(inception, 60);
  report(resnet110, "fig05_resnet110.csv");
  sketch(resnet110, 60);
  // Extension entries: the architectures before and after the paper's era.
  const auto alex = model::alexnet();
  const auto xfmr = model::transformer_base();
  report(alex, "fig05_alexnet.csv");
  sketch(alex, 60);
  report(xfmr, "fig05_transformer.csv");
  sketch(xfmr, 60);

  std::printf(
      "\npaper: VGG-19's fc6 holds 71.5%% of all parameters; ResNet-50 peaks"
      " ~2.4M;\n       Sockeye's heaviest layer is the *initial* embedding\n");
  std::printf("measured: VGG fc6 %.1f%%, ResNet peak %.2fM, Sockeye heaviest "
              "layer index %d\n",
              100.0 * vgg.heaviest_fraction(),
              static_cast<double>(
                  resnet.layers[static_cast<std::size_t>(resnet.heaviest_layer())]
                      .params) /
                  1e6,
              sockeye.heaviest_layer() + 1);
  return 0;
}
