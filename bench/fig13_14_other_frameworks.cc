// Figures 13 and 14 (Appendix B.1): the baseline's utilization pathology is
// not MXNet-specific. Reproduces the network-utilization traces of a
// TensorFlow-style scheduler (gradients pushed during backward, but all
// parameter pulls deferred to the start of the next graph execution) on
// ResNet-50 @ 4 Gbps, and a Poseidon-style wait-free-backpropagation
// scheduler on InceptionV3 @ 1 Gbps.
//
// Paper observation: both frameworks also utilize the network poorly —
// bursty traffic and unoverlapped inbound/outbound phases.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/csv.h"
#include "model/zoo.h"
#include "runner/experiment.h"

namespace {

using namespace p3;

void sparkline(const char* label, const std::vector<double>& series,
               double peak, std::size_t from, std::size_t count) {
  std::printf("  %-9s|", label);
  for (std::size_t i = from; i < std::min(series.size(), from + count); ++i) {
    const int level = static_cast<int>(9.0 * series[i] / std::max(peak, 1e-9));
    std::printf("%c",
                level <= 0 ? '.' : static_cast<char>('0' + std::min(level, 9)));
  }
  std::printf("|\n");
}

void run_case(const char* title, const model::Workload& workload,
              double bandwidth_gbps, core::SyncMethod method,
              const char* csv_path, const runner::MeasureOptions& opts) {
  ps::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.method = method;
  cfg.bandwidth = gbps(bandwidth_gbps);
  cfg.rx_bandwidth = gbps(100);

  const auto trace = runner::utilization_trace(workload, cfg, 0, opts);

  CsvWriter csv(bench::out(csv_path), {"time_10ms", "outbound_gbps", "inbound_gbps"});
  for (std::size_t i = 0; i < trace.outbound_gbps.size(); ++i) {
    csv.row({static_cast<double>(i), trace.outbound_gbps[i],
             i < trace.inbound_gbps.size() ? trace.inbound_gbps[i] : 0.0});
  }

  std::printf("--- %s (%.0f Gbps) ---\n", title, bandwidth_gbps);
  const std::size_t window = 120;
  const std::size_t from =
      trace.outbound_gbps.size() > 2 * window ? trace.outbound_gbps.size() / 2
                                              : 0;
  sparkline("outbound", trace.outbound_gbps, bandwidth_gbps, from, window);
  sparkline("inbound", trace.inbound_gbps, bandwidth_gbps, from, window);
  std::printf("  idle bins: out %.0f%%, in %.0f%%  (csv: %s)\n\n",
              100.0 * trace.idle_fraction_out, 100.0 * trace.idle_fraction_in,
              bench::out(csv_path).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/3,
                           /*default_measured=*/6);
  const runner::MeasureOptions& m = opts.measure();

  std::printf("== Figures 13/14: other frameworks' network utilization ==\n\n");
  run_case("Fig 13 TensorFlow-style, ResNet-50", model::workload_resnet50(),
           4, core::SyncMethod::kTensorFlowStyle, "fig13_tensorflow.csv", m);
  run_case("Fig 14 Poseidon (WFBP), InceptionV3",
           model::workload_inception_v3(), 1, core::SyncMethod::kPoseidonWFBP,
           "fig14_poseidon.csv", m);
  std::printf("paper: similar to MXNet, these frameworks also utilize the "
              "network poorly under bandwidth constraints\n");
  return 0;
}
