// Figure 7: training throughput vs network bandwidth for ResNet-50,
// InceptionV3, VGG-19 and Sockeye on a 4-machine cluster, comparing the
// MXNet baseline, parameter slicing alone, and full P3.
//
// The bandwidth axis reproduces the paper's `tc qdisc` egress shaping on a
// 100 Gbps InfiniBand fabric: TX is throttled, RX stays at line rate.
//
// Paper headlines: P3 improves ResNet-50 by up to 26% (4 Gbps), InceptionV3
// by 18%, VGG-19 by 66% (15 Gbps) and Sockeye by 38%; slicing alone helps
// only the heavy-layer models; P3 holds linear scaling to lower bandwidths
// than the baseline; all methods converge once bandwidth is ample.
#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"
#include "common/options.h"
#include "model/zoo.h"

namespace {

using namespace p3;

ps::ClusterConfig cluster_config() {
  ps::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.rx_bandwidth = gbps(100);  // tc shapes egress only
  return cfg;
}

void run_model(const char* title, const model::Workload& workload,
               const std::vector<double>& bandwidths, const char* csv,
               const runner::MeasureOptions& opts) {
  const std::vector<core::SyncMethod> methods = {
      core::SyncMethod::kBaseline, core::SyncMethod::kSlicingOnly,
      core::SyncMethod::kP3};
  const auto series = runner::bandwidth_sweep(workload, cluster_config(),
                                              methods, bandwidths, opts);
  bench::report_series(title, "bandwidth (Gbps)",
                workload.model.sample_unit + "/s", series, csv);
  bench::report_speedup(workload.model.name, series[0], series[2]);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/3,
                           /*default_measured=*/10);
  const runner::MeasureOptions& m = opts.measure();

  std::printf("== Figure 7: bandwidth vs throughput (4 workers) ==\n\n");
  run_model("Fig 7(a) ResNet-50", model::workload_resnet50(),
            {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, "fig07_resnet50.csv", m);
  run_model("Fig 7(b) InceptionV3", model::workload_inception_v3(),
            {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, "fig07_inception_v3.csv", m);
  run_model("Fig 7(c) VGG-19", model::workload_vgg19(),
            {2.5, 5, 10, 15, 20, 25, 30}, "fig07_vgg19.csv", m);
  run_model("Fig 7(d) Sockeye", model::workload_sockeye(),
            {2.5, 5, 10, 15, 20, 25, 30}, "fig07_sockeye.csv", m);

  std::printf("paper: max P3 speedups — ResNet-50 26%%, InceptionV3 18%%, "
              "VGG-19 66%%, Sockeye 38%%\n");
  return 0;
}
