// Figure 15 (Appendix B.2): ASGD vs P3 — validation accuracy against
// wall-clock time on a 4-machine cluster at 1 Gbps.
//
// Accuracy comes from the numeric trainer (synchronous full-gradient SGD vs
// asynchronous stale updates); wall-clock per iteration comes from the
// performance simulator running the ResNet-110 workload at 1 Gbps: ASGD
// iterations are faster (no barrier, no global aggregation wait) but each
// update is computed on stale parameters.
//
// Paper observations: P3 reaches ~93% final accuracy vs ~88% for ASGD, and
// reaches 80% roughly 6x faster.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/csv.h"
#include "common/options.h"
#include "common/table.h"
#include "model/zoo.h"
#include "ps/cluster.h"
#include "train/trainer.h"

namespace {

using namespace p3;

/// Simulated per-iteration wall times for the CIFAR-scale workload.
struct IterationTimes {
  double sync_iter;   // synchronous (P3) iteration latency
  double async_tick;  // per-worker iteration latency without the barrier
};

IterationTimes simulate_iteration_times() {
  model::Workload w;
  w.model = model::resnet110_cifar();
  w.batch_per_worker = 32;
  w.iter_compute_time = 0.100;  // P4000-class CIFAR ResNet-110, batch 32

  ps::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.method = core::SyncMethod::kP3;
  cfg.bandwidth = gbps(1);
  cfg.rx_bandwidth = gbps(100);
  ps::Cluster cluster(w, cfg);
  const auto result = cluster.run(3, 10);

  IterationTimes t;
  t.sync_iter = result.mean_iteration_time;
  // ASGD: a worker never waits for the others or for global aggregation;
  // its own push/pull overlaps the next compute, so the tick is
  // compute-bound.
  t.async_tick = w.iter_compute_time;
  return t;
}

struct Curve {
  std::vector<double> time_s;
  std::vector<double> accuracy;
};

Curve accuracy_curve(const train::Dataset& data, train::AggregationMode mode,
                     int epochs, double epoch_time) {
  train::TrainerConfig cfg;
  cfg.n_workers = 4;
  cfg.batch_per_worker = 32;
  cfg.epochs = epochs;
  cfg.hidden = {48, 48};
  if (mode == train::AggregationMode::kAsync) {
    // ASGD needs a gentler configuration to remain stable at all: with the
    // synchronous settings (lr 0.15, momentum 0.9) stale updates diverge.
    // At 1 Gbps the update pipeline runs far ahead of gradient computation,
    // so effective staleness is well above the worker count.
    cfg.sgd.lr = 0.07;
    cfg.sgd.momentum = 0.6;
    cfg.staleness = 12;
  } else {
    cfg.sgd.lr = 0.15;
    cfg.sgd.momentum = 0.9;
  }
  cfg.sgd.decay_epochs = {epochs / 2, 3 * epochs / 4};
  cfg.mode = mode;
  cfg.seed = 5;
  train::ParallelTrainer trainer(data, cfg);
  const auto stats = trainer.train();
  Curve curve;
  for (const auto& s : stats) {
    curve.time_s.push_back((s.epoch + 1) * epoch_time);
    curve.accuracy.push_back(s.val_accuracy);
  }
  return curve;
}

double time_to_accuracy(const Curve& c, double target) {
  for (std::size_t i = 0; i < c.accuracy.size(); ++i) {
    if (c.accuracy[i] >= target) return c.time_s[i];
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/0,
                           /*default_measured=*/0, {{"epochs", "100"}});
  const int epochs =
      opts.smoke() ? 10 : static_cast<int>(opts.raw().integer("epochs"));

  std::printf("== Figure 15: ASGD vs P3, accuracy over time ==\n\n");
  const auto times = simulate_iteration_times();
  std::printf("simulated @1 Gbps: sync iteration %.0f ms, async worker tick "
              "%.0f ms\n\n",
              1e3 * times.sync_iter, 1e3 * times.async_tick);

  train::MixtureConfig mix;
  mix.noise = 1.6;
  const auto data = train::make_gaussian_mixture(mix);

  const std::size_t samples = data.train_y.size();
  const double sync_iters_per_epoch =
      static_cast<double>(samples) / (4.0 * 32.0);
  // Async: 4 workers tick concurrently; an epoch needs samples/32 ticks.
  const double async_epoch_time =
      (static_cast<double>(samples) / 32.0 / 4.0) * times.async_tick;
  const double sync_epoch_time = sync_iters_per_epoch * times.sync_iter;

  const Curve p3 = accuracy_curve(data, train::AggregationMode::kFullSync,
                                  epochs, sync_epoch_time);
  const Curve asgd = accuracy_curve(data, train::AggregationMode::kAsync,
                                    epochs, async_epoch_time);

  CsvWriter csv(p3::bench::out("fig15_asgd_vs_p3.csv"),
                {"p3_time_s", "p3_accuracy", "asgd_time_s", "asgd_accuracy"});
  Table table({"epoch", "P3 t(s)", "P3 acc", "ASGD t(s)", "ASGD acc"});
  const std::size_t stride = std::max<std::size_t>(1, p3.time_s.size() / 14);
  for (std::size_t i = 0; i < p3.time_s.size(); ++i) {
    csv.row({p3.time_s[i], p3.accuracy[i], asgd.time_s[i], asgd.accuracy[i]});
    if (i % stride == 0 || i + 1 == p3.time_s.size()) {
      table.add_row({std::to_string(i + 1), Table::num(p3.time_s[i], 1),
                     Table::num(p3.accuracy[i], 4),
                     Table::num(asgd.time_s[i], 1),
                     Table::num(asgd.accuracy[i], 4)});
    }
  }
  table.print();
  std::printf("(csv: fig15_asgd_vs_p3.csv)\n\n");

  const double p3_final = p3.accuracy.back();
  const double asgd_final = asgd.accuracy.back();
  const double p3_80 = time_to_accuracy(p3, 0.80);
  const double asgd_80 = time_to_accuracy(asgd, 0.80);
  std::printf("paper: P3 final ~93%% vs ASGD ~88%%; P3 reaches 80%% ~6x "
              "faster\n");
  std::printf("measured: P3 final %.1f%% vs ASGD %.1f%%; time to 80%%: P3 "
              "%.1fs vs ASGD %s\n",
              100.0 * p3_final, 100.0 * asgd_final, p3_80,
              asgd_80 < 0 ? "never" : Table::num(asgd_80, 1).c_str());
  return 0;
}
