// Figure 11: validation accuracy of P3 (full-gradient synchronous SGD)
// vs Deep Gradient Compression over five hyper-parameter settings,
// reporting the best/worst band over the final training epochs.
//
// Substitution: the paper trains ResNet-110 on CIFAR-10 for 160 epochs; we
// train an MLP on a synthetic 10-class Gaussian mixture whose achievable
// accuracy sits in the same low-90s band (see DESIGN.md). The comparison —
// exact aggregation vs 99.9%-sparsified gradients with momentum correction
// — is algorithmic and carries over.
//
// Paper observations: P3's accuracy band always sits above DGC's; average
// final-accuracy drop with DGC ~0.4%.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/csv.h"
#include "common/options.h"
#include "common/table.h"
#include "train/trainer.h"

namespace {

using namespace p3;
using train::AggregationMode;

struct Band {
  std::vector<double> lo;  // per recorded epoch, min over settings
  std::vector<double> hi;  // max over settings
  double final_best = 0.0;
  double final_mean = 0.0;
};

Band run_mode(const train::Dataset& data, AggregationMode mode, int epochs,
              int record_from, const std::vector<train::SgdConfig>& settings) {
  Band band;
  const auto recorded = static_cast<std::size_t>(epochs - record_from);
  band.lo.assign(recorded, 1.0);
  band.hi.assign(recorded, 0.0);
  double final_sum = 0.0;
  for (std::size_t s = 0; s < settings.size(); ++s) {
    train::TrainerConfig cfg;
    cfg.n_workers = 4;
    cfg.batch_per_worker = 32;
    cfg.epochs = epochs;
    cfg.hidden = {48, 48};
    cfg.sgd = settings[s];
    cfg.mode = mode;
    cfg.dgc.sparsity = 0.999;  // the paper's DGC configuration
    cfg.dgc.momentum = settings[s].momentum;
    cfg.dgc.warmup_epochs = 4;
    cfg.seed = 1000 + s;
    train::ParallelTrainer trainer(data, cfg);
    const auto stats = trainer.train();
    for (std::size_t e = static_cast<std::size_t>(record_from);
         e < stats.size(); ++e) {
      const auto i = e - static_cast<std::size_t>(record_from);
      band.lo[i] = std::min(band.lo[i], stats[e].val_accuracy);
      band.hi[i] = std::max(band.hi[i], stats[e].val_accuracy);
    }
    band.final_best = std::max(band.final_best, stats.back().val_accuracy);
    final_sum += stats.back().val_accuracy;
  }
  band.final_mean = final_sum / static_cast<double>(settings.size());
  return band;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/0,
                           /*default_measured=*/0,
                           {{"epochs", "160"}, {"record-from", "100"}});
  int epochs = static_cast<int>(opts.raw().integer("epochs"));
  int record_from = static_cast<int>(opts.raw().integer("record-from"));
  if (opts.smoke()) {
    epochs = std::min(epochs, 12);
    record_from = std::min(record_from, epochs / 2);
  }

  std::printf("== Figure 11: P3 vs DGC validation accuracy ==\n");
  std::printf("(substitute task: MLP on 10-class Gaussian mixture; 5 "
              "hyper-parameter settings)\n\n");

  train::MixtureConfig mix;
  mix.noise = 1.6;  // tuned for a low-90s accuracy ceiling (like ResNet-110/CIFAR)
  const auto data = train::make_gaussian_mixture(mix);

  // Five hyper-parameter settings (lr x momentum), as in the paper.
  std::vector<train::SgdConfig> settings;
  for (auto [lr, mom] : std::initializer_list<std::pair<double, double>>{
           {0.10, 0.90}, {0.05, 0.90}, {0.08, 0.85}, {0.10, 0.80},
           {0.05, 0.95}}) {
    train::SgdConfig sgd;
    sgd.lr = lr;
    sgd.momentum = mom;
    sgd.decay_epochs = {epochs / 2, 3 * epochs / 4};
    settings.push_back(sgd);
  }

  const Band p3_band =
      run_mode(data, AggregationMode::kFullSync, epochs, record_from, settings);
  const Band dgc_band =
      run_mode(data, AggregationMode::kDgc, epochs, record_from, settings);

  Table table({"epoch", "P3 min", "P3 max", "DGC min", "DGC max"});
  CsvWriter csv(p3::bench::out("fig11_accuracy_band.csv"),
                {"epoch", "p3_min", "p3_max", "dgc_min", "dgc_max"});
  const std::size_t stride = std::max<std::size_t>(1, p3_band.lo.size() / 12);
  for (std::size_t i = 0; i < p3_band.lo.size(); ++i) {
    csv.row({static_cast<double>(record_from) + static_cast<double>(i),
             p3_band.lo[i], p3_band.hi[i], dgc_band.lo[i], dgc_band.hi[i]});
    if (i % stride == 0 || i + 1 == p3_band.lo.size()) {
      table.add_row({std::to_string(record_from + static_cast<int>(i)),
                     Table::num(p3_band.lo[i], 4), Table::num(p3_band.hi[i], 4),
                     Table::num(dgc_band.lo[i], 4),
                     Table::num(dgc_band.hi[i], 4)});
    }
  }
  table.print();
  std::printf("(csv: fig11_accuracy_band.csv)\n\n");
  std::printf("paper: P3's final accuracy is always better than DGC's; "
              "average drop with DGC ~0.4%%\n");
  std::printf("measured: final best P3 %.2f%% vs DGC %.2f%%; mean drop "
              "%.2f%%\n",
              100.0 * p3_band.final_best, 100.0 * dgc_band.final_best,
              100.0 * (p3_band.final_mean - dgc_band.final_mean));
  return 0;
}
