// Extension: SLO-driven autoscaler bench — a diurnal tenant squeezes the
// base nodes' NICs while the control loop admits standby capacity, drains
// the surplus at the trough, and degrades gracefully when nothing is left
// to admit.
//
// The paper's cluster is provisioned once and stressed uniformly; this
// bench measures what the replicated parameter server gains from closing
// the loop between observability and membership. A foreign tenant offers a
// smooth day/night load cycle against the four base NICs only (standby
// NICs stay clean, so admission moves shard serving onto uncontended
// links). The grid is (method x scenario) on ResNet-50 with colocated
// replicated servers and lease-based leadership armed:
//
//   static/tight  fixed four-node membership under the cycling load — the
//                 p99 iteration time the SLO is judged against
//   auto/tight    a dark standby pool + the autoscaler holding a tight
//                 SLO: sustained pressure admits standbys one cooldown
//                 apart (weight-aware rebalancing hands each clean NIC the
//                 hottest remaining groups) until the contended base ring
//                 leads nothing, and with the pool exhausted further
//                 pressure sheds lowest-priority pushes for bounded
//                 windows instead of collapsing
//   static/loose  a planned join at 0.3 s, no autoscaler — five nodes ride
//                 out the whole run regardless of load
//   auto/loose    the same join under a loose SLO: the loop reads the
//                 sustained underload and voluntarily drains the surplus
//                 joiner (migrate out, forward parked pulls, retire)
//
// Alongside throughput and the exact p99 iteration time it reports the
// scale counters (decisions, drains started/completed, sheds, SLO
// violation ticks) and gates on the control-loop contracts: zero
// dual-primary windows everywhere, decisions never closer than the
// cooldown (flap-free by audit), the tight-SLO autoscaler holding the SLO
// wherever the static cluster violates it, and the loose-SLO autoscaler
// completing its drain. Any violation exits 1 so CI gates on the loop, not
// just on golden CSV bytes.
//
// Each sweep point owns a private cluster, so the grid fans across the
// ParallelExecutor; identical seeds reproduce identical CSVs at any
// --threads value, and the CI chaos job diffs the --smoke output against
// checked-in goldens.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "model/zoo.h"

namespace {

using namespace p3;

enum class Scenario {
  kStaticTight = 0,
  kAutoTight = 1,
  kStaticLoose = 2,
  kAutoLoose = 3,
};

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kStaticTight: return "static/tight";
    case Scenario::kAutoTight: return "auto/tight";
    case Scenario::kStaticLoose: return "static/loose";
    case Scenario::kAutoLoose: return "auto/loose";
  }
  return "?";
}

constexpr int kBaseWorkers = 4;
// A colocated base node's NIC carries roughly twice its worker's traffic:
// the push plus the shard group it leads (params broadcast to every worker
// + chain replication). Admissions migrate the serving plane onto standby
// NICs the tenant never touches, so at the crest a base NIC goes back to
// carrying the push alone — about half the bytes through the same
// contended link. The tight SLO sits inside that factor-of-two: violated
// while the four base NICs serve everything, held once they only push. It
// also respects the iteration-histogram resolution the loop reads (bounds
// at 0.5 s and 1.0 s): a settled push-only iteration lands under 0.5 s and
// reads as 0.5 — inside the SLO — while a contended serving iteration
// lands near a full second and reads as 1.0, decisively outside.
// Loose: nothing ever violates it, so the only signal left is sustained
// underload — the drain trigger.
constexpr double kSloTight = 0.7;
constexpr double kSloLoose = 10.0;
// Day/night cycle offered against the base NICs. The rates are the
// tenant's aggregate across all four base nodes (~a quarter lands on each
// NIC): an 8 Gbps link keeps ~7 Gbps of per-NIC headroom at the trough but
// under 2 Gbps at the crest — and the crest is where the colocated serving
// bytes (params broadcast + chain replication) no longer fit next to the
// irreducible worker push.
const BitsPerSec kDiurnalBase = gbps(4);
const BitsPerSec kDiurnalPeak = gbps(24);
// Several iterations fit inside one phase of the cycle: crest iterations
// are fully contended and trough iterations fully relieved, instead of
// every iteration averaging over the whole cycle.
constexpr TimeS kDiurnalPeriod = 3.0;
constexpr Bytes kDiurnalFlow = 500'000;

struct Point {
  core::SyncMethod method;
  Scenario scenario;
};

bool autoscaled(Scenario s) {
  return s == Scenario::kAutoTight || s == Scenario::kAutoLoose;
}

bool tight(Scenario s) {
  return s == Scenario::kStaticTight || s == Scenario::kAutoTight;
}

ps::ClusterConfig point_config(const Point& p) {
  ps::ClusterConfig cfg;
  cfg.n_workers = kBaseWorkers;
  cfg.method = p.method;
  cfg.bandwidth = gbps(8);
  cfg.rx_bandwidth = gbps(100);
  cfg.replication = 2;
  cfg.max_sim_time = 600.0;
  cfg.faults.lease_duration = 0.5;
  if (!tight(p.scenario)) {
    // Surplus capacity from the start: a planned admission at 0.3 s.
    cfg.faults.joins.push_back({kBaseWorkers, 0.3});
  }
  if (autoscaled(p.scenario)) {
    cfg.autoscaler.enabled = true;
    cfg.autoscaler.slo_p99_iteration =
        tight(p.scenario) ? kSloTight : kSloLoose;
    // A pool deep enough to evacuate the whole serving plane: sustained
    // pressure admits one standby per cooldown until the base ring leads
    // nothing (or the pressure lifts first).
    cfg.autoscaler.standby_nodes = tight(p.scenario) ? kBaseWorkers : 0;
    cfg.autoscaler.cooldown = 0.25;
  }
  return cfg;
}

struct Cell {
  ps::RunResult run;
  double p99 = 0.0;       ///< whole measured window (includes churn)
  double tail_p99 = 0.0;  ///< last half of the window — the settled loop
};

Cell run_once(const model::Workload& workload, const ps::ClusterConfig& cfg,
              int warmup, int measured) {
  ps::Cluster cluster(workload, cfg);
  // The tenant hammers the base NICs only: admitting a standby moves shard
  // serving onto links the day/night cycle never touches.
  runner::inject_diurnal_background(cluster, kDiurnalBase, kDiurnalPeak,
                                    kDiurnalPeriod, kDiurnalFlow,
                                    /*seed=*/99, kBaseWorkers);
  Cell cell;
  // No drain(): the foreign tenant never stops offering load, so the
  // simulator never goes idle — every scale counter below is already
  // snapshotted into the RunResult when the measured window closes.
  cell.run = cluster.run(warmup, measured);
  const auto p99_of = [](std::vector<TimeS> times) {
    if (times.empty()) return 0.0;
    std::sort(times.begin(), times.end());
    const auto idx = static_cast<std::size_t>(std::max<std::ptrdiff_t>(
        0, static_cast<std::ptrdiff_t>(
               std::ceil(0.99 * static_cast<double>(times.size()))) -
               1));
    return times[idx];
  };
  const auto& all = cell.run.iteration_times;
  cell.p99 = p99_of(all);
  // The SLO verdict reads the tail: scale actions (admission migrations,
  // rebalancing) legitimately slow the iterations they interrupt, and the
  // contract is that the loop *converges* to holding the SLO — so judge
  // the window after it had time to act.
  cell.tail_p99 =
      p99_of(std::vector<TimeS>(all.begin() + static_cast<std::ptrdiff_t>(
                                                  all.size() / 2),
                                all.end()));
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/2,
                           /*default_measured=*/16);
  const int warmup = opts.measure().warmup;
  const int measured = opts.measure().measured;
  const int threads = opts.measure().threads;

  std::printf("== Extension: SLO-driven autoscaler (ResNet-50, 4 base "
              "workers, 8 Gbps, diurnal tenant on base NICs, colocated "
              "replicated servers, leases) ==\n\n");
  const auto workload = model::workload_resnet50();
  const std::vector<core::SyncMethod> methods = {
      core::SyncMethod::kBaseline, core::SyncMethod::kSlicingOnly,
      core::SyncMethod::kP3, core::SyncMethod::kTensorFlowStyle,
      core::SyncMethod::kPoseidonWFBP};
  const std::vector<Scenario> scenarios = {
      Scenario::kStaticTight, Scenario::kAutoTight, Scenario::kStaticLoose,
      Scenario::kAutoLoose};

  std::vector<Point> grid;
  for (auto method : methods) {
    for (auto scenario : scenarios) grid.push_back({method, scenario});
  }

  std::vector<std::function<Cell()>> jobs;
  jobs.reserve(grid.size());
  for (const Point& p : grid) {
    jobs.push_back([&workload, cfg = point_config(p), warmup, measured] {
      return run_once(workload, cfg, warmup, measured);
    });
  }
  runner::ParallelExecutor executor(threads);
  const auto cells = executor.map(std::move(jobs));

  // Throughput series: one line per method, scenarios on the x axis.
  std::vector<runner::Series> tput;
  {
    std::size_t i = 0;
    for (auto method : methods) {
      runner::Series s;
      s.name = core::sync_method_name(method);
      for (auto scenario : scenarios) {
        s.x.push_back(static_cast<double>(scenario));
        s.y.push_back(cells[i++].run.throughput);
      }
      tput.push_back(std::move(s));
    }
  }
  bench::report_series(
      "throughput across autoscale scenarios (0=static/tight, 1=auto/tight, "
      "2=static/loose, 3=auto/loose)",
      "scenario", "images/s", tput, "ext_autoscale.csv");

  // Scale-counter table: the control loop behind the latency numbers.
  const std::vector<std::string> header = {
      "method", "scenario",    "p99_s", "tail_p99_s",      "slo_ok",
      "decisions", "joins",    "drains", "drains_done",    "sheds",
      "violation_ticks", "dual", "images/s"};
  Table table(header);
  CsvWriter csv(bench::out("ext_autoscale_counters.csv"), header);
  std::vector<std::string> problems;
  std::size_t static_tight_violations = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Point& p = grid[i];
    const Cell& c = cells[i];
    const ps::RunResult& r = c.run;
    const double slo = tight(p.scenario) ? kSloTight : kSloLoose;
    const bool slo_ok = c.tail_p99 <= slo;
    const std::string label = std::string(core::sync_method_name(p.method)) +
                              " " + scenario_name(p.scenario);
    if (r.dual_primary_windows != 0) {
      problems.push_back(label + ": " +
                         std::to_string(r.dual_primary_windows) +
                         " dual-primary window(s) (expected 0)");
    }
    for (std::size_t d = 1; d < r.scale_decision_times.size(); ++d) {
      const TimeS gap =
          r.scale_decision_times[d] - r.scale_decision_times[d - 1];
      if (gap + 1e-12 < point_config(p).autoscaler.cooldown) {
        problems.push_back(label + ": decisions " + std::to_string(d - 1) +
                           " and " + std::to_string(d) + " flapped (" +
                           std::to_string(gap) + " s apart)");
      }
    }
    if (!opts.smoke()) {
      // The full-length trace is what the SLO verdicts are calibrated on;
      // --smoke truncates the run before the loop can finish acting.
      if (p.scenario == Scenario::kStaticTight && !slo_ok) {
        ++static_tight_violations;
      }
      if (p.scenario == Scenario::kAutoTight) {
        if (!slo_ok) {
          problems.push_back(label + ": tail p99 " +
                             std::to_string(c.tail_p99) +
                             " s exceeds the " + std::to_string(slo) +
                             " s SLO despite autoscaling");
        }
        // The loop must act exactly where the static cluster fails: a
        // method whose static cell violates the SLO must have admitted
        // standbys. A method that rides out the same load statically
        // (P3's scheduling can) is allowed to hold without scaling.
        const Cell& static_cell = cells[i - 1];  // same method, static/tight
        if (static_cell.tail_p99 > slo && r.joins < 2) {
          problems.push_back(label +
                             ": static violates the SLO yet sustained "
                             "pressure admitted only " +
                             std::to_string(r.joins) + " standby(s)");
        }
      }
      if (p.scenario == Scenario::kAutoLoose && r.drains_completed != 1) {
        problems.push_back(label + ": expected the surplus drain, saw " +
                           std::to_string(r.drains_completed) +
                           " completed drain(s)");
      }
    }
    const std::vector<std::string> row = {
        core::sync_method_name(p.method),
        scenario_name(p.scenario),
        Table::num(c.p99, 3),
        Table::num(c.tail_p99, 3),
        slo_ok ? "yes" : "NO",
        std::to_string(r.scale_decisions),
        std::to_string(r.joins),
        std::to_string(r.drains_started),
        std::to_string(r.drains_completed),
        std::to_string(r.sheds),
        std::to_string(r.slo_violation_ticks),
        std::to_string(r.dual_primary_windows),
        Table::num(r.throughput, 2)};
    table.add_row(row);
    csv.row(row);
  }
  std::printf("== autoscale counters ==\n");
  table.print();
  std::printf("(csv: %s)\n\n",
              bench::out("ext_autoscale_counters.csv").c_str());

  if (!opts.smoke() && static_tight_violations == 0) {
    problems.push_back(
        "the diurnal trace never pushed the static cluster past the tight "
        "SLO — the autoscaled comparison proves nothing");
  }

  std::printf("the loop reads the iteration-time histogram on the suspicion "
              "cadence: sustained pressure admits the standby (its clean NIC "
              "takes the hottest groups), sustained slack drains the surplus "
              "joiner behind the same commit-barrier migrations, and "
              "exhausted capacity sheds bounded windows of lowest-priority "
              "pushes — contributions are delayed, never dropped.\n");
  if (!problems.empty()) {
    for (const auto& p : problems) {
      std::fprintf(stderr, "FAIL: %s\n", p.c_str());
    }
    return 1;
  }
  std::printf("control-loop contracts held in all %zu cells: 0 dual-primary "
              "windows, decisions >= cooldown apart%s.\n",
              grid.size(),
              opts.smoke() ? ""
                           : ", tight SLO held under autoscaling, surplus "
                             "drained under the loose SLO");
  return 0;
}
