// Extension: chaos bench — P3 vs baseline under injected wire faults.
//
// The paper evaluates on a real cluster where links flap and `tc` shapes
// traffic mid-run; our substrate makes those faults first-class and
// reproducible. This bench sweeps (a) uniform message-loss rates and (b) a
// link-flap (blackout) of growing duration on one machine, with the
// ack/timeout/retransmit layer repairing every loss. Reported alongside
// throughput is the wire overhead — bytes on the wire per byte of goodput —
// which is the price of reliability (retransmits + acks).
//
// Expected shape: both methods degrade with loss since synchronous SGD
// cannot finish a round without the retransmitted stragglers, but P3's
// priority queue keeps urgent retransmits ahead of bulk backlog, so its
// advantage persists (and preemption still works under loss). Identical
// seeds reproduce identical CSVs.
#include <cstdio>

#include "bench_util.h"
#include "common/options.h"
#include "model/zoo.h"

namespace {

using namespace p3;

ps::RunResult run_once(const model::Workload& workload, ps::ClusterConfig cfg,
                       int warmup, int measured) {
  ps::Cluster cluster(workload, cfg);
  ps::RunResult result = cluster.run(warmup, measured);
  cluster.drain();
  return result;
}

double wire_overhead(const ps::RunResult& r) {
  if (r.goodput_bytes <= 0) return 0.0;
  return static_cast<double>(r.wire_bytes) /
         static_cast<double>(r.goodput_bytes);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv, {{"warmup", "2"}, {"measured", "8"}});
  const int warmup = static_cast<int>(opts.integer("warmup"));
  const int measured = static_cast<int>(opts.integer("measured"));

  std::printf("== Extension: fault injection (ResNet-50, 4 workers, "
              "10 Gbps) ==\n\n");
  const auto workload = model::workload_resnet50();
  const auto methods = {core::SyncMethod::kBaseline, core::SyncMethod::kP3};

  auto base_config = [](core::SyncMethod method) {
    ps::ClusterConfig cfg;
    cfg.n_workers = 4;
    cfg.method = method;
    cfg.bandwidth = gbps(10);
    cfg.rx_bandwidth = gbps(100);
    return cfg;
  };

  // --- (a) uniform loss sweep ---
  const std::vector<double> loss_pct = {0.0, 0.1, 1.0, 5.0};
  {
    std::vector<runner::Series> tput;
    std::vector<runner::Series> overhead;
    for (auto method : methods) {
      runner::Series t, o;
      t.name = o.name = core::sync_method_name(method);
      for (double pct : loss_pct) {
        ps::ClusterConfig cfg = base_config(method);
        cfg.faults.drop_prob = pct / 100.0;
        const auto r = run_once(workload, cfg, warmup, measured);
        t.x.push_back(pct);
        t.y.push_back(r.throughput);
        o.x.push_back(pct);
        o.y.push_back(wire_overhead(r));
      }
      tput.push_back(std::move(t));
      overhead.push_back(std::move(o));
    }
    bench::report_series("message loss sweep", "loss (%)", "images/s", tput,
                         "ext_faults_loss.csv");
    bench::report_series("reliability wire overhead", "loss (%)",
                         "wire bytes / goodput byte", overhead,
                         "ext_faults_overhead.csv");
    bench::report_speedup("ResNet-50 @ 1% loss", tput[0], tput[1]);
  }

  // --- (b) link flap: node 1's NIC goes dark both ways for `d` ms,
  // starting mid-backward of the first measured iteration (t = 1 s) ---
  const std::vector<double> flap_ms = {0.0, 100.0, 250.0, 500.0};
  {
    std::vector<runner::Series> tput;
    for (auto method : methods) {
      runner::Series t;
      t.name = core::sync_method_name(method);
      for (double d : flap_ms) {
        ps::ClusterConfig cfg = base_config(method);
        if (d > 0.0) {
          const TimeS start = 1.0;
          cfg.faults.flaps.push_back({1, -1, start, start + ms(d)});
          cfg.faults.flaps.push_back({-1, 1, start, start + ms(d)});
        }
        const auto r = run_once(workload, cfg, 0, warmup + measured);
        t.x.push_back(d);
        t.y.push_back(r.throughput);
      }
      tput.push_back(std::move(t));
    }
    bench::report_series("link flap on node 1 (blackout at t=1s)",
                         "flap duration (ms)", "images/s", tput,
                         "ext_faults_flap.csv");
  }

  std::printf("loss stalls synchronous rounds on retransmission timeouts, "
              "so throughput falls for every method; P3's priority queue "
              "keeps urgent retransmits ahead of bulk backlog, so its "
              "scheduling advantage survives the chaos.\n");
  return 0;
}
