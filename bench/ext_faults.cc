// Extension: chaos bench — P3 vs baseline under injected wire faults.
//
// The paper evaluates on a real cluster where links flap and `tc` shapes
// traffic mid-run; our substrate makes those faults first-class and
// reproducible. This bench sweeps (a) uniform message-loss rates and (b) a
// link-flap (blackout) of growing duration on one machine, with the
// ack/timeout/retransmit layer repairing every loss. Reported alongside
// throughput is the wire overhead — bytes on the wire per byte of goodput —
// which is the price of reliability (retransmits + acks).
//
// Each sweep point owns a private cluster, so the (method x fault) grid is
// fanned across the ParallelExecutor; results come back in submission order
// and identical seeds reproduce identical CSVs at any --threads value.
//
// Expected shape: both methods degrade with loss since synchronous SGD
// cannot finish a round without the retransmitted stragglers, but P3's
// priority queue keeps urgent retransmits ahead of bulk backlog, so its
// advantage persists (and preemption still works under loss).
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.h"
#include "model/zoo.h"

namespace {

using namespace p3;

ps::RunResult run_once(const model::Workload& workload, ps::ClusterConfig cfg,
                       int warmup, int measured) {
  ps::Cluster cluster(workload, cfg);
  ps::RunResult result = cluster.run(warmup, measured);
  cluster.drain();
  return result;
}

double wire_overhead(const ps::RunResult& r) {
  if (r.goodput_bytes <= 0) return 0.0;
  return static_cast<double>(r.wire_bytes) /
         static_cast<double>(r.goodput_bytes);
}

/// Run one cluster per config, fanned across `threads` pool threads, with
/// results in config order.
std::vector<ps::RunResult> run_grid(const model::Workload& workload,
                                    std::vector<ps::ClusterConfig> configs,
                                    int warmup, int measured, int threads) {
  std::vector<std::function<ps::RunResult()>> jobs;
  jobs.reserve(configs.size());
  for (auto& cfg : configs) {
    jobs.push_back([&workload, cfg = std::move(cfg), warmup, measured] {
      return run_once(workload, cfg, warmup, measured);
    });
  }
  runner::ParallelExecutor executor(threads);
  return executor.map(std::move(jobs));
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/2,
                           /*default_measured=*/8);
  const int warmup = opts.measure().warmup;
  const int measured = opts.measure().measured;
  const int threads = opts.measure().threads;

  std::printf("== Extension: fault injection (ResNet-50, 4 workers, "
              "10 Gbps) ==\n\n");
  const auto workload = model::workload_resnet50();
  const std::vector<core::SyncMethod> methods = {core::SyncMethod::kBaseline,
                                                 core::SyncMethod::kP3};

  auto base_config = [](core::SyncMethod method) {
    ps::ClusterConfig cfg;
    cfg.n_workers = 4;
    cfg.method = method;
    cfg.bandwidth = gbps(10);
    cfg.rx_bandwidth = gbps(100);
    return cfg;
  };

  // --- (a) uniform loss sweep ---
  const std::vector<double> loss_pct = {0.0, 0.1, 1.0, 5.0};
  {
    // Flatten (method x loss) into one job grid; unflatten below.
    std::vector<ps::ClusterConfig> configs;
    for (auto method : methods) {
      for (double pct : loss_pct) {
        ps::ClusterConfig cfg = base_config(method);
        cfg.faults.drop_prob = pct / 100.0;
        configs.push_back(cfg);
      }
    }
    const auto results =
        run_grid(workload, std::move(configs), warmup, measured, threads);

    std::vector<runner::Series> tput;
    std::vector<runner::Series> overhead;
    for (std::size_t m = 0; m < methods.size(); ++m) {
      runner::Series t, o;
      t.name = o.name = core::sync_method_name(methods[m]);
      for (std::size_t i = 0; i < loss_pct.size(); ++i) {
        const auto& r = results[m * loss_pct.size() + i];
        t.x.push_back(loss_pct[i]);
        t.y.push_back(r.throughput);
        o.x.push_back(loss_pct[i]);
        o.y.push_back(wire_overhead(r));
      }
      tput.push_back(std::move(t));
      overhead.push_back(std::move(o));
    }
    bench::report_series("message loss sweep", "loss (%)", "images/s", tput,
                         "ext_faults_loss.csv");
    bench::report_series("reliability wire overhead", "loss (%)",
                         "wire bytes / goodput byte", overhead,
                         "ext_faults_overhead.csv");
    bench::report_speedup("ResNet-50 @ 1% loss", tput[0], tput[1]);
  }

  // --- (b) link flap: node 1's NIC goes dark both ways for `d` ms,
  // starting mid-backward of the first measured iteration (t = 1 s) ---
  const std::vector<double> flap_ms = {0.0, 100.0, 250.0, 500.0};
  {
    std::vector<ps::ClusterConfig> configs;
    for (auto method : methods) {
      for (double d : flap_ms) {
        ps::ClusterConfig cfg = base_config(method);
        if (d > 0.0) {
          const TimeS start = 1.0;
          cfg.faults.flaps.push_back({1, -1, start, start + ms(d)});
          cfg.faults.flaps.push_back({-1, 1, start, start + ms(d)});
        }
        configs.push_back(cfg);
      }
    }
    const auto results =
        run_grid(workload, std::move(configs), 0, warmup + measured, threads);

    std::vector<runner::Series> tput;
    for (std::size_t m = 0; m < methods.size(); ++m) {
      runner::Series t;
      t.name = core::sync_method_name(methods[m]);
      for (std::size_t i = 0; i < flap_ms.size(); ++i) {
        t.x.push_back(flap_ms[i]);
        t.y.push_back(results[m * flap_ms.size() + i].throughput);
      }
      tput.push_back(std::move(t));
    }
    bench::report_series("link flap on node 1 (blackout at t=1s)",
                         "flap duration (ms)", "images/s", tput,
                         "ext_faults_flap.csv");
  }

  std::printf("loss stalls synchronous rounds on retransmission timeouts, "
              "so throughput falls for every method; P3's priority queue "
              "keeps urgent retransmits ahead of bulk backlog, so its "
              "scheduling advantage survives the chaos.\n");
  return 0;
}
