// Figure 6: layer-level vs fine-grained synchronization granularity.
//
// The cartoon: a 3-layer model whose middle layer is three times heavier
// than the others. At layer granularity the heavy layer's gradient push,
// server update and parameter return serialize (Fig 6a); slicing it into
// three independent slices pipelines the three phases and overlaps
// bidirectional bandwidth (Fig 6b). The paper quotes ~30% communication
// cost reduction in this example.
#include <cstdio>

#include "model/zoo.h"
#include "ps/cluster.h"

namespace {

using namespace p3;

constexpr double kUnit = 0.010;
constexpr std::int64_t kSlice = 50'000;  // one "unit" of parameters

ps::ClusterConfig cartoon_config(bool fine_grained) {
  ps::ClusterConfig cfg;
  cfg.n_workers = 1;
  cfg.dedicated_servers = true;
  cfg.method = fine_grained ? core::SyncMethod::kSlicingOnly
                            : core::SyncMethod::kBaseline;
  // One slice of 50k params takes one unit on the wire...
  cfg.bandwidth = kSlice * 4 * 8 / kUnit;
  cfg.rx_bandwidth = cfg.bandwidth;
  cfg.latency = 0.0;
  cfg.slice_params = kSlice;
  cfg.kvstore_threshold = 10'000'000;  // baseline keeps layers whole
  // ...and one unit in the server update stage.
  cfg.update_bytes_per_sec = kSlice * 4 / kUnit;
  cfg.update_overhead = 0.0;
  // Make compute long enough that the experiment isolates communication.
  cfg.fwd_times = {kUnit, kUnit, kUnit};
  cfg.bwd_times = {kUnit, kUnit, kUnit};
  return cfg;
}

double run_case(bool fine_grained, const char* title) {
  model::Workload w;
  // L2 is 3x heavier (the paper's "thrice as much time" example).
  w.model = model::toy_custom({kSlice, 3 * kSlice, kSlice});
  w.batch_per_worker = 1;
  w.iter_compute_time = 6 * kUnit;

  ps::Cluster cluster(w, cartoon_config(fine_grained));
  trace::Timeline tl;
  cluster.attach_timeline(&tl);
  const auto result = cluster.run(2, 2);

  std::printf("--- %s ---\n", title);
  std::printf("g = gradient push, U = server update, p = parameter return\n");
  const double t0 = 2.0 * result.mean_iteration_time;
  std::printf("%s", tl.to_ascii(kUnit, t0, t0 + 3.0 * result.mean_iteration_time).c_str());
  std::printf("iteration time: %.1f units\n\n",
              result.mean_iteration_time / kUnit);
  return result.mean_iteration_time;
}

}  // namespace

int main() {
  std::printf("== Figure 6: coarse vs fine synchronization granularity ==\n\n");
  const double coarse = run_case(false, "Fig 6(a) layer-level granularity");
  const double fine = run_case(true, "Fig 6(b) fine granularity (sliced)");
  const double compute = 6 * kUnit;
  const double comm_coarse = coarse - compute;
  const double comm_fine = fine - compute;
  std::printf("paper: parameter slicing reduces the communication cost by "
              "~30%% in this example\n");
  std::printf("measured: sync-induced delay %.1f -> %.1f units (%.0f%% "
              "reduction)\n",
              comm_coarse / kUnit, comm_fine / kUnit,
              100.0 * (1.0 - comm_fine / comm_coarse));
  return 0;
}
