// Figure 4: aggressive vs priority-based parameter synchronization on the
// paper's 3-layer cartoon model — forward and backward of each layer take
// one time unit, synchronization of each layer takes two (one unit of
// gradient propagation out, one unit of parameter propagation back).
//
// The paper's claim: with aggressive (FIFO) synchronization the delay
// between the two iterations is twice the first layer's sync time because
// of queueing induced by the later layers, and the network idles during the
// forward pass; priority-based synchronization halves the delay and spreads
// communication over both passes.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "model/zoo.h"
#include "ps/cluster.h"

namespace {

using namespace p3;

constexpr double kUnit = 0.010;  // one cartoon time unit = 10 ms

ps::ClusterConfig cartoon_config(core::SyncMethod method) {
  ps::ClusterConfig cfg;
  cfg.n_workers = 1;
  cfg.dedicated_servers = true;  // sync must cross the network
  cfg.method = method;
  // One layer = 50k params = 200 KB payload. Two time units of sync per
  // layer = 1 unit out + 1 unit back -> NIC rate = 200KB * 8 / 10ms.
  cfg.bandwidth = 200'000 * 8 / kUnit;
  cfg.rx_bandwidth = cfg.bandwidth;
  cfg.latency = 0.0;
  cfg.slice_params = 50'000;          // one slice per layer
  cfg.kvstore_threshold = 1'000'000;  // layers stay whole under baseline
  cfg.update_bytes_per_sec = 1e12;    // cartoon ignores server compute
  cfg.update_overhead = 0.0;
  // fwd = bwd = 1 unit per layer.
  cfg.fwd_times = {kUnit, kUnit, kUnit};
  cfg.bwd_times = {kUnit, kUnit, kUnit};
  return cfg;
}

double run_case(core::SyncMethod method, const char* title) {
  model::Workload w;
  w.model = model::toy_uniform(3, 50'000);
  w.batch_per_worker = 1;
  w.iter_compute_time = 6 * kUnit;

  ps::Cluster cluster(w, cartoon_config(method));
  trace::Timeline tl;
  cluster.attach_timeline(&tl);
  const auto result = cluster.run(2, 2);

  std::printf("--- %s ---\n", title);
  std::printf("one column = one time unit; F/B = fwd/bwd compute, g = "
              "gradient push, p = parameter return\n");
  // Show two steady-state iterations.
  const double t0 = 2.0 * result.mean_iteration_time;
  std::printf("%s", tl.to_ascii(kUnit, t0, t0 + 4.0 * result.mean_iteration_time).c_str());
  const double delay_units = (result.mean_iteration_time - 6 * kUnit) / kUnit;
  std::printf("iteration time: %.1f units (compute 6.0, sync-induced delay "
              "%.1f)\n\n",
              result.mean_iteration_time / kUnit, delay_units);
  return delay_units;
}

}  // namespace

int main() {
  std::printf("== Figure 4: aggressive vs priority-based synchronization ==\n\n");
  const double delay_aggressive =
      run_case(core::SyncMethod::kBaseline, "Fig 4(a) aggressive (FIFO)");
  const double delay_priority =
      run_case(core::SyncMethod::kP3, "Fig 4(b) priority-based (P3)");
  std::printf("paper: priority scheduling halves the inter-iteration delay\n");
  std::printf("measured: %.1f units -> %.1f units (%.0f%% reduction)\n",
              delay_aggressive, delay_priority,
              100.0 * (1.0 - delay_priority / delay_aggressive));
  return 0;
}
