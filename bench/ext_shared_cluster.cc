// Extension: training on a shared cluster.
//
// The paper's motivation (Sections 1 and 5.3): "P3 ... is more suitable
// than baseline on a shared network cluster where effective bandwidth
// available for a single training process is much lower than the maximum
// capacity of the network," because P3 reduces the *peak* bandwidth the
// training job demands. This bench makes that concrete: a foreign tenant
// injects Poisson background flows between random machines, and training
// throughput is measured against the tenant's offered load on a 10 Gbps
// fabric.
#include <cstdio>

#include "bench_util.h"
#include "common/options.h"
#include "model/zoo.h"

namespace {

using namespace p3;

runner::Series sweep(const model::Workload& workload, core::SyncMethod method,
                     double fabric_gbps, const std::vector<double>& loads_gbps,
                     const runner::MeasureOptions& opts) {
  runner::Series out;
  out.name = core::sync_method_name(method);
  for (double load : loads_gbps) {
    ps::ClusterConfig cfg;
    cfg.n_workers = 4;
    cfg.method = method;
    cfg.bandwidth = gbps(fabric_gbps);
    cfg.rx_bandwidth = 0;  // shared commodity fabric: symmetric NICs
    ps::Cluster cluster(workload, cfg);
    if (load > 0.0) {
      // 1 MB foreign flows (storage / shuffle traffic scale).
      runner::inject_background_traffic(cluster, gbps(load), mib(1));
    }
    out.x.push_back(load);
    out.y.push_back(cluster.run(opts.warmup, opts.measured).throughput);
  }
  return out;
}

void run_model(const char* title, const model::Workload& workload,
               double fabric_gbps, const char* csv,
               const runner::MeasureOptions& opts) {
  // Foreign load up to ~80% of the fabric rate.
  std::vector<double> loads;
  for (double f : {0.0, 0.2, 0.4, 0.6, 0.8}) loads.push_back(f * fabric_gbps);
  std::vector<runner::Series> series;
  for (auto method : {core::SyncMethod::kBaseline, core::SyncMethod::kP3}) {
    series.push_back(sweep(workload, method, fabric_gbps, loads, opts));
  }
  bench::report_series(title, "background load (Gbps)",
                       workload.model.sample_unit + "/s", series, csv);
  // P3's absolute advantage should persist across every contention level.
  const auto& base = series[0];
  const auto& p3s = series[1];
  std::printf("%s: P3 over baseline: %+.0f%% on an idle fabric, %+.0f%% "
              "under %.0f Gbps of foreign load\n\n",
              workload.model.name.c_str(),
              100.0 * (p3s.y.front() / base.y.front() - 1.0),
              100.0 * (p3s.y.back() / base.y.back() - 1.0), loads.back());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/3,
                           /*default_measured=*/8);
  const runner::MeasureOptions& m = opts.measure();

  std::printf("== Extension: shared cluster with a foreign tenant ==\n\n");
  // Fabrics sized so each model is near its scaling knee when idle.
  run_model("ResNet-50", model::workload_resnet50(), 5,
            "ext_shared_resnet50.csv", m);
  run_model("VGG-19", model::workload_vgg19(), 10, "ext_shared_vgg19.csv", m);

  std::printf("paper: P3's lower peak-bandwidth demand makes it \"more "
              "suitable than baseline on a shared network cluster\"\n");
  return 0;
}
