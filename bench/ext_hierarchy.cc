// Extension: rack-scale hierarchical topologies — oversubscribed ToR
// uplinks, rack-local aggregation, and hierarchical (3-level) allreduce.
//
// The paper's cluster (like most PS evaluations) assumes a non-blocking
// fabric: every NIC pair talks at line rate. Real training pods are racks
// behind a ToR switch whose spine uplink is oversubscribed — k machines
// share k*NIC/oversubscription bits/s — so cross-rack pushes contend at a
// *shared switch port*, not just at the sender's NIC. This bench puts
// eight colocated worker+server nodes in two racks of four and sweeps:
//
//   fabric        flat (non-blocking), 2:1, 4:1 ToR oversubscription
//   aggregation   off (every push crosses the spine individually) vs on
//                 (rack-local pre-reduce: one combined push per rack up,
//                 one parameter copy per rack down — Parameter Hub's
//                 rack-scale design)
//
// for all five sync methods, plus the allreduce extension's answer to the
// same problem: a hierarchical 3-level collective (intra-rack reduce, ring
// across rack leaders, intra-rack broadcast) vs running the flat ring over
// the oversubscribed fabric.
//
// The headline invariants, gated by exit status for CI:
//   * `uplink_priority_inversions` reads 0 in every cell — the ToR ports
//     serve strictly by priority, so P3's urgent slices can never be
//     blocked behind queued bulk (the inversion counter is the proof);
//   * at 4:1 oversubscription rack aggregation recovers measurable
//     throughput for at least one method (it cuts spine crossings ~4x);
//   * the 3-level collective moves strictly fewer bytes across the ToR
//     uplinks than the flat ring on the same topology, for every schedule.
//
// Each sweep point owns a private cluster, so the grid fans across the
// ParallelExecutor; identical seeds reproduce identical CSVs at any
// --threads value, and the CI chaos job diffs the --smoke output against
// checked-in goldens.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "allreduce/ring.h"
#include "bench_util.h"
#include "model/zoo.h"

namespace {

using namespace p3;

net::Topology two_racks(double oversub) {
  net::Topology topo;
  topo.racks = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  topo.oversubscription = oversub;
  return topo;
}

struct Point {
  core::SyncMethod method;
  double oversub;  // 0 = flat fabric (no topology)
  bool agg;
};

ps::ClusterConfig point_config(const Point& p) {
  ps::ClusterConfig cfg;
  cfg.n_workers = 8;
  cfg.method = p.method;
  cfg.bandwidth = gbps(10);
  cfg.rx_bandwidth = gbps(100);
  if (p.oversub > 0.0) {
    cfg.topology = two_racks(p.oversub);
    cfg.rack_aggregation = p.agg;
  }
  return cfg;
}

ps::RunResult run_once(const model::Workload& workload,
                       const ps::ClusterConfig& cfg, int warmup,
                       int measured) {
  ps::Cluster cluster(workload, cfg);
  ps::RunResult result = cluster.run(warmup, measured);
  cluster.drain();
  return result;
}

const char* fabric_name(double oversub) {
  if (oversub <= 0.0) return "flat";
  if (oversub == 2.0) return "2:1";
  if (oversub == 4.0) return "4:1";
  return "?";
}

struct ArCell {
  double throughput = 0.0;
  Bytes uplink_bytes = 0;
};

ArCell run_allreduce(const model::Workload& workload, ar::ArSchedule schedule,
                     int variant, int warmup, int measured) {
  // variant: 0 = flat ring, 1 = flat ring over the 4:1 fabric (wrap-around
  // chunks queue at the ToR uplink every step), 2 = 3-level hierarchical
  // collective on the same 4:1 fabric.
  ar::ArConfig cfg;
  cfg.n_workers = 8;
  cfg.schedule = schedule;
  cfg.bandwidth = gbps(10);
  cfg.rx_bandwidth = gbps(100);
  if (variant > 0) cfg.topology = two_racks(4.0);
  cfg.three_level = variant == 2;
  ar::ArCluster cluster(workload, cfg);
  ArCell cell;
  cell.throughput = cluster.run(warmup, measured).throughput;
  cell.uplink_bytes = cluster.network().tor_uplink_bytes();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/2,
                           /*default_measured=*/8);
  const int warmup = opts.measure().warmup;
  const int measured = opts.measure().measured;
  const int threads = opts.measure().threads;

  std::printf("== Extension: rack-scale hierarchy (ResNet-50, 8 workers in "
              "2 racks of 4, 10 Gbps NICs, colocated servers) ==\n\n");
  const auto workload = model::workload_resnet50();
  const std::vector<core::SyncMethod> methods = {
      core::SyncMethod::kBaseline, core::SyncMethod::kSlicingOnly,
      core::SyncMethod::kP3, core::SyncMethod::kTensorFlowStyle,
      core::SyncMethod::kPoseidonWFBP};
  const std::vector<double> fabrics = {0.0, 2.0, 4.0};

  std::vector<Point> grid;
  for (auto method : methods) {
    for (double oversub : fabrics) {
      grid.push_back({method, oversub, false});
      // Rack aggregation needs a real topology to pre-reduce within.
      if (oversub > 0.0) grid.push_back({method, oversub, true});
    }
  }

  std::vector<std::function<ps::RunResult()>> jobs;
  jobs.reserve(grid.size());
  for (const Point& p : grid) {
    jobs.push_back([&workload, cfg = point_config(p), warmup, measured] {
      return run_once(workload, cfg, warmup, measured);
    });
  }
  runner::ParallelExecutor executor(threads);
  const auto results = executor.map(std::move(jobs));

  // Throughput series (aggregation-off cells): one line per method,
  // oversubscription on the x axis (1 = flat / non-blocking).
  std::vector<runner::Series> tput;
  {
    std::size_t i = 0;
    for (auto method : methods) {
      runner::Series s;
      s.name = core::sync_method_name(method);
      for (double oversub : fabrics) {
        s.x.push_back(oversub <= 0.0 ? 1.0 : oversub);
        s.y.push_back(results[i].throughput);
        i += oversub > 0.0 ? 2 : 1;  // skip the aggregation-on twin
      }
      tput.push_back(std::move(s));
    }
  }
  bench::report_series(
      "throughput vs ToR oversubscription (rack aggregation off)",
      "oversubscription", "images/s", tput, "ext_hierarchy.csv");

  // Hierarchy-counter table: uplink traffic and the aggregation mechanics
  // behind the throughput numbers.
  const std::vector<std::string> header = {
      "method",        "fabric",    "agg",      "uplink_MiB",
      "overtakes",     "inversions", "combined", "param_bcast",
      "fallback",      "images/s"};
  Table table(header);
  CsvWriter csv(bench::out("ext_hierarchy_counters.csv"), header);
  int inversion_violations = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Point& p = grid[i];
    const ps::RunResult& r = results[i];
    if (r.uplink_priority_inversions != 0) ++inversion_violations;
    const std::vector<std::string> row = {
        core::sync_method_name(p.method),
        fabric_name(p.oversub),
        p.agg ? "on" : "off",
        Table::num(static_cast<double>(r.tor_uplink_bytes) / (1024.0 * 1024.0),
                   1),
        std::to_string(r.uplink_overtakes),
        std::to_string(r.uplink_priority_inversions),
        std::to_string(r.agg_combined_pushes),
        std::to_string(r.agg_param_broadcasts),
        std::to_string(r.agg_fallback_pushes),
        Table::num(r.throughput, 2)};
    table.add_row(row);
    csv.row(row);
  }
  std::printf("== hierarchy counters ==\n");
  table.print();
  std::printf("(csv: %s)\n\n", bench::out("ext_hierarchy_counters.csv").c_str());

  // Rack-aggregation recovery at the most oversubscribed fabric.
  double best_recovery = -1.0;
  std::string best_method;
  {
    std::size_t i = 0;
    for (auto method : methods) {
      double off = 0.0;
      double on = 0.0;
      for (double oversub : fabrics) {
        if (oversub == 4.0) {
          off = results[i].throughput;
          on = results[i + 1].throughput;
        }
        i += oversub > 0.0 ? 2 : 1;
      }
      const double recovery = (on - off) / off;
      std::printf("%s: rack aggregation at 4:1 changes throughput by "
                  "%+.1f%% (%.2f -> %.2f images/s)\n",
                  core::sync_method_name(method).c_str(), recovery * 100.0,
                  off, on);
      if (recovery > best_recovery) {
        best_recovery = recovery;
        best_method = core::sync_method_name(method);
      }
    }
  }
  std::printf("\n");

  // Allreduce on the same fabric: flat ring vs ring-over-topology vs the
  // hierarchical 3-level collective.
  const std::vector<ar::ArSchedule> schedules = {
      ar::ArSchedule::kPerLayer, ar::ArSchedule::kFused,
      ar::ArSchedule::kPrioritySliced};
  std::vector<std::function<ArCell()>> ar_jobs;
  for (auto schedule : schedules) {
    for (int variant = 0; variant < 3; ++variant) {
      ar_jobs.push_back([&workload, schedule, variant, warmup, measured] {
        return run_allreduce(workload, schedule, variant, warmup, measured);
      });
    }
  }
  const auto ar_cells = executor.map(std::move(ar_jobs));

  std::vector<runner::Series> ar_tput;
  int uplink_violations = 0;
  for (std::size_t s = 0; s < schedules.size(); ++s) {
    runner::Series series;
    series.name = ar::ar_schedule_name(schedules[s]);
    for (int variant = 0; variant < 3; ++variant) {
      const ArCell& cell = ar_cells[3 * s + static_cast<std::size_t>(variant)];
      series.x.push_back(static_cast<double>(variant));
      series.y.push_back(cell.throughput);
    }
    // The whole point of going hierarchical: the 3-level collective must
    // cross the spine with strictly fewer bytes than the flat ring did.
    const Bytes ring_up = ar_cells[3 * s + 1].uplink_bytes;
    const Bytes tree_up = ar_cells[3 * s + 2].uplink_bytes;
    std::printf("%s @ 4:1: ToR uplink bytes %.1f MiB (ring) vs %.1f MiB "
                "(3-level)\n",
                series.name.c_str(),
                static_cast<double>(ring_up) / (1024.0 * 1024.0),
                static_cast<double>(tree_up) / (1024.0 * 1024.0));
    if (tree_up >= ring_up) ++uplink_violations;
    ar_tput.push_back(std::move(series));
  }
  std::printf("\n");
  bench::report_series(
      "allreduce throughput (0 = flat ring, 1 = ring @ 4:1, 2 = 3-level @ "
      "4:1)",
      "variant", "images/s", ar_tput, "ext_hierarchy_allreduce.csv");

  std::printf("an oversubscribed ToR uplink is a *shared* bottleneck: all "
              "four of a rack's senders queue at one port, so cross-rack "
              "pushes serialize behind each other. Rack aggregation folds "
              "a rack's gradients before they reach that port (one push up, "
              "one parameter copy down), and the 3-level collective confines "
              "all but the leader ring to intra-rack links.\n");

  bool failed = false;
  if (inversion_violations > 0) {
    std::fprintf(stderr,
                 "FAIL: %d cell(s) observed a priority inversion at a "
                 "switch port\n",
                 inversion_violations);
    failed = true;
  }
  if (best_recovery <= 0.0) {
    std::fprintf(stderr,
                 "FAIL: rack aggregation recovered no throughput at 4:1 "
                 "oversubscription (best %+.1f%%)\n",
                 best_recovery * 100.0);
    failed = true;
  }
  if (uplink_violations > 0) {
    std::fprintf(stderr,
                 "FAIL: %d schedule(s) saw the 3-level collective move >= "
                 "the flat ring's uplink bytes\n",
                 uplink_violations);
    failed = true;
  }
  if (failed) return 1;
  std::printf("hierarchy invariants held: 0 port priority inversions, rack "
              "aggregation recovers %+.0f%% at 4:1 (%s), and the 3-level "
              "collective cut uplink bytes for all %zu schedules.\n",
              best_recovery * 100.0, best_method.c_str(), schedules.size());
  return 0;
}
