// google-benchmark microbenchmarks for the building blocks: event queue,
// coroutine queues, slicing, utilization monitor, tensor ops, DGC top-k.
#include <benchmark/benchmark.h>

#include "core/slicing.h"
#include "model/zoo.h"
#include "net/monitor.h"
#include "sim/queue.h"
#include "sim/simulator.h"
#include "train/dgc.h"
#include "train/tensor.h"

namespace {

using namespace p3;

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < n; ++i) {
      sim.schedule(static_cast<double>(i % 97), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1'000)->Arg(100'000);

void BM_CoroutinePingPong(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Queue<int> q(sim);
    sim.spawn([](sim::Queue<int>& queue, int count) -> sim::Task {
      for (int i = 0; i < count; ++i) {
        int v = co_await queue.pop();
        benchmark::DoNotOptimize(v);
      }
    }(q, n));
    for (int i = 0; i < n; ++i) q.push(i);
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CoroutinePingPong)->Arg(10'000);

void BM_PartitionP3(benchmark::State& state) {
  const auto m = model::vgg19();
  for (auto _ : state) {
    auto part = core::partition_p3(m, 4, state.range(0));
    benchmark::DoNotOptimize(part.num_slices());
  }
}
BENCHMARK(BM_PartitionP3)->Arg(50'000)->Arg(1'000);

void BM_PartitionKvstore(benchmark::State& state) {
  const auto m = model::vgg19();
  for (auto _ : state) {
    Rng rng(1);
    auto part = core::partition_kvstore(m, 4, 1'000'000, rng);
    benchmark::DoNotOptimize(part.num_slices());
  }
}
BENCHMARK(BM_PartitionKvstore);

void BM_MonitorRecord(benchmark::State& state) {
  net::UtilizationMonitor mon(4, 0.010);
  double t = 0.0;
  for (auto _ : state) {
    mon.record(0, net::Direction::kOut, t, t + 0.035, 1'000'000);
    t += 0.01;
  }
  benchmark::DoNotOptimize(mon.total_bytes(0, net::Direction::kOut));
}
BENCHMARK(BM_MonitorRecord);

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  train::Tensor a = train::Tensor::he_normal(n, n, rng);
  train::Tensor b = train::Tensor::he_normal(n, n, rng);
  train::Tensor out(n, n);
  for (auto _ : state) {
    train::matmul(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128);

void BM_DgcCompress(benchmark::State& state) {
  std::vector<train::Param> params(1);
  params[0].value = train::Tensor(1, 100'000);
  params[0].grad = train::Tensor(1, 100'000);
  Rng rng(2);
  for (auto& v : params[0].grad.raw()) {
    v = static_cast<float>(rng.normal());
  }
  train::DgcConfig cfg;
  cfg.sparsity = 0.999;
  cfg.warmup_epochs = 0;
  train::DgcCompressor comp(params, cfg);
  for (auto _ : state) {
    auto sparse = comp.compress(params, 100);
    benchmark::DoNotOptimize(sparse[0].indices.data());
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_DgcCompress);

}  // namespace

BENCHMARK_MAIN();
