// Figure 12: P3 throughput vs parameter slice size for ResNet-50, VGG-19
// and Sockeye (4 workers, constrained bandwidth).
//
// Paper observation: throughput rises as slices shrink, peaks around
// 50,000 parameters, then falls as per-packet overhead dominates.
#include <cstdio>

#include "bench_util.h"
#include "common/options.h"
#include "model/zoo.h"

namespace {

using namespace p3;

void run_model(const char* title, const model::Workload& workload,
               double bandwidth_gbps, std::int64_t min_size, const char* csv,
               const runner::MeasureOptions& opts) {
  ps::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.bandwidth = gbps(bandwidth_gbps);
  cfg.rx_bandwidth = gbps(100);
  // The paper sweeps 1e3..1e6; for the larger models the smallest sizes are
  // capped so one sweep point stays within millions (not tens of millions)
  // of simulated messages.
  std::vector<std::int64_t> sizes;
  for (std::int64_t size : {1'000, 2'000, 5'000, 10'000, 20'000, 50'000,
                            100'000, 200'000, 500'000, 1'000'000}) {
    if (size >= min_size) sizes.push_back(size);
  }
  auto series = runner::slice_size_sweep(workload, cfg, sizes, opts);
  series.name = "P3";
  bench::report_series(title, "slice size (params)",
                workload.model.sample_unit + "/s", {series}, csv);

  // Locate the measured optimum.
  std::size_t best = 0;
  for (std::size_t i = 1; i < series.y.size(); ++i) {
    if (series.y[i] > series.y[best]) best = i;
  }
  std::printf("%s: best slice size measured = %.0f params\n\n",
              workload.model.name.c_str(), series.x[best]);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/3,
                           /*default_measured=*/8);
  const runner::MeasureOptions& m = opts.measure();

  std::printf("== Figure 12: slice size vs throughput (P3, 4 workers) ==\n\n");
  run_model("Fig 12(a) ResNet-50", model::workload_resnet50(), 4, 1'000,
            "fig12_resnet50.csv", m);
  run_model("Fig 12(b) VGG-19", model::workload_vgg19(), 15, 5'000,
            "fig12_vgg19.csv", m);
  run_model("Fig 12(c) Sockeye", model::workload_sockeye(), 4, 2'000,
            "fig12_sockeye.csv", m);

  std::printf("paper: throughput peaks at ~50,000 parameters per slice\n");
  return 0;
}
