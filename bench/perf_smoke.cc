// Self-timing harness for the two perf claims this repo makes about its own
// substrate (BENCH_perf.json is produced by this binary):
//
//   1. event-loop throughput — the slab/batched simulator vs a faithful
//      in-process replica of the previous loop (std::function events in a
//      std::priority_queue, copy-out of top()). Shared-host wall clocks are
//      noisy, so the two loops run interleaved, rep by rep, and the ratio is
//      taken best-of-N: adjacent measurements see the same machine weather.
//   2. sweep fan-out — wall time of a toy bandwidth_sweep at --threads 1 vs
//      --threads N, plus a check that both produce bit-identical Series
//      (the determinism guarantee the parallel runner documents).
//   3. observability guard — a cluster run with a tracer attached but
//      disabled must stay within 2% of the same run with no tracer at all
//      (src/obs promises "pay only for what you record").
//   4. critpath guard — causal-graph construction + blame walk over a
//      recorded trace must sustain a fixed events/sec floor, so the
//      critical-path engine stays usable on full-size traces.
//
// Usage: perf_smoke [--events N] [--reps R] [--threads N] [--smoke]
//                   [--out results/BENCH_perf.json]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "model/zoo.h"
#include "obs/critpath.h"
#include "obs/tracer.h"
#include "ps/cluster.h"
#include "sim/simulator.h"

namespace {

using namespace p3;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// --------------------------------------------------------------------------
// Legacy event loop replica (the pre-optimization simulator core, kept here
// verbatim-in-spirit as the comparison baseline: type-erased std::function
// callbacks, binary priority_queue of 48-byte events, copy of top() per pop).

class LegacyLoop {
 public:
  void schedule(double dt, std::function<void()> fn) {
    events_.push(Event{now_ + dt, next_seq_++, std::move(fn)});
  }
  void run() {
    while (!events_.empty()) {
      Event ev = events_.top();  // top() is const: copy, as the old loop did
      events_.pop();
      now_ = ev.time;
      ++executed_;
      ev.fn();
    }
  }
  double now() const { return now_; }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Order {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Order> events_;
};

// The measured workload, identical for both loops: `kChains` self-
// rescheduling callback chains with LCG-pseudorandom delays — a steady-state
// queue depth of kChains and an alloc/move pattern like the protocol's timer
// and delivery events. The LCG keeps the event schedule identical across
// loops and reps.
constexpr int kChains = 64;

struct ChainState {
  std::uint64_t rng;
  std::uint64_t remaining;
};

double next_delay(std::uint64_t& rng) {
  rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
  return 1e-6 * static_cast<double>((rng >> 33) & 0xFFFF);
}

template <typename Loop>
double time_loop(Loop& loop, std::uint64_t total_events) {
  std::vector<ChainState> chains(kChains);
  const std::uint64_t per_chain = total_events / kChains;
  const auto t0 = Clock::now();
  for (int c = 0; c < kChains; ++c) {
    chains[c] = {static_cast<std::uint64_t>(c) * 0x9E3779B97F4A7C15ULL + 1,
                 per_chain};
    struct Step {
      Loop* loop;
      ChainState* state;
      void operator()() const {
        if (--state->remaining == 0) return;
        loop->schedule(next_delay(state->rng), *this);
      }
    };
    loop.schedule(next_delay(chains[c].rng), Step{&loop, &chains[c]});
  }
  loop.run();
  return seconds_since(t0);
}

struct LoopResult {
  double legacy_evps = 0.0;
  double optimized_evps = 0.0;
  double speedup = 0.0;
};

LoopResult bench_event_loop(std::uint64_t events, int reps) {
  const double ev = static_cast<double>(events);
  LoopResult r;
  for (int rep = 0; rep < reps; ++rep) {
    // Interleave so both loops sample the same host conditions.
    LegacyLoop legacy;
    const double t_legacy = time_loop(legacy, events);
    sim::Simulator optimized;
    const double t_opt = time_loop(optimized, events);
    r.legacy_evps = std::max(r.legacy_evps, ev / t_legacy);
    r.optimized_evps = std::max(r.optimized_evps, ev / t_opt);
    std::printf("  rep %d: legacy %.2fM ev/s, optimized %.2fM ev/s\n", rep + 1,
                ev / t_legacy / 1e6, ev / t_opt / 1e6);
  }
  r.speedup = r.optimized_evps / r.legacy_evps;
  return r;
}

// --------------------------------------------------------------------------
// Sweep fan-out: the same toy bandwidth sweep serial vs parallel.

model::Workload toy_workload() {
  model::Workload w;
  w.model = model::toy_uniform(8, 500'000);
  w.batch_per_worker = 4;
  w.iter_compute_time = 0.010;
  return w;
}

std::vector<runner::Series> run_sweep(int threads, int measured) {
  ps::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.bandwidth = gbps(2);
  runner::MeasureOptions opts;
  opts.warmup = 1;
  opts.measured = measured;
  opts.threads = threads;
  return runner::bandwidth_sweep(
      toy_workload(), cfg,
      {core::SyncMethod::kBaseline, core::SyncMethod::kSlicingOnly,
       core::SyncMethod::kP3},
      {0.5, 1, 2, 3, 4, 6, 8, 12}, opts);
}

bool series_identical(const std::vector<runner::Series>& a,
                      const std::vector<runner::Series>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].x != b[i].x || a[i].y != b[i].y) return false;  // bitwise ==
  }
  return true;
}

// --------------------------------------------------------------------------
// Observability guard: every tracer hook in the protocol sits behind an
// `enabled()` branch, so an attached-but-disabled tracer must cost nearly
// nothing. Same interleaved best-of-N scheme as the event-loop section.

constexpr double kObsOverheadBudget = 0.02;

struct ObsResult {
  double baseline_evps = 0.0;  ///< no tracer attached
  double disabled_evps = 0.0;  ///< tracer attached, enabled(false)
  double overhead = 0.0;       ///< 1 - disabled/baseline (negative = noise)
  bool pass = false;
};

double time_cluster_run(obs::Tracer* tracer, int measured) {
  ps::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.bandwidth = gbps(2);
  ps::Cluster c(toy_workload(), cfg);
  if (tracer != nullptr) c.attach_tracer(tracer);
  const auto t0 = Clock::now();
  c.run(1, measured);
  return static_cast<double>(c.simulator().events_executed()) /
         seconds_since(t0);
}

ObsResult bench_obs_overhead(int measured, int reps) {
  ObsResult r;
  for (int rep = 0; rep < reps; ++rep) {
    const double base = time_cluster_run(nullptr, measured);
    obs::Tracer tracer;
    tracer.set_enabled(false);
    const double disabled = time_cluster_run(&tracer, measured);
    r.baseline_evps = std::max(r.baseline_evps, base);
    r.disabled_evps = std::max(r.disabled_evps, disabled);
    std::printf("  rep %d: no tracer %.2fM ev/s, disabled tracer %.2fM ev/s\n",
                rep + 1, base / 1e6, disabled / 1e6);
  }
  r.overhead = 1.0 - r.disabled_evps / r.baseline_evps;
  r.pass = r.overhead < kObsOverheadBudget;
  return r;
}

// --------------------------------------------------------------------------
// Critpath guard: graph construction + the blame walk are offline analysis,
// but a full fig08-style trace holds ~10^5..10^6 events, so the engine must
// stay comfortably above a fixed floor to be usable in CI and notebooks.

constexpr double kCritpathFloorEvps = 50'000.0;

struct CritpathResult {
  double trace_events = 0.0;
  double evps = 0.0;  ///< best-of-reps analyze throughput
  bool well_formed = false;
  bool pass = false;
};

CritpathResult bench_critpath(int measured, int reps) {
  ps::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.bandwidth = gbps(2);
  ps::Cluster cluster(toy_workload(), cfg);
  obs::Tracer tracer;
  cluster.attach_tracer(&tracer);
  cluster.run(1, measured);

  CritpathResult r;
  r.trace_events = static_cast<double>(tracer.events().size());
  r.well_formed = true;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = Clock::now();
    const obs::BlameReport blame = obs::analyze_critical_path(tracer, 1);
    const double dt = seconds_since(t0);
    if (!blame.problems.empty() || blame.iterations.empty()) {
      r.well_formed = false;
    }
    r.evps = std::max(r.evps, r.trace_events / dt);
    std::printf("  rep %d: %.0f trace events analyzed at %.2fM ev/s\n",
                rep + 1, r.trace_events, r.trace_events / dt / 1e6);
  }
  r.pass = r.well_formed && r.evps >= kCritpathFloorEvps;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv, {{"events", "2000000"},
                            {"reps", "5"},
                            {"threads", "0"},
                            {"sweep-measured", "40"},
                            {"smoke", ""},
                            {"out", ""}});
  const bool smoke = opts.flag("smoke");
  const std::uint64_t events =
      smoke ? 200'000 : static_cast<std::uint64_t>(opts.integer("events"));
  const int reps = smoke ? 2 : static_cast<int>(opts.integer("reps"));
  const int sweep_measured =
      smoke ? 2 : static_cast<int>(opts.integer("sweep-measured"));
  int threads = static_cast<int>(opts.integer("threads"));
  if (threads <= 0) threads = runner::default_threads();
  // Even on a single-core host, compare against a real 2-thread pool so the
  // parallel path (and its determinism) is what gets measured, not the
  // inline fallback.
  if (threads < 2) threads = 2;
  const unsigned cores = std::thread::hardware_concurrency();

  std::printf("== perf smoke: event loop (%llu events x %d reps, "
              "interleaved) ==\n",
              static_cast<unsigned long long>(events), reps);
  const LoopResult loop = bench_event_loop(events, reps);
  std::printf("event loop: legacy %.2fM ev/s, optimized %.2fM ev/s "
              "(best of %d) -> %.2fx\n\n",
              loop.legacy_evps / 1e6, loop.optimized_evps / 1e6, reps,
              loop.speedup);

  std::printf("== perf smoke: sweep fan-out (toy bandwidth sweep, "
              "1 vs %d threads) ==\n", threads);
  auto t0 = Clock::now();
  const auto serial = run_sweep(1, sweep_measured);
  const double t_serial = seconds_since(t0);
  t0 = Clock::now();
  const auto parallel = run_sweep(threads, sweep_measured);
  const double t_parallel = seconds_since(t0);
  const bool identical = series_identical(serial, parallel);
  const double sweep_speedup = t_serial / t_parallel;
  std::printf("sweep: serial %.2fs, %d threads %.2fs -> %.2fx, outputs %s\n\n",
              t_serial, threads, t_parallel, sweep_speedup,
              identical ? "bit-identical" : "DIFFER (BUG)");

  std::printf("== perf smoke: disabled-tracing overhead (budget %.0f%%) ==\n",
              100.0 * kObsOverheadBudget);
  const ObsResult obs = bench_obs_overhead(sweep_measured, reps);
  std::printf("obs: no tracer %.2fM ev/s, disabled tracer %.2fM ev/s "
              "(best of %d) -> %+.2f%% overhead, %s\n\n",
              obs.baseline_evps / 1e6, obs.disabled_evps / 1e6, reps,
              100.0 * obs.overhead,
              obs.pass ? "within budget" : "OVER BUDGET (BUG)");

  std::printf("== perf smoke: critpath engine (floor %.0fk ev/s) ==\n",
              kCritpathFloorEvps / 1e3);
  const CritpathResult critpath = bench_critpath(sweep_measured, reps);
  std::printf("critpath: %.0f-event trace analyzed at %.2fM ev/s "
              "(best of %d) -> %s\n\n",
              critpath.trace_events, critpath.evps / 1e6, reps,
              critpath.pass ? "above floor"
                            : "BELOW FLOOR OR MALFORMED (BUG)");

  const std::string out_path =
      opts.str("out").empty() ? bench::out("BENCH_perf.json") : opts.str("out");
  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"host\": {\"hardware_concurrency\": %u},\n"
                 "  \"config\": {\"events\": %llu, \"reps\": %d, "
                 "\"sweep_threads\": %d, \"sweep_measured\": %d},\n"
                 "  \"event_loop\": {\n"
                 "    \"legacy_events_per_sec\": %.0f,\n"
                 "    \"optimized_events_per_sec\": %.0f,\n"
                 "    \"speedup\": %.3f\n"
                 "  },\n"
                 "  \"sweep\": {\n"
                 "    \"serial_seconds\": %.3f,\n"
                 "    \"parallel_seconds\": %.3f,\n"
                 "    \"speedup\": %.3f,\n"
                 "    \"outputs_identical\": %s\n"
                 "  },\n"
                 "  \"obs\": {\n"
                 "    \"baseline_events_per_sec\": %.0f,\n"
                 "    \"disabled_tracer_events_per_sec\": %.0f,\n"
                 "    \"overhead\": %.4f,\n"
                 "    \"budget\": %.2f,\n"
                 "    \"within_budget\": %s\n"
                 "  },\n"
                 "  \"critpath\": {\n"
                 "    \"trace_events\": %.0f,\n"
                 "    \"analyze_events_per_sec\": %.0f,\n"
                 "    \"floor\": %.0f,\n"
                 "    \"above_floor\": %s\n"
                 "  }\n"
                 "}\n",
                 cores, static_cast<unsigned long long>(events), reps, threads,
                 sweep_measured, loop.legacy_evps, loop.optimized_evps,
                 loop.speedup, t_serial, t_parallel, sweep_speedup,
                 identical ? "true" : "false", obs.baseline_evps,
                 obs.disabled_evps, obs.overhead, kObsOverheadBudget,
                 obs.pass ? "true" : "false", critpath.trace_events,
                 critpath.evps, kCritpathFloorEvps,
                 critpath.pass ? "true" : "false");
    std::fclose(f);
    std::printf("(json: %s)\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  return identical && obs.pass && critpath.pass ? 0 : 2;
}
