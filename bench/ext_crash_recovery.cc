// Extension: crash-recovery bench — elastic membership under process death.
//
// The paper's cluster assumes every worker and server survives the run; this
// bench measures what the replicated parameter server pays when they do not.
// It sweeps (method x replication factor x number of crashed nodes) on
// ResNet-50 with colocated servers: crashed nodes lose their process state,
// restart after 300 ms, rehydrate server shards from periodic checkpoints
// plus a delta from the surviving chain leader, and rejoin as workers under
// the bounded-staleness window. Reported alongside throughput are the
// recovery counters (failovers, rejoins, rehydrations, checkpoints, stale
// re-push replies) so regressions in the recovery paths are visible, not
// just their cost.
//
// Each sweep point owns a private cluster, so the grid fans across the
// ParallelExecutor; results return in submission order and identical seeds
// reproduce identical CSVs at any --threads value — the zero-crash rows are
// the determinism canary the CI chaos job diffs against checked-in goldens.
//
// Expected shape: replication buys survival, not speed — every completed
// round pays a commit barrier to R-1 backups, so fault-free throughput dips
// as R grows; crashes cost a suspicion timeout plus the re-push of the open
// round, and P3's slicing keeps that re-push small.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "model/zoo.h"

namespace {

using namespace p3;

struct Point {
  core::SyncMethod method;
  int replication;
  int crashes;
};

ps::ClusterConfig point_config(const Point& p) {
  ps::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.method = p.method;
  cfg.bandwidth = gbps(10);
  cfg.rx_bandwidth = gbps(100);
  cfg.replication = p.replication;
  cfg.checkpoint_period = 0.5;
  cfg.max_sim_time = 600.0;
  // Staggered restarting crashes: each victim is back 300 ms later, and the
  // second crash waits for the first revenant so no shard group ever loses
  // every replica (which would — correctly — abort the run).
  if (p.crashes >= 1) cfg.faults.crashes.push_back({1, 0.3, 0.3});
  if (p.crashes >= 2) cfg.faults.crashes.push_back({2, 0.9, 0.3});
  return cfg;
}

ps::RunResult run_once(const model::Workload& workload,
                       const ps::ClusterConfig& cfg, int warmup,
                       int measured) {
  ps::Cluster cluster(workload, cfg);
  ps::RunResult result = cluster.run(warmup, measured);
  cluster.drain();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/2,
                           /*default_measured=*/8);
  const int warmup = opts.measure().warmup;
  const int measured = opts.measure().measured;
  const int threads = opts.measure().threads;

  std::printf("== Extension: crash recovery (ResNet-50, 4 workers, "
              "10 Gbps, colocated replicated servers) ==\n\n");
  const auto workload = model::workload_resnet50();
  const std::vector<core::SyncMethod> methods = {core::SyncMethod::kBaseline,
                                                 core::SyncMethod::kP3};
  const std::vector<int> replications = {2, 3};
  const std::vector<int> crash_counts = {0, 1, 2};

  std::vector<Point> grid;
  for (auto method : methods) {
    for (int r : replications) {
      for (int k : crash_counts) grid.push_back({method, r, k});
    }
  }

  std::vector<std::function<ps::RunResult()>> jobs;
  jobs.reserve(grid.size());
  for (const Point& p : grid) {
    jobs.push_back([&workload, cfg = point_config(p), warmup, measured] {
      return run_once(workload, cfg, warmup, measured);
    });
  }
  runner::ParallelExecutor executor(threads);
  const auto results = executor.map(std::move(jobs));

  // Throughput series: one line per (method, R), crashes on the x axis.
  std::vector<runner::Series> tput;
  {
    std::size_t i = 0;
    for (auto method : methods) {
      for (int r : replications) {
        runner::Series s;
        s.name = core::sync_method_name(method) + " R=" + std::to_string(r);
        for (int k : crash_counts) {
          s.x.push_back(static_cast<double>(k));
          s.y.push_back(results[i++].throughput);
        }
        tput.push_back(std::move(s));
      }
    }
  }
  bench::report_series("throughput under staggered restarting crashes",
                       "crashed nodes", "images/s", tput,
                       "ext_crash_recovery.csv");

  // Recovery-counter table: the mechanics behind the throughput numbers.
  const std::vector<std::string> header = {
      "method",     "replication", "crashes",     "restarts",
      "failovers",  "rejoins",     "rehydrations", "checkpoints",
      "stale_push", "images/s"};
  Table table(header);
  CsvWriter csv(bench::out("ext_crash_recovery_counters.csv"), header);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Point& p = grid[i];
    const ps::RunResult& r = results[i];
    const std::vector<std::string> row = {
        core::sync_method_name(p.method),
        std::to_string(p.replication),
        std::to_string(r.crashes),
        std::to_string(r.restarts),
        std::to_string(r.failovers),
        std::to_string(r.worker_rejoins),
        std::to_string(r.rehydrations),
        std::to_string(r.checkpoints_written),
        std::to_string(r.stale_pushes),
        Table::num(r.throughput, 2)};
    table.add_row(row);
    csv.row(row);
  }
  std::printf("== recovery counters ==\n");
  table.print();
  std::printf("(csv: %s)\n\n",
              bench::out("ext_crash_recovery_counters.csv").c_str());

  bench::report_speedup("ResNet-50 under crashes @ R=2", tput[0], tput[2]);
  std::printf("replication trades fault-free throughput (commit barrier to "
              "R-1 backups) for bounded recovery: a crashed node costs one "
              "suspicion timeout plus the re-push of the open round, and "
              "the restarted process rehydrates from checkpoint + leader "
              "delta instead of replaying history.\n");
  return 0;
}
