// Extension: elastic scale-out bench — admit a node mid-run under
// lease-based leadership.
//
// The paper's cluster is fixed for the whole run; this bench measures what
// the replicated parameter server pays (and gains) when it is not. It
// sweeps (method x scenario) on ResNet-50 with colocated replicated
// servers and lease-based leadership armed:
//
//   static      fixed membership, leases on — the cost floor
//   join        a fresh worker+server node joins at 0.3 s; the planner
//               hands it one shard group, the donor migrates state behind
//               a commit barrier, and the worker set grows to five
//   join+crash  the join plus a staggered crash/restart of a base node —
//               admission, migration and lease failover interleaved
//
// Alongside throughput it reports the elastic counters (joins, migrations,
// migrated bytes, lease renewals/expiries, supersessions, failovers) and
// asserts the headline lease invariant: `dual_primary_windows` must read 0
// in every cell — the binary exits 1 otherwise, so CI gates on the
// no-split-view guarantee, not just on golden CSV bytes.
//
// Each sweep point owns a private cluster, so the grid fans across the
// ParallelExecutor; identical seeds reproduce identical CSVs at any
// --threads value, and the CI chaos job diffs the --smoke output against
// checked-in goldens.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "model/zoo.h"

namespace {

using namespace p3;

enum class Scenario { kStatic = 0, kJoin = 1, kJoinCrash = 2 };

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kStatic: return "static";
    case Scenario::kJoin: return "join";
    case Scenario::kJoinCrash: return "join+crash";
  }
  return "?";
}

struct Point {
  core::SyncMethod method;
  Scenario scenario;
};

ps::ClusterConfig point_config(const Point& p) {
  ps::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.method = p.method;
  cfg.bandwidth = gbps(10);
  cfg.rx_bandwidth = gbps(100);
  cfg.replication = 2;
  cfg.checkpoint_period = 0.5;
  cfg.max_sim_time = 600.0;
  // Leases in every cell: detection still uses the 60 ms suspicion
  // threshold, but a successor may only act once the 250 ms lease expires.
  cfg.faults.lease_duration = 0.25;
  if (p.scenario != Scenario::kStatic) {
    cfg.faults.joins.push_back({4, 0.3});
  }
  if (p.scenario == Scenario::kJoinCrash) {
    // Base node 1 dies at 0.9 s and is back 300 ms later — while the
    // cluster is already digesting the admission.
    cfg.faults.crashes.push_back({1, 0.9, 0.3});
  }
  return cfg;
}

ps::RunResult run_once(const model::Workload& workload,
                       const ps::ClusterConfig& cfg, int warmup,
                       int measured) {
  ps::Cluster cluster(workload, cfg);
  ps::RunResult result = cluster.run(warmup, measured);
  cluster.drain();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/2,
                           /*default_measured=*/8);
  const int warmup = opts.measure().warmup;
  const int measured = opts.measure().measured;
  const int threads = opts.measure().threads;

  std::printf("== Extension: elastic scale-out (ResNet-50, 4 base workers, "
              "10 Gbps, colocated replicated servers, leases) ==\n\n");
  const auto workload = model::workload_resnet50();
  const std::vector<core::SyncMethod> methods = {
      core::SyncMethod::kBaseline, core::SyncMethod::kSlicingOnly,
      core::SyncMethod::kP3, core::SyncMethod::kTensorFlowStyle,
      core::SyncMethod::kPoseidonWFBP};
  const std::vector<Scenario> scenarios = {
      Scenario::kStatic, Scenario::kJoin, Scenario::kJoinCrash};

  std::vector<Point> grid;
  for (auto method : methods) {
    for (auto scenario : scenarios) grid.push_back({method, scenario});
  }

  std::vector<std::function<ps::RunResult()>> jobs;
  jobs.reserve(grid.size());
  for (const Point& p : grid) {
    jobs.push_back([&workload, cfg = point_config(p), warmup, measured] {
      return run_once(workload, cfg, warmup, measured);
    });
  }
  runner::ParallelExecutor executor(threads);
  const auto results = executor.map(std::move(jobs));

  // Throughput series: one line per method, scenarios on the x axis.
  std::vector<runner::Series> tput;
  {
    std::size_t i = 0;
    for (auto method : methods) {
      runner::Series s;
      s.name = core::sync_method_name(method);
      for (auto scenario : scenarios) {
        s.x.push_back(static_cast<double>(scenario));
        s.y.push_back(results[i++].throughput);
      }
      tput.push_back(std::move(s));
    }
  }
  bench::report_series(
      "throughput across elastic scenarios (0=static, 1=join, 2=join+crash)",
      "scenario", "images/s", tput, "ext_elastic.csv");

  // Elastic-counter table: the mechanics behind the throughput numbers.
  const std::vector<std::string> header = {
      "method",    "scenario",    "joins",        "migrations",
      "mig_mb",    "lease_renew", "lease_expire", "supersessions",
      "failovers", "dual",        "images/s"};
  Table table(header);
  CsvWriter csv(bench::out("ext_elastic_counters.csv"), header);
  int dual_violations = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Point& p = grid[i];
    const ps::RunResult& r = results[i];
    if (r.dual_primary_windows != 0) ++dual_violations;
    const std::vector<std::string> row = {
        core::sync_method_name(p.method),
        scenario_name(p.scenario),
        std::to_string(r.joins),
        std::to_string(r.migrations),
        Table::num(static_cast<double>(r.migrated_bytes) / 1e6, 2),
        std::to_string(r.lease_renewals),
        std::to_string(r.lease_expiries),
        std::to_string(r.supersessions),
        std::to_string(r.failovers),
        std::to_string(r.dual_primary_windows),
        Table::num(r.throughput, 2)};
    table.add_row(row);
    csv.row(row);
  }
  std::printf("== elastic counters ==\n");
  table.print();
  std::printf("(csv: %s)\n\n", bench::out("ext_elastic_counters.csv").c_str());

  std::printf("admitting a node costs one shard-group migration behind a "
              "commit barrier (no round releases against a half-migrated "
              "shard); after the handover the joiner serves its group and "
              "the worker set aggregates five-wide under the bounded-"
              "staleness rule.\n");
  if (dual_violations > 0) {
    std::fprintf(stderr,
                 "FAIL: %d cell(s) observed a dual-primary window under "
                 "lease-based leadership\n",
                 dual_violations);
    return 1;
  }
  std::printf("lease invariant held: 0 dual-primary windows in all %zu "
              "cells.\n",
              grid.size());
  return 0;
}
