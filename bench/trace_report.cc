// Slice-lifecycle trace reporter.
//
// Two modes:
//   run (default)   Run one fully traced cluster and print the per-priority
//                   latency breakdown, the priority-inversion counter, and
//                   the send-queue depth table; optionally export the raw
//                   artifacts (Chrome/Perfetto JSON, lifecycle CSV, metrics
//                   snapshot, critpath blame CSV) under --out PREFIX.
//   --load FILE     Re-analyze a lifecycle CSV written earlier by
//                   Tracer::write_lifecycle_csv (or fig08 --trace) without
//                   re-running anything.
//
// Drills are table-driven (see kDrills below): each entry names a flag,
// a config-mutation step that arms the scenario, and an audit step that
// prints the drill's counters and appends invariant violations. Adding a
// drill is one table entry, not another copy of the arg/exit plumbing.
//
//   --join T        admit a fresh worker+server node at T seconds
//   --lease L       lease-based leadership with duration L
//   --replication R replicated chains of length R
//   --partition     canned split-brain drill (gates: dual_primary_windows
//                   == 0 and cross_partition_deliveries == 0)
//   --hierarchy     canned two-rack drill (gates: uplink priority
//                   inversions == 0, aggregation conserves gradients)
//   --autoscale     canned drain drill (gates: conservation, clean retire,
//                   invariant 12, cooldown spacing)
//   --dssp          canned straggler+crash drill under the DSSP staleness
//                   gate (gates: staleness_violations == 0,
//                   gate_wedge_ticks == 0, conservation — invariant 13)
//   --critpath      causal critical-path engine: per-iteration blame table,
//                   what-if panel, and (with --diff FILE) trace differencing
//                   against an earlier blame CSV. Gates: well-formed causal
//                   graph and per-iteration blame covering the full
//                   iteration window.
//
// Exit status: 0 on success, 2 when the trace fails well-formedness
// validation, the lifecycle stage-order invariant, or any active drill's
// gate — so CI can gate on it.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"
#include "model/compute.h"
#include "net/faults.h"
#include "obs/analysis.h"
#include "obs/critpath.h"
#include "obs/tracer.h"
#include "ps/cluster.h"

namespace {

using namespace p3;

model::Workload workload_by_name(const std::string& name) {
  if (name == "resnet50") return model::workload_resnet50();
  if (name == "vgg19") return model::workload_vgg19();
  if (name == "sockeye") return model::workload_sockeye();
  if (name == "inception_v3") return model::workload_inception_v3();
  throw std::invalid_argument("unknown model: " + name);
}

int report(const obs::Report& analysis,
           const std::vector<std::string>& problems) {
  std::printf("%s", obs::format_report(analysis).c_str());
  if (!problems.empty()) {
    std::printf("\n%zu invariant violation(s):\n", problems.size());
    for (const auto& p : problems) std::printf("  %s\n", p.c_str());
    return 2;
  }
  return 0;
}

/// Everything a drill's setup/audit steps can touch. `cluster`/`run` are
/// null during setup (the cluster does not exist yet).
struct DrillContext {
  bench::BenchOptions* opts = nullptr;
  ps::ClusterConfig* cfg = nullptr;
  ps::Cluster* cluster = nullptr;
  const ps::RunResult* run = nullptr;
  obs::Tracer* tracer = nullptr;
};

struct Drill {
  const char* name;  ///< the flag that arms it
  bool (*active)(const DrillContext&);
  /// Elastic drills legitimately reorder the per-round lifecycle (pushes
  /// redirected off displaced leaders); stage order is gated only when no
  /// active drill sets this.
  bool reorders_lifecycle;
  /// Audit reads slice versions, so the final round's in-flight traffic
  /// must settle (cluster.drain()) before auditing.
  bool needs_drain;
  void (*setup)(DrillContext&);
  void (*audit)(DrillContext&, std::vector<std::string>& problems);
};

void no_setup(DrillContext&) {}
void no_audit(DrillContext&, std::vector<std::string>&) {}

/// Shared conservation gate: every slice must advance exactly once per
/// round through whatever the drill did to the topology.
void audit_conservation(DrillContext& ctx, const char* what,
                        std::vector<std::string>& problems) {
  const std::int64_t want =
      ctx.opts->measure().warmup + ctx.opts->measure().measured;
  std::int64_t lost_slices = 0;
  for (std::int64_t s = 0; s < ctx.cluster->partition().num_slices(); ++s) {
    if (ctx.cluster->slice_version(s) != want) ++lost_slices;
  }
  if (lost_slices > 0) {
    problems.push_back(std::string(what) + " lost contributions: " +
                       std::to_string(lost_slices) +
                       " slice(s) short of version " + std::to_string(want));
  }
}

// -- join / lease / replication ---------------------------------------------

bool join_active(const DrillContext& ctx) {
  return ctx.opts->raw().num("join") > 0.0;
}
void join_setup(DrillContext& ctx) {
  ctx.cfg->faults.joins.push_back(
      {ctx.cfg->n_workers, ctx.opts->raw().num("join")});
}

bool lease_active(const DrillContext& ctx) {
  return ctx.opts->raw().num("lease") > 0.0;
}
void lease_setup(DrillContext& ctx) {
  ctx.cfg->faults.lease_duration = ctx.opts->raw().num("lease");
}

bool replication_active(const DrillContext& ctx) {
  return ctx.opts->raw().integer("replication") != 1;
}
void replication_setup(DrillContext& ctx) {
  ctx.cfg->replication =
      static_cast<int>(ctx.opts->raw().integer("replication"));
}

// -- partition ---------------------------------------------------------------

bool partition_active(const DrillContext& ctx) {
  return ctx.opts->raw().flag("partition");
}

void partition_setup(DrillContext& ctx) {
  // Canned split-brain drill: minority {0,1} against majority {2,3,4}
  // under replicated leases and drifting clocks. Overrides the topology
  // knobs — the audit is only meaningful on this shape.
  ps::ClusterConfig& cfg = *ctx.cfg;
  cfg.n_workers = 5;
  cfg.replication = std::max(cfg.replication, 2);
  if (cfg.faults.lease_duration <= 0.0) cfg.faults.lease_duration = 0.25;
  net::NetPartition cut;
  cut.side_a = {0, 1};
  cut.side_b = {2, 3, 4};
  cut.start = 0.3;
  cut.heal = 0.7;
  cfg.faults.partitions.push_back(cut);
  cfg.faults.clock_drift_rate = 5e-4;
  cfg.faults.clock_offset_bound = 0.02;
}

void partition_audit(DrillContext& ctx, std::vector<std::string>& problems) {
  const ps::RunResult& run = *ctx.run;
  std::printf("partition: %lld severed drop(s), %lld parked push(es), "
              "%lld quorum-denied failover(s), %lld cross-partition "
              "delivery(ies), %lld dual-primary window(s)\n",
              static_cast<long long>(run.partition_drops),
              static_cast<long long>(run.parked_pushes),
              static_cast<long long>(run.quorum_denied_failovers),
              static_cast<long long>(run.cross_partition_deliveries),
              static_cast<long long>(ctx.cluster->dual_primary_windows()));
  // The partition contract: the fabric delivers nothing across an active
  // cut, and quorum/fence gating keeps leadership single-headed even
  // while the views disagree.
  if (run.cross_partition_deliveries > 0) {
    problems.push_back(
        "network.cross_partition_deliveries = " +
        std::to_string(run.cross_partition_deliveries) +
        " (a message landed across an active cut; expected 0)");
  }
}

// -- hierarchy ---------------------------------------------------------------

bool hierarchy_active(const DrillContext& ctx) {
  return ctx.opts->raw().flag("hierarchy");
}

void hierarchy_setup(DrillContext& ctx) {
  // Canned rack drill: two racks of four colocated nodes behind
  // 4:1-oversubscribed ToR uplinks, with rack-local aggregation folding
  // each rack's pushes before they reach the shared port.
  ps::ClusterConfig& cfg = *ctx.cfg;
  cfg.n_workers = 8;
  cfg.topology.racks = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  cfg.topology.oversubscription = 4.0;
  cfg.rack_aggregation = true;
}

void hierarchy_audit(DrillContext& ctx, std::vector<std::string>& problems) {
  const ps::RunResult& run = *ctx.run;
  std::printf("hierarchy: %.1f MiB over ToR uplinks, %lld overtake(s), "
              "%lld inversion(s), %lld combined push(es), %lld param "
              "re-broadcast(s), %lld fallback push(es)\n",
              static_cast<double>(run.tor_uplink_bytes) / (1024.0 * 1024.0),
              static_cast<long long>(run.uplink_overtakes),
              static_cast<long long>(run.uplink_priority_inversions),
              static_cast<long long>(run.agg_combined_pushes),
              static_cast<long long>(run.agg_param_broadcasts),
              static_cast<long long>(run.agg_fallback_pushes));
  // The port contract: priority service never starts a transfer while a
  // strictly-more-urgent one waits.
  if (run.uplink_priority_inversions > 0) {
    problems.push_back(
        "network.uplink_priority_inversions = " +
        std::to_string(run.uplink_priority_inversions) +
        " at priority-served switch ports (expected 0)");
  }
  audit_conservation(ctx, "aggregation", problems);
}

// -- autoscale ---------------------------------------------------------------

bool autoscale_active(const DrillContext& ctx) {
  return ctx.opts->raw().flag("autoscale");
}

void autoscale_setup(DrillContext& ctx) {
  // Canned drain drill: admit a fifth node at 0.25 s, then drain node 1
  // out at 0.5 s — its groups live-migrate behind the commit barrier and
  // the node retires permanently. Overrides the topology knobs — the
  // audit is only meaningful with replicated leases and a scheduled leave.
  ps::ClusterConfig& cfg = *ctx.cfg;
  cfg.n_workers = 4;
  cfg.replication = std::max(cfg.replication, 2);
  if (cfg.faults.lease_duration <= 0.0) cfg.faults.lease_duration = 0.25;
  cfg.faults.joins.push_back({cfg.n_workers, 0.25});
  cfg.faults.leaves.push_back({1, 0.5});
}

void autoscale_audit(DrillContext& ctx, std::vector<std::string>& problems) {
  ps::Cluster& cluster = *ctx.cluster;
  std::printf("autoscale: %lld drain(s) started, %lld completed, %lld "
              "scale decision(s), %lld shed push(es), %lld dual-primary "
              "window(s)\n",
              static_cast<long long>(cluster.drains_started()),
              static_cast<long long>(cluster.drains_completed()),
              static_cast<long long>(cluster.scale_decisions()),
              static_cast<long long>(cluster.sheds()),
              static_cast<long long>(cluster.dual_primary_windows()));
  // The drain contract: live migration behind the commit barrier conserves
  // every contribution — no slice falls short of one advance per round.
  audit_conservation(ctx, "drain", problems);
  if (cluster.drains_completed() != 1) {
    problems.push_back("drains_completed = " +
                       std::to_string(cluster.drains_completed()) +
                       " (the scheduled leave must retire cleanly; "
                       "expected 1)");
  }
  // Invariant 12: a retired node never reappears as a leaseholder in any
  // live node's view.
  const int n_total = ctx.cfg->n_workers + 1;  // base nodes + the admitted one
  const int n_groups = cluster.leadership_view(0).n_groups();
  for (int node = 0; node < n_total; ++node) {
    if (cluster.node_retired(node)) continue;
    for (int g = 0; g < n_groups; ++g) {
      // Colocated drill: server index == node id.
      const int primary = cluster.leadership_view(node).primary(g);
      if (primary >= 0 && cluster.node_retired(primary)) {
        problems.push_back("retired node " + std::to_string(primary) +
                           " still leads group " + std::to_string(g) +
                           " in node " + std::to_string(node) +
                           "'s view (invariant 12)");
      }
    }
  }
  // The no-flapping contract: consecutive autoscaler decisions must be at
  // least one cooldown apart. (The canned drill schedules its leave via
  // the fault plan, so this audit is usually vacuous — it bites when
  // --autoscale is combined with an armed policy loop.)
  const auto& times = cluster.scale_decision_times();
  for (std::size_t i = 1; i < times.size(); ++i) {
    if (times[i] - times[i - 1] < ctx.cfg->autoscaler.cooldown - 1e-9) {
      problems.push_back(
          "autoscaler flapped: decisions " + std::to_string(times[i - 1]) +
          "s and " + std::to_string(times[i]) + "s are closer than the " +
          std::to_string(ctx.cfg->autoscaler.cooldown) + "s cooldown");
    }
  }
}

// -- dssp --------------------------------------------------------------------

bool dssp_active(const DrillContext& ctx) {
  return ctx.opts->raw().flag("dssp");
}

void dssp_setup(DrillContext& ctx) {
  // Canned straggler+crash drill for the DSSP staleness gate: worker 3
  // limps on a halved NIC for the whole run (a live straggler the gate
  // must manage — heartbeats still flow, so it stays in the eligible set)
  // while worker 1 crashes at 0.1 s and restarts 50 ms later (a dead
  // straggler the gate must exclude and re-admit at the rejoin floor).
  // Overrides method and topology knobs — the audit is only meaningful
  // with the gate on and replicated recovery armed.
  ps::ClusterConfig& cfg = *ctx.cfg;
  cfg.method = core::SyncMethod::kDSSP;
  cfg.n_workers = 4;
  cfg.replication = std::max(cfg.replication, 2);
  cfg.heartbeat_period = ms(5);
  cfg.suspicion_timeout = ms(25);
  cfg.staleness.s_min = 0;
  cfg.staleness.s_max = 3;
  cfg.staleness.window = 4;
  cfg.staleness.decay_patience = 5;
  net::Degradation deg;
  deg.node = 3;
  deg.start = 0.0;
  deg.end = 600.0;
  deg.bandwidth_factor = 0.5;
  deg.extra_latency = us(100);
  cfg.faults.degradations.push_back(deg);
  cfg.faults.crashes.push_back({1, 0.1, 0.05});
}

void dssp_audit(DrillContext& ctx, std::vector<std::string>& problems) {
  const ps::RunResult& run = *ctx.run;
  std::printf("dssp: %lld gate block(s), %lld raise(s), %lld decay(s), "
              "final bound %lld, mean wait %.6f s, %lld violation(s), "
              "%lld wedge tick(s)\n",
              static_cast<long long>(run.dssp_gate_blocks),
              static_cast<long long>(run.staleness_raises),
              static_cast<long long>(run.staleness_decays),
              static_cast<long long>(run.final_staleness_bound),
              run.mean_gate_wait,
              static_cast<long long>(run.staleness_violations),
              static_cast<long long>(run.gate_wedge_ticks));
  // Invariant 13 ground truth: no worker ever computed past the bound the
  // gate promised, and no fault plane wedged the gate.
  if (run.staleness_violations > 0) {
    problems.push_back("dssp: staleness_violations = " +
                       std::to_string(run.staleness_violations) +
                       " (a worker ran past the promised bound; "
                       "invariant 13)");
  }
  if (run.gate_wedge_ticks > 0) {
    problems.push_back("dssp: gate_wedge_ticks = " +
                       std::to_string(run.gate_wedge_ticks) +
                       " (every eligible worker stuck behind the floor "
                       "across consecutive audits; invariant 13)");
  }
  // Park-never-drop: run-ahead pushes buffered through the straggle and
  // the crash must all land — no slice may fall short of one advance per
  // round.
  audit_conservation(ctx, "dssp", problems);
}

// -- critpath ----------------------------------------------------------------

bool critpath_active(const DrillContext& ctx) {
  return ctx.opts->raw().flag("critpath");
}

void critpath_audit(DrillContext& ctx, std::vector<std::string>& problems) {
  const obs::BlameReport blame = obs::analyze_critical_path(
      *ctx.tracer, ctx.opts->measure().warmup);
  // A malformed causal graph is an exit-2 condition: the blame table would
  // be garbage, and CI must notice rather than archive it.
  problems.insert(problems.end(), blame.problems.begin(),
                  blame.problems.end());
  // Coverage gate: the walk telescopes, so per-iteration blame must sum to
  // the iteration window. A gap means the path does not cover the span.
  for (const obs::IterationBlame& ib : blame.iterations) {
    if (std::fabs(ib.attributed() - ib.window()) > 1e-6) {
      problems.push_back(
          "critpath: iteration " + std::to_string(ib.iteration) +
          " blame covers " + std::to_string(ib.attributed()) + "s of a " +
          std::to_string(ib.window()) + "s window");
    }
  }
  std::printf("%s", obs::format_blame(blame).c_str());
  std::printf("%s", obs::format_what_ifs(obs::standard_what_ifs(blame)).c_str());
  const std::string diff_path = ctx.opts->raw().str("diff");
  if (!diff_path.empty()) {
    const obs::BlameReport before = obs::load_blame_csv(diff_path);
    std::printf("%s",
                obs::format_blame_diff(obs::diff_blame(before, blame)).c_str());
  }
  const std::string out_prefix = ctx.opts->raw().str("out");
  if (!out_prefix.empty()) {
    obs::write_blame_csv(blame, out_prefix + ".blame.csv");
    std::printf("exported %s.blame.csv\n", out_prefix.c_str());
  }
}

// One row per drill: flag -> setup -> audit. Setup order is load-bearing
// (partition/autoscale inspect the lease the --lease row may have armed).
constexpr Drill kDrills[] = {
    {"replication", replication_active, false, false, replication_setup,
     no_audit},
    {"join", join_active, true, false, join_setup, no_audit},
    {"lease", lease_active, false, false, lease_setup, no_audit},
    {"partition", partition_active, true, false, partition_setup,
     partition_audit},
    {"autoscale", autoscale_active, true, true, autoscale_setup,
     autoscale_audit},
    {"hierarchy", hierarchy_active, false, true, hierarchy_setup,
     hierarchy_audit},
    {"dssp", dssp_active, true, true, dssp_setup, dssp_audit},
    {"critpath", critpath_active, false, false, no_setup, critpath_audit},
};

/// Registry histogram digest via the p50/p90/p99 summary accessors.
void print_histogram_summaries(const obs::Registry& metrics) {
  bool any = false;
  for (const auto& row : metrics.snapshot()) {
    if (row.type != "histogram" || row.field != "count") continue;
    const obs::Histogram* h = metrics.find_histogram(row.metric);
    if (h == nullptr || h->count() == 0) continue;
    if (!any) std::printf("histogram summaries (bucket-resolution):\n");
    any = true;
    std::printf("  %-28s n %8lld  p50 %.6g  p90 %.6g  p99 %.6g\n",
                row.metric.c_str(), static_cast<long long>(h->count()),
                h->p50(), h->p90(), h->p99());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/1,
                           /*default_measured=*/3,
                           {{"load", ""},
                            {"model", "resnet50"},
                            {"method", "P3"},
                            {"bandwidth", "4"},
                            {"workers", "4"},
                            {"join", "0"},
                            {"lease", "0"},
                            {"replication", "1"},
                            {"partition", ""},
                            {"hierarchy", ""},
                            {"autoscale", ""},
                            {"dssp", ""},
                            {"critpath", ""},
                            {"diff", ""},
                            {"out", ""},
                            {"strict", ""}});
  const bool strict = opts.raw().flag("strict");

  const std::string load_path = opts.raw().str("load");
  if (!load_path.empty()) {
    const auto records = obs::load_lifecycle_csv(load_path);
    std::printf("== trace report: %s ==\n", load_path.c_str());
    return report(obs::analyze(records),
                  obs::lifecycle_violations(records, strict));
  }

  const std::string model_name = opts.raw().str("model");
  ps::ClusterConfig cfg;
  cfg.n_workers = static_cast<int>(opts.raw().integer("workers"));
  cfg.method = core::parse_sync_method(opts.raw().str("method"));
  cfg.bandwidth = gbps(opts.raw().num("bandwidth"));
  cfg.rx_bandwidth = gbps(100);

  DrillContext ctx;
  ctx.opts = &opts;
  ctx.cfg = &cfg;
  bool reorders_lifecycle = false;
  bool needs_drain = false;
  for (const Drill& d : kDrills) {
    if (!d.active(ctx)) continue;
    d.setup(ctx);
    reorders_lifecycle = reorders_lifecycle || d.reorders_lifecycle;
    needs_drain = needs_drain || d.needs_drain;
  }

  ps::Cluster cluster(workload_by_name(model_name), cfg);
  obs::Tracer tracer;
  cluster.attach_tracer(&tracer);
  const ps::RunResult run =
      cluster.run(opts.measure().warmup, opts.measure().measured);
  // Conservation audits read slice versions, so the final round's in-flight
  // traffic must settle first.
  if (needs_drain) cluster.drain();
  ctx.cluster = &cluster;
  ctx.run = &run;
  ctx.tracer = &tracer;

  std::printf("== trace report: %s, %s, %d workers ==\n", model_name.c_str(),
              core::sync_method_name(cfg.method).c_str(), cfg.n_workers);

  const obs::Tracer::ValidationStats accounting = tracer.validate_accounting();
  std::vector<std::string> problems = accounting.violations;
  std::printf("flows: %lld started, %lld ended, %lld still in flight\n",
              static_cast<long long>(accounting.flows_started),
              static_cast<long long>(accounting.flows_ended),
              static_cast<long long>(accounting.flows_in_flight));
  const auto lifecycle =
      obs::lifecycle_violations(tracer.lifecycle_records(), strict);
  if (reorders_lifecycle) {
    // Elastic rebalancing and partition failover legitimately reorder the
    // per-round lifecycle: a push redirected off a displaced leader records
    // server_recv only at the final owner, and a bounded-staleness round
    // can broadcast params before a straggler's own (stale) push lands.
    // Stage order is gated only under fixed leadership.
    std::printf("note: %zu lifecycle stage-order note(s) suppressed "
                "(leadership moved mid-run)\n",
                lifecycle.size());
  } else {
    problems.insert(problems.end(), lifecycle.begin(), lifecycle.end());
  }
  if (cluster.membership_armed()) {
    std::printf("membership: %lld join(s), %lld migration(s), %lld lease "
                "renewal(s), %lld dual-primary window(s)\n",
                static_cast<long long>(cluster.joins_executed()),
                static_cast<long long>(cluster.migrations()),
                static_cast<long long>(cluster.lease_renewals()),
                static_cast<long long>(cluster.dual_primary_windows()));
    // The lease contract: a successor acts only after the primary's lease
    // expired, so ground truth must never see two overlapping primaries.
    if (cluster.leases_armed() && cluster.dual_primary_windows() > 0) {
      problems.push_back(
          "membership.dual_primary_windows = " +
          std::to_string(cluster.dual_primary_windows()) +
          " under lease-based leadership (expected 0)");
    }
  }

  for (const Drill& d : kDrills) {
    if (d.active(ctx)) d.audit(ctx, problems);
  }
  print_histogram_summaries(cluster.metrics());

  const std::string out_prefix = opts.raw().str("out");
  if (!out_prefix.empty()) {
    tracer.write_chrome_json(out_prefix + ".trace.json");
    tracer.write_lifecycle_csv(out_prefix + ".lifecycle.csv");
    cluster.metrics().write_csv(out_prefix + ".metrics.csv");
    cluster.metrics().write_json(out_prefix + ".metrics.json");
    std::printf("exported %s.{trace.json,lifecycle.csv,metrics.csv,"
                "metrics.json}\n",
                out_prefix.c_str());
  }

  return report(obs::analyze(tracer.lifecycle_records()), problems);
}
