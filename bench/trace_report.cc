// Slice-lifecycle trace reporter.
//
// Two modes:
//   run (default)   Run one fully traced cluster and print the per-priority
//                   latency breakdown, the priority-inversion counter, and
//                   the send-queue depth table; optionally export the raw
//                   artifacts (Chrome/Perfetto JSON, lifecycle CSV, metrics
//                   snapshot) under --out PREFIX.
//   --load FILE     Re-analyze a lifecycle CSV written earlier by
//                   Tracer::write_lifecycle_csv (or fig08 --trace) without
//                   re-running anything.
//
// Elastic options (run mode): `--join T` admits a fresh worker+server node
// at T seconds (with `--replication R` for a replicated chain), and
// `--lease L` arms lease-based leadership. With leases armed the report
// additionally gates on the no-split-view invariant: a nonzero
// `membership.dual_primary_windows` is an invariant violation.
//
// Partition audit (run mode): `--partition` runs a canned split-brain
// drill — five workers with replicated servers and leases, a symmetric
// cut {0,1}|{2,3,4} over [0.3 s, 0.7 s), and drifting node clocks — and
// gates on the two partition ground truths: `dual_primary_windows` and
// the fabric's `cross_partition_deliveries` audit must both read 0.
//
// Hierarchy audit (run mode): `--hierarchy` runs a canned rack drill —
// eight workers in two racks of four behind 4:1-oversubscribed ToR
// uplinks with rack aggregation — and gates on the port priority
// discipline (`uplink_priority_inversions` must read 0) and gradient
// conservation through the aggregation tree (every slice's version must
// reach exactly warmup + measured; a shortfall means a rack pre-reduce
// lost a contribution).
//
// Autoscale audit (run mode): `--autoscale` runs a canned drain drill —
// four workers under replicated leases, a fresh node admitted at 0.25 s,
// then node 1 voluntarily drains out at 0.5 s — and gates on the drain
// ground truths: gradient conservation across the live migrations (every
// slice's version must reach exactly warmup + measured), zero dual-primary
// windows, the drain completing (`drains_completed` == 1), the retired
// node never reappearing as a leaseholder in any live node's view
// (PROTOCOL.md invariant 12), and consecutive autoscaler decisions spaced
// at least one cooldown apart (the no-flapping contract).
//
// Exit status: 0 on success, 2 when the trace fails well-formedness
// validation, the lifecycle stage-order invariant, or the lease
// dual-primary / partition safety invariants — so CI can gate on it.
#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"
#include "model/compute.h"
#include "net/faults.h"
#include "obs/analysis.h"
#include "obs/tracer.h"
#include "ps/cluster.h"

namespace {

using namespace p3;

model::Workload workload_by_name(const std::string& name) {
  if (name == "resnet50") return model::workload_resnet50();
  if (name == "vgg19") return model::workload_vgg19();
  if (name == "sockeye") return model::workload_sockeye();
  if (name == "inception_v3") return model::workload_inception_v3();
  throw std::invalid_argument("unknown model: " + name);
}

int report(const obs::Report& analysis,
           const std::vector<std::string>& problems) {
  std::printf("%s", obs::format_report(analysis).c_str());
  if (!problems.empty()) {
    std::printf("\n%zu invariant violation(s):\n", problems.size());
    for (const auto& p : problems) std::printf("  %s\n", p.c_str());
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/1,
                           /*default_measured=*/3,
                           {{"load", ""},
                            {"model", "resnet50"},
                            {"method", "P3"},
                            {"bandwidth", "4"},
                            {"workers", "4"},
                            {"join", "0"},
                            {"lease", "0"},
                            {"replication", "1"},
                            {"partition", ""},
                            {"hierarchy", ""},
                            {"autoscale", ""},
                            {"out", ""},
                            {"strict", ""}});
  const bool strict = opts.raw().flag("strict");

  const std::string load_path = opts.raw().str("load");
  if (!load_path.empty()) {
    const auto records = obs::load_lifecycle_csv(load_path);
    std::printf("== trace report: %s ==\n", load_path.c_str());
    return report(obs::analyze(records),
                  obs::lifecycle_violations(records, strict));
  }

  const std::string model_name = opts.raw().str("model");
  ps::ClusterConfig cfg;
  cfg.n_workers = static_cast<int>(opts.raw().integer("workers"));
  cfg.method = core::parse_sync_method(opts.raw().str("method"));
  cfg.bandwidth = gbps(opts.raw().num("bandwidth"));
  cfg.rx_bandwidth = gbps(100);
  cfg.replication = static_cast<int>(opts.raw().integer("replication"));
  const double join_at = opts.raw().num("join");
  if (join_at > 0.0) cfg.faults.joins.push_back({cfg.n_workers, join_at});
  const double lease = opts.raw().num("lease");
  if (lease > 0.0) cfg.faults.lease_duration = lease;
  const bool partition = opts.raw().flag("partition");
  if (partition) {
    // Canned split-brain drill: minority {0,1} against majority {2,3,4}
    // under replicated leases and drifting clocks. Overrides the topology
    // knobs — the audit is only meaningful on this shape.
    cfg.n_workers = 5;
    cfg.replication = std::max(cfg.replication, 2);
    if (lease <= 0.0) cfg.faults.lease_duration = 0.25;
    net::NetPartition cut;
    cut.side_a = {0, 1};
    cut.side_b = {2, 3, 4};
    cut.start = 0.3;
    cut.heal = 0.7;
    cfg.faults.partitions.push_back(cut);
    cfg.faults.clock_drift_rate = 5e-4;
    cfg.faults.clock_offset_bound = 0.02;
  }
  const bool autoscale = opts.raw().flag("autoscale");
  if (autoscale) {
    // Canned drain drill: admit a fifth node at 0.25 s, then drain node 1
    // out at 0.5 s — its groups live-migrate behind the commit barrier and
    // the node retires permanently. Overrides the topology knobs — the
    // audit is only meaningful with replicated leases and a scheduled
    // leave.
    cfg.n_workers = 4;
    cfg.replication = std::max(cfg.replication, 2);
    if (lease <= 0.0) cfg.faults.lease_duration = 0.25;
    cfg.faults.joins.push_back({cfg.n_workers, 0.25});
    cfg.faults.leaves.push_back({1, 0.5});
  }
  const bool hierarchy = opts.raw().flag("hierarchy");
  if (hierarchy) {
    // Canned rack drill: two racks of four colocated nodes behind
    // 4:1-oversubscribed ToR uplinks, with rack-local aggregation folding
    // each rack's pushes before they reach the shared port.
    cfg.n_workers = 8;
    cfg.topology.racks = {{0, 1, 2, 3}, {4, 5, 6, 7}};
    cfg.topology.oversubscription = 4.0;
    cfg.rack_aggregation = true;
  }

  ps::Cluster cluster(workload_by_name(model_name), cfg);
  obs::Tracer tracer;
  cluster.attach_tracer(&tracer);
  const ps::RunResult run =
      cluster.run(opts.measure().warmup, opts.measure().measured);
  // The conservation audit below reads slice versions, so the final round's
  // in-flight traffic must settle first.
  if (hierarchy || autoscale) cluster.drain();

  std::printf("== trace report: %s, %s, %d workers ==\n", model_name.c_str(),
              core::sync_method_name(cfg.method).c_str(), cfg.n_workers);

  std::vector<std::string> problems = tracer.validate();
  const auto lifecycle =
      obs::lifecycle_violations(tracer.lifecycle_records(), strict);
  if (join_at > 0.0 || partition || autoscale) {
    // Elastic rebalancing and partition failover legitimately reorder the
    // per-round lifecycle: a push redirected off a displaced leader records
    // server_recv only at the final owner, and a bounded-staleness round
    // can broadcast params before a straggler's own (stale) push lands.
    // Stage order is gated only under fixed leadership.
    std::printf("note: %zu lifecycle stage-order note(s) suppressed "
                "(leadership moved mid-run)\n",
                lifecycle.size());
  } else {
    problems.insert(problems.end(), lifecycle.begin(), lifecycle.end());
  }
  if (cluster.membership_armed()) {
    std::printf("membership: %lld join(s), %lld migration(s), %lld lease "
                "renewal(s), %lld dual-primary window(s)\n",
                static_cast<long long>(cluster.joins_executed()),
                static_cast<long long>(cluster.migrations()),
                static_cast<long long>(cluster.lease_renewals()),
                static_cast<long long>(cluster.dual_primary_windows()));
    // The lease contract: a successor acts only after the primary's lease
    // expired, so ground truth must never see two overlapping primaries.
    if (cluster.leases_armed() && cluster.dual_primary_windows() > 0) {
      problems.push_back(
          "membership.dual_primary_windows = " +
          std::to_string(cluster.dual_primary_windows()) +
          " under lease-based leadership (expected 0)");
    }
  }
  if (partition) {
    std::printf("partition: %lld severed drop(s), %lld parked push(es), "
                "%lld quorum-denied failover(s), %lld cross-partition "
                "delivery(ies), %lld dual-primary window(s)\n",
                static_cast<long long>(run.partition_drops),
                static_cast<long long>(run.parked_pushes),
                static_cast<long long>(run.quorum_denied_failovers),
                static_cast<long long>(run.cross_partition_deliveries),
                static_cast<long long>(cluster.dual_primary_windows()));
    // The partition contract: the fabric delivers nothing across an active
    // cut, and quorum/fence gating keeps leadership single-headed even
    // while the views disagree.
    if (run.cross_partition_deliveries > 0) {
      problems.push_back(
          "network.cross_partition_deliveries = " +
          std::to_string(run.cross_partition_deliveries) +
          " (a message landed across an active cut; expected 0)");
    }
  }
  if (hierarchy) {
    std::printf("hierarchy: %.1f MiB over ToR uplinks, %lld overtake(s), "
                "%lld inversion(s), %lld combined push(es), %lld param "
                "re-broadcast(s), %lld fallback push(es)\n",
                static_cast<double>(run.tor_uplink_bytes) / (1024.0 * 1024.0),
                static_cast<long long>(run.uplink_overtakes),
                static_cast<long long>(run.uplink_priority_inversions),
                static_cast<long long>(run.agg_combined_pushes),
                static_cast<long long>(run.agg_param_broadcasts),
                static_cast<long long>(run.agg_fallback_pushes));
    // The port contract: priority service never starts a transfer while a
    // strictly-more-urgent one waits.
    if (run.uplink_priority_inversions > 0) {
      problems.push_back(
          "network.uplink_priority_inversions = " +
          std::to_string(run.uplink_priority_inversions) +
          " at priority-served switch ports (expected 0)");
    }
    // The aggregation-tree contract: folding pushes at the rack tier must
    // conserve gradients — every slice advances exactly once per round.
    const std::int64_t want =
        opts.measure().warmup + opts.measure().measured;
    std::int64_t lost_slices = 0;
    for (std::int64_t s = 0; s < cluster.partition().num_slices(); ++s) {
      if (cluster.slice_version(s) != want) ++lost_slices;
    }
    if (lost_slices > 0) {
      problems.push_back(
          "aggregation lost contributions: " + std::to_string(lost_slices) +
          " slice(s) short of version " + std::to_string(want));
    }
  }
  if (autoscale) {
    std::printf("autoscale: %lld drain(s) started, %lld completed, %lld "
                "scale decision(s), %lld shed push(es), %lld dual-primary "
                "window(s)\n",
                static_cast<long long>(cluster.drains_started()),
                static_cast<long long>(cluster.drains_completed()),
                static_cast<long long>(cluster.scale_decisions()),
                static_cast<long long>(cluster.sheds()),
                static_cast<long long>(cluster.dual_primary_windows()));
    // The drain contract: live migration behind the commit barrier conserves
    // every contribution — no slice falls short of one advance per round.
    const std::int64_t want = opts.measure().warmup + opts.measure().measured;
    std::int64_t lost_slices = 0;
    for (std::int64_t s = 0; s < cluster.partition().num_slices(); ++s) {
      if (cluster.slice_version(s) != want) ++lost_slices;
    }
    if (lost_slices > 0) {
      problems.push_back(
          "drain lost contributions: " + std::to_string(lost_slices) +
          " slice(s) short of version " + std::to_string(want));
    }
    if (cluster.drains_completed() != 1) {
      problems.push_back("drains_completed = " +
                         std::to_string(cluster.drains_completed()) +
                         " (the scheduled leave must retire cleanly; "
                         "expected 1)");
    }
    // Invariant 12: a retired node never reappears as a leaseholder in any
    // live node's view.
    const int n_total = cfg.n_workers + 1;  // base nodes + the admitted one
    const int n_groups = cluster.leadership_view(0).n_groups();
    for (int node = 0; node < n_total; ++node) {
      if (cluster.node_retired(node)) continue;
      for (int g = 0; g < n_groups; ++g) {
        // Colocated drill: server index == node id.
        const int primary = cluster.leadership_view(node).primary(g);
        if (primary >= 0 && cluster.node_retired(primary)) {
          problems.push_back("retired node " + std::to_string(primary) +
                             " still leads group " + std::to_string(g) +
                             " in node " + std::to_string(node) +
                             "'s view (invariant 12)");
        }
      }
    }
    // The no-flapping contract: consecutive autoscaler decisions must be at
    // least one cooldown apart. (The canned drill schedules its leave via
    // the fault plan, so this audit is usually vacuous — it bites when
    // --autoscale is combined with an armed policy loop.)
    const auto& times = cluster.scale_decision_times();
    for (std::size_t i = 1; i < times.size(); ++i) {
      if (times[i] - times[i - 1] < cfg.autoscaler.cooldown - 1e-9) {
        problems.push_back(
            "autoscaler flapped: decisions " + std::to_string(times[i - 1]) +
            "s and " + std::to_string(times[i]) + "s are closer than the " +
            std::to_string(cfg.autoscaler.cooldown) + "s cooldown");
      }
    }
  }

  const std::string out_prefix = opts.raw().str("out");
  if (!out_prefix.empty()) {
    tracer.write_chrome_json(out_prefix + ".trace.json");
    tracer.write_lifecycle_csv(out_prefix + ".lifecycle.csv");
    cluster.metrics().write_csv(out_prefix + ".metrics.csv");
    cluster.metrics().write_json(out_prefix + ".metrics.json");
    std::printf("exported %s.{trace.json,lifecycle.csv,metrics.csv,"
                "metrics.json}\n",
                out_prefix.c_str());
  }

  return report(obs::analyze(tracer.lifecycle_records()), problems);
}
