// Extension: causal critical-path accounting across the method zoo.
//
// Throughput curves say *that* P3 wins; this bench says *why*, in seconds.
// Every cell runs one fully traced cluster, reconstructs the causal event
// graph (obs/critpath), walks the critical path of each measured iteration
// backward from its finish line, and charges every segment to a blame
// category: forward/backward compute, send-queue wait, priority inversion,
// wire serialization, switch-port queueing (uplink/downlink), server
// aggregation, aggregation hold, recovery stalls.
//
// The sweep: five sync methods x
//   flat fabric   4 workers, {4, 5, 6, 8} Gbps NICs
//   4:1 hierarchy 8 workers in 2 racks behind 4x-oversubscribed ToR
//                 uplinks with rack aggregation, {10, 14} Gbps NICs
//
// The headline, gated by exit status for CI: in the bandwidth-constrained
// flat cells (5 and 6 Gbps — where the gradient volume still fits under
// backward compute, so a good schedule *can* hide it), the network-wait
// share of the critical path collapses under P3 while Baseline's FIFO
// pipeline and TensorFlow-style deferred pulls keep paying it on the path.
// At 4 Gbps no schedule can hide the traffic (volume exceeds compute) and
// at 8 Gbps every schedule hides it, so those cells are reported but not
// gated — the regime boundary is part of the story.
//
// The 4:1 hierarchy cells are diagnostics, not gates: the blame tables
// show P3's immediate per-slice broadcast keeping the rack relay's NIC
// busy, so the binding slice waits in a send queue the paper's flat-fabric
// plots never see.
//
// Also gated:
//   * well-formed causal graphs everywhere, with per-iteration blame
//     telescoping to exactly the iteration window (the engine's coverage
//     contract);
//   * the RunResult blame surface agrees with the report the engine
//     returns (same analysis, two export paths);
//   * the "infinite bandwidth" what-if for Baseline@5Gbps predicts the
//     measured mean iteration of an actual 100 Gbps rerun of the same
//     seed within 10% (first-order estimate vs ground truth).
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "model/zoo.h"
#include "obs/critpath.h"
#include "obs/tracer.h"
#include "ps/cluster.h"

namespace {

using namespace p3;

struct Point {
  core::SyncMethod method;
  double bandwidth_gbps;
  bool hier;         ///< 8 workers, 2 racks, 4:1 ToR, rack aggregation
  bool constrained;  ///< gated cell: P3 must beat Baseline + TF on share
};

struct Cell {
  ps::RunResult run;
  obs::BlameReport blame;
};

ps::ClusterConfig point_config(const Point& p) {
  ps::ClusterConfig cfg;
  cfg.method = p.method;
  cfg.bandwidth = gbps(p.bandwidth_gbps);
  cfg.rx_bandwidth = gbps(100);
  if (p.hier) {
    cfg.n_workers = 8;
    cfg.topology.racks = {{0, 1, 2, 3}, {4, 5, 6, 7}};
    cfg.topology.oversubscription = 4.0;
    cfg.rack_aggregation = true;
  } else {
    cfg.n_workers = 4;
  }
  return cfg;
}

Cell run_cell(const model::Workload& workload, const ps::ClusterConfig& cfg,
              int warmup, int measured) {
  ps::Cluster cluster(workload, cfg);
  obs::Tracer tracer;
  cluster.attach_tracer(&tracer);
  Cell cell;
  cell.run = cluster.run(warmup, measured);
  cluster.drain();
  cell.blame = obs::analyze_critical_path(tracer, warmup);
  return cell;
}

std::string fabric_name(const Point& p) { return p.hier ? "4:1" : "flat"; }

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/1,
                           /*default_measured=*/4);
  const int warmup = opts.measure().warmup;
  const int measured = opts.measure().measured;

  std::printf("== Extension: critical-path blame attribution (ResNet-50; "
              "flat 4-worker fabric and 8 workers behind a 4:1 ToR) ==\n\n");
  const auto workload = model::workload_resnet50();
  const std::vector<core::SyncMethod> methods = {
      core::SyncMethod::kBaseline, core::SyncMethod::kSlicingOnly,
      core::SyncMethod::kP3, core::SyncMethod::kTensorFlowStyle,
      core::SyncMethod::kPoseidonWFBP};
  const std::vector<double> flat_bw = {4.0, 5.0, 6.0, 8.0};
  const std::vector<double> hier_bw = {10.0, 14.0};

  std::vector<Point> grid;
  for (auto method : methods) {
    for (double bw : flat_bw) {
      grid.push_back({method, bw, false, bw == 5.0 || bw == 6.0});
    }
    for (double bw : hier_bw) grid.push_back({method, bw, true, false});
  }
  // Ground-truth cell for the what-if gate: Baseline on a fabric fast
  // enough that the network contributes nothing to the path.
  const std::size_t truth_index = grid.size();
  grid.push_back({core::SyncMethod::kBaseline, 100.0, false, false});

  std::vector<std::function<Cell()>> jobs;
  jobs.reserve(grid.size());
  for (const Point& p : grid) {
    jobs.push_back([&workload, cfg = point_config(p), warmup, measured] {
      return run_cell(workload, cfg, warmup, measured);
    });
  }
  runner::ParallelExecutor executor(opts.measure().threads);
  const auto cells = executor.map(std::move(jobs));

  // Headline series: network-wait share of the critical path vs bandwidth
  // on the flat fabric, one line per method.
  std::vector<runner::Series> shares;
  for (std::size_t m = 0; m < methods.size(); ++m) {
    runner::Series s;
    s.name = core::sync_method_name(methods[m]);
    for (std::size_t b = 0; b < flat_bw.size(); ++b) {
      const Cell& cell =
          cells[m * (flat_bw.size() + hier_bw.size()) + b];
      s.x.push_back(flat_bw[b]);
      s.y.push_back(cell.blame.network_share() * 100.0);
    }
    shares.push_back(std::move(s));
  }
  bench::report_series("network-wait share of critical path (flat fabric)",
                       "Gbps", "% of path", shares, "ext_critpath.csv");

  // Full blame table: every cell, every category, in seconds per
  // iteration (mean over measured iterations).
  const std::vector<std::string> header = {
      "method",  "fabric",   "Gbps",     "iter_s",  "forward", "backward",
      "sendq",   "inversion", "wire",    "uplink",  "downlink", "server",
      "agghold", "recovery", "sspwait",  "other",    "net_share"};
  Table table(header);
  CsvWriter csv(bench::out("ext_critpath_blame.csv"), header);
  int malformed = 0;
  int uncovered = 0;
  int surface_mismatches = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Point& p = grid[i];
    const obs::BlameReport& blame = cells[i].blame;
    if (!blame.problems.empty() || blame.iterations.empty()) ++malformed;
    for (const obs::IterationBlame& ib : blame.iterations) {
      if (std::fabs(ib.attributed() - ib.window()) > 1e-6) ++uncovered;
    }
    // The RunResult surface must be the same analysis the engine returns.
    if (std::fabs(cells[i].run.blame_network_share -
                  blame.network_share()) > 1e-12) {
      ++surface_mismatches;
    }
    const double iters =
        blame.iterations.empty()
            ? 1.0
            : static_cast<double>(blame.iterations.size());
    std::vector<std::string> row = {core::sync_method_name(p.method),
                                    fabric_name(p),
                                    Table::num(p.bandwidth_gbps, 0),
                                    Table::num(blame.total_s / iters, 4)};
    for (int c = 0; c < obs::kBlameCount; ++c) {
      row.push_back(Table::num(blame.totals[static_cast<std::size_t>(c)] /
                                   iters, 4));
    }
    row.push_back(Table::num(blame.network_share() * 100.0, 2));
    table.add_row(row);
    csv.row(row);
  }
  std::printf("== per-iteration blame (seconds on the critical path) ==\n");
  table.print();
  std::printf("(csv: %s)\n\n", bench::out("ext_critpath_blame.csv").c_str());

  // What-if panel: first-order re-timing estimates per cell.
  const std::vector<std::string> wi_header = {
      "method", "fabric", "Gbps", "whatif", "est_iter_s", "speedup"};
  CsvWriter wi_csv(bench::out("ext_critpath_whatif.csv"), wi_header);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Point& p = grid[i];
    for (const obs::WhatIf& wi : obs::standard_what_ifs(cells[i].blame)) {
      wi_csv.row({core::sync_method_name(p.method), fabric_name(p),
                  Table::num(p.bandwidth_gbps, 0), wi.name,
                  Table::num(wi.estimated_mean_iteration_s, 6),
                  Table::num(wi.speedup_vs_measured, 2)});
    }
  }
  std::printf("(csv: %s)\n\n", bench::out("ext_critpath_whatif.csv").c_str());

  // Gate: the P3 story in every bandwidth-constrained cell.
  bool failed = false;
  for (std::size_t m = 0; m < methods.size(); ++m) {
    if (methods[m] != core::SyncMethod::kP3) continue;
    for (std::size_t b = 0; b < flat_bw.size(); ++b) {
      const std::size_t stride = flat_bw.size() + hier_bw.size();
      const std::size_t i = m * stride + b;
      if (!grid[i].constrained) continue;
      const double p3 = cells[i].blame.network_share();
      double base = 0.0;
      double tf = 0.0;
      for (std::size_t m2 = 0; m2 < methods.size(); ++m2) {
        const double share = cells[m2 * stride + b].blame.network_share();
        if (methods[m2] == core::SyncMethod::kBaseline) base = share;
        if (methods[m2] == core::SyncMethod::kTensorFlowStyle) tf = share;
      }
      std::printf("%.0f Gbps flat (constrained): network-wait share P3 "
                  "%.2f%% vs Baseline %.2f%% vs TensorFlow %.2f%%\n",
                  flat_bw[b], p3 * 100.0, base * 100.0, tf * 100.0);
      if (!(p3 < base && p3 < tf)) {
        std::fprintf(stderr,
                     "FAIL: P3's network-wait share is not strictly below "
                     "Baseline and TensorFlow at %.0f Gbps\n",
                     flat_bw[b]);
        failed = true;
      }
    }
  }
  std::printf("\n");

  // Gate: the infinite-bandwidth what-if for Baseline@5Gbps vs the actual
  // 100 Gbps rerun (same seed, same iteration counts).
  {
    const std::size_t stride = flat_bw.size() + hier_bw.size();
    std::size_t base5 = 0;
    for (std::size_t m = 0; m < methods.size(); ++m) {
      if (methods[m] == core::SyncMethod::kBaseline) base5 = m * stride + 1;
    }
    double est = 0.0;
    for (const obs::WhatIf& wi : obs::standard_what_ifs(cells[base5].blame)) {
      if (wi.name == "infinite_bandwidth") est = wi.estimated_mean_iteration_s;
    }
    const obs::BlameReport& truth_blame = cells[truth_index].blame;
    const double actual =
        truth_blame.iterations.empty()
            ? 0.0
            : truth_blame.total_s /
                  static_cast<double>(truth_blame.iterations.size());
    const double err = actual > 0.0 ? std::fabs(est - actual) / actual : 1.0;
    std::printf("what-if validation: Baseline@5Gbps infinite-bandwidth "
                "estimate %.6f s vs measured 100 Gbps iteration %.6f s "
                "(%.1f%% error, tolerance 10%%)\n\n",
                est, actual, err * 100.0);
    if (err > 0.10) {
      std::fprintf(stderr,
                   "FAIL: infinite-bandwidth what-if is %.1f%% off the "
                   "measured high-bandwidth rerun\n",
                   err * 100.0);
      failed = true;
    }
  }

  std::printf("the blame walk telescopes: every segment of every "
              "iteration's critical path lands in exactly one category, so "
              "shares sum to 100%% by construction. P3's win in the "
              "constrained regime is visible as the sendq+wire columns "
              "draining into backward compute; in the oversubscribed "
              "hierarchy the same columns show its broadcast traffic "
              "queueing at the rack relay instead.\n\n");

  if (malformed > 0) {
    std::fprintf(stderr, "FAIL: %d cell(s) produced a malformed causal "
                 "graph\n", malformed);
    failed = true;
  }
  if (uncovered > 0) {
    std::fprintf(stderr, "FAIL: %d iteration(s) whose blame does not cover "
                 "the iteration window\n", uncovered);
    failed = true;
  }
  if (surface_mismatches > 0) {
    std::fprintf(stderr, "FAIL: %d cell(s) where RunResult blame fields "
                 "disagree with the engine's report\n", surface_mismatches);
    failed = true;
  }
  if (failed) return 1;
  std::printf("critpath invariants held: %zu well-formed cells, full "
              "coverage, RunResult surface consistent, P3 collapses the "
              "network-wait share in every constrained cell.\n",
              grid.size());
  return 0;
}
