// Extension: DSSP adaptive staleness gate — chaos matrix with static-s
// ablation.
//
// DSSP replaces the BSP barrier with a bounded-staleness gate whose bound
// `s` an online controller adapts from the observed gate-wait distribution
// (see src/ps/staleness.h and PROTOCOL.md invariant 13). This bench runs
// the full policy ablation {adaptive, s=0..s_max} across one fault regime
// per chaos plane — a bursty straggler (rotating short NIC dips), a
// persistent straggler (one worker degraded all run), crash+restart,
// minority partition, and elastic join+drain — and scores each cell as
//
//   score = throughput / (1 + kStalenessTax * mean staleness bound)
//
// where mean staleness bound is the time-weighted average of the active
// bound (the staleness budget the run actually reserved) and kStalenessTax
// models the statistical-efficiency cost of a unit of staleness: SSP-style
// analyses and the DSSP paper put the convergence penalty of small bounds
// at a few percent per staleness step, so each reserved unit discounts
// throughput by 10% here. A policy therefore only wins by buying
// throughput with staleness it actually needed. Two hard gates make this
// binary a CI check, not just a plot:
//
//   1. every cell must report staleness_violations == 0 and
//      gate_wedge_ticks == 0 (the ground-truth audits of invariant 13);
//   2. the adaptive controller must beat every static bound on score in at
//      least one straggler regime (otherwise the controller is dead
//      weight and the ablation would tell you to pin `s`). This gate needs
//      runs long enough for the raise-then-decay story to exist at all, so
//      it is enforced only when the measured iteration count reaches
//      kWinGateMinIters — in particular --smoke (3 iterations) checks the
//      audits and golden determinism only.
//
// Exit 1 on either failure so the chaos-smoke job fails loudly.
//
// Expected shape: the burst regime is where adaptation pays. During the
// dip train small static bounds stall behind whichever worker is dipped
// (s=0 serializes every dip into the barrier) while the controller raises
// the bound until dips are absorbed; after the train it decays back to 0,
// so its reserved-staleness tax covers only the faulty phase while every
// static s>=1 cell pays for the whole run. Under the persistent straggler
// the laggard's rate deficit rebounds on every bound, so pinning s is
// competitive there — that regime (and crash / partition / elastic) mostly
// tests robustness: the excluded or retired node must not wedge the gate,
// and every cell stays audit-clean.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "model/zoo.h"

namespace {

using namespace p3;

constexpr int kSMax = 3;
/// Convergence tax per unit of reserved staleness (see header comment).
constexpr double kStalenessTax = 0.1;
/// Measured iterations below which the adaptive-must-win gate is skipped:
/// a 3-iteration smoke run ends before the controller can raise, hold and
/// decay, and the last s iterations of any run never wait on a round at
/// all, so tiny runs score free-running large bounds absurdly high.
constexpr int kWinGateMinIters = 10;

struct Regime {
  std::string name;
  bool straggler = false;  // participates in the adaptive-must-win gate
  std::function<void(ps::ClusterConfig&)> apply;
};

struct Policy {
  std::string name;
  int fixed_s = -1;  // -1 = adaptive
};

model::Workload bench_workload() {
  model::Workload w;
  w.model = model::toy_uniform(4, 120'000);
  w.batch_per_worker = 4;
  w.iter_compute_time = 0.020;
  return w;
}

ps::ClusterConfig cell_config(const Regime& regime, const Policy& policy) {
  ps::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.method = core::SyncMethod::kDSSP;
  cfg.bandwidth = gbps(1.0);
  cfg.latency = us(25);
  cfg.slice_params = 50'000;
  cfg.replication = 2;
  cfg.heartbeat_period = ms(5);
  cfg.suspicion_timeout = ms(25);
  cfg.max_sim_time = 600.0;
  cfg.staleness.s_min = 0;
  cfg.staleness.s_max = kSMax;
  cfg.staleness.window = 4;
  // One adaptation decision per fleet iteration (4 workers x window 4);
  // five calm windows before a decay, so the bound holds through the
  // burst regime's inter-dip gaps instead of thrashing raise/decay.
  cfg.staleness.decay_patience = 5;
  cfg.staleness.fixed_s = policy.fixed_s;
  regime.apply(cfg);
  return cfg;
}

std::vector<Regime> regimes() {
  std::vector<Regime> r;
  r.push_back({"straggler-burst", true, [](ps::ClusterConfig& cfg) {
                 // Rotating transient stragglers: a train of short, deep
                 // NIC dips (80 ms at 8% rate, one every 150 ms) walks
                 // across workers 1..3 and then stops, leaving a calm
                 // tail. Variance, not a rate deficit: between dips each
                 // worker has full capacity, so a bound that covers one
                 // dip absorbs the train entirely while s=0 serializes
                 // every dip into the barrier. This is the regime where
                 // the controller must win: raise through the train,
                 // decay in the tail.
                 for (int k = 0; k < 5; ++k) {
                   net::Degradation dip;
                   dip.node = 1 + (k % 3);
                   dip.start = 0.15 * k;
                   dip.end = dip.start + 0.08;
                   dip.bandwidth_factor = 0.08;
                   dip.extra_latency = us(100);
                   cfg.faults.degradations.push_back(dip);
                 }
                 cfg.compute_jitter = 0.05;
               }});
  r.push_back({"straggler-persistent", true, [](ps::ClusterConfig& cfg) {
                 // One worker on a halved NIC for the whole run:
                 // heartbeats still flow, so it stays in the eligible set
                 // and the gate must manage a permanent rate deficit —
                 // which no bound can hide, so pinned cells are
                 // competitive here and the cell mostly proves the
                 // controller stays audit-clean against a laggard that
                 // never heals.
                 net::Degradation deg;
                 deg.node = 3;
                 deg.start = 0.0;
                 deg.end = 600.0;
                 deg.bandwidth_factor = 0.5;
                 deg.extra_latency = us(100);
                 cfg.faults.degradations.push_back(deg);
                 cfg.compute_jitter = 0.1;
               }});
  r.push_back({"crash", false, [](ps::ClusterConfig& cfg) {
                 // Crash+restart: the dead straggler leaves the eligible
                 // set at suspicion, rejoins at the rejoin_slack floor.
                 cfg.faults.crashes.push_back({3, 0.05, 0.04});
               }});
  r.push_back({"partition", false, [](ps::ClusterConfig& cfg) {
                 // Minority fencing: {0,1} cut off, quorum side {2,3,4}
                 // keeps moving; fenced clocks are excluded until heal.
                 cfg.n_workers = 5;
                 cfg.faults.lease_duration = 0.1;
                 net::NetPartition cut;
                 cut.side_a = {0, 1};
                 cut.side_b = {2, 3, 4};
                 cut.start = 0.05;
                 cut.heal = 0.4;
                 cfg.faults.partitions.push_back(cut);
               }});
  r.push_back({"elastic", false, [](ps::ClusterConfig& cfg) {
                 // A joiner enters the clock roster mid-run and a drained
                 // node hands its clock off with the goodbye handshake.
                 cfg.faults.joins.push_back({4, 0.05});
                 cfg.faults.leaves.push_back({1, 0.15});
               }});
  return r;
}

std::vector<Policy> policies() {
  std::vector<Policy> p;
  p.push_back({"adaptive", -1});
  for (int s = 0; s <= kSMax; ++s) {
    p.push_back({"s=" + std::to_string(s), s});
  }
  return p;
}

double score(const ps::RunResult& r) {
  return r.throughput / (1.0 + kStalenessTax * r.mean_staleness_bound);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/2,
                           /*default_measured=*/30);
  const int warmup = opts.measure().warmup;
  const int measured = opts.measure().measured;

  std::printf("== Extension: DSSP staleness-gate chaos matrix "
              "(adaptive vs static-s ablation) ==\n\n");
  const auto workload = bench_workload();
  const auto regs = regimes();
  const auto pols = policies();

  std::vector<std::function<ps::RunResult()>> jobs;
  for (const Regime& reg : regs) {
    for (const Policy& pol : pols) {
      jobs.push_back([&workload, cfg = cell_config(reg, pol), warmup,
                      measured] {
        ps::Cluster cluster(workload, cfg);
        ps::RunResult result = cluster.run(warmup, measured);
        cluster.drain();
        return result;
      });
    }
  }
  runner::ParallelExecutor executor(opts.measure().threads);
  const auto results = executor.map(std::move(jobs));

  const std::vector<std::string> header = {
      "regime",     "policy",      "samples/s", "score",
      "mean_bound", "final_bound", "raises",    "decays",
      "gate_blocks", "violations", "wedge_ticks"};
  Table table(header);
  CsvWriter csv(bench::out("ext_dssp.csv"), header);
  bool audits_clean = true;
  std::size_t i = 0;
  for (const Regime& reg : regs) {
    for (const Policy& pol : pols) {
      const ps::RunResult& r = results[i++];
      audits_clean &=
          r.staleness_violations == 0 && r.gate_wedge_ticks == 0;
      const std::vector<std::string> row = {
          reg.name,
          pol.name,
          Table::num(r.throughput, 2),
          Table::num(score(r), 2),
          Table::num(r.mean_staleness_bound, 3),
          std::to_string(r.final_staleness_bound),
          std::to_string(r.staleness_raises),
          std::to_string(r.staleness_decays),
          std::to_string(r.dssp_gate_blocks),
          std::to_string(r.staleness_violations),
          std::to_string(r.gate_wedge_ticks)};
      table.add_row(row);
      csv.row(row);
    }
  }
  table.print();
  std::printf("(csv: %s)\n\n", bench::out("ext_dssp.csv").c_str());

  // Gate 1: invariant-13 ground-truth audits, every cell.
  if (!audits_clean) {
    std::printf("FAIL: a cell reported staleness violations or gate wedge "
                "ticks (invariant 13 broken)\n");
    return 1;
  }
  // Gate 2: the controller must out-score every static bound somewhere on
  // the straggler plane, or adapting `s` buys nothing over pinning it.
  // Needs runs long enough for raise-hold-decay to play out (see
  // kWinGateMinIters).
  if (measured < kWinGateMinIters) {
    std::printf("adaptive-must-win gate skipped: %d measured iterations "
                "(< %d) end before the controller can raise, hold and "
                "decay; audits and goldens only.\n",
                measured, kWinGateMinIters);
    return 0;
  }
  bool adaptive_wins_somewhere = false;
  i = 0;
  for (const Regime& reg : regs) {
    double adaptive_score = 0.0;
    double best_static = 0.0;
    std::string best_static_name;
    for (const Policy& pol : pols) {
      const double s = score(results[i++]);
      if (pol.fixed_s < 0) {
        adaptive_score = s;
      } else if (s > best_static) {
        best_static = s;
        best_static_name = pol.name;
      }
    }
    if (reg.straggler) {
      const bool wins = adaptive_score > best_static;
      std::printf("%-21s adaptive %.2f vs best static %s %.2f -> %s\n",
                  reg.name.c_str(), adaptive_score, best_static_name.c_str(),
                  best_static, wins ? "adaptive wins" : "static wins");
      adaptive_wins_somewhere |= wins;
    }
  }
  if (!adaptive_wins_somewhere) {
    std::printf("FAIL: adaptive controller beat no static bound in any "
                "straggler regime\n");
    return 1;
  }
  std::printf("\nthe controller pays staleness only while a live straggler "
              "blocks the gate and decays it back afterwards, so it "
              "out-scores every pinned bound on at least one straggler "
              "regime while the crash/partition/elastic planes stay within "
              "audit-clean noise of the static cells.\n");
  return 0;
}
