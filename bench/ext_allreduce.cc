// Extension (Section 6): applying P3's principles to ring allreduce.
//
// The paper argues parameter slicing and priority-based propagation
// generalize beyond parameter servers "to any gradient aggregation method".
// This bench compares, across bandwidths on the paper's workloads:
//
//   PS-Baseline   MXNet KVStore parameter server
//   PS-P3         the paper's system
//   AR-per-layer  ring allreduce, one collective per layer (no fusion)
//   AR-fused      ring allreduce with 25 MB gradient bucketing (the
//                 DDP/Horovod design that later mainstreamed this idea)
//   AR-P3         ring allreduce with P3's slicing + priority scheduling
//
// Expected shape: allreduce moves less data per NIC than a colocated PS
// (2(n-1)/n x model vs ~1.5 x model each way), fusion fixes per-layer
// launch overhead, and priority slicing buys the same forward-gating
// overlap it buys the PS — so AR-P3 >= AR-fused >= AR-per-layer at
// constrained bandwidth.
#include <cstdio>

#include "allreduce/ring.h"
#include "bench_util.h"
#include "common/options.h"
#include "model/zoo.h"

namespace {

using namespace p3;

runner::Series ar_series(const model::Workload& workload, ar::ArSchedule s,
                         const std::vector<double>& bandwidths,
                         const runner::MeasureOptions& opts) {
  runner::Series out;
  out.name = ar::ar_schedule_name(s);
  for (double bw : bandwidths) {
    ar::ArConfig cfg;
    cfg.n_workers = 4;
    cfg.schedule = s;
    cfg.bandwidth = gbps(bw);
    cfg.rx_bandwidth = gbps(100);
    ar::ArCluster cluster(workload, cfg);
    out.x.push_back(bw);
    out.y.push_back(cluster.run(opts.warmup, opts.measured).throughput);
  }
  return out;
}

runner::Series ps_series(const model::Workload& workload,
                         core::SyncMethod method,
                         const std::vector<double>& bandwidths,
                         const runner::MeasureOptions& opts) {
  ps::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.rx_bandwidth = gbps(100);
  auto series = runner::bandwidth_sweep(workload, cfg, {method}, bandwidths,
                                        opts);
  series[0].name = "PS-" + series[0].name;
  return series[0];
}

void run_model(const char* title, const model::Workload& workload,
               const std::vector<double>& bandwidths, const char* csv,
               const runner::MeasureOptions& opts) {
  std::vector<runner::Series> all;
  all.push_back(ps_series(workload, core::SyncMethod::kBaseline, bandwidths,
                          opts));
  all.push_back(ps_series(workload, core::SyncMethod::kP3, bandwidths, opts));
  all.push_back(ar_series(workload, ar::ArSchedule::kPerLayer, bandwidths,
                          opts));
  all.push_back(ar_series(workload, ar::ArSchedule::kFused, bandwidths, opts));
  all.push_back(ar_series(workload, ar::ArSchedule::kPrioritySliced,
                          bandwidths, opts));
  bench::report_series(title, "bandwidth (Gbps)",
                       workload.model.sample_unit + "/s", all, csv);
  bench::report_speedup(workload.model.name + " (allreduce)", all[3], all[4]);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/3,
                           /*default_measured=*/8);
  const runner::MeasureOptions& m = opts.measure();

  std::printf("== Extension: P3 principles on ring allreduce ==\n\n");
  run_model("ResNet-50", model::workload_resnet50(), {1, 2, 3, 4, 6, 8},
            "ext_allreduce_resnet50.csv", m);
  run_model("VGG-19", model::workload_vgg19(), {2.5, 5, 10, 15, 20},
            "ext_allreduce_vgg19.csv", m);

  std::printf("paper (Section 6): P3's slicing and priority generalize to "
              "other aggregation methods\n");
  return 0;
}
