// Extension: network-partition chaos sweep — split-brain safety under
// symmetric, asymmetric and flapping cuts, with and without clock skew.
//
// The paper's cluster assumes a connected fabric; this bench cleaves it.
// Five colocated worker+server nodes run replicated shards (R = 2) under
// lease-based leadership while a fault plan partitions {0, 1} from
// {2, 3, 4} mid-run:
//
//   symmetric   both directions severed for [0.3 s, 0.7 s) — the classic
//               split-brain drill: the majority side fails over groups it
//               can, the minority side must fence and park
//   asymmetric  only minority -> majority traffic is cut; the minority
//               still hears everyone, so only the beacon *echo* (the
//               sender's liveness belief about the receiver) can tell a
//               straddling primary that its chain peer stopped hearing it
//   flapping    the symmetric cut oscillates at a 0.2 s period — too short
//               for any lease to expire, all churn and no failover
//
// Every scenario runs twice: once on one global clock and once with each
// node's clock drifting (seeded rate error up to 5e-4, offset up to 20 ms);
// lease margins must absorb the disagreement.
//
// The headline numbers are the safety invariants, not throughput:
// `dual_primary_windows` and the fabric's ground-truth
// `cross_partition_deliveries` audit must read 0 in every cell — the
// binary exits 1 otherwise, so CI gates on quorum/fence correctness under
// every cut shape, for all five sync methods.
//
// Each sweep point owns a private cluster, so the grid fans across the
// ParallelExecutor; identical seeds reproduce identical CSVs at any
// --threads value, and the CI chaos job diffs the --smoke output against
// checked-in goldens.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "model/zoo.h"

namespace {

using namespace p3;

enum class Scenario { kSymmetric = 0, kAsymmetric = 1, kFlapping = 2 };

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kSymmetric: return "symmetric";
    case Scenario::kAsymmetric: return "asymmetric";
    case Scenario::kFlapping: return "flapping";
  }
  return "?";
}

struct Point {
  core::SyncMethod method;
  Scenario scenario;
  bool skew;
};

ps::ClusterConfig point_config(const Point& p) {
  ps::ClusterConfig cfg;
  cfg.n_workers = 5;
  cfg.method = p.method;
  cfg.bandwidth = gbps(10);
  cfg.rx_bandwidth = gbps(100);
  cfg.replication = 2;
  cfg.checkpoint_period = 0.5;
  cfg.max_sim_time = 600.0;
  cfg.faults.lease_duration = 0.25;

  net::NetPartition cut;
  cut.side_a = {0, 1};        // minority side
  cut.side_b = {2, 3, 4};     // majority side
  cut.start = 0.3;
  cut.heal = 0.7;
  cut.symmetric = p.scenario != Scenario::kAsymmetric;
  if (p.scenario == Scenario::kFlapping) cut.flap_period = 0.2;
  cfg.faults.partitions.push_back(cut);

  if (p.skew) {
    // Margins must cover 2 * rate * lease = 0.25 ms of cross-clock
    // disagreement; the constant offsets are provably inert (every lease
    // comparison is same-clock) and exist to prove exactly that.
    cfg.faults.clock_drift_rate = 5e-4;
    cfg.faults.clock_offset_bound = 0.02;
  }
  return cfg;
}

ps::RunResult run_once(const model::Workload& workload,
                       const ps::ClusterConfig& cfg, int warmup,
                       int measured) {
  ps::Cluster cluster(workload, cfg);
  ps::RunResult result = cluster.run(warmup, measured);
  cluster.drain();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/2,
                           /*default_measured=*/8);
  const int warmup = opts.measure().warmup;
  const int measured = opts.measure().measured;
  const int threads = opts.measure().threads;

  std::printf("== Extension: partition tolerance (ResNet-50, 5 workers "
              "{0,1}|{2,3,4}, 10 Gbps, colocated replicated servers, "
              "leases) ==\n\n");
  const auto workload = model::workload_resnet50();
  const std::vector<core::SyncMethod> methods = {
      core::SyncMethod::kBaseline, core::SyncMethod::kSlicingOnly,
      core::SyncMethod::kP3, core::SyncMethod::kTensorFlowStyle,
      core::SyncMethod::kPoseidonWFBP};
  const std::vector<Scenario> scenarios = {
      Scenario::kSymmetric, Scenario::kAsymmetric, Scenario::kFlapping};

  std::vector<Point> grid;
  for (auto method : methods) {
    for (auto scenario : scenarios) {
      for (bool skew : {false, true}) grid.push_back({method, scenario, skew});
    }
  }

  std::vector<std::function<ps::RunResult()>> jobs;
  jobs.reserve(grid.size());
  for (const Point& p : grid) {
    jobs.push_back([&workload, cfg = point_config(p), warmup, measured] {
      return run_once(workload, cfg, warmup, measured);
    });
  }
  runner::ParallelExecutor executor(threads);
  const auto results = executor.map(std::move(jobs));

  // Throughput series (skew-free cells): one line per method, cut shapes on
  // the x axis.
  std::vector<runner::Series> tput;
  {
    std::size_t i = 0;
    for (auto method : methods) {
      runner::Series s;
      s.name = core::sync_method_name(method);
      for (auto scenario : scenarios) {
        s.x.push_back(static_cast<double>(scenario));
        s.y.push_back(results[i].throughput);
        i += 2;  // skip the skewed twin; counters table covers it
      }
      tput.push_back(std::move(s));
    }
  }
  bench::report_series(
      "throughput across cut shapes (0=symmetric, 1=asymmetric, 2=flapping; "
      "skew-free cells)",
      "scenario", "images/s", tput, "ext_partitions.csv");

  // Partition-counter table: the mechanics behind (and the proof of) the
  // throughput numbers.
  const std::vector<std::string> header = {
      "method",       "scenario",  "skew",   "part_drops",
      "parked",       "q_denied",  "failovers", "lease_expire",
      "supersessions", "stale",    "dual",   "xpart",
      "images/s"};
  Table table(header);
  CsvWriter csv(bench::out("ext_partitions_counters.csv"), header);
  int dual_violations = 0;
  int xpart_violations = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Point& p = grid[i];
    const ps::RunResult& r = results[i];
    if (r.dual_primary_windows != 0) ++dual_violations;
    if (r.cross_partition_deliveries != 0) ++xpart_violations;
    const std::vector<std::string> row = {
        core::sync_method_name(p.method),
        scenario_name(p.scenario),
        p.skew ? "on" : "off",
        std::to_string(r.partition_drops),
        std::to_string(r.parked_pushes),
        std::to_string(r.quorum_denied_failovers),
        std::to_string(r.failovers),
        std::to_string(r.lease_expiries),
        std::to_string(r.supersessions),
        std::to_string(r.stale_pushes),
        std::to_string(r.dual_primary_windows),
        std::to_string(r.cross_partition_deliveries),
        Table::num(r.throughput, 2)};
    table.add_row(row);
    csv.row(row);
  }
  std::printf("== partition counters ==\n");
  table.print();
  std::printf("(csv: %s)\n\n",
              bench::out("ext_partitions_counters.csv").c_str());

  std::printf("a cut freezes every shard group without a majority-side "
              "quorum: minority primaries self-fence (echo-starved or "
              "quorum-starved), minority workers park pushes, and the "
              "majority fails over only the groups whose replica chain "
              "straddles the cut. Heal drains the parked pushes through "
              "the bounded-staleness re-admission path; the contribution "
              "ledger keeps re-applied slices exactly-once.\n");
  bool failed = false;
  if (dual_violations > 0) {
    std::fprintf(stderr,
                 "FAIL: %d cell(s) observed a dual-primary window under a "
                 "partition\n",
                 dual_violations);
    failed = true;
  }
  if (xpart_violations > 0) {
    std::fprintf(stderr,
                 "FAIL: %d cell(s) delivered a message across an active "
                 "cut\n",
                 xpart_violations);
    failed = true;
  }
  if (failed) return 1;
  std::printf("partition invariants held: 0 dual-primary windows and 0 "
              "cross-partition deliveries in all %zu cells.\n",
              grid.size());
  return 0;
}
