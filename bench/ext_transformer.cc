// Extension: does P3 help the architecture that came after the paper?
//
// The Transformer (Vaswani et al. 2017) replaced Sockeye-style RNNs within
// a year of the paper's publication. Communication-wise it combines both
// pathologies the paper identifies: a dominant tied embedding at the very
// front (24% of parameters, generated last, needed first — the Sockeye
// case) and a long trunk of uniform medium tensors (the ResNet case). This
// bench sweeps bandwidth over every synchronization method, on both the
// parameter-server and the ring-allreduce substrate.
#include <cstdio>

#include "allreduce/ring.h"
#include "bench_util.h"
#include "common/options.h"
#include "model/zoo.h"

namespace {

using namespace p3;

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts(argc, argv, /*default_warmup=*/3,
                           /*default_measured=*/8);
  const runner::MeasureOptions& m = opts.measure();

  const auto workload = model::workload_transformer();
  std::printf("== Extension: Transformer-base NMT (%.1fM params, heaviest "
              "layer %.0f%% at position %d/%d) ==\n\n",
              static_cast<double>(workload.model.total_params()) / 1e6,
              100.0 * workload.model.heaviest_fraction(),
              workload.model.heaviest_layer() + 1,
              workload.model.num_layers());

  const std::vector<double> bandwidths = {1, 2, 4, 6, 8, 10, 15};

  // Parameter-server substrate.
  ps::ClusterConfig ps_cfg;
  ps_cfg.n_workers = 4;
  ps_cfg.rx_bandwidth = gbps(100);
  auto series = runner::bandwidth_sweep(
      workload, ps_cfg,
      {core::SyncMethod::kBaseline, core::SyncMethod::kSlicingOnly,
       core::SyncMethod::kP3},
      bandwidths, m);

  // Ring-allreduce substrate.
  for (auto schedule : {ar::ArSchedule::kFused, ar::ArSchedule::kPrioritySliced}) {
    runner::Series s;
    s.name = ar::ar_schedule_name(schedule);
    for (double bw : bandwidths) {
      ar::ArConfig cfg;
      cfg.n_workers = 4;
      cfg.schedule = schedule;
      cfg.bandwidth = gbps(bw);
      cfg.rx_bandwidth = gbps(100);
      ar::ArCluster cluster(workload, cfg);
      s.x.push_back(bw);
      s.y.push_back(cluster.run(m.warmup, m.measured).throughput);
    }
    series.push_back(std::move(s));
  }

  bench::report_series("Transformer-base, 4 workers", "bandwidth (Gbps)",
                       "sentences/s", series, "ext_transformer.csv");
  bench::report_speedup("Transformer (PS)", series[0], series[2]);
  bench::report_speedup("Transformer (AR)", series[3], series[4]);
  return 0;
}
