#include "train/mlp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "train/data.h"
#include "train/sgd.h"

namespace p3::train {
namespace {

TEST(Mlp, ParameterLayout) {
  Rng rng(1);
  Mlp net({4, 8, 3}, rng);
  ASSERT_EQ(net.params().size(), 4u);  // W0 b0 W1 b1
  EXPECT_EQ(net.params()[0].value.rows(), 4u);
  EXPECT_EQ(net.params()[0].value.cols(), 8u);
  EXPECT_EQ(net.params()[1].value.cols(), 8u);
  EXPECT_EQ(net.params()[2].value.rows(), 8u);
  EXPECT_EQ(net.total_params(), 4 * 8 + 8 + 8 * 3 + 3);
}

TEST(Mlp, ForwardProducesProbabilities) {
  Rng rng(2);
  Mlp net({5, 6, 4}, rng);
  Tensor batch = Tensor::he_normal(7, 5, rng);
  const Tensor& probs = net.forward(batch);
  EXPECT_EQ(probs.rows(), 7u);
  EXPECT_EQ(probs.cols(), 4u);
  for (std::size_t r = 0; r < 7; ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_GE(probs.at(r, c), 0.0f);
      row_sum += probs.at(r, c);
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-5);
  }
}

TEST(Mlp, BackwardLossIsCrossEntropy) {
  Rng rng(3);
  Mlp net({3, 2}, rng);  // linear softmax classifier
  Tensor batch(1, 3, 0.0f);
  const double loss = net.backward(batch, {0});
  // Zero input, zero bias -> uniform probabilities -> loss = ln(2).
  EXPECT_NEAR(loss, std::log(2.0), 1e-5);
}

// Gradient check: analytic gradients vs central finite differences.
TEST(Mlp, GradientsMatchFiniteDifferences) {
  Rng rng(4);
  Mlp net({4, 5, 3}, rng);
  Tensor batch = Tensor::he_normal(6, 4, rng);
  std::vector<int> labels = {0, 1, 2, 1, 0, 2};

  net.backward(batch, labels);
  // Snapshot analytic gradients.
  std::vector<Tensor> analytic;
  for (const auto& p : net.params()) analytic.push_back(p.grad);

  const float eps = 1e-3f;
  for (std::size_t l = 0; l < net.params().size(); ++l) {
    auto& value = net.params()[l].value.raw();
    // Spot-check a handful of coordinates per tensor.
    for (std::size_t j = 0; j < value.size(); j += std::max<std::size_t>(1, value.size() / 5)) {
      const float orig = value[j];
      value[j] = orig + eps;
      const double lp = net.backward(batch, labels);
      value[j] = orig - eps;
      const double lm = net.backward(batch, labels);
      value[j] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(analytic[l].raw()[j], numeric, 5e-3)
          << "param " << l << " index " << j;
    }
  }
}

TEST(Mlp, PredictsArgmax) {
  Rng rng(5);
  Mlp net({2, 3}, rng);
  // Craft weights so class 2 dominates for positive x0.
  net.params()[0].value.fill(0.0f);
  net.params()[0].value.at(0, 2) = 5.0f;
  net.params()[1].value.fill(0.0f);
  Tensor batch(1, 2, 0.0f);
  batch.at(0, 0) = 1.0f;
  EXPECT_EQ(net.predict(batch)[0], 2);
}

TEST(Mlp, TrainsToSeparateEasyData) {
  // Low-noise mixture: a few epochs of SGD should exceed 90% accuracy.
  MixtureConfig mc;
  mc.classes = 4;
  mc.dim = 8;
  mc.train_per_class = 100;
  mc.test_per_class = 50;
  mc.noise = 0.3;
  const Dataset ds = make_gaussian_mixture(mc);

  Rng rng(6);
  Mlp net({8, 16, 4}, rng);
  Sgd opt(SgdConfig{.lr = 0.1, .momentum = 0.9});
  std::vector<std::size_t> order(ds.train_y.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng shuffle_rng(7);
  for (int epoch = 0; epoch < 20; ++epoch) {
    shuffle_rng.shuffle(order);
    for (std::size_t i = 0; i + 32 <= order.size(); i += 32) {
      const Tensor batch = ds.train_batch(i, i + 32, order);
      const auto labels = ds.train_batch_labels(i, i + 32, order);
      net.backward(batch, labels);
      opt.step(net.params(), epoch);
    }
  }
  EXPECT_GT(net.accuracy(ds.test_x, ds.test_y), 0.90);
}

TEST(Mlp, InvalidConstructionThrows) {
  Rng rng(1);
  EXPECT_THROW(Mlp({5}, rng), std::invalid_argument);
}

TEST(Mlp, LabelMismatchThrows) {
  Rng rng(1);
  Mlp net({2, 2}, rng);
  Tensor batch(3, 2);
  EXPECT_THROW(net.backward(batch, {0, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace p3::train
