#include "core/sync_method.h"

#include <gtest/gtest.h>

namespace p3::core {
namespace {

TEST(SyncMethod, BaselineFlags) {
  const auto cfg = sync_config(SyncMethod::kBaseline);
  EXPECT_FALSE(cfg.slicing);
  EXPECT_FALSE(cfg.priority);
  EXPECT_FALSE(cfg.immediate_broadcast);
  EXPECT_FALSE(cfg.deferred_pull);
}

TEST(SyncMethod, SlicingOnlyFlags) {
  // "Slicing" = the P3 implementation with priority disabled: slicing and
  // immediate broadcast, FIFO ordering.
  const auto cfg = sync_config(SyncMethod::kSlicingOnly);
  EXPECT_TRUE(cfg.slicing);
  EXPECT_FALSE(cfg.priority);
  EXPECT_TRUE(cfg.immediate_broadcast);
}

TEST(SyncMethod, P3Flags) {
  const auto cfg = sync_config(SyncMethod::kP3);
  EXPECT_TRUE(cfg.slicing);
  EXPECT_TRUE(cfg.priority);
  EXPECT_TRUE(cfg.immediate_broadcast);
  EXPECT_FALSE(cfg.deferred_pull);
}

TEST(SyncMethod, TensorFlowStyleFlags) {
  const auto cfg = sync_config(SyncMethod::kTensorFlowStyle);
  EXPECT_FALSE(cfg.slicing);
  EXPECT_TRUE(cfg.deferred_pull);
}

TEST(SyncMethod, PoseidonMatchesBaselineTransport) {
  const auto a = sync_config(SyncMethod::kBaseline);
  const auto b = sync_config(SyncMethod::kPoseidonWFBP);
  EXPECT_EQ(a.slicing, b.slicing);
  EXPECT_EQ(a.priority, b.priority);
  EXPECT_EQ(a.immediate_broadcast, b.immediate_broadcast);
  EXPECT_EQ(a.deferred_pull, b.deferred_pull);
}

TEST(SyncMethod, DSSPUsesP3Transport) {
  // DSSP relaxes the barrier, not the transport: same flag set as P3.
  const auto a = sync_config(SyncMethod::kP3);
  const auto b = sync_config(SyncMethod::kDSSP);
  EXPECT_EQ(a.slicing, b.slicing);
  EXPECT_EQ(a.priority, b.priority);
  EXPECT_EQ(a.immediate_broadcast, b.immediate_broadcast);
  EXPECT_EQ(a.deferred_pull, b.deferred_pull);
}

TEST(SyncMethod, NamesRoundTrip) {
  for (SyncMethod m :
       {SyncMethod::kBaseline, SyncMethod::kSlicingOnly, SyncMethod::kP3,
        SyncMethod::kTensorFlowStyle, SyncMethod::kPoseidonWFBP,
        SyncMethod::kDSSP}) {
    EXPECT_EQ(parse_sync_method(sync_method_name(m)), m);
  }
}

TEST(SyncMethod, ParseIsCaseInsensitive) {
  EXPECT_EQ(parse_sync_method("baseline"), SyncMethod::kBaseline);
  EXPECT_EQ(parse_sync_method("p3"), SyncMethod::kP3);
  EXPECT_EQ(parse_sync_method("TENSORFLOW"), SyncMethod::kTensorFlowStyle);
  EXPECT_EQ(parse_sync_method("dssp"), SyncMethod::kDSSP);
  EXPECT_EQ(parse_sync_method("pOsEiDoN"), SyncMethod::kPoseidonWFBP);
}

TEST(SyncMethod, PaperSeriesNames) {
  EXPECT_EQ(sync_method_name(SyncMethod::kBaseline), "Baseline");
  EXPECT_EQ(sync_method_name(SyncMethod::kSlicingOnly), "Slicing");
  EXPECT_EQ(sync_method_name(SyncMethod::kP3), "P3");
}

TEST(SyncMethod, ParseUnknownThrows) {
  EXPECT_THROW(parse_sync_method("nonsense"), std::invalid_argument);
  // The error message enumerates every valid method so a CLI typo is
  // self-correcting.
  try {
    parse_sync_method("bsp");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (const char* name :
         {"Baseline", "Slicing", "P3", "TensorFlow", "Poseidon", "DSSP"}) {
      EXPECT_NE(msg.find(name), std::string::npos) << msg;
    }
  }
}

}  // namespace
}  // namespace p3::core
