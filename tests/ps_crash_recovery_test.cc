// Crash recovery end to end: replicated shards survive a permanent server
// crash via deterministic failover, restarted servers rehydrate from
// checkpoint + leader delta, crashed workers rejoin under bounded
// staleness, gradients apply exactly once (version-vector check), and
// same-seed crash runs are bit-identical at any runner thread count.
#include "ps/cluster.h"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <vector>

#include "model/zoo.h"
#include "runner/parallel.h"

namespace p3::ps {
namespace {

using core::SyncMethod;

model::Workload small_workload(int layers = 4, std::int64_t params = 120'000,
                               TimeS compute = 0.020) {
  model::Workload w;
  w.model = model::toy_uniform(layers, params);
  w.batch_per_worker = 4;
  w.iter_compute_time = compute;
  return w;
}

ClusterConfig crash_config(SyncMethod method, int workers = 4) {
  ClusterConfig cfg;
  cfg.n_workers = workers;
  cfg.method = method;
  cfg.bandwidth = gbps(1.0);
  cfg.latency = us(25);
  cfg.slice_params = 50'000;
  cfg.replication = 2;
  cfg.heartbeat_period = ms(5);
  cfg.suspicion_timeout = ms(25);
  cfg.max_sim_time = 60.0;  // fail fast if recovery wedges
  return cfg;
}

constexpr SyncMethod kAllMethods[] = {
    SyncMethod::kBaseline, SyncMethod::kSlicingOnly, SyncMethod::kP3,
    SyncMethod::kTensorFlowStyle, SyncMethod::kPoseidonWFBP};

/// Exactly-once check: every slice's version vector equals the iteration
/// count, and every *surviving* worker saw every layer reach it.
void expect_recovered(const Cluster& cluster, int layers,
                      std::int64_t iterations,
                      const std::vector<int>& live_workers) {
  const auto& part = cluster.partition();
  for (std::int64_t s = 0; s < part.num_slices(); ++s) {
    EXPECT_EQ(cluster.slice_version(s), iterations) << "slice " << s;
  }
  for (int w : live_workers) {
    for (int l = 0; l < layers; ++l) {
      EXPECT_EQ(cluster.worker_layer_version(w, l), iterations)
          << "worker " << w << " layer " << l;
    }
  }
}

// ---------------------------------------------------------------------------
// Permanent server+worker crash with a live replica: every sync method
// completes and applies each surviving round exactly once.
// ---------------------------------------------------------------------------

class CrashFailover : public ::testing::TestWithParam<SyncMethod> {};

TEST_P(CrashFailover, PermanentCrashWithReplicaConverges) {
  ClusterConfig cfg = crash_config(GetParam());
  net::NodeCrash crash;
  crash.node = 3;  // colocated: kills worker 3 and server 3 forever
  crash.at = 0.05;
  cfg.faults.crashes.push_back(crash);

  Cluster cluster(small_workload(), cfg);
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_EQ(result.crashes, 1);
  EXPECT_EQ(result.restarts, 0);
  // Server 3's groups must have moved to the next live chain replica.
  EXPECT_GE(result.failovers, 1);
  expect_recovered(cluster, 4, iterations, {0, 1, 2});
  // The dead node's NIC went silent: survivors' views agree it is gone.
  for (int n = 0; n < 3; ++n) {
    EXPECT_FALSE(cluster.membership_view(n).alive(3)) << "observer " << n;
  }
  EXPECT_TRUE(cluster.simulator().idle());
  EXPECT_EQ(cluster.reliable_in_flight(), 0);
  EXPECT_GT(result.heartbeats_sent, 0);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, CrashFailover,
                         ::testing::ValuesIn(kAllMethods));

// ---------------------------------------------------------------------------
// Worker crash + restart on dedicated servers: the worker rejoins under the
// bounded-staleness window and still reaches the iteration target.
// ---------------------------------------------------------------------------

TEST(CrashRecovery, WorkerRejoinsAfterRestart) {
  ClusterConfig cfg = crash_config(SyncMethod::kP3);
  cfg.dedicated_servers = true;  // crash a pure worker node
  cfg.replication = 1;
  net::NodeCrash crash;
  crash.node = 2;
  crash.at = 0.05;
  crash.restart_after = 0.04;
  cfg.faults.crashes.push_back(crash);

  Cluster cluster(small_workload(), cfg);
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_EQ(result.crashes, 1);
  EXPECT_EQ(result.restarts, 1);
  EXPECT_EQ(result.worker_rejoins, 1);
  EXPECT_EQ(result.failovers, 0);  // no server was lost
  EXPECT_GT(result.max_rejoin_lag, 0.0);
  // The rejoined worker completed the run too: all four gates closed at the
  // target, and every shard applied exactly `iterations` rounds.
  expect_recovered(cluster, 4, iterations, {0, 1, 2, 3});
  EXPECT_TRUE(cluster.simulator().idle());
  EXPECT_EQ(cluster.reliable_in_flight(), 0);
}

// ---------------------------------------------------------------------------
// Server crash + restart with checkpoints: the restarted server rehydrates
// from its checkpoint plus a delta from the current leader.
// ---------------------------------------------------------------------------

TEST(CrashRecovery, ServerRehydratesFromCheckpointAndLeaderDelta) {
  ClusterConfig cfg = crash_config(SyncMethod::kP3);
  cfg.checkpoint_period = 0.02;
  net::NodeCrash crash;
  crash.node = 1;  // colocated server+worker, back after 30 ms
  crash.at = 0.06;
  crash.restart_after = 0.03;
  cfg.faults.crashes.push_back(crash);

  Cluster cluster(small_workload(), cfg);
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_EQ(result.crashes, 1);
  EXPECT_EQ(result.restarts, 1);
  EXPECT_EQ(result.rehydrations, 1);
  EXPECT_EQ(result.worker_rejoins, 1);
  EXPECT_GE(result.checkpoints_written, 1);
  EXPECT_GT(result.checkpoint_bytes, 0);
  EXPECT_GT(result.mean_rehydration_time, 0.0);
  expect_recovered(cluster, 4, iterations, {0, 1, 2, 3});
  EXPECT_TRUE(cluster.simulator().idle());
}

// ---------------------------------------------------------------------------
// Exactly-once accounting under a crash: goodput-level duplicates are
// suppressed, wire sees the retries, and version vectors never overshoot.
// ---------------------------------------------------------------------------

TEST(CrashRecovery, RepushesNeverDoubleApply) {
  ClusterConfig cfg = crash_config(SyncMethod::kBaseline);
  net::NodeCrash crash;
  crash.node = 0;  // crash the *first* server: its groups fail over
  crash.at = 0.05;
  cfg.faults.crashes.push_back(crash);

  Cluster cluster(small_workload(), cfg);
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  const auto& part = cluster.partition();
  for (std::int64_t s = 0; s < part.num_slices(); ++s) {
    EXPECT_LE(cluster.slice_version(s), iterations) << "overshoot on " << s;
    EXPECT_EQ(cluster.slice_version(s), iterations) << "slice " << s;
  }
  // Worker 0 (stats anchor) is dead; survivors measured.
  EXPECT_GT(result.throughput, 0.0);
  EXPECT_TRUE(cluster.simulator().idle());
}

// ---------------------------------------------------------------------------
// Determinism: the same seeded crash run is bit-identical whether the sweep
// executes on 1, 2 or 4 runner threads (each point owns its simulator).
// ---------------------------------------------------------------------------

TEST(CrashRecovery, CrashSweepBitIdenticalAcrossRunnerThreads) {
  const auto run_point = [](SyncMethod method, TimeS crash_at,
                            double restart_after) {
    ClusterConfig cfg = crash_config(method);
    cfg.checkpoint_period = 0.02;
    net::NodeCrash crash;
    crash.node = 2;
    crash.at = crash_at;
    crash.restart_after = restart_after;
    cfg.faults.crashes.push_back(crash);
    Cluster cluster(small_workload(), cfg);
    auto r = cluster.run(1, 4);
    cluster.drain();
    return r;
  };
  const std::vector<std::pair<SyncMethod, std::pair<TimeS, double>>> grid = {
      {SyncMethod::kBaseline, {0.05, -1.0}},
      {SyncMethod::kP3, {0.05, 0.04}},
      {SyncMethod::kP3, {0.08, -1.0}},
      {SyncMethod::kTensorFlowStyle, {0.06, 0.05}},
  };
  std::vector<std::vector<RunResult>> by_threads;
  for (const int threads : {1, 2, 4}) {
    runner::ParallelExecutor pool(threads);
    std::vector<std::function<RunResult()>> jobs;
    for (const auto& [method, when] : grid) {
      jobs.push_back([=] { return run_point(method, when.first, when.second); });
    }
    by_threads.push_back(pool.map(std::move(jobs)));
  }
  for (std::size_t t = 1; t < by_threads.size(); ++t) {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const RunResult& a = by_threads[0][i];
      const RunResult& b = by_threads[t][i];
      EXPECT_EQ(a.throughput, b.throughput) << "point " << i;
      EXPECT_EQ(a.total_time, b.total_time) << "point " << i;
      EXPECT_EQ(a.mean_iteration_time, b.mean_iteration_time) << "point " << i;
      EXPECT_EQ(a.failovers, b.failovers) << "point " << i;
      EXPECT_EQ(a.retransmits, b.retransmits) << "point " << i;
      EXPECT_EQ(a.wire_bytes, b.wire_bytes) << "point " << i;
      EXPECT_EQ(a.goodput_bytes, b.goodput_bytes) << "point " << i;
      EXPECT_EQ(a.heartbeats_sent, b.heartbeats_sent) << "point " << i;
      EXPECT_EQ(a.worker_rejoins, b.worker_rejoins) << "point " << i;
      EXPECT_EQ(a.rehydrations, b.rehydrations) << "point " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// The membership plane is pay-for-what-you-use: no crashes, no replication,
// no force flag => nothing armed, run identical to the plain engine.
// ---------------------------------------------------------------------------

TEST(CrashRecovery, DisarmedPlaneIsBitIdenticalToPlainEngine) {
  const auto run_once = [](bool with_loss) {
    ClusterConfig cfg = crash_config(SyncMethod::kP3);
    cfg.replication = 1;
    if (with_loss) cfg.faults.drop_prob = 0.05;
    Cluster cluster(small_workload(), cfg);
    auto r = cluster.run(1, 3);
    cluster.drain();
    EXPECT_FALSE(cluster.membership_armed());
    EXPECT_EQ(r.heartbeats_sent, 0);
    EXPECT_EQ(r.failovers, 0);
    return r.total_time;
  };
  // Loss plans alone (PR 1 behaviour) keep the plane disarmed; two
  // identical runs are bit-identical.
  EXPECT_EQ(run_once(false), run_once(false));
  EXPECT_EQ(run_once(true), run_once(true));
}

TEST(CrashRecovery, ReplicationAloneArmsPlaneAndStaysConvergent) {
  ClusterConfig cfg = crash_config(SyncMethod::kP3);
  ASSERT_EQ(cfg.replication, 2);
  Cluster cluster(small_workload(), cfg);
  const int iterations = 4;
  cluster.run(1, iterations - 1);
  cluster.drain();
  EXPECT_TRUE(cluster.membership_armed());
  expect_recovered(cluster, 4, iterations, {0, 1, 2, 3});
  EXPECT_EQ(cluster.failovers(), 0);
  EXPECT_TRUE(cluster.simulator().idle());
}

}  // namespace
}  // namespace p3::ps
