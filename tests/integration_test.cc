// Cross-module integration tests: conservation between the network counters
// and the utilization monitor, dedicated-server deployments, wire
// compression, timeline-derived protocol assertions, and end-to-end
// consistency between the PS and allreduce substrates.
#include <gtest/gtest.h>

#include <algorithm>

#include "allreduce/ring.h"
#include "model/zoo.h"
#include "ps/cluster.h"
#include "runner/experiment.h"

namespace p3 {
namespace {

model::Workload toy_workload(std::vector<std::int64_t> params,
                             TimeS compute = 0.010, int batch = 4) {
  model::Workload w;
  w.model = model::toy_custom(params);
  w.batch_per_worker = batch;
  w.iter_compute_time = compute;
  return w;
}

TEST(Integration, MonitorMatchesNetworkByteCounters) {
  // Every non-loopback byte the network accepts must appear in the monitor,
  // in both directions, across all nodes.
  ps::ClusterConfig cfg;
  cfg.n_workers = 3;
  cfg.method = core::SyncMethod::kP3;
  cfg.bandwidth = gbps(2);
  ps::Cluster cluster(toy_workload({200'000, 100'000}), cfg);
  net::UtilizationMonitor monitor(3, 0.010);
  cluster.attach_monitor(&monitor);
  cluster.run(0, 3);
  cluster.drain();

  double monitored_out = 0.0;
  double monitored_in = 0.0;
  for (int n = 0; n < 3; ++n) {
    monitored_out += monitor.total_bytes(n, net::Direction::kOut);
    monitored_in += monitor.total_bytes(n, net::Direction::kIn);
  }
  // Loopback traffic (worker<->colocated server) bypasses the monitor, so
  // monitored bytes are exactly the remote share: with uniform round-robin
  // placement that is hard to write in closed form, but out == in must hold
  // exactly and both must be below the total posted bytes.
  EXPECT_DOUBLE_EQ(monitored_out, monitored_in);
  EXPECT_GT(monitored_out, 0.0);
  EXPECT_LT(monitored_out,
            static_cast<double>(cluster.network().bytes_posted()));
}

TEST(Integration, DedicatedServersMoveAllTrafficToTheWire) {
  // Colocated: 1/n of the traffic is loopback. Dedicated: everything
  // crosses the network, and worker nodes never process server messages.
  auto measure_remote_bytes = [](bool dedicated) {
    ps::ClusterConfig cfg;
    cfg.n_workers = 2;
    cfg.method = core::SyncMethod::kP3;
    cfg.bandwidth = gbps(10);
    cfg.dedicated_servers = dedicated;
    ps::Cluster cluster(toy_workload({100'000}), cfg);
    const int nodes = dedicated ? 4 : 2;
    net::UtilizationMonitor monitor(nodes, 0.010);
    cluster.attach_monitor(&monitor);
    cluster.run(0, 2);
    cluster.drain();
    double total = 0.0;
    for (int n = 0; n < nodes; ++n) {
      total += monitor.total_bytes(n, net::Direction::kOut);
    }
    return total;
  };
  const double colocated = measure_remote_bytes(false);
  const double dedicated = measure_remote_bytes(true);
  // 2 workers colocated: half of pushes and half of broadcasts are
  // loopback; dedicated doubles wire traffic.
  EXPECT_NEAR(dedicated / colocated, 2.0, 0.05);
}

TEST(Integration, DedicatedServerInvariantsHold) {
  for (auto method : {core::SyncMethod::kBaseline, core::SyncMethod::kP3}) {
    ps::ClusterConfig cfg;
    cfg.n_workers = 3;
    cfg.method = method;
    cfg.bandwidth = gbps(2);
    cfg.dedicated_servers = true;
    ps::Cluster cluster(toy_workload({120'000, 60'000}), cfg);
    const int iterations = 3;
    cluster.run(0, iterations);
    cluster.drain();
    for (std::int64_t s = 0; s < cluster.partition().num_slices(); ++s) {
      EXPECT_EQ(cluster.slice_version(s), iterations);
    }
  }
}

TEST(Integration, WireCompressionReducesTrafficNotRounds) {
  auto run = [](double compression) {
    ps::ClusterConfig cfg;
    cfg.n_workers = 2;
    cfg.method = core::SyncMethod::kP3;
    cfg.bandwidth = gbps(1);
    cfg.wire_compression = compression;
    ps::Cluster cluster(toy_workload({400'000}), cfg);
    cluster.run(0, 3);
    cluster.drain();
    return std::pair<Bytes, std::int64_t>(cluster.network().bytes_posted(),
                                          cluster.rounds_completed());
  };
  const auto [bytes_plain, rounds_plain] = run(1.0);
  const auto [bytes_dgc, rounds_dgc] = run(50.0);
  EXPECT_EQ(rounds_plain, rounds_dgc);          // same protocol rounds
  EXPECT_LT(bytes_dgc, bytes_plain / 10);       // far fewer wire bytes
}

TEST(Integration, CompressionSpeedsUpConstrainedTraining) {
  runner::MeasureOptions opts;
  opts.warmup = 1;
  opts.measured = 4;
  ps::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.method = core::SyncMethod::kBaseline;
  cfg.bandwidth = gbps(0.25);
  const auto w = toy_workload({2'000'000}, 0.02);
  const double plain = runner::measure_throughput(w, cfg, opts);
  cfg.wire_compression = 50.0;
  const double compressed = runner::measure_throughput(w, cfg, opts);
  EXPECT_GT(compressed, 2.0 * plain);
}

TEST(Integration, InvalidCompressionThrows) {
  ps::ClusterConfig cfg;
  cfg.wire_compression = 0.5;
  EXPECT_THROW(ps::Cluster(toy_workload({1000}), cfg), std::invalid_argument);
}

TEST(Integration, P3TimelineSendsFirstLayerBeforeLastLayer) {
  // Protocol-level assertion straight off the timeline: in steady state,
  // the worker's gradient push for layer 1 must leave *before* the push
  // for the final layer completes transmission, even though layer 1's
  // gradient is produced last — priority preempts the queued final layer.
  model::Workload w = toy_workload({100'000, 100'000, 1'000'000}, 0.006);
  ps::ClusterConfig cfg;
  cfg.n_workers = 2;
  cfg.method = core::SyncMethod::kP3;
  cfg.bandwidth = gbps(0.5);
  cfg.slice_params = 50'000;
  ps::Cluster cluster(w, cfg);
  trace::Timeline tl;
  cluster.attach_timeline(&tl);
  cluster.run(1, 2);

  const auto spans = tl.lane_spans("n0.tx");
  // Message labels use 0-based layer indices: gL0 = first layer's push.
  // Find a gL0 push that leaves while gL2 slices are still flowing — the
  // final layer's queued slices were preempted.
  bool preemption_seen = false;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].label != "gL0") continue;
    for (std::size_t j = i + 1; j < spans.size(); ++j) {
      if (spans[j].label == "gL2") {
        preemption_seen = true;
        break;
      }
    }
    if (preemption_seen) break;
  }
  EXPECT_TRUE(preemption_seen);
}

TEST(Integration, BaselineTimelineIsFifo) {
  // Under FIFO the gL1 push is always the last gradient of its iteration.
  model::Workload w = toy_workload({100'000, 100'000, 1'000'000}, 0.006);
  ps::ClusterConfig cfg;
  cfg.n_workers = 2;
  cfg.method = core::SyncMethod::kBaseline;
  cfg.bandwidth = gbps(0.5);
  // Dedicated servers: every push crosses the network, so the timeline
  // sees all three layers regardless of the random KVStore placement.
  cfg.dedicated_servers = true;
  ps::Cluster cluster(w, cfg);
  trace::Timeline tl;
  cluster.attach_timeline(&tl);
  cluster.run(0, 1);
  cluster.drain();

  const auto spans = tl.lane_spans("n0.tx");
  TimeS last_g0 = -1.0;  // first layer (0-based label gL0)
  TimeS last_g2 = -1.0;  // final layer
  for (const auto& s : spans) {
    if (s.label == "gL0") last_g0 = std::max(last_g0, s.start);
    if (s.label == "gL2") last_g2 = std::max(last_g2, s.start);
  }
  ASSERT_GE(last_g0, 0.0);
  ASSERT_GE(last_g2, 0.0);
  EXPECT_GT(last_g0, last_g2);
}

TEST(Integration, PsAndAllreduceAgreeAtComputeBound) {
  // With ample bandwidth both substrates must converge to the same
  // compute-bound throughput for the same workload.
  const auto w = toy_workload({300'000, 300'000}, 0.012);
  ps::ClusterConfig ps_cfg;
  ps_cfg.n_workers = 4;
  ps_cfg.method = core::SyncMethod::kP3;
  ps_cfg.bandwidth = gbps(100);
  ps::Cluster ps_cluster(w, ps_cfg);
  const double ps_tp = ps_cluster.run(2, 5).throughput;

  ar::ArConfig ar_cfg;
  ar_cfg.n_workers = 4;
  ar_cfg.schedule = ar::ArSchedule::kPrioritySliced;
  ar_cfg.bandwidth = gbps(100);
  ar::ArCluster ar_cluster(w, ar_cfg);
  const double ar_tp = ar_cluster.run(2, 5).throughput;

  const double ideal = 4.0 * 4 / 0.012;
  // Both carry a small, bounded residual of server/reduction work on the
  // critical path; they must sit near the compute bound and near each
  // other.
  EXPECT_GT(ps_tp, 0.85 * ideal);
  EXPECT_GT(ar_tp, 0.85 * ideal);
  EXPECT_LE(ps_tp, 1.01 * ideal);
  EXPECT_LE(ar_tp, 1.01 * ideal);
  EXPECT_NEAR(ps_tp, ar_tp, 0.12 * ideal);
}

TEST(Integration, SyncMethodsNeverChangeRoundSemantics) {
  // Whatever the schedule, after draining, every worker has the same
  // parameter version everywhere: scheduling must never skip or duplicate
  // an aggregation round (this is why P3 cannot affect convergence).
  for (auto method :
       {core::SyncMethod::kBaseline, core::SyncMethod::kSlicingOnly,
        core::SyncMethod::kP3, core::SyncMethod::kTensorFlowStyle}) {
    ps::ClusterConfig cfg;
    cfg.n_workers = 3;
    cfg.method = method;
    cfg.bandwidth = gbps(1);
    ps::Cluster cluster(toy_workload({150'000, 80'000, 40'000}), cfg);
    const int iterations = 4;
    cluster.run(0, iterations);
    cluster.drain();
    for (int wk = 0; wk < 3; ++wk) {
      for (int l = 0; l < 3; ++l) {
        EXPECT_EQ(cluster.worker_layer_version(wk, l), iterations)
            << core::sync_method_name(method);
      }
    }
  }
}

}  // namespace
}  // namespace p3
