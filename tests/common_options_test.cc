#include "common/options.h"

#include <gtest/gtest.h>

namespace p3 {
namespace {

Options make(std::vector<const char*> args,
             std::map<std::string, std::string> spec) {
  args.insert(args.begin(), "prog");
  return Options(static_cast<int>(args.size()), args.data(), std::move(spec));
}

TEST(Options, DefaultsApply) {
  auto opts = make({}, {{"bandwidth", "10"}, {"model", "resnet50"}});
  EXPECT_DOUBLE_EQ(opts.num("bandwidth"), 10.0);
  EXPECT_EQ(opts.str("model"), "resnet50");
  EXPECT_FALSE(opts.has("bandwidth"));
}

TEST(Options, EqualsSyntax) {
  auto opts = make({"--bandwidth=4.5"}, {{"bandwidth", "10"}});
  EXPECT_DOUBLE_EQ(opts.num("bandwidth"), 4.5);
  EXPECT_TRUE(opts.has("bandwidth"));
}

TEST(Options, SpaceSyntax) {
  auto opts = make({"--model", "vgg19"}, {{"model", ""}});
  EXPECT_EQ(opts.str("model"), "vgg19");
}

TEST(Options, BooleanFlag) {
  auto opts = make({"--verbose"}, {{"verbose", "0"}});
  EXPECT_TRUE(opts.flag("verbose"));
}

TEST(Options, IntegerParsing) {
  auto opts = make({"--workers=16"}, {{"workers", "4"}});
  EXPECT_EQ(opts.integer("workers"), 16);
}

TEST(Options, UnknownOptionThrows) {
  EXPECT_THROW(make({"--nope=1"}, {{"workers", "4"}}), std::invalid_argument);
}

TEST(Options, NonNumericThrows) {
  auto opts = make({"--workers=many"}, {{"workers", "4"}});
  EXPECT_THROW(opts.num("workers"), std::invalid_argument);
}

TEST(Options, PositionalCollected) {
  auto opts = make({"pos1", "--workers=2", "pos2"}, {{"workers", "4"}});
  ASSERT_EQ(opts.positional().size(), 2u);
  EXPECT_EQ(opts.positional()[0], "pos1");
  EXPECT_EQ(opts.positional()[1], "pos2");
}

TEST(Options, QueryOutsideSpecThrows) {
  auto opts = make({}, {{"workers", "4"}});
  EXPECT_THROW(opts.str("missing"), std::invalid_argument);
}

}  // namespace
}  // namespace p3
