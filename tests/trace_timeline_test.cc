#include "trace/timeline.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace p3::trace {
namespace {

TEST(Timeline, RecordsSpans) {
  Timeline tl;
  tl.add("w0.compute", 0.0, 1.0, "F1");
  tl.add("w0.compute", 1.0, 2.0, "F2");
  EXPECT_EQ(tl.spans().size(), 2u);
  EXPECT_DOUBLE_EQ(tl.end_time(), 2.0);
}

TEST(Timeline, RejectsInvertedSpan) {
  Timeline tl;
  EXPECT_THROW(tl.add("x", 2.0, 1.0, "bad"), std::invalid_argument);
}

TEST(Timeline, LanesInFirstSeenOrder) {
  Timeline tl;
  tl.add("b", 0, 1, "x");
  tl.add("a", 0, 1, "y");
  tl.add("b", 1, 2, "z");
  auto lanes = tl.lanes();
  ASSERT_EQ(lanes.size(), 2u);
  EXPECT_EQ(lanes[0], "b");
  EXPECT_EQ(lanes[1], "a");
}

TEST(Timeline, LaneSpansSortedByStart) {
  Timeline tl;
  tl.add("l", 3, 4, "c");
  tl.add("l", 0, 1, "a");
  tl.add("l", 1, 2, "b");
  auto spans = tl.lane_spans("l");
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].label, "a");
  EXPECT_EQ(spans[2].label, "c");
}

TEST(Timeline, AsciiRendering) {
  Timeline tl;
  tl.add("cpu", 0.0, 2.0, "F");
  tl.add("cpu", 2.0, 3.0, "B");
  tl.add("net", 1.0, 3.0, "g");
  const std::string art = tl.to_ascii(1.0, 0.0, 4.0);
  std::istringstream in(art);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "cpu |FFB.|");
  EXPECT_EQ(line2, "net |.gg.|");
}

TEST(Timeline, AsciiPadsLaneNames) {
  Timeline tl;
  tl.add("a", 0, 1, "x");
  tl.add("longer", 0, 1, "y");
  const std::string art = tl.to_ascii(1.0, 0.0, 1.0);
  std::istringstream in(art);
  std::string line1;
  std::getline(in, line1);
  EXPECT_EQ(line1, "a      |x|");
}

TEST(Timeline, AsciiEmptyLabelUsesHash) {
  Timeline tl;
  tl.add("l", 0, 1, "");
  EXPECT_NE(tl.to_ascii(1.0, 0.0, 1.0).find('#'), std::string::npos);
}

TEST(Timeline, ZeroLengthSpanStillVisible) {
  Timeline tl;
  tl.add("l", 1.0, 1.0, "z");
  const std::string art = tl.to_ascii(1.0, 0.0, 3.0);
  EXPECT_NE(art.find('z'), std::string::npos);
}

TEST(Timeline, BadUnitThrows) {
  Timeline tl;
  tl.add("l", 0, 1, "x");
  EXPECT_THROW(tl.to_ascii(0.0, 0.0, 1.0), std::invalid_argument);
}

TEST(Timeline, WriteCsv) {
  Timeline tl;
  tl.add("lane1", 0.5, 1.5, "label");
  const std::string path = ::testing::TempDir() + "/p3_timeline_test.csv";
  tl.write_csv(path);
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "lane,start,end,label");
  EXPECT_EQ(row, "lane1,0.500000000,1.500000000,label");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace p3::trace
