#include "sim/queue.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace p3::sim {
namespace {

Task consume_n(Simulator& sim, Queue<int>& q, int n, std::vector<int>& out) {
  (void)sim;
  for (int i = 0; i < n; ++i) {
    int v = co_await q.pop();
    out.push_back(v);
  }
}

TEST(Queue, PopWaitsForPush) {
  Simulator sim;
  Queue<int> q(sim);
  std::vector<int> out;
  sim.spawn(consume_n(sim, q, 1, out));
  sim.run();
  EXPECT_TRUE(out.empty());  // still blocked
  q.push(42);
  sim.run();
  EXPECT_EQ(out, (std::vector<int>{42}));
}

TEST(Queue, FifoOrder) {
  Simulator sim;
  Queue<int> q(sim);
  std::vector<int> out;
  for (int i = 0; i < 5; ++i) q.push(i);
  sim.spawn(consume_n(sim, q, 5, out));
  sim.run();
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Queue, TryPop) {
  Simulator sim;
  Queue<std::string> q(sim);
  EXPECT_FALSE(q.try_pop().has_value());
  q.push("a");
  q.push("b");
  EXPECT_EQ(q.try_pop().value(), "a");
  EXPECT_EQ(q.try_pop().value(), "b");
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(Queue, MultipleConsumersWokenFifo) {
  Simulator sim;
  Queue<int> q(sim);
  std::vector<std::pair<int, int>> got;  // (consumer, value)
  for (int c = 0; c < 3; ++c) {
    sim.spawn([](Queue<int>& queue, std::vector<std::pair<int, int>>& out,
                 int id) -> Task {
      int v = co_await queue.pop();
      out.emplace_back(id, v);
    }(q, got, c));
  }
  sim.run();
  EXPECT_TRUE(got.empty());
  q.push(10);
  q.push(11);
  q.push(12);
  sim.run();
  ASSERT_EQ(got.size(), 3u);
  // First-suspended consumer gets first value.
  EXPECT_EQ(got[0], (std::pair<int, int>{0, 10}));
  EXPECT_EQ(got[1], (std::pair<int, int>{1, 11}));
  EXPECT_EQ(got[2], (std::pair<int, int>{2, 12}));
}

TEST(Queue, LateConsumerDoesNotOvertakeWaiter) {
  Simulator sim;
  Queue<int> q(sim);
  std::vector<std::pair<int, int>> got;
  sim.spawn([](Queue<int>& queue, std::vector<std::pair<int, int>>& out)
                -> Task {
    int v = co_await queue.pop();  // suspends: queue empty
    out.emplace_back(0, v);
  }(q, got));
  q.push(1);
  // Consumer 1 arrives while consumer 0's wakeup is still pending; the item
  // is reserved for consumer 0.
  sim.spawn([](Queue<int>& queue, std::vector<std::pair<int, int>>& out)
                -> Task {
    int v = co_await queue.pop();
    out.emplace_back(1, v);
  }(q, got));
  q.push(2);
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair<int, int>{0, 1}));
  EXPECT_EQ(got[1], (std::pair<int, int>{1, 2}));
}

struct PrioItem {
  int priority;  // smaller value = more urgent
  int id;
};
struct PrioCompare {
  // std::priority_queue: true means a ranks BELOW b.
  bool operator()(const PrioItem& a, const PrioItem& b) const {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.id > b.id;  // FIFO-ish tie-break by insertion id
  }
};

TEST(PriorityQueue, PopsHighestPriorityFirst) {
  Simulator sim;
  PriorityQueue<PrioItem, PrioCompare> q(sim);
  q.push({3, 0});
  q.push({1, 1});
  q.push({2, 2});
  std::vector<int> order;
  sim.spawn([](PriorityQueue<PrioItem, PrioCompare>& queue,
               std::vector<int>& out) -> Task {
    for (int i = 0; i < 3; ++i) {
      PrioItem item = co_await queue.pop();
      out.push_back(item.priority);
    }
  }(q, order));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(PriorityQueue, LaterHighPriorityPreemptsQueuedItems) {
  // Models the P3 worker: while low-priority slices sit in the send queue, a
  // newly produced high-priority slice must be sent next.
  Simulator sim;
  PriorityQueue<PrioItem, PrioCompare> q(sim);
  std::vector<int> order;
  sim.spawn([](Simulator& s, PriorityQueue<PrioItem, PrioCompare>& queue,
               std::vector<int>& out) -> Task {
    for (int i = 0; i < 4; ++i) {
      PrioItem item = co_await queue.pop();
      out.push_back(item.id);
      co_await s.sleep(1.0);  // emulate blocking send
    }
  }(sim, q, order));
  q.push({10, 100});
  q.push({9, 101});
  sim.run_until(0.5);
  q.push({1, 102});  // urgent slice arrives mid-send
  q.push({2, 103});
  sim.run();
  // Both initial pushes land before the consumer's wakeup runs, so it takes
  // the more urgent 101 first (pop-at-resume semantics); 100 is mid-"send"
  // when the urgent slices arrive, then 102, 103 preempt it... 100 last.
  EXPECT_EQ(order, (std::vector<int>{101, 102, 103, 100}));
}

TEST(PriorityQueue, TryPop) {
  Simulator sim;
  PriorityQueue<PrioItem, PrioCompare> q(sim);
  EXPECT_FALSE(q.try_pop().has_value());
  q.push({5, 1});
  q.push({2, 2});
  EXPECT_EQ(q.try_pop()->priority, 2);
  EXPECT_EQ(q.try_pop()->priority, 5);
}

// A push wakes a consumer through the event loop; if the run ends before
// the wakeup fires, the consumer is woken-but-not-resumed. Destroying the
// queue and then the simulator (which reclaims the suspended frame, running
// ~PopAwaiter) must not touch freed queue state.
TEST(Queue, WokenWaiterMaySurviveQueueDestruction) {
  Simulator sim;
  auto q = std::make_unique<Queue<int>>(sim);
  std::vector<int> out;
  sim.spawn(consume_n(sim, *q, 1, out));
  sim.run();    // consumer suspends in pop()
  q->push(7);   // wakes it via resume_soon, but we never run the event
  EXPECT_EQ(q->waiters(), 0u);
  q.reset();    // queue dies first, orphaning the woken waiter
  // ~Simulator destroys the frame; must not crash (asserted under asan).
}

TEST(Queue, SizeAndWaiters) {
  Simulator sim;
  Queue<int> q(sim);
  EXPECT_EQ(q.size(), 0u);
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.waiters(), 0u);
  (void)q.try_pop();
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace p3::sim
