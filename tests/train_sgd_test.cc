#include "train/sgd.h"

#include <gtest/gtest.h>

namespace p3::train {
namespace {

std::vector<Param> one_param(float value, float grad) {
  std::vector<Param> params(1);
  params[0].value = Tensor(1, 1, value);
  params[0].grad = Tensor(1, 1, grad);
  return params;
}

TEST(Sgd, PlainStep) {
  Sgd opt(SgdConfig{.lr = 0.1, .momentum = 0.0});
  auto params = one_param(1.0f, 0.5f);
  opt.step(params, 0);
  EXPECT_NEAR(params[0].value.at(0, 0), 1.0f - 0.1f * 0.5f, 1e-7);
}

TEST(Sgd, MomentumAccumulates) {
  Sgd opt(SgdConfig{.lr = 1.0, .momentum = 0.5});
  auto params = one_param(0.0f, 1.0f);
  opt.step(params, 0);  // v=1, x=-1
  EXPECT_NEAR(params[0].value.at(0, 0), -1.0f, 1e-7);
  params[0].grad.fill(1.0f);
  opt.step(params, 0);  // v=1.5, x=-2.5
  EXPECT_NEAR(params[0].value.at(0, 0), -2.5f, 1e-6);
}

TEST(Sgd, NesterovLookahead) {
  Sgd opt(SgdConfig{.lr = 1.0, .momentum = 0.5, .nesterov = true});
  auto params = one_param(0.0f, 1.0f);
  opt.step(params, 0);  // v=1, update = g + mu*v = 1.5
  EXPECT_NEAR(params[0].value.at(0, 0), -1.5f, 1e-6);
}

TEST(Sgd, WeightDecayPullsTowardZero) {
  Sgd opt(SgdConfig{.lr = 0.1, .momentum = 0.0, .weight_decay = 0.1});
  auto params = one_param(10.0f, 0.0f);
  opt.step(params, 0);
  EXPECT_LT(params[0].value.at(0, 0), 10.0f);
}

TEST(Sgd, StepDecaySchedule) {
  SgdConfig cfg;
  cfg.lr = 0.1;
  cfg.decay_epochs = {80, 120};
  cfg.decay_factor = 0.1;
  Sgd opt(cfg);
  EXPECT_DOUBLE_EQ(opt.lr_at_epoch(0), 0.1);
  EXPECT_DOUBLE_EQ(opt.lr_at_epoch(79), 0.1);
  EXPECT_DOUBLE_EQ(opt.lr_at_epoch(80), 0.01);
  EXPECT_NEAR(opt.lr_at_epoch(150), 0.001, 1e-12);
}

TEST(Sgd, StepWithExternalGradients) {
  Sgd opt(SgdConfig{.lr = 0.5, .momentum = 0.0});
  auto params = one_param(2.0f, 999.0f);  // stored grad must be ignored
  std::vector<Tensor> external{Tensor(1, 1, 1.0f)};
  opt.step_with(params, external, 0);
  EXPECT_NEAR(params[0].value.at(0, 0), 1.5f, 1e-7);
}

TEST(Sgd, MismatchedGradientsThrow) {
  Sgd opt(SgdConfig{});
  auto params = one_param(0, 0);
  std::vector<Tensor> wrong_count;
  EXPECT_THROW(opt.step_with(params, wrong_count, 0), std::invalid_argument);
  std::vector<Tensor> wrong_shape{Tensor(2, 2)};
  EXPECT_THROW(opt.step_with(params, wrong_shape, 0), std::invalid_argument);
}

}  // namespace
}  // namespace p3::train
