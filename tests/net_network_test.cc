#include "net/network.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/sync.h"

namespace p3::net {
namespace {

NetworkConfig test_config(BitsPerSec rate = gbps(1), TimeS latency = 0.0) {
  NetworkConfig cfg;
  cfg.rate = rate;
  cfg.latency = latency;
  cfg.loopback_rate = gbps(400);
  cfg.loopback_latency = 0.0;
  return cfg;
}

Message msg(int src, int dst, Bytes bytes, MsgKind kind = MsgKind::kPushGradient) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.bytes = bytes;
  m.kind = kind;
  return m;
}

TEST(Network, SingleTransferTiming) {
  sim::Simulator sim;
  Network net(sim, 2, test_config(gbps(1), 0.0));
  // 125 MB at 1 Gbps = 1 s TX + 1 s RX (store and forward).
  const TimeS tx_done = net.post(msg(0, 1, 125'000'000));
  EXPECT_DOUBLE_EQ(tx_done, 1.0);
  std::vector<TimeS> arrival;
  sim.spawn([](Network& n, std::vector<TimeS>& out) -> sim::Task {
    (void)co_await n.inbox(1).pop();
    out.push_back(n.simulator().now());
  }(net, arrival));
  sim.run();
  ASSERT_EQ(arrival.size(), 1u);
  EXPECT_DOUBLE_EQ(arrival[0], 2.0);
}

TEST(Network, LatencyAddsToDelivery) {
  sim::Simulator sim;
  Network net(sim, 2, test_config(gbps(8), 0.5));
  net.post(msg(0, 1, 1'000'000'000));  // 1 GB @8 Gbps = 1 s each side
  TimeS arrival = -1;
  sim.spawn([](Network& n, TimeS& out) -> sim::Task {
    (void)co_await n.inbox(1).pop();
    out = n.simulator().now();
  }(net, arrival));
  sim.run();
  EXPECT_DOUBLE_EQ(arrival, 2.5);  // 1 TX + 0.5 latency + 1 RX
}

TEST(Network, TxSerializesFifo) {
  sim::Simulator sim;
  Network net(sim, 3, test_config(gbps(1), 0.0));
  const TimeS t1 = net.post(msg(0, 1, 125'000'000));
  const TimeS t2 = net.post(msg(0, 2, 125'000'000));
  EXPECT_DOUBLE_EQ(t1, 1.0);
  EXPECT_DOUBLE_EQ(t2, 2.0);  // second message waits for the first
}

TEST(Network, IncastSerializesOnReceiverRx) {
  sim::Simulator sim;
  Network net(sim, 3, test_config(gbps(1), 0.0));
  // Two senders to one receiver: TX in parallel, RX serialized.
  net.post(msg(1, 0, 125'000'000));
  net.post(msg(2, 0, 125'000'000));
  std::vector<TimeS> arrivals;
  sim.spawn([](Network& n, std::vector<TimeS>& out) -> sim::Task {
    for (int i = 0; i < 2; ++i) {
      (void)co_await n.inbox(0).pop();
      out.push_back(n.simulator().now());
    }
  }(net, arrivals));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(arrivals[0], 2.0);
  EXPECT_DOUBLE_EQ(arrivals[1], 3.0);  // RX busy until 2.0, then 1 more sec
}

TEST(Network, FullDuplexDoesNotContend) {
  sim::Simulator sim;
  Network net(sim, 2, test_config(gbps(1), 0.0));
  // 0->1 and 1->0 simultaneously: both complete as if alone.
  net.post(msg(0, 1, 125'000'000));
  net.post(msg(1, 0, 125'000'000));
  std::vector<TimeS> arrivals(2, -1.0);
  for (int node = 0; node < 2; ++node) {
    sim.spawn([](Network& n, std::vector<TimeS>& out, int nd) -> sim::Task {
      (void)co_await n.inbox(nd).pop();
      out[static_cast<std::size_t>(nd)] = n.simulator().now();
    }(net, arrivals, node));
  }
  sim.run();
  EXPECT_DOUBLE_EQ(arrivals[0], 2.0);
  EXPECT_DOUBLE_EQ(arrivals[1], 2.0);
}

TEST(Network, LoopbackBypassesNic) {
  sim::Simulator sim;
  Network net(sim, 2, test_config(gbps(1), 10.0));  // huge latency
  net.post(msg(0, 0, 125'000'000));
  TimeS arrival = -1;
  sim.spawn([](Network& n, TimeS& out) -> sim::Task {
    (void)co_await n.inbox(0).pop();
    out = n.simulator().now();
  }(net, arrival));
  sim.run();
  // 125 MB over 400 Gbps loopback = 2.5 ms; NIC latency not applied.
  EXPECT_NEAR(arrival, 0.0025, 1e-9);
  // NIC stays free.
  EXPECT_DOUBLE_EQ(net.tx_free_at(0), sim.now());
}

TEST(Network, PerNodeRateThrottling) {
  sim::Simulator sim;
  Network net(sim, 2, test_config(gbps(10), 0.0));
  net.set_node_rate(0, gbps(1));  // tc qdisc on node 0 only
  EXPECT_DOUBLE_EQ(net.node_rate(0), gbps(1));
  EXPECT_DOUBLE_EQ(net.node_rate(1), gbps(10));
  const TimeS tx_done = net.post(msg(0, 1, 125'000'000));
  EXPECT_DOUBLE_EQ(tx_done, 1.0);  // throttled TX
}

TEST(Network, SetNodeRateMidTransferHonorsReservations) {
  // Mid-experiment `tc` throttling: a rate change applies to messages
  // posted afterwards, but channel time already reserved by an in-flight
  // transfer is honored — the new transfer queues behind it.
  sim::Simulator sim;
  Network net(sim, 2, test_config(gbps(10), 0.0));
  // In flight at 10 Gbps: TX [0, 0.1], RX [0.1, 0.2].
  const TimeS first_tx = net.post(msg(0, 1, 125'000'000));
  EXPECT_DOUBLE_EQ(first_tx, 0.1);
  net.set_node_rate(0, gbps(1));  // throttle while the transfer is running
  // The second message starts where the first reservation ends and
  // serializes at the new rate.
  const TimeS second_tx = net.post(msg(0, 1, 125'000'000));
  EXPECT_DOUBLE_EQ(second_tx, 0.1 + 1.0);
  std::vector<TimeS> arrivals;
  sim.spawn([](Network& n, std::vector<TimeS>& out) -> sim::Task {
    for (int i = 0; i < 2; ++i) {
      (void)co_await n.inbox(1).pop();
      out.push_back(n.simulator().now());
    }
  }(net, arrivals));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // First delivery is unchanged by the throttle (RX rate untouched)...
  EXPECT_DOUBLE_EQ(arrivals[0], 0.2);
  // ...second RX starts after its slow TX and runs at node 1's RX rate.
  EXPECT_DOUBLE_EQ(arrivals[1], 1.2);
}

TEST(Network, BlockingSendResumesAtTxCompletion) {
  sim::Simulator sim;
  Network net(sim, 2, test_config(gbps(1), 0.0));
  std::vector<TimeS> send_returns;
  sim.spawn([](Network& n, std::vector<TimeS>& out) -> sim::Task {
    for (int i = 0; i < 3; ++i) {
      co_await n.send(msg(0, 1, 125'000'000));
      out.push_back(n.simulator().now());
    }
  }(net, send_returns));
  sim.run();
  // Blocking sends: each returns when its TX finishes, i.e. paced at 1 s.
  EXPECT_EQ(send_returns, (std::vector<TimeS>{1.0, 2.0, 3.0}));
}

TEST(Network, CountsAndConservation) {
  sim::Simulator sim;
  Network net(sim, 4, test_config());
  for (int i = 1; i < 4; ++i) net.post(msg(0, i, 1000));
  EXPECT_EQ(net.messages_posted(), 3);
  EXPECT_EQ(net.bytes_posted(), 3000);
  sim.run();
  EXPECT_EQ(net.messages_delivered(), 3);
}

TEST(Network, InvalidMessagesThrow) {
  sim::Simulator sim;
  Network net(sim, 2, test_config());
  EXPECT_THROW(net.post(msg(0, 5, 100)), std::out_of_range);
  EXPECT_THROW(net.post(msg(-1, 1, 100)), std::out_of_range);
  EXPECT_THROW(net.post(msg(0, 1, 0)), std::invalid_argument);
}

TEST(Network, MonitorRecordsBothDirections) {
  sim::Simulator sim;
  Network net(sim, 2, test_config(gbps(1), 0.0));
  UtilizationMonitor mon(2, 0.010);
  net.attach_monitor(&mon);
  net.post(msg(0, 1, 125'000'000));  // 1 s TX, 1 s RX
  sim.run();
  EXPECT_NEAR(mon.total_bytes(0, Direction::kOut), 125e6, 1.0);
  EXPECT_NEAR(mon.total_bytes(1, Direction::kIn), 125e6, 1.0);
  EXPECT_NEAR(mon.total_bytes(0, Direction::kIn), 0.0, 1e-9);
  // Rate during the busy second should be ~1 Gbps.
  EXPECT_NEAR(mon.bin_rate(0, Direction::kOut, 50), gbps(1), gbps(0.01));
}

TEST(Network, TimelineRecordsSpans) {
  sim::Simulator sim;
  Network net(sim, 2, test_config(gbps(1), 0.0));
  trace::Timeline tl;
  net.attach_timeline(&tl);
  Message m = msg(0, 1, 125'000'000);
  m.layer = 2;
  net.post(m);
  sim.run();
  auto tx = tl.lane_spans("n0.tx");
  ASSERT_EQ(tx.size(), 1u);
  EXPECT_DOUBLE_EQ(tx[0].start, 0.0);
  EXPECT_DOUBLE_EQ(tx[0].end, 1.0);
  EXPECT_EQ(tx[0].label, "gL2");
  auto rx = tl.lane_spans("n1.rx");
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_DOUBLE_EQ(rx[0].start, 1.0);
  EXPECT_DOUBLE_EQ(rx[0].end, 2.0);
}

TEST(MessageLabel, CoversAllKinds) {
  Message m;
  m.layer = 1;
  m.kind = MsgKind::kPushGradient;
  EXPECT_EQ(message_label(m), "gL1");
  m.kind = MsgKind::kNotify;
  EXPECT_EQ(message_label(m), "nL1");
  m.kind = MsgKind::kPullRequest;
  EXPECT_EQ(message_label(m), "qL1");
  m.kind = MsgKind::kParams;
  EXPECT_EQ(message_label(m), "pL1");
}

}  // namespace
}  // namespace p3::net
