// Reliable-delivery layer under injected faults: conservation and
// quiescence invariants must survive message loss, link flaps, degradation
// windows and node pauses, and the layer must be provably free when idle.
#include "ps/cluster.h"

#include <gtest/gtest.h>

#include <tuple>

#include "model/zoo.h"

namespace p3::ps {
namespace {

using core::SyncMethod;

model::Workload small_workload(int layers = 4, std::int64_t params = 120'000,
                               TimeS compute = 0.010) {
  model::Workload w;
  w.model = model::toy_uniform(layers, params);
  w.batch_per_worker = 4;
  w.iter_compute_time = compute;
  return w;
}

ClusterConfig small_config(SyncMethod method, int workers = 4,
                           double bandwidth_gbps = 1.0) {
  ClusterConfig cfg;
  cfg.n_workers = workers;
  cfg.method = method;
  cfg.bandwidth = gbps(bandwidth_gbps);
  cfg.latency = us(25);
  cfg.slice_params = 50'000;
  return cfg;
}

constexpr SyncMethod kAllMethods[] = {
    SyncMethod::kBaseline, SyncMethod::kSlicingOnly, SyncMethod::kP3,
    SyncMethod::kTensorFlowStyle, SyncMethod::kPoseidonWFBP};

void expect_converged(const Cluster& cluster, int workers, int layers,
                      std::int64_t iterations) {
  const auto& part = cluster.partition();
  for (std::int64_t s = 0; s < part.num_slices(); ++s) {
    EXPECT_EQ(cluster.slice_version(s), iterations) << "slice " << s;
  }
  EXPECT_EQ(cluster.rounds_completed(), part.num_slices() * iterations);
  for (int w = 0; w < workers; ++w) {
    for (int l = 0; l < layers; ++l) {
      EXPECT_EQ(cluster.worker_layer_version(w, l), iterations)
          << "worker " << w << " layer " << l;
    }
  }
}

// ---------------------------------------------------------------------------
// Conservation under loss, swept over methods x drop rates.
// ---------------------------------------------------------------------------

class LossInvariants
    : public ::testing::TestWithParam<std::tuple<SyncMethod, double>> {};

TEST_P(LossInvariants, EverySliceConvergesAndDrainQuiesces) {
  const auto [method, drop] = GetParam();
  ClusterConfig cfg = small_config(method);
  cfg.faults.drop_prob = drop;
  Cluster cluster(small_workload(), cfg);
  const int iterations = 4;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  expect_converged(cluster, 4, 4, iterations);
  // drain() fully quiesced: every retransmission chain terminated and every
  // in-flight reliable message was acknowledged.
  EXPECT_TRUE(cluster.simulator().idle());
  EXPECT_EQ(cluster.reliable_in_flight(), 0);
  EXPECT_GT(result.throughput, 0.0);

  auto& net = cluster.network();
  EXPECT_EQ(net.messages_posted(),
            net.messages_delivered() + net.messages_dropped());
  EXPECT_GT(net.messages_dropped(), 0);
  // Every loss was repaired by at least one retransmission, and every
  // suppressed duplicate traces back to a distinct delivered retransmit.
  EXPECT_GE(cluster.retransmits(), 1);
  EXPECT_GE(cluster.timeouts_fired(), cluster.retransmits());
  EXPECT_LE(cluster.duplicates_suppressed(), cluster.retransmits());
  EXPECT_LT(cluster.goodput_bytes(), net.bytes_posted());
}

INSTANTIATE_TEST_SUITE_P(
    MethodsByLoss, LossInvariants,
    ::testing::Combine(::testing::ValuesIn(kAllMethods),
                       ::testing::Values(0.01, 0.05)),
    [](const auto& info) {
      return core::sync_method_name(std::get<0>(info.param)) + "_loss" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

// ---------------------------------------------------------------------------
// Idempotency: a retransmitted push is never double-aggregated.
// ---------------------------------------------------------------------------

TEST(Reliability, SpuriousRetransmitsNeverDoubleAggregate) {
  // Force the layer on with no faults and an absurdly aggressive RTO, so
  // nearly every message is retransmitted before its ack returns. Dedup
  // must suppress every duplicate or slice versions would overshoot.
  ClusterConfig cfg = small_config(SyncMethod::kP3);
  cfg.reliable_transport = true;
  cfg.fixed_rto = us(50);  // far below the RTT: every ack loses the race
  Cluster cluster(small_workload(), cfg);
  const int iterations = 3;
  cluster.run(0, iterations);
  cluster.drain();

  expect_converged(cluster, 4, 4, iterations);
  EXPECT_GT(cluster.retransmits(), 0);
  EXPECT_GT(cluster.duplicates_suppressed(), 0);
  // Nothing was dropped, so every retransmitted copy was delivered and
  // every one of them had to be suppressed as a duplicate.
  EXPECT_EQ(cluster.network().messages_dropped(), 0);
  EXPECT_EQ(cluster.duplicates_suppressed(), cluster.retransmits());
  EXPECT_EQ(cluster.reliable_in_flight(), 0);
}

TEST(Reliability, BaselineNotifyPullSurviveSpuriousRetransmits) {
  ClusterConfig cfg = small_config(SyncMethod::kBaseline);
  cfg.reliable_transport = true;
  cfg.fixed_rto = us(50);
  Cluster cluster(small_workload(), cfg);
  const int iterations = 3;
  cluster.run(0, iterations);
  cluster.drain();
  expect_converged(cluster, 4, 4, iterations);
  EXPECT_EQ(cluster.duplicates_suppressed(), cluster.retransmits());
}

// ---------------------------------------------------------------------------
// Fault flavors beyond uniform loss.
// ---------------------------------------------------------------------------

TEST(Reliability, SurvivesLinkFlap) {
  ClusterConfig cfg = small_config(SyncMethod::kP3);
  // Node 1's NIC flaps both ways for 30 ms early in the run.
  cfg.faults.flaps.push_back({1, -1, 0.005, 0.035});
  cfg.faults.flaps.push_back({-1, 1, 0.005, 0.035});
  Cluster cluster(small_workload(), cfg);
  const int iterations = 4;
  cluster.run(0, iterations);
  cluster.drain();
  expect_converged(cluster, 4, 4, iterations);
  EXPECT_GT(cluster.network().messages_dropped(), 0);
  EXPECT_TRUE(cluster.simulator().idle());
}

TEST(Reliability, SurvivesDegradationAndPause) {
  ClusterConfig cfg = small_config(SyncMethod::kP3);
  // 80% bandwidth dip + 1 ms latency spike on node 2, and a 20 ms freeze
  // of node 3 (straggler): no loss, so no retransmission is *required*,
  // but timers must stay spurious-safe and the run must still converge.
  cfg.faults.degradations.push_back({2, 0.0, 0.05, 0.2, ms(1)});
  cfg.faults.pauses.push_back({3, 0.01, 0.02});
  Cluster cluster(small_workload(), cfg);
  const int iterations = 4;
  const auto result = cluster.run(0, iterations);
  cluster.drain();
  expect_converged(cluster, 4, 4, iterations);
  EXPECT_EQ(cluster.network().messages_dropped(), 0);
  EXPECT_GT(result.throughput, 0.0);
}

TEST(Reliability, LossSlowsButDoesNotStop) {
  ClusterConfig cfg = small_config(SyncMethod::kP3, 4, 10.0);
  Cluster clean(small_workload(), cfg);
  cfg.faults.drop_prob = 0.05;
  Cluster lossy(small_workload(), cfg);
  const double clean_tp = clean.run(1, 4).throughput;
  const double lossy_tp = lossy.run(1, 4).throughput;
  EXPECT_GT(lossy_tp, 0.0);
  EXPECT_LT(lossy_tp, clean_tp);
}

// ---------------------------------------------------------------------------
// Determinism.
// ---------------------------------------------------------------------------

TEST(Reliability, SameSeedSameFaultsBitIdentical) {
  // Satellite: two runs with identical seed, nonzero compute jitter and an
  // active FaultPlan must produce bit-identical iteration times and
  // identical fault/reliability counters.
  auto run_once = [] {
    ClusterConfig cfg = small_config(SyncMethod::kP3);
    cfg.compute_jitter = 0.1;
    cfg.faults.drop_prob = 0.02;
    cfg.faults.degradations.push_back({1, 0.01, 0.03, 0.5, us(100)});
    Cluster cluster(small_workload(), cfg);
    auto result = cluster.run(1, 5);
    cluster.drain();
    return result;
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.iteration_times.size(), b.iteration_times.size());
  for (std::size_t i = 0; i < a.iteration_times.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.iteration_times[i], b.iteration_times[i]) << i;
  }
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.timeouts_fired, b.timeouts_fired);
  EXPECT_EQ(a.duplicates_suppressed, b.duplicates_suppressed);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
}

TEST(Reliability, SameSeedJitterOnlyBitIdentical) {
  // Satellite: determinism also holds for plain compute jitter, no faults.
  auto run_once = [] {
    ClusterConfig cfg = small_config(SyncMethod::kBaseline);
    cfg.compute_jitter = 0.2;
    Cluster cluster(small_workload(), cfg);
    return cluster.run(1, 5);
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.iteration_times.size(), b.iteration_times.size());
  for (std::size_t i = 0; i < a.iteration_times.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.iteration_times[i], b.iteration_times[i]) << i;
  }
}

TEST(Reliability, DifferentFaultSeedsDiverge) {
  auto run_with_seed = [](std::uint64_t seed) {
    ClusterConfig cfg = small_config(SyncMethod::kP3);
    cfg.faults.drop_prob = 0.05;
    cfg.faults.seed = seed;
    Cluster cluster(small_workload(), cfg);
    auto result = cluster.run(0, 4);
    cluster.drain();
    return result.messages_dropped;
  };
  // With ~hundreds of messages at 5% loss, two independent drop streams
  // matching exactly is vanishingly unlikely.
  EXPECT_NE(run_with_seed(1), run_with_seed(20240807));
}

// ---------------------------------------------------------------------------
// Zero-cost when idle.
// ---------------------------------------------------------------------------

TEST(Reliability, EmptyPlanKeepsLayerDisarmed) {
  Cluster cluster(small_workload(), small_config(SyncMethod::kP3));
  const auto result = cluster.run(0, 3);
  cluster.drain();
  EXPECT_FALSE(cluster.reliable_transport_armed());
  EXPECT_EQ(cluster.acks_sent(), 0);
  EXPECT_EQ(cluster.retransmits(), 0);
  EXPECT_EQ(cluster.timeouts_fired(), 0);
  EXPECT_EQ(cluster.duplicates_suppressed(), 0);
  EXPECT_EQ(result.messages_dropped, 0);
  // No acks on the wire: posted messages are exactly the protocol's own.
  EXPECT_EQ(cluster.network().messages_posted(),
            cluster.pushes_sent() + cluster.params_sent() +
                cluster.notifies_sent() + cluster.pulls_sent());
}

TEST(Reliability, EmptyPlanMatchesFaultFreeThroughput) {
  // An inactive FaultPlan must not perturb the simulation at all: the
  // throughput and per-iteration times must be bit-identical to a config
  // that never mentions faults.
  auto run_config = [](bool touch_plan) {
    ClusterConfig cfg = small_config(SyncMethod::kP3);
    if (touch_plan) cfg.faults = net::FaultPlan{};  // explicit empty plan
    Cluster cluster(small_workload(), cfg);
    return cluster.run(1, 5);
  };
  const auto a = run_config(false);
  const auto b = run_config(true);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
  ASSERT_EQ(a.iteration_times.size(), b.iteration_times.size());
  for (std::size_t i = 0; i < a.iteration_times.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.iteration_times[i], b.iteration_times[i]) << i;
  }
}

TEST(Reliability, InvalidReliabilityConfigsThrow) {
  ClusterConfig bad_rto = small_config(SyncMethod::kP3);
  bad_rto.min_rto = 0.0;
  EXPECT_THROW(Cluster(small_workload(), bad_rto), std::invalid_argument);
  ClusterConfig bad_backoff = small_config(SyncMethod::kP3);
  bad_backoff.rto_backoff = 0.5;
  EXPECT_THROW(Cluster(small_workload(), bad_backoff), std::invalid_argument);
  ClusterConfig bad_drop = small_config(SyncMethod::kP3);
  bad_drop.faults.drop_prob = 2.0;
  EXPECT_THROW(Cluster(small_workload(), bad_drop), std::invalid_argument);
  ClusterConfig bad_cap = small_config(SyncMethod::kP3);
  bad_cap.max_rto = bad_cap.min_rto / 2;
  EXPECT_THROW(Cluster(small_workload(), bad_cap), std::invalid_argument);
  ClusterConfig bad_jitter = small_config(SyncMethod::kP3);
  bad_jitter.rto_jitter = 1.5;
  EXPECT_THROW(Cluster(small_workload(), bad_jitter), std::invalid_argument);
  bad_jitter.rto_jitter = -0.1;
  EXPECT_THROW(Cluster(small_workload(), bad_jitter), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Backoff cap + jitter: a long blackout must not push timers into unbounded
// exponential territory — with the cap, recovery after the link returns is
// bounded by roughly one capped RTO, not by the backoff history.
// ---------------------------------------------------------------------------

TEST(Reliability, BackoffCapBoundsRecoveryAfterLongFlap) {
  // Node 1's NIC goes completely dark for a full 5 seconds. Every probe
  // during the blackout dies, so timers back off the whole time.
  auto run_once = [](TimeS max_rto, double jitter) {
    ClusterConfig cfg = small_config(SyncMethod::kP3);
    cfg.faults.flaps.push_back({1, -1, 0.05, 5.05});
    cfg.faults.flaps.push_back({-1, 1, 0.05, 5.05});
    cfg.max_rto = max_rto;
    cfg.rto_jitter = jitter;
    Cluster cluster(small_workload(), cfg);
    const int iterations = 4;
    auto result = cluster.run(0, iterations);
    cluster.drain();
    expect_converged(cluster, 4, 4, iterations);
    EXPECT_GT(result.retransmits, 0);
    return result.total_time;
  };
  // Capped at 500 ms (+10% jitter), the first probe after the flap clears
  // lands within ~0.55 s of 5.05; the run finishes well inside 7 s. An
  // uncapped (10 s ceiling) backoff may idle for seconds after the link is
  // already healthy — the cap must never lose to it.
  const TimeS capped = run_once(0.5, 0.1);
  EXPECT_LT(capped, 7.0);
  const TimeS uncapped = run_once(10.0, 0.0);
  EXPECT_LE(capped, uncapped);
}

TEST(Reliability, JitteredRetransmissionsStayDeterministic) {
  // Jitter draws flow through the cluster-seeded RNG: same seed, same
  // fault plan => bit-identical runs, even with jitter enabled.
  auto run_once = [] {
    ClusterConfig cfg = small_config(SyncMethod::kP3);
    cfg.faults.drop_prob = 0.05;
    cfg.rto_jitter = 0.25;
    cfg.max_rto = 0.4;
    Cluster cluster(small_workload(), cfg);
    auto result = cluster.run(1, 4);
    cluster.drain();
    return result;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.timeouts_fired, b.timeouts_fired);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
}

// ---------------------------------------------------------------------------
// Dedicated-server deployments recover too.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Dedup-table GC: a long lossy run must not grow the per-node msg-id dedup
// state monotonically. Once every id below the oldest still-pending send is
// final, the GC advances an explicit watermark and drops those entries;
// late duplicates below the watermark are acked and suppressed without a
// table hit, so correctness is unchanged.
// ---------------------------------------------------------------------------

TEST(Reliability, DedupStateStaysBoundedOnLongChaoticRuns) {
  ClusterConfig cfg = small_config(SyncMethod::kP3);
  cfg.slice_params = 5'000;  // 16 slices: lots of reliable traffic per iter
  cfg.faults.drop_prob = 0.02;
  cfg.max_sim_time = 120.0;
  Cluster cluster(small_workload(2, 40'000, 0.002), cfg);
  const int iterations = 200;
  cluster.run(0, iterations);
  cluster.drain();

  expect_converged(cluster, 4, 2, iterations);
  EXPECT_EQ(cluster.reliable_in_flight(), 0);
  for (int n = 0; n < 4; ++n) {
    // Each node received thousands of reliable messages; the table holds at
    // most one GC window's worth (kDedupGcThreshold = 4096) at any time.
    EXPECT_LE(cluster.dedup_entries(n), 4096) << "node " << n;
    // The watermark actually advanced — the bound is GC at work, not an
    // undersized run.
    EXPECT_GT(cluster.dedup_floor(n), 0) << "node " << n;
  }
}

TEST(Reliability, DedicatedServersConvergeUnderLoss) {
  ClusterConfig cfg = small_config(SyncMethod::kP3, 2);
  cfg.dedicated_servers = true;
  cfg.faults.drop_prob = 0.05;
  Cluster cluster(small_workload(), cfg);
  const int iterations = 3;
  cluster.run(0, iterations);
  cluster.drain();
  expect_converged(cluster, 2, 4, iterations);
  EXPECT_TRUE(cluster.simulator().idle());
}

}  // namespace
}  // namespace p3::ps
