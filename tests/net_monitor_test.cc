#include "net/monitor.h"

#include <gtest/gtest.h>

namespace p3::net {
namespace {

TEST(Monitor, SingleBinTransfer) {
  UtilizationMonitor mon(1, 0.010);
  mon.record(0, Direction::kOut, 0.001, 0.005, 4000);
  EXPECT_DOUBLE_EQ(mon.bin_bytes(0, Direction::kOut, 0), 4000.0);
  EXPECT_DOUBLE_EQ(mon.total_bytes(0, Direction::kOut), 4000.0);
}

TEST(Monitor, SpreadsAcrossBinsProportionally) {
  UtilizationMonitor mon(1, 0.010);
  // 30 ms transfer starting at 5 ms: bins 0..3 get 5/10/10/5 ms worth.
  mon.record(0, Direction::kIn, 0.005, 0.035, 3000);
  EXPECT_NEAR(mon.bin_bytes(0, Direction::kIn, 0), 500.0, 1e-6);
  EXPECT_NEAR(mon.bin_bytes(0, Direction::kIn, 1), 1000.0, 1e-6);
  EXPECT_NEAR(mon.bin_bytes(0, Direction::kIn, 2), 1000.0, 1e-6);
  EXPECT_NEAR(mon.bin_bytes(0, Direction::kIn, 3), 500.0, 1e-6);
  EXPECT_NEAR(mon.total_bytes(0, Direction::kIn), 3000.0, 1e-6);
}

TEST(Monitor, BinRate) {
  UtilizationMonitor mon(1, 0.010);
  // 1.25 MB in one 10 ms bin = 1 Gbps.
  mon.record(0, Direction::kOut, 0.010, 0.020, 1'250'000);
  EXPECT_NEAR(mon.bin_rate(0, Direction::kOut, 1), gbps(1), 1.0);
}

TEST(Monitor, InstantaneousTransferAccounted) {
  UtilizationMonitor mon(1, 0.010);
  mon.record(0, Direction::kOut, 0.021, 0.021, 999);
  EXPECT_DOUBLE_EQ(mon.bin_bytes(0, Direction::kOut, 2), 999.0);
}

TEST(Monitor, ZeroBytesIgnored) {
  UtilizationMonitor mon(1, 0.010);
  mon.record(0, Direction::kOut, 0.0, 1.0, 0);
  EXPECT_EQ(mon.bins(0, Direction::kOut), 0u);
}

TEST(Monitor, IdleFraction) {
  UtilizationMonitor mon(1, 0.010);
  // Busy bins 0 and 2; idle bins 1 and 3.
  mon.record(0, Direction::kOut, 0.000, 0.010, 1'250'000);
  mon.record(0, Direction::kOut, 0.020, 0.030, 1'250'000);
  mon.record(0, Direction::kOut, 0.030, 0.040, 1);  // ~idle
  EXPECT_NEAR(mon.idle_fraction(0, Direction::kOut, mbps(1), 0, 4), 0.5,
              1e-9);
}

TEST(Monitor, PeakRate) {
  UtilizationMonitor mon(1, 0.010);
  mon.record(0, Direction::kIn, 0.000, 0.010, 1'250'000);   // 1 Gbps
  mon.record(0, Direction::kIn, 0.010, 0.020, 5'000'000);   // 4 Gbps
  EXPECT_NEAR(mon.peak_rate(0, Direction::kIn), gbps(4), 1.0);
}

TEST(Monitor, PerNodeIsolation) {
  UtilizationMonitor mon(3, 0.010);
  mon.record(1, Direction::kOut, 0.0, 0.010, 100);
  EXPECT_DOUBLE_EQ(mon.total_bytes(0, Direction::kOut), 0.0);
  EXPECT_DOUBLE_EQ(mon.total_bytes(1, Direction::kOut), 100.0);
  EXPECT_DOUBLE_EQ(mon.total_bytes(2, Direction::kOut), 0.0);
}

TEST(Monitor, BadConstructionThrows) {
  EXPECT_THROW(UtilizationMonitor(0), std::invalid_argument);
  EXPECT_THROW(UtilizationMonitor(1, 0.0), std::invalid_argument);
}

TEST(Monitor, EndOnBinBoundaryLeavesNoEmptyTrailingBin) {
  UtilizationMonitor mon(1, 0.010);
  // Transfer ends exactly at the bin 1/2 boundary: bin 2 must not exist,
  // or every derived utilization CSV would grow a zero row.
  mon.record(0, Direction::kOut, 0.010, 0.020, 1000);
  EXPECT_EQ(mon.bins(0, Direction::kOut), 2u);
  EXPECT_DOUBLE_EQ(mon.bin_bytes(0, Direction::kOut, 0), 0.0);
  EXPECT_DOUBLE_EQ(mon.bin_bytes(0, Direction::kOut, 1), 1000.0);
}

TEST(Monitor, ZeroLengthTransferOnBoundaryLandsInLaterBin) {
  UtilizationMonitor mon(1, 0.010);
  // Half-open bin convention: t = 0.020 belongs to bin 2, not bin 1.
  mon.record(0, Direction::kIn, 0.020, 0.020, 512);
  EXPECT_DOUBLE_EQ(mon.bin_bytes(0, Direction::kIn, 1), 0.0);
  EXPECT_DOUBLE_EQ(mon.bin_bytes(0, Direction::kIn, 2), 512.0);
}

TEST(Monitor, IdleFractionOfEmptyWindowIsZero) {
  UtilizationMonitor mon(1, 0.010);
  mon.record(0, Direction::kOut, 0.0, 0.010, 100);
  // first >= last: no bins, no idle time — not a 0/0 NaN.
  EXPECT_DOUBLE_EQ(mon.idle_fraction(0, Direction::kOut, gbps(1), 3, 3), 0.0);
  EXPECT_DOUBLE_EQ(mon.idle_fraction(0, Direction::kOut, gbps(1), 5, 2), 0.0);
}

TEST(Monitor, QueriesPastRecordedBinsAreZero) {
  UtilizationMonitor mon(1, 0.010);
  mon.record(0, Direction::kOut, 0.0, 0.010, 100);
  EXPECT_DOUBLE_EQ(mon.bin_bytes(0, Direction::kOut, 99), 0.0);
  EXPECT_DOUBLE_EQ(mon.bin_rate(0, Direction::kOut, 99), 0.0);
}

}  // namespace
}  // namespace p3::net
