#include "net/faults.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"

namespace p3::net {
namespace {

NetworkConfig test_config(BitsPerSec rate = gbps(1), TimeS latency = 0.0) {
  NetworkConfig cfg;
  cfg.rate = rate;
  cfg.latency = latency;
  cfg.loopback_rate = gbps(400);
  cfg.loopback_latency = 0.0;
  return cfg;
}

Message msg(int src, int dst, Bytes bytes,
            MsgKind kind = MsgKind::kPushGradient) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.bytes = bytes;
  m.kind = kind;
  return m;
}

/// Deliver everything pending and count what arrived at `node`.
int drain_inbox(sim::Simulator& sim, Network& net, int node) {
  sim.run();
  int count = 0;
  while (net.inbox(node).try_pop()) ++count;
  return count;
}

TEST(FaultPlan, ActiveDetectsAnyConfiguredFault) {
  EXPECT_FALSE(FaultPlan{}.active());
  FaultPlan drop;
  drop.drop_prob = 0.01;
  EXPECT_TRUE(drop.active());
  FaultPlan flap;
  flap.flaps.push_back({0, 1, 1.0, 2.0});
  EXPECT_TRUE(flap.active());
  FaultPlan degrade;
  degrade.degradations.push_back({0, 0.0, 1.0, 0.5, 0.0});
  EXPECT_TRUE(degrade.active());
  FaultPlan pause;
  pause.pauses.push_back({0, 0.0, 1.0});
  EXPECT_TRUE(pause.active());
}

TEST(FaultInjector, InvalidPlansThrow) {
  FaultPlan bad_prob;
  bad_prob.drop_prob = 1.5;
  EXPECT_THROW(FaultInjector{bad_prob}, std::invalid_argument);
  FaultPlan bad_factor;
  bad_factor.degradations.push_back({0, 0.0, 1.0, 0.0, 0.0});
  EXPECT_THROW(FaultInjector{bad_factor}, std::invalid_argument);
  FaultPlan bad_pause;
  bad_pause.pauses.push_back({0, 0.0, -1.0});
  EXPECT_THROW(FaultInjector{bad_pause}, std::invalid_argument);
}

TEST(FaultInjector, DropSamplingIsDeterministic) {
  FaultPlan plan;
  plan.drop_prob = 0.3;
  plan.seed = 7;
  auto sample = [&plan] {
    FaultInjector inj(plan);
    std::vector<bool> out;
    Message m = msg(0, 1, 100);
    for (int i = 0; i < 200; ++i) out.push_back(inj.should_drop(m, 0.0));
    return out;
  };
  EXPECT_EQ(sample(), sample());
}

TEST(FaultInjector, DropRateMatchesProbability) {
  FaultPlan plan;
  plan.drop_prob = 0.25;
  plan.seed = 11;
  FaultInjector inj(plan);
  Message m = msg(0, 1, 100);
  const int n = 10'000;
  for (int i = 0; i < n; ++i) (void)inj.should_drop(m, 0.0);
  EXPECT_NEAR(static_cast<double>(inj.drops()) / n, 0.25, 0.02);
}

TEST(FaultInjector, PerLinkOverrideBeatsGlobalProbability) {
  FaultPlan plan;
  plan.drop_prob = 1.0;
  plan.link_drops.push_back({0, 1, 0.0});  // this link is perfect
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.should_drop(msg(0, 1, 100), 0.0));
  EXPECT_TRUE(inj.should_drop(msg(1, 0, 100), 0.0));
}

TEST(FaultInjector, LoopbackIsNeverDropped) {
  FaultPlan plan;
  plan.drop_prob = 1.0;
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.should_drop(msg(2, 2, 100), 0.0));
  EXPECT_EQ(inj.drops(), 0);
}

TEST(FaultInjector, BlackoutDropsOnlyDuringWindow) {
  FaultPlan plan;
  plan.flaps.push_back({0, -1, 1.0, 2.0});  // node 0 egress down [1, 2)
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.should_drop(msg(0, 1, 100), 0.5));
  EXPECT_TRUE(inj.should_drop(msg(0, 1, 100), 1.0));
  EXPECT_TRUE(inj.should_drop(msg(0, 2, 100), 1.999));
  EXPECT_FALSE(inj.should_drop(msg(0, 1, 100), 2.0));
  EXPECT_FALSE(inj.should_drop(msg(1, 0, 100), 1.5));  // other direction up
}

TEST(FaultInjector, PauseReleaseChainsOverlappingWindows) {
  FaultPlan plan;
  plan.pauses.push_back({3, 1.0, 1.0});  // [1, 2)
  plan.pauses.push_back({3, 1.5, 1.0});  // [1.5, 2.5): release chains
  FaultInjector inj(plan);
  EXPECT_DOUBLE_EQ(inj.pause_release(3, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(inj.pause_release(3, 1.2), 2.5);
  EXPECT_DOUBLE_EQ(inj.pause_release(2, 1.2), 1.2);  // other node untouched
}

// ---------------------------------------------------------------------------
// Network integration.
// ---------------------------------------------------------------------------

TEST(NetworkFaults, DroppedMessageNeverDelivered) {
  sim::Simulator sim;
  Network net(sim, 2, test_config());
  FaultPlan plan;
  plan.drop_prob = 1.0;
  FaultInjector inj(plan);
  net.attach_faults(&inj);
  // Sender still pays TX serialization for the lost message.
  const TimeS tx_done = net.post(msg(0, 1, 125'000'000));
  EXPECT_DOUBLE_EQ(tx_done, 1.0);
  EXPECT_EQ(drain_inbox(sim, net, 1), 0);
  EXPECT_EQ(net.messages_posted(), 1);
  EXPECT_EQ(net.messages_delivered(), 0);
  EXPECT_EQ(net.messages_dropped(), 1);
  EXPECT_EQ(net.bytes_dropped(), 125'000'000);
}

TEST(NetworkFaults, PostedEqualsDeliveredPlusDropped) {
  sim::Simulator sim;
  Network net(sim, 3, test_config());
  FaultPlan plan;
  plan.drop_prob = 0.5;
  plan.seed = 3;
  FaultInjector inj(plan);
  net.attach_faults(&inj);
  for (int i = 0; i < 100; ++i) net.post(msg(0, 1 + (i % 2), 1000));
  sim.run();
  EXPECT_EQ(net.messages_posted(), 100);
  EXPECT_EQ(net.messages_delivered() + net.messages_dropped(), 100);
  EXPECT_GT(net.messages_dropped(), 0);
  EXPECT_GT(net.messages_delivered(), 0);
}

TEST(NetworkFaults, DegradationWindowSlowsAndDelays) {
  sim::Simulator sim;
  Network net(sim, 2, test_config(gbps(1), 0.0));
  FaultPlan plan;
  // Node 0 egress at 50% bandwidth with +0.25 s latency during [0, 10).
  plan.degradations.push_back({0, 0.0, 10.0, 0.5, 0.25});
  FaultInjector inj(plan);
  net.attach_faults(&inj);
  const TimeS tx_done = net.post(msg(0, 1, 125'000'000));
  EXPECT_DOUBLE_EQ(tx_done, 2.0);  // 1 s at half rate = 2 s
  TimeS arrival = -1;
  sim.spawn([](Network& n, TimeS& out) -> sim::Task {
    (void)co_await n.inbox(1).pop();
    out = n.simulator().now();
  }(net, arrival));
  sim.run();
  // 2 s TX + 0.25 s latency spike + 1 s RX (RX rate undegraded).
  EXPECT_DOUBLE_EQ(arrival, 3.25);
}

TEST(NetworkFaults, DegradationOutsideWindowIsFree) {
  sim::Simulator sim;
  Network net(sim, 2, test_config(gbps(1), 0.0));
  FaultPlan plan;
  plan.degradations.push_back({0, 5.0, 6.0, 0.1, 1.0});
  FaultInjector inj(plan);
  net.attach_faults(&inj);
  EXPECT_DOUBLE_EQ(net.post(msg(0, 1, 125'000'000)), 1.0);
}

TEST(NetworkFaults, NodePauseFreezesNic) {
  sim::Simulator sim;
  Network net(sim, 2, test_config(gbps(1), 0.0));
  FaultPlan plan;
  plan.pauses.push_back({0, 0.0, 3.0});  // node 0 frozen [0, 3)
  FaultInjector inj(plan);
  net.attach_faults(&inj);
  // TX cannot start until the pause releases.
  EXPECT_DOUBLE_EQ(net.post(msg(0, 1, 125'000'000)), 4.0);
}

TEST(NetworkFaults, ReceiverPauseDefersRxSerialization) {
  sim::Simulator sim;
  Network net(sim, 2, test_config(gbps(1), 0.0));
  FaultPlan plan;
  plan.pauses.push_back({1, 0.0, 5.0});  // receiver frozen [0, 5)
  FaultInjector inj(plan);
  net.attach_faults(&inj);
  net.post(msg(0, 1, 125'000'000));  // TX [0, 1]
  TimeS arrival = -1;
  sim.spawn([](Network& n, TimeS& out) -> sim::Task {
    (void)co_await n.inbox(1).pop();
    out = n.simulator().now();
  }(net, arrival));
  sim.run();
  EXPECT_DOUBLE_EQ(arrival, 6.0);  // RX starts at release (5) + 1 s
}

TEST(NetworkFaults, LoopbackBypassesFaults) {
  sim::Simulator sim;
  Network net(sim, 2, test_config());
  FaultPlan plan;
  plan.drop_prob = 1.0;
  plan.pauses.push_back({0, 0.0, 100.0});
  FaultInjector inj(plan);
  net.attach_faults(&inj);
  net.post(msg(0, 0, 1000));
  EXPECT_EQ(drain_inbox(sim, net, 0), 1);
  EXPECT_EQ(net.messages_dropped(), 0);
}

TEST(NetworkFaults, TimelineRecordsDropSpans) {
  sim::Simulator sim;
  Network net(sim, 2, test_config(gbps(1), 0.0));
  trace::Timeline tl;
  net.attach_timeline(&tl);
  FaultPlan plan;
  plan.drop_prob = 1.0;
  FaultInjector inj(plan);
  net.attach_faults(&inj);
  Message m = msg(0, 1, 125'000'000);
  m.layer = 3;
  net.post(m);
  sim.run();
  const auto drops = tl.lane_spans("n0.drop");
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0].label, "xgL3");
  EXPECT_DOUBLE_EQ(drops[0].start, 0.0);
  EXPECT_DOUBLE_EQ(drops[0].end, 1.0);
  // The TX span still exists (sender serialized it); no RX span.
  EXPECT_EQ(tl.lane_spans("n0.tx").size(), 1u);
  EXPECT_TRUE(tl.lane_spans("n1.rx").empty());
}

TEST(NetworkFaults, MonitorOnlyRecordsOutboundForDrops) {
  sim::Simulator sim;
  Network net(sim, 2, test_config(gbps(1), 0.0));
  UtilizationMonitor mon(2, 0.010);
  net.attach_monitor(&mon);
  FaultPlan plan;
  plan.drop_prob = 1.0;
  FaultInjector inj(plan);
  net.attach_faults(&inj);
  net.post(msg(0, 1, 125'000'000));
  sim.run();
  EXPECT_NEAR(mon.total_bytes(0, Direction::kOut), 125e6, 1.0);
  EXPECT_NEAR(mon.total_bytes(1, Direction::kIn), 0.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Plan validation: each class of nonsense is rejected on its own, with the
// injector never constructed (attach-time contract, one case per rejection).
// ---------------------------------------------------------------------------

TEST(FaultPlanValidate, RejectsGlobalDropProbabilityOutsideUnitInterval) {
  FaultPlan plan;
  plan.drop_prob = -0.1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.drop_prob = 1.0 + 1e-9;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsLinkDropProbabilityOutsideUnitInterval) {
  FaultPlan plan;
  plan.link_drops.push_back({0, 1, -0.5});
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.link_drops[0].probability = 2.0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsNegativeOrInvertedFlapWindows) {
  FaultPlan plan;
  plan.flaps.push_back({0, 1, -1.0, 2.0});
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.flaps[0] = {0, 1, 2.0, 1.0};  // inverted
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsDegenerateDegradations) {
  FaultPlan plan;
  plan.degradations.push_back({0, 0.0, 1.0, 0.0, 0.0});  // factor of zero
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.degradations[0] = {0, 0.0, 1.0, 1.5, 0.0};  // factor above one
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.degradations[0] = {0, 0.0, 1.0, 0.5, -0.001};  // negative latency
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.degradations[0] = {0, -1.0, 1.0, 0.5, 0.0};  // negative start
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.degradations[0] = {0, 2.0, 1.0, 0.5, 0.0};  // inverted window
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsNegativePauses) {
  FaultPlan plan;
  plan.pauses.push_back({0, -1.0, 0.5});
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.pauses[0] = {0, 0.5, -1.0};
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsAnonymousOrNegativeTimeCrashes) {
  FaultPlan plan;
  plan.crashes.push_back({-1, 0.5, -1.0});  // a crash must name its victim
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.crashes[0] = {0, -0.5, -1.0};  // negative crash time
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.crashes[0] = {0, 0.5, 0.25};  // restart is legal
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlanValidate, RejectsAnonymousOrNegativeTimeJoins) {
  FaultPlan plan;
  plan.joins.push_back({-1, 0.5});  // a join must name its node
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.joins[0] = {4, -0.5};  // negative join time
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.joins[0] = {4, 0.5};
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlanValidate, RejectsJoinForAnExistingMember) {
  // With the cluster size known, a join for a base-node id is a join for a
  // node that is already a member at join time.
  FaultPlan plan;
  plan.joins.push_back({2, 0.5});
  EXPECT_THROW(plan.validate(4), std::invalid_argument);
  EXPECT_NO_THROW(plan.validate());  // cluster size unknown: not checkable
  // A duplicate join is the same mistake one event later, and is rejected
  // even without the cluster size.
  plan.joins[0] = {4, 0.5};
  plan.joins.push_back({4, 0.8});
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  EXPECT_THROW(plan.validate(4), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsNonContiguousJoinerIds) {
  FaultPlan plan;
  plan.joins.push_back({5, 0.5});  // base is 4: the first joiner must be 4
  EXPECT_THROW(plan.validate(4), std::invalid_argument);
  plan.joins[0] = {4, 0.5};
  plan.joins.push_back({5, 0.8});  // 4 then 5: contiguous, any event order
  EXPECT_NO_THROW(plan.validate(4));
}

TEST(FaultPlanValidate, RejectsJoinInsideTheNodesCrashWindow) {
  FaultPlan plan;
  plan.crashes.push_back({4, 0.6, 0.3});  // node 4 down during [0.6, 0.9)
  plan.joins.push_back({4, 0.7});         // the joining process cannot be down
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.joins[0].at = 0.95;  // after the restart window — but the crash now
  // precedes the join, which is equally nonsense (nothing exists to crash).
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.joins[0].at = 0.2;  // join first, crash later: a legal elastic story
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlanValidate, RejectsMalformedLeaves) {
  FaultPlan plan;
  plan.leaves.push_back({-1, 0.5});  // a leave must name its node
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.leaves[0] = {1, -0.5};  // negative leave time
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.leaves[0] = {1, 0.5};
  plan.leaves.push_back({1, 0.8});  // a node can only leave once
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.leaves.pop_back();
  EXPECT_NO_THROW(plan.validate(4, 2));
  plan.leaves[0].node = 7;  // base 4, no joins: node 7 never exists
  EXPECT_THROW(plan.validate(4, 2), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsLeaveWhileTheNodeIsDown) {
  FaultPlan plan;
  plan.crashes.push_back({1, 0.4, 0.3});  // node 1 down during [0.4, 0.7)
  plan.leaves.push_back({1, 0.5});        // a dead process cannot drain
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.leaves[0].at = 0.3;  // crash lands mid-drain: the chaos path, legal
  EXPECT_NO_THROW(plan.validate(4, 2));
  // A leave of a joiner must come after its join.
  FaultPlan joiner;
  joiner.joins.push_back({4, 0.5});
  joiner.leaves.push_back({4, 0.2});
  EXPECT_THROW(joiner.validate(4, 2), std::invalid_argument);
  joiner.leaves[0].at = 0.8;
  EXPECT_NO_THROW(joiner.validate(4, 2));
}

TEST(FaultPlanValidate, RejectsLeaveDroppingAGroupsLastLiveReplica) {
  // Replication 1 and no joiners: the leaving node's shard group would be
  // left with nobody legal to adopt it.
  FaultPlan plan;
  plan.leaves.push_back({1, 0.5});
  EXPECT_THROW(plan.validate(4, 1), std::invalid_argument);
  EXPECT_NO_THROW(plan.validate(4, 2));  // the home chain absorbs it
  // A permanent crash of the only other chain member is the same loss.
  plan.crashes.push_back({2, 0.3, -1.0});
  EXPECT_THROW(plan.validate(4, 2), std::invalid_argument);
  // A joiner can always absorb the orphaned group.
  plan.joins.push_back({4, 0.1});
  EXPECT_NO_THROW(plan.validate(4, 2));
}

TEST(FaultPlanValidate, LeavesAreNotWireFaults) {
  FaultPlan plan;
  plan.leaves.push_back({1, 0.5});
  EXPECT_FALSE(plan.active());
}

TEST(FaultPlanValidate, RejectsNonPositiveLeaseDurations) {
  FaultPlan plan;
  plan.lease_duration = 0.0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.lease_duration = -0.05;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.lease_duration = 0.05;
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlanValidate, JoinsAndLeasesAreNotWireFaults) {
  // Joins and lease durations configure the protocol layer, not the wire:
  // they must not activate the injector (active() gates the reliability
  // layer and the fault-injection RNG).
  FaultPlan plan;
  plan.joins.push_back({4, 0.5});
  plan.lease_duration = 0.1;
  EXPECT_FALSE(plan.active());
}

TEST(FaultPlanValidate, CrashPlansAreActiveAndInjectorValidatesOnAttach) {
  FaultPlan plan;
  plan.crashes.push_back({1, 0.5, -1.0});
  EXPECT_TRUE(plan.active());
  FaultPlan bad = plan;
  bad.crashes.push_back({-1, 0.5, -1.0});
  EXPECT_THROW(FaultInjector{bad}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// NetPartition plan validation: each class of malformed cut is rejected on
// its own, and partitions arm the plan like any other wire fault.
// ---------------------------------------------------------------------------

NetPartition cut(std::vector<int> a, std::vector<int> b, TimeS start,
                 TimeS heal) {
  NetPartition p;
  p.side_a = std::move(a);
  p.side_b = std::move(b);
  p.start = start;
  p.heal = heal;
  return p;
}

TEST(FaultPlanValidate, RejectsPartitionWithAnEmptySide) {
  FaultPlan plan;
  plan.partitions.push_back(cut({}, {2, 3}, 0.1, 0.5));
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.partitions[0] = cut({0, 1}, {}, 0.1, 0.5);
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsOverlappingPartitionSides) {
  FaultPlan plan;
  plan.partitions.push_back(cut({0, 1}, {1, 2}, 0.1, 0.5));
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsNegativePartitionNodeIds) {
  FaultPlan plan;
  plan.partitions.push_back(cut({-1}, {2}, 0.1, 0.5));
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.partitions[0] = cut({0}, {-2}, 0.1, 0.5);
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsInvertedOrNegativePartitionWindows) {
  FaultPlan plan;
  plan.partitions.push_back(cut({0}, {1}, 0.5, 0.5));  // heal == start
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.partitions[0] = cut({0}, {1}, 0.5, 0.2);  // heal before start
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.partitions[0] = cut({0}, {1}, -0.1, 0.5);  // negative start
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.partitions[0] = cut({0}, {1}, 0.1, 0.5);
  plan.partitions[0].flap_period = -0.2;  // negative flap period
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.partitions[0].flap_period = 0.0;
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlanValidate, RejectsPartitionOfANodeThatNeverExists) {
  FaultPlan plan;
  plan.partitions.push_back(cut({0, 1}, {2, 3, 7}, 0.1, 0.5));
  // Without the cluster size the id cannot be checked; with it, node 7
  // never exists in a 4-node cluster.
  EXPECT_NO_THROW(plan.validate());
  EXPECT_THROW(plan.validate(4), std::invalid_argument);
  // A joiner extends the cluster: ids up to base + joins are legal.
  plan.partitions[0] = cut({0, 1}, {2, 3, 4}, 0.1, 0.5);
  EXPECT_THROW(plan.validate(4), std::invalid_argument);
  plan.joins.push_back({4, 0.05});
  EXPECT_NO_THROW(plan.validate(4));
}

TEST(FaultPlanValidate, RejectsClockDriftOutsideBounds) {
  FaultPlan plan;
  plan.clock_drift_rate = -0.001;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.clock_drift_rate = 1.0;  // a clock cannot run backwards
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.clock_drift_rate = 0.001;
  plan.clock_offset_bound = -0.01;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.clock_offset_bound = 0.01;
  EXPECT_NO_THROW(plan.validate());
  EXPECT_TRUE(plan.skewed());
  // Drift alone is a clock model, not a wire fault.
  EXPECT_FALSE(plan.active());
}

TEST(FaultPlanValidate, PartitionsArmThePlan) {
  FaultPlan plan;
  plan.partitions.push_back(cut({0}, {1}, 0.1, 0.5));
  EXPECT_TRUE(plan.active());
}

// ---------------------------------------------------------------------------
// NetPartition semantics: who is severed from whom, when.
// ---------------------------------------------------------------------------

TEST(NetPartition, SymmetricCutSeversBothDirectionsDuringWindow) {
  const NetPartition p = cut({0, 1}, {2, 3}, 1.0, 2.0);
  EXPECT_FALSE(p.severs(0, 2, 0.999));  // before the cut
  EXPECT_TRUE(p.severs(0, 2, 1.0));     // a -> b
  EXPECT_TRUE(p.severs(3, 1, 1.5));     // b -> a (symmetric)
  EXPECT_FALSE(p.severs(0, 1, 1.5));    // same side: untouched
  EXPECT_FALSE(p.severs(2, 3, 1.5));
  EXPECT_FALSE(p.severs(0, 2, 2.0));    // healed (heal is exclusive)
}

TEST(NetPartition, AsymmetricCutSeversOnlyAToB) {
  NetPartition p = cut({0}, {1}, 1.0, 2.0);
  p.symmetric = false;
  EXPECT_TRUE(p.severs(0, 1, 1.5));
  EXPECT_FALSE(p.severs(1, 0, 1.5));  // the reverse path still works
}

TEST(NetPartition, FlappingCutIsActiveFirstHalfOfEachPeriod) {
  NetPartition p = cut({0}, {1}, 1.0, 2.0);
  p.flap_period = 0.4;  // on [1.0, 1.2), off [1.2, 1.4), on [1.4, 1.6), ...
  EXPECT_TRUE(p.severs(0, 1, 1.1));
  EXPECT_FALSE(p.severs(0, 1, 1.3));
  EXPECT_TRUE(p.severs(0, 1, 1.5));
  EXPECT_FALSE(p.severs(0, 1, 1.7));
  EXPECT_TRUE(p.severs(0, 1, 1.9));
  EXPECT_FALSE(p.severs(0, 1, 2.1));  // past heal: flap or not, it is over
}

TEST(NetPartition, SeversDuringCatchesAnyOverlapWithTheWindow) {
  const NetPartition p = cut({0}, {1}, 1.0, 2.0);
  EXPECT_FALSE(p.severs_during(0, 1, 0.0, 0.999));  // entirely before
  EXPECT_TRUE(p.severs_during(0, 1, 0.5, 1.0));     // touches the start
  EXPECT_TRUE(p.severs_during(0, 1, 1.2, 1.3));     // inside
  EXPECT_TRUE(p.severs_during(0, 1, 0.5, 3.0));     // spans the whole cut
  EXPECT_FALSE(p.severs_during(0, 1, 2.0, 3.0));    // entirely after
  EXPECT_TRUE(p.severs_during(1, 0, 0.5, 3.0));     // symmetric: both ways
}

TEST(NetPartition, SeversDuringRespectsFlapOffWindows) {
  NetPartition p = cut({0}, {1}, 1.0, 2.0);
  p.flap_period = 0.4;  // on-windows [1.0, 1.2), [1.4, 1.6), [1.8, 2.0)
  EXPECT_TRUE(p.severs_during(0, 1, 1.0, 1.1));
  EXPECT_FALSE(p.severs_during(0, 1, 1.25, 1.35));  // inside an off-window
  EXPECT_TRUE(p.severs_during(0, 1, 1.3, 1.45));    // reaches the next on
}

// ---------------------------------------------------------------------------
// Network integration: the fabric enforces the cut at TX time, tears down
// in-flight transfers the cut overtakes, and delivers again after heal —
// with the ground-truth cross-partition audit reading zero throughout.
// ---------------------------------------------------------------------------

TEST(NetworkPartition, MessagesIntoTheCutDieAsPartitionDrops) {
  sim::Simulator sim;
  Network net(sim, 2, test_config(gbps(1), 0.0));
  FaultPlan plan;
  plan.partitions.push_back(cut({0}, {1}, 1.0, 2.0));
  FaultInjector inj(plan);
  net.attach_faults(&inj);
  sim.schedule_at(1.5, [&] { net.post(msg(0, 1, 1'000)); });
  EXPECT_EQ(drain_inbox(sim, net, 1), 0);
  EXPECT_EQ(net.messages_dropped(), 1);
  EXPECT_EQ(inj.partition_drops(), 1);
  EXPECT_EQ(net.cross_partition_deliveries(), 0);
}

TEST(NetworkPartition, InFlightTransferTornDownWhenTheCutStarts) {
  sim::Simulator sim;
  Network net(sim, 2, test_config(gbps(1), 0.0));
  FaultPlan plan;
  plan.partitions.push_back(cut({0}, {1}, 0.5, 2.0));
  FaultInjector inj(plan);
  net.attach_faults(&inj);
  // 125 MB at 1 Gb/s: TX [0, 1) starts pre-cut, but the RX window lands
  // inside the cut — the transfer left the sender and dies in the fabric.
  net.post(msg(0, 1, 125'000'000));
  EXPECT_EQ(drain_inbox(sim, net, 1), 0);
  EXPECT_EQ(net.messages_dropped(), 1);
  EXPECT_EQ(net.cross_partition_deliveries(), 0);
}

TEST(NetworkPartition, HealedCutCarriesTrafficAgain) {
  sim::Simulator sim;
  Network net(sim, 2, test_config(gbps(1), 0.0));
  FaultPlan plan;
  plan.partitions.push_back(cut({0}, {1}, 0.5, 1.0));
  FaultInjector inj(plan);
  net.attach_faults(&inj);
  Message before = msg(0, 1, 1'000);
  Message during = msg(0, 1, 1'000);
  Message after = msg(0, 1, 1'000);
  net.post(before);
  sim.schedule_at(0.7, [&] { net.post(during); });
  sim.schedule_at(1.1, [&] { net.post(after); });
  EXPECT_EQ(drain_inbox(sim, net, 1), 2);  // before + after survive
  EXPECT_EQ(inj.partition_drops(), 1);
  EXPECT_EQ(net.cross_partition_deliveries(), 0);
}

TEST(NetworkPartition, AsymmetricCutLeavesTheReversePathOpen) {
  sim::Simulator sim;
  Network net(sim, 2, test_config(gbps(1), 0.0));
  FaultPlan plan;
  NetPartition p = cut({0}, {1}, 0.0, 10.0);
  p.symmetric = false;
  plan.partitions.push_back(p);
  FaultInjector inj(plan);
  net.attach_faults(&inj);
  net.post(msg(0, 1, 1'000));  // severed direction
  net.post(msg(1, 0, 1'000));  // open direction
  EXPECT_EQ(drain_inbox(sim, net, 1), 0);
  EXPECT_EQ(drain_inbox(sim, net, 0), 1);
  EXPECT_EQ(inj.partition_drops(), 1);
  EXPECT_EQ(net.cross_partition_deliveries(), 0);
}

// ---------------------------------------------------------------------------
// NodeCrash wire semantics: TX from a dead process never starts, a transfer
// whose RX window overlaps the victim's down window dies in the fabric, and
// a restarted node sends and receives again.
// ---------------------------------------------------------------------------

TEST(NetworkFaults, CrashedSourceCannotTransmit) {
  sim::Simulator sim;
  Network net(sim, 2, test_config(gbps(1), 0.0));
  FaultPlan plan;
  plan.crashes.push_back({0, 0.5, -1.0});
  FaultInjector inj(plan);
  net.attach_faults(&inj);
  Message early = msg(0, 1, 1'000);
  Message late = msg(0, 1, 1'000);
  net.post(early);                       // enters the wire at t=0: delivered
  sim.schedule_at(0.6, [&] { net.post(late); });  // posted post-mortem
  EXPECT_EQ(drain_inbox(sim, net, 1), 1);
  EXPECT_EQ(net.messages_dropped(), 1);
}

TEST(NetworkFaults, InFlightTransferTornDownWhenReceiverDies) {
  sim::Simulator sim;
  Network net(sim, 2, test_config(gbps(1), 0.0));
  FaultPlan plan;
  plan.crashes.push_back({1, 0.5, -1.0});
  FaultInjector inj(plan);
  net.attach_faults(&inj);
  // 125 MB at 1 Gb/s serializes for 1 s per NIC: the RX window lands after
  // the crash at 0.5, so the transfer dies in the fabric with the node.
  net.post(msg(0, 1, 125'000'000));
  EXPECT_EQ(drain_inbox(sim, net, 1), 0);
}

TEST(NetworkFaults, RestartedNodeExchangesTrafficAgain) {
  sim::Simulator sim;
  Network net(sim, 3, test_config(gbps(1), 0.0));
  FaultPlan plan;
  plan.crashes.push_back({1, 0.5, 0.25});  // down during [0.5, 0.75)
  FaultInjector inj(plan);
  net.attach_faults(&inj);
  Message during_down = msg(0, 1, 1'000);
  Message after_up = msg(0, 1, 1'000);
  Message from_revenant = msg(1, 2, 1'000);
  sim.schedule_at(0.6, [&] { net.post(during_down); });
  sim.schedule_at(0.8, [&] {
    net.post(after_up);
    net.post(from_revenant);
  });
  EXPECT_EQ(drain_inbox(sim, net, 1), 1);  // only the post-restart message
  EXPECT_EQ(drain_inbox(sim, net, 2), 1);  // the restarted node can send
  EXPECT_EQ(net.messages_dropped(), 1);
}

}  // namespace
}  // namespace p3::net
