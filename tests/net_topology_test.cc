// Rack-scale topology: validate() rejects malformed shapes, hierarchical
// routing pays the per-hop serialization and latency arithmetic exactly,
// shared switch ports serve strictly by priority (overtakes allowed,
// inversions impossible — unless the FIFO ablation is on), and a flat
// network keeps every hierarchy counter at zero.
#include "net/topology.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "net/network.h"
#include "sim/simulator.h"

namespace p3::net {
namespace {

Topology two_racks(double oversub = 1.0) {
  Topology topo;
  topo.racks = {{0, 1}, {2, 3}};
  topo.oversubscription = oversub;
  return topo;
}

Message msg(int src, int dst, Bytes bytes, int priority = 0) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.bytes = bytes;
  m.kind = MsgKind::kPushGradient;
  m.priority = priority;
  return m;
}

// ---------------------------------------------------------------------------
// validate(): every malformed shape is rejected at construction time.
// ---------------------------------------------------------------------------

TEST(Topology, InactiveTopologyValidatesTrivially) {
  Topology flat;
  EXPECT_FALSE(flat.active());
  EXPECT_NO_THROW(flat.validate());
  EXPECT_NO_THROW(flat.validate(16));
  EXPECT_EQ(flat.rack_of(0), -1);
}

TEST(Topology, ValidShapeAccepted) {
  Topology topo = two_racks(4.0);
  topo.aggregators = {1, 2};
  EXPECT_NO_THROW(topo.validate(4));
  EXPECT_EQ(topo.n_racks(), 2);
  EXPECT_EQ(topo.rack_of(0), 0);
  EXPECT_EQ(topo.rack_of(3), 1);
  EXPECT_EQ(topo.aggregator_of(0), 1);
  EXPECT_EQ(topo.aggregator_of(1), 2);
}

TEST(Topology, AggregatorDefaultsToFirstRackMember) {
  const Topology topo = two_racks();
  EXPECT_EQ(topo.aggregator_of(0), 0);
  EXPECT_EQ(topo.aggregator_of(1), 2);
}

TEST(Topology, RejectsEmptyRack) {
  Topology topo = two_racks();
  topo.racks.push_back({});
  EXPECT_THROW(topo.validate(), std::invalid_argument);
}

TEST(Topology, RejectsNodeInTwoRacks) {
  Topology topo = two_racks();
  topo.racks[1] = {1, 2, 3};  // node 1 also lives in rack 0
  EXPECT_THROW(topo.validate(), std::invalid_argument);
}

TEST(Topology, RejectsUncoveredOrOutOfRangeNodesWhenSized) {
  Topology topo = two_racks();
  EXPECT_THROW(topo.validate(5), std::invalid_argument);  // node 4 uncovered
  EXPECT_THROW(topo.validate(3), std::invalid_argument);  // node 3 out of range
  EXPECT_NO_THROW(topo.validate(4));
}

TEST(Topology, RejectsNonPositiveUplinkRate) {
  Topology topo = two_racks();
  topo.uplink_rate = 0.0;
  EXPECT_THROW(topo.validate(), std::invalid_argument);
  topo.uplink_rate = -1.0;
  EXPECT_THROW(topo.validate(), std::invalid_argument);
}

TEST(Topology, RejectsOversubscriptionBelowOne) {
  Topology topo = two_racks(0.5);
  EXPECT_THROW(topo.validate(), std::invalid_argument);
}

TEST(Topology, RejectsNegativeTierLatency) {
  Topology topo = two_racks();
  topo.tor_latency = -us(1);
  EXPECT_THROW(topo.validate(), std::invalid_argument);
  topo = two_racks();
  topo.spine_latency = -us(1);
  EXPECT_THROW(topo.validate(), std::invalid_argument);
}

TEST(Topology, RejectsAggregatorListSizeMismatch) {
  Topology topo = two_racks();
  topo.aggregators = {0};  // two racks, one entry
  EXPECT_THROW(topo.validate(), std::invalid_argument);
}

TEST(Topology, RejectsAggregatorOutsideItsRack) {
  Topology topo = two_racks();
  topo.aggregators = {0, 1};  // node 1 is in rack 0, not rack 1
  EXPECT_THROW(topo.validate(), std::invalid_argument);
}

TEST(Topology, NetworkConstructorValidatesAgainstNodeCount) {
  sim::Simulator sim;
  NetworkConfig cfg;
  cfg.topology = two_racks();  // covers nodes 0..3 only
  EXPECT_THROW(Network(sim, 5, cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Hop arithmetic: an uncontended transfer pays exactly NIC serialization +
// per-tier latencies + switch-port serialization + RX serialization.
// ---------------------------------------------------------------------------

struct HierNet {
  sim::Simulator sim;
  Network net;

  explicit HierNet(const NetworkConfig& cfg) : net(sim, 4, cfg) {}
};

NetworkConfig hier_config(double oversub) {
  NetworkConfig cfg;
  cfg.rate = gbps(1);
  cfg.rx_rate = gbps(100);
  cfg.topology = two_racks(oversub);
  cfg.topology.tor_latency = us(2);
  cfg.topology.spine_latency = us(10);
  return cfg;
}

TEST(HierRouting, IntraRackPaysTwoTorHopsAndNoPort) {
  HierNet h(hier_config(1.0));
  const Bytes bytes = 125'000;  // 1 ms at 1 Gbps
  h.net.post(msg(0, 1, bytes));
  h.sim.run();  // final event is the delivery at rx_end
  EXPECT_TRUE(h.net.inbox(1).try_pop());
  // tx 1 ms + ToR in 2 us + ToR out 2 us + rx at 100 Gbps (10 us).
  const TimeS expected = 1e-3 + us(2) + us(2) + 1e-5;
  EXPECT_NEAR(h.sim.now(), expected, 1e-12);
  // Local traffic never touches the shared uplink.
  EXPECT_EQ(h.net.tor_uplink_bytes(), 0);
}

TEST(HierRouting, CrossRackAddsUplinkSpineAndDownlink) {
  HierNet h(hier_config(2.0));
  const Bytes bytes = 125'000;  // 1 ms on the NIC
  h.net.post(msg(0, 2, bytes));
  h.sim.run();
  EXPECT_TRUE(h.net.inbox(2).try_pop());
  // Uplink capacity = 2 NICs / 2.0 oversubscription = 1 Gbps, so each
  // switch tier re-serializes the payload at 1 ms. Path: tx 1 ms + ToR
  // 2 us + uplink 1 ms + spine 10 us + downlink 1 ms + ToR 2 us + rx 10 us.
  const TimeS expected = 1e-3 + us(2) + 1e-3 + us(10) + 1e-3 + us(2) + 1e-5;
  EXPECT_NEAR(h.sim.now(), expected, 1e-12);
  EXPECT_EQ(h.net.tor_uplink_bytes(), bytes);
  const auto up = h.net.rack_stats(0);
  EXPECT_EQ(up.up_bytes, bytes);
  EXPECT_EQ(up.up_peak_queue, 0);  // uncontended: never queued
  const auto down = h.net.rack_stats(1);
  EXPECT_EQ(down.down_bytes, bytes);
}

TEST(HierRouting, ExplicitUplinkRateOverridesOversubscription) {
  NetworkConfig cfg = hier_config(1.0);
  cfg.topology.uplink_rate = gbps(10);
  HierNet h(cfg);
  const Bytes bytes = 125'000;
  h.net.post(msg(0, 2, bytes));
  h.sim.run();
  EXPECT_TRUE(h.net.inbox(2).try_pop());
  // Switch tiers now run at 10 Gbps: 0.1 ms per tier instead of 1 ms.
  const TimeS expected = 1e-3 + us(2) + 1e-4 + us(10) + 1e-4 + us(2) + 1e-5;
  EXPECT_NEAR(h.sim.now(), expected, 1e-12);
}

// ---------------------------------------------------------------------------
// Port discipline: a later urgent transfer passes queued bulk (overtake)
// and is never made to wait behind it (inversion = 0); the FIFO ablation
// flips both.
// ---------------------------------------------------------------------------

/// Three cross-rack transfers through rack 0's uplink: bulk A (posted
/// first, occupies the port), bulk B (queued), urgent C (queued last).
void run_contended(Network& net, sim::Simulator& sim) {
  const Bytes bytes = 125'000;
  net.post(msg(0, 2, bytes, /*priority=*/9));  // A: owns the port
  net.post(msg(1, 2, bytes, /*priority=*/9));  // B: waits
  net.post(msg(1, 3, bytes, /*priority=*/0));  // C: urgent, arrives last
  sim.run();
}

TEST(PortDiscipline, UrgentTransferOvertakesQueuedBulk) {
  HierNet h(hier_config(4.0));  // uplink at 0.5 Gbps: long service times
  run_contended(h.net, h.sim);
  // C overtook B at the uplink pop; strict priority service means no
  // transfer ever started while a more urgent one waited.
  EXPECT_GT(h.net.uplink_overtakes(), 0);
  EXPECT_EQ(h.net.uplink_priority_inversions(), 0);
}

TEST(PortDiscipline, FifoAblationInvertsInsteadOfOvertaking) {
  NetworkConfig cfg = hier_config(4.0);
  cfg.topology.fifo_ports = true;
  HierNet h(cfg);
  run_contended(h.net, h.sim);
  // FIFO serves B while urgent C waits: that service is an inversion, and
  // nothing ever overtakes.
  EXPECT_EQ(h.net.uplink_overtakes(), 0);
  EXPECT_GT(h.net.uplink_priority_inversions(), 0);
}

// ---------------------------------------------------------------------------
// Flat network: the hierarchy plane stays fully disarmed.
// ---------------------------------------------------------------------------

TEST(FlatNetwork, HierarchyCountersStayZero) {
  sim::Simulator sim;
  Network net(sim, 4, NetworkConfig{});
  EXPECT_FALSE(net.topology_active());
  net.post(msg(0, 2, 10'000, 3));
  net.post(msg(1, 3, 10'000, 0));
  sim.run();
  EXPECT_EQ(net.n_racks(), 0);
  EXPECT_EQ(net.uplink_overtakes(), 0);
  EXPECT_EQ(net.uplink_priority_inversions(), 0);
  EXPECT_EQ(net.tor_uplink_bytes(), 0);
}

}  // namespace
}  // namespace p3::net
