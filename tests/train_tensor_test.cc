#include "train/tensor.h"

#include <gtest/gtest.h>

namespace p3::train {
namespace {

TEST(Tensor, ConstructionAndAccess) {
  Tensor t(2, 3, 1.5f);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_FLOAT_EQ(t.at(1, 2), 1.5f);
  t.at(1, 2) = 9.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2), 9.0f);
}

TEST(Tensor, ZerosLike) {
  Tensor a(3, 4, 7.0f);
  Tensor z = Tensor::zeros_like(a);
  EXPECT_EQ(z.rows(), 3u);
  EXPECT_EQ(z.cols(), 4u);
  EXPECT_DOUBLE_EQ(z.sum(), 0.0);
}

TEST(Tensor, HeNormalStatistics) {
  Rng rng(3);
  Tensor w = Tensor::he_normal(200, 100, rng);
  // stddev should be ~sqrt(2/200) = 0.1.
  const double var = w.norm() * w.norm() / static_cast<double>(w.size());
  EXPECT_NEAR(var, 0.01, 0.002);
  EXPECT_NEAR(w.sum() / static_cast<double>(w.size()), 0.0, 0.005);
}

TEST(Tensor, AddScaledAndScale) {
  Tensor a(1, 3);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(0, 2) = 3;
  Tensor b(1, 3, 1.0f);
  a.add_scaled(b, 2.0f);
  EXPECT_FLOAT_EQ(a.at(0, 0), 3.0f);
  a.scale(0.5f);
  EXPECT_FLOAT_EQ(a.at(0, 2), 2.5f);
}

TEST(Tensor, AddScaledShapeMismatchThrows) {
  Tensor a(1, 3), b(1, 4);
  EXPECT_THROW(a.add_scaled(b, 1.0f), std::invalid_argument);
}

TEST(Tensor, NormKnownValue) {
  Tensor a(1, 2);
  a.at(0, 0) = 3;
  a.at(0, 1) = 4;
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
}

TEST(Matmul, KnownProduct) {
  Tensor a(2, 2), b(2, 2), out(2, 2);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(1, 0) = 3; a.at(1, 1) = 4;
  b.at(0, 0) = 5; b.at(0, 1) = 6; b.at(1, 0) = 7; b.at(1, 1) = 8;
  matmul(a, b, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 19);
  EXPECT_FLOAT_EQ(out.at(0, 1), 22);
  EXPECT_FLOAT_EQ(out.at(1, 0), 43);
  EXPECT_FLOAT_EQ(out.at(1, 1), 50);
}

TEST(Matmul, TransposedVariantsAgree) {
  Rng rng(9);
  Tensor a = Tensor::he_normal(4, 3, rng);
  Tensor b = Tensor::he_normal(4, 5, rng);
  // a^T b via matmul_at_b vs explicit transpose + matmul.
  Tensor at(3, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 3; ++c) at.at(c, r) = a.at(r, c);
  }
  Tensor expected(3, 5), got(3, 5);
  matmul(at, b, expected);
  matmul_at_b(a, b, got);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.raw()[i], expected.raw()[i], 1e-6);
  }
}

TEST(Matmul, ABTransposedAgrees) {
  Rng rng(11);
  Tensor a = Tensor::he_normal(4, 3, rng);
  Tensor b = Tensor::he_normal(5, 3, rng);
  Tensor bt(3, 5);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 3; ++c) bt.at(c, r) = b.at(r, c);
  }
  Tensor expected(4, 5), got(4, 5);
  matmul(a, bt, expected);
  matmul_a_bt(a, b, got);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.raw()[i], expected.raw()[i], 1e-6);
  }
}

TEST(Matmul, ShapeMismatchThrows) {
  Tensor a(2, 3), b(4, 2), out(2, 2);
  EXPECT_THROW(matmul(a, b, out), std::invalid_argument);
}

}  // namespace
}  // namespace p3::train
