// Property-style sweeps over the protocol configuration space: for every
// combination of (slice size x fragment size x latency x compression) the
// protocol must conserve gradients, deliver parameters, and balance bytes
// exactly. These are the invariants that make P3 "not affect model
// convergence" (Section 1.1): scheduling may only reorder bytes, never
// drop, duplicate or misroute them.
#include <gtest/gtest.h>

#include <tuple>

#include "model/zoo.h"
#include "ps/cluster.h"

namespace p3::ps {
namespace {

using core::SyncMethod;

model::Workload mixed_workload() {
  // Mixed shapes: tiny, sub-slice, exactly one slice, multi-slice, huge.
  model::Workload w;
  w.model = model::toy_custom({500, 20'000, 50'000, 130'000, 1'200'000});
  w.batch_per_worker = 4;
  w.iter_compute_time = 0.008;
  return w;
}

class ProtocolSpace
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t /*slice*/, Bytes /*fragment*/,
                     double /*latency_us*/, double /*compression*/>> {};

TEST_P(ProtocolSpace, P3ConservesEverything) {
  const auto [slice, fragment, latency_us, compression] = GetParam();
  ClusterConfig cfg;
  cfg.n_workers = 3;
  cfg.method = SyncMethod::kP3;
  cfg.bandwidth = gbps(1);
  cfg.slice_params = slice;
  cfg.fragment_bytes = fragment;
  cfg.latency = us(latency_us);
  cfg.wire_compression = compression;

  Cluster cluster(mixed_workload(), cfg);
  const int iterations = 3;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_GT(result.throughput, 0.0);
  const auto& part = cluster.partition();
  // Every slice aggregated exactly once per iteration.
  for (std::int64_t s = 0; s < part.num_slices(); ++s) {
    EXPECT_EQ(cluster.slice_version(s), iterations);
  }
  // Every worker has every layer's parameters for every round.
  for (int w = 0; w < 3; ++w) {
    for (int l = 0; l < 5; ++l) {
      EXPECT_EQ(cluster.worker_layer_version(w, l), iterations);
    }
  }
  // Every posted message delivered; partition covers the model exactly.
  EXPECT_EQ(cluster.network().messages_posted(),
            cluster.network().messages_delivered());
  EXPECT_EQ(part.total_params(), mixed_workload().model.total_params());
}

INSTANTIATE_TEST_SUITE_P(
    SliceFragmentLatencyCompression, ProtocolSpace,
    ::testing::Combine(::testing::Values<std::int64_t>(7'000, 50'000, 400'000),
                       ::testing::Values<Bytes>(kib(64), gib(1)),
                       ::testing::Values(0.0, 250.0),
                       ::testing::Values(1.0, 32.0)),
    [](const auto& info) {
      return "s" + std::to_string(std::get<0>(info.param)) + "_f" +
             std::to_string(std::get<1>(info.param)) + "_l" +
             std::to_string(static_cast<int>(std::get<2>(info.param))) +
             "_c" +
             std::to_string(static_cast<int>(std::get<3>(info.param)));
    });

class BandwidthMethodSpace
    : public ::testing::TestWithParam<std::tuple<SyncMethod, double>> {};

TEST_P(BandwidthMethodSpace, MonitorBalancesWithRemoteBytes) {
  // The utilization monitor must account exactly the bytes that crossed a
  // NIC (loopback excluded), in both directions.
  const auto [method, bandwidth] = GetParam();
  ClusterConfig cfg;
  cfg.n_workers = 2;
  cfg.method = method;
  cfg.bandwidth = gbps(bandwidth);
  Cluster cluster(mixed_workload(), cfg);
  net::UtilizationMonitor monitor(2, 0.010);
  cluster.attach_monitor(&monitor);
  cluster.run(0, 2);
  cluster.drain();

  double out = 0.0;
  double in = 0.0;
  for (int n = 0; n < 2; ++n) {
    out += monitor.total_bytes(n, net::Direction::kOut);
    in += monitor.total_bytes(n, net::Direction::kIn);
  }
  const auto remote =
      static_cast<double>(cluster.network().bytes_posted_remote());
  EXPECT_NEAR(out, remote, remote * 1e-9 + 1.0);
  EXPECT_NEAR(in, remote, remote * 1e-9 + 1.0);
}

TEST_P(BandwidthMethodSpace, StallTimeExplainsIterationTime) {
  // iteration time ~= compute + forward stall: the only other term is the
  // (sub-ms) tail between the last backward sleep and the iteration stamp.
  const auto [method, bandwidth] = GetParam();
  ClusterConfig cfg;
  cfg.n_workers = 3;
  cfg.method = method;
  cfg.bandwidth = gbps(bandwidth);
  Cluster cluster(mixed_workload(), cfg);
  const auto result = cluster.run(2, 5);
  EXPECT_GE(result.mean_stall_time, 0.0);
  // Tolerance: worker 0's iteration diffs vs the all-worker stall average
  // differ by a few percent plus the backward-tail term.
  EXPECT_NEAR(result.mean_iteration_time, 0.008 + result.mean_stall_time,
              0.001 + 0.05 * result.mean_iteration_time);
}

INSTANTIATE_TEST_SUITE_P(
    MethodsByBandwidth, BandwidthMethodSpace,
    ::testing::Combine(::testing::Values(SyncMethod::kBaseline,
                                         SyncMethod::kSlicingOnly,
                                         SyncMethod::kP3,
                                         SyncMethod::kTensorFlowStyle),
                       ::testing::Values(0.5, 2.0, 16.0)),
    [](const auto& info) {
      return core::sync_method_name(std::get<0>(info.param)) + "_bw" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 10));
    });

TEST(StallMetric, P3StallsLessThanBaseline) {
  model::Workload w;
  w.model = model::toy_custom({50'000, 100'000, 2'000'000});
  w.batch_per_worker = 4;
  w.iter_compute_time = 0.015;
  ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.bandwidth = gbps(1);

  cfg.method = SyncMethod::kBaseline;
  Cluster baseline(w, cfg);
  cfg.method = SyncMethod::kP3;
  Cluster p3(w, cfg);
  const auto rb = baseline.run(2, 6);
  const auto rp = p3.run(2, 6);
  EXPECT_LT(rp.mean_stall_time, rb.mean_stall_time);
}

}  // namespace
}  // namespace p3::ps
