#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "common/table.h"

namespace p3 {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/p3_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"bandwidth_gbps", "throughput"});
    csv.row({4.0, 100.5});
    csv.row({6.0, 104.25});
  }
  EXPECT_EQ(read_file(path_),
            "bandwidth_gbps,throughput\n4,100.5\n6,104.25\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter csv(path_, {"name", "value"});
    csv.row(std::vector<std::string>{"a,b", "say \"hi\""});
  }
  EXPECT_EQ(read_file(path_), "name,value\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, RowWidthMismatchThrows) {
  CsvWriter csv(path_, {"a", "b"});
  EXPECT_THROW(csv.row(std::vector<std::string>{"only-one"}),
               std::invalid_argument);
}

TEST(CsvEscape, PassthroughForPlainFields) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with space"), "with space");
}

TEST(Table, AlignsColumns) {
  Table t({"model", "throughput"});
  t.add_row({"ResNet-50", "104.20"});
  t.add_row({"VGG-19", "35.00"});
  const std::string s = t.to_string();
  // Header present, separator present, numeric right-aligned.
  EXPECT_NE(s.find("model"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_NE(s.find("ResNet-50"), std::string::npos);
  EXPECT_NE(s.find("104.20"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(10.0, 0), "10");
}

TEST(Table, RowsCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace p3
