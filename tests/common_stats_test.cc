#include "common/stats.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace p3 {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Percentile, Median) {
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 50), 2.5);
}

TEST(Percentile, Extremes) {
  std::vector<double> v{10, 20, 30};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 30.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99), 7.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
}

TEST(Histogram, BucketsValues) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(9.5);
  EXPECT_DOUBLE_EQ(h.buckets()[0], 1.0);
  EXPECT_DOUBLE_EQ(h.buckets()[1], 1.0);
  EXPECT_DOUBLE_EQ(h.buckets()[9], 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(42.0);
  EXPECT_DOUBLE_EQ(h.buckets()[0], 1.0);
  EXPECT_DOUBLE_EQ(h.buckets()[3], 1.0);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 3.0);
  EXPECT_DOUBLE_EQ(h.buckets()[0], 3.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, BucketBounds) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(Histogram, BadArgsThrow) {
  EXPECT_THROW(Histogram(0.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace p3
